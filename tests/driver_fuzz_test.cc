// Hostile-input fuzzing of the driver's fault surface (ISSUE 3): the sysfs
// status parser and the fault-record mailbox parser both consume bytes an
// adversarial co-tenant could influence, so they must reject anything
// malformed without crashing — and the manager's observer must degrade
// gracefully (conservative skip + counter) when a status line is garbage.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "driver/sysfs.h"
#include "tests/testutil.h"
#include "vpim/manager.h"

namespace vpim::driver {
namespace {

TEST(SysfsParseFuzz, FormatParseRoundtrip) {
  Sysfs sysfs(4);
  sysfs.set_in_use(1, "vm-alpha");
  sysfs.set_failed(2);
  sysfs.count_fault(2);
  sysfs.count_fault(2);
  for (std::uint32_t r = 0; r < 4; ++r) {
    const auto parsed = Sysfs::parse(sysfs.format(r));
    ASSERT_TRUE(parsed.has_value()) << sysfs.format(r);
    const RankSysfsEntry direct = sysfs.read(r);
    EXPECT_EQ(parsed->in_use, direct.in_use) << "rank " << r;
    EXPECT_EQ(parsed->owner, direct.owner) << "rank " << r;
    EXPECT_EQ(parsed->health, direct.health) << "rank " << r;
    EXPECT_EQ(parsed->fault_count, direct.fault_count) << "rank " << r;
  }
}

TEST(SysfsParseFuzz, RejectsMalformedLines) {
  const char* hostile[] = {
      "",
      " ",
      "in_use=1",
      "owner=vm health=ok faults=0 in_use=1",       // wrong field order
      "in_use=2 owner=vm health=ok faults=0",       // bad bool
      "in_use=1 owner=vm health=banana faults=0",   // unknown health
      "in_use=1 owner=vm health=ok faults=",        // empty number
      "in_use=1 owner=vm health=ok faults=abc",     // non-numeric
      "in_use=1 owner=vm health=ok faults=99999999999",  // overflow
      "in_use=1 owner=vm health=ok faults=0 ",      // trailing byte
      "in_use=1  owner=vm health=ok faults=0",      // doubled space
      "in_use=1 owner=vm a health=ok faults=0",     // space inside owner
      "in_use=1 owner=vm health=ok",                // missing field
      "in_use=1 owner=vm health=ok faults=0 extra=1",
      "in_use=-1 owner=vm health=ok faults=0",
      "IN_USE=1 owner=vm health=ok faults=0",
      "in_use=1 owner= health=ok faults=0",         // empty owner token
      "\x01\x02\x03",
  };
  for (const char* line : hostile) {
    EXPECT_FALSE(Sysfs::parse(line).has_value())
        << "accepted: \"" << line << "\"";
  }
}

TEST(SysfsParseFuzz, RandomBytesNeverCrashAndAlmostNeverParse) {
  Rng rng(0xF022);
  for (int round = 0; round < 2000; ++round) {
    const auto len = static_cast<std::size_t>(rng.uniform(0, 80));
    std::string line(len, '\0');
    for (auto& c : line) {
      c = static_cast<char>(rng.uniform(1, 255));
    }
    // Must not crash; random bytes matching the strict grammar is
    // practically impossible, but the contract here is only "no crash,
    // well-defined result".
    (void)Sysfs::parse(line);
  }
  // Mutated valid lines: flip one byte of a well-formed line at a time.
  const std::string good = "in_use=1 owner=vm-a health=ok faults=3";
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string mutated = good;
    mutated[i] = static_cast<char>(rng.uniform(1, 255));
    (void)Sysfs::parse(mutated);  // no crash
  }
}

TEST(SysfsParseFuzz, HostileOwnerDegradesObserverGracefully) {
  // A process name containing a space makes the rank's status line
  // unparseable. The observer must skip the rank (keeping its last known
  // state) and count the parse error instead of crashing or misreading.
  test::TestRig rig(test::small_machine());
  core::ManagerConfig cfg;
  cfg.retry_wait_ns = 1 * kMs;
  cfg.max_attempts = 2;
  core::Manager mgr(rig.drv, cfg);
  auto r = mgr.request_rank("vm-a");
  ASSERT_TRUE(r.has_value());
  auto mapping = rig.drv.map_rank(*r, "evil name with spaces");
  ASSERT_FALSE(Sysfs::parse(rig.drv.rank_status_line(*r)).has_value());

  mgr.observe();
  EXPECT_EQ(mgr.stats().status_parse_errors, 1u);
  EXPECT_EQ(mgr.state(*r), core::RankState::kAllo);  // state preserved

  // Once the hostile mapping goes away the rank is observable again and
  // recycles normally.
  mapping.unmap();
  mgr.observe();
  mgr.observe();
  EXPECT_EQ(mgr.state(*r), core::RankState::kNaav);
}

// ---- fault-record mailbox ------------------------------------------------

TEST(FaultMailboxFuzz, TruncatedRecordsAreRejected) {
  const FaultRecord rec{FaultKind::kMramEcc, 1, 5, 99};
  const auto full = serialize_fault_record(rec);
  for (std::size_t n = 0; n < kFaultRecordBytes; ++n) {
    EXPECT_FALSE(
        parse_fault_record(std::span(full).first(n), 8).has_value())
        << "accepted truncated record of " << n << " bytes";
  }
  // One byte too long is just as dead.
  auto longer = full;
  longer.push_back(0);
  EXPECT_FALSE(parse_fault_record(longer, 8).has_value());
}

TEST(FaultMailboxFuzz, RandomRecordsNeverCrash) {
  Rng rng(0xFA17);
  for (int round = 0; round < 2000; ++round) {
    const auto len = static_cast<std::size_t>(rng.uniform(0, 48));
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) {
      b = static_cast<std::uint8_t>(rng.uniform(0, 255));
    }
    if (auto rec = parse_fault_record(bytes, 8)) {
      // If something parses it must at least be internally consistent.
      EXPECT_LT(rec->rank, 8u);
      EXPECT_LT(rec->dpu, 64u);
    }
  }
}

TEST(FaultMailboxFuzz, DrainKeepsValidRecordsAndDropsGarbage) {
  test::TestRig rig(test::small_machine());
  const FaultRecord good{FaultKind::kTransientDpu, 1, 3, 777};

  // Interleave valid records with hostile mailbox writes.
  rig.drv.log_fault(good);
  const std::vector<std::uint8_t> empty;
  rig.drv.log_raw_fault_bytes(empty);
  std::vector<std::uint8_t> truncated(kFaultRecordBytes - 1, 0xAA);
  rig.drv.log_raw_fault_bytes(truncated);
  auto bad_magic = serialize_fault_record(good);
  bad_magic[1] ^= 0x40;
  rig.drv.log_raw_fault_bytes(bad_magic);
  auto bad_kind = serialize_fault_record(good);
  bad_kind[4] = 0xEE;
  rig.drv.log_raw_fault_bytes(bad_kind);
  auto bad_rank = serialize_fault_record(
      FaultRecord{FaultKind::kMramEcc, 200, 0, 1});
  rig.drv.log_raw_fault_bytes(bad_rank);
  rig.drv.log_fault({FaultKind::kRankSeizure, 0, 0, 888});

  const auto records = rig.drv.drain_fault_records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].kind, FaultKind::kTransientDpu);
  EXPECT_EQ(records[0].rank, 1u);
  EXPECT_EQ(records[0].at_time, 777u);
  EXPECT_EQ(records[1].kind, FaultKind::kRankSeizure);

  // The mailbox drained fully: a second drain is empty.
  EXPECT_TRUE(rig.drv.drain_fault_records().empty());
}

}  // namespace
}  // namespace vpim::driver
