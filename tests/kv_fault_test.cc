// KV service under a seeded fault storm (ISSUE 10, satellite 2): a
// Zipfian trace replays while a FaultPlan throws a correlated volley —
// transient DPU faults, ECC aborts, a lost completion and a rank death —
// at the serving rank. The contract under fire:
//
//   - durability: every PUT/DELETE the service *acked* (KvStatus::kOk)
//     survives the rank death + rescue migration; a read-back at the end
//     must see the last acked value on the rescued rank. Ops that
//     resolved with a fault status leave their key indeterminate (the
//     write may or may not have landed before the cycle died) and are
//     excluded, exactly like a real client would treat an errored write.
//   - typed statuses: no request is dropped or resolved with an
//     out-of-vocabulary status, storm or not.
//   - reproducibility: the same (trace seed, fault seed) pair produces a
//     bit-identical status stream, stats fingerprint and virtual end time.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "common/fault.h"
#include "kv/kv_service.h"
#include "kv/loadgen.h"
#include "tests/testutil.h"
#include "vpim/host.h"
#include "vpim/vpim_vm.h"

namespace vpim::kv {
namespace {

core::ManagerConfig fast_manager() {
  core::ManagerConfig cfg;
  cfg.retry_wait_ns = 1 * kMs;
  cfg.max_attempts = 2;
  return cfg;
}

// Cache off: the end-of-run durability read-back must hit MRAM on the
// rescued rank, not a host-side copy that would mask lost device state.
KvConfig storm_config() {
  KvConfig cfg;
  cfg.partitions = 8;
  cfg.nr_dpus = 4;
  cfg.slots_per_dpu = 4;
  cfg.slot_capacity = 64;
  cfg.max_batch_ops = 16;
  cfg.hot_key_cache = false;
  cfg.rebalance_period = 4;
  return cfg;
}

LoadgenConfig storm_trace() {
  LoadgenConfig lg;
  lg.seed = 7;
  lg.nr_ops = 400;
  lg.key_space = 96;
  lg.zipf_theta_permille = 990;
  lg.put_permille = 400;  // write-heavy so acks pile up before the death
  lg.delete_permille = 50;
  lg.scan_permille = 30;
  return lg;
}

FaultPlanConfig storm_faults(std::uint64_t seed) {
  FaultPlanConfig cfg;
  cfg.seed = seed;
  cfg.transient_dpu_faults = 2;
  cfg.mram_ecc_faults = 2;
  cfg.rank_deaths = 1;
  cfg.lost_completions = 1;
  cfg.max_op = 60;
  cfg.storm_bursts = 1;
  cfg.storm_width = 2;
  return cfg;
}

bool typed_kv_status(KvStatus s) {
  switch (s) {
    case KvStatus::kOk:
    case KvStatus::kNotFound:
    case KvStatus::kNoSpace:
    case KvStatus::kDeviceFault:
    case KvStatus::kTimeout:
      return true;
  }
  return false;
}

struct StormRun {
  std::vector<KvStatus> statuses;  // every op, replay order
  // key -> last acked value (nullopt = acked DELETE); keys whose writes
  // errored are dropped as indeterminate.
  std::map<std::uint64_t, std::optional<std::uint64_t>> acked;
  std::vector<std::uint64_t> indeterminate;
  KvStats stats;
  SimNs clock_end = 0;
  std::uint64_t faults_fired = 0;
  std::uint64_t deaths_fired = 0;
};

StormRun replay_storm(const FaultPlanConfig& faults,
                      std::uint32_t fault_ranks = 1,
                      bool verify_durability = true) {
  core::Host host(test::small_machine(), CostModel{}, fast_manager());
  // fault_ranks=1 aims every event at rank 0 — the rank the service
  // binds — so the storm actually lands; the death migrates onto rank 1.
  host.install_fault_plan(FaultPlan::generate(faults, fault_ranks));
  core::VpimVm vm(host, {.name = "kv-storm"}, 1);
  KvService svc(vm.device(0).frontend, vm.vmm().memory(), host.clock,
                host.cost, host.obs, storm_config());
  EXPECT_TRUE(svc.open());

  const auto trace = generate_trace(storm_trace());
  StormRun run;
  std::map<std::uint64_t, std::optional<std::uint64_t>> acked;
  std::vector<KvOp> window;
  auto flush = [&] {
    if (window.empty()) return;
    const auto results = svc.execute(window);
    for (std::size_t i = 0; i < window.size(); ++i) {
      const KvOp& op = window[i];
      const KvStatus s = results[i].status;
      run.statuses.push_back(s);
      EXPECT_TRUE(typed_kv_status(s)) << "untyped status under storm";
      const bool mutation =
          op.kind == KvOpKind::kPut || op.kind == KvOpKind::kDelete;
      if (!mutation) continue;
      if (s == KvStatus::kOk || s == KvStatus::kNotFound ||
          s == KvStatus::kNoSpace) {
        // Definitive outcome: the device answered, so the key's durable
        // state is known (kNotFound DELETE / kNoSpace PUT change nothing).
        if (op.kind == KvOpKind::kPut && s == KvStatus::kOk) {
          acked[op.key] = op.value;
        } else if (op.kind == KvOpKind::kDelete && s == KvStatus::kOk) {
          acked[op.key] = std::nullopt;
        }
      } else {
        // Errored write: indeterminate from here on.
        run.indeterminate.push_back(op.key);
        acked.erase(op.key);
      }
    }
    window.clear();
  };
  for (const KvTraceOp& t : trace) {
    window.push_back(t.op);
    if (window.size() == 16) flush();
  }
  flush();

  run.acked = std::move(acked);
  run.stats = svc.stats();
  run.clock_end = host.clock.now();
  run.faults_fired = host.fault_plan->fired().size();
  run.deaths_fired = host.fault_plan->fired_count(FaultKind::kRankDeath);

  // ---- durability read-back (post-storm, on the rescued rank) ----------
  std::vector<KvOp> probes;
  std::vector<std::optional<std::uint64_t>> want;
  for (const auto& [key, value] : run.acked) {
    probes.push_back({KvOpKind::kGet, key, 0, 0});
    want.push_back(value);
  }
  if (verify_durability && !probes.empty()) {
    const auto results = svc.execute(probes);
    for (std::size_t i = 0; i < probes.size(); ++i) {
      if (want[i].has_value()) {
        EXPECT_EQ(results[i].status, KvStatus::kOk)
            << "acked PUT of key " << probes[i].key
            << " lost after the storm";
        EXPECT_EQ(results[i].value, *want[i])
            << "acked value of key " << probes[i].key << " regressed";
      } else {
        EXPECT_EQ(results[i].status, KvStatus::kNotFound)
            << "acked DELETE of key " << probes[i].key << " resurrected";
      }
    }
  }
  svc.close();
  return run;
}

TEST(KvFaultTest, NoAckedWriteLostAcrossRankDeathAndRescue) {
  const StormRun run = replay_storm(storm_faults(11));
  // The storm must have actually happened for the test to mean anything:
  // faults fired, the rank died, and at least some writes were acked both
  // before and in spite of it. (With a rescue rank available the backend
  // absorbs the whole volley transparently — clients may see zero errors;
  // the un-absorbable case is pinned below.)
  EXPECT_GT(run.faults_fired, 0u);
  EXPECT_EQ(run.deaths_fired, 1u) << "rank death never fired";
  EXPECT_GT(run.acked.size(), 10u) << "storm killed nearly every write";
}

TEST(KvFaultTest, EveryRequestResolvesTyped) {
  const StormRun run = replay_storm(storm_faults(23));
  EXPECT_EQ(run.statuses.size(), storm_trace().nr_ops);
  EXPECT_EQ(run.deaths_fired, 1u);
}

// Both ranks of the small machine die mid-trace: no rescue target is
// left, so the service cannot hide the failure — every op from then on
// must resolve with a typed fault status, never hang or throw.
TEST(KvFaultTest, DoubleRankDeathSurfacesTypedErrors) {
  FaultPlanConfig cfg = storm_faults(47);
  cfg.rank_deaths = 4;  // drawn across both ranks; >=1 each in practice
  const StormRun run =
      replay_storm(cfg, /*fault_ranks=*/2, /*verify_durability=*/false);
  EXPECT_GE(run.deaths_fired, 2u) << "both ranks must die for this case";
  EXPECT_GT(run.stats.device_errors, 0u)
      << "ops on a dead, unrescuable rank must surface fault statuses";
  EXPECT_EQ(run.statuses.size(), storm_trace().nr_ops);
}

TEST(KvFaultTest, StormOutcomeIsSeedReproducible) {
  const StormRun a = replay_storm(storm_faults(31));
  const StormRun b = replay_storm(storm_faults(31));
  EXPECT_EQ(a.statuses, b.statuses);
  EXPECT_EQ(a.acked, b.acked);
  EXPECT_EQ(a.indeterminate, b.indeterminate);
  EXPECT_EQ(a.clock_end, b.clock_end);
  EXPECT_EQ(a.faults_fired, b.faults_fired);
  EXPECT_EQ(a.stats.cycles, b.stats.cycles);
  EXPECT_EQ(a.stats.device_errors, b.stats.device_errors);
  EXPECT_EQ(a.stats.rebalances, b.stats.rebalances);
}

}  // namespace
}  // namespace vpim::kv
