// Seeded fault-injection matrix (ISSUE 3): transient faults retry and
// succeed, permanent rank death migrates the wrank with data intact,
// exhausted capacity surfaces a typed DEVICE_FAULT, lost completions hit
// the frontend's poll deadline, and the whole fault pipeline stays
// bit-identical across VPIM_THREADS settings.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/thread_pool.h"
#include "tests/test_kernels.h"
#include "tests/testutil.h"
#include "vpim/guest_platform.h"
#include "vpim/host.h"
#include "vpim/vpim_vm.h"

namespace vpim::core {
namespace {

ManagerConfig fast_manager() {
  ManagerConfig cfg;
  cfg.retry_wait_ns = 1 * kMs;
  cfg.max_attempts = 2;
  return cfg;
}

// Frontend buffering off: every write/read is exactly one backend transfer,
// so FaultEvent::at_op counts are predictable.
VpimConfig plain_config() {
  VpimConfig cfg = VpimConfig::full();
  cfg.prefetch_cache = false;
  cfg.request_batching = false;
  return cfg;
}

upmem::MachineConfig machine(std::uint32_t ranks) {
  return {.nr_ranks = ranks, .functional_dpus_per_rank = 8};
}

driver::TransferMatrix one_entry(driver::XferDirection dir,
                                 std::span<std::uint8_t> buf) {
  driver::TransferMatrix m;
  m.direction = dir;
  m.entries.push_back({0, 4096, buf.data(), buf.size()});
  return m;
}

TEST(FaultInjection, TransientLaunchFaultIsRetriedTransparently) {
  Host host(machine(1), CostModel{}, fast_manager());
  // The very first kernel launch on rank 0 glitches a DPU.
  host.install_fault_plan({{FaultKind::kTransientDpu, 0, 2, /*at_op=*/1}});
  VpimVm vm(host, {.name = "flt-tr"}, 1, plain_config());
  GuestPlatform platform(vm);

  const auto [got, expected] =
      test::run_count_zeros(platform, 8, 2048, /*seed=*/7);
  EXPECT_EQ(got, expected);

  const DeviceStats& stats = vm.device(0).stats;
  EXPECT_EQ(stats.fault_retries, 1u);
  EXPECT_EQ(stats.fault_failures, 0u);
  EXPECT_EQ(stats.fault_migrations, 0u);
  EXPECT_EQ(host.fault_plan->fired_count(FaultKind::kTransientDpu), 1u);

  // The backend DMAed a typed record into the driver mailbox; the
  // observer's next pass drains and parses it.
  host.manager.observe();
  EXPECT_EQ(host.manager.stats().fault_records_drained, 1u);
}

TEST(FaultInjection, MramEccFaultRetriesWithDataIntact) {
  Host host(machine(1), CostModel{}, fast_manager());
  // First DMA window on rank 0 takes an ECC event.
  host.install_fault_plan({{FaultKind::kMramEcc, 0, 0, /*at_op=*/1}});
  VpimVm vm(host, {.name = "flt-ecc"}, 1, plain_config());
  Frontend& fe = vm.device(0).frontend;
  ASSERT_TRUE(fe.open());

  auto buf = vm.vmm().memory().alloc(4 * kKiB);
  std::memset(buf.data(), 0x5C, buf.size());
  fe.write_to_rank(one_entry(driver::XferDirection::kToRank, buf));

  auto out = vm.vmm().memory().alloc(4 * kKiB);
  fe.read_from_rank(one_entry(driver::XferDirection::kFromRank, out));
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], 0x5C) << "byte " << i;
  }
  EXPECT_EQ(vm.device(0).stats.fault_retries, 1u);
  EXPECT_EQ(vm.device(0).stats.fault_failures, 0u);
}

TEST(FaultInjection, RankDeathMigratesWrankWithDataIntact) {
  Host host(machine(2), CostModel{}, fast_manager());
  // Rank 0 dies on its second device op: the write survives, the read
  // triggers the death and the transparent migration.
  host.install_fault_plan({{FaultKind::kRankDeath, 0, 0, /*at_op=*/2}});
  VpimVm vm(host, {.name = "flt-death"}, 1, plain_config());
  Frontend& fe = vm.device(0).frontend;
  ASSERT_TRUE(fe.open());
  ASSERT_EQ(vm.device(0).backend.rank_index(), 0u);

  auto buf = vm.vmm().memory().alloc(4 * kKiB);
  std::memset(buf.data(), 0x7E, buf.size());
  fe.write_to_rank(one_entry(driver::XferDirection::kToRank, buf));

  auto out = vm.vmm().memory().alloc(4 * kKiB);
  fe.read_from_rank(one_entry(driver::XferDirection::kFromRank, out));
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], 0x7E) << "byte " << i;
  }

  // The device now runs on the replacement rank.
  EXPECT_EQ(vm.device(0).backend.rank_index(), 1u);
  EXPECT_EQ(vm.device(0).stats.fault_migrations, 1u);
  EXPECT_EQ(vm.device(0).stats.fault_failures, 0u);
  EXPECT_TRUE(host.machine.rank(0).failed());

  // The observer quarantines the dead rank; probes keep failing (the rank
  // is permanently dead), so it stays out of circulation.
  host.manager.observe();
  const ManagerStats mstats = host.manager.stats();
  EXPECT_EQ(host.manager.state(0), RankState::kFail);
  EXPECT_EQ(mstats.quarantined, 1u);
  EXPECT_EQ(mstats.wrank_migrations, 1u);
  EXPECT_GE(mstats.fault_records_drained, 1u);
}

TEST(FaultInjection, RankDeathWithoutSpareCapacityFailsTyped) {
  Host host(machine(1), CostModel{}, fast_manager());
  host.install_fault_plan({{FaultKind::kRankDeath, 0, 0, /*at_op=*/2}});
  VpimVm vm(host, {.name = "flt-cap"}, 1, plain_config());
  Frontend& fe = vm.device(0).frontend;
  ASSERT_TRUE(fe.open());

  auto buf = vm.vmm().memory().alloc(4 * kKiB);
  std::memset(buf.data(), 0x11, buf.size());
  fe.write_to_rank(one_entry(driver::XferDirection::kToRank, buf));

  auto out = vm.vmm().memory().alloc(4 * kKiB);
  try {
    fe.read_from_rank(one_entry(driver::XferDirection::kFromRank, out));
    FAIL() << "read off a dead rank with no spare capacity must fail";
  } catch (const VpimStatusError& e) {
    EXPECT_EQ(e.status(),
              static_cast<std::int32_t>(virtio::PimStatus::kDeviceFault));
  }
  EXPECT_EQ(vm.device(0).stats.fault_failures, 1u);
  // The migration attempt burned one (abandoned) allocation request.
  EXPECT_EQ(host.manager.stats().failed_requests, 1u);

  // The backend unbound the dead rank: later requests complete UNBOUND
  // instead of re-faulting, so the guest can still close down cleanly.
  try {
    fe.read_from_rank(one_entry(driver::XferDirection::kFromRank, out));
    FAIL() << "request on an unbound device must fail";
  } catch (const VpimStatusError& e) {
    EXPECT_EQ(e.status(),
              static_cast<std::int32_t>(virtio::PimStatus::kUnbound));
  }
}

TEST(FaultInjection, LostCompletionHitsThePollDeadline) {
  Host host(machine(1), CostModel{}, fast_manager());
  // The first request dispatched after binding wedges the device.
  host.install_fault_plan({{FaultKind::kLostCompletion, 0, 0, /*at_op=*/1}});
  VpimVm vm(host, {.name = "flt-lost"}, 1, plain_config());
  Frontend& fe = vm.device(0).frontend;
  ASSERT_TRUE(fe.open());

  auto buf = vm.vmm().memory().alloc(4 * kKiB);
  const SimNs t0 = host.clock.now();
  try {
    fe.write_to_rank(one_entry(driver::XferDirection::kToRank, buf));
    FAIL() << "a wedged request must time out";
  } catch (const VpimStatusError& e) {
    EXPECT_EQ(e.status(),
              static_cast<std::int32_t>(virtio::PimStatus::kTimeout));
  }
  // The guest re-polled for the full deadline before abandoning.
  EXPECT_GE(host.clock.now() - t0, plain_config().poll_deadline_ns);
  EXPECT_EQ(vm.device(0).stats.poll_timeouts, 1u);
  EXPECT_EQ(vm.device(0).stats.dropped_completions, 1u);
}

TEST(FaultInjection, QuarantineProbesBackOffExponentially) {
  ManagerConfig mgr = fast_manager();
  mgr.charge_time = false;  // drive the clock by hand
  Host host(machine(1), CostModel{}, mgr);
  host.machine.rank(0).fail();
  host.drv.log_fault({FaultKind::kRankDeath, 0, 0, host.clock.now()});

  // First observation quarantines and immediately probes (and fails: the
  // rank is dead for good).
  host.manager.observe();
  EXPECT_EQ(host.manager.state(0), RankState::kFail);
  EXPECT_EQ(host.manager.stats().quarantined, 1u);
  EXPECT_EQ(host.manager.stats().quarantine_probes, 1u);

  // Within the backoff window nothing is probed again.
  host.manager.observe();
  EXPECT_EQ(host.manager.stats().quarantine_probes, 1u);

  // base backoff (100 ms) elapses -> second probe.
  host.clock.advance(100 * kMs);
  host.manager.observe();
  EXPECT_EQ(host.manager.stats().quarantine_probes, 2u);

  // The window doubled: 100 ms is no longer enough, 200 ms is.
  host.clock.advance(100 * kMs);
  host.manager.observe();
  EXPECT_EQ(host.manager.stats().quarantine_probes, 2u);
  host.clock.advance(100 * kMs);
  host.manager.observe();
  EXPECT_EQ(host.manager.stats().quarantine_probes, 3u);

  EXPECT_EQ(host.manager.stats().recoveries, 0u);
  EXPECT_EQ(host.manager.state(0), RankState::kFail);
}

TEST(FaultInjection, SeizedRankIsQuarantinedThenRecovered) {
  ManagerConfig mgr = fast_manager();
  mgr.charge_time = false;
  Host host(machine(2), CostModel{}, mgr);

  // Leave residual tenant data on rank 0 (NANA, reset pending).
  auto r = host.manager.request_rank("vm-a");
  ASSERT_TRUE(r.has_value());
  {
    auto mapping = host.drv.map_rank(*r, "vm-a");
    host.manager.observe();
    std::vector<std::uint8_t> secret(64, 0xAB);
    host.machine.rank(*r).mram(0).write(0, secret);
  }
  host.manager.observe(/*do_resets=*/false);
  ASSERT_EQ(host.manager.state(*r), RankState::kNana);

  // A native app seizes the NANA rank and scribbles over it.
  const SimNs grab = host.clock.now() + 10 * kMs;
  host.install_fault_plan(
      {{FaultKind::kRankSeizure, *r, 0, 0, grab, /*hold_ns=*/50 * kMs}});
  host.clock.advance(20 * kMs);
  host.manager.observe(/*do_resets=*/false);
  EXPECT_EQ(host.manager.state(*r), RankState::kAllo);
  EXPECT_GE(host.manager.stats().seizures_observed, 1u);

  // Squatter lets go -> the rank's content cannot be trusted: quarantine.
  host.clock.advance(60 * kMs);
  host.manager.observe(/*do_resets=*/false);
  EXPECT_EQ(host.manager.state(*r), RankState::kFail);

  // Reset-verify probe passes (the rank hardware is fine) and the rank
  // returns to NAAV with zeroed memory.
  host.manager.observe(/*do_resets=*/false);
  EXPECT_EQ(host.manager.state(*r), RankState::kNaav);
  EXPECT_EQ(host.manager.stats().recoveries, 1u);
  std::vector<std::uint8_t> probe(64, 1);
  host.machine.rank(*r).mram(0).read(0, probe);
  for (auto b : probe) EXPECT_EQ(b, 0);
}

// ---- determinism under injected faults ----------------------------------

struct FaultCapture {
  bool correct = false;
  SimNs clock_end = 0;
  std::uint64_t retries = 0;
  std::uint64_t migrations = 0;
  std::uint64_t failures = 0;
  std::vector<FaultRecord> fired;
};

bool operator==(const FaultRecord& a, const FaultRecord& b) {
  return a.kind == b.kind && a.rank == b.rank && a.dpu == b.dpu &&
         a.at_time == b.at_time;
}

FaultCapture run_workload_with_faults(unsigned threads, std::uint64_t seed) {
  ThreadPool::instance().resize(threads);
  Host host(machine(2), CostModel{}, fast_manager());
  FaultPlanConfig cfg;
  cfg.seed = seed;
  cfg.transient_dpu_faults = 3;
  cfg.mram_ecc_faults = 3;
  cfg.rank_deaths = 1;
  cfg.max_op = 6;  // each app round is ~2 device ops; 8 rounds follow
  // nr_ranks=1 aims every generated fault at rank 0 — the rank the single
  // device binds — so the schedule actually fires (and the death migrates
  // the wrank onto rank 1; rank-0 events scheduled past the death are
  // deterministically orphaned).
  host.install_fault_plan(FaultPlan::generate(cfg, /*nr_ranks=*/1));

  VpimVm vm(host, {.name = "flt-det"}, 1, plain_config());
  GuestPlatform platform(vm);
  FaultCapture cap;
  cap.correct = true;
  for (int round = 0; round < 8; ++round) {
    const auto [got, expected] = test::run_count_zeros(
        platform, 8, 1024, /*seed=*/1000 + static_cast<std::uint64_t>(round));
    cap.correct = cap.correct && got == expected;
    // Deterministic (serial) observer drain: the round's release is
    // witnessed and the rank recycled before the next round rebinds.
    host.clock.advance(5 * kMs);
    host.manager.observe();
    host.manager.observe();
  }

  cap.clock_end = host.clock.now();
  cap.retries = vm.device(0).stats.fault_retries;
  cap.migrations = vm.device(0).stats.fault_migrations;
  cap.failures = vm.device(0).stats.fault_failures;
  cap.fired = host.fault_plan->fired();
  return cap;
}

class FaultDeterminism : public ::testing::Test {
 protected:
  void SetUp() override { original_ = ThreadPool::instance().size(); }
  void TearDown() override { ThreadPool::instance().resize(original_); }
  unsigned original_ = 1;
};

TEST_F(FaultDeterminism, FaultScheduleIsThreadCountInvariant) {
  const FaultCapture base = run_workload_with_faults(1, /*seed=*/42);
  EXPECT_TRUE(base.correct);
  EXPECT_FALSE(base.fired.empty());
  EXPECT_GT(base.retries, 0u);
  EXPECT_EQ(base.failures, 0u);

  for (unsigned t : {4u, std::max(1u, std::thread::hardware_concurrency())}) {
    if (t == 1) continue;
    const FaultCapture got = run_workload_with_faults(t, /*seed=*/42);
    EXPECT_EQ(base.correct, got.correct) << "threads=" << t;
    EXPECT_EQ(base.clock_end, got.clock_end) << "threads=" << t;
    EXPECT_EQ(base.retries, got.retries) << "threads=" << t;
    EXPECT_EQ(base.migrations, got.migrations) << "threads=" << t;
    EXPECT_EQ(base.failures, got.failures) << "threads=" << t;
    ASSERT_EQ(base.fired.size(), got.fired.size()) << "threads=" << t;
    for (std::size_t i = 0; i < base.fired.size(); ++i) {
      EXPECT_TRUE(base.fired[i] == got.fired[i])
          << "threads=" << t << " record " << i << ": "
          << base.fired[i].describe() << " vs " << got.fired[i].describe();
    }
  }
}

TEST_F(FaultDeterminism, DifferentSeedsProduceDifferentSchedules) {
  const FaultCapture a = run_workload_with_faults(1, /*seed=*/42);
  const FaultCapture b = run_workload_with_faults(1, /*seed=*/43);
  EXPECT_TRUE(a.correct);
  EXPECT_TRUE(b.correct);
  // Seeds steer where faults land; the fired sequences should diverge.
  const bool same = a.fired.size() == b.fired.size() &&
                    std::equal(a.fired.begin(), a.fired.end(),
                               b.fired.begin(),
                               [](const FaultRecord& x, const FaultRecord& y) {
                                 return x == y;
                               });
  EXPECT_FALSE(same);
}

// ---- fault-record wire format -------------------------------------------

TEST(FaultRecordWire, SerializeParseRoundtrip) {
  const FaultRecord rec{FaultKind::kMramEcc, 3, 17, 123456789};
  const auto bytes = serialize_fault_record(rec);
  ASSERT_EQ(bytes.size(), kFaultRecordBytes);
  const auto back = parse_fault_record(bytes, /*nr_ranks=*/8);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->kind, rec.kind);
  EXPECT_EQ(back->rank, rec.rank);
  EXPECT_EQ(back->dpu, rec.dpu);
  EXPECT_EQ(back->at_time, rec.at_time);
}

TEST(FaultRecordWire, RejectsCorruptRecords) {
  const FaultRecord rec{FaultKind::kRankDeath, 1, 0, 42};
  auto bytes = serialize_fault_record(rec);
  auto corrupt = bytes;
  corrupt[0] ^= 0xFF;  // bad magic
  EXPECT_FALSE(parse_fault_record(corrupt, 8).has_value());
  corrupt = bytes;
  corrupt[4] = 0x55;  // unknown kind
  EXPECT_FALSE(parse_fault_record(corrupt, 8).has_value());
  EXPECT_FALSE(parse_fault_record(bytes, /*nr_ranks=*/1).has_value());
  EXPECT_FALSE(
      parse_fault_record(std::span(bytes).first(12), 8).has_value());
}

}  // namespace
}  // namespace vpim::core
