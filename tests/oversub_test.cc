// Tests for the §7 consolidation features: suspend/resume (pause a
// device, free its rank, restore later) and oversubscription (emulated
// ranks at reduced performance when physical capacity is exhausted).
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <tuple>
#include <vector>

#include "common/fault.h"
#include "tests/test_kernels.h"
#include "tests/testutil.h"
#include "vpim/guest_platform.h"
#include "vpim/host.h"
#include "vpim/vpim_vm.h"

namespace vpim::core {
namespace {

ManagerConfig fast_manager() {
  ManagerConfig cfg;
  cfg.retry_wait_ns = 1 * kMs;
  cfg.max_attempts = 2;
  return cfg;
}

VpimConfig oversub_config() {
  VpimConfig cfg = VpimConfig::full();
  cfg.oversubscribe = true;
  return cfg;
}

// ---------------------------------------------------------- suspend/resume

TEST(SuspendResume, StateSurvivesAndRankFreesInBetween) {
  test::register_count_zeros();
  Host host(test::small_machine(), CostModel{}, fast_manager());
  VpimVm vm(host, {.name = "sleeper"}, 1);
  Frontend& fe = vm.device(0).frontend;
  ASSERT_TRUE(fe.open());
  const std::uint32_t rank = vm.device(0).backend.rank_index();

  fe.ci_load("test_count_zeros");
  auto buf = vm.vmm().memory().alloc(32 * kKiB);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::uint8_t>(i % 251);
  }
  driver::TransferMatrix w;
  w.entries.push_back({1, 8192, buf.data(), buf.size()});
  fe.write_to_rank(w);
  std::uint32_t ps = 12345;
  fe.ci_copy_to_symbol(1, "partition_size", 0, test::bytes_u32(ps));

  fe.suspend();
  EXPECT_FALSE(fe.is_open());
  EXPECT_FALSE(host.drv.is_mapped(rank));  // the rank really freed

  // While suspended, another tenant can take (and dirty) the rank.
  host.manager.observe();
  host.manager.observe();
  {
    VpimVm other(host, {.name = "tenant-x"}, 2);
    GuestPlatform p(other);
    auto [zeros, expected] = test::run_count_zeros(p, 16, 1024, 77);
    EXPECT_EQ(zeros, expected);
  }
  host.manager.observe();
  host.manager.observe();

  ASSERT_TRUE(fe.resume());
  EXPECT_TRUE(fe.is_open());
  // MRAM content and WRAM symbol values are back, wherever we landed.
  auto out = vm.vmm().memory().alloc(buf.size());
  driver::TransferMatrix r;
  r.direction = driver::XferDirection::kFromRank;
  r.entries.push_back({1, 8192, out.data(), out.size()});
  fe.read_from_rank(r);
  EXPECT_TRUE(std::memcmp(out.data(), buf.data(), buf.size()) == 0);
  std::uint32_t ps_back = 0;
  fe.ci_copy_from_symbol(1, "partition_size", 0, test::bytes_u32(ps_back));
  EXPECT_EQ(ps_back, 12345u);
}

TEST(SuspendResume, SnapshotCostScalesWithResidentBytes) {
  Host host(test::small_machine(), CostModel{}, fast_manager());
  VpimVm vm(host, {.name = "sizer"}, 1);
  Frontend& fe = vm.device(0).frontend;
  ASSERT_TRUE(fe.open());
  auto buf = vm.vmm().memory().alloc(8 * kMiB);
  driver::TransferMatrix w;
  w.entries.push_back({0, 0, buf.data(), buf.size()});
  fe.write_to_rank(w);

  const SimNs t0 = host.clock.now();
  fe.suspend();
  const SimNs suspend_cost = host.clock.now() - t0;
  // 8 MiB of resident content at the wide bandwidth ~ 1.4 ms; far less
  // than snapshotting the nominal 512 MiB rank.
  EXPECT_GT(suspend_cost, 1 * kMs);
  EXPECT_LT(suspend_cost, 10 * kMs);
  ASSERT_TRUE(fe.resume());
}

// ---------------------------------------------------------- oversubscription

TEST(Oversubscription, EmulatedBindWhenMachineFull) {
  Host host(test::small_machine(), CostModel{}, fast_manager());
  VpimVm vm(host, {.name = "oversub"}, 3, oversub_config());
  ASSERT_TRUE(vm.device(0).frontend.open());
  ASSERT_TRUE(vm.device(1).frontend.open());
  EXPECT_FALSE(vm.device(0).backend.emulated());
  EXPECT_FALSE(vm.device(1).backend.emulated());

  // Third device: no physical rank left -> emulated binding.
  ASSERT_TRUE(vm.device(2).frontend.open());
  EXPECT_TRUE(vm.device(2).backend.emulated());
  EXPECT_EQ(vm.device(2).stats.emulated_binds, 1u);
  EXPECT_EQ(vm.device(2).frontend.nr_dpus(), 8u);  // same geometry
  // The emulated DPUs advertise the reduced clock.
  EXPECT_LT(vm.device(2).frontend.config_space().dpu_freq_mhz, 350u);
}

TEST(Oversubscription, ApplicationsRunCorrectlyButSlower) {
  test::register_count_zeros();
  // Physical run on a fresh machine.
  Host host_p(test::small_machine(), CostModel{}, fast_manager());
  VpimVm vm_p(host_p, {.name = "phys"}, 1, oversub_config());
  GuestPlatform p_phys(vm_p);
  const SimNs p0 = host_p.clock.now();
  auto [pz, pe] = test::run_count_zeros(p_phys, 8, 1 << 20, 21);
  const SimNs phys_time = host_p.clock.now() - p0;
  EXPECT_EQ(pz, pe);

  // Emulated run: exhaust the machine first.
  Host host_e(test::small_machine(), CostModel{}, fast_manager());
  VpimVm hog(host_e, {.name = "hog"}, 2);
  ASSERT_TRUE(hog.device(0).frontend.open());
  ASSERT_TRUE(hog.device(1).frontend.open());
  VpimVm vm_e(host_e, {.name = "emu"}, 1, oversub_config());
  GuestPlatform p_emu(vm_e);
  const SimNs e0 = host_e.clock.now();
  auto [ez, ee] = test::run_count_zeros(p_emu, 8, 1 << 20, 21);
  const SimNs emu_time = host_e.clock.now() - e0;
  EXPECT_EQ(ez, ee);
  EXPECT_EQ(ez, pz);  // same seed, same answer on emulated DPUs
  // The device was released by dpu_free; the bind counter proves the run
  // happened on an emulated rank.
  EXPECT_EQ(vm_e.device(0).stats.emulated_binds, 1u);

  // "Reduced performance" (§7): the DPU-bound part runs ~25x slower.
  EXPECT_GT(static_cast<double>(emu_time),
            2.0 * static_cast<double>(phys_time));
}

TEST(Oversubscription, DisabledByDefault) {
  Host host(test::small_machine(), CostModel{}, fast_manager());
  VpimVm hog(host, {.name = "hog"}, 2);
  ASSERT_TRUE(hog.device(0).frontend.open());
  ASSERT_TRUE(hog.device(1).frontend.open());
  VpimVm vm(host, {.name = "strict"}, 1);  // default config
  EXPECT_FALSE(vm.device(0).frontend.open());
}

TEST(Oversubscription, MigrationUpgradesToPhysical) {
  test::register_count_zeros();
  Host host(test::small_machine(), CostModel{}, fast_manager());
  auto hog = std::make_unique<VpimVm>(host, vmm::VmmParams{.name = "hog"},
                                      2);
  ASSERT_TRUE(hog->device(0).frontend.open());
  ASSERT_TRUE(hog->device(1).frontend.open());

  VpimVm vm(host, {.name = "upgrader"}, 1, oversub_config());
  Frontend& fe = vm.device(0).frontend;
  ASSERT_TRUE(fe.open());
  ASSERT_TRUE(vm.device(0).backend.emulated());
  auto buf = vm.vmm().memory().alloc(64 * kKiB);
  std::memset(buf.data(), 0x42, buf.size());
  driver::TransferMatrix w;
  w.entries.push_back({3, 0, buf.data(), buf.size()});
  fe.write_to_rank(w);

  // Capacity frees up; the device migrates onto real hardware.
  hog.reset();
  host.manager.observe();
  host.manager.observe();
  ASSERT_TRUE(fe.migrate());
  EXPECT_FALSE(vm.device(0).backend.emulated());
  EXPECT_EQ(fe.config_space().dpu_freq_mhz, 350u);

  auto out = vm.vmm().memory().alloc(buf.size());
  driver::TransferMatrix r;
  r.direction = driver::XferDirection::kFromRank;
  r.entries.push_back({3, 0, out.data(), out.size()});
  fe.read_from_rank(r);
  EXPECT_TRUE(std::memcmp(out.data(), buf.data(), buf.size()) == 0);
}

// ------------------------------------------- wrank oversubscription (ISSUE 9)

ManagerConfig wrank_config(PlacementPolicyKind placement,
                           bool charge = false) {
  ManagerConfig cfg = fast_manager();
  cfg.charge_time = charge;
  cfg.placement = placement;
  return cfg;
}

upmem::MachineConfig four_ranks() {
  return {.nr_ranks = 4, .functional_dpus_per_rank = 8};
}

TEST(WrankOversub, ChurnNeverLosesWranksAndNeverOverpacks) {
  test::TestRig rig(four_ranks());
  const ManagerConfig cfg =
      wrank_config(PlacementPolicyKind::kConsolidating);
  Manager mgr(rig.drv, cfg);
  // Oracle: id -> (tenant, slots). The manager must agree with it after
  // every step, including across live-migrating consolidation passes.
  std::map<std::uint64_t, std::pair<std::string, std::uint32_t>> oracle;
  std::uint64_t s = 0x5EED;
  auto rnd = [&s] {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  for (int i = 0; i < 300; ++i) {
    const std::string tenant = "t" + std::to_string(rnd() % 3);
    if (oracle.size() < 10 && (rnd() & 3) != 0) {
      const std::uint32_t slots = 1 + static_cast<std::uint32_t>(rnd() % 2);
      const AllocResult r = mgr.allocate_wrank(tenant, slots);
      if (r.status == AllocStatus::kOk) oracle[r.wrank] = {tenant, slots};
    } else if (!oracle.empty()) {
      auto it = oracle.begin();
      std::advance(it, static_cast<long>(rnd() % oracle.size()));
      ASSERT_EQ(mgr.release_wrank(it->first), AllocStatus::kOk);
      oracle.erase(it);
    }
    if (i % 7 == 3) mgr.observe(/*do_resets=*/true);
    if (i % 5 == 4) mgr.consolidate();

    const std::vector<WrankInfo> ws = mgr.wranks();
    ASSERT_EQ(ws.size(), oracle.size());
    std::map<std::uint32_t, std::uint32_t> used;
    std::map<std::string, std::uint32_t> per_tenant;
    for (const WrankInfo& w : ws) {
      const auto it = oracle.find(w.id);
      ASSERT_NE(it, oracle.end()) << "unknown wrank id " << w.id;
      EXPECT_EQ(w.tenant, it->second.first);
      EXPECT_EQ(w.slots, it->second.second);
      // No faults in this trace, so nothing may stay displaced.
      ASSERT_NE(w.rank, Manager::kNoRank);
      used[w.rank] += w.slots;
      per_tenant[w.tenant] += w.slots;
    }
    for (const auto& [rank, slots] : used) {
      EXPECT_LE(slots, cfg.wrank_slots_per_rank) << "rank " << rank;
    }
    for (const auto& [tenant, slots] : per_tenant) {
      EXPECT_EQ(mgr.tenant_slots(tenant), slots);
    }
  }
}

TEST(WrankOversub, QuarantineDisplacesAndConsolidationAvoidsDeadRank) {
  test::TestRig rig(four_ranks());
  Manager mgr(rig.drv, wrank_config(PlacementPolicyKind::kConsolidating));
  // Fill rank 0 with tenant a (4x1), then rank 1 with tenant b (2x1):
  // best-fit packs the fullest rank first, lowest index on ties.
  std::vector<std::uint64_t> a_ids;
  for (int i = 0; i < 4; ++i) {
    const AllocResult r = mgr.allocate_wrank("a", 1);
    ASSERT_EQ(r.status, AllocStatus::kOk);
    EXPECT_EQ(r.rank, 0u);
    a_ids.push_back(r.wrank);
  }
  for (int i = 0; i < 2; ++i) {
    const AllocResult r = mgr.allocate_wrank("b", 1);
    ASSERT_EQ(r.status, AllocStatus::kOk);
    EXPECT_EQ(r.rank, 1u);
  }

  // Rank 1 dies under tenant b's wranks.
  rig.machine.rank(1).fail();
  rig.drv.log_fault({FaultKind::kRankDeath, 1, 0, rig.clock.now()});
  mgr.observe();
  EXPECT_EQ(mgr.state(1), RankState::kFail);
  EXPECT_EQ(mgr.stats().wranks_displaced, 2u);
  // Rescued within the same observe pass — onto a healthy rank, never
  // back onto the quarantined one, and nothing lost.
  ASSERT_EQ(mgr.wranks().size(), 6u);
  for (const WrankInfo& w : mgr.wranks()) {
    ASSERT_NE(w.rank, Manager::kNoRank) << "wrank " << w.id << " stranded";
    EXPECT_NE(w.rank, 1u) << "wrank " << w.id << " on the dead rank";
  }
  EXPECT_EQ(mgr.tenant_slots("b"), 2u);
  EXPECT_GE(mgr.stats().wrank_migrations, 2u);

  // Open a hole on rank 0 and consolidate: the pass must pack the rescued
  // wranks into the hole, and must never pick the quarantined rank as a
  // target even though it reads as 4 slots free.
  ASSERT_EQ(mgr.release_wrank(a_ids[0]), AllocStatus::kOk);
  ASSERT_EQ(mgr.release_wrank(a_ids[1]), AllocStatus::kOk);
  const std::uint32_t moves = mgr.consolidate();
  EXPECT_GT(moves, 0u);
  for (const WrankInfo& w : mgr.wranks()) {
    EXPECT_NE(w.rank, 1u) << "consolidation moved wrank " << w.id
                          << " onto the quarantined rank";
  }
  EXPECT_EQ(mgr.fragmentation_permille(), 0u);
  EXPECT_GE(mgr.stats().consolidation_migrations, moves);
}

TEST(WrankOversub, PolicyDecisionsAndVirtualTimeAreDeterministic) {
  // Placement policies are pure functions over table snapshots and every
  // latency charge is virtual, so an identical trace must produce
  // bit-identical decisions and clocks on every run (and, because nothing
  // reads thread state, at every VPIM_THREADS setting — CI replays this
  // whole binary at 1 and 4 host threads).
  for (const PlacementPolicyKind kind :
       {PlacementPolicyKind::kFirstFit, PlacementPolicyKind::kBestFit,
        PlacementPolicyKind::kConsolidating}) {
    auto run = [kind] {
      test::TestRig rig(four_ranks());
      Manager mgr(rig.drv, wrank_config(kind, /*charge=*/true));
      std::vector<std::tuple<AllocStatus, std::uint64_t, std::uint32_t>>
          decisions;
      std::vector<std::uint64_t> live;
      std::uint64_t s = 0xD15EA5E;
      auto rnd = [&s] {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return s;
      };
      for (int i = 0; i < 80; ++i) {
        const std::uint32_t op = static_cast<std::uint32_t>(rnd() % 4);
        if (op < 2 || live.empty()) {
          const AllocResult r = mgr.allocate_wrank(
              "t" + std::to_string(rnd() % 3),
              1 + static_cast<std::uint32_t>(rnd() % 4));
          decisions.emplace_back(r.status, r.wrank, r.rank);
          if (r.status == AllocStatus::kOk) live.push_back(r.wrank);
        } else if (op == 2) {
          const std::size_t v =
              static_cast<std::size_t>(rnd() % live.size());
          const AllocResult r = mgr.resize_wrank(
              live[v], 1 + static_cast<std::uint32_t>(rnd() % 4));
          decisions.emplace_back(r.status, r.wrank, r.rank);
        } else {
          const std::size_t v =
              static_cast<std::size_t>(rnd() % live.size());
          decisions.emplace_back(mgr.release_wrank(live[v]), live[v], 0u);
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(v));
        }
        if (i % 6 == 5) mgr.observe(/*do_resets=*/true);
        if (mgr.policy_wants_consolidation() && i % 4 == 3) {
          mgr.consolidate();
        }
      }
      return std::make_pair(decisions, rig.clock.now());
    };
    const auto first = run();
    const auto second = run();
    EXPECT_EQ(first.first, second.first)
        << "policy " << to_string(kind) << " made different decisions";
    EXPECT_EQ(first.second, second.second)
        << "policy " << to_string(kind) << " charged different time";
  }
}

}  // namespace
}  // namespace vpim::core
