// Tests for the §7 consolidation features: suspend/resume (pause a
// device, free its rank, restore later) and oversubscription (emulated
// ranks at reduced performance when physical capacity is exhausted).
#include <gtest/gtest.h>

#include <cstring>

#include "tests/test_kernels.h"
#include "tests/testutil.h"
#include "vpim/guest_platform.h"
#include "vpim/host.h"
#include "vpim/vpim_vm.h"

namespace vpim::core {
namespace {

ManagerConfig fast_manager() {
  ManagerConfig cfg;
  cfg.retry_wait_ns = 1 * kMs;
  cfg.max_attempts = 2;
  return cfg;
}

VpimConfig oversub_config() {
  VpimConfig cfg = VpimConfig::full();
  cfg.oversubscribe = true;
  return cfg;
}

// ---------------------------------------------------------- suspend/resume

TEST(SuspendResume, StateSurvivesAndRankFreesInBetween) {
  test::register_count_zeros();
  Host host(test::small_machine(), CostModel{}, fast_manager());
  VpimVm vm(host, {.name = "sleeper"}, 1);
  Frontend& fe = vm.device(0).frontend;
  ASSERT_TRUE(fe.open());
  const std::uint32_t rank = vm.device(0).backend.rank_index();

  fe.ci_load("test_count_zeros");
  auto buf = vm.vmm().memory().alloc(32 * kKiB);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::uint8_t>(i % 251);
  }
  driver::TransferMatrix w;
  w.entries.push_back({1, 8192, buf.data(), buf.size()});
  fe.write_to_rank(w);
  std::uint32_t ps = 12345;
  fe.ci_copy_to_symbol(1, "partition_size", 0, test::bytes_u32(ps));

  fe.suspend();
  EXPECT_FALSE(fe.is_open());
  EXPECT_FALSE(host.drv.is_mapped(rank));  // the rank really freed

  // While suspended, another tenant can take (and dirty) the rank.
  host.manager.observe();
  host.manager.observe();
  {
    VpimVm other(host, {.name = "tenant-x"}, 2);
    GuestPlatform p(other);
    auto [zeros, expected] = test::run_count_zeros(p, 16, 1024, 77);
    EXPECT_EQ(zeros, expected);
  }
  host.manager.observe();
  host.manager.observe();

  ASSERT_TRUE(fe.resume());
  EXPECT_TRUE(fe.is_open());
  // MRAM content and WRAM symbol values are back, wherever we landed.
  auto out = vm.vmm().memory().alloc(buf.size());
  driver::TransferMatrix r;
  r.direction = driver::XferDirection::kFromRank;
  r.entries.push_back({1, 8192, out.data(), out.size()});
  fe.read_from_rank(r);
  EXPECT_TRUE(std::memcmp(out.data(), buf.data(), buf.size()) == 0);
  std::uint32_t ps_back = 0;
  fe.ci_copy_from_symbol(1, "partition_size", 0, test::bytes_u32(ps_back));
  EXPECT_EQ(ps_back, 12345u);
}

TEST(SuspendResume, SnapshotCostScalesWithResidentBytes) {
  Host host(test::small_machine(), CostModel{}, fast_manager());
  VpimVm vm(host, {.name = "sizer"}, 1);
  Frontend& fe = vm.device(0).frontend;
  ASSERT_TRUE(fe.open());
  auto buf = vm.vmm().memory().alloc(8 * kMiB);
  driver::TransferMatrix w;
  w.entries.push_back({0, 0, buf.data(), buf.size()});
  fe.write_to_rank(w);

  const SimNs t0 = host.clock.now();
  fe.suspend();
  const SimNs suspend_cost = host.clock.now() - t0;
  // 8 MiB of resident content at the wide bandwidth ~ 1.4 ms; far less
  // than snapshotting the nominal 512 MiB rank.
  EXPECT_GT(suspend_cost, 1 * kMs);
  EXPECT_LT(suspend_cost, 10 * kMs);
  ASSERT_TRUE(fe.resume());
}

// ---------------------------------------------------------- oversubscription

TEST(Oversubscription, EmulatedBindWhenMachineFull) {
  Host host(test::small_machine(), CostModel{}, fast_manager());
  VpimVm vm(host, {.name = "oversub"}, 3, oversub_config());
  ASSERT_TRUE(vm.device(0).frontend.open());
  ASSERT_TRUE(vm.device(1).frontend.open());
  EXPECT_FALSE(vm.device(0).backend.emulated());
  EXPECT_FALSE(vm.device(1).backend.emulated());

  // Third device: no physical rank left -> emulated binding.
  ASSERT_TRUE(vm.device(2).frontend.open());
  EXPECT_TRUE(vm.device(2).backend.emulated());
  EXPECT_EQ(vm.device(2).stats.emulated_binds, 1u);
  EXPECT_EQ(vm.device(2).frontend.nr_dpus(), 8u);  // same geometry
  // The emulated DPUs advertise the reduced clock.
  EXPECT_LT(vm.device(2).frontend.config_space().dpu_freq_mhz, 350u);
}

TEST(Oversubscription, ApplicationsRunCorrectlyButSlower) {
  test::register_count_zeros();
  // Physical run on a fresh machine.
  Host host_p(test::small_machine(), CostModel{}, fast_manager());
  VpimVm vm_p(host_p, {.name = "phys"}, 1, oversub_config());
  GuestPlatform p_phys(vm_p);
  const SimNs p0 = host_p.clock.now();
  auto [pz, pe] = test::run_count_zeros(p_phys, 8, 1 << 20, 21);
  const SimNs phys_time = host_p.clock.now() - p0;
  EXPECT_EQ(pz, pe);

  // Emulated run: exhaust the machine first.
  Host host_e(test::small_machine(), CostModel{}, fast_manager());
  VpimVm hog(host_e, {.name = "hog"}, 2);
  ASSERT_TRUE(hog.device(0).frontend.open());
  ASSERT_TRUE(hog.device(1).frontend.open());
  VpimVm vm_e(host_e, {.name = "emu"}, 1, oversub_config());
  GuestPlatform p_emu(vm_e);
  const SimNs e0 = host_e.clock.now();
  auto [ez, ee] = test::run_count_zeros(p_emu, 8, 1 << 20, 21);
  const SimNs emu_time = host_e.clock.now() - e0;
  EXPECT_EQ(ez, ee);
  EXPECT_EQ(ez, pz);  // same seed, same answer on emulated DPUs
  // The device was released by dpu_free; the bind counter proves the run
  // happened on an emulated rank.
  EXPECT_EQ(vm_e.device(0).stats.emulated_binds, 1u);

  // "Reduced performance" (§7): the DPU-bound part runs ~25x slower.
  EXPECT_GT(static_cast<double>(emu_time),
            2.0 * static_cast<double>(phys_time));
}

TEST(Oversubscription, DisabledByDefault) {
  Host host(test::small_machine(), CostModel{}, fast_manager());
  VpimVm hog(host, {.name = "hog"}, 2);
  ASSERT_TRUE(hog.device(0).frontend.open());
  ASSERT_TRUE(hog.device(1).frontend.open());
  VpimVm vm(host, {.name = "strict"}, 1);  // default config
  EXPECT_FALSE(vm.device(0).frontend.open());
}

TEST(Oversubscription, MigrationUpgradesToPhysical) {
  test::register_count_zeros();
  Host host(test::small_machine(), CostModel{}, fast_manager());
  auto hog = std::make_unique<VpimVm>(host, vmm::VmmParams{.name = "hog"},
                                      2);
  ASSERT_TRUE(hog->device(0).frontend.open());
  ASSERT_TRUE(hog->device(1).frontend.open());

  VpimVm vm(host, {.name = "upgrader"}, 1, oversub_config());
  Frontend& fe = vm.device(0).frontend;
  ASSERT_TRUE(fe.open());
  ASSERT_TRUE(vm.device(0).backend.emulated());
  auto buf = vm.vmm().memory().alloc(64 * kKiB);
  std::memset(buf.data(), 0x42, buf.size());
  driver::TransferMatrix w;
  w.entries.push_back({3, 0, buf.data(), buf.size()});
  fe.write_to_rank(w);

  // Capacity frees up; the device migrates onto real hardware.
  hog.reset();
  host.manager.observe();
  host.manager.observe();
  ASSERT_TRUE(fe.migrate());
  EXPECT_FALSE(vm.device(0).backend.emulated());
  EXPECT_EQ(fe.config_space().dpu_freq_mhz, 350u);

  auto out = vm.vmm().memory().alloc(buf.size());
  driver::TransferMatrix r;
  r.direction = driver::XferDirection::kFromRank;
  r.entries.push_back({3, 0, out.data(), out.size()});
  fe.read_from_rank(r);
  EXPECT_TRUE(std::memcmp(out.data(), buf.data(), buf.size()) == 0);
}

}  // namespace
}  // namespace vpim::core
