#include <gtest/gtest.h>

#include "common/error.h"
#include "virtio/pim_spec.h"
#include "virtio/virtqueue.h"

namespace vpim::virtio {
namespace {

TEST(Virtqueue, RejectsNonPowerOfTwoSize) {
  EXPECT_THROW(Virtqueue(0), VpimError);
  EXPECT_THROW(Virtqueue(100), VpimError);
  EXPECT_NO_THROW(Virtqueue(128));
}

TEST(Virtqueue, SubmitPopRoundTrip) {
  Virtqueue q(8);
  const DescBuffer bufs[] = {
      {0x1000, 64, false},
      {0x2000, 128, false},
      {0x3000, 256, true},
  };
  const std::uint16_t head = q.submit(bufs);
  EXPECT_EQ(q.free_descriptors(), 5);

  auto chain = q.pop_avail();
  ASSERT_TRUE(chain.has_value());
  EXPECT_EQ(chain->head, head);
  ASSERT_EQ(chain->descs.size(), 3u);
  EXPECT_EQ(chain->descs[0].addr, 0x1000u);
  EXPECT_EQ(chain->descs[1].len, 128u);
  EXPECT_TRUE(chain->descs[2].flags & kDescFlagWrite);
  EXPECT_FALSE(chain->descs[2].flags & kDescFlagNext);

  // Nothing else pending.
  EXPECT_FALSE(q.pop_avail().has_value());

  q.push_used(head, 256);
  auto used = q.poll_used();
  ASSERT_TRUE(used.has_value());
  EXPECT_EQ(used->id, head);
  EXPECT_EQ(used->len, 256u);
  EXPECT_EQ(q.free_descriptors(), 8);
}

TEST(Virtqueue, UsedBeforePushIsEmpty) {
  Virtqueue q(8);
  EXPECT_FALSE(q.poll_used().has_value());
  EXPECT_FALSE(q.pop_avail().has_value());
}

TEST(Virtqueue, ExhaustionThrowsAndRecyclingRestores) {
  Virtqueue q(4);
  const DescBuffer one[] = {{0x1000, 8, false}};
  std::uint16_t heads[4];
  for (auto& head : heads) head = q.submit(one);
  EXPECT_EQ(q.free_descriptors(), 0);
  EXPECT_THROW(q.submit(one), VpimError);

  // Device consumes and completes two chains.
  for (int i = 0; i < 2; ++i) {
    auto chain = q.pop_avail();
    ASSERT_TRUE(chain);
    q.push_used(chain->head, 0);
  }
  // Driver must poll used before descriptors are free again.
  EXPECT_EQ(q.free_descriptors(), 0);
  ASSERT_TRUE(q.poll_used());
  ASSERT_TRUE(q.poll_used());
  EXPECT_EQ(q.free_descriptors(), 2);
  EXPECT_NO_THROW(q.submit(one));
}

TEST(Virtqueue, ManySequentialRequestsWrapRings) {
  Virtqueue q(8);
  const DescBuffer bufs[] = {{0xA000, 16, false}, {0xB000, 16, true}};
  // Far more requests than the ring size: indices must wrap correctly.
  for (int iter = 0; iter < 1000; ++iter) {
    const std::uint16_t head = q.submit(bufs);
    auto chain = q.pop_avail();
    ASSERT_TRUE(chain);
    EXPECT_EQ(chain->head, head);
    ASSERT_EQ(chain->descs.size(), 2u);
    q.push_used(head, 16);
    auto used = q.poll_used();
    ASSERT_TRUE(used);
    EXPECT_EQ(used->id, head);
  }
  EXPECT_EQ(q.free_descriptors(), 8);
}

TEST(Virtqueue, InterleavedOutstandingChains) {
  Virtqueue q(16);
  const DescBuffer a[] = {{0x1, 1, false}};
  const DescBuffer b[] = {{0x2, 2, false}, {0x3, 3, false}};
  const std::uint16_t ha = q.submit(a);
  const std::uint16_t hb = q.submit(b);

  auto ca = q.pop_avail();
  auto cb = q.pop_avail();
  ASSERT_TRUE(ca && cb);
  EXPECT_EQ(ca->head, ha);
  EXPECT_EQ(cb->head, hb);

  // Complete out of order: b first.
  q.push_used(hb, 0);
  q.push_used(ha, 0);
  EXPECT_EQ(q.poll_used()->id, hb);
  EXPECT_EQ(q.poll_used()->id, ha);
  EXPECT_EQ(q.free_descriptors(), 16);
}

TEST(Virtqueue, TransferqHoldsSerializedMatrix) {
  // The spec sizes transferq at 512 slots so the 130-buffer matrix fits.
  Virtqueue q(kTransferQueueSize);
  std::vector<DescBuffer> bufs(kMaxMatrixBuffers);
  for (std::size_t i = 0; i < bufs.size(); ++i) {
    bufs[i] = {0x1000 * (i + 1), 32, false};
  }
  EXPECT_NO_THROW(q.submit(bufs));
  auto chain = q.pop_avail();
  ASSERT_TRUE(chain);
  EXPECT_EQ(chain->descs.size(), kMaxMatrixBuffers);
}

class ChainLengthSweep : public ::testing::TestWithParam<int> {};

TEST_P(ChainLengthSweep, ChainOrderPreserved) {
  const int n = GetParam();
  Virtqueue q(256);
  std::vector<DescBuffer> bufs(n);
  for (int i = 0; i < n; ++i) {
    bufs[i] = {static_cast<std::uint64_t>(i) * 0x100 + 0x10,
               static_cast<std::uint32_t>(i + 1), (i % 2) == 0};
  }
  q.submit(bufs);
  auto chain = q.pop_avail();
  ASSERT_TRUE(chain);
  ASSERT_EQ(chain->descs.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(chain->descs[i].addr,
              static_cast<std::uint64_t>(i) * 0x100 + 0x10);
    EXPECT_EQ(chain->descs[i].len, static_cast<std::uint32_t>(i + 1));
    EXPECT_EQ((chain->descs[i].flags & kDescFlagWrite) != 0, (i % 2) == 0);
    EXPECT_EQ((chain->descs[i].flags & kDescFlagNext) != 0, i != n - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, ChainLengthSweep,
                         ::testing::Values(1, 2, 3, 7, 64, 130, 256));

}  // namespace
}  // namespace vpim::virtio
