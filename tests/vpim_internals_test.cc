// White-box tests of vPIM's wire-level mechanisms: batch flush records,
// broadcast detection + copy-on-write storage, packed symbol transfers,
// oversized-transfer rejection, and message accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <sstream>

#include "common/rng.h"
#include "tests/test_kernels.h"
#include "tests/testutil.h"
#include "vpim/guest_platform.h"
#include "vpim/host.h"
#include "vpim/vpim_vm.h"

namespace vpim::core {
namespace {

ManagerConfig fast_manager() {
  ManagerConfig cfg;
  cfg.retry_wait_ns = 1 * kMs;
  cfg.max_attempts = 2;
  return cfg;
}

struct Rig {
  explicit Rig(VpimConfig config = VpimConfig::full(),
               upmem::MachineConfig machine = test::small_machine())
      : host(machine, CostModel{}, fast_manager()),
        vm(host, {.name = "internals"}, 1, config) {
    EXPECT_TRUE(vm.device(0).frontend.open());
  }
  Frontend& fe() { return vm.device(0).frontend; }
  upmem::Rank& rank() {
    return host.machine.rank(vm.device(0).backend.rank_index());
  }

  Host host;
  VpimVm vm;
};

TEST(BatchFlush, RecordsApplyInOrderAcrossDpus) {
  Rig rig;
  auto buf = rig.vm.vmm().memory().alloc(4096);
  // Overlapping small writes to the same DPU: the flush must replay them
  // in order, so the later write wins on the overlap.
  std::memset(buf.data(), 0xAA, 256);
  driver::TransferMatrix w1;
  w1.entries.push_back({0, 100, buf.data(), 256});
  rig.fe().write_to_rank(w1);
  std::memset(buf.data() + 1024, 0xBB, 64);
  driver::TransferMatrix w2;
  w2.entries.push_back({0, 200, buf.data() + 1024, 64});
  rig.fe().write_to_rank(w2);
  EXPECT_EQ(rig.fe().stats().batched_writes, 2u);

  auto out = rig.vm.vmm().memory().alloc(356);
  driver::TransferMatrix r;
  r.direction = driver::XferDirection::kFromRank;
  r.entries.push_back({0, 100, out.data(), 356});
  rig.fe().read_from_rank(r);  // forces the flush
  EXPECT_EQ(out[0], 0xAA);
  EXPECT_EQ(out[99], 0xAA);    // offset 199: first write only
  EXPECT_EQ(out[100], 0xBB);   // offset 200: second write overrides
  EXPECT_EQ(out[163], 0xBB);   // offset 263
  EXPECT_EQ(out[164], 0xAA);   // offset 264: back to the first write
}

TEST(BroadcastDetection, SharesPagesCopyOnWrite) {
  Rig rig;
  const std::uint64_t bytes = 1 * kMiB;
  auto payload = rig.vm.vmm().memory().alloc(bytes);
  Rng rng(9);
  rng.fill_bytes(payload.data(), payload.size());

  // A write matrix whose entries all reference the same guest pages at
  // the same offset — the backend must detect the broadcast and share
  // pages across banks instead of copying per DPU.
  driver::TransferMatrix w;
  for (std::uint32_t d = 0; d < rig.rank().nr_dpus(); ++d) {
    w.entries.push_back({d, 0, payload.data(), bytes});
  }
  rig.fe().write_to_rank(w);

  std::size_t resident = 0;
  for (std::uint32_t d = 0; d < rig.rank().nr_dpus(); ++d) {
    resident += rig.rank().mram(d).resident_pages();
  }
  // 8 DPUs referencing one shared 256-page set: per-bank refs count as
  // resident, but the *pages* are shared, proven by copy-on-write below.
  EXPECT_EQ(resident, 8u * (bytes / upmem::kMramPageSize));
  std::vector<std::uint8_t> patch = {9, 9, 9};
  rig.rank().mram(0).write(0, patch);
  std::vector<std::uint8_t> probe(3);
  rig.rank().mram(1).read(0, probe);
  EXPECT_EQ(probe[0], payload[0]);  // bank 1 unaffected
}

TEST(BroadcastDetection, MismatchedEntriesFallBackToScatter) {
  Rig rig;
  const std::uint64_t bytes = 64 * kKiB;
  auto payload = rig.vm.vmm().memory().alloc(bytes);
  std::memset(payload.data(), 0x5C, bytes);
  driver::TransferMatrix w;
  for (std::uint32_t d = 0; d < rig.rank().nr_dpus(); ++d) {
    // Different offsets per DPU: not a broadcast.
    w.entries.push_back({d, d * 4096ULL, payload.data(), bytes});
  }
  rig.fe().write_to_rank(w);
  // Read through the frontend (flushes the batch), then inspect the banks.
  auto out = rig.vm.vmm().memory().alloc(8);
  driver::TransferMatrix r;
  r.direction = driver::XferDirection::kFromRank;
  r.entries.push_back({0, 0, out.data(), 8});
  rig.fe().read_from_rank(r);
  for (std::uint32_t d = 0; d < rig.rank().nr_dpus(); ++d) {
    std::vector<std::uint8_t> probe(8);
    rig.rank().mram(d).read(d * 4096ULL, probe);
    EXPECT_EQ(probe[0], 0x5C) << d;
  }
}

TEST(PackedSymbols, OneMessageMovesPerDpuValues) {
  test::register_count_zeros();
  Rig rig;
  rig.fe().ci_load("test_count_zeros");
  const std::uint32_t n = rig.rank().nr_dpus();
  auto packed = rig.vm.vmm().memory().alloc(std::uint64_t{n} * 4);
  for (std::uint32_t d = 0; d < n; ++d) {
    const std::uint32_t v = 1000 + d;
    std::memcpy(packed.data() + d * 4, &v, 4);
  }
  const std::uint64_t notifies_before = rig.fe().stats().notifies;
  rig.fe().ci_push_symbols(driver::XferDirection::kToRank,
                           "partition_size", 0, packed, 4);
  EXPECT_EQ(rig.fe().stats().notifies, notifies_before + 1);  // one message

  // Read back through the packed path too, into a fresh buffer.
  auto out = rig.vm.vmm().memory().alloc(std::uint64_t{n} * 4);
  rig.fe().ci_push_symbols(driver::XferDirection::kFromRank,
                           "partition_size", 0, out, 4);
  for (std::uint32_t d = 0; d < n; ++d) {
    std::uint32_t v = 0;
    std::memcpy(&v, out.data() + d * 4, 4);
    EXPECT_EQ(v, 1000 + d);
  }
}

TEST(Limits, OversizedTransferRejectedEndToEnd) {
  Rig rig;
  auto buf = rig.vm.vmm().memory().alloc(4096);
  driver::TransferMatrix w;
  static std::uint8_t dummy;
  (void)dummy;
  for (std::uint32_t d = 0; d < 8; ++d) {
    // 8 entries claiming ~600 MiB each: 4.7 GiB total, over the 4 GiB
    // per-operation hardware cap (§3.1). Validation fires before any
    // pointer is dereferenced.
    w.entries.push_back({d, 0, buf.data(), 600 * kMiB});
  }
  EXPECT_THROW(rig.fe().write_to_rank(w), VpimError);
}

TEST(Limits, SymbolNameTooLongRejected) {
  Rig rig;
  const std::string long_name(80, 'x');
  std::uint32_t v = 0;
  EXPECT_THROW(rig.fe().ci_copy_to_symbol(0, long_name, 0,
                                          test::bytes_u32(v)),
               VpimError);
}

TEST(Messages, BulkWriteIsExactlyOneMessage) {
  Rig rig;
  auto buf = rig.vm.vmm().memory().alloc(1 * kMiB);
  const std::uint64_t before = rig.fe().stats().notifies;
  driver::TransferMatrix w;
  w.entries.push_back({0, 0, buf.data(), buf.size()});
  rig.fe().write_to_rank(w);
  EXPECT_EQ(rig.fe().stats().notifies, before + 1);
}

TEST(Messages, MixedCacheHitAndMissIsOneFillMessage) {
  Rig rig;
  auto buf = rig.vm.vmm().memory().alloc(128 * kKiB);
  std::memset(buf.data(), 0x3D, buf.size());
  driver::TransferMatrix w;
  for (std::uint32_t d = 0; d < 4; ++d) {
    w.entries.push_back({d, 0, buf.data(), 128 * kKiB});
  }
  rig.fe().write_to_rank(w);

  // Read 512 B from four DPUs at once: four misses, ONE fill message.
  auto out = rig.vm.vmm().memory().alloc(4 * 512);
  driver::TransferMatrix r;
  r.direction = driver::XferDirection::kFromRank;
  for (std::uint32_t d = 0; d < 4; ++d) {
    r.entries.push_back({d, 0, out.data() + d * 512, 512});
  }
  const std::uint64_t before = rig.fe().stats().notifies;
  rig.fe().read_from_rank(r);
  EXPECT_EQ(rig.fe().stats().notifies, before + 1);
  EXPECT_EQ(rig.fe().stats().cache_fills, 1u);
  EXPECT_EQ(rig.fe().stats().cache_misses, 4u);
}

TEST(Trace, RecordsEveryDeviceOperation) {
  Rig rig;
  obs::Tracer tracer;
  rig.host.attach_tracer(&tracer);

  auto buf = rig.vm.vmm().memory().alloc(128 * kKiB);
  driver::TransferMatrix w;
  w.entries.push_back({0, 0, buf.data(), buf.size()});
  rig.fe().write_to_rank(w);  // bulk -> "write"
  driver::TransferMatrix small;
  small.entries.push_back({0, 0, buf.data(), 256});
  rig.fe().write_to_rank(small);  // -> "write.batched"
  auto out = rig.vm.vmm().memory().alloc(256);
  driver::TransferMatrix r;
  r.direction = driver::XferDirection::kFromRank;
  r.entries.push_back({0, 0, out.data(), 256});
  rig.fe().read_from_rank(r);  // flush + fill + cached read

  std::map<obs::SpanKind, int> kinds;
  for (const auto& s : tracer.spans()) kinds[s.kind]++;
  EXPECT_EQ(kinds[obs::SpanKind::kWrite], 1);
  EXPECT_EQ(kinds[obs::SpanKind::kWriteBatched], 1);
  EXPECT_EQ(kinds[obs::SpanKind::kWriteFlush], 1);
  EXPECT_EQ(kinds[obs::SpanKind::kReadFill], 1);
  EXPECT_EQ(kinds[obs::SpanKind::kReadCached], 1);
  EXPECT_GT(tracer.total_for(obs::SpanKind::kWrite), 0u);

  // Every span ends no later than the current clock, the parent stack is
  // fully drained, and the CSV renders one row per span plus the header.
  EXPECT_FALSE(tracer.has_open());
  for (const auto& s : tracer.spans()) {
    EXPECT_LE(s.start + s.duration, rig.host.clock.now());
  }
  std::ostringstream csv;
  tracer.dump_csv(csv);
  const std::string text = csv.str();
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(text.begin(), text.end(), '\n')),
            tracer.spans().size() + 1);

  rig.host.attach_tracer(nullptr);  // detach: no further spans
  const std::size_t before = tracer.spans().size();
  rig.fe().write_to_rank(small);
  EXPECT_EQ(tracer.spans().size(), before);
}

TEST(Trace, CategoryTotalsMatchDeviceStatsExactly) {
  // The typed replacement for the old prefix-matching total_for: "read"
  // must not absorb "read.fill" (a nested internal span), and the root
  // category totals must reproduce the Fig 12 per-op breakdown to the ns.
  Rig rig;
  obs::Tracer tracer;
  rig.host.attach_tracer(&tracer);
  const DeviceStats& stats = rig.fe().stats();

  auto buf = rig.vm.vmm().memory().alloc(128 * kKiB);
  driver::TransferMatrix w;
  w.entries.push_back({0, 0, buf.data(), buf.size()});
  rig.fe().write_to_rank(w);
  auto out = rig.vm.vmm().memory().alloc(256);
  driver::TransferMatrix r;
  r.direction = driver::XferDirection::kFromRank;
  r.entries.push_back({0, 0, out.data(), 256});
  rig.fe().read_from_rank(r);  // miss -> nested fill
  rig.fe().read_from_rank(r);  // hit
  test::register_count_zeros();
  rig.fe().ci_load("test_count_zeros");
  rig.fe().ci_launch(0x1, std::nullopt);

  EXPECT_EQ(tracer.total_for(obs::Category::kWrite),
            stats.ops.time(RankOp::kWriteToRank));
  EXPECT_EQ(tracer.total_for(obs::Category::kRead),
            stats.ops.time(RankOp::kReadFromRank));
  EXPECT_EQ(tracer.total_for(obs::Category::kCi),
            stats.ops.time(RankOp::kCi));
  EXPECT_EQ(tracer.count_for(obs::Category::kRead),
            stats.ops.count(RankOp::kReadFromRank));

  // The fill really recorded — and really is excluded from the read total
  // (under the old prefix match it aliased into "read").
  const SimNs fill = tracer.total_for(obs::SpanKind::kReadFill);
  EXPECT_GT(fill, 0u);
  EXPECT_GT(tracer.total_for(obs::SpanKind::kRead) +
                tracer.total_for(obs::SpanKind::kReadCached) + fill,
            tracer.total_for(obs::Category::kRead));
}

TEST(Config, Table2PresetsMatchTheirColumns) {
  EXPECT_FALSE(VpimConfig::rust().c_enhancement);
  EXPECT_TRUE(VpimConfig::c_only().c_enhancement);
  EXPECT_FALSE(VpimConfig::c_only().prefetch_cache);
  EXPECT_TRUE(VpimConfig::with_prefetch().prefetch_cache);
  EXPECT_FALSE(VpimConfig::with_prefetch().request_batching);
  EXPECT_TRUE(VpimConfig::with_batching().request_batching);
  EXPECT_FALSE(VpimConfig::with_batching().prefetch_cache);
  EXPECT_TRUE(VpimConfig::with_prefetch_batching().prefetch_cache);
  EXPECT_TRUE(VpimConfig::with_prefetch_batching().request_batching);
  EXPECT_FALSE(VpimConfig::sequential().parallel_handling);
  EXPECT_TRUE(VpimConfig::full().parallel_handling);
  EXPECT_TRUE(VpimConfig::vhost().vhost_transitions);
  EXPECT_FALSE(VpimConfig::full().vhost_transitions);
}

}  // namespace
}  // namespace vpim::core
