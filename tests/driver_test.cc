#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "tests/testutil.h"

namespace vpim::driver {
namespace {

TEST(Sysfs, TracksUsage) {
  Sysfs sysfs(4);
  EXPECT_FALSE(sysfs.read(2).in_use);
  sysfs.set_in_use(2, "vm-7");
  EXPECT_TRUE(sysfs.read(2).in_use);
  EXPECT_EQ(sysfs.read(2).owner, "vm-7");
  sysfs.set_free(2);
  EXPECT_FALSE(sysfs.read(2).in_use);
  EXPECT_THROW(sysfs.read(4), VpimError);
}

TEST(Driver, PerfModeMappingIsExclusive) {
  test::TestRig rig(test::small_machine());
  auto m = rig.drv.map_rank(0, "app-a");
  EXPECT_TRUE(rig.drv.is_mapped(0));
  EXPECT_TRUE(rig.drv.sysfs().read(0).in_use);
  EXPECT_THROW(rig.drv.map_rank(0, "app-b"), VpimError);
  m.unmap();
  EXPECT_FALSE(rig.drv.is_mapped(0));
  EXPECT_FALSE(rig.drv.sysfs().read(0).in_use);
  auto m2 = rig.drv.map_rank(0, "app-b");  // now allowed
  EXPECT_TRUE(rig.drv.is_mapped(0));
}

TEST(Driver, MappingReleasesOnDestruction) {
  test::TestRig rig(test::small_machine());
  {
    auto m = rig.drv.map_rank(1, "scoped");
    EXPECT_TRUE(rig.drv.is_mapped(1));
  }
  EXPECT_FALSE(rig.drv.is_mapped(1));
}

TEST(Driver, TransferRoundTripAndCost) {
  test::TestRig rig(test::small_machine());
  auto m = rig.drv.map_rank(0, "xfer");

  Rng rng(5);
  std::vector<std::uint8_t> in(1 * kMiB), out(1 * kMiB);
  rng.fill_bytes(in.data(), in.size());

  TransferMatrix to;
  to.direction = XferDirection::kToRank;
  to.entries.push_back({3, 4096, in.data(), in.size()});

  const SimNs before = rig.clock.now();
  m.transfer(to);
  const SimNs write_cost = rig.clock.now() - before;
  // 1 MiB at the wide bandwidth (6 GB/s) ~ 175 us, plus the fixed cost.
  EXPECT_NEAR(static_cast<double>(write_cost),
              rig.cost.native_xfer_fixed_ns + 1048576 / 6.0, 100.0);

  TransferMatrix from;
  from.direction = XferDirection::kFromRank;
  from.entries.push_back({3, 4096, out.data(), out.size()});
  m.transfer(from);
  EXPECT_EQ(in, out);
}

TEST(Driver, RealTransformPathPreservesData) {
  test::TestRig rig(test::small_machine());
  auto m = rig.drv.map_rank(0, "xform");
  m.set_data_path({.naive = false, .real_transform = true});

  Rng rng(6);
  std::vector<std::uint8_t> in(12345), out(12345);
  rng.fill_bytes(in.data(), in.size());
  TransferMatrix to;
  to.entries.push_back({0, 0, in.data(), in.size()});
  m.transfer(to);

  m.set_data_path({.naive = true, .real_transform = true});
  TransferMatrix from;
  from.direction = XferDirection::kFromRank;
  from.entries.push_back({0, 0, out.data(), out.size()});
  m.transfer(from);
  EXPECT_EQ(in, out);
}

TEST(Driver, NaivePathIsSlower) {
  test::TestRig rig(test::small_machine());
  auto m = rig.drv.map_rank(0, "naive");
  std::vector<std::uint8_t> buf(8 * kMiB, 7);

  TransferMatrix matrix;
  matrix.entries.push_back({0, 0, buf.data(), buf.size()});

  SimNs t0 = rig.clock.now();
  m.transfer(matrix);
  const SimNs wide = rig.clock.now() - t0;

  m.set_data_path({.naive = true});
  t0 = rig.clock.now();
  m.transfer(matrix);
  const SimNs naive = rig.clock.now() - t0;

  // The naive/wide gap follows the calibrated bandwidths exactly.
  EXPECT_NEAR(static_cast<double>(naive) / static_cast<double>(wide),
              rig.cost.interleave_wide_gbps / rig.cost.interleave_naive_gbps,
              0.2);
}

TEST(Driver, BroadcastSharesPagesAcrossDpus) {
  test::TestRig rig(test::small_machine());
  auto m = rig.drv.map_rank(0, "bcast");

  Rng rng(7);
  std::vector<std::uint8_t> data(1 * kMiB + 100);  // unaligned tail
  rng.fill_bytes(data.data(), data.size());
  m.broadcast(0, data);

  auto& rank = rig.machine.rank(0);
  std::vector<std::uint8_t> out(data.size());
  for (std::uint32_t d = 0; d < rank.nr_dpus(); ++d) {
    rank.mram(d).read(0, out);
    EXPECT_EQ(out, data) << "dpu " << d;
  }
}

TEST(Driver, BroadcastCostScalesWithDpus) {
  test::TestRig rig(test::small_machine());  // 8 DPUs per rank
  auto m = rig.drv.map_rank(0, "bcast-cost");
  std::vector<std::uint8_t> data(1 * kMiB);

  const SimNs t0 = rig.clock.now();
  m.broadcast(0, data);
  const SimNs cost = rig.clock.now() - t0;
  const double expected =
      rig.cost.native_xfer_fixed_ns + 8.0 * 1048576 / 6.0;
  EXPECT_NEAR(static_cast<double>(cost), expected, 100.0);
}

TEST(Driver, OversizedTransferRejected) {
  test::TestRig rig(test::small_machine());
  auto m = rig.drv.map_rank(0, "big");
  TransferMatrix matrix;
  // 65 entries of 64 MiB nominal size = over the 4 GiB cap. Host pointers
  // are never dereferenced because validation fires first.
  static std::uint8_t dummy;
  for (int i = 0; i < 65; ++i) {
    matrix.entries.push_back({0, 0, &dummy, 64 * kMiB});
  }
  EXPECT_THROW(m.transfer(matrix), VpimError);
}

TEST(Driver, SafeModeChargesIoctl) {
  test::TestRig rig(test::small_machine());
  std::vector<std::uint8_t> buf(4096, 1);
  TransferMatrix matrix;
  matrix.entries.push_back({0, 0, buf.data(), buf.size()});

  const SimNs t0 = rig.clock.now();
  rig.drv.safe_transfer(0, matrix);
  const SimNs safe = rig.clock.now() - t0;

  auto m = rig.drv.map_rank(0, "perf");
  const SimNs t1 = rig.clock.now();
  m.transfer(matrix);
  const SimNs perf = rig.clock.now() - t1;

  EXPECT_EQ(safe, perf + rig.cost.ioctl_ns);
}

TEST(Driver, RankResetTakesPaperTime) {
  test::TestRig rig;  // paper geometry
  const SimNs t0 = rig.clock.now();
  rig.drv.reset_rank(0);
  const double ms = ns_to_ms(rig.clock.now() - t0);
  // The paper reports ~597 ms per rank reset; the calibrated memset
  // bandwidth should land within a few percent.
  EXPECT_NEAR(ms, 597.0, 60.0);
}

TEST(Driver, ResetOfMappedRankRejected) {
  test::TestRig rig(test::small_machine());
  auto m = rig.drv.map_rank(0, "holder");
  EXPECT_THROW(rig.drv.reset_rank(0), VpimError);
}

}  // namespace
}  // namespace vpim::driver
