// Unit tests for rank snapshots (the §7 pause/resume substrate) and their
// copy-on-write semantics.
#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "tests/test_kernels.h"
#include "tests/testutil.h"

namespace vpim::upmem {
namespace {

TEST(Snapshot, RoundTripsContentBinaryAndSymbols) {
  test::register_count_zeros();
  test::TestRig rig(test::small_machine());
  Rank& src = rig.machine.rank(0);
  Rank& dst = rig.machine.rank(1);

  src.ci_load("test_count_zeros");
  Rng rng(4);
  std::vector<std::uint8_t> data(48 * kKiB);
  rng.fill_bytes(data.data(), data.size());
  src.mram(3).write(12288, data);
  std::uint32_t ps = 777;
  src.ci_copy_to_symbol(3, "partition_size", 0, test::bytes_u32(ps));

  const Rank::Snapshot snap = src.save_snapshot();
  EXPECT_EQ(snap.dpus.size(), src.nr_dpus());
  EXPECT_GE(snap.resident_bytes(), data.size());

  dst.load_snapshot(snap);
  std::vector<std::uint8_t> out(data.size());
  dst.mram(3).read(12288, out);
  EXPECT_EQ(out, data);
  std::uint32_t ps_back = 0;
  dst.ci_copy_from_symbol(3, "partition_size", 0, test::bytes_u32(ps_back));
  EXPECT_EQ(ps_back, 777u);
  EXPECT_EQ(dst.dpu(3).loaded_kernel_name(), "test_count_zeros");
}

TEST(Snapshot, IsolatedFromLaterWritesOnBothSides) {
  test::TestRig rig(test::small_machine());
  Rank& src = rig.machine.rank(0);
  std::vector<std::uint8_t> original(4096, 0x11);
  src.mram(0).write(0, original);

  const Rank::Snapshot snap = src.save_snapshot();

  // Mutate the source after snapshotting: the snapshot must not change.
  std::vector<std::uint8_t> mutation(4096, 0x22);
  src.mram(0).write(0, mutation);

  Rank& dst = rig.machine.rank(1);
  dst.load_snapshot(snap);
  std::vector<std::uint8_t> out(4096);
  dst.mram(0).read(0, out);
  EXPECT_EQ(out, original);

  // And mutating the restored rank must not leak back into the source.
  std::vector<std::uint8_t> mutation2(4096, 0x33);
  dst.mram(0).write(0, mutation2);
  src.mram(0).read(0, out);
  EXPECT_EQ(out, mutation);
}

TEST(Snapshot, ResidentBytesTracksSparseness) {
  test::TestRig rig(test::small_machine());
  Rank& rank = rig.machine.rank(0);
  EXPECT_EQ(rank.save_snapshot().resident_bytes(), 0u);
  std::vector<std::uint8_t> page(4096, 1);
  rank.mram(0).write(0, page);             // 1 page
  rank.mram(5).write(10 * kMiB, page);     // 1 page, far away
  EXPECT_EQ(rank.save_snapshot().resident_bytes(), 2 * 4096u);
}

TEST(Snapshot, RunningRankRefusesSnapshot) {
  test::register_count_zeros();
  test::TestRig rig(test::small_machine());
  Rank& rank = rig.machine.rank(0);
  rank.ci_load("test_count_zeros");
  std::uint32_t ps = 1 * kMiB;
  std::vector<std::uint8_t> data(ps, 1);
  rank.mram(0).write(0, data);
  rank.ci_copy_to_symbol(0, "partition_size", 0, test::bytes_u32(ps));
  rank.ci_launch(0b1, 16);
  ASSERT_TRUE(rank.ci_any_running());
  EXPECT_THROW((void)rank.save_snapshot(), VpimError);
  rig.clock.set(rank.busy_until());
  EXPECT_NO_THROW((void)rank.save_snapshot());
}

TEST(Snapshot, RestoreIntoSmallerRankRejected) {
  test::TestRig rig({.nr_ranks = 2, .functional_dpus_per_rank = 8});
  upmem::Rank big(0, 16, rig.clock, rig.cost);
  const auto snap = big.save_snapshot();
  EXPECT_THROW(rig.machine.rank(0).load_snapshot(snap), VpimError);
}

}  // namespace
}  // namespace vpim::upmem
