// Manager quarantine / backoff state-machine properties under random
// fault plans and random tenant churn:
//
//  - no request is ever lost: every operation either completes or raises
//    a typed PimStatus error from the documented fault set — anything
//    else (untyped exception, abort, foreign data) fails the property;
//  - tenants never observe another tenant's bytes;
//  - after wind-down every rank converges to NAAV-and-unmapped, or to
//    FAIL when the underlying hardware is permanently dead;
//  - manager counters stay mutually consistent.
//
// Failing cases shrink along both axes (fewer churn steps, fewer injected
// faults) and print the one-line VPIM_PROP_SEED reproducer.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/proptest/proptest.h"
#include "tests/testutil.h"
#include "vpim/host.h"
#include "vpim/vpim_vm.h"

namespace vpim::prop {
namespace {

constexpr int kTenants = 3;
constexpr std::uint64_t kBufBytes = 16 * kKiB;

// One churn step encodes (tenant, action): tenant = s % 3, action = s / 3
// in 0..5 (verify, rewrite, migrate, suspend, close, observe).
struct ManagerCase {
  std::uint64_t fault_seed = 1;
  std::uint32_t transient = 0;
  std::uint32_t ecc = 0;
  std::uint32_t deaths = 0;
  std::uint32_t seizures = 0;
  std::uint32_t lost = 0;
  std::vector<std::uint64_t> steps;
};

std::string show_case(const ManagerCase& c) {
  std::string s = "fault_seed=" + std::to_string(c.fault_seed) +
                  " tr=" + std::to_string(c.transient) +
                  " ecc=" + std::to_string(c.ecc) +
                  " death=" + std::to_string(c.deaths) +
                  " seize=" + std::to_string(c.seizures) +
                  " lost=" + std::to_string(c.lost) + " steps=";
  for (std::uint64_t v : c.steps) s += std::to_string(v) + ",";
  return s;
}

Gen<ManagerCase> manager_case_gen() {
  Gen<ManagerCase> gen;
  gen.sample = [](Rng& rng) {
    ManagerCase c;
    c.fault_seed = rng.next_u64();
    c.transient = static_cast<std::uint32_t>(rng.uniform(0, 3));
    c.ecc = static_cast<std::uint32_t>(rng.uniform(0, 3));
    c.deaths = static_cast<std::uint32_t>(rng.uniform(0, 1));
    c.seizures = static_cast<std::uint32_t>(rng.uniform(0, 1));
    c.lost = static_cast<std::uint32_t>(rng.uniform(0, 1));
    const int nr_steps = static_cast<int>(rng.uniform(10, 40));
    for (int i = 0; i < nr_steps; ++i) {
      c.steps.push_back(
          static_cast<std::uint64_t>(rng.uniform(0, 3 * 6 - 1)));
    }
    return c;
  };
  gen.shrink = [](const ManagerCase& c) {
    std::vector<ManagerCase> out;
    if (c.steps.size() > 1) {
      ManagerCase front = c;
      front.steps.resize(c.steps.size() / 2);
      out.push_back(std::move(front));
      for (std::size_t i = 0; i < c.steps.size(); ++i) {
        ManagerCase fewer = c;
        fewer.steps.erase(fewer.steps.begin() +
                          static_cast<std::ptrdiff_t>(i));
        out.push_back(std::move(fewer));
      }
    }
    // Remove one fault class at a time: the minimal case keeps only the
    // faults the violation actually needs.
    const auto zap = [&](std::uint32_t ManagerCase::* field) {
      if (c.*field != 0) {
        ManagerCase fewer = c;
        fewer.*field = 0;
        out.push_back(std::move(fewer));
      }
    };
    zap(&ManagerCase::transient);
    zap(&ManagerCase::ecc);
    zap(&ManagerCase::deaths);
    zap(&ManagerCase::seizures);
    zap(&ManagerCase::lost);
    return out;
  };
  return gen;
}

struct Tenant {
  std::unique_ptr<core::VpimVm> vm;
  std::uint8_t tag = 0;
  bool open = false;
  bool suspended = false;
  bool pattern_valid = false;
  std::span<std::uint8_t> buf;
};

void run_churn(const ManagerCase& c) {
  core::ManagerConfig mgr;
  mgr.retry_wait_ns = 1 * kMs;
  mgr.max_attempts = 2;
  core::Host host({.nr_ranks = 3, .functional_dpus_per_rank = 8},
                  CostModel{}, mgr);
  FaultPlanConfig fcfg;
  fcfg.seed = c.fault_seed;
  fcfg.transient_dpu_faults = c.transient;
  fcfg.mram_ecc_faults = c.ecc;
  fcfg.rank_deaths = c.deaths;
  fcfg.rank_seizures = c.seizures;
  fcfg.lost_completions = c.lost;
  fcfg.max_op = 48;
  fcfg.seizure_from_ns = 100 * kMs;
  fcfg.seizure_until_ns = 2 * kSec;
  host.install_fault_plan(
      FaultPlan::generate(fcfg, host.machine.nr_ranks()));

  core::VpimConfig config = core::VpimConfig::full();
  config.oversubscribe = true;

  std::vector<Tenant> tenants(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    tenants[t].vm = std::make_unique<core::VpimVm>(
        host, vmm::VmmParams{.name = "prop-mgr" + std::to_string(t)}, 1,
        config);
    tenants[t].tag = static_cast<std::uint8_t>(0x30 + t);
    tenants[t].buf = tenants[t].vm->vmm().memory().alloc(kBufBytes);
  }
  auto frontend = [&](int t) -> core::Frontend& {
    return tenants[t].vm->device(0).frontend;
  };
  // "No request lost": an operation may only fail with a typed status
  // from the documented fault set; it then ends the tenant's session.
  // Any other exception escapes to the harness and fails the property.
  auto tolerate = [&](int t, auto&& op) -> bool {
    try {
      op();
      return true;
    } catch (const VpimStatusError& e) {
      const auto status = static_cast<virtio::PimStatus>(e.status());
      require(status == virtio::PimStatus::kDeviceFault ||
                  status == virtio::PimStatus::kUnbound ||
                  status == virtio::PimStatus::kTimeout ||
                  status == virtio::PimStatus::kNoCapacity,
              std::string("unexpected typed status: ") + e.what());
      frontend(t).close();
      tenants[t].open = false;
      tenants[t].suspended = false;
      tenants[t].pattern_valid = false;
      return false;
    }
  };
  auto write_pattern = [&](int t) {
    std::memset(tenants[t].buf.data(), tenants[t].tag, tenants[t].buf.size());
    driver::TransferMatrix w;
    w.entries.push_back(
        {2, 4096, tenants[t].buf.data(), tenants[t].buf.size()});
    if (tolerate(t, [&] { frontend(t).write_to_rank(w); })) {
      tenants[t].pattern_valid = true;
    }
  };
  auto verify_pattern = [&](int t) {
    if (!tenants[t].pattern_valid) return;
    auto out = tenants[t].vm->vmm().memory().alloc(kBufBytes);
    driver::TransferMatrix r;
    r.direction = driver::XferDirection::kFromRank;
    r.entries.push_back({2, 4096, out.data(), out.size()});
    if (!tolerate(t, [&] { frontend(t).read_from_rank(r); })) return;
    for (std::size_t i = 0; i < out.size(); ++i) {
      require(out[i] == tenants[t].tag,
              "tenant " + std::to_string(t) + " saw foreign byte at " +
                  std::to_string(i));
    }
  };

  for (std::uint64_t step : c.steps) {
    const int t = static_cast<int>(step % kTenants);
    const int action = static_cast<int>((step / kTenants) % 6);
    Tenant& tenant = tenants[t];
    if (!tenant.open && !tenant.suspended) {
      bool opened = false;
      if (tolerate(t, [&] { opened = frontend(t).open(); }) && opened) {
        tenant.open = true;
        write_pattern(t);
      }
      continue;
    }
    if (tenant.suspended) {
      bool resumed = false;
      if (tolerate(t, [&] { resumed = frontend(t).resume(); }) && resumed) {
        tenant.suspended = false;
        tenant.open = true;
        verify_pattern(t);
      }
      continue;
    }
    switch (action) {
      case 0:
        verify_pattern(t);
        break;
      case 1:
        write_pattern(t);
        break;
      case 2: {
        bool migrated = false;
        if (tolerate(t, [&] { migrated = frontend(t).migrate(); }) &&
            migrated) {
          verify_pattern(t);
        }
        break;
      }
      case 3:
        if (tolerate(t, [&] { frontend(t).suspend(); })) {
          tenant.open = false;
          tenant.suspended = true;
        }
        break;
      case 4:
        frontend(t).close();
        tenant.open = false;
        tenant.pattern_valid = false;
        break;
      default:
        host.manager.observe();
        break;
    }
  }

  // Wind down and let quarantine backoff (capped at 1600 ms) expire.
  for (int t = 0; t < kTenants; ++t) {
    if (tenants[t].suspended) {
      bool resumed = false;
      if (!tolerate(t, [&] { resumed = frontend(t).resume(); }) ||
          !resumed) {
        continue;
      }
      tenants[t].suspended = false;
      tenants[t].open = true;
    }
    if (tenants[t].open) frontend(t).close();
  }
  for (int pass = 0; pass < 6; ++pass) {
    host.clock.advance(2 * kSec);
    host.manager.observe();
  }

  // Convergence: every wrank's rank is healthy-or-FAIL, never stuck in
  // ALLO/NANA limbo or mapped after release.
  for (std::uint32_t r = 0; r < host.machine.nr_ranks(); ++r) {
    if (host.machine.rank(r).failed()) {
      require(host.manager.state(r) == core::RankState::kFail,
              "dead rank " + std::to_string(r) + " not quarantined");
      continue;
    }
    require(host.manager.state(r) == core::RankState::kNaav,
            "rank " + std::to_string(r) + " did not return to NAAV");
    require(!host.drv.is_mapped(r),
            "rank " + std::to_string(r) + " still mapped after wind-down");
  }

  const core::ManagerStats st = host.manager.stats();
  require(st.recoveries <= st.quarantine_probes,
          "more recoveries than quarantine probes");
  require(st.reuse_hits <= st.allocations,
          "more NANA reuse hits than allocations");
}

TEST(PropManager, ChurnUnderRandomFaultPlansConverges) {
  const Params params = Params::from_env(0x4A6E7D0Fu, 15);
  const auto out = run_property<ManagerCase>(
      "manager.fault_churn", params, manager_case_gen(), run_churn,
      show_case);
  EXPECT_TRUE(out.ok) << out.reproducer;
}

// The same property with faults forced off is a pure allocation
// state-machine check: churn alone must always converge back to all-NAAV.
TEST(PropManager, FaultFreeChurnNeverFails) {
  Gen<ManagerCase> quiet = manager_case_gen();
  auto base_sample = quiet.sample;
  quiet.sample = [base_sample](Rng& rng) {
    ManagerCase c = base_sample(rng);
    c.transient = c.ecc = c.deaths = c.seizures = c.lost = 0;
    return c;
  };
  const Params params = Params::from_env(0x0FAB57A7u, 10);
  const auto out = run_property<ManagerCase>(
      "manager.quiet_churn", params, quiet,
      [](const ManagerCase& c) {
        run_churn(c);
      },
      show_case);
  EXPECT_TRUE(out.ok) << out.reproducer;
}

}  // namespace
}  // namespace vpim::prop
