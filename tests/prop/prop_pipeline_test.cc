// Async-pipeline differential properties (ISSUE 7): for random op
// sequences the SQ/CQ path (submit_write / submit_read /
// poll_completions) must be observably equivalent to the blocking
// device-file path — read-back bytes, final MRAM image, and (at depth 1)
// the full stats/virtual-time fingerprint are bit-identical — at every
// queue depth and VPIM_THREADS setting. Under a seeded FaultPlan every
// submitted ticket is still reaped exactly once with a typed PimStatus;
// the pipeline may degrade but never loses or duplicates a completion.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/proptest/proptest.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "tests/testutil.h"
#include "virtio/pim_spec.h"
#include "vpim/host.h"
#include "vpim/vpim_vm.h"

namespace vpim::prop {
namespace {

using core::Frontend;
using core::VpimVm;

core::ManagerConfig fast_manager() {
  core::ManagerConfig cfg;
  cfg.retry_wait_ns = 1 * kMs;
  cfg.max_attempts = 2;
  return cfg;
}

// Frontend buffering off so the blocking reference issues exactly one
// message per op — the shape the async path must reproduce at depth 1.
core::VpimConfig depth_config(std::uint32_t depth) {
  core::VpimConfig cfg = core::VpimConfig::full();
  cfg.prefetch_cache = false;
  cfg.request_batching = false;
  cfg.queue_depth = depth;
  return cfg;
}

// Ops target one of kWindows disjoint MRAM windows; window w entry e maps
// to DPU w with a private kMaxEntryBytes-sized range, so concurrent
// in-flight requests never overlap each other's guest buffers or device
// ranges unless the sequence deliberately rewrites a window.
constexpr std::uint32_t kWindows = 8;  // == functional DPUs per rank
constexpr std::uint32_t kMaxEntries = 3;
constexpr std::uint64_t kMaxEntryBytes = 2048;

struct OpShape {
  bool is_write = false;
  std::uint32_t window = 0;
  std::vector<std::uint64_t> sizes;  // one per entry, 1..kMaxEntryBytes
  std::uint64_t data_seed = 1;       // write payload generator
};

struct OpSeqCase {
  std::vector<OpShape> ops;
};

std::string show_case(const OpSeqCase& c) {
  std::string s = "ops=[";
  for (const OpShape& op : c.ops) {
    s += op.is_write ? "W" : "R";
    s += std::to_string(op.window) + "(";
    for (std::uint64_t sz : op.sizes) s += std::to_string(sz) + ",";
    s += ")";
  }
  return s + "]";
}

Gen<OpSeqCase> op_seq_gen() {
  Gen<OpSeqCase> gen;
  gen.sample = [](Rng& rng) {
    OpSeqCase c;
    const auto n = rng.uniform(4, 24);
    for (std::int64_t i = 0; i < n; ++i) {
      OpShape op;
      op.is_write = rng.uniform(0, 1) == 0;
      op.window = static_cast<std::uint32_t>(rng.uniform(0, kWindows - 1));
      const auto entries = rng.uniform(1, kMaxEntries);
      for (std::int64_t e = 0; e < entries; ++e) {
        op.sizes.push_back(static_cast<std::uint64_t>(
            rng.uniform(1, static_cast<std::int64_t>(kMaxEntryBytes))));
      }
      op.data_seed = rng.next_u64();
      c.ops.push_back(std::move(op));
    }
    return c;
  };
  gen.shrink = [](const OpSeqCase& c) {
    std::vector<OpSeqCase> out;
    if (c.ops.size() > 1) {
      OpSeqCase head = c;
      head.ops.resize(c.ops.size() / 2);
      out.push_back(std::move(head));
    }
    for (std::size_t i = 0; c.ops.size() > 1 && i < c.ops.size(); ++i) {
      OpSeqCase fewer = c;
      fewer.ops.erase(fewer.ops.begin() + static_cast<std::ptrdiff_t>(i));
      out.push_back(std::move(fewer));
    }
    for (std::size_t i = 0; i < c.ops.size(); ++i) {
      for (std::size_t e = 0; e < c.ops[i].sizes.size(); ++e) {
        if (c.ops[i].sizes[e] > 1) {
          OpSeqCase smaller = c;
          smaller.ops[i].sizes[e] = c.ops[i].sizes[e] / 2 + 1;
          out.push_back(std::move(smaller));
        }
      }
    }
    return out;
  };
  return gen;
}

driver::TransferMatrix matrix_for(const OpShape& op,
                                  std::span<std::uint8_t> buf,
                                  driver::XferDirection dir) {
  driver::TransferMatrix m;
  m.direction = dir;
  std::uint64_t cursor = 0;
  for (std::size_t e = 0; e < op.sizes.size(); ++e) {
    m.entries.push_back({op.window, e * kMaxEntryBytes, buf.data() + cursor,
                         op.sizes[e]});
    cursor += op.sizes[e];
  }
  return m;
}

std::uint64_t op_bytes(const OpShape& op) {
  std::uint64_t total = 0;
  for (std::uint64_t sz : op.sizes) total += sz;
  return total;
}

// Everything observable about one execution of an op sequence.
struct RunResult {
  std::vector<std::vector<std::uint8_t>> reads;  // per read-op, in order
  std::vector<std::uint8_t> final_image;         // window-ordered read-back
  SimNs clock_end = 0;
  std::uint64_t poll_calls = 0;  // each charges one guest poll syscall
  std::uint64_t notifies = 0;
  std::uint64_t doorbells = 0;
  std::uint64_t coalesced_notifies = 0;
  std::uint64_t completion_irqs = 0;
};

struct Rig {
  explicit Rig(std::uint32_t depth)
      : host(test::small_machine(), CostModel{}, fast_manager()),
        vm(host, {.name = "prop-pipe"}, 1, depth_config(depth)) {}

  guest::GuestMemory& mem() { return vm.vmm().memory(); }
  Frontend& fe() { return vm.device(0).frontend; }

  std::span<std::uint8_t> buffer_for(const OpShape& op) {
    std::span<std::uint8_t> buf = mem().alloc(op_bytes(op));
    if (op.is_write) {
      Rng data(op.data_seed);
      data.fill_bytes(buf.data(), buf.size());
    } else {
      std::memset(buf.data(), 0, buf.size());
    }
    return buf;
  }

  void capture_tail(RunResult& out) {
    // Full window read-back through the blocking path: one image that any
    // divergence in write ordering or payload placement must perturb.
    for (std::uint32_t w = 0; w < kWindows; ++w) {
      OpShape probe;
      probe.is_write = false;
      probe.window = w;
      probe.sizes.assign(kMaxEntries, kMaxEntryBytes);
      std::span<std::uint8_t> buf = buffer_for(probe);
      fe().read_from_rank(
          matrix_for(probe, buf, driver::XferDirection::kFromRank));
      out.final_image.insert(out.final_image.end(), buf.begin(), buf.end());
    }
    fe().close();
    out.clock_end = host.clock.now();
    const core::DeviceStats& stats = vm.device(0).stats;
    out.notifies = stats.notifies;
    out.doorbells = stats.doorbells;
    out.coalesced_notifies = stats.coalesced_notifies;
    out.completion_irqs = stats.completion_irqs;
  }

  core::Host host;
  VpimVm vm;
};

RunResult run_sync(const OpSeqCase& c) {
  Rig rig(/*depth=*/1);
  require(rig.fe().open(), "sync rig: no rank available");
  RunResult out;
  for (const OpShape& op : c.ops) {
    std::span<std::uint8_t> buf = rig.buffer_for(op);
    if (op.is_write) {
      rig.fe().write_to_rank(
          matrix_for(op, buf, driver::XferDirection::kToRank));
    } else {
      rig.fe().read_from_rank(
          matrix_for(op, buf, driver::XferDirection::kFromRank));
      out.reads.emplace_back(buf.begin(), buf.end());
    }
  }
  rig.capture_tail(out);
  return out;
}

RunResult run_async(const OpSeqCase& c, std::uint32_t depth) {
  Rig rig(depth);
  require(rig.fe().open(), "async rig: no rank available");
  RunResult out;

  struct Pending {
    const OpShape* op;
    std::span<std::uint8_t> buf;
    bool reaped = false;
  };
  std::map<Frontend::Ticket, Pending> pending;
  for (const OpShape& op : c.ops) {
    std::span<std::uint8_t> buf = rig.buffer_for(op);
    const driver::TransferMatrix m = matrix_for(
        op, buf,
        op.is_write ? driver::XferDirection::kToRank
                    : driver::XferDirection::kFromRank);
    const Frontend::Ticket t =
        op.is_write ? rig.fe().submit_write(m) : rig.fe().submit_read(m);
    require(pending.emplace(t, Pending{&op, buf}).second,
            "duplicate ticket issued");
  }

  std::size_t reaped = 0;
  int idle_polls = 0;
  while (reaped < c.ops.size() && idle_polls < 2) {
    const auto batch = rig.fe().poll_completions();
    ++out.poll_calls;
    if (batch.empty()) {
      ++idle_polls;
      continue;
    }
    idle_polls = 0;
    for (const Frontend::Completion& done : batch) {
      auto it = pending.find(done.ticket);
      require(it != pending.end(), "completion for unknown ticket");
      require(!it->second.reaped, "ticket completed twice");
      it->second.reaped = true;
      ++reaped;
      require(done.status == 0,
              "completion status " + std::to_string(done.status));
      require(done.is_write == it->second.op->is_write,
              "completion direction mismatch");
      require(done.bytes == op_bytes(*it->second.op),
              "completion byte count mismatch");
    }
  }
  require(reaped == c.ops.size(), "pipeline lost completions");

  // Read results land in submission order: tickets are issued
  // monotonically, so walking the map walks the original sequence.
  for (const auto& [ticket, p] : pending) {
    if (!p.op->is_write) out.reads.emplace_back(p.buf.begin(), p.buf.end());
  }
  rig.capture_tail(out);
  return out;
}

void require_same_data(const RunResult& sync, const RunResult& async,
                       std::uint32_t depth) {
  const std::string tag = " (depth " + std::to_string(depth) + ")";
  require(sync.reads.size() == async.reads.size(),
          "read-op count diverged" + tag);
  for (std::size_t i = 0; i < sync.reads.size(); ++i) {
    require(sync.reads[i] == async.reads[i],
            "read " + std::to_string(i) + " bytes diverged" + tag);
  }
  require(sync.final_image == async.final_image,
          "final MRAM image diverged" + tag);
}

// ---- property 1: async == sync at every depth ---------------------------

TEST(PropPipeline, AsyncPathMatchesBlockingPathAtEveryDepth) {
  const Params params = Params::from_env(0xA51DC, 40);
  const auto out = run_property<OpSeqCase>(
      "pipeline.async_vs_sync", params, op_seq_gen(),
      [&](const OpSeqCase& c) {
        const RunResult sync = run_sync(c);
        for (std::uint32_t depth : {1u, 2u, 8u}) {
          const RunResult async = run_async(c, depth);
          require_same_data(sync, async, depth);
          // The async path's only extra virtual-time cost is the guest
          // poll syscall itself (one ioctl_ns per poll_completions call);
          // everything device-side must cost exactly the same at depth 1
          // and strictly no more at deeper queues.
          const SimNs poll_cost =
              static_cast<SimNs>(async.poll_calls) * CostModel{}.ioctl_ns;
          if (depth == 1) {
            // Depth 1 is the classic synchronous device in disguise: the
            // whole stats/virtual-time fingerprint must be bit-identical.
            require(sync.clock_end + poll_cost == async.clock_end,
                    "virtual time diverged at depth 1");
            require(sync.notifies == async.notifies &&
                        sync.doorbells == async.doorbells &&
                        sync.coalesced_notifies ==
                            async.coalesced_notifies &&
                        sync.completion_irqs == async.completion_irqs,
                    "doorbell/IRQ stats diverged at depth 1");
          } else {
            // Deeper queues must save messages, never add them.
            require(async.doorbells <= sync.doorbells,
                    "deep queue inflated doorbells");
            require(async.clock_end <= sync.clock_end + poll_cost,
                    "deep queue inflated virtual time");
          }
        }
      },
      show_case);
  EXPECT_TRUE(out.ok) << out.reproducer;
}

// ---- property 2: the deep pipeline is thread-count invariant ------------

class PropPipelineThreads : public ::testing::Test {
 protected:
  void SetUp() override { original_ = ThreadPool::instance().size(); }
  void TearDown() override { ThreadPool::instance().resize(original_); }
  unsigned original_ = 1;
};

TEST_F(PropPipelineThreads, DeepQueueIsThreadCountInvariant) {
  const Params params = Params::from_env(0xA51DD, 15);
  const auto out = run_property<OpSeqCase>(
      "pipeline.thread_invariance", params, op_seq_gen(),
      [&](const OpSeqCase& c) {
        ThreadPool::instance().resize(1);
        const RunResult base = run_async(c, /*depth=*/8);
        ThreadPool::instance().resize(4);
        const RunResult wide = run_async(c, /*depth=*/8);
        ThreadPool::instance().resize(1);
        require_same_data(base, wide, 8);
        require(base.clock_end == wide.clock_end,
                "virtual time depends on VPIM_THREADS");
        require(base.notifies == wide.notifies &&
                    base.doorbells == wide.doorbells &&
                    base.coalesced_notifies == wide.coalesced_notifies &&
                    base.completion_irqs == wide.completion_irqs,
                "doorbell/IRQ stats depend on VPIM_THREADS");
      },
      show_case);
  EXPECT_TRUE(out.ok) << out.reproducer;
}

// ---- property 3: no ticket lost or duplicated under injected faults -----

struct FaultSeqCase {
  OpSeqCase seq;
  std::uint64_t fault_seed = 1;
};

std::string show_fault_case(const FaultSeqCase& c) {
  return "fault_seed=" + std::to_string(c.fault_seed) + " " +
         show_case(c.seq);
}

Gen<FaultSeqCase> fault_seq_gen() {
  auto seqs = op_seq_gen();
  auto shared = std::make_shared<Gen<OpSeqCase>>(std::move(seqs));
  Gen<FaultSeqCase> gen;
  gen.sample = [shared](Rng& rng) {
    FaultSeqCase c;
    c.seq = shared->sample(rng);
    c.fault_seed = rng.next_u64();
    return c;
  };
  gen.shrink = [shared](const FaultSeqCase& c) {
    std::vector<FaultSeqCase> out;
    for (OpSeqCase& fewer : shared->shrink(c.seq)) {
      out.push_back({std::move(fewer), c.fault_seed});
    }
    return out;
  };
  return gen;
}

bool typed_status(std::int32_t status) {
  switch (static_cast<virtio::PimStatus>(status)) {
    case virtio::PimStatus::kOk:
    case virtio::PimStatus::kBadRequest:
    case virtio::PimStatus::kUnbound:
    case virtio::PimStatus::kNoCapacity:
    case virtio::PimStatus::kTimeout:
    case virtio::PimStatus::kDeviceFault:
    case virtio::PimStatus::kAdmissionReject:
    case virtio::PimStatus::kOverloaded:
    case virtio::PimStatus::kCancelled:
      return true;
    default:
      return false;
  }
}

// One async execution under the generated fault schedule; returns the
// per-ticket statuses (submission order) plus the virtual end time.
std::pair<std::vector<std::int32_t>, SimNs> run_async_with_faults(
    const FaultSeqCase& c, std::uint32_t depth = 8) {
  core::Host host(test::small_machine(), CostModel{}, fast_manager());
  FaultPlanConfig cfg;
  cfg.seed = c.fault_seed;
  cfg.transient_dpu_faults = 2;
  cfg.mram_ecc_faults = 2;
  cfg.rank_deaths = 1;
  cfg.max_op = 8;
  // nr_ranks=1 aims every event at rank 0 — the rank the device binds —
  // so the schedule actually fires; a death migrates onto rank 1.
  host.install_fault_plan(FaultPlan::generate(cfg, /*nr_ranks=*/1));
  VpimVm vm(host, {.name = "prop-pipe-flt"}, 1, depth_config(depth));
  Frontend& fe = vm.device(0).frontend;
  require(fe.open(), "fault rig: no rank available");

  struct Slot {
    std::span<std::uint8_t> buf;
    int completions = 0;
    std::int32_t status = -1;
  };
  guest::GuestMemory& mem = vm.vmm().memory();
  std::map<Frontend::Ticket, Slot> pending;
  std::vector<Frontend::Ticket> order;
  for (const OpShape& op : c.seq.ops) {
    std::span<std::uint8_t> buf = mem.alloc(op_bytes(op));
    if (op.is_write) {
      Rng data(op.data_seed);
      data.fill_bytes(buf.data(), buf.size());
    }
    const driver::TransferMatrix m = matrix_for(
        op, buf,
        op.is_write ? driver::XferDirection::kToRank
                    : driver::XferDirection::kFromRank);
    const Frontend::Ticket t =
        op.is_write ? fe.submit_write(m) : fe.submit_read(m);
    require(pending.emplace(t, Slot{buf}).second, "duplicate ticket");
    order.push_back(t);
  }

  std::size_t reaped = 0;
  int idle_polls = 0;
  while (reaped < order.size() && idle_polls < 3) {
    const auto batch = fe.poll_completions();
    if (batch.empty()) {
      ++idle_polls;
      continue;
    }
    idle_polls = 0;
    for (const Frontend::Completion& done : batch) {
      auto it = pending.find(done.ticket);
      require(it != pending.end(), "completion for unknown ticket");
      it->second.completions++;
      it->second.status = done.status;
    }
    reaped = 0;
    for (const auto& [t, slot] : pending) {
      reaped += slot.completions > 0 ? 1 : 0;
    }
  }

  std::vector<std::int32_t> statuses;
  for (Frontend::Ticket t : order) {
    const Slot& slot = pending.at(t);
    require(slot.completions == 1,
            "ticket reaped " + std::to_string(slot.completions) +
                " times under faults");
    require(typed_status(slot.status),
            "untyped completion status " + std::to_string(slot.status));
    statuses.push_back(slot.status);
  }
  fe.close();
  return {std::move(statuses), host.clock.now()};
}

TEST(PropPipeline, EveryTicketReapsExactlyOnceUnderFaults) {
  const Params params = Params::from_env(0xA51DE, 30);
  const auto out = run_property<FaultSeqCase>(
      "pipeline.fault_ticket_accounting", params, fault_seq_gen(),
      [&](const FaultSeqCase& c) {
        const auto first = run_async_with_faults(c);
        const auto second = run_async_with_faults(c);
        require(first.first == second.first,
                "fault statuses are not reproducible for a fixed seed");
        require(first.second == second.second,
                "virtual time under faults is not reproducible");
      },
      show_fault_case);
  EXPECT_TRUE(out.ok) << out.reproducer;
}

// ---- property 4: random deadlines race random completion times ----------
//
// ISSUE 8: every op carries an absolute deadline drawn from "certainly
// expired by drain time" up to "comfortably in the future". Whatever the
// race's outcome — backend sheds the work, or it completes first — every
// ticket reaps exactly once with kTimeout or success, reproducibly.

struct DeadlineSeqCase {
  OpSeqCase seq;
  std::vector<SimNs> deadline_offsets;  // relative to submit time, 1:1 ops
};

std::string show_deadline_case(const DeadlineSeqCase& c) {
  std::string s = show_case(c.seq) + " deadlines=[";
  for (SimNs d : c.deadline_offsets) s += std::to_string(d) + ",";
  return s + "]";
}

Gen<DeadlineSeqCase> deadline_seq_gen() {
  auto seqs = op_seq_gen();
  auto shared = std::make_shared<Gen<OpSeqCase>>(std::move(seqs));
  Gen<DeadlineSeqCase> gen;
  gen.sample = [shared](Rng& rng) {
    DeadlineSeqCase c;
    c.seq = shared->sample(rng);
    for (std::size_t i = 0; i < c.seq.ops.size(); ++i) {
      // Log-uniform-ish spread: 1 ns (hopeless — expires before the
      // backend can drain) up to ~160 us (comfortably met), so both
      // outcomes of the race occur across a batch of iterations.
      const auto mag = rng.uniform(0, 7);
      c.deadline_offsets.push_back(
          static_cast<SimNs>(rng.uniform(1, 10)) *
          (SimNs{1} << (2 * mag)));
    }
    return c;
  };
  gen.shrink = [shared](const DeadlineSeqCase& c) {
    std::vector<DeadlineSeqCase> out;
    for (OpSeqCase& fewer : shared->shrink(c.seq)) {
      DeadlineSeqCase d;
      d.deadline_offsets.assign(
          c.deadline_offsets.begin(),
          c.deadline_offsets.begin() +
              static_cast<std::ptrdiff_t>(fewer.ops.size()));
      d.seq = std::move(fewer);
      out.push_back(std::move(d));
    }
    return out;
  };
  return gen;
}

std::pair<std::vector<std::int32_t>, SimNs> run_async_with_deadlines(
    const DeadlineSeqCase& c, std::uint32_t depth) {
  Rig rig(depth);
  require(rig.fe().open(), "deadline rig: no rank available");
  Frontend& fe = rig.fe();

  struct Slot {
    int completions = 0;
    std::int32_t status = -1;
  };
  std::map<Frontend::Ticket, Slot> pending;
  std::vector<Frontend::Ticket> order;
  for (std::size_t i = 0; i < c.seq.ops.size(); ++i) {
    const OpShape& op = c.seq.ops[i];
    std::span<std::uint8_t> buf = rig.buffer_for(op);
    const driver::TransferMatrix m = matrix_for(
        op, buf,
        op.is_write ? driver::XferDirection::kToRank
                    : driver::XferDirection::kFromRank);
    const SimNs deadline = rig.host.clock.now() + c.deadline_offsets[i];
    const Frontend::SubmitResult r =
        op.is_write ? fe.try_submit_write(m, deadline)
                    : fe.try_submit_read(m, deadline);
    // No admission controller and no CQ cap: every submission admits.
    require(r.ok(), "unexpected shed without overload");
    require(pending.emplace(r.ticket, Slot{}).second, "duplicate ticket");
    order.push_back(r.ticket);
  }

  std::size_t reaped = 0;
  int idle_polls = 0;
  while (reaped < order.size() && idle_polls < 3) {
    const auto batch = fe.poll_completions();
    if (batch.empty()) {
      ++idle_polls;
      continue;
    }
    idle_polls = 0;
    for (const Frontend::Completion& done : batch) {
      auto it = pending.find(done.ticket);
      require(it != pending.end(), "completion for unknown ticket");
      it->second.completions++;
      it->second.status = done.status;
      reaped += it->second.completions == 1 ? 1 : 0;
    }
  }

  std::vector<std::int32_t> statuses;
  for (Frontend::Ticket t : order) {
    const Slot& slot = pending.at(t);
    require(slot.completions == 1,
            "ticket reaped " + std::to_string(slot.completions) +
                " times in a deadline race");
    require(slot.status == 0 ||
                slot.status ==
                    static_cast<std::int32_t>(virtio::PimStatus::kTimeout),
            "deadline race produced status " + std::to_string(slot.status) +
                " (want success or kTimeout)");
    statuses.push_back(slot.status);
  }
  fe.close();
  return {std::move(statuses), rig.host.clock.now()};
}

TEST(PropPipeline, DeadlinesRacingCompletionsAlwaysReapTyped) {
  const Params params = Params::from_env(0xA51DF, 30);
  const auto out = run_property<DeadlineSeqCase>(
      "pipeline.deadline_race", params, deadline_seq_gen(),
      [&](const DeadlineSeqCase& c) {
        for (std::uint32_t depth : {1u, 8u}) {
          const auto first = run_async_with_deadlines(c, depth);
          const auto second = run_async_with_deadlines(c, depth);
          require(first.first == second.first,
                  "deadline race outcome not reproducible at depth " +
                      std::to_string(depth));
          require(first.second == second.second,
                  "virtual time under deadlines not reproducible");
        }
      },
      show_deadline_case);
  EXPECT_TRUE(out.ok) << out.reproducer;
}

// ---- property 5: fault semantics do not depend on the queue depth -------
//
// PR 7 disables the backend's deferred-copy backlog whenever a FaultPlan
// is installed, precisely so that injected faults fire inside the faulting
// request at any pipeline depth. This property pins that contract: for
// any op sequence and fault seed, the per-ticket status vector is
// identical whether the guest runs the classic depth-1 queue or a deep
// depth-8 pipeline.

TEST(PropPipeline, FaultSemanticsAreIdenticalAtDepth1And8) {
  const Params params = Params::from_env(0xA51E0, 25);
  const auto out = run_property<FaultSeqCase>(
      "pipeline.fault_depth_equivalence", params, fault_seq_gen(),
      [&](const FaultSeqCase& c) {
        const auto shallow = run_async_with_faults(c, /*depth=*/1);
        const auto deep = run_async_with_faults(c, /*depth=*/8);
        require(shallow.first == deep.first,
                "fault statuses diverge between depth 1 and depth 8");
      },
      show_fault_case);
  EXPECT_TRUE(out.ok) << out.reproducer;
}

}  // namespace
}  // namespace vpim::prop
