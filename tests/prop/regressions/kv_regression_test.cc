// KV regression corpus: minimal deterministic counterexamples promoted
// from the prop_kv_test generative suites after shrinking. Each case pins
// one hazard a randomized run first surfaced, so the exact op sequence
// keeps being exercised on every run even if the generators' RNG streams
// drift.
//
// Every case notes the corpus + seed it was promoted from.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "common/proptest/kv_oracle.h"
#include "kv/kv_service.h"
#include "tests/testutil.h"
#include "vpim/host.h"
#include "vpim/vpim_vm.h"

namespace vpim::kv {
namespace {

core::ManagerConfig fast_manager() {
  core::ManagerConfig cfg;
  cfg.retry_wait_ns = 1 * kMs;
  cfg.max_attempts = 2;
  return cfg;
}

// The prop_kv_test service shape the seeds below were shrunk under.
KvConfig corpus_config() {
  KvConfig cfg;
  cfg.partitions = 8;
  cfg.nr_dpus = 4;
  cfg.slots_per_dpu = 4;
  cfg.slot_capacity = 6;
  cfg.max_batch_ops = 8;
  cfg.hot_cache_entries = 8;
  cfg.rebalance_period = 2;
  cfg.rebalance_ratio_permille = 1200;
  return cfg;
}

struct KvRig {
  explicit KvRig(KvConfig cfg = corpus_config())
      : host(test::small_machine(), CostModel{}, fast_manager()),
        vm(host, {.name = "kv-regress"}, 1),
        svc(vm.device(0).frontend, vm.vmm().memory(), host.clock, host.cost,
            host.obs, cfg) {
    EXPECT_TRUE(svc.open());
  }
  ~KvRig() { svc.close(); }

  core::Host host;
  core::VpimVm vm;
  KvService svc;
};

// ---- case 1: SCAN upper bound is exclusive ------------------------------
// Promoted from kv.teeth_scan_bound, seed 16257884470473707514, shrunk to
//   P22=... S[18,22)
// The teeth kernel's inclusive bound returned the row whose key equals
// `hi`; the production kernel must return an empty window, and widening
// the bound by one must make exactly that row appear. Replays of other
// failing case seeds (31337, 987654321) shrink to the same canonical
// shape, so this one case covers the whole family.
TEST(KvRegression, ScanUpperBoundIsExclusive) {
  KvRig rig;
  std::vector<KvOp> ops;
  ops.push_back({KvOpKind::kPut, 22, 1750348945108170017ULL, 0});
  ops.push_back({KvOpKind::kScan, 18, 0, 22});  // [18, 22): key 22 excluded
  ops.push_back({KvOpKind::kScan, 18, 0, 23});  // [18, 23): key 22 included
  const auto results = rig.svc.execute(ops);

  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[1].status, KvStatus::kOk);
  EXPECT_EQ(results[1].nresults, 0u) << "scan returned its exclusive bound";
  ASSERT_EQ(results[2].nresults, 1u);
  EXPECT_EQ(results[2].pairs[0].first, 22u);
  EXPECT_EQ(results[2].pairs[0].second, 1750348945108170017ULL);
}

// ---- case 2: GET results must not refill the cache over a same-batch ----
// mutation. Promoted from kv.oracle_differential, seed 1043327164809084185
// (found with the enqueue-order guard removed), hand-minimized from the
// 13-op shrink to the canonical 4-op shape:
//   batch 1: P3=a G3 P3=b   batch 2: G3
// The first GET's device result carries value `a` (the device executes it
// before the second PUT in inbox order), but by enqueue order the key was
// mutated afterwards — refilling the hot-key cache with `a` would serve a
// stale hit to every later batch. The guard must leave the cache coherent
// so batch 2 reads `b`.
TEST(KvRegression, CacheRefillRespectsSameBatchMutations) {
  KvRig rig;
  const std::uint64_t a = 6312030920231233409ULL;
  const std::uint64_t b = 8573753234024024061ULL;

  std::vector<KvOp> batch1;
  batch1.push_back({KvOpKind::kPut, 3, a, 0});
  batch1.push_back({KvOpKind::kGet, 3, 0, 0});
  batch1.push_back({KvOpKind::kPut, 3, b, 0});
  const auto r1 = rig.svc.execute(batch1);
  ASSERT_EQ(r1.size(), 3u);
  EXPECT_EQ(r1[1].value, a);  // device order: GET sees the first PUT
  EXPECT_EQ(r1[2].value, a);  // overwrite reports the previous value

  std::vector<KvOp> batch2;
  batch2.push_back({KvOpKind::kGet, 3, 0, 0});
  const auto r2 = rig.svc.execute(batch2);
  ASSERT_EQ(r2.size(), 1u);
  EXPECT_EQ(r2[0].status, KvStatus::kOk);
  EXPECT_EQ(r2[0].value, b) << "hot-key cache served a stale refill";

  // Same hazard, DELETE flavour: the GET result must not resurrect a key
  // deleted later in its own batch.
  std::vector<KvOp> batch3;
  batch3.push_back({KvOpKind::kGet, 3, 0, 0});
  batch3.push_back({KvOpKind::kDelete, 3, 0, 0});
  const auto r3 = rig.svc.execute(batch3);
  ASSERT_EQ(r3.size(), 2u);
  EXPECT_EQ(r3[0].value, b);
  EXPECT_EQ(r3[1].status, KvStatus::kOk);

  std::vector<KvOp> batch4;
  batch4.push_back({KvOpKind::kGet, 3, 0, 0});
  const auto r4 = rig.svc.execute(batch4);
  EXPECT_EQ(r4[0].status, KvStatus::kNotFound)
      << "cache resurrected a deleted key";
}

// ---- case 3: the final device image survives the full corpus ------------
// Both promoted sequences, replayed back-to-back against the oracle's
// independently built partition images — the cheap end-state check the
// generative suite performs after every case.
TEST(KvRegression, CorpusLeavesOracleEquivalentImage) {
  KvRig rig;
  prop::KvOracle oracle(corpus_config().partitions,
                        corpus_config().slot_capacity,
                        corpus_config().scan_limit);
  std::vector<KvOp> ops;
  ops.push_back({KvOpKind::kPut, 22, 1750348945108170017ULL, 0});
  ops.push_back({KvOpKind::kPut, 3, 6312030920231233409ULL, 0});
  ops.push_back({KvOpKind::kPut, 3, 8573753234024024061ULL, 0});
  ops.push_back({KvOpKind::kDelete, 22, 0, 0});
  rig.svc.execute(ops);
  oracle.put(22, 1750348945108170017ULL);
  oracle.put(3, 6312030920231233409ULL);
  oracle.put(3, 8573753234024024061ULL);
  oracle.del(22);

  for (std::uint32_t p = 0; p < corpus_config().partitions; ++p) {
    EXPECT_EQ(rig.svc.partition_image(p), oracle.partition_image(p))
        << "partition " << p;
  }
}

}  // namespace
}  // namespace vpim::kv
