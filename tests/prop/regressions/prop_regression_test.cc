// Regression corpus: minimal deterministic counterexamples promoted from
// the randomized fuzz suites (frontend_fuzz_test.cc HostileChains,
// driver_fuzz_test.cc) after shrinking. Each case pins one hostile shape
// that a fuzz run first surfaced, so the exact bytes keep being exercised
// on every run even if the fuzzers' RNG streams drift.
//
// Every case notes the corpus + seed it was promoted from.
#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <vector>

#include "common/fault.h"
#include "driver/sysfs.h"
#include "tests/testutil.h"
#include "upmem/layout.h"
#include "vpim/host.h"
#include "vpim/vpim_vm.h"
#include "vpim/wire.h"

namespace vpim::core {
namespace {

constexpr std::int32_t kBadRequest =
    static_cast<std::int32_t>(virtio::PimStatus::kBadRequest);

ManagerConfig fast_manager() {
  ManagerConfig cfg;
  cfg.retry_wait_ns = 1 * kMs;
  cfg.max_attempts = 2;
  return cfg;
}

// Minimal hostile-chain rig (mirrors frontend_fuzz_test.cc's HostileRig):
// stages crafted wire blocks in guest RAM, submits them on the transferq,
// and requires a typed completion with descriptors reclaimed.
struct RegressionRig {
  RegressionRig()
      : host(test::small_machine(), CostModel{}, fast_manager()),
        vm(host, {.name = "prop-regress"}, 1) {
    EXPECT_TRUE(vm.device(0).frontend.open());
    scratch = vm.vmm().memory().alloc(512 * kKiB);
    resp_buf = vm.vmm().memory().alloc(4 * kKiB);
  }

  guest::GuestMemory& mem() { return vm.vmm().memory(); }
  VupmemDevice& dev() { return vm.device(0); }

  template <typename T>
  virtio::DescBuffer stage(std::uint64_t off, const T& pod,
                           std::uint32_t len = sizeof(T)) {
    std::memcpy(scratch.data() + off, &pod, sizeof(T));
    return {mem().gpa_of(scratch.data() + off), len, false};
  }

  std::int32_t run(std::span<const virtio::DescBuffer> chain) {
    std::memset(resp_buf.data(), 0, sizeof(WireResponse));
    const std::uint16_t free_before = dev().transferq.free_descriptors();
    const std::uint64_t errs_before = dev().stats.request_errors;
    dev().transferq.submit(chain);
    EXPECT_NO_THROW(dev().backend.handle_transferq());
    EXPECT_TRUE(dev().transferq.poll_used().has_value())
        << "request never completed";
    EXPECT_EQ(dev().transferq.free_descriptors(), free_before);
    EXPECT_EQ(dev().stats.request_errors, errs_before + 1)
        << "hostile chain was not rejected";
    WireResponse resp;
    std::memcpy(&resp, resp_buf.data(), sizeof(resp));
    return resp.status;
  }

  // A structurally-valid one-entry write chain the cases then corrupt.
  struct WriteChain {
    WireRequest req;
    WireMatrixMeta meta{1, 8192};
    WireEntryMeta em;
    std::uint64_t pages[2];
    std::uint32_t pages_len = 16;
    bool with_body = true;
  };

  WriteChain base_chain() {
    WriteChain c;
    c.req.type =
        static_cast<std::uint32_t>(virtio::PimRequestType::kWriteToRank);
    c.req.direction =
        static_cast<std::uint32_t>(driver::XferDirection::kToRank);
    c.req.nr_entries = 1;
    c.em.dpu = 0;
    c.em.mram_offset = 0;
    c.em.size = 8192;
    c.em.first_page_offset = 0;
    c.em.nr_pages = 2;
    const std::uint64_t gpa = mem().gpa_of(scratch.data());
    c.pages[0] = gpa + 16 * 4096;
    c.pages[1] = gpa + 17 * 4096;
    return c;
  }

  std::int32_t run(const WriteChain& c) {
    std::vector<virtio::DescBuffer> chain;
    chain.push_back(stage(0, c.req));
    if (c.with_body) {
      chain.push_back(stage(512, c.meta));
      chain.push_back(stage(1024, c.em));
      std::memcpy(scratch.data() + 2048, c.pages, sizeof(c.pages));
      chain.push_back(
          {mem().gpa_of(scratch.data() + 2048), c.pages_len, false});
    }
    chain.push_back(virtio::DescBuffer{
        mem().gpa_of(resp_buf.data()),
        static_cast<std::uint32_t>(sizeof(WireResponse)), true});
    return run(std::span<const virtio::DescBuffer>(chain));
  }

  Host host;
  VpimVm vm;
  std::span<std::uint8_t> scratch;
  std::span<std::uint8_t> resp_buf;
};

TEST(PropRegression, HostileTransferChains) {
  RegressionRig rig;

  {
    // HostileChains seed 0xF00D mode 0: a write request truncated to
    // [request][response] — nr_entries promises a body the chain lacks.
    auto c = rig.base_chain();
    c.with_body = false;
    EXPECT_EQ(rig.run(c), kBadRequest);
  }
  {
    // HostileChains seed 0xF00D mode 1: page-list descriptor shorter than
    // entry metadata claims (8 bytes for nr_pages=2). Caught by the
    // pages_desc.len == nr_pages * 8 cross-check.
    auto c = rig.base_chain();
    c.pages_len = 8;
    EXPECT_EQ(rig.run(c), kBadRequest);
  }
  {
    // HostileChains seed 0xF00D mode 2: absurd page count (2^40) — a
    // naive `nr_pages * 8` in 32 bits would wrap to a small page list.
    auto c = rig.base_chain();
    c.em.nr_pages = 1ULL << 40;
    EXPECT_EQ(rig.run(c), kBadRequest);
  }
  {
    // HostileChains seed 0xF00D mode 3: size near ~0ULL overflows the
    // naive (first_off + size + kPage - 1) page formula.
    auto c = rig.base_chain();
    c.em.size = ~0ULL - 1234;
    EXPECT_EQ(rig.run(c), kBadRequest);
  }
  {
    // HostileChains seed 0xF00D mode 4: matrix metadata disagreeing with
    // the chain length (meta says 7 entries, chain carries 1).
    auto c = rig.base_chain();
    c.meta.nr_entries = 7;
    EXPECT_EQ(rig.run(c), kBadRequest);
  }
  {
    // HostileChains seed 0xF00D mode 5: page GPA far outside guest RAM;
    // hva_range must reject the whole page, aligned or not.
    auto c = rig.base_chain();
    c.pages[0] = 1ULL << 40;
    EXPECT_EQ(rig.run(c), kBadRequest);
    c.pages[0] = (1ULL << 40) + 123;  // also unaligned
    EXPECT_EQ(rig.run(c), kBadRequest);
  }
  {
    // HostileChains seed 0xF00D mode 6: entry targets DPU 8 on an 8-DPU
    // rank (first index past the end).
    auto c = rig.base_chain();
    c.em.dpu = 8;
    EXPECT_EQ(rig.run(c), kBadRequest);
  }
  {
    // HostileChains seed 0xF00D mode 7: 8 KiB entry starting 4 KiB before
    // the end of the MRAM bank overruns it by one page.
    auto c = rig.base_chain();
    c.em.mram_offset = upmem::kMramSize - 4096;
    EXPECT_EQ(rig.run(c), kBadRequest);
  }
  {
    // HostileChains seed 0xF00D mode 8: first_page_offset >= 4096 would
    // underflow the `kPage - off` remaining-bytes computation.
    auto c = rig.base_chain();
    c.em.first_page_offset = 4096;
    EXPECT_EQ(rig.run(c), kBadRequest);
  }

  // The barrage must leave the device fully functional.
  Frontend& fe = rig.dev().frontend;
  auto data = rig.mem().alloc(8 * kKiB);
  auto out = rig.mem().alloc(8 * kKiB);
  std::memset(data.data(), 0xC4, data.size());
  driver::TransferMatrix w;
  w.entries.push_back({0, 4096, data.data(), data.size()});
  fe.write_to_rank(w);
  driver::TransferMatrix r;
  r.direction = driver::XferDirection::kFromRank;
  r.entries.push_back({0, 4096, out.data(), out.size()});
  fe.read_from_rank(r);
  EXPECT_EQ(std::memcmp(out.data(), data.data(), data.size()), 0);
}

TEST(PropRegression, PackedSymbolThirtyTwoBitWrap) {
  // HostileRequests corpus: 2^24 entries x 2^8 bytes per DPU = 2^32,
  // which wraps to 0 in a 32-bit `nr_entries * bytes` length check and
  // used to match a zero-length payload.
  RegressionRig rig;
  WireRequest req;
  req.type = static_cast<std::uint32_t>(virtio::PimRequestType::kCiWrite);
  req.ci_op = static_cast<std::uint32_t>(CiOp::kCopyToSymbolAll);
  std::memcpy(req.name, "sym", 3);
  req.nr_entries = 1u << 24;
  req.arg0 = 1u << 8;
  const virtio::DescBuffer chain[] = {
      rig.stage(0, req),
      {rig.mem().gpa_of(rig.scratch.data() + 4096), 0, false},
      {rig.mem().gpa_of(rig.resp_buf.data()),
       static_cast<std::uint32_t>(sizeof(WireResponse)), true}};
  EXPECT_EQ(rig.run(chain), kBadRequest);
}

TEST(PropRegression, UnknownRequestTypeCompletes) {
  // HostileRequests corpus: an unrecognized request type once fell
  // through the dispatch switch without push_used, wedging the guest.
  RegressionRig rig;
  WireRequest req;
  req.type = 0xDEADBEEF;
  const virtio::DescBuffer chain[] = {
      rig.stage(0, req),
      {rig.mem().gpa_of(rig.resp_buf.data()),
       static_cast<std::uint32_t>(sizeof(WireResponse)), true}};
  EXPECT_EQ(rig.run(chain), kBadRequest);
}

TEST(PropRegression, ExpiredDeadlineOnTheWireCompletesTimeout) {
  // pipeline.deadline_race corpus seed 0xA51DF, shrunk: a single valid
  // write whose absolute deadline (1 ns) is already hours in the past by
  // the time the backend drains it. The chain must complete kTimeout with
  // descriptors reclaimed and the payload never written — an earlier
  // draft executed the transfer first and only stamped the status after.
  RegressionRig rig;
  auto c = rig.base_chain();
  c.req.deadline_ns = 1;
  EXPECT_EQ(rig.run(c),
            static_cast<std::int32_t>(virtio::PimStatus::kTimeout));
  EXPECT_EQ(rig.dev().stats.deadline_shed, 1u);

  // The shed write must not have touched MRAM.
  Frontend& fe = rig.dev().frontend;
  auto out = rig.mem().alloc(8 * kKiB);
  std::memset(out.data(), 0xAB, out.size());
  driver::TransferMatrix r;
  r.direction = driver::XferDirection::kFromRank;
  r.entries.push_back({0, 0, out.data(), out.size()});
  fe.read_from_rank(r);
  for (std::uint8_t b : out) EXPECT_EQ(b, 0);
}

TEST(PropRegression, CancelledFlagOnTheWireCompletesCancelled) {
  // pipeline.deadline_race corpus seed 0xA51DF, shrunk alongside the case
  // above: the same valid write with kWireFlagCancelled patched into the
  // staged request block (what Frontend::cancel does in guest memory).
  // The backend must honour the flag before any data movement.
  RegressionRig rig;
  auto c = rig.base_chain();
  c.req.flags |= kWireFlagCancelled;
  EXPECT_EQ(rig.run(c),
            static_cast<std::int32_t>(virtio::PimStatus::kCancelled));
  EXPECT_EQ(rig.dev().stats.cancelled, 1u);
}

TEST(PropRegression, HostileSysfsLines) {
  // SysfsParseFuzz seed 0xF022, shrunk: the three smallest mutations of a
  // valid status line that ever parsed ambiguously in development — field
  // order, a single trailing byte, and a counter overflow.
  EXPECT_FALSE(
      driver::Sysfs::parse("owner=vm health=ok faults=0 in_use=1")
          .has_value());
  EXPECT_FALSE(
      driver::Sysfs::parse("in_use=1 owner=vm health=ok faults=0 ")
          .has_value());
  EXPECT_FALSE(
      driver::Sysfs::parse(
          "in_use=1 owner=vm health=ok faults=99999999999")
          .has_value());
}

TEST(PropRegression, CorruptFaultRecords) {
  // FaultMailboxFuzz seed 0xFA17, shrunk: the four smallest corruptions
  // of a valid 24-byte record — truncated by one byte, one magic bit
  // flipped, an unknown kind byte, and a rank index past nr_ranks.
  const FaultRecord rec{FaultKind::kMramEcc, 1, 5, 99};
  const auto bytes = serialize_fault_record(rec);
  ASSERT_EQ(bytes.size(), kFaultRecordBytes);

  EXPECT_FALSE(
      parse_fault_record(std::span(bytes).first(kFaultRecordBytes - 1), 8)
          .has_value());

  auto magic = bytes;
  magic[1] ^= 0x40;
  EXPECT_FALSE(parse_fault_record(magic, 8).has_value());

  auto kind = bytes;
  kind[4] = 0xEE;  // FaultKind is serialized at offset 4
  EXPECT_FALSE(parse_fault_record(kind, 8).has_value());

  const FaultRecord far_rank{FaultKind::kMramEcc, 200, 5, 99};
  EXPECT_FALSE(
      parse_fault_record(serialize_fault_record(far_rank), 8).has_value());
}

}  // namespace
}  // namespace vpim::core
