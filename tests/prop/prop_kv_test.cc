// KV differential properties (ISSUE 10): for random op sequences —
// skewed and uniform key mixes, every op kind, batch splits, queue
// depths {1,8} — the partitioned KV service must agree byte-for-byte
// with the independent in-memory kv_oracle after every batch, leave an
// equivalent MRAM image behind, and be bit-identical at any
// VPIM_THREADS. The teeth property plants the classic range-scan
// upper-bound off-by-one in the DPU kernel and demands the suite catch
// it and shrink it to a <=3-op reproducer.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include "common/proptest/kv_oracle.h"
#include "common/proptest/proptest.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "kv/kv_service.h"
#include "tests/testutil.h"
#include "vpim/host.h"
#include "vpim/vpim_vm.h"

namespace vpim::prop {
namespace {

using core::VpimVm;

core::ManagerConfig fast_manager() {
  core::ManagerConfig cfg;
  cfg.retry_wait_ns = 1 * kMs;
  cfg.max_attempts = 2;
  return cfg;
}

core::VpimConfig depth_config(std::uint32_t depth) {
  core::VpimConfig cfg = core::VpimConfig::full();
  cfg.queue_depth = depth;
  return cfg;
}

// Small service: every mitigation path (cache eviction at 8 entries,
// rebalance every 2 batches, multi-cycle batches at 8 inbox slots) and
// the kNoSpace edge (6 records per partition) are reachable within a
// short random sequence.
kv::KvConfig test_kv_config() {
  kv::KvConfig cfg;
  cfg.partitions = 8;
  cfg.nr_dpus = 4;
  cfg.slots_per_dpu = 4;
  cfg.slot_capacity = 6;
  cfg.max_batch_ops = 8;
  cfg.hot_cache_entries = 8;
  cfg.rebalance_period = 2;
  cfg.rebalance_ratio_permille = 1200;
  return cfg;
}

// Keys live in a 32-value universe so gets hit earlier puts; a skewed
// case draws most keys from the first 4 values (hot keys), a uniform one
// from the whole universe.
constexpr std::uint64_t kKeyUniverse = 32;

struct KvOpCase {
  std::vector<kv::KvOp> ops;
  std::uint32_t batch_size = 4;  // ops per execute() call
  bool skewed = false;
};

std::string show_case(const KvOpCase& c) {
  std::string s = "batch=" + std::to_string(c.batch_size) +
                  (c.skewed ? " skew" : " uni") + " ops=[";
  for (const kv::KvOp& op : c.ops) {
    switch (op.kind) {
      case kv::KvOpKind::kGet: s += "G" + std::to_string(op.key); break;
      case kv::KvOpKind::kPut:
        s += "P" + std::to_string(op.key) + "=" + std::to_string(op.value);
        break;
      case kv::KvOpKind::kDelete: s += "D" + std::to_string(op.key); break;
      case kv::KvOpKind::kScan:
        s += "S[" + std::to_string(op.key) + "," + std::to_string(op.hi) +
             ")";
        break;
    }
    s += " ";
  }
  return s + "]";
}

kv::KvOp sample_op(Rng& rng, bool skewed) {
  kv::KvOp op;
  const std::uint64_t key =
      skewed && rng.uniform(0, 3) != 0
          ? static_cast<std::uint64_t>(rng.uniform(0, 3))
          : static_cast<std::uint64_t>(
                rng.uniform(0, kKeyUniverse - 1));
  const std::int64_t dice = rng.uniform(0, 9);
  if (dice < 4) {
    op.kind = kv::KvOpKind::kGet;
    op.key = key;
  } else if (dice < 7) {
    op.kind = kv::KvOpKind::kPut;
    op.key = key;
    op.value = rng.next_u64();
  } else if (dice < 8) {
    op.kind = kv::KvOpKind::kDelete;
    op.key = key;
  } else {
    op.kind = kv::KvOpKind::kScan;
    op.key = key;
    // Spans up to 8 keep the exclusive bound landing on live keys often,
    // which is exactly where the teeth bug bites.
    op.hi = key + static_cast<std::uint64_t>(rng.uniform(1, 8));
  }
  return op;
}

Gen<KvOpCase> kv_case_gen() {
  Gen<KvOpCase> gen;
  gen.sample = [](Rng& rng) {
    KvOpCase c;
    c.skewed = rng.uniform(0, 1) == 0;
    c.batch_size = static_cast<std::uint32_t>(rng.uniform(1, 6));
    const auto n = rng.uniform(4, 40);
    for (std::int64_t i = 0; i < n; ++i) {
      c.ops.push_back(sample_op(rng, c.skewed));
    }
    return c;
  };
  gen.shrink = [](const KvOpCase& c) {
    std::vector<KvOpCase> out;
    if (c.ops.size() > 1) {
      KvOpCase head = c;
      head.ops.resize(c.ops.size() / 2);
      out.push_back(std::move(head));
    }
    for (std::size_t i = 0; c.ops.size() > 1 && i < c.ops.size(); ++i) {
      KvOpCase fewer = c;
      fewer.ops.erase(fewer.ops.begin() + static_cast<std::ptrdiff_t>(i));
      out.push_back(std::move(fewer));
    }
    if (c.batch_size > 1) {
      KvOpCase smaller = c;
      smaller.batch_size = 1;
      out.push_back(std::move(smaller));
    }
    return out;
  };
  return gen;
}

std::string describe(const kv::KvResult& r) {
  std::string s = "{status=" + std::string(kv::to_string(r.status)) +
                  " value=" + std::to_string(r.value) +
                  " n=" + std::to_string(r.nresults) + " pairs=[";
  for (const auto& [k, v] : r.pairs) {
    s += std::to_string(k) + ":" + std::to_string(v) + " ";
  }
  return s + "]}";
}

// Everything observable about one service run of a case.
struct KvRunResult {
  std::vector<kv::KvResult> results;  // op order
  std::vector<std::vector<std::uint8_t>> images;  // per partition
  SimNs clock_end = 0;
  std::uint64_t rebalances = 0;
  std::uint64_t cache_hits = 0;
};

// Runs the case through a fresh service, checking every batch against a
// fresh oracle when `check_oracle` (the thread-invariance property skips
// the oracle and compares two runs against each other instead).
KvRunResult run_kv(const KvOpCase& c, std::uint32_t depth,
                   bool check_oracle, bool plant_bug = false) {
  core::Host host(test::small_machine(), CostModel{}, fast_manager());
  VpimVm vm(host, {.name = "prop-kv"}, 1, depth_config(depth));
  kv::KvConfig cfg = test_kv_config();
  cfg.plant_scan_bug = plant_bug;
  kv::KvService svc(vm.device(0).frontend, vm.vmm().memory(), host.clock,
                    host.cost, host.obs, cfg);
  require(svc.open(), "kv rig: no rank available");
  KvOracle oracle(cfg.partitions, cfg.slot_capacity, cfg.scan_limit);

  KvRunResult out;
  std::size_t done = 0;
  while (done < c.ops.size()) {
    const std::size_t take =
        std::min<std::size_t>(c.batch_size, c.ops.size() - done);
    const std::span<const kv::KvOp> batch(c.ops.data() + done, take);
    const std::vector<kv::KvResult> results = svc.execute(batch);
    require(results.size() == batch.size(), "result count mismatch");

    for (std::size_t i = 0; i < batch.size(); ++i) {
      const kv::KvOp& op = batch[i];
      const kv::KvResult& got = results[i];
      KvOracle::Reply want;
      switch (op.kind) {
        case kv::KvOpKind::kGet: want = oracle.get(op.key); break;
        case kv::KvOpKind::kPut:
          want = oracle.put(op.key, op.value);
          break;
        case kv::KvOpKind::kDelete: want = oracle.del(op.key); break;
        case kv::KvOpKind::kScan:
          want = oracle.scan(op.key, op.hi);
          break;
      }
      if (!check_oracle) continue;
      const std::string tag = " (op " + std::to_string(done + i) +
                              " of " + show_case(c) + " got " +
                              describe(got) + ")";
      require(static_cast<std::uint32_t>(got.status) == want.status,
              "status diverged from oracle" + tag);
      require(got.value == want.value,
              "value diverged from oracle" + tag);
      require(got.nresults == want.nresults,
              "nresults diverged from oracle" + tag);
      require(got.pairs == want.pairs,
              "scan rows diverged from oracle" + tag);
    }
    out.results.insert(out.results.end(), results.begin(), results.end());
    done += take;
  }

  // Final state: the device image of every partition must match the
  // image the oracle built independently.
  for (std::uint32_t p = 0; p < cfg.partitions; ++p) {
    std::vector<std::uint8_t> image = svc.partition_image(p);
    if (check_oracle) {
      require(image == oracle.partition_image(p),
              "final MRAM image of partition " + std::to_string(p) +
                  " diverged from oracle");
    }
    out.images.push_back(std::move(image));
  }
  out.rebalances = svc.stats().rebalances;
  out.cache_hits = svc.stats().cache_hits;
  svc.close();
  out.clock_end = host.clock.now();
  return out;
}

// ---- property 1: service == oracle at depths 1 and 8 --------------------

TEST(PropKv, MatchesOracleAtEveryDepth) {
  const Params params = Params::from_env(0x4B5601, 30);
  const auto out = run_property<KvOpCase>(
      "kv.oracle_differential", params, kv_case_gen(),
      [&](const KvOpCase& c) {
        for (std::uint32_t depth : {1u, 8u}) {
          run_kv(c, depth, /*check_oracle=*/true);
        }
      },
      show_case);
  EXPECT_TRUE(out.ok) << out.reproducer;
}

// ---- property 2: results are thread-count invariant ---------------------

class PropKvThreads : public ::testing::Test {
 protected:
  void SetUp() override { original_ = ThreadPool::instance().size(); }
  void TearDown() override { ThreadPool::instance().resize(original_); }
  unsigned original_ = 1;
};

bool same_run(const KvRunResult& a, const KvRunResult& b) {
  if (a.results.size() != b.results.size()) return false;
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    const kv::KvResult& x = a.results[i];
    const kv::KvResult& y = b.results[i];
    if (x.status != y.status || x.value != y.value ||
        x.nresults != y.nresults || x.cache_hit != y.cache_hit ||
        x.pairs != y.pairs) {
      return false;
    }
  }
  return a.images == b.images && a.clock_end == b.clock_end &&
         a.rebalances == b.rebalances && a.cache_hits == b.cache_hits;
}

TEST_F(PropKvThreads, BitIdenticalAcrossThreadCounts) {
  const Params params = Params::from_env(0x4B5602, 12);
  const auto out = run_property<KvOpCase>(
      "kv.thread_invariance", params, kv_case_gen(),
      [&](const KvOpCase& c) {
        ThreadPool::instance().resize(1);
        const KvRunResult base = run_kv(c, 8, /*check_oracle=*/false);
        ThreadPool::instance().resize(4);
        const KvRunResult wide = run_kv(c, 8, /*check_oracle=*/false);
        ThreadPool::instance().resize(1);
        require(same_run(base, wide),
                "KV run depends on VPIM_THREADS (results, images, "
                "virtual time or mitigation stats diverged)");
      },
      show_case);
  EXPECT_TRUE(out.ok) << out.reproducer;
}

// ---- teeth: the planted scan off-by-one must be caught and shrink -------
//
// kv_partition_teeth treats the SCAN upper bound as inclusive (key <= hi
// instead of key < hi). The differential property must catch it and
// shrink to the canonical <=3-op reproducer: PUT a key, then SCAN with
// hi landing exactly on it.

TEST(PropKvTeeth, ScanUpperBoundBugIsCaughtAndShrinks) {
  Params params = Params::from_env(0x4B5603, 60);
  params.quiet = true;  // failure is the expected outcome
  const auto out = run_property<KvOpCase>(
      "kv.teeth_scan_bound", params, kv_case_gen(),
      [&](const KvOpCase& c) {
        run_kv(c, 8, /*check_oracle=*/true, /*plant_bug=*/true);
      },
      show_case);
  ASSERT_FALSE(out.ok)
      << "teeth test: the planted scan upper-bound bug went undetected";
  EXPECT_LE(out.minimal.ops.size(), 3u)
      << "teeth reproducer did not shrink: " << out.minimal_repr;
  // The shrunk case must still contain a scan — that is the buggy op.
  bool has_scan = false;
  for (const kv::KvOp& op : out.minimal.ops) {
    has_scan |= op.kind == kv::KvOpKind::kScan;
  }
  EXPECT_TRUE(has_scan) << out.minimal_repr;
}

}  // namespace
}  // namespace vpim::prop
