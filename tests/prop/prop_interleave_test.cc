// Differential properties for the MRAM byte-interleave kernels: the naive,
// wide (runtime AVX2 or portable), and wide-scalar production variants must
// be bit-exact against the independent flat-byte oracle over random sizes
// and buffer alignments, and every variant must invert cleanly.
//
// Includes a deliberate-mutation teeth test: a kernel with a one-byte chip
// swap must be caught and must print a VPIM_PROP_SEED reproducer.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/proptest/oracle.h"
#include "common/proptest/proptest.h"
#include "common/rng.h"
#include "upmem/interleave.h"

namespace vpim::prop {
namespace {

struct InterleaveCase {
  std::uint64_t size = 8;       // bytes, multiple of 8
  std::uint64_t src_align = 0;  // byte offset into an over-allocated buffer
  std::uint64_t dst_align = 0;
  std::uint64_t data_seed = 1;  // payload stream, independent of the shape
};

std::string show_case(const InterleaveCase& c) {
  return "size=" + std::to_string(c.size) +
         " src_align=" + std::to_string(c.src_align) +
         " dst_align=" + std::to_string(c.dst_align) +
         " data_seed=" + std::to_string(c.data_seed);
}

Gen<InterleaveCase> interleave_case_gen() {
  Gen<InterleaveCase> gen;
  gen.sample = [](Rng& rng) {
    InterleaveCase c;
    // Mix sizes around the wide kernel's 64-byte main-loop boundary (the
    // tail loop handles the remainder) with free-form multiples of 8.
    switch (rng.uniform(0, 3)) {
      case 0:  // pure tail sizes
        c.size = 8 * static_cast<std::uint64_t>(rng.uniform(1, 7));
        break;
      case 1: {  // just around a multiple of 64
        const auto blocks = static_cast<std::uint64_t>(rng.uniform(1, 64));
        const auto jitter = static_cast<std::int64_t>(rng.uniform(-1, 1));
        const std::int64_t n =
            static_cast<std::int64_t>(blocks * 64) + 8 * jitter;
        c.size = static_cast<std::uint64_t>(n > 8 ? n : 8);
        break;
      }
      default:
        c.size = 8 * static_cast<std::uint64_t>(rng.uniform(1, 4096));
        break;
    }
    c.src_align = static_cast<std::uint64_t>(rng.uniform(0, 63));
    c.dst_align = static_cast<std::uint64_t>(rng.uniform(0, 63));
    c.data_seed = rng.next_u64();
    return c;
  };
  gen.shrink = [](const InterleaveCase& c) {
    std::vector<InterleaveCase> out;
    if (c.size > 8) {
      InterleaveCase half = c;
      half.size = ((c.size / 2) / 8) * 8;
      if (half.size >= 8) out.push_back(half);
      InterleaveCase less = c;
      less.size = c.size - 8;
      out.push_back(less);
    }
    if (c.src_align != 0) {
      InterleaveCase aligned = c;
      aligned.src_align = 0;
      out.push_back(aligned);
    }
    if (c.dst_align != 0) {
      InterleaveCase aligned = c;
      aligned.dst_align = 0;
      out.push_back(aligned);
    }
    return out;
  };
  return gen;
}

// Runs one interleave function over the case's (mis)aligned sub-buffers.
template <typename Fn>
std::vector<std::uint8_t> run_kernel(const InterleaveCase& c, Fn&& fn) {
  std::vector<std::uint8_t> src_buf(c.size + 64, 0xAA);
  std::vector<std::uint8_t> dst_buf(c.size + 64, 0xBB);
  Rng data(c.data_seed);
  data.fill_bytes(src_buf.data() + c.src_align, c.size);
  fn(std::span<const std::uint8_t>(src_buf.data() + c.src_align, c.size),
     std::span<std::uint8_t>(dst_buf.data() + c.dst_align, c.size));
  return {dst_buf.begin() + static_cast<std::ptrdiff_t>(c.dst_align),
          dst_buf.begin() + static_cast<std::ptrdiff_t>(c.dst_align + c.size)};
}

TEST(PropInterleave, AllVariantsMatchOracle) {
  const Params params = Params::from_env(0x1417E81EAFu, 150);
  const auto out = run_property<InterleaveCase>(
      "interleave.variants_vs_oracle", params, interleave_case_gen(),
      [](const InterleaveCase& c) {
        const auto oracle = run_kernel(c, oracle_interleave);
        const auto naive = run_kernel(c, upmem::interleave_naive);
        const auto wide = run_kernel(c, upmem::interleave_wide);
        const auto scalar = run_kernel(c, upmem::interleave_wide_scalar);
        require(naive == oracle, "interleave_naive disagrees with oracle");
        require(wide == oracle,
                std::string("interleave_wide (") +
                    std::string(upmem::wide_kernel_name()) +
                    ") disagrees with oracle");
        require(scalar == oracle,
                "interleave_wide_scalar disagrees with oracle");
      },
      show_case);
  EXPECT_TRUE(out.ok) << out.reproducer;
}

TEST(PropInterleave, DeinterleaveMatchesOracle) {
  const Params params = Params::from_env(0xDE1417E8u, 150);
  const auto out = run_property<InterleaveCase>(
      "interleave.deinterleave_vs_oracle", params, interleave_case_gen(),
      [](const InterleaveCase& c) {
        const auto oracle = run_kernel(c, oracle_deinterleave);
        require(run_kernel(c, upmem::deinterleave_naive) == oracle,
                "deinterleave_naive disagrees with oracle");
        require(run_kernel(c, upmem::deinterleave_wide) == oracle,
                "deinterleave_wide disagrees with oracle");
        require(run_kernel(c, upmem::deinterleave_wide_scalar) == oracle,
                "deinterleave_wide_scalar disagrees with oracle");
      },
      show_case);
  EXPECT_TRUE(out.ok) << out.reproducer;
}

TEST(PropInterleave, EveryVariantRoundTrips) {
  const Params params = Params::from_env(0x2007E57u, 150);
  const auto out = run_property<InterleaveCase>(
      "interleave.roundtrip", params, interleave_case_gen(),
      [](const InterleaveCase& c) {
        std::vector<std::uint8_t> src(c.size);
        Rng data(c.data_seed);
        data.fill_bytes(src.data(), src.size());
        std::vector<std::uint8_t> mid(c.size), back(c.size);

        oracle_interleave(src, mid);
        oracle_deinterleave(mid, back);
        require(back == src, "oracle does not invert itself");

        // Cross-variant inversion: interleave with one implementation,
        // deinterleave with another.
        upmem::interleave_wide(src, mid);
        upmem::deinterleave_naive(mid, back);
        require(back == src, "wide -> naive roundtrip broken");
        upmem::interleave_naive(src, mid);
        oracle_deinterleave(mid, back);
        require(back == src, "naive -> oracle roundtrip broken");
      },
      show_case);
  EXPECT_TRUE(out.ok) << out.reproducer;
}

// The AVX-512 tier pinned directly against the oracle, independent of what
// interleave_wide dispatches to on this host (so VPIM_NO_AVX512 in the
// environment cannot silently skip the 512-bit code). Sizes straddle the
// 512-byte group boundary and both buffers take arbitrary misalignments,
// exercising the unaligned zmm loads/stores and the scalar tail.
TEST(PropInterleave, Avx512MatchesOracle) {
  const auto inter = upmem::interleave_avx512_kernel();
  const auto deinter = upmem::deinterleave_avx512_kernel();
  if (inter == nullptr || deinter == nullptr) {
    GTEST_SKIP() << "host CPU lacks AVX-512F";
  }
  const Params params = Params::from_env(0xA512F00Du, 150);
  const auto out = run_property<InterleaveCase>(
      "interleave.avx512_vs_oracle", params, interleave_case_gen(),
      [&](const InterleaveCase& c) {
        require(run_kernel(c, inter) == run_kernel(c, oracle_interleave),
                "interleave_wide_avx512 disagrees with oracle");
        require(run_kernel(c, deinter) == run_kernel(c, oracle_deinterleave),
                "deinterleave_wide_avx512 disagrees with oracle");

        // The 512-bit tier must also invert itself and cross-invert with
        // the oracle (chip layout identical, not merely self-consistent).
        std::vector<std::uint8_t> src(c.size);
        Rng data(c.data_seed);
        data.fill_bytes(src.data(), src.size());
        std::vector<std::uint8_t> mid(c.size), back(c.size);
        inter(src, mid);
        deinter(mid, back);
        require(back == src, "avx512 roundtrip broken");
        inter(src, mid);
        oracle_deinterleave(mid, back);
        require(back == src, "avx512 -> oracle roundtrip broken");
      },
      show_case);
  EXPECT_TRUE(out.ok) << out.reproducer;
}

// Same pinning for the AVX2 tier, which interleave_wide no longer selects
// on AVX-512 hosts and would otherwise lose direct coverage there.
TEST(PropInterleave, Avx2MatchesOracle) {
  const auto inter = upmem::interleave_avx2_kernel();
  const auto deinter = upmem::deinterleave_avx2_kernel();
  if (inter == nullptr || deinter == nullptr) {
    GTEST_SKIP() << "host CPU lacks AVX2";
  }
  const Params params = Params::from_env(0xA2F00Du, 150);
  const auto out = run_property<InterleaveCase>(
      "interleave.avx2_vs_oracle", params, interleave_case_gen(),
      [&](const InterleaveCase& c) {
        require(run_kernel(c, inter) == run_kernel(c, oracle_interleave),
                "interleave_wide_avx2 disagrees with oracle");
        require(run_kernel(c, deinter) == run_kernel(c, oracle_deinterleave),
                "deinterleave_wide_avx2 disagrees with oracle");
      },
      show_case);
  EXPECT_TRUE(out.ok) << out.reproducer;
}

// Teeth: a kernel with two chips swapped for odd words must be caught,
// shrink to a small case, and print the one-line seed reproducer.
TEST(PropInterleave, MutatedKernelIsCaught) {
  const auto mutated = [](std::span<const std::uint8_t> src,
                          std::span<std::uint8_t> dst) {
    const std::uint64_t words = src.size() / 8;
    for (std::uint64_t i = 0; i < src.size(); ++i) {
      std::uint64_t word = i / 8;
      std::uint64_t chip = i % 8;
      if (word % 2 == 1 && chip < 2) chip ^= 1;  // the planted bug
      dst[chip * words + word] = src[i];
    }
  };
  Params params;
  params.base_seed = 0xBADC0DE;
  params.iterations = 150;
  params.quiet = true;  // the FAIL here is the expected outcome
  const auto out = run_property<InterleaveCase>(
      "interleave.teeth", params, interleave_case_gen(),
      [&](const InterleaveCase& c) {
        require(run_kernel(c, mutated) == run_kernel(c, oracle_interleave),
                "mutated kernel disagrees with oracle");
      },
      show_case);
  ASSERT_FALSE(out.ok) << "the harness failed to catch a planted bug";
  EXPECT_NE(out.reproducer.find("VPIM_PROP_SEED="), std::string::npos);
  // The bug needs at least two words to show; shrinking must still get
  // close to that floor instead of reporting a huge case.
  EXPECT_LE(out.minimal.size, 64u) << show_case(out.minimal);
  EXPECT_GE(out.minimal.size, 16u) << show_case(out.minimal);

  // The printed seed replays the same minimal case deterministically.
  Params replay;
  replay.replay_seed = out.failing_seed;
  replay.quiet = true;
  const auto again = run_property<InterleaveCase>(
      "interleave.teeth", replay, interleave_case_gen(),
      [&](const InterleaveCase& c) {
        require(run_kernel(c, mutated) == run_kernel(c, oracle_interleave),
                "mutated kernel disagrees with oracle");
      },
      show_case);
  ASSERT_FALSE(again.ok);
  EXPECT_EQ(show_case(again.minimal), show_case(out.minimal));
}

}  // namespace
}  // namespace vpim::prop
