// Wrank allocator properties (ISSUE 9): random alloc/release/resize
// sequences — interleaved with observer passes and consolidation — driven
// against an occupancy oracle:
//
//  - the manager's wrank table always matches the oracle exactly (no
//    wrank lost, duplicated, or mutated by live migration);
//  - no rank ever hosts more slots than wrank_slots_per_rank;
//  - per-tenant accounting matches the oracle, and quota'd tenants are
//    rejected typed (kQuotaExceeded) exactly when the oracle says the
//    request would exceed the cap;
//  - the reported fragmentation matches a recomputation from the wrank
//    table (hosting ranks beyond the minimal packing, in permille).
//
// Failing cases shrink to fewer steps and print the VPIM_PROP_SEED line.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/proptest/proptest.h"
#include "tests/testutil.h"
#include "vpim/manager.h"

namespace vpim::prop {
namespace {

constexpr std::uint32_t kRanks = 4;
constexpr std::uint32_t kSlotsPerRank = 4;
constexpr int kTenants = 3;

// One step packs (op, tenant, slots, victim) into a u64:
//   op = s % 8: 0-3 alloc, 4-5 release, 6 resize, 7 consolidate+observe.
struct WrankCase {
  std::uint64_t quota_mask = 0;  // tenant t capped at 5 slots iff bit t
  std::vector<std::uint64_t> steps;
};

std::string show_case(const WrankCase& c) {
  std::string s = "quota_mask=" + std::to_string(c.quota_mask) + " steps=";
  for (std::uint64_t v : c.steps) s += std::to_string(v) + ",";
  return s;
}

Gen<WrankCase> wrank_case_gen() {
  Gen<WrankCase> gen;
  gen.sample = [](Rng& rng) {
    WrankCase c;
    c.quota_mask = rng.uniform(0, (1u << kTenants) - 1);
    const int nr_steps = static_cast<int>(rng.uniform(10, 60));
    for (int i = 0; i < nr_steps; ++i) {
      c.steps.push_back(rng.next_u64());
    }
    return c;
  };
  gen.shrink = [](const WrankCase& c) {
    std::vector<WrankCase> out;
    if (c.steps.size() > 1) {
      WrankCase front = c;
      front.steps.resize(c.steps.size() / 2);
      out.push_back(std::move(front));
      for (std::size_t i = 0; i < c.steps.size(); ++i) {
        WrankCase fewer = c;
        fewer.steps.erase(fewer.steps.begin() +
                          static_cast<std::ptrdiff_t>(i));
        out.push_back(std::move(fewer));
      }
    }
    if (c.quota_mask != 0) {
      WrankCase unquota = c;
      unquota.quota_mask = 0;
      out.push_back(std::move(unquota));
    }
    return out;
  };
  return gen;
}

struct OracleEntry {
  std::string tenant;
  std::uint32_t slots = 0;
};

void check_invariants(const core::Manager& mgr,
                      const std::map<std::uint64_t, OracleEntry>& oracle) {
  const std::vector<core::WrankInfo> ws = mgr.wranks();
  require(ws.size() == oracle.size(),
          "manager holds " + std::to_string(ws.size()) + " wranks, oracle " +
              std::to_string(oracle.size()));
  std::map<std::uint32_t, std::uint32_t> used;
  std::map<std::string, std::uint32_t> per_tenant;
  std::set<std::uint64_t> seen;
  for (const core::WrankInfo& w : ws) {
    require(seen.insert(w.id).second, "duplicate wrank id");
    const auto it = oracle.find(w.id);
    require(it != oracle.end(), "wrank id unknown to the oracle");
    require(w.tenant == it->second.tenant, "wrank changed tenant");
    require(w.slots == it->second.slots, "wrank changed slot count");
    require(w.rank != core::Manager::kNoRank,
            "wrank displaced without any fault");
    used[w.rank] += w.slots;
    per_tenant[w.tenant] += w.slots;
  }
  std::uint32_t total = 0;
  for (const auto& [rank, slots] : used) {
    require(slots <= kSlotsPerRank, "rank overpacked");
    total += slots;
  }
  for (const auto& [tenant, slots] : per_tenant) {
    require(mgr.tenant_slots(tenant) == slots,
            "tenant slot accounting drifted for " + tenant);
  }
  // Fragmentation must agree with a recomputation from the table.
  const std::uint32_t hosting = static_cast<std::uint32_t>(used.size());
  const std::uint32_t min_needed =
      (total + kSlotsPerRank - 1) / kSlotsPerRank;
  const std::uint32_t expect =
      hosting <= min_needed
          ? 0
          : static_cast<std::uint32_t>(1000u * (hosting - min_needed) /
                                       kRanks);
  require(mgr.fragmentation_permille() == expect,
          "fragmentation_permille disagrees with the wrank table");
}

void run_case(const WrankCase& c) {
  test::TestRig rig({.nr_ranks = kRanks, .functional_dpus_per_rank = 8});
  core::ManagerConfig cfg;
  cfg.retry_wait_ns = 1 * kMs;
  cfg.max_attempts = 2;
  cfg.charge_time = false;
  cfg.placement = core::PlacementPolicyKind::kConsolidating;
  core::Manager mgr(rig.drv, cfg);
  constexpr std::uint32_t kQuota = 5;
  for (int t = 0; t < kTenants; ++t) {
    if (c.quota_mask & (1u << t)) {
      mgr.set_tenant_quota("t" + std::to_string(t), kQuota);
    }
  }

  std::map<std::uint64_t, OracleEntry> oracle;
  std::map<std::string, std::uint32_t> tenant_total;
  std::vector<std::uint64_t> live;
  for (const std::uint64_t s : c.steps) {
    const std::uint32_t op = static_cast<std::uint32_t>(s % 8);
    const int t = static_cast<int>((s / 8) % kTenants);
    const std::string tenant = "t" + std::to_string(t);
    const bool capped = (c.quota_mask & (1u << t)) != 0;
    const std::uint32_t slots =
        1 + static_cast<std::uint32_t>((s / 64) % kSlotsPerRank);
    if (op <= 3 || live.empty()) {
      const core::AllocResult r = mgr.allocate_wrank(tenant, slots);
      const bool over_quota = capped && tenant_total[tenant] + slots > kQuota;
      if (over_quota) {
        require(r.status == core::AllocStatus::kQuotaExceeded,
                "over-quota request not rejected kQuotaExceeded (got " +
                    std::string(core::to_string(r.status)) + ")");
      } else {
        require(r.status == core::AllocStatus::kOk ||
                    r.status == core::AllocStatus::kNoCapacity,
                "in-quota request returned unexpected status " +
                    std::string(core::to_string(r.status)));
      }
      if (r.status == core::AllocStatus::kOk) {
        oracle[r.wrank] = {tenant, slots};
        tenant_total[tenant] += slots;
        live.push_back(r.wrank);
      }
    } else if (op <= 5) {
      const std::size_t v = static_cast<std::size_t>((s / 64) % live.size());
      const std::uint64_t id = live[v];
      require(mgr.release_wrank(id) == core::AllocStatus::kOk,
              "release of a live wrank failed");
      tenant_total[oracle[id].tenant] -= oracle[id].slots;
      oracle.erase(id);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(v));
    } else if (op == 6) {
      const std::size_t v = static_cast<std::size_t>((s / 64) % live.size());
      const std::uint64_t id = live[v];
      const OracleEntry& cur = oracle[id];
      const std::uint32_t new_slots =
          1 + static_cast<std::uint32_t>((s / 512) % kSlotsPerRank);
      const bool cur_capped =
          (c.quota_mask & (1u << (cur.tenant.back() - '0'))) != 0;
      const bool over_quota =
          cur_capped && new_slots > cur.slots &&
          tenant_total[cur.tenant] + (new_slots - cur.slots) > kQuota;
      const core::AllocResult r = mgr.resize_wrank(id, new_slots);
      if (over_quota) {
        require(r.status == core::AllocStatus::kQuotaExceeded,
                "over-quota resize not rejected");
      }
      if (r.status == core::AllocStatus::kOk) {
        tenant_total[cur.tenant] += new_slots - cur.slots;
        oracle[id].slots = new_slots;
      }
    } else {
      mgr.observe(/*do_resets=*/true);
      mgr.consolidate();
    }
    check_invariants(mgr, oracle);
  }
}

TEST(PropWrank, RandomChurnMatchesOccupancyOracle) {
  const Params params = Params::from_env(0x33A9, 60);
  const auto out = run_property<WrankCase>(
      "wrank.occupancy_oracle", params, wrank_case_gen(), run_case,
      show_case);
  ASSERT_TRUE(out.ok) << out.reproducer;
}

}  // namespace
}  // namespace vpim::prop
