// Wire-format differential properties: serialize_matrix ->
// deserialize_matrix must round-trip every random transfer matrix, the
// production deserializer must agree accept-for-accept (and byte-for-byte)
// with the independent oracle parser, and hostile mutations of valid
// chains must complete on the device with a typed PimStatus — never an
// abort, never a wedged queue.
#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common/proptest/oracle.h"
#include "common/proptest/proptest.h"
#include "common/rng.h"
#include "tests/testutil.h"
#include "upmem/layout.h"
#include "vpim/host.h"
#include "vpim/vpim_vm.h"

namespace vpim::prop {
namespace {

using core::VpimVm;
using core::WireArena;
using core::WireEntryMeta;
using core::WireMatrixMeta;
using core::WireRequest;
using core::WireResponse;

core::ManagerConfig fast_manager() {
  core::ManagerConfig cfg;
  cfg.retry_wait_ns = 1 * kMs;
  cfg.max_attempts = 2;
  return cfg;
}

constexpr std::uint64_t kSlabBytes = 256 * kKiB;
constexpr std::uint64_t kMaxEntrySize = 16 * kKiB;

struct EntryShape {
  std::uint32_t dpu = 0;
  std::uint64_t mram_offset = 0;
  std::uint64_t slab_off = 0;  // buffer start inside the data slab
  std::uint64_t size = 1;
};

struct MatrixCase {
  std::uint32_t direction = 0;  // 0 = kToRank, 1 = kFromRank
  std::vector<EntryShape> entries;
};

std::string show_matrix(const MatrixCase& c) {
  std::string s = "dir=" + std::to_string(c.direction) + " entries=[";
  for (const EntryShape& e : c.entries) {
    s += "{dpu=" + std::to_string(e.dpu) +
         " mram=" + std::to_string(e.mram_offset) +
         " off=" + std::to_string(e.slab_off) +
         " size=" + std::to_string(e.size) + "}";
  }
  return s + "]";
}

Gen<MatrixCase> matrix_gen() {
  Gen<MatrixCase> gen;
  gen.sample = [](Rng& rng) {
    MatrixCase c;
    c.direction = static_cast<std::uint32_t>(rng.uniform(0, 1));
    const auto n = rng.uniform(1, 6);
    for (std::int64_t k = 0; k < n; ++k) {
      EntryShape e;
      e.dpu = static_cast<std::uint32_t>(rng.uniform(0, 7));
      e.size = static_cast<std::uint64_t>(
          rng.uniform(1, static_cast<std::int64_t>(kMaxEntrySize)));
      e.slab_off = static_cast<std::uint64_t>(
          rng.uniform(0, static_cast<std::int64_t>(kSlabBytes - e.size)));
      e.mram_offset = static_cast<std::uint64_t>(rng.uniform(
          0, static_cast<std::int64_t>(upmem::kMramSize - e.size)));
      c.entries.push_back(e);
    }
    return c;
  };
  gen.shrink = [](const MatrixCase& c) {
    std::vector<MatrixCase> out;
    for (std::size_t i = 0; c.entries.size() > 1 && i < c.entries.size();
         ++i) {
      MatrixCase fewer = c;
      fewer.entries.erase(fewer.entries.begin() +
                          static_cast<std::ptrdiff_t>(i));
      out.push_back(std::move(fewer));
    }
    for (std::size_t i = 0; i < c.entries.size(); ++i) {
      if (c.entries[i].size > 1) {
        MatrixCase smaller = c;
        smaller.entries[i].size = c.entries[i].size / 2 + 1;
        out.push_back(std::move(smaller));
      }
      if (c.entries[i].slab_off != 0) {
        MatrixCase moved = c;
        moved.entries[i].slab_off = 0;
        out.push_back(std::move(moved));
      }
    }
    return out;
  };
  return gen;
}

// One VM rig shared across all cases of a test: a data slab (filled once
// with a fixed pseudo-random image) plus the serialize arena, all inside
// guest RAM so chains can also be submitted to the real device.
struct WireRig {
  WireRig()
      : host(test::small_machine(), CostModel{}, fast_manager()),
        vm(host, {.name = "prop-wire"}, 1) {
    EXPECT_TRUE(vm.device(0).frontend.open());
    slab = mem().alloc(kSlabBytes);
    Rng data(0x51AB);
    data.fill_bytes(slab.data(), slab.size());
    arena.request = mem().alloc(sizeof(WireRequest));
    arena.matrix_meta = mem().alloc(sizeof(WireMatrixMeta));
    arena.entry_meta = mem().alloc(64 * sizeof(WireEntryMeta));
    arena.page_lists = mem().alloc(64 * kKiB);
    arena.response = mem().alloc(sizeof(WireResponse));
  }

  guest::GuestMemory& mem() { return vm.vmm().memory(); }
  core::VupmemDevice& dev() { return vm.device(0); }

  core::SerializeResult serialize(const MatrixCase& c) {
    driver::TransferMatrix m;
    m.direction = static_cast<driver::XferDirection>(c.direction);
    for (const EntryShape& e : c.entries) {
      m.entries.push_back(
          {e.dpu, e.mram_offset, slab.data() + e.slab_off, e.size});
    }
    return core::serialize_matrix(
        m, mem(), arena,
        static_cast<std::uint32_t>(
            c.direction == 0 ? virtio::PimRequestType::kWriteToRank
                             : virtio::PimRequestType::kReadFromRank));
  }

  OracleMemReader oracle_reader() {
    return [this](std::uint64_t gpa,
                  std::uint64_t len) -> const std::uint8_t* {
      try {
        return mem().hva_range(gpa, len);
      } catch (const VpimError&) {
        return nullptr;
      }
    };
  }

  core::Host host;
  VpimVm vm;
  std::span<std::uint8_t> slab;
  WireArena arena;
};

std::vector<OracleDesc> to_oracle_descs(
    const std::vector<virtio::DescBuffer>& chain) {
  std::vector<OracleDesc> out;
  out.reserve(chain.size());
  for (const virtio::DescBuffer& b : chain) out.push_back({b.gpa, b.len});
  return out;
}

virtio::DescChain to_desc_chain(
    const std::vector<virtio::DescBuffer>& chain) {
  virtio::DescChain out;
  for (const virtio::DescBuffer& b : chain) {
    out.descs.push_back(
        {b.gpa, b.len,
         static_cast<std::uint16_t>(b.device_writable ? virtio::kDescFlagWrite
                                                      : 0),
         0});
  }
  return out;
}

std::optional<core::DeserializeResult> production_deserialize(
    const std::vector<virtio::DescBuffer>& chain, guest::GuestMemory& mem) {
  try {
    return core::deserialize_matrix(to_desc_chain(chain), mem);
  } catch (const VpimError&) {
    // VpimStatusError(kBadRequest) for validation failures, plain
    // VpimError for GPAs outside guest RAM — both are typed rejections.
    return std::nullopt;
  }
}

std::vector<std::uint8_t> flatten_segments(
    const core::DeserializedEntry& entry) {
  std::vector<std::uint8_t> out;
  out.reserve(entry.size);
  for (const auto& [ptr, len] : entry.segments) {
    out.insert(out.end(), ptr, ptr + len);
  }
  return out;
}

// ---- property 1: serialize -> deserialize round-trip vs oracle ----------

TEST(PropWire, SerializeDeserializeRoundTripsAndMatchesOracle) {
  WireRig rig;
  const Params params = Params::from_env(0x3172E, 120);
  const auto out = run_property<MatrixCase>(
      "wire.roundtrip_vs_oracle", params, matrix_gen(),
      [&](const MatrixCase& c) {
        const core::SerializeResult ser = rig.serialize(c);
        const auto prod = production_deserialize(ser.chain, rig.mem());
        require(prod.has_value(),
                "production rejected a well-formed serialized chain");
        const auto oracle =
            oracle_deserialize(to_oracle_descs(ser.chain),
                               rig.oracle_reader());
        require(oracle.has_value(),
                "oracle rejected a well-formed serialized chain");

        require(static_cast<std::uint32_t>(prod->direction) ==
                    oracle->direction,
                "direction disagrees");
        require(prod->direction ==
                    static_cast<driver::XferDirection>(c.direction),
                "direction does not round-trip");
        require(prod->nr_pages == oracle->nr_pages,
                "page count disagrees with oracle");
        require(prod->nr_pages == ser.nr_pages,
                "page count does not round-trip");
        require(prod->total_bytes == oracle->total_bytes,
                "total bytes disagree with oracle");
        require(prod->entries.size() == c.entries.size() &&
                    oracle->entries.size() == c.entries.size(),
                "entry count does not round-trip");
        for (std::size_t k = 0; k < c.entries.size(); ++k) {
          const EntryShape& e = c.entries[k];
          require(prod->entries[k].dpu == e.dpu &&
                      oracle->entries[k].dpu == e.dpu,
                  "dpu does not round-trip");
          require(prod->entries[k].mram_offset == e.mram_offset &&
                      oracle->entries[k].mram_offset == e.mram_offset,
                  "mram offset does not round-trip");
          const auto prod_bytes = flatten_segments(prod->entries[k]);
          require(prod_bytes == oracle->entries[k].bytes,
                  "gathered bytes disagree with oracle");
          require(prod_bytes.size() == e.size &&
                      std::memcmp(prod_bytes.data(),
                                  rig.slab.data() + e.slab_off,
                                  e.size) == 0,
                  "gathered bytes do not round-trip");
        }
      },
      show_matrix);
  EXPECT_TRUE(out.ok) << out.reproducer;
}

// ---- property 2: mutated chains — parser agreement ----------------------

struct MutationCase {
  MatrixCase matrix;
  std::uint64_t mut_seed = 1;
};

std::string show_mutation(const MutationCase& c) {
  return "mut_seed=" + std::to_string(c.mut_seed) + " " +
         show_matrix(c.matrix);
}

Gen<MutationCase> mutation_gen() {
  auto matrices = matrix_gen();
  auto shared = std::make_shared<Gen<MatrixCase>>(std::move(matrices));
  Gen<MutationCase> gen;
  gen.sample = [shared](Rng& rng) {
    MutationCase c;
    c.matrix = shared->sample(rng);
    c.mut_seed = rng.next_u64();
    return c;
  };
  gen.shrink = [shared](const MutationCase& c) {
    std::vector<MutationCase> out;
    for (MatrixCase& m : shared->shrink(c.matrix)) {
      out.push_back({std::move(m), c.mut_seed});
    }
    return out;
  };
  return gen;
}

// Applies one seeded corruption to a freshly serialized chain. Mutates the
// descriptor list and/or the staged control blocks in guest memory.
std::vector<virtio::DescBuffer> mutate_chain(
    WireRig& rig, std::vector<virtio::DescBuffer> chain, Rng& rng) {
  switch (rng.uniform(0, 5)) {
    case 0: {  // flip one bit in a staged control block
      std::span<std::uint8_t> regions[] = {
          rig.arena.request.first(sizeof(WireRequest)),
          rig.arena.matrix_meta.first(sizeof(WireMatrixMeta)),
          rig.arena.entry_meta, rig.arena.page_lists};
      auto& region = regions[rng.uniform(0, 3)];
      const auto byte = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(region.size()) - 1));
      region[byte] ^= static_cast<std::uint8_t>(1 << rng.uniform(0, 7));
      break;
    }
    case 1: {  // truncate (keep at least the request descriptor)
      const auto keep = static_cast<std::size_t>(
          rng.uniform(1, static_cast<std::int64_t>(chain.size()) - 1));
      chain.resize(keep);
      break;
    }
    case 2: {  // rewrite one descriptor length
      auto& d = chain[static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(chain.size()) - 1))];
      d.len = static_cast<std::uint32_t>(rng.uniform(0, 64 * 1024));
      break;
    }
    case 3: {  // point one descriptor at a random GPA
      auto& d = chain[static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(chain.size()) - 1))];
      d.gpa = rng.uniform(0, 1) ? rng.next_u64()
                                : static_cast<std::uint64_t>(
                                      rng.uniform(0, 1 << 24));
      break;
    }
    case 4: {  // duplicate a descriptor (breaks the odd-count invariant)
      const auto i = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(chain.size()) - 1));
      chain.insert(chain.begin() + static_cast<std::ptrdiff_t>(i),
                   chain[i]);
      break;
    }
    default: {  // swap two descriptors
      const auto i = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(chain.size()) - 1));
      const auto j = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(chain.size()) - 1));
      std::swap(chain[i], chain[j]);
      break;
    }
  }
  return chain;
}

TEST(PropWire, MutatedChainsParseIdenticallyInBothParsers) {
  WireRig rig;
  const Params params = Params::from_env(0x4D07DEAD, 200);
  const auto out = run_property<MutationCase>(
      "wire.mutation_differential", params, mutation_gen(),
      [&](const MutationCase& c) {
        const core::SerializeResult ser = rig.serialize(c.matrix);
        Rng rng(c.mut_seed);
        const auto mutated = mutate_chain(rig, ser.chain, rng);
        const auto prod = production_deserialize(mutated, rig.mem());
        const auto oracle = oracle_deserialize(to_oracle_descs(mutated),
                                               rig.oracle_reader());
        require(prod.has_value() == oracle.has_value(),
                prod.has_value()
                    ? "production accepted a chain the oracle rejects"
                    : "oracle accepted a chain production rejects");
        if (!prod.has_value()) return;
        require(static_cast<std::uint32_t>(prod->direction) ==
                        oracle->direction &&
                    prod->nr_pages == oracle->nr_pages &&
                    prod->total_bytes == oracle->total_bytes &&
                    prod->entries.size() == oracle->entries.size(),
                "accepted mutated chain decodes differently");
        for (std::size_t k = 0; k < prod->entries.size(); ++k) {
          require(prod->entries[k].dpu == oracle->entries[k].dpu &&
                      prod->entries[k].mram_offset ==
                          oracle->entries[k].mram_offset &&
                      flatten_segments(prod->entries[k]) ==
                          oracle->entries[k].bytes,
                  "accepted mutated chain gathers different bytes");
        }
      },
      show_mutation);
  EXPECT_TRUE(out.ok) << out.reproducer;
}

// ---- property 3: mutated chains on the live device ----------------------
//
// Submitting any mutated chain through the real virtqueue must complete
// via push_used with a typed status: the backend never throws out of
// handle_transferq, never leaks descriptors, and the device keeps serving
// well-formed traffic afterwards.

TEST(PropWire, MutatedChainsCompleteWithTypedStatusOnDevice) {
  WireRig rig;
  const Params params = Params::from_env(0x7E57DE7, 150);
  const auto out = run_property<MutationCase>(
      "wire.mutation_device_survival", params, mutation_gen(),
      [&](const MutationCase& c) {
        const core::SerializeResult ser = rig.serialize(c.matrix);
        Rng rng(c.mut_seed);
        const auto mutated = mutate_chain(rig, ser.chain, rng);

        std::memset(rig.arena.response.data(), 0, sizeof(WireResponse));
        const std::uint16_t free_before =
            rig.dev().transferq.free_descriptors();
        const std::uint64_t errs_before = rig.dev().stats.request_errors;
        rig.dev().transferq.submit(mutated);
        try {
          rig.dev().backend.handle_transferq();
        } catch (const std::exception& e) {
          require(false, std::string("backend threw out of the queue "
                                     "handler: ") +
                             e.what());
        }
        require(rig.dev().transferq.poll_used().has_value(),
                "mutated chain never completed (queue wedged)");
        require(rig.dev().transferq.free_descriptors() == free_before,
                "descriptors leaked");
        // Typed outcome: either the device accepted a still-valid chain
        // (kOk response) or it counted exactly this request as an error.
        WireResponse resp;
        std::memcpy(&resp, rig.arena.response.data(), sizeof(resp));
        const bool rejected =
            rig.dev().stats.request_errors == errs_before + 1;
        const bool accepted =
            rig.dev().stats.request_errors == errs_before &&
            resp.status == 0;
        require(rejected || accepted,
                "completion was neither kOk nor a counted request error");
      },
      show_mutation);
  EXPECT_TRUE(out.ok) << out.reproducer;

  // The device still serves well-formed traffic after the barrage.
  auto data = rig.mem().alloc(8 * kKiB);
  auto back = rig.mem().alloc(8 * kKiB);
  Rng rng(0xAF7E);
  rng.fill_bytes(data.data(), data.size());
  driver::TransferMatrix w;
  w.entries.push_back({0, 4096, data.data(), data.size()});
  rig.dev().frontend.write_to_rank(w);
  driver::TransferMatrix r;
  r.direction = driver::XferDirection::kFromRank;
  r.entries.push_back({0, 4096, back.data(), back.size()});
  rig.dev().frontend.read_from_rank(r);
  EXPECT_EQ(std::memcmp(back.data(), data.data(), data.size()), 0);
}

// ---- property 4: pooled scratch reuse is invisible on the wire ----------
//
// The request path reuses SerializeResult / DeserializeResult /
// DeserializeScratch buffers across requests (arena allocation, PR 6).
// Reuse must be unobservable: serializing into a dirty pooled result must
// produce the same descriptor chain and the same staged arena bytes as the
// fresh value-returning path, and deserializing into dirty pooled scratch
// must gather the same bytes as a fresh deserialize of the same chain.

TEST(PropWire, PooledScratchMatchesFreshAllocation) {
  WireRig rig;
  // One pooled set reused across every case, so each case sees scratch
  // dirtied by the previous one — exactly how the backend drives it.
  core::SerializeResult pooled_ser;
  core::DeserializeResult pooled_deser;
  core::DeserializeScratch scratch;
  const Params params = Params::from_env(0x9001EDu, 120);
  const auto out = run_property<MatrixCase>(
      "wire.pooled_vs_fresh", params, matrix_gen(),
      [&](const MatrixCase& c) {
        driver::TransferMatrix m;
        m.direction = static_cast<driver::XferDirection>(c.direction);
        for (const EntryShape& e : c.entries) {
          m.entries.push_back(
              {e.dpu, e.mram_offset, rig.slab.data() + e.slab_off, e.size});
        }
        const auto request_type = static_cast<std::uint32_t>(
            c.direction == 0 ? virtio::PimRequestType::kWriteToRank
                             : virtio::PimRequestType::kReadFromRank);

        // Pooled serialize, then snapshot what landed in the guest arena.
        core::serialize_matrix(m, rig.mem(), rig.arena, request_type,
                               pooled_ser);
        auto snap = [](std::span<std::uint8_t> region) {
          return std::vector<std::uint8_t>(region.begin(), region.end());
        };
        const auto req_a = snap(rig.arena.request);
        const auto meta_a = snap(rig.arena.matrix_meta);
        const auto entries_a = snap(rig.arena.entry_meta);
        const auto pages_a = snap(rig.arena.page_lists);
        const std::vector<virtio::DescBuffer> chain_a = pooled_ser.chain;

        // Fresh value-returning serialize of the same matrix.
        const core::SerializeResult fresh =
            core::serialize_matrix(m, rig.mem(), rig.arena, request_type);
        require(fresh.nr_pages == pooled_ser.nr_pages,
                "pooled serialize page count diverges from fresh");
        require(fresh.chain.size() == chain_a.size(),
                "pooled serialize chain length diverges from fresh");
        for (std::size_t k = 0; k < fresh.chain.size(); ++k) {
          require(fresh.chain[k].gpa == chain_a[k].gpa &&
                      fresh.chain[k].len == chain_a[k].len &&
                      fresh.chain[k].device_writable ==
                          chain_a[k].device_writable,
                  "pooled serialize chain diverges from fresh");
        }
        require(snap(rig.arena.request) == req_a &&
                    snap(rig.arena.matrix_meta) == meta_a &&
                    snap(rig.arena.entry_meta) == entries_a &&
                    snap(rig.arena.page_lists) == pages_a,
                "pooled serialize staged different arena bytes");

        // Pooled deserialize with carried-over dirty scratch vs fresh.
        core::deserialize_matrix(to_desc_chain(chain_a), rig.mem(),
                                 pooled_deser, scratch);
        const core::DeserializeResult plain =
            core::deserialize_matrix(to_desc_chain(chain_a), rig.mem());
        require(pooled_deser.direction == plain.direction &&
                    pooled_deser.nr_pages == plain.nr_pages &&
                    pooled_deser.total_bytes == plain.total_bytes &&
                    pooled_deser.entries.size() == plain.entries.size(),
                "pooled deserialize header diverges from fresh");
        for (std::size_t k = 0; k < plain.entries.size(); ++k) {
          require(pooled_deser.entries[k].dpu == plain.entries[k].dpu &&
                      pooled_deser.entries[k].mram_offset ==
                          plain.entries[k].mram_offset &&
                      pooled_deser.entries[k].size == plain.entries[k].size,
                  "pooled deserialize entry header diverges from fresh");
          require(flatten_segments(pooled_deser.entries[k]) ==
                      flatten_segments(plain.entries[k]),
                  "pooled deserialize gathers different bytes");
        }
      },
      show_matrix);
  EXPECT_TRUE(out.ok) << out.reproducer;
}

}  // namespace
}  // namespace vpim::prop
