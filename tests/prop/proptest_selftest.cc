// Self-tests of the property harness itself: shrinking converges to the
// known minimal counterexample, failures print the one-line
// VPIM_PROP_SEED reproducer, the reproducer replays deterministically,
// and the two environment knobs behave as documented in TESTING.md.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/proptest/proptest.h"

namespace vpim::prop {
namespace {

// RAII environment override so env-behaviour tests cannot leak into the
// rest of the binary.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (saved_) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST(PropSelftest, PassingPropertyIsOk) {
  Params params;
  params.iterations = 50;
  const auto out = run_property<std::uint64_t>(
      "selftest.pass", params, u64_range(0, 1000),
      [](const std::uint64_t& v) { require(v <= 1000, "in range"); });
  EXPECT_TRUE(out.ok);
  EXPECT_TRUE(out.reproducer.empty());
}

TEST(PropSelftest, ShrinkConvergesToBoundary) {
  // Property "v < 100" over [0, 10^6]: the minimal counterexample is
  // exactly 100, and greedy shrinking must find it from wherever the
  // random failure landed.
  Params params;
  params.iterations = 200;
  params.quiet = true;
  const auto out = run_property<std::uint64_t>(
      "selftest.boundary", params, u64_range(0, 1000000),
      [](const std::uint64_t& v) { require(v < 100, "v must stay small"); },
      [](const std::uint64_t& v) { return "v=" + std::to_string(v); });
  ASSERT_FALSE(out.ok);
  EXPECT_EQ(out.minimal, 100u);
  EXPECT_GT(out.shrink_steps, 0);
}

TEST(PropSelftest, ReproducerIsOneLineWithSeed) {
  Params params;
  params.iterations = 50;
  params.quiet = true;
  const auto out = run_property<std::uint64_t>(
      "selftest.repro", params, u64_range(0, 1000),
      [](const std::uint64_t& v) {
        require(v < 5, "multi\nline\nmessage");
      },
      [](const std::uint64_t& v) { return "v=" + std::to_string(v); });
  ASSERT_FALSE(out.ok);
  EXPECT_NE(out.reproducer.find("VPIM_PROP_SEED="), std::string::npos);
  EXPECT_NE(out.reproducer.find("selftest.repro"), std::string::npos);
  EXPECT_EQ(out.reproducer.find('\n'), std::string::npos)
      << "reproducer must be a single line";
}

TEST(PropSelftest, ReplaySeedReproducesTheSameCase) {
  Params params;
  params.iterations = 100;
  params.quiet = true;
  const auto first = run_property<std::uint64_t>(
      "selftest.replay", params, u64_range(0, 1000000),
      [](const std::uint64_t& v) { require(v < 100, "small"); });
  ASSERT_FALSE(first.ok);

  // Re-running from just the failing case seed must regenerate the same
  // shrunk counterexample, independent of the original iteration index.
  Params replay;
  replay.replay_seed = first.failing_seed;
  replay.quiet = true;
  const auto again = run_property<std::uint64_t>(
      "selftest.replay", replay, u64_range(0, 1000000),
      [](const std::uint64_t& v) { require(v < 100, "small"); });
  ASSERT_FALSE(again.ok);
  EXPECT_EQ(again.failing_seed, first.failing_seed);
  EXPECT_EQ(again.minimal, first.minimal);
  EXPECT_EQ(again.failing_iteration, 0);
}

TEST(PropSelftest, VectorShrinkDropsIrrelevantElements) {
  // Property "no element > 50": the minimal counterexample is the
  // single-element vector {51}.
  Params params;
  params.iterations = 200;
  params.quiet = true;
  const auto out = run_property<std::vector<std::uint64_t>>(
      "selftest.vector", params, vector_of(u64_range(0, 1000), 1, 8),
      [](const std::vector<std::uint64_t>& v) {
        for (std::uint64_t x : v) require(x <= 50, "element too large");
      });
  ASSERT_FALSE(out.ok);
  ASSERT_EQ(out.minimal.size(), 1u);
  EXPECT_EQ(out.minimal[0], 51u);
}

TEST(PropSelftest, ElementOfShrinksTowardFirst) {
  Params params;
  params.iterations = 100;
  params.quiet = true;
  const auto out = run_property<std::uint64_t>(
      "selftest.element", params,
      element_of<std::uint64_t>({2, 4, 8, 16, 32}),
      [](const std::uint64_t& v) { require(v < 8, "small power"); });
  ASSERT_FALSE(out.ok);
  EXPECT_EQ(out.minimal, 8u);
}

TEST(PropSelftest, QuietSuppressesFailLineButKeepsSeedLine) {
  // Teeth tests set quiet so their expected failures do not look like real
  // ones to log harvesters (tools/prop_seeds.py); the seed log line and the
  // Outcome reproducer must survive.
  Params params;
  params.iterations = 50;
  params.quiet = true;
  testing::internal::CaptureStderr();
  const auto out = run_property<std::uint64_t>(
      "selftest.quiet", params, u64_range(0, 1000),
      [](const std::uint64_t& v) { require(v < 5, "boom"); });
  const std::string err = testing::internal::GetCapturedStderr();
  ASSERT_FALSE(out.ok);
  EXPECT_NE(out.reproducer.find("VPIM_PROP_SEED="), std::string::npos);
  EXPECT_NE(err.find("[prop] selftest.quiet: base_seed="), std::string::npos);
  EXPECT_EQ(err.find("[prop] FAIL"), std::string::npos) << err;
}

TEST(PropSelftest, EnvSeedForcesSingleCaseReplay) {
  ScopedEnv env("VPIM_PROP_SEED", "424242");
  const Params params = Params::from_env(7, 100);
  ASSERT_TRUE(params.replay_seed.has_value());
  EXPECT_EQ(*params.replay_seed, 424242u);

  int runs = 0;
  const auto out = run_property<std::uint64_t>(
      "selftest.envseed", params, u64_range(0, 1000),
      [&runs](const std::uint64_t&) { ++runs; });
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(runs, 1) << "replay mode must run exactly one case";
}

TEST(PropSelftest, EnvItersMultipliesBudget) {
  ScopedEnv env("VPIM_PROP_ITERS", "50");
  const Params params = Params::from_env(7, 20);
  EXPECT_EQ(params.iterations, 1000);
  EXPECT_FALSE(params.replay_seed.has_value());
}

TEST(PropSelftest, GarbageEnvValuesAreIgnored) {
  ScopedEnv seed("VPIM_PROP_SEED", "not-a-number");
  ScopedEnv iters("VPIM_PROP_ITERS", "-3");
  const Params params = Params::from_env(7, 20);
  EXPECT_FALSE(params.replay_seed.has_value());
  EXPECT_EQ(params.iterations, 20);
}

TEST(PropSelftest, DerivedCaseSeedsDiffer) {
  // Neighbouring iterations must not see correlated streams.
  EXPECT_NE(splitmix64(1), splitmix64(2));
  EXPECT_NE(splitmix64(0), 0u);
}

}  // namespace
}  // namespace vpim::prop
