// Cost-model invariants, checked differentially against the independent
// transition-counting oracle in common/proptest/oracle.h:
//
//  - every write/read rank op charges exactly the oracle's recomputed
//    total, and the Fig 13 write-step breakdown matches component by
//    component (Page / Ser / Int / Deser / T-data);
//  - costs are additive across a random sequence of transfer groups;
//  - cost is monotone in transfer size;
//  - results, breakdowns, and span digests are bit-invariant under
//    VPIM_THREADS 1 / 4 / hardware_concurrency.
//
// Plus a teeth test: a rig whose CostModel is perturbed by 1% on one
// constant must be caught against the unperturbed oracle.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/obs/trace.h"
#include "common/proptest/oracle.h"
#include "common/proptest/proptest.h"
#include "common/thread_pool.h"
#include "driver/xfer.h"
#include "tests/testutil.h"
#include "vpim/host.h"
#include "vpim/vpim_vm.h"

namespace vpim::prop {
namespace {

core::ManagerConfig fast_manager() {
  core::ManagerConfig cfg;
  cfg.retry_wait_ns = 1 * kMs;
  cfg.max_attempts = 2;
  return cfg;
}

// One transfer-matrix entry, described by shape only (data never affects
// cost). page_off is realized exactly: the guest bump allocator is
// page-granular, so buf.data() + page_off has that offset within its page.
struct EntrySpec {
  std::uint64_t dpu = 0;
  std::uint64_t mram_offset = 0;
  std::uint64_t page_off = 0;  // 0..4095
  std::uint64_t size = 1;      // 1..32768
};

struct OpSpec {
  bool is_write = true;
  std::vector<EntrySpec> entries;
};

struct CostCase {
  bool c_path = false;  // c_only() vs rust() data path
  std::vector<OpSpec> ops;
};

std::string show_case(const CostCase& c) {
  std::string s = c.c_path ? "C{" : "rust{";
  for (const OpSpec& op : c.ops) {
    s += op.is_write ? " W[" : " R[";
    for (const EntrySpec& e : op.entries) {
      s += "(d" + std::to_string(e.dpu) + " m" +
           std::to_string(e.mram_offset) + " o" +
           std::to_string(e.page_off) + " s" + std::to_string(e.size) + ")";
    }
    s += "]";
  }
  return s + " }";
}

EntrySpec sample_entry(Rng& rng) {
  EntrySpec e;
  e.dpu = static_cast<std::uint64_t>(rng.uniform(0, 7));
  e.mram_offset = static_cast<std::uint64_t>(rng.uniform(0, 1 << 20));
  e.page_off = static_cast<std::uint64_t>(rng.uniform(0, 4095));
  switch (rng.uniform(0, 2)) {
    case 0:  // sub-page
      e.size = static_cast<std::uint64_t>(rng.uniform(1, 64));
      break;
    case 1:  // around the page boundary
      e.size = static_cast<std::uint64_t>(rng.uniform(4000, 12288));
      break;
    default:
      e.size = static_cast<std::uint64_t>(rng.uniform(1, 32768));
      break;
  }
  return e;
}

Gen<CostCase> cost_case_gen(int max_ops) {
  Gen<CostCase> gen;
  gen.sample = [max_ops](Rng& rng) {
    CostCase c;
    c.c_path = rng.uniform(0, 1) == 1;
    const int nr_ops = static_cast<int>(rng.uniform(1, max_ops));
    for (int i = 0; i < nr_ops; ++i) {
      OpSpec op;
      op.is_write = rng.uniform(0, 1) == 1;
      // Cap at 6 entries: 8 identical entries on the 8-DPU test rank
      // would flip the backend onto the broadcast path, which the direct
      // cost oracle deliberately does not model.
      const int nr_entries = static_cast<int>(rng.uniform(1, 6));
      for (int k = 0; k < nr_entries; ++k) {
        op.entries.push_back(sample_entry(rng));
      }
      c.ops.push_back(std::move(op));
    }
    return c;
  };
  gen.shrink = [](const CostCase& c) {
    std::vector<CostCase> out;
    if (c.ops.size() > 1) {
      for (std::size_t i = 0; i < c.ops.size(); ++i) {
        CostCase fewer = c;
        fewer.ops.erase(fewer.ops.begin() + static_cast<std::ptrdiff_t>(i));
        out.push_back(std::move(fewer));
      }
    }
    for (std::size_t i = 0; i < c.ops.size(); ++i) {
      if (c.ops[i].entries.size() > 1) {
        CostCase fewer = c;
        fewer.ops[i].entries.pop_back();
        out.push_back(std::move(fewer));
      }
    }
    bool any_big = false, any_off = false;
    for (const OpSpec& op : c.ops) {
      for (const EntrySpec& e : op.entries) {
        any_big |= e.size > 1;
        any_off |= e.page_off != 0;
      }
    }
    if (any_big) {
      CostCase halved = c;
      for (OpSpec& op : halved.ops) {
        for (EntrySpec& e : op.entries) e.size = (e.size + 1) / 2;
      }
      out.push_back(std::move(halved));
    }
    if (any_off) {
      CostCase aligned = c;
      for (OpSpec& op : aligned.ops) {
        for (EntrySpec& e : op.entries) e.page_off = 0;
      }
      out.push_back(std::move(aligned));
    }
    return out;
  };
  return gen;
}

struct CostRig {
  CostRig(bool c_path, const CostModel& cost)
      : host(test::small_machine(), cost, fast_manager()),
        vm(host, {.name = "prop-cost"}, 1,
           c_path ? core::VpimConfig::c_only() : core::VpimConfig::rust()) {
    require(vm.device(0).frontend.open(), "device failed to open");
  }

  core::Host host;
  core::VpimVm vm;
};

struct OpMeasure {
  SimNs total = 0;
  std::array<SimNs, 5> wsteps{};
};

// Replays the case's ops on the rig and returns per-op stat deltas.
std::vector<OpMeasure> run_ops(CostRig& rig, const CostCase& c) {
  core::Frontend& fe = rig.vm.device(0).frontend;
  const core::DeviceStats& stats = rig.vm.device(0).stats;
  std::vector<OpMeasure> out;
  for (const OpSpec& op : c.ops) {
    driver::TransferMatrix m;
    m.direction = op.is_write ? driver::XferDirection::kToRank
                              : driver::XferDirection::kFromRank;
    for (const EntrySpec& e : op.entries) {
      auto buf = rig.vm.vmm().memory().alloc(e.page_off + e.size);
      if (op.is_write) std::memset(buf.data(), 0x5A, buf.size());
      m.entries.push_back(
          {static_cast<std::uint32_t>(e.dpu), e.mram_offset,
           buf.data() + e.page_off, e.size});
    }
    const auto ops_before = stats.ops.op_time;
    const auto steps_before = stats.wsteps.step_time;
    if (op.is_write) {
      fe.write_to_rank(m);
    } else {
      fe.read_from_rank(m);
    }
    const auto idx = static_cast<std::size_t>(
        op.is_write ? RankOp::kWriteToRank : RankOp::kReadFromRank);
    OpMeasure meas;
    meas.total = stats.ops.op_time[idx] - ops_before[idx];
    for (std::size_t i = 0; i < meas.wsteps.size(); ++i) {
      meas.wsteps[i] = stats.wsteps.step_time[i] - steps_before[i];
    }
    out.push_back(meas);
  }
  return out;
}

std::vector<OracleXferShape> shapes_of(const OpSpec& op) {
  std::vector<OracleXferShape> shapes;
  for (const EntrySpec& e : op.entries) {
    shapes.push_back({e.page_off, e.size});
  }
  return shapes;
}

void check_case_against_oracle(const CostCase& c, const CostModel& rig_cost,
                               const CostModel& oracle_cost) {
  CostRig rig(c.c_path, rig_cost);
  const std::vector<OpMeasure> meas = run_ops(rig, c);
  SimNs oracle_sum = 0;
  std::uint64_t writes = 0, reads = 0;
  for (std::size_t i = 0; i < c.ops.size(); ++i) {
    const OracleXferCost oc =
        oracle_direct_xfer_cost(oracle_cost, shapes_of(c.ops[i]), c.c_path);
    oracle_sum += oc.total;
    require(meas[i].total == oc.total,
            "op " + std::to_string(i) + " total " +
                std::to_string(meas[i].total) + " != oracle " +
                std::to_string(oc.total));
    if (c.ops[i].is_write) {
      ++writes;
      // The frontend ioctl charge lands inside the op total but outside
      // every write step; the remaining five components map one-to-one.
      const std::array<SimNs, 5> want = {oc.page_mgmt, oc.serialize,
                                         oc.interrupt, oc.deserialize,
                                         oc.transfer};
      for (std::size_t s = 0; s < want.size(); ++s) {
        require(meas[i].wsteps[s] == want[s],
                "op " + std::to_string(i) + " wstep " +
                    std::string(kWrankStepNames[s]) + " " +
                    std::to_string(meas[i].wsteps[s]) + " != oracle " +
                    std::to_string(want[s]));
      }
    } else {
      ++reads;
      for (SimNs s : meas[i].wsteps) {
        require(s == 0, "read op moved the write-step breakdown");
      }
    }
  }
  // Additivity: the device's cumulative W+R op time is exactly the sum of
  // the per-op oracle totals — nothing hidden charges those buckets.
  const core::DeviceStats& stats = rig.vm.device(0).stats;
  const SimNs op_total = stats.ops.time(RankOp::kWriteToRank) +
                         stats.ops.time(RankOp::kReadFromRank);
  require(op_total == oracle_sum, "sequence total is not additive");
  require(stats.ops.count(RankOp::kWriteToRank) == writes &&
              stats.ops.count(RankOp::kReadFromRank) == reads,
          "op counts disagree");
}

TEST(PropCost, OpTotalsAndWriteStepsMatchOracle) {
  const Params params = Params::from_env(0xC057001u, 40);
  const auto out = run_property<CostCase>(
      "cost.vs_oracle", params, cost_case_gen(4),
      [](const CostCase& c) {
        check_case_against_oracle(c, CostModel{}, CostModel{});
      },
      show_case);
  EXPECT_TRUE(out.ok) << out.reproducer;
}

// Monotonicity: growing any single transfer's size never makes the
// operation cheaper — in the measured rig and in the oracle.
struct GrowCase {
  bool c_path = false;
  bool is_write = true;
  EntrySpec entry;
  std::uint64_t grow = 1;
};

std::string show_grow(const GrowCase& g) {
  CostCase c;
  c.c_path = g.c_path;
  c.ops.push_back({g.is_write, {g.entry}});
  return show_case(c) + " grow=" + std::to_string(g.grow);
}

TEST(PropCost, CostIsMonotoneInSize) {
  Gen<GrowCase> gen;
  gen.sample = [](Rng& rng) {
    GrowCase g;
    g.c_path = rng.uniform(0, 1) == 1;
    g.is_write = rng.uniform(0, 1) == 1;
    g.entry = sample_entry(rng);
    g.grow = static_cast<std::uint64_t>(rng.uniform(1, 16384));
    return g;
  };
  gen.shrink = [](const GrowCase& g) {
    std::vector<GrowCase> out;
    if (g.grow > 1) {
      GrowCase less = g;
      less.grow = g.grow / 2;
      out.push_back(less);
    }
    if (g.entry.size > 1) {
      GrowCase less = g;
      less.entry.size = (g.entry.size + 1) / 2;
      out.push_back(less);
    }
    return out;
  };
  const Params params = Params::from_env(0x600D51Eu, 25);
  const auto out = run_property<GrowCase>(
      "cost.monotone_in_size", params, gen,
      [](const GrowCase& g) {
        CostCase small;
        small.c_path = g.c_path;
        small.ops.push_back({g.is_write, {g.entry}});
        CostCase big = small;
        big.ops[0].entries[0].size += g.grow;

        CostRig rig_small(small.c_path, CostModel{});
        CostRig rig_big(big.c_path, CostModel{});
        const SimNs t_small = run_ops(rig_small, small)[0].total;
        const SimNs t_big = run_ops(rig_big, big)[0].total;
        require(t_big >= t_small, "measured cost shrank as size grew");

        const SimNs o_small =
            oracle_direct_xfer_cost(CostModel{}, shapes_of(small.ops[0]),
                                    small.c_path)
                .total;
        const SimNs o_big = oracle_direct_xfer_cost(
                                CostModel{}, shapes_of(big.ops[0]), big.c_path)
                                .total;
        require(o_big >= o_small, "oracle cost shrank as size grew");
      },
      show_grow);
  EXPECT_TRUE(out.ok) << out.reproducer;
}

// VPIM_THREADS bit-invariance: the same random op sequence at pool sizes
// 1 / 4 / hw must produce identical breakdowns, clock, span digests, and
// metrics snapshots.
struct ThreadCap {
  std::array<SimNs, 3> op_time{};
  std::array<std::uint64_t, 3> op_count{};
  std::array<SimNs, 5> step_time{};
  SimNs clock_end = 0;
  std::string span_digest;
  std::string metrics_text;
};

ThreadCap run_at(unsigned threads, const CostCase& c) {
  ThreadPool::instance().resize(threads);
  CostRig rig(c.c_path, CostModel{});
  obs::Tracer tracer;
  rig.host.attach_tracer(&tracer);
  run_ops(rig, c);
  const core::DeviceStats& stats = rig.vm.device(0).stats;
  ThreadCap cap;
  cap.op_time = stats.ops.op_time;
  cap.op_count = stats.ops.op_count;
  cap.step_time = stats.wsteps.step_time;
  cap.clock_end = rig.host.clock.now();
  cap.span_digest = tracer.digest();
  cap.metrics_text = rig.host.obs.metrics.prometheus_text();
  return cap;
}

class PropCostThreads : public ::testing::Test {
 protected:
  void SetUp() override { original_ = ThreadPool::instance().size(); }
  void TearDown() override { ThreadPool::instance().resize(original_); }
  unsigned original_ = 1;
};

TEST_F(PropCostThreads, BreakdownsAreThreadCountInvariant) {
  std::vector<unsigned> sweep = {1, 4};
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  if (hw != 1 && hw != 4) sweep.push_back(hw);

  const Params params = Params::from_env(0x7412EAD5u, 15);
  const auto out = run_property<CostCase>(
      "cost.thread_invariance", params, cost_case_gen(3),
      [&sweep](const CostCase& c) {
        const ThreadCap base = run_at(sweep[0], c);
        for (std::size_t i = 1; i < sweep.size(); ++i) {
          const ThreadCap got = run_at(sweep[i], c);
          const std::string at = " differs at threads=" +
                                 std::to_string(sweep[i]);
          require(got.op_time == base.op_time, "op_time" + at);
          require(got.op_count == base.op_count, "op_count" + at);
          require(got.step_time == base.step_time, "step_time" + at);
          require(got.clock_end == base.clock_end, "clock" + at);
          require(got.span_digest == base.span_digest, "span digest" + at);
          require(got.metrics_text == base.metrics_text, "metrics" + at);
        }
      },
      show_case);
  EXPECT_TRUE(out.ok) << out.reproducer;
}

// Teeth: a rig whose vmexit cost is off by 1% must be caught against the
// unperturbed oracle, shrink to a single op, and print the reproducer.
TEST(PropCost, PerturbedCostModelIsCaught) {
  CostModel skewed;
  skewed.vmexit_notify_ns += skewed.vmexit_notify_ns / 100;
  Params params;
  params.base_seed = 0x0FF8Ea7;
  params.iterations = 10;
  params.quiet = true;  // the FAIL here is the expected outcome
  const auto out = run_property<CostCase>(
      "cost.teeth", params, cost_case_gen(3),
      [&skewed](const CostCase& c) {
        check_case_against_oracle(c, skewed, CostModel{});
      },
      show_case);
  ASSERT_FALSE(out.ok) << "the harness failed to catch a skewed cost model";
  EXPECT_NE(out.reproducer.find("VPIM_PROP_SEED="), std::string::npos);
  // Every op is mispriced, so shrinking must reach one op with one entry.
  ASSERT_EQ(out.minimal.ops.size(), 1u) << show_case(out.minimal);
  EXPECT_EQ(out.minimal.ops[0].entries.size(), 1u) << show_case(out.minimal);
}

}  // namespace
}  // namespace vpim::prop
