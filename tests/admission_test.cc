// Overload protection (ISSUE 8): the AdmissionController's token-bucket /
// global-budget / WRR-fairness decisions in isolation, plus the end-to-end
// try_submit / cancel / deadline / lost-batched-write paths through a real
// device stack. Everything here is pure virtual time — no sleeps, no wall
// clock — so every decision is reproducible by construction.
#include <gtest/gtest.h>

#include <cstring>

#include "common/fault.h"
#include "tests/testutil.h"
#include "virtio/pim_spec.h"
#include "vpim/admission.h"
#include "vpim/host.h"
#include "vpim/vpim_vm.h"

namespace vpim::core {
namespace {

using virtio::PimStatus;

// ---- controller in isolation --------------------------------------------

TEST(AdmissionController, TokenBucketRefillsAtTheContractedRate) {
  AdmissionConfig cfg;
  cfg.tokens_per_sec = 2;
  cfg.bucket_burst = 2;
  AdmissionController adm(cfg);

  // A fresh session starts with a full (burst-sized) bucket.
  EXPECT_EQ(adm.try_admit("t0", 0), PimStatus::kOk);
  EXPECT_EQ(adm.try_admit("t0", 0), PimStatus::kOk);
  EXPECT_EQ(adm.try_admit("t0", 0), PimStatus::kAdmissionReject);

  // 2 tokens/sec: after 499 ms still dry, at 500 ms exactly one earned.
  EXPECT_EQ(adm.try_admit("t0", 499 * kMs), PimStatus::kAdmissionReject);
  EXPECT_EQ(adm.try_admit("t0", 500 * kMs), PimStatus::kOk);
  EXPECT_EQ(adm.try_admit("t0", 500 * kMs), PimStatus::kAdmissionReject);

  // Refill caps at the burst, no matter how long the session idles.
  EXPECT_EQ(adm.try_admit("t0", 100 * kSec), PimStatus::kOk);
  EXPECT_EQ(adm.try_admit("t0", 100 * kSec), PimStatus::kOk);
  EXPECT_EQ(adm.try_admit("t0", 100 * kSec), PimStatus::kAdmissionReject);

  const AdmissionStats s = adm.stats();
  EXPECT_EQ(s.admitted, 5u);
  EXPECT_EQ(s.shed_tenant, 4u);
  EXPECT_EQ(s.shed_global, 0u);
  EXPECT_EQ(s.sessions, 1u);
}

TEST(AdmissionController, GlobalBudgetShedsAndReleasesOnCompletion) {
  AdmissionConfig cfg;
  cfg.tokens_per_sec = 1000;
  cfg.bucket_burst = 100;
  cfg.global_inflight_budget = 2;
  AdmissionController adm(cfg);

  EXPECT_EQ(adm.try_admit("a", 0), PimStatus::kOk);
  EXPECT_EQ(adm.try_admit("b", 0), PimStatus::kOk);
  // Budget full: even a token-rich tenant gets the would-block status.
  EXPECT_EQ(adm.try_admit("c", 0), PimStatus::kOverloaded);
  EXPECT_EQ(adm.stats().inflight, 2u);

  adm.complete(1 * kMs, 1 * kMs);
  EXPECT_EQ(adm.try_admit("c", 1 * kMs), PimStatus::kOk);

  const AdmissionStats s = adm.stats();
  EXPECT_EQ(s.admitted, 3u);
  EXPECT_EQ(s.shed_global, 1u);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.inflight, 2u);
}

TEST(AdmissionController, RankGrantsRoundRobinAcrossContendingTenants) {
  AdmissionController adm;
  // Register both sessions up front so their shares start level (a session
  // created *after* grants started would begin at the minimum live share).
  adm.set_tenant_weight("a", 1);
  adm.set_tenant_weight("b", 1);
  // Both tenants contend (each asks within the fairness window).
  EXPECT_TRUE(adm.allow_rank_grant("a", 0));
  adm.on_rank_granted("a");
  // "a" is now ahead of "b"'s share: it must defer while "b" contends.
  EXPECT_TRUE(adm.allow_rank_grant("b", 0));
  EXPECT_FALSE(adm.allow_rank_grant("a", 0));
  adm.on_rank_granted("b");
  // Even again: either may take the next one.
  EXPECT_TRUE(adm.allow_rank_grant("a", 0));
  EXPECT_EQ(adm.stats().fairness_deferrals, 1u);
}

TEST(AdmissionController, WeightedTenantsGetProportionallyMoreGrants) {
  AdmissionController adm;
  adm.set_tenant_weight("heavy", 3);
  adm.set_tenant_weight("light", 1);
  int heavy = 0;
  int light = 0;
  for (int i = 0; i < 60; ++i) {
    // Both keep contending; whoever the WRR policy allows takes a rank.
    if (adm.allow_rank_grant("heavy", 0)) {
      adm.on_rank_granted("heavy");
      ++heavy;
    }
    if (adm.allow_rank_grant("light", 0)) {
      adm.on_rank_granted("light");
      ++light;
    }
  }
  // Steady state converges to the 3:1 weighted share (edges smear it a
  // little, so bound the ratio rather than demand it exactly).
  ASSERT_GT(light, 0);
  EXPECT_GE(heavy, 2 * light);
  EXPECT_LE(heavy, 4 * light);
  EXPECT_GT(adm.stats().fairness_deferrals, 0u);
}

TEST(AdmissionController, IdleTenantsDoNotBlockTheOnlyContender) {
  AdmissionController adm;
  // "idle" contended once, long ago; outside the fairness window it must
  // not hold back a live tenant even though its share is smaller.
  EXPECT_TRUE(adm.allow_rank_grant("idle", 0));
  adm.on_rank_granted("idle");
  EXPECT_TRUE(adm.allow_rank_grant("busy", 0));
  adm.on_rank_granted("busy");
  const SimNs later = 10 * kSec;  // far past fairness_window_ns
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(adm.allow_rank_grant("busy", later)) << "grant " << i;
    adm.on_rank_granted("busy");
  }
}

// ---- end to end through the device stack --------------------------------

VpimConfig pipe_config(std::uint32_t depth) {
  VpimConfig cfg = VpimConfig::full();
  cfg.prefetch_cache = false;
  cfg.request_batching = false;
  cfg.queue_depth = depth;
  return cfg;
}

driver::TransferMatrix one_entry(std::span<std::uint8_t> buf,
                                 driver::XferDirection dir) {
  driver::TransferMatrix m;
  m.direction = dir;
  m.entries.push_back({0, 0, buf.data(), buf.size()});
  return m;
}

TEST(AdmissionEndToEnd, TrySubmitShedsTypedAndNothingIsLost) {
  Host host(test::small_machine());
  AdmissionConfig acfg;
  acfg.tokens_per_sec = 1000;
  acfg.bucket_burst = 100;
  acfg.global_inflight_budget = 2;
  host.install_admission(acfg);
  VpimVm vm(host, {.name = "adm"}, 1, pipe_config(/*depth=*/4));
  Frontend& fe = vm.device(0).frontend;
  ASSERT_TRUE(fe.open());

  auto buf = vm.vmm().memory().alloc(512);
  std::memset(buf.data(), 0x5A, buf.size());
  const auto m = one_entry(buf, driver::XferDirection::kToRank);

  const auto r1 = fe.try_submit_write(m);
  const auto r2 = fe.try_submit_write(m);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_NE(r1.ticket, r2.ticket);
  // Budget exhausted: typed would-block, no ticket, nothing staged extra.
  const auto r3 = fe.try_submit_write(m);
  EXPECT_EQ(r3.status, static_cast<std::int32_t>(PimStatus::kOverloaded));
  EXPECT_EQ(r3.ticket, 0u);
  EXPECT_EQ(vm.device(0).stats.would_blocks, 1u);

  // Reaping the completions releases the budget.
  const auto done = fe.poll_completions();
  ASSERT_EQ(done.size(), 2u);
  for (const auto& c : done) EXPECT_EQ(c.status, 0);
  EXPECT_TRUE(fe.try_submit_write(m).ok());
  EXPECT_EQ(host.admission->stats().completed, 2u);
  fe.close();
}

TEST(AdmissionEndToEnd, TokenBucketRejectIsPerTenant) {
  Host host(test::small_machine());
  AdmissionConfig acfg;
  acfg.tokens_per_sec = 1;  // effectively no refill inside the test
  acfg.bucket_burst = 2;
  host.install_admission(acfg);
  VpimVm vm(host, {.name = "adm-rate"}, 1, pipe_config(/*depth=*/8));
  Frontend& fe = vm.device(0).frontend;
  ASSERT_TRUE(fe.open());

  auto buf = vm.vmm().memory().alloc(256);
  const auto m = one_entry(buf, driver::XferDirection::kToRank);
  ASSERT_TRUE(fe.try_submit_write(m).ok());
  ASSERT_TRUE(fe.try_submit_write(m).ok());
  const auto shed = fe.try_submit_write(m);
  EXPECT_EQ(shed.status,
            static_cast<std::int32_t>(PimStatus::kAdmissionReject));
  EXPECT_EQ(vm.device(0).stats.admission_rejects, 1u);
  // The legacy blocking submit path bypasses admission entirely.
  EXPECT_GT(fe.submit_write(m), 0u);
  fe.poll_completions();
  fe.close();
}

TEST(AdmissionEndToEnd, CqCapacityBackpressuresWithoutGrowingMemory) {
  Host host(test::small_machine());  // no admission controller at all
  VpimConfig cfg = pipe_config(/*depth=*/8);
  cfg.cq_capacity = 2;
  VpimVm vm(host, {.name = "adm-cq"}, 1, cfg);
  Frontend& fe = vm.device(0).frontend;
  ASSERT_TRUE(fe.open());

  auto buf = vm.vmm().memory().alloc(256);
  const auto m = one_entry(buf, driver::XferDirection::kToRank);
  ASSERT_TRUE(fe.try_submit_write(m).ok());
  ASSERT_TRUE(fe.try_submit_write(m).ok());
  const auto r = fe.try_submit_write(m);
  EXPECT_EQ(r.status, static_cast<std::int32_t>(PimStatus::kOverloaded));
  EXPECT_EQ(vm.device(0).stats.would_blocks, 1u);
  // Draining the CQ reopens the window.
  EXPECT_EQ(fe.poll_completions().size(), 2u);
  EXPECT_TRUE(fe.try_submit_write(m).ok());
  fe.poll_completions();
  fe.close();
}

TEST(AdmissionEndToEnd, CancelWinsOnlyWhileStagedAndReapsTyped) {
  Host host(test::small_machine());
  VpimVm vm(host, {.name = "adm-cancel"}, 1, pipe_config(/*depth=*/4));
  Frontend& fe = vm.device(0).frontend;
  ASSERT_TRUE(fe.open());

  auto buf = vm.vmm().memory().alloc(512);
  std::memset(buf.data(), 0x77, buf.size());
  const auto m = one_entry(buf, driver::XferDirection::kToRank);

  const auto r = fe.try_submit_write(m);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(fe.cancel(r.ticket));
  EXPECT_FALSE(fe.cancel(r.ticket)) << "double cancel must lose";
  EXPECT_FALSE(fe.cancel(r.ticket + 100)) << "unknown ticket must lose";

  const auto done = fe.poll_completions();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].ticket, r.ticket);
  EXPECT_EQ(done[0].status, static_cast<std::int32_t>(PimStatus::kCancelled));
  EXPECT_EQ(vm.device(0).stats.cancelled, 1u);

  // The cancelled write never executed: the target range is still zero.
  auto out = vm.vmm().memory().alloc(512);
  fe.read_from_rank(one_entry(out, driver::XferDirection::kFromRank));
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], 0) << "cancelled write reached MRAM at byte " << i;
  }

  // Past the doorbell the race is lost: the ticket reaps its real status.
  const auto r2 = fe.try_submit_write(m);
  ASSERT_TRUE(r2.ok());
  fe.poll_completions();  // kicks + reaps; nothing staged anymore
  EXPECT_FALSE(fe.cancel(r2.ticket));
  fe.close();
}

TEST(AdmissionEndToEnd, ExpiredDeadlineIsShedByTheBackendTyped) {
  Host host(test::small_machine());
  VpimVm vm(host, {.name = "adm-dl"}, 1, pipe_config(/*depth=*/4));
  Frontend& fe = vm.device(0).frontend;
  ASSERT_TRUE(fe.open());

  auto buf = vm.vmm().memory().alloc(512);
  std::memset(buf.data(), 0x33, buf.size());
  const auto m = one_entry(buf, driver::XferDirection::kToRank);

  // A deadline of now+1ns is unmeetable: staging alone advances virtual
  // time past it, so the backend's drain-time check sheds the work.
  const auto doomed = fe.try_submit_write(m, host.clock.now() + 1);
  ASSERT_TRUE(doomed.ok());
  // A generous deadline sails through.
  const auto fine = fe.try_submit_write(m, host.clock.now() + 10 * kSec);
  ASSERT_TRUE(fine.ok());

  const auto done = fe.poll_completions();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].ticket, doomed.ticket);
  EXPECT_EQ(done[0].status, static_cast<std::int32_t>(PimStatus::kTimeout));
  EXPECT_EQ(done[1].ticket, fine.ticket);
  EXPECT_EQ(done[1].status, 0);
  EXPECT_EQ(vm.device(0).stats.deadline_shed, 1u);
  fe.close();
}

// Satellite regression: a posted flush that fails at depth > 1 must
// surface a typed per-slot record for every batched write it absorbed —
// the old behavior silently dropped them on the timed-out roundtrip.
TEST(AdmissionEndToEnd, FailedFlushSurfacesEveryLostBatchedWrite) {
  Host host(test::small_machine());
  // The flush is the first transferq request on the bound rank: lose its
  // completion and nothing else.
  host.install_fault_plan(
      {{FaultKind::kLostCompletion, /*rank=*/0, 0, /*at_op=*/1, 0, 0}});
  VpimConfig cfg = VpimConfig::full();
  cfg.prefetch_cache = false;
  cfg.request_batching = true;
  cfg.queue_depth = 4;
  VpimVm vm(host, {.name = "adm-lost"}, 1, cfg);
  Frontend& fe = vm.device(0).frontend;
  ASSERT_TRUE(fe.open());

  // Two small writes absorbed into the batch buffers of DPUs 0 and 1.
  auto b0 = vm.vmm().memory().alloc(64);
  auto b1 = vm.vmm().memory().alloc(96);
  driver::TransferMatrix w;
  w.direction = driver::XferDirection::kToRank;
  w.entries.push_back({0, 4096, b0.data(), b0.size()});
  fe.write_to_rank(w);
  w.entries.clear();
  w.entries.push_back({1, 8192, b1.data(), b1.size()});
  fe.write_to_rank(w);
  ASSERT_EQ(vm.device(0).stats.batched_writes, 2u);

  // An async submit posts the flush ahead of itself; the injected fault
  // swallows the flush's completion, so its roundtrip times out.
  auto big = vm.vmm().memory().alloc(8 * kKiB);
  const auto r = fe.try_submit_write(
      one_entry(big, driver::XferDirection::kToRank));
  ASSERT_TRUE(r.ok());
  const auto done = fe.poll_completions();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].status, 0) << "the non-flush write must still land";

  const auto lost = fe.lost_writes();
  ASSERT_EQ(lost.size(), 2u);
  EXPECT_EQ(vm.device(0).stats.lost_batched_writes, 2u);
  EXPECT_EQ(lost[0].dpu, 0u);
  EXPECT_EQ(lost[0].mram_offset, 4096u);
  EXPECT_EQ(lost[0].size, 64u);
  EXPECT_EQ(lost[1].dpu, 1u);
  EXPECT_EQ(lost[1].mram_offset, 8192u);
  EXPECT_EQ(lost[1].size, 96u);
  for (const auto& lw : lost) {
    EXPECT_EQ(lw.status, static_cast<std::int32_t>(PimStatus::kTimeout));
  }
  fe.clear_lost_writes();
  EXPECT_TRUE(fe.lost_writes().empty());

  // The flush failure still reaches the next blocking op as before.
  auto probe = vm.vmm().memory().alloc(64);
  driver::TransferMatrix rd;
  rd.direction = driver::XferDirection::kFromRank;
  rd.entries.push_back({0, 4096, probe.data(), probe.size()});
  EXPECT_THROW(fe.read_from_rank(rd), VpimStatusError);
  fe.close();
}

}  // namespace
}  // namespace vpim::core
