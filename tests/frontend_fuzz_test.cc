// Randomized coherence fuzzing of the vPIM data path.
//
// A shadow model mirrors what one DPU's MRAM must contain after an
// arbitrary interleaving of small/large writes, small/large reads, kernel
// launches, and rank migrations. Every vPIM configuration — including the
// unoptimized ones and the ones where the prefetch cache and batch buffer
// interact — must agree with the shadow byte-for-byte at every read.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "tests/testutil.h"
#include "upmem/kernel.h"
#include "vpim/guest_platform.h"
#include "vpim/host.h"
#include "vpim/vpim_vm.h"

namespace vpim::core {
namespace {

constexpr std::uint64_t kRegion = 256 * kKiB;  // fuzzed MRAM window
constexpr std::uint32_t kDpus = 4;             // fuzzed DPUs

// Kernel that mutates MRAM (so launches really invalidate caches): adds 1
// to every byte of the first `touch_bytes` of the region.
void register_fuzz_kernel() {
  auto& registry = upmem::KernelRegistry::instance();
  if (registry.contains("fuzz_bump")) return;
  upmem::DpuKernel k;
  k.name = "fuzz_bump";
  k.symbols = {{"touch_bytes", 4}};
  k.stages.push_back([](upmem::DpuCtx& ctx) {
    if (ctx.me() != 0) return;
    const std::uint32_t n = ctx.var<std::uint32_t>("touch_bytes");
    constexpr std::uint32_t kBlock = 2048;
    auto buf = ctx.mem_alloc(kBlock);
    for (std::uint32_t o = 0; o < n; o += kBlock) {
      const std::uint32_t b = std::min(kBlock, n - o);
      ctx.mram_read(o, buf.first(b));
      for (std::uint32_t i = 0; i < b; ++i) buf[i] += 1;
      ctx.exec(b);
      ctx.mram_write(buf.first(b), o);
    }
  });
  registry.add(std::move(k));
}

struct FuzzCase {
  std::string config_name;
  std::uint64_t seed;
};

class FrontendFuzz
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

VpimConfig config_by_name(const std::string& name) {
  if (name == "rust") return VpimConfig::rust();
  if (name == "C") return VpimConfig::c_only();
  if (name == "P") return VpimConfig::with_prefetch();
  if (name == "B") return VpimConfig::with_batching();
  if (name == "PB") return VpimConfig::with_prefetch_batching();
  if (name == "vhost") return VpimConfig::vhost();
  return VpimConfig::full();
}

TEST_P(FrontendFuzz, MatchesShadowModel) {
  register_fuzz_kernel();
  const auto [config_name, seed] = GetParam();

  ManagerConfig mgr;
  mgr.retry_wait_ns = 1 * kMs;
  mgr.max_attempts = 2;
  Host host(test::small_machine(), CostModel{}, mgr);
  VpimVm vm(host, {.name = "fuzz"}, 1, config_by_name(config_name));
  Frontend& fe = vm.device(0).frontend;
  ASSERT_TRUE(fe.open());
  fe.ci_load("fuzz_bump");
  std::uint32_t touch = 0;

  // Shadow: per-DPU byte image of the fuzzed window.
  std::vector<std::vector<std::uint8_t>> shadow(
      kDpus, std::vector<std::uint8_t>(kRegion, 0));

  Rng rng(1000 + static_cast<std::uint64_t>(seed));
  auto stage = vm.vmm().memory().alloc(kRegion);
  auto out = vm.vmm().memory().alloc(kRegion);
  // Packed per-DPU symbol values are referenced zero-copy, so they must
  // live in guest RAM.
  const std::uint32_t rank_dpus =
      host.machine.rank(vm.device(0).backend.rank_index()).nr_dpus();
  auto touches = vm.vmm().memory().alloc(std::uint64_t{rank_dpus} * 4);

  for (int step = 0; step < 300; ++step) {
    const auto dpu = static_cast<std::uint32_t>(rng.uniform(0, kDpus - 1));
    const auto action = rng.uniform(0, 9);
    if (action <= 3) {
      // Write a random range (mixes batchable and direct sizes).
      const auto size = static_cast<std::uint64_t>(
          action <= 2 ? rng.uniform(1, 2048)
                      : rng.uniform(1, kRegion / 2));
      const auto off = static_cast<std::uint64_t>(
          rng.uniform(0, static_cast<std::int64_t>(kRegion - size)));
      rng.fill_bytes(stage.data(), size);
      std::memcpy(shadow[dpu].data() + off, stage.data(), size);
      driver::TransferMatrix w;
      w.entries.push_back({dpu, off, stage.data(), size});
      fe.write_to_rank(w);
    } else if (action <= 7) {
      // Read a random range and compare against the shadow.
      const auto size = static_cast<std::uint64_t>(
          action <= 6 ? rng.uniform(1, 2048)
                      : rng.uniform(1, kRegion / 2));
      const auto off = static_cast<std::uint64_t>(
          rng.uniform(0, static_cast<std::int64_t>(kRegion - size)));
      driver::TransferMatrix r;
      r.direction = driver::XferDirection::kFromRank;
      r.entries.push_back({dpu, off, out.data(), size});
      fe.read_from_rank(r);
      ASSERT_TRUE(std::memcmp(out.data(), shadow[dpu].data() + off,
                              size) == 0)
          << "config " << config_name << " seed " << seed << " step "
          << step << " dpu " << dpu << " off " << off << " size " << size;
    } else if (action == 8) {
      // Launch the mutating kernel on every fuzzed DPU.
      touch = static_cast<std::uint32_t>(rng.uniform(1, 64 * 1024));
      for (std::uint32_t d = 0; d < rank_dpus; ++d) {
        std::memcpy(touches.data() + d * 4, &touch, 4);
      }
      fe.ci_push_symbols(driver::XferDirection::kToRank, "touch_bytes", 0,
                         touches, 4);
      fe.ci_launch((1ULL << kDpus) - 1, 4);
      while (fe.ci_running_mask() != 0) {
        host.clock.advance(100 * kUs);
      }
      for (std::uint32_t d = 0; d < kDpus; ++d) {
        for (std::uint32_t i = 0; i < touch; ++i) shadow[d][i] += 1;
      }
    } else {
      // Occasionally migrate to a fresh rank mid-stream.
      if (fe.migrate()) {
        host.manager.observe();
        host.manager.observe();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, FrontendFuzz,
    ::testing::Combine(::testing::Values("rust", "C", "P", "B", "PB",
                                         "full", "vhost"),
                       ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace vpim::core
