// Randomized coherence fuzzing of the vPIM data path.
//
// A shadow model mirrors what one DPU's MRAM must contain after an
// arbitrary interleaving of small/large writes, small/large reads, kernel
// launches, and rank migrations. Every vPIM configuration — including the
// unoptimized ones and the ones where the prefetch cache and batch buffer
// interact — must agree with the shadow byte-for-byte at every read.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "tests/testutil.h"
#include "upmem/kernel.h"
#include "vpim/guest_platform.h"
#include "vpim/host.h"
#include "vpim/vpim_vm.h"

namespace vpim::core {
namespace {

constexpr std::uint64_t kRegion = 256 * kKiB;  // fuzzed MRAM window
constexpr std::uint32_t kDpus = 4;             // fuzzed DPUs

// Kernel that mutates MRAM (so launches really invalidate caches): adds 1
// to every byte of the first `touch_bytes` of the region.
void register_fuzz_kernel() {
  auto& registry = upmem::KernelRegistry::instance();
  if (registry.contains("fuzz_bump")) return;
  upmem::DpuKernel k;
  k.name = "fuzz_bump";
  k.symbols = {{"touch_bytes", 4}};
  k.stages.push_back([](upmem::DpuCtx& ctx) {
    if (ctx.me() != 0) return;
    const std::uint32_t n = ctx.var<std::uint32_t>("touch_bytes");
    constexpr std::uint32_t kBlock = 2048;
    auto buf = ctx.mem_alloc(kBlock);
    for (std::uint32_t o = 0; o < n; o += kBlock) {
      const std::uint32_t b = std::min(kBlock, n - o);
      ctx.mram_read(o, buf.first(b));
      for (std::uint32_t i = 0; i < b; ++i) buf[i] += 1;
      ctx.exec(b);
      ctx.mram_write(buf.first(b), o);
    }
  });
  registry.add(std::move(k));
}

struct FuzzCase {
  std::string config_name;
  std::uint64_t seed;
};

class FrontendFuzz
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

VpimConfig config_by_name(const std::string& name) {
  if (name == "rust") return VpimConfig::rust();
  if (name == "C") return VpimConfig::c_only();
  if (name == "P") return VpimConfig::with_prefetch();
  if (name == "B") return VpimConfig::with_batching();
  if (name == "PB") return VpimConfig::with_prefetch_batching();
  if (name == "vhost") return VpimConfig::vhost();
  return VpimConfig::full();
}

TEST_P(FrontendFuzz, MatchesShadowModel) {
  register_fuzz_kernel();
  const auto [config_name, seed] = GetParam();

  ManagerConfig mgr;
  mgr.retry_wait_ns = 1 * kMs;
  mgr.max_attempts = 2;
  Host host(test::small_machine(), CostModel{}, mgr);
  VpimVm vm(host, {.name = "fuzz"}, 1, config_by_name(config_name));
  Frontend& fe = vm.device(0).frontend;
  ASSERT_TRUE(fe.open());
  fe.ci_load("fuzz_bump");
  std::uint32_t touch = 0;

  // Shadow: per-DPU byte image of the fuzzed window.
  std::vector<std::vector<std::uint8_t>> shadow(
      kDpus, std::vector<std::uint8_t>(kRegion, 0));

  Rng rng(1000 + static_cast<std::uint64_t>(seed));
  auto stage = vm.vmm().memory().alloc(kRegion);
  auto out = vm.vmm().memory().alloc(kRegion);
  // Packed per-DPU symbol values are referenced zero-copy, so they must
  // live in guest RAM.
  const std::uint32_t rank_dpus =
      host.machine.rank(vm.device(0).backend.rank_index()).nr_dpus();
  auto touches = vm.vmm().memory().alloc(std::uint64_t{rank_dpus} * 4);

  for (int step = 0; step < 300; ++step) {
    const auto dpu = static_cast<std::uint32_t>(rng.uniform(0, kDpus - 1));
    const auto action = rng.uniform(0, 9);
    if (action <= 3) {
      // Write a random range (mixes batchable and direct sizes).
      const auto size = static_cast<std::uint64_t>(
          action <= 2 ? rng.uniform(1, 2048)
                      : rng.uniform(1, kRegion / 2));
      const auto off = static_cast<std::uint64_t>(
          rng.uniform(0, static_cast<std::int64_t>(kRegion - size)));
      rng.fill_bytes(stage.data(), size);
      std::memcpy(shadow[dpu].data() + off, stage.data(), size);
      driver::TransferMatrix w;
      w.entries.push_back({dpu, off, stage.data(), size});
      fe.write_to_rank(w);
    } else if (action <= 7) {
      // Read a random range and compare against the shadow.
      const auto size = static_cast<std::uint64_t>(
          action <= 6 ? rng.uniform(1, 2048)
                      : rng.uniform(1, kRegion / 2));
      const auto off = static_cast<std::uint64_t>(
          rng.uniform(0, static_cast<std::int64_t>(kRegion - size)));
      driver::TransferMatrix r;
      r.direction = driver::XferDirection::kFromRank;
      r.entries.push_back({dpu, off, out.data(), size});
      fe.read_from_rank(r);
      ASSERT_TRUE(std::memcmp(out.data(), shadow[dpu].data() + off,
                              size) == 0)
          << "config " << config_name << " seed " << seed << " step "
          << step << " dpu " << dpu << " off " << off << " size " << size;
    } else if (action == 8) {
      // Launch the mutating kernel on every fuzzed DPU.
      touch = static_cast<std::uint32_t>(rng.uniform(1, 64 * 1024));
      for (std::uint32_t d = 0; d < rank_dpus; ++d) {
        std::memcpy(touches.data() + d * 4, &touch, 4);
      }
      fe.ci_push_symbols(driver::XferDirection::kToRank, "touch_bytes", 0,
                         touches, 4);
      fe.ci_launch((1ULL << kDpus) - 1, 4);
      while (fe.ci_running_mask() != 0) {
        host.clock.advance(100 * kUs);
      }
      for (std::uint32_t d = 0; d < kDpus; ++d) {
        for (std::uint32_t i = 0; i < touch; ++i) shadow[d][i] += 1;
      }
    } else {
      // Occasionally migrate to a fresh rank mid-stream.
      if (fe.migrate()) {
        host.manager.observe();
        host.manager.observe();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, FrontendFuzz,
    ::testing::Combine(::testing::Values("rust", "C", "P", "B", "PB",
                                         "full", "vhost"),
                       ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// ----------------------------------------------------- hostile requests
//
// The backend is the device model inside the VMM and serves multiple
// tenants (§3, §7): no guest-crafted descriptor chain may abort the host
// process or wedge the queue. Every chain — however malformed — must
// complete via push_used with a typed status so the guest reclaims its
// descriptors instead of spinning on poll_used forever.

constexpr std::int32_t kBadRequest =
    static_cast<std::int32_t>(virtio::PimStatus::kBadRequest);
constexpr std::int32_t kUnsupported =
    static_cast<std::int32_t>(virtio::PimStatus::kUnsupported);

ManagerConfig fast_manager() {
  ManagerConfig cfg;
  cfg.retry_wait_ns = 1 * kMs;
  cfg.max_attempts = 2;
  return cfg;
}

struct HostileRig {
  HostileRig()
      : host(test::small_machine(), CostModel{}, fast_manager()),
        vm(host, {.name = "hostile"}, 1) {
    EXPECT_TRUE(vm.device(0).frontend.open());
    scratch = vm.vmm().memory().alloc(512 * kKiB);
    resp_buf = vm.vmm().memory().alloc(4 * kKiB);
  }

  guest::GuestMemory& mem() { return vm.vmm().memory(); }
  VupmemDevice& dev() { return vm.device(0); }

  // Stages `pod` at byte offset `off` of the scratch area and returns a
  // descriptor covering it.
  template <typename T>
  virtio::DescBuffer stage(std::uint64_t off, const T& pod,
                           std::uint32_t len = sizeof(T)) {
    std::memcpy(scratch.data() + off, &pod, sizeof(T));
    return {mem().gpa_of(scratch.data() + off), len, false};
  }

  virtio::DescBuffer response_desc() {
    return {mem().gpa_of(resp_buf.data()), sizeof(WireResponse), true};
  }

  // Submits `chain` on the transferq, drives the backend, and asserts the
  // request completed and its descriptors were reclaimed. Returns the
  // response status (or kOk if the chain had no readable response).
  std::int32_t run(std::span<const virtio::DescBuffer> chain) {
    std::memset(resp_buf.data(), 0, sizeof(WireResponse));
    const std::uint16_t free_before = dev().transferq.free_descriptors();
    dev().transferq.submit(chain);
    EXPECT_NO_THROW(dev().backend.handle_transferq());
    const auto used = dev().transferq.poll_used();
    EXPECT_TRUE(used.has_value()) << "request never completed";
    EXPECT_EQ(dev().transferq.free_descriptors(), free_before);
    WireResponse resp;
    std::memcpy(&resp, resp_buf.data(), sizeof(resp));
    return resp.status;
  }

  Host host;
  VpimVm vm;
  std::span<std::uint8_t> scratch;
  std::span<std::uint8_t> resp_buf;
};

// Regression: an unrecognized request type used to fall through the
// dispatch switch without push_used — the guest's poll_used would spin
// forever and the descriptors leaked.
TEST(HostileRequests, UnknownTypeCompletesWithBadRequest) {
  HostileRig rig;
  WireRequest req;
  req.type = 0xDEADBEEF;
  const virtio::DescBuffer chain[] = {rig.stage(0, req),
                                      rig.response_desc()};
  EXPECT_EQ(rig.run(chain), kBadRequest);
}

// A chain with no device-writable buffer still completes (written = 0).
TEST(HostileRequests, UnknownTypeWithoutResponseBufferStillCompletes) {
  HostileRig rig;
  WireRequest req;
  req.type = 77;
  const virtio::DescBuffer chain[] = {rig.stage(0, req)};
  rig.run(chain);
  EXPECT_EQ(rig.dev().stats.request_errors, 1u);
}

// kCopyToSymbolAll used to loop to req.nr_entries unchecked and validate
// payload.len == nr_entries * bytes_per_dpu in 32 bits, so a product
// wrapping past 2^32 passed the check with a tiny payload.
TEST(HostileRequests, PackedSymbolBoundsAreEnforced) {
  HostileRig rig;
  const std::uint32_t nr_dpus = rig.dev().frontend.nr_dpus();

  WireRequest req;
  req.type = static_cast<std::uint32_t>(virtio::PimRequestType::kCiWrite);
  req.ci_op = static_cast<std::uint32_t>(CiOp::kCopyToSymbolAll);
  std::memcpy(req.name, "sym", 3);

  // More entries than the rank has DPUs.
  req.nr_entries = nr_dpus + 1;
  req.arg0 = 4;
  const virtio::DescBuffer over[] = {
      rig.stage(0, req),
      {rig.mem().gpa_of(rig.scratch.data() + 4096),
       (nr_dpus + 1) * 4, false},
      rig.response_desc()};
  EXPECT_EQ(rig.run(over), kBadRequest);

  // 32-bit overflow: 2^24 entries x 2^8 bytes = 2^32 -> wraps to 0, which
  // would match a 0-length payload if the check were done in 32 bits.
  req.nr_entries = 1u << 24;
  req.arg0 = 1u << 8;
  const virtio::DescBuffer wrap[] = {
      rig.stage(0, req),
      {rig.mem().gpa_of(rig.scratch.data() + 4096), 0, false},
      rig.response_desc()};
  EXPECT_EQ(rig.run(wrap), kBadRequest);
}

TEST(HostileRequests, ControlOpsOnTransferqUnsupported) {
  HostileRig rig;
  WireRequest req;
  req.type = static_cast<std::uint32_t>(virtio::PimRequestType::kCiWrite);
  req.ci_op = static_cast<std::uint32_t>(CiOp::kBindRank);
  const virtio::DescBuffer chain[] = {rig.stage(0, req),
                                      rig.response_desc()};
  EXPECT_EQ(rig.run(chain), kUnsupported);

  req.ci_op = 424242;  // unknown CI opcode
  const virtio::DescBuffer unknown[] = {rig.stage(0, req),
                                        rig.response_desc()};
  EXPECT_EQ(rig.run(unknown), kUnsupported);
}

// Structured + random corpus of malformed rank-operation chains: the host
// must survive all of them with per-request error completions, and the
// device must remain fully functional afterwards.
TEST(HostileChains, HostSurvivesArbitraryMalformedRequests) {
  HostileRig rig;
  Rng rng(0xF00D);
  const std::uint64_t scratch_gpa = rig.mem().gpa_of(rig.scratch.data());
  std::uint64_t structured = 0;

  for (int iter = 0; iter < 400; ++iter) {
    WireRequest req;
    req.type =
        static_cast<std::uint32_t>(virtio::PimRequestType::kWriteToRank);
    req.direction =
        static_cast<std::uint32_t>(driver::XferDirection::kToRank);
    req.nr_entries = 1;

    WireMatrixMeta meta{1, 8192};
    WireEntryMeta em;
    em.dpu = 0;
    em.mram_offset = 0;
    em.size = 8192;
    em.first_page_offset = 0;
    em.nr_pages = 2;
    std::uint64_t pages[2] = {scratch_gpa + 16 * 4096,
                              scratch_gpa + 17 * 4096};
    std::uint32_t pages_len = 16;

    const auto mode = rng.uniform(0, 9);
    bool random_chain = false;
    switch (mode) {
      case 0:  // truncated: request + response only
        break;
      case 1:  // page list shorter than the entry metadata claims
        pages_len = 8;
        break;
      case 2:  // absurd page count
        em.nr_pages = 1ULL << 40;
        break;
      case 3:  // absurd entry size (also overflows naive page formulas)
        em.size = ~0ULL - static_cast<std::uint64_t>(rng.uniform(0, 4096));
        break;
      case 4:  // matrix metadata disagrees with the chain length
        meta.nr_entries = 1 + static_cast<std::uint64_t>(
                                  rng.uniform(1, 1000));
        break;
      case 5:  // page GPA outside guest RAM (aligned and not)
        pages[0] = (1ULL << 40) +
                   (rng.uniform(0, 1) ? 0 : 123);
        break;
      case 6:  // DPU beyond the bound rank
        em.dpu = 8 + static_cast<std::uint64_t>(rng.uniform(0, 55));
        break;
      case 7:  // entry overruns the MRAM bank
        em.mram_offset = upmem::kMramSize - 4096;
        break;
      case 8:  // bad first-page offset (would underflow kPage - off)
        em.first_page_offset =
            4096 + static_cast<std::uint64_t>(rng.uniform(0, 1 << 20));
        break;
      default:  // fully random request block and descriptors
        random_chain = true;
        break;
    }

    std::vector<virtio::DescBuffer> chain;
    if (random_chain) {
      rng.fill_bytes(rig.scratch.data(), 256);
      const int n = static_cast<int>(rng.uniform(1, 5));
      for (int d = 0; d < n; ++d) {
        const bool in_ram = rng.uniform(0, 3) > 0;
        chain.push_back(
            {in_ram ? scratch_gpa +
                          static_cast<std::uint64_t>(
                              rng.uniform(0, 255 * 1024))
                    : rng.next_u64(),
             static_cast<std::uint32_t>(rng.uniform(0, 64 * 1024)),
             rng.uniform(0, 1) == 1});
      }
    } else {
      chain.push_back(rig.stage(0, req));
      if (mode != 0) {
        chain.push_back(rig.stage(512, meta));
        chain.push_back(rig.stage(1024, em));
        std::memcpy(rig.scratch.data() + 2048, pages, sizeof(pages));
        chain.push_back({scratch_gpa + 2048, pages_len, false});
      }
      chain.push_back(rig.response_desc());
    }
    // Judge rejection by the device's own error counter (random chains
    // may lack a response buffer to read a status from). Every structured
    // corruption must be rejected; a fully random chain merely has to
    // complete — all-zero bytes happen to decode as a valid kConfig read.
    const std::uint64_t errs_before = rig.dev().stats.request_errors;
    rig.run(chain);
    if (!random_chain) {
      ++structured;
      EXPECT_EQ(rig.dev().stats.request_errors, errs_before + 1)
          << "hostile chain not rejected at iter " << iter << " mode "
          << mode;
    }
  }
  EXPECT_GE(rig.dev().stats.request_errors, structured);

  // Control queue: malformed blocks and unknown opcodes complete too.
  for (int iter = 0; iter < 50; ++iter) {
    WireRequest req;
    req.ci_op = static_cast<std::uint32_t>(rng.uniform(12, 1 << 30));
    const virtio::DescBuffer chain[] = {rig.stage(0, req),
                                        rig.response_desc()};
    const std::uint16_t free_before = rig.dev().controlq.free_descriptors();
    rig.dev().controlq.submit(chain);
    EXPECT_NO_THROW(rig.dev().backend.handle_controlq());
    ASSERT_TRUE(rig.dev().controlq.poll_used().has_value());
    EXPECT_EQ(rig.dev().controlq.free_descriptors(), free_before);
    WireResponse resp;
    std::memcpy(&resp, rig.resp_buf.data(), sizeof(resp));
    EXPECT_EQ(resp.status, kUnsupported);
  }

  // The device still serves well-formed traffic after the barrage.
  Frontend& fe = rig.dev().frontend;
  auto data = rig.mem().alloc(64 * kKiB);
  auto out = rig.mem().alloc(64 * kKiB);
  rng.fill_bytes(data.data(), data.size());
  driver::TransferMatrix w;
  w.entries.push_back({0, 4096, data.data(), data.size()});
  fe.write_to_rank(w);
  driver::TransferMatrix r;
  r.direction = driver::XferDirection::kFromRank;
  r.entries.push_back({0, 4096, out.data(), out.size()});
  fe.read_from_rank(r);
  EXPECT_EQ(std::memcmp(out.data(), data.data(), data.size()), 0);
}

}  // namespace
}  // namespace vpim::core
