// Multi-tenant churn soak: VMs randomly bind, run real workloads, write
// and verify private patterns, suspend/resume, migrate, and release while
// sharing one small machine — with the manager recycling ranks in
// between. Invariants checked continuously:
//   - no tenant ever reads another tenant's (or a stale) pattern;
//   - rank allocations never overlap;
//   - the machine always returns to all-NAAV after everything releases.
#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "tests/test_kernels.h"
#include "tests/testutil.h"
#include "vpim/guest_platform.h"
#include "vpim/host.h"
#include "vpim/vpim_vm.h"

namespace vpim::core {
namespace {

struct Tenant {
  std::unique_ptr<VpimVm> vm;
  std::uint8_t tag = 0;       // pattern identity
  bool open = false;
  bool suspended = false;
  std::span<std::uint8_t> buf;
};

class Soak : public ::testing::TestWithParam<int> {};

TEST_P(Soak, RandomChurnKeepsTenantsIsolated) {
  ManagerConfig mgr;
  mgr.retry_wait_ns = 1 * kMs;
  mgr.max_attempts = 2;
  Host host({.nr_ranks = 3, .functional_dpus_per_rank = 8}, CostModel{},
            mgr);
  VpimConfig config = VpimConfig::full();
  config.oversubscribe = true;  // churn never hard-fails on capacity

  constexpr int kTenants = 5;
  std::vector<Tenant> tenants(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    tenants[t].vm = std::make_unique<VpimVm>(
        host, vmm::VmmParams{.name = "soak" + std::to_string(t)}, 1,
        config);
    tenants[t].tag = static_cast<std::uint8_t>(0x10 + t);
    tenants[t].buf = tenants[t].vm->vmm().memory().alloc(64 * kKiB);
  }

  Rng rng(9000 + static_cast<std::uint64_t>(GetParam()));
  auto frontend = [&](int t) -> Frontend& {
    return tenants[t].vm->device(0).frontend;
  };
  auto write_pattern = [&](int t) {
    std::memset(tenants[t].buf.data(), tenants[t].tag,
                tenants[t].buf.size());
    driver::TransferMatrix w;
    w.entries.push_back({2, 4096, tenants[t].buf.data(),
                         tenants[t].buf.size()});
    frontend(t).write_to_rank(w);
  };
  auto verify_pattern = [&](int t) {
    auto out = tenants[t].vm->vmm().memory().alloc(64 * kKiB);
    driver::TransferMatrix r;
    r.direction = driver::XferDirection::kFromRank;
    r.entries.push_back({2, 4096, out.data(), out.size()});
    frontend(t).read_from_rank(r);
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], tenants[t].tag)
          << "tenant " << t << " saw foreign data at " << i;
    }
  };

  for (int step = 0; step < 120; ++step) {
    const int t = static_cast<int>(rng.uniform(0, kTenants - 1));
    Tenant& tenant = tenants[t];
    const int action = static_cast<int>(rng.uniform(0, 5));
    if (!tenant.open && !tenant.suspended) {
      if (frontend(t).open()) {
        tenant.open = true;
        write_pattern(t);
      }
      continue;
    }
    if (tenant.suspended) {
      if (frontend(t).resume()) {
        tenant.suspended = false;
        tenant.open = true;
        verify_pattern(t);
      }
      continue;
    }
    switch (action) {
      case 0:  // verify
        verify_pattern(t);
        break;
      case 1:  // rewrite
        write_pattern(t);
        break;
      case 2:  // migrate
        if (frontend(t).migrate()) verify_pattern(t);
        break;
      case 3:  // suspend
        frontend(t).suspend();
        tenant.open = false;
        tenant.suspended = true;
        break;
      case 4:  // release entirely (pattern intentionally discarded)
        frontend(t).close();
        tenant.open = false;
        break;
      default:  // occasionally let the observer catch up
        host.manager.observe();
        break;
    }
    if (step % 10 == 0) host.manager.observe();
  }

  // Wind down: everyone releases; two observer passes recycle every rank.
  for (int t = 0; t < kTenants; ++t) {
    if (tenants[t].suspended) {
      if (!frontend(t).resume()) continue;  // stays parked host-side
      tenants[t].suspended = false;
      tenants[t].open = true;
    }
    if (tenants[t].open) frontend(t).close();
  }
  host.manager.observe();
  host.manager.observe();
  for (std::uint32_t r = 0; r < host.machine.nr_ranks(); ++r) {
    EXPECT_EQ(host.manager.state(r), RankState::kNaav) << "rank " << r;
    EXPECT_FALSE(host.drv.is_mapped(r)) << "rank " << r;
  }
  // Isolation guarantee (R2): recycled ranks hold no residual data.
  for (std::uint32_t r = 0; r < host.machine.nr_ranks(); ++r) {
    std::vector<std::uint8_t> probe(64);
    host.machine.rank(r).mram(2).read(4096, probe);
    for (auto b : probe) EXPECT_EQ(b, 0) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Soak, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace vpim::core
