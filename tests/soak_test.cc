// Multi-tenant churn soak: VMs randomly bind, run real workloads, write
// and verify private patterns, suspend/resume, migrate, and release while
// sharing one small machine — with the manager recycling ranks in
// between. Invariants checked continuously:
//   - no tenant ever reads another tenant's (or a stale) pattern;
//   - rank allocations never overlap;
//   - the machine always returns to all-NAAV after everything releases.
// The fault-enabled variant (ISSUE 3) additionally injects a seeded
// FaultPlan — transient DPU faults, ECC events, one rank death, one native
// seizure, one lost completion — and requires the same isolation
// invariants to hold, with every rank either recovered to NAAV or parked
// in FAIL (permanently dead hardware) at wind-down.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>

#include "common/fault.h"
#include "common/rng.h"
#include "tests/test_kernels.h"
#include "tests/testutil.h"
#include "vpim/guest_platform.h"
#include "vpim/host.h"
#include "vpim/vpim_vm.h"

namespace vpim::core {
namespace {

struct Tenant {
  std::unique_ptr<VpimVm> vm;
  std::uint8_t tag = 0;       // pattern identity
  bool open = false;
  bool suspended = false;
  bool pattern_valid = false;  // expectation dropped after a device fault
  std::span<std::uint8_t> buf;
};

// (seed, fault injection enabled)
class Soak : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(Soak, RandomChurnKeepsTenantsIsolated) {
  const auto [seed, faults] = GetParam();
  ManagerConfig mgr;
  mgr.retry_wait_ns = 1 * kMs;
  mgr.max_attempts = 2;
  Host host({.nr_ranks = 3, .functional_dpus_per_rank = 8}, CostModel{},
            mgr);
  if (faults) {
    FaultPlanConfig fcfg;
    fcfg.seed = static_cast<std::uint64_t>(seed) * 97 + 13;
    fcfg.transient_dpu_faults = 3;
    fcfg.mram_ecc_faults = 3;
    fcfg.rank_deaths = 1;
    fcfg.rank_seizures = 1;
    fcfg.lost_completions = 1;
    fcfg.max_op = 48;
    fcfg.seizure_from_ns = 100 * kMs;
    fcfg.seizure_until_ns = 2 * kSec;
    host.install_fault_plan(
        FaultPlan::generate(fcfg, host.machine.nr_ranks()));
  }
  VpimConfig config = VpimConfig::full();
  config.oversubscribe = true;  // churn never hard-fails on capacity

  constexpr int kTenants = 5;
  std::vector<Tenant> tenants(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    tenants[t].vm = std::make_unique<VpimVm>(
        host, vmm::VmmParams{.name = "soak" + std::to_string(t)}, 1,
        config);
    tenants[t].tag = static_cast<std::uint8_t>(0x10 + t);
    tenants[t].buf = tenants[t].vm->vmm().memory().alloc(64 * kKiB);
  }

  Rng rng(9000 + static_cast<std::uint64_t>(seed));
  auto frontend = [&](int t) -> Frontend& {
    return tenants[t].vm->device(0).frontend;
  };
  // Injected device faults (DEVICE_FAULT / UNBOUND / TIMEOUT) end the
  // tenant's session: it closes, forgets its pattern, and rebinds later.
  // Any other status is still a hard test failure.
  auto tolerate = [&](int t, auto&& op) -> bool {
    try {
      op();
      return true;
    } catch (const VpimStatusError& e) {
      const auto status = static_cast<virtio::PimStatus>(e.status());
      EXPECT_TRUE(faults) << "unexpected device error without fault "
                             "injection: " << e.what();
      EXPECT_TRUE(status == virtio::PimStatus::kDeviceFault ||
                  status == virtio::PimStatus::kUnbound ||
                  status == virtio::PimStatus::kTimeout)
          << e.what();
      frontend(t).close();  // never throws; drops wedged state
      tenants[t].open = false;
      tenants[t].suspended = false;
      tenants[t].pattern_valid = false;
      return false;
    }
  };
  auto write_pattern = [&](int t) {
    std::memset(tenants[t].buf.data(), tenants[t].tag,
                tenants[t].buf.size());
    driver::TransferMatrix w;
    w.entries.push_back({2, 4096, tenants[t].buf.data(),
                         tenants[t].buf.size()});
    if (tolerate(t, [&] { frontend(t).write_to_rank(w); })) {
      tenants[t].pattern_valid = true;
    }
  };
  auto verify_pattern = [&](int t) {
    if (!tenants[t].pattern_valid) return;
    auto out = tenants[t].vm->vmm().memory().alloc(64 * kKiB);
    driver::TransferMatrix r;
    r.direction = driver::XferDirection::kFromRank;
    r.entries.push_back({2, 4096, out.data(), out.size()});
    if (!tolerate(t, [&] { frontend(t).read_from_rank(r); })) return;
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], tenants[t].tag)
          << "tenant " << t << " saw foreign data at " << i;
    }
  };

  for (int step = 0; step < 120; ++step) {
    const int t = static_cast<int>(rng.uniform(0, kTenants - 1));
    Tenant& tenant = tenants[t];
    const int action = static_cast<int>(rng.uniform(0, 5));
    if (!tenant.open && !tenant.suspended) {
      bool opened = false;
      if (tolerate(t, [&] { opened = frontend(t).open(); }) && opened) {
        tenant.open = true;
        write_pattern(t);
      }
      continue;
    }
    if (tenant.suspended) {
      bool resumed = false;
      if (tolerate(t, [&] { resumed = frontend(t).resume(); }) && resumed) {
        tenant.suspended = false;
        tenant.open = true;
        verify_pattern(t);
      }
      continue;
    }
    switch (action) {
      case 0:  // verify
        verify_pattern(t);
        break;
      case 1:  // rewrite
        write_pattern(t);
        break;
      case 2:  // migrate
        {
          bool migrated = false;
          if (tolerate(t, [&] { migrated = frontend(t).migrate(); }) &&
              migrated) {
            verify_pattern(t);
          }
        }
        break;
      case 3:  // suspend
        if (tolerate(t, [&] { frontend(t).suspend(); })) {
          tenant.open = false;
          tenant.suspended = true;
        }
        break;
      case 4:  // release entirely (pattern intentionally discarded)
        frontend(t).close();
        tenant.open = false;
        tenant.pattern_valid = false;
        break;
      default:  // occasionally let the observer catch up
        host.manager.observe();
        break;
    }
    if (step % 10 == 0) host.manager.observe();
  }

  // Wind down: everyone releases; observer passes recycle every rank.
  for (int t = 0; t < kTenants; ++t) {
    if (tenants[t].suspended) {
      bool resumed = false;
      if (!tolerate(t, [&] { resumed = frontend(t).resume(); }) ||
          !resumed) {
        continue;  // stays parked host-side (or died with the device)
      }
      tenants[t].suspended = false;
      tenants[t].open = true;
    }
    if (tenants[t].open) frontend(t).close();
  }
  // Let injected seizures expire and quarantine probes run their backoff
  // (the cap is 1600 ms): advance far past both, observing in between.
  for (int pass = 0; pass < 6; ++pass) {
    host.clock.advance(2 * kSec);
    host.manager.observe();
  }
  for (std::uint32_t r = 0; r < host.machine.nr_ranks(); ++r) {
    if (host.machine.rank(r).failed()) {
      // Permanently dead hardware can only converge to quarantine.
      EXPECT_EQ(host.manager.state(r), RankState::kFail) << "rank " << r;
      continue;
    }
    EXPECT_EQ(host.manager.state(r), RankState::kNaav) << "rank " << r;
    EXPECT_FALSE(host.drv.is_mapped(r)) << "rank " << r;
  }
  // Isolation guarantee (R2): recycled ranks hold no residual data. Dead
  // ranks never re-enter circulation, so their content is irrelevant.
  for (std::uint32_t r = 0; r < host.machine.nr_ranks(); ++r) {
    if (host.machine.rank(r).failed()) continue;
    std::vector<std::uint8_t> probe(64);
    host.machine.rank(r).mram(2).read(4096, probe);
    for (auto b : probe) EXPECT_EQ(b, 0) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, Soak,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(false)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param));
    });

INSTANTIATE_TEST_SUITE_P(
    FaultSeeds, Soak,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(true)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "faults";
    });

}  // namespace
}  // namespace vpim::core
