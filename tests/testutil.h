// Shared fixtures: a simulated UPMEM machine with driver and native
// platform, mirroring the paper's testbed geometry by default.
#pragma once

#include <memory>

#include "common/cost_model.h"
#include "common/sim_clock.h"
#include "driver/driver.h"
#include "sdk/native.h"
#include "upmem/machine.h"

namespace vpim::test {

struct TestRig {
  explicit TestRig(upmem::MachineConfig config = {})
      : machine(config, clock, cost), drv(machine), native(drv, "test-app") {}

  SimClock clock;
  CostModel cost;
  upmem::PimMachine machine;
  driver::UpmemDriver drv;
  sdk::NativePlatform native;
};

// Small machine for quick unit tests: 2 ranks x 8 DPUs.
inline upmem::MachineConfig small_machine() {
  return {.nr_ranks = 2, .functional_dpus_per_rank = 8};
}

}  // namespace vpim::test
