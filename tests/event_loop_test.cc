#include <gtest/gtest.h>

#include "common/cost_model.h"
#include "common/sim_clock.h"
#include "vmm/event_loop.h"

namespace vpim::vmm {
namespace {

struct Rig {
  SimClock clock;
  CostModel cost;
};

TEST(SimClockFloor, TracksOutermostParallelSection) {
  SimClock clock;
  clock.advance(100);
  EXPECT_EQ(clock.floor(), 100u);  // not in a parallel section: now()

  std::vector<std::function<void()>> outer = {[&] {
    clock.advance(50);
    EXPECT_EQ(clock.floor(), 100u);  // outer section start
    std::vector<std::function<void()>> inner = {[&] {
      clock.advance(5);
      EXPECT_EQ(clock.floor(), 100u);  // still the outermost start
    }};
    clock.run_parallel(inner);
  }};
  clock.run_parallel(outer);
  EXPECT_EQ(clock.floor(), clock.now());
}

TEST(EventLoop, SequentialModeIsFifo) {
  Rig rig;
  EventLoop loop(rig.clock, rig.cost, /*parallel_handling=*/false);
  // Three requests arriving at t=0 with 10us handling each: strictly
  // serialized, completions at 10/20/30us.
  std::vector<SimNs> completions;
  std::vector<std::function<void()>> branches(3, [&] {
    loop.dispatch([&] { rig.clock.advance(10 * kUs); });
    completions.push_back(rig.clock.now());
  });
  rig.clock.run_parallel(branches);
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], 10 * kUs);
  EXPECT_EQ(completions[1], 20 * kUs);
  EXPECT_EQ(completions[2], 30 * kUs);
}

TEST(EventLoop, ParallelModeOnlySerializesDispatchSlots) {
  Rig rig;
  EventLoop loop(rig.clock, rig.cost, /*parallel_handling=*/true);
  std::vector<SimNs> completions;
  std::vector<std::function<void()>> branches(3, [&] {
    loop.dispatch([&] { rig.clock.advance(10 * kUs); });
    completions.push_back(rig.clock.now());
  });
  rig.clock.run_parallel(branches);
  const SimNs slot = rig.cost.thread_dispatch_ns;
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], slot + 10 * kUs);
  EXPECT_EQ(completions[1], 2 * slot + 10 * kUs);
  EXPECT_EQ(completions[2], 3 * slot + 10 * kUs);
}

TEST(EventLoop, ParallelModeGapFitsBetweenSlots) {
  Rig rig;
  EventLoop loop(rig.clock, rig.cost, /*parallel_handling=*/true);
  const SimNs slot = rig.cost.thread_dispatch_ns;

  // Branch A dispatches at t=0 and t=4*slot; branch B at t=0 must fit its
  // slot in the gap (right after A's first slot), not after everything.
  std::vector<SimNs> b_completion;
  std::vector<std::function<void()>> branches = {
      [&] {
        loop.dispatch([] {});
        rig.clock.set(4 * slot);
        loop.dispatch([] {});
      },
      [&] {
        loop.dispatch([] {});
        b_completion.push_back(rig.clock.now());
      },
  };
  rig.clock.run_parallel(branches);
  ASSERT_EQ(b_completion.size(), 1u);
  EXPECT_EQ(b_completion[0], 2 * slot);  // queued behind A's first slot only
}

TEST(EventLoop, SequentialRequestsAfterIdlePeriodDoNotWait) {
  Rig rig;
  EventLoop loop(rig.clock, rig.cost, /*parallel_handling=*/false);
  loop.dispatch([&] { rig.clock.advance(5 * kUs); });
  rig.clock.advance(100 * kUs);  // loop idle
  const SimNs before = rig.clock.now();
  loop.dispatch([&] { rig.clock.advance(5 * kUs); });
  EXPECT_EQ(rig.clock.now(), before + 5 * kUs);  // no queueing delay
}

TEST(EventLoop, BusyUntilReflectsQueue) {
  Rig rig;
  EventLoop loop(rig.clock, rig.cost, /*parallel_handling=*/false);
  EXPECT_EQ(loop.busy_until(), 0u);
  loop.dispatch([&] { rig.clock.advance(7 * kUs); });
  EXPECT_EQ(loop.busy_until(), 7 * kUs);
}

TEST(EventLoop, IntervalsPrunedOutsideParallelSections) {
  Rig rig;
  EventLoop loop(rig.clock, rig.cost, /*parallel_handling=*/true);
  // Thousands of sequential dispatches: the interval set must not grow
  // unboundedly (pruned against the clock floor = now()).
  for (int i = 0; i < 10000; ++i) {
    loop.dispatch([] {});
    rig.clock.advance(1 * kUs);
  }
  // After the last dispatch everything older has been pruned; busy_until
  // is within one slot of now.
  EXPECT_LE(loop.busy_until(), rig.clock.now());
}

}  // namespace
}  // namespace vpim::vmm
