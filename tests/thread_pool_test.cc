// Unit tests for the deterministic chunked host thread pool: completion,
// exception propagation, nested-submit safety, and the chunking contract
// that the cross-layer determinism suite relies on.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace vpim {
namespace {

// Every test restores the process-wide pool to its original size so the
// remaining suites see the VPIM_THREADS / hardware_concurrency default.
class ThreadPoolTest : public ::testing::Test {
 protected:
  void SetUp() override { original_ = ThreadPool::instance().size(); }
  void TearDown() override { ThreadPool::instance().resize(original_); }
  unsigned original_ = 1;
};

TEST_F(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 4u, 7u}) {
    ThreadPool::instance().resize(threads);
    ASSERT_EQ(ThreadPool::instance().size(), threads);
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                          std::size_t{64}, std::size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      ThreadPool::instance().parallel_for(
          n, [&](std::size_t i) { hits[i].fetch_add(1); });
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
      }
    }
  }
}

TEST_F(ThreadPoolTest, ResultsMergeInIndexOrder) {
  // Per-index outputs written into a shared vector must land exactly as a
  // serial loop would produce them, at any thread count.
  const std::size_t n = 512;
  std::vector<std::uint64_t> serial(n);
  for (std::size_t i = 0; i < n; ++i) serial[i] = i * i + 17;
  for (unsigned threads : {1u, 3u, 8u}) {
    ThreadPool::instance().resize(threads);
    std::vector<std::uint64_t> out(n, 0);
    ThreadPool::instance().parallel_for(
        n, [&](std::size_t i) { out[i] = i * i + 17; });
    EXPECT_EQ(out, serial) << "threads=" << threads;
  }
}

TEST_F(ThreadPoolTest, RethrowsLowestFailingIndex) {
  ThreadPool::instance().resize(4);
  // Two failures in different chunks: the caller must see the exception a
  // serial loop would have hit first (index 50, not 700).
  try {
    ThreadPool::instance().parallel_for(1000, [&](std::size_t i) {
      if (i == 50 || i == 700) {
        throw std::runtime_error("idx" + std::to_string(i));
      }
    });
    FAIL() << "parallel_for swallowed the exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "idx50");
  }
}

TEST_F(ThreadPoolTest, ExceptionDoesNotPoisonThePool) {
  ThreadPool::instance().resize(4);
  EXPECT_THROW(ThreadPool::instance().parallel_for(
                   100, [](std::size_t) { throw std::runtime_error("x"); }),
               std::runtime_error);
  // The pool must remain usable after a failed job.
  std::atomic<int> count{0};
  ThreadPool::instance().parallel_for(100,
                                      [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 100);
}

TEST_F(ThreadPoolTest, NestedSubmitRunsInlineWithoutDeadlock) {
  ThreadPool::instance().resize(4);
  std::atomic<std::uint64_t> total{0};
  ThreadPool::instance().parallel_for(8, [&](std::size_t) {
    // A nested fan-out from a worker must not wait on the pool (the
    // workers are busy running *this* job) — it runs inline.
    ThreadPool::instance().parallel_for(
        16, [&](std::size_t j) { total += j + 1; });
  });
  // 8 * sum(1..16)
  EXPECT_EQ(total.load(), 8u * (16u * 17u / 2u));
}

TEST_F(ThreadPoolTest, SizeOneRunsOnCallingThread) {
  ThreadPool::instance().resize(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(32);
  ThreadPool::instance().parallel_for(
      32, [&](std::size_t i) { ids[i] = std::this_thread::get_id(); });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

}  // namespace
}  // namespace vpim
