#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "tests/testutil.h"
#include "vpim/manager.h"
#include "vpim/manager_service.h"

namespace vpim::core {
namespace {

ManagerConfig fast_config(bool charge = true) {
  ManagerConfig cfg;
  cfg.retry_wait_ns = 1 * kMs;
  cfg.max_attempts = 2;
  cfg.charge_time = charge;
  return cfg;
}

TEST(Manager, AllocatesRoundRobin) {
  test::TestRig rig(test::small_machine());  // 2 ranks
  Manager mgr(rig.drv, fast_config());
  auto a = mgr.request_rank("vm-a");
  auto b = mgr.request_rank("vm-b");
  ASSERT_TRUE(a && b);
  EXPECT_NE(*a, *b);
  EXPECT_EQ(mgr.state(*a), RankState::kAllo);
  EXPECT_EQ(mgr.state(*b), RankState::kAllo);
}

TEST(Manager, AllocationChargesPaperRoundTrip) {
  test::TestRig rig(test::small_machine());
  Manager mgr(rig.drv, fast_config());
  const SimNs t0 = rig.clock.now();
  ASSERT_TRUE(mgr.request_rank("vm-a"));
  EXPECT_EQ(rig.clock.now() - t0, rig.cost.manager_alloc_rt_ns);  // ~36 ms
}

TEST(Manager, ExhaustionRetriesThenAbandons) {
  test::TestRig rig(test::small_machine());
  Manager mgr(rig.drv, fast_config());
  ASSERT_TRUE(mgr.request_rank("vm-a"));
  ASSERT_TRUE(mgr.request_rank("vm-b"));
  const SimNs t0 = rig.clock.now();
  EXPECT_FALSE(mgr.request_rank("vm-c").has_value());
  EXPECT_EQ(mgr.stats().failed_requests, 1u);
  // Two attempts separated by the retry wait.
  EXPECT_GE(rig.clock.now() - t0,
            rig.cost.manager_alloc_rt_ns + 2 * kMs);
}

TEST(Manager, ObserverDetectsReleaseAndResets) {
  test::TestRig rig(test::small_machine());
  Manager mgr(rig.drv, fast_config());
  auto r = mgr.request_rank("vm-a");
  ASSERT_TRUE(r);

  // Backend maps the rank; observer sees it in use.
  auto mapping = rig.drv.map_rank(*r, "vm-a");
  mgr.observe();
  EXPECT_EQ(mgr.state(*r), RankState::kAllo);

  // Put residual data in the rank, then release without telling anyone.
  std::vector<std::uint8_t> secret(64, 0xAA);
  rig.machine.rank(*r).mram(0).write(0, secret);
  mapping.unmap();

  mgr.observe(/*do_resets=*/false);
  EXPECT_EQ(mgr.state(*r), RankState::kNana);
  EXPECT_EQ(mgr.stats().releases_observed, 1u);

  const SimNs t0 = rig.clock.now();
  mgr.observe(/*do_resets=*/true);
  EXPECT_EQ(mgr.state(*r), RankState::kNaav);
  EXPECT_EQ(mgr.stats().resets, 1u);
  // Reset takes the ~597 ms memset of the 4 GiB rank region.
  EXPECT_NEAR(ns_to_ms(rig.clock.now() - t0), 597.0, 60.0);

  // No residual data for the next tenant (isolation, R2).
  std::vector<std::uint8_t> probe(64, 1);
  rig.machine.rank(*r).mram(0).read(0, probe);
  for (auto b : probe) EXPECT_EQ(b, 0);
}

TEST(Manager, NanaAffinityReusesWithoutReset) {
  test::TestRig rig(test::small_machine());
  Manager mgr(rig.drv, fast_config());
  auto r = mgr.request_rank("vm-a");
  ASSERT_TRUE(r);
  {
    auto mapping = rig.drv.map_rank(*r, "vm-a");
    mgr.observe();
    std::vector<std::uint8_t> data(8, 0x5A);
    rig.machine.rank(*r).mram(0).write(0, data);
  }
  mgr.observe(/*do_resets=*/false);  // release seen, reset pending
  ASSERT_EQ(mgr.state(*r), RankState::kNana);

  // Same owner asks again before the observer erased the rank: it gets its
  // old rank back, content intact, no reset charged.
  auto again = mgr.request_rank("vm-a");
  ASSERT_TRUE(again);
  EXPECT_EQ(*again, *r);
  EXPECT_EQ(mgr.stats().reuse_hits, 1u);
  EXPECT_EQ(mgr.stats().resets, 0u);
  std::vector<std::uint8_t> probe(8);
  rig.machine.rank(*r).mram(0).read(0, probe);
  EXPECT_EQ(probe[0], 0x5A);
}

TEST(Manager, DifferentOwnerGetsResetNanaRank) {
  test::TestRig rig(test::small_machine());
  Manager mgr(rig.drv, fast_config());
  // Occupy both ranks, then release one as vm-a.
  auto r0 = mgr.request_rank("vm-a");
  auto r1 = mgr.request_rank("vm-b");
  ASSERT_TRUE(r0 && r1);
  auto keep = rig.drv.map_rank(*r1, "vm-b");
  {
    auto mapping = rig.drv.map_rank(*r0, "vm-a");
    mgr.observe();
    std::vector<std::uint8_t> data(8, 0x5A);
    rig.machine.rank(*r0).mram(0).write(0, data);
  }
  mgr.observe(/*do_resets=*/false);
  ASSERT_EQ(mgr.state(*r0), RankState::kNana);

  // vm-c must only ever see zeroed memory.
  auto rc = mgr.request_rank("vm-c");
  ASSERT_TRUE(rc);
  EXPECT_EQ(*rc, *r0);
  EXPECT_EQ(mgr.stats().resets, 1u);
  std::vector<std::uint8_t> probe(8, 1);
  rig.machine.rank(*rc).mram(0).read(0, probe);
  EXPECT_EQ(probe[0], 0);
}

TEST(Manager, NativeApplicationsCoexist) {
  test::TestRig rig(test::small_machine());
  Manager mgr(rig.drv, fast_config());
  // A native app maps rank 0 directly, bypassing the manager.
  auto native = rig.drv.map_rank(0, "native-app");
  mgr.observe();
  EXPECT_EQ(mgr.state(0), RankState::kAllo);

  // The manager only hands out rank 1.
  auto r = mgr.request_rank("vm-a");
  ASSERT_TRUE(r);
  EXPECT_EQ(*r, 1u);
  EXPECT_FALSE(mgr.request_rank("vm-b").has_value());

  // When the native app exits, its rank is recycled like any other.
  native.unmap();
  mgr.observe();
  EXPECT_EQ(mgr.state(0), RankState::kNaav);
  EXPECT_TRUE(mgr.request_rank("vm-b").has_value());
}

// ---- fault handling: quarantine, probing, migration accounting ----------

TEST(Manager, DeadRankIsQuarantinedAndProbedWithBackoff) {
  test::TestRig rig(test::small_machine());
  Manager mgr(rig.drv, fast_config(/*charge=*/false));
  // The device layer reports a permanent fault on rank 0; the hardware is
  // truly dead, so every reset-verify probe fails.
  rig.machine.rank(0).fail();
  rig.drv.log_fault({FaultKind::kRankDeath, 0, 0, rig.clock.now()});

  mgr.observe();
  EXPECT_EQ(mgr.state(0), RankState::kFail);
  EXPECT_EQ(mgr.stats().quarantined, 1u);
  EXPECT_EQ(mgr.stats().quarantine_probes, 1u);
  EXPECT_EQ(mgr.stats().fault_records_drained, 1u);

  // Probes respect the exponential backoff: immediately again -> nothing;
  // after the base window -> one more.
  mgr.observe();
  EXPECT_EQ(mgr.stats().quarantine_probes, 1u);
  rig.clock.advance(100 * kMs);
  mgr.observe();
  EXPECT_EQ(mgr.stats().quarantine_probes, 2u);
  EXPECT_EQ(mgr.stats().recoveries, 0u);

  // A quarantined rank is never handed out, even under pressure.
  ASSERT_TRUE(mgr.request_rank("vm-a").has_value());
  EXPECT_FALSE(mgr.request_rank("vm-b").has_value());
  EXPECT_EQ(mgr.state(0), RankState::kFail);
}

TEST(Manager, RecoverableRankPassesResetVerifyAndRejoins) {
  test::TestRig rig(test::small_machine());
  Manager mgr(rig.drv, fast_config(/*charge=*/false));
  // Sysfs says failed, but the hardware itself still works (e.g. the fault
  // was a one-off mis-report or the chip came back after power-cycle): the
  // reset-verify probe passes and the rank returns to circulation.
  std::vector<std::uint8_t> residue(32, 0xEE);
  rig.machine.rank(0).mram(0).write(0, residue);
  rig.drv.log_fault({FaultKind::kRankDeath, 0, 0, rig.clock.now()});

  mgr.observe();
  EXPECT_EQ(mgr.state(0), RankState::kNaav);  // probe ran and passed
  EXPECT_EQ(mgr.stats().quarantined, 1u);
  EXPECT_EQ(mgr.stats().quarantine_probes, 1u);
  EXPECT_EQ(mgr.stats().recoveries, 1u);

  // Reset-verify scrubbed the rank: the next tenant sees zeroed memory.
  std::vector<std::uint8_t> probe(32, 1);
  rig.machine.rank(0).mram(0).read(0, probe);
  for (auto b : probe) EXPECT_EQ(b, 0);
  auto a = mgr.request_rank("vm-a");
  auto b = mgr.request_rank("vm-b");
  EXPECT_TRUE(a.has_value());
  EXPECT_TRUE(b.has_value());
}

TEST(Manager, FailedRequestsCountExactlyOnePerAbandonment) {
  test::TestRig rig(test::small_machine());
  Manager mgr(rig.drv, fast_config());
  auto ra = mgr.request_rank("vm-a");
  auto rb = mgr.request_rank("vm-b");
  ASSERT_TRUE(ra && rb);
  // Both holders actively map their ranks, so the observer passes inside
  // the retry loop cannot reclaim them.
  auto ma = rig.drv.map_rank(*ra, "vm-a");
  auto mb = rig.drv.map_rank(*rb, "vm-b");
  // Each abandoned request counts once, regardless of its retry attempts.
  EXPECT_FALSE(mgr.request_rank("vm-c").has_value());
  EXPECT_EQ(mgr.stats().failed_requests, 1u);
  EXPECT_FALSE(mgr.request_rank("vm-d").has_value());
  EXPECT_EQ(mgr.stats().failed_requests, 2u);
}

TEST(Manager, RetriedRequestThatSucceedsIsNotCountedFailed) {
  test::TestRig rig(test::small_machine());
  ManagerConfig cfg = fast_config();
  cfg.max_attempts = 3;
  Manager mgr(rig.drv, cfg);
  auto r0 = mgr.request_rank("vm-a");
  auto r1 = mgr.request_rank("vm-b");
  ASSERT_TRUE(r0 && r1);
  // vm-a maps, works, and releases without telling anyone — entirely
  // between observer passes, so the mapping is never witnessed. The
  // driver's map-generation counter still exposes the release, and vm-c's
  // request succeeds on a retry attempt. vm-b has not mapped yet, so its
  // rank must NOT be reclaimed (it is inside the release grace).
  { auto mapping = rig.drv.map_rank(*r0, "vm-a"); }
  auto rc = mgr.request_rank("vm-c");
  ASSERT_TRUE(rc.has_value());
  EXPECT_EQ(*rc, *r0);
  EXPECT_EQ(mgr.stats().failed_requests, 0u);
}

TEST(Manager, MigrationAndSeizureCountersAccumulate) {
  test::TestRig rig(test::small_machine());
  Manager mgr(rig.drv, fast_config());
  mgr.note_wrank_migration();
  mgr.note_wrank_migration();
  EXPECT_EQ(mgr.stats().wrank_migrations, 2u);

  // note_seized: the backend lost its mapping race; the squatter's rank is
  // tracked ALLO and quarantined once released.
  auto r = mgr.request_rank("vm-a");
  ASSERT_TRUE(r.has_value());
  auto squatter = rig.drv.map_rank(*r, "native-app");
  mgr.note_seized(*r);
  EXPECT_EQ(mgr.stats().seizures_observed, 1u);
  EXPECT_EQ(mgr.state(*r), RankState::kAllo);
  squatter.unmap();
  mgr.observe();
  EXPECT_EQ(mgr.state(*r), RankState::kFail);
  EXPECT_EQ(mgr.stats().quarantined, 1u);
  // Next pass: reset-verify passes (hardware is fine) -> back to NAAV.
  mgr.observe();
  EXPECT_EQ(mgr.state(*r), RankState::kNaav);
  EXPECT_EQ(mgr.stats().recoveries, 1u);
}

TEST(ManagerService, ConcurrentRequestsNeverDoubleAllocate) {
  test::TestRig rig;  // 8 ranks
  ManagerConfig cfg;
  cfg.charge_time = false;
  cfg.max_attempts = 50;
  Manager mgr(rig.drv, cfg);
  ManagerService service(mgr, 8, std::chrono::milliseconds(1));

  std::mutex driver_mu;  // the simulated driver itself is not thread-safe
  std::atomic<int> successes{0};
  std::atomic<bool> overlap{false};
  std::vector<std::atomic<int>> holders(rig.machine.nr_ranks());
  for (auto& h : holders) h = 0;

  auto worker = [&](int id) {
    const std::string owner = "vm-" + std::to_string(id);
    for (int round = 0; round < 3; ++round) {
      auto fut = service.request_rank(owner);
      auto rank = fut.get();
      if (!rank.has_value()) continue;
      if (holders[*rank].fetch_add(1) != 0) overlap = true;
      {
        std::lock_guard lock(driver_mu);
        auto mapping = rig.drv.map_rank(*rank, owner);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        // mapping unmaps here (lock still held)
      }
      holders[*rank].fetch_sub(1);
      ++successes;
      // Observer (running every 1 ms) will recycle the rank.
    }
  };

  std::vector<std::thread> threads;
  for (int i = 0; i < 16; ++i) threads.emplace_back(worker, i);
  for (auto& t : threads) t.join();
  service.stop();

  EXPECT_FALSE(overlap.load());
  EXPECT_GT(successes.load(), 16);  // most rounds should succeed
}

// ---- ManagerService typed vocabulary, priorities, shutdown (ISSUE 9) -----

TEST(ManagerService, TypedVocabularyRoundTrips) {
  test::TestRig rig(test::small_machine());
  Manager mgr(rig.drv, fast_config(/*charge=*/false));
  ManagerService service(mgr, /*threads=*/2,
                         std::chrono::milliseconds(1));

  const ServiceResponse a = service.allocate("vm-a", 2).get();
  ASSERT_EQ(a.status, AllocStatus::kOk);
  EXPECT_NE(a.wrank, 0u);

  const ServiceResponse grown = service.resize(a.wrank, 3).get();
  EXPECT_EQ(grown.status, AllocStatus::kOk);
  EXPECT_EQ(mgr.tenant_slots("vm-a"), 3u);

  EXPECT_EQ(service.allocate("vm-a", 9).get().status,
            AllocStatus::kBadRequest);
  EXPECT_EQ(service.resize(999, 1).get().status, AllocStatus::kNotFound);

  EXPECT_EQ(service.release(a.wrank).get().status, AllocStatus::kOk);
  EXPECT_EQ(service.release(a.wrank).get().status, AllocStatus::kNotFound);
  EXPECT_EQ(mgr.tenant_slots("vm-a"), 0u);
}

TEST(ManagerService, PerTenantQuotaIsEnforced) {
  test::TestRig rig(test::small_machine());
  Manager mgr(rig.drv, fast_config(/*charge=*/false));
  mgr.set_tenant_quota("capped", 2);
  ManagerService service(mgr, /*threads=*/2,
                         std::chrono::milliseconds(1));

  EXPECT_EQ(service.allocate("capped", 4).get().status,
            AllocStatus::kQuotaExceeded);
  const ServiceResponse ok = service.allocate("capped", 2).get();
  ASSERT_EQ(ok.status, AllocStatus::kOk);
  EXPECT_EQ(service.allocate("capped", 1).get().status,
            AllocStatus::kQuotaExceeded);
  EXPECT_EQ(service.resize(ok.wrank, 3).get().status,
            AllocStatus::kQuotaExceeded);
  EXPECT_EQ(mgr.stats().quota_rejections, 3u);
  // An uncapped tenant is unaffected.
  EXPECT_EQ(service.allocate("free", 4).get().status, AllocStatus::kOk);
}

TEST(ManagerService, HigherPriorityDrainsFirst) {
  // One rank, one worker, workers paused: both requests sit queued, then
  // the single 4-slot hole must go to the higher-priority request no
  // matter the submission order.
  test::TestRig rig({.nr_ranks = 1, .functional_dpus_per_rank = 8});
  ManagerConfig cfg = fast_config(/*charge=*/false);
  cfg.max_attempts = 1;
  Manager mgr(rig.drv, cfg);
  ManagerServiceConfig scfg;
  scfg.threads = 1;
  scfg.observe_period = std::chrono::milliseconds(1);
  scfg.start_paused = true;
  ManagerService service(mgr, scfg);

  auto low = service.allocate("low", 4, /*priority=*/0);
  auto high = service.allocate("high", 4, /*priority=*/5);
  service.start();
  EXPECT_EQ(high.get().status, AllocStatus::kOk);
  EXPECT_EQ(low.get().status, AllocStatus::kNoCapacity);
  EXPECT_EQ(mgr.tenant_slots("high"), 4u);
  EXPECT_EQ(mgr.tenant_slots("low"), 0u);
}

TEST(ManagerService, StopDrainsQueueWithTypedShutdown) {
  test::TestRig rig(test::small_machine());
  Manager mgr(rig.drv, fast_config(/*charge=*/false));
  ManagerServiceConfig scfg;
  scfg.threads = 1;
  scfg.observe_period = std::chrono::milliseconds(1);
  scfg.start_paused = true;  // nothing dequeues before stop()
  ManagerService service(mgr, scfg);

  std::vector<std::future<ServiceResponse>> queued;
  for (int i = 0; i < 4; ++i) queued.push_back(service.allocate("t", 1));
  auto legacy = service.request_rank("vm-legacy");
  service.stop();

  // Regression (satellite bugfix): the old packaged_task queue was
  // discarded on stop(), so these futures never resolved and callers
  // blocked forever.
  for (auto& f : queued) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(5)),
              std::future_status::ready);
    EXPECT_EQ(f.get().status, AllocStatus::kShutdown);
  }
  ASSERT_EQ(legacy.wait_for(std::chrono::seconds(5)),
            std::future_status::ready);
  EXPECT_FALSE(legacy.get().has_value());
  EXPECT_EQ(service.shutdown_rejections(), 5u);
  EXPECT_EQ(mgr.wranks().size(), 0u);  // nothing leaked into the manager

  // Submissions after stop() resolve immediately with the same typed
  // rejection instead of queueing into the void.
  auto late = service.allocate("t", 1);
  ASSERT_EQ(late.wait_for(std::chrono::seconds(5)),
            std::future_status::ready);
  EXPECT_EQ(late.get().status, AllocStatus::kShutdown);
  EXPECT_EQ(service.shutdown_rejections(), 6u);
}

// ---- regression: resize under concurrent wrank churn (ISSUE 10) ---------
// The KV service's rebalancer calls resize_wrank from its serving path
// while other tenants churn allocations on the same Manager (the
// examples/kv_service demo drives exactly this shape). The ledger must
// stay consistent under that interleaving: per-rank slot occupancy never
// exceeds wrank_slots_per_rank, every result is typed, and the resized
// wrank ends at the last requested size on a live rank.
TEST(ManagerService, ResizeUnderConcurrentChurnKeepsLedgerConsistent) {
  test::TestRig rig;  // 8 ranks
  ManagerConfig cfg;
  cfg.charge_time = false;
  cfg.max_attempts = 8;
  Manager mgr(rig.drv, cfg);
  const std::uint32_t per_rank = cfg.wrank_slots_per_rank;

  const AllocResult kv = mgr.allocate_wrank("kv", 1);
  ASSERT_EQ(kv.status, AllocStatus::kOk);

  std::atomic<bool> stop{false};
  std::atomic<bool> bad_status{false};
  auto churn = [&](int id) {
    const std::string tenant = "churn-" + std::to_string(id);
    while (!stop.load()) {
      const AllocResult r =
          mgr.allocate_wrank(tenant, 1 + static_cast<std::uint32_t>(id) % 2);
      if (r.status == AllocStatus::kOk) {
        if (mgr.release_wrank(r.wrank) != AllocStatus::kOk) {
          bad_status = true;
        }
      } else if (r.status != AllocStatus::kNoCapacity) {
        bad_status = true;
      }
    }
  };
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) threads.emplace_back(churn, i);

  // The serving path: grow and shrink the KV wrank across the churn, the
  // way the rebalancer tracks its hot-DPU footprint.
  std::uint32_t last_ok = 1;
  for (int round = 0; round < 200; ++round) {
    const std::uint32_t want = 1 + static_cast<std::uint32_t>(round) % per_rank;
    const AllocResult r = mgr.resize_wrank(kv.wrank, want);
    if (r.status == AllocStatus::kOk) {
      last_ok = want;
    } else {
      ASSERT_EQ(r.status, AllocStatus::kNoCapacity)
          << "resize resolved untyped/unexpected: " << to_string(r.status);
    }
    // Ledger invariant at every step: no hosting rank oversubscribed.
    std::vector<std::uint32_t> used(rig.machine.nr_ranks(), 0);
    for (const WrankInfo& w : mgr.wranks()) {
      if (w.rank == Manager::kNoRank) continue;
      used[w.rank] += w.slots;
      ASSERT_LE(used[w.rank], per_rank)
          << "rank " << w.rank << " oversubscribed mid-churn";
    }
  }
  stop = true;
  for (auto& t : threads) t.join();
  EXPECT_FALSE(bad_status.load());

  bool found = false;
  for (const WrankInfo& w : mgr.wranks()) {
    if (w.id != kv.wrank) continue;
    found = true;
    EXPECT_EQ(w.slots, last_ok);
    EXPECT_NE(w.rank, Manager::kNoRank);
  }
  EXPECT_TRUE(found) << "churn destroyed the KV wrank";
  EXPECT_EQ(mgr.release_wrank(kv.wrank), AllocStatus::kOk);
}

}  // namespace
}  // namespace vpim::core
