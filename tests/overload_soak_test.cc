// Chaos harness (ISSUE 8): eight tenants churn open-loop at twice the
// host's admission budget while a seeded fault *storm* (correlated bursts
// of rank death + transients + lost completions) plays out underneath.
// Invariants:
//   - zero lost requests: every admitted ticket reaps exactly once with a
//     typed PimStatus; every shed submission gets a typed reject;
//   - the whole schedule — virtual end time, per-status tallies, admission
//     and device counters — is bit-identical across VPIM_THREADS 1 and 4;
//   - at wind-down every rank is back to NAAV or parked in FAIL.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "tests/testutil.h"
#include "virtio/pim_spec.h"
#include "vpim/host.h"
#include "vpim/vpim_vm.h"

namespace vpim::core {
namespace {

using virtio::PimStatus;

constexpr int kTenants = 8;
constexpr std::uint32_t kBudget = 8;  // global in-flight budget
constexpr int kSteps = 60;

bool typed(std::int32_t status) {
  switch (static_cast<PimStatus>(status)) {
    case PimStatus::kOk:
    case PimStatus::kBadRequest:
    case PimStatus::kUnbound:
    case PimStatus::kNoCapacity:
    case PimStatus::kTimeout:
    case PimStatus::kDeviceFault:
    case PimStatus::kAdmissionReject:
    case PimStatus::kOverloaded:
    case PimStatus::kCancelled:
      return true;
    default:
      return false;
  }
}

// Everything observable about one full soak run; two runs at different
// VPIM_THREADS must produce identical fingerprints.
struct Fingerprint {
  SimNs clock_end = 0;
  std::map<std::int32_t, std::uint64_t> completions_by_status;
  std::uint64_t sheds = 0;          // typed try_submit rejections
  std::uint64_t tickets = 0;        // admitted submissions
  std::uint64_t cancels_won = 0;
  AdmissionStats admission;
  std::uint64_t would_blocks = 0;
  std::uint64_t admission_rejects = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t deadline_shed = 0;
  std::uint64_t poll_timeouts = 0;
  std::uint64_t dropped_completions = 0;
  std::uint64_t faults_fired = 0;

  bool operator==(const Fingerprint& o) const {
    return clock_end == o.clock_end &&
           completions_by_status == o.completions_by_status &&
           sheds == o.sheds && tickets == o.tickets &&
           cancels_won == o.cancels_won &&
           admission.admitted == o.admission.admitted &&
           admission.shed_tenant == o.admission.shed_tenant &&
           admission.shed_global == o.admission.shed_global &&
           admission.completed == o.admission.completed &&
           admission.fairness_deferrals == o.admission.fairness_deferrals &&
           would_blocks == o.would_blocks &&
           admission_rejects == o.admission_rejects &&
           cancelled == o.cancelled && deadline_shed == o.deadline_shed &&
           poll_timeouts == o.poll_timeouts &&
           dropped_completions == o.dropped_completions &&
           faults_fired == o.faults_fired;
  }
};

Fingerprint run_storm_soak(std::uint64_t seed) {
  ManagerConfig mgr;
  mgr.retry_wait_ns = 1 * kMs;
  mgr.max_attempts = 2;
  Host host({.nr_ranks = 3, .functional_dpus_per_rank = 8}, CostModel{},
            mgr);

  AdmissionConfig acfg;
  acfg.tokens_per_sec = 5000;
  acfg.bucket_burst = 16;
  acfg.global_inflight_budget = kBudget;
  host.install_admission(acfg);

  FaultPlanConfig fcfg;
  fcfg.seed = seed * 131 + 7;
  fcfg.lost_completions = 2;
  fcfg.max_op = 64;
  fcfg.storm_bursts = 2;
  fcfg.storm_width = 2;
  host.install_fault_plan(
      FaultPlan::generate(fcfg, host.machine.nr_ranks()));

  VpimConfig config = VpimConfig::full();
  config.oversubscribe = true;
  config.prefetch_cache = false;
  config.request_batching = false;
  // Deep SQ so staged work is never auto-kicked: requests sit in flight
  // until the tenant's drain turn comes around, which is what lets the
  // global in-flight budget actually fill up and shed.
  config.queue_depth = 16;
  config.default_deadline_ns = 100 * kMs;
  config.cq_capacity = 32;

  struct Tenant {
    std::unique_ptr<VpimVm> vm;
    bool open = false;
    std::span<std::uint8_t> buf;
    std::map<Frontend::Ticket, int> reaps;  // ticket -> completion count
  };
  std::vector<Tenant> tenants(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    tenants[t].vm = std::make_unique<VpimVm>(
        host, vmm::VmmParams{.name = "ovl" + std::to_string(t)}, 1, config);
    tenants[t].buf = tenants[t].vm->vmm().memory().alloc(16 * kKiB);
  }

  Fingerprint fp;
  auto fe = [&](int t) -> Frontend& {
    return tenants[t].vm->device(0).frontend;
  };
  auto drain = [&](int t) {
    for (const Frontend::Completion& done : fe(t).poll_completions()) {
      EXPECT_TRUE(typed(done.status))
          << "untyped completion status " << done.status;
      ++tenants[t].reaps[done.ticket];
      ++fp.completions_by_status[done.status];
    }
  };
  // Injected device faults end the session typed; anything else is a bug.
  auto tolerate = [&](int t, auto&& op) -> bool {
    try {
      op();
      return true;
    } catch (const VpimStatusError& e) {
      EXPECT_TRUE(typed(e.status())) << e.what();
      fe(t).close();
      tenants[t].open = false;
      return false;
    }
  };

  Rng rng(0xC4A05 + seed);
  for (int step = 0; step < kSteps; ++step) {
    for (int t = 0; t < kTenants; ++t) {
      Tenant& tenant = tenants[t];
      if (!tenant.open) {
        bool opened = false;
        if (tolerate(t, [&] { opened = fe(t).open(); }) && opened) {
          tenant.open = true;
        }
        continue;
      }
      // Open-loop load: two submission attempts per tenant per step — with
      // kTenants * 2 attempts against a budget of kBudget, the offered
      // load sits at ~2x what admission will carry. A shed is counted and
      // skipped, never retried inline (that is what open-loop means).
      for (int burst = 0; burst < 2; ++burst) {
        const bool is_write = rng.uniform(0, 1) == 0;
        const std::uint32_t dpu =
            static_cast<std::uint32_t>(rng.uniform(0, 7));
        const std::uint64_t size =
            static_cast<std::uint64_t>(rng.uniform(64, 2048));
        const std::uint64_t cancel_roll = rng.uniform(0, 9);
        driver::TransferMatrix m;
        m.direction = is_write ? driver::XferDirection::kToRank
                               : driver::XferDirection::kFromRank;
        m.entries.push_back({dpu, 4096, tenant.buf.data(), size});
        Frontend::SubmitResult r;
        if (!tolerate(t, [&] {
              r = is_write ? fe(t).try_submit_write(m)
                           : fe(t).try_submit_read(m);
            })) {
          break;
        }
        if (!r.ok()) {
          EXPECT_TRUE(r.status == static_cast<std::int32_t>(
                                      PimStatus::kAdmissionReject) ||
                      r.status == static_cast<std::int32_t>(
                                      PimStatus::kOverloaded))
              << "untyped shed status " << r.status;
          ++fp.sheds;
          continue;
        }
        ++fp.tickets;
        EXPECT_TRUE(tenant.reaps.emplace(r.ticket, 0).second)
            << "duplicate ticket";
        // Occasionally race a cancel against the doorbell.
        if (cancel_roll == 0 && fe(t).cancel(r.ticket)) ++fp.cancels_won;
      }
      if (!tenant.open) continue;
      // Drain lazily — every third step, staggered by tenant — so each
      // tenant holds its admitted slots for a while. Eight tenants times
      // two staged ops against a budget of eight keeps the controller
      // pinned at capacity and the overflow sheds typed.
      if (step % 3 == t % 3) drain(t);
      // Churn: sometimes release the device mid-stream (its in-flight work
      // reaps through close()'s internal drain; tickets it never reaped
      // are checked below only for tenants that stayed open).
      if (rng.uniform(0, 19) == 0) {
        drain(t);
        fe(t).close();
        tenant.open = false;
        tenant.reaps.clear();
      }
    }
    if (step % 8 == 0) host.manager.observe();
  }

  // Wind down: drain every CQ until quiet, then verify nothing was lost
  // and close. Two empty polls in a row mean the pipeline is dry.
  for (int t = 0; t < kTenants; ++t) {
    if (!tenants[t].open) continue;
    int idle = 0;
    while (idle < 2) {
      std::size_t got = 0;
      for (const Frontend::Completion& done : fe(t).poll_completions()) {
        EXPECT_TRUE(typed(done.status));
        ++tenants[t].reaps[done.ticket];
        ++fp.completions_by_status[done.status];
        ++got;
      }
      idle = got == 0 ? idle + 1 : 0;
    }
    for (const auto& [ticket, count] : tenants[t].reaps) {
      EXPECT_EQ(count, 1) << "ticket " << ticket << " of tenant " << t
                          << " reaped " << count << " times";
    }
    fe(t).close();
    tenants[t].open = false;
  }

  // Give seizure holds and quarantine probes time to converge.
  for (int pass = 0; pass < 6; ++pass) {
    host.clock.advance(2 * kSec);
    host.manager.observe();
  }
  for (std::uint32_t r = 0; r < host.machine.nr_ranks(); ++r) {
    if (host.machine.rank(r).failed()) {
      EXPECT_EQ(host.manager.state(r), RankState::kFail) << "rank " << r;
      continue;
    }
    EXPECT_EQ(host.manager.state(r), RankState::kNaav) << "rank " << r;
  }

  fp.clock_end = host.clock.now();
  fp.admission = host.admission->stats();
  for (int t = 0; t < kTenants; ++t) {
    const DeviceStats& s = tenants[t].vm->device(0).stats;
    fp.would_blocks += s.would_blocks;
    fp.admission_rejects += s.admission_rejects;
    fp.cancelled += s.cancelled;
    fp.deadline_shed += s.deadline_shed;
    fp.poll_timeouts += s.poll_timeouts;
    fp.dropped_completions += s.dropped_completions;
  }
  fp.faults_fired = host.fault_plan->fired().size();
  return fp;
}

class OverloadStormSoak : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { original_ = ThreadPool::instance().size(); }
  void TearDown() override { ThreadPool::instance().resize(original_); }
  unsigned original_ = 1;
};

TEST_P(OverloadStormSoak, NoRequestLostAndScheduleIsThreadInvariant) {
  const auto seed = static_cast<std::uint64_t>(GetParam());

  ThreadPool::instance().resize(1);
  const Fingerprint narrow = run_storm_soak(seed);
  ThreadPool::instance().resize(4);
  const Fingerprint wide = run_storm_soak(seed);
  ThreadPool::instance().resize(1);

  // The overload machinery actually engaged: work was admitted, work was
  // shed, and the storm fired.
  EXPECT_GT(narrow.tickets, 0u);
  EXPECT_GT(narrow.sheds, 0u) << "2x offered load never hit the budget?";
  EXPECT_GT(narrow.faults_fired, 0u) << "storm never fired";
  EXPECT_EQ(narrow.admission.admitted,
            narrow.admission.completed)
      << "admission budget leaked: admitted != completed after wind-down";

  EXPECT_TRUE(narrow == wide)
      << "schedule diverged between VPIM_THREADS=1 and 4: clock "
      << narrow.clock_end << " vs " << wide.clock_end << ", tickets "
      << narrow.tickets << " vs " << wide.tickets << ", sheds "
      << narrow.sheds << " vs " << wide.sheds;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverloadStormSoak, ::testing::Values(1, 2),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace vpim::core
