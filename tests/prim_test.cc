#include <gtest/gtest.h>

#include "prim/app.h"
#include "prim/micro.h"
#include "tests/testutil.h"
#include "vpim/guest_platform.h"
#include "vpim/host.h"
#include "vpim/vpim_vm.h"

namespace vpim::prim {
namespace {

core::ManagerConfig fast_manager() {
  core::ManagerConfig cfg;
  cfg.retry_wait_ns = 1 * kMs;
  cfg.max_attempts = 2;
  return cfg;
}

AppParams small_params(std::uint32_t nr_dpus = 8) {
  AppParams prm;
  prm.nr_dpus = nr_dpus;
  prm.scale = 0.02;
  return prm;
}

// ---- every PrIM app, natively and under vPIM, must be exact ------------

class PrimAppSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(PrimAppSweep, NativeResultMatchesCpu) {
  test::TestRig rig(test::small_machine());
  auto app = make_app(GetParam());
  const AppResult res = app->run(rig.native, small_params());
  EXPECT_TRUE(res.correct) << res.app;
  EXPECT_GT(res.total(), 0u);
}

TEST_P(PrimAppSweep, VpimResultMatchesCpu) {
  core::Host host(test::small_machine(), CostModel{}, fast_manager());
  core::VpimVm vm(host, {.name = "prim-vm"}, 1);
  core::GuestPlatform platform(vm);
  auto app = make_app(GetParam());
  const AppResult res = app->run(platform, small_params());
  EXPECT_TRUE(res.correct) << res.app;
}

TEST_P(PrimAppSweep, VpimMultiRankMatchesCpu) {
  core::Host host(test::small_machine(), CostModel{}, fast_manager());
  core::VpimVm vm(host, {.name = "prim-vm2"}, 2);
  core::GuestPlatform platform(vm);
  auto app = make_app(GetParam());
  const AppResult res = app->run(platform, small_params(16));
  EXPECT_TRUE(res.correct) << res.app;
}

TEST_P(PrimAppSweep, VpimNoSlowerConfigBreaksCorrectness) {
  // The unoptimized vPIM-rust data path must still be *correct*.
  core::Host host(test::small_machine(), CostModel{}, fast_manager());
  core::VpimVm vm(host, {.name = "rust-vm"}, 1, core::VpimConfig::rust());
  core::GuestPlatform platform(vm);
  auto app = make_app(GetParam());
  const AppResult res = app->run(platform, small_params());
  EXPECT_TRUE(res.correct) << res.app;
}

INSTANTIATE_TEST_SUITE_P(AllApps, PrimAppSweep,
                         ::testing::ValuesIn(app_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(PrimSuite, RegistryIsComplete) {
  EXPECT_EQ(app_names().size(), 16u);  // Table 1
  for (const auto& name : app_names()) {
    EXPECT_NO_THROW((void)make_app(name)) << name;
  }
  EXPECT_THROW((void)make_app("NOPE"), VpimError);
}

TEST(PrimSuite, BreakdownSegmentsPopulated) {
  test::TestRig rig(test::small_machine());
  auto app = make_app("RED");
  const AppResult res = app->run(rig.native, small_params());
  EXPECT_GT(res.breakdown[Segment::kCpuDpu], 0u);
  EXPECT_GT(res.breakdown[Segment::kDpu], 0u);
  EXPECT_GT(res.breakdown[Segment::kInterDpu], 0u);
}

TEST(PrimSuite, VpimSlowerThanNativeOnSmallTransferApps) {
  // NW is the paper's worst case: small-transfer dominated. Use a scale
  // with enough DP blocks (16x16) for the per-op costs to dominate.
  AppParams prm = small_params();
  prm.scale = 0.5;
  test::TestRig rig(test::small_machine());
  auto native_res = make_app("NW")->run(rig.native, prm);

  core::Host host(test::small_machine(), CostModel{}, fast_manager());
  core::VpimVm vm(host, {.name = "nw-vm"}, 1, core::VpimConfig::c_only());
  core::GuestPlatform platform(vm);
  auto vpim_res = make_app("NW")->run(platform, prm);

  ASSERT_TRUE(native_res.correct);
  ASSERT_TRUE(vpim_res.correct);
  // Without prefetch/batching the small-transfer overhead is large.
  EXPECT_GT(static_cast<double>(vpim_res.total()),
            3.0 * static_cast<double>(native_res.total()));
}

TEST(PrimSuite, OptimizationsShrinkNwOverhead) {
  AppParams prm = small_params();
  prm.scale = 0.5;  // 16x16 DP blocks: enough small ops to batch/prefetch
  auto run_with = [&](core::VpimConfig cfg) {
    core::Host host(test::small_machine(), CostModel{}, fast_manager());
    core::VpimVm vm(host, {.name = "nw"}, 1, cfg);
    core::GuestPlatform platform(vm);
    auto res = make_app("NW")->run(platform, prm);
    EXPECT_TRUE(res.correct);
    return res.total();
  };
  const SimNs plain = run_with(core::VpimConfig::c_only());
  const SimNs optimized = run_with(core::VpimConfig::with_prefetch_batching());
  EXPECT_LT(optimized, plain);
  // At this reduced test scale the common launch/poll time dilutes the
  // gain; the full-scale bench (fig14) reproduces the paper's 10.8x.
  EXPECT_GT(static_cast<double>(plain) / static_cast<double>(optimized),
            1.4);
}

// ------------------------------------------------------- microbenchmarks

TEST(Checksum, NativeAndVpimAgree) {
  ChecksumParams prm;
  prm.nr_dpus = 8;
  prm.file_bytes = 2 * kMiB;

  test::TestRig rig(test::small_machine());
  auto native = run_checksum(rig.native, prm);
  EXPECT_TRUE(native.correct);
  EXPECT_EQ(native.write_ops, 1u);  // one broadcast
  EXPECT_EQ(native.read_ops, prm.nr_dpus);
  EXPECT_GT(native.ci_ops, 2u);

  core::Host host(test::small_machine(), CostModel{}, fast_manager());
  core::VpimVm vm(host, {.name = "ck-vm"}, 1);
  core::GuestPlatform platform(vm);
  auto virt = run_checksum(platform, prm);
  EXPECT_TRUE(virt.correct);
  EXPECT_GT(virt.total, native.total);
}

TEST(Checksum, OverheadShrinksWithDataSize) {
  auto overhead_at = [&](std::uint64_t bytes) {
    ChecksumParams prm;
    prm.nr_dpus = 8;
    prm.file_bytes = bytes;
    test::TestRig rig(test::small_machine());
    auto native = run_checksum(rig.native, prm);
    core::Host host(test::small_machine(), CostModel{}, fast_manager());
    core::VpimVm vm(host, {.name = "ck"}, 1);
    core::GuestPlatform platform(vm);
    auto virt = run_checksum(platform, prm);
    return static_cast<double>(virt.total) /
           static_cast<double>(native.total);
  };
  // Fig 9c: relative overhead decreases as the transfer grows.
  EXPECT_GT(overhead_at(512 * kKiB), overhead_at(8 * kMiB));
}

TEST(IndexSearch, NativeAndVpimAgree) {
  IndexSearchParams prm;
  prm.nr_dpus = 8;
  prm.nr_documents = 200;
  prm.nr_queries = 64;
  prm.batch_size = 32;
  prm.avg_doc_words = 300;

  test::TestRig rig(test::small_machine());
  auto native = run_index_search(rig.native, prm);
  EXPECT_TRUE(native.correct);
  EXPECT_GT(native.matches, 0u);

  core::Host host(test::small_machine(), CostModel{}, fast_manager());
  core::VpimVm vm(host, {.name = "is-vm"}, 1);
  core::GuestPlatform platform(vm);
  auto virt = run_index_search(platform, prm);
  EXPECT_TRUE(virt.correct);
  EXPECT_EQ(virt.matches, native.matches);
  EXPECT_GT(virt.total, native.total);
}

TEST(IndexSearch, SingleDpuWorks) {
  IndexSearchParams prm;
  prm.nr_dpus = 1;
  prm.nr_documents = 50;
  prm.nr_queries = 16;
  prm.batch_size = 16;
  prm.avg_doc_words = 100;
  test::TestRig rig(test::small_machine());
  auto res = run_index_search(rig.native, prm);
  EXPECT_TRUE(res.correct);
}

}  // namespace
}  // namespace vpim::prim
