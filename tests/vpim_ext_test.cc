// Tests for the extension features: virtio device lifecycle, vhost-style
// transitions (§7 future work), and dynamic rank migration (§3.3).
#include <gtest/gtest.h>

#include <cstring>

#include "tests/test_kernels.h"
#include "tests/testutil.h"
#include "virtio/device_state.h"
#include "vpim/guest_platform.h"
#include "vpim/host.h"
#include "vpim/vpim_vm.h"

namespace vpim::core {
namespace {

ManagerConfig fast_manager() {
  ManagerConfig cfg;
  cfg.retry_wait_ns = 1 * kMs;
  cfg.max_attempts = 2;
  return cfg;
}

// ------------------------------------------------------ device lifecycle

TEST(DeviceState, HappyPathNegotiation) {
  virtio::DeviceState state(0);
  EXPECT_FALSE(state.driver_ok());
  state.write_status(virtio::kStatusAcknowledge);
  state.write_status(virtio::kStatusAcknowledge | virtio::kStatusDriver);
  state.write_driver_features(0);
  state.write_status(virtio::kStatusAcknowledge | virtio::kStatusDriver |
                     virtio::kStatusFeaturesOk);
  state.write_status(virtio::kStatusAcknowledge | virtio::kStatusDriver |
                     virtio::kStatusFeaturesOk | virtio::kStatusDriverOk);
  EXPECT_TRUE(state.driver_ok());
  EXPECT_EQ(state.negotiated_features(), 0u);
}

TEST(DeviceState, OutOfOrderTransitionsRejected) {
  virtio::DeviceState state(0);
  // DRIVER before ACKNOWLEDGE.
  EXPECT_THROW(state.write_status(virtio::kStatusDriver), VpimError);
  state.reset();
  // FEATURES_OK before writing features.
  state.write_status(virtio::kStatusAcknowledge);
  state.write_status(virtio::kStatusAcknowledge | virtio::kStatusDriver);
  EXPECT_THROW(
      state.write_status(virtio::kStatusAcknowledge |
                         virtio::kStatusDriver |
                         virtio::kStatusFeaturesOk),
      VpimError);
  // Removing bits is not allowed.
  EXPECT_THROW(state.write_status(virtio::kStatusAcknowledge), VpimError);
}

TEST(DeviceState, UnofferedFeaturesFailTheDevice) {
  virtio::DeviceState state(0);  // PIM offers no feature bits
  state.write_status(virtio::kStatusAcknowledge);
  state.write_status(virtio::kStatusAcknowledge | virtio::kStatusDriver);
  state.write_driver_features(0x4);  // driver asks for something bogus
  EXPECT_THROW(
      state.write_status(virtio::kStatusAcknowledge |
                         virtio::kStatusDriver |
                         virtio::kStatusFeaturesOk),
      VpimError);
  EXPECT_EQ(state.status() & virtio::kStatusFailed, virtio::kStatusFailed);
  // FAILED sticks until a reset.
  EXPECT_THROW(state.write_status(virtio::kStatusAcknowledge), VpimError);
  state.reset();
  EXPECT_EQ(state.status(), 0);
}

TEST(DeviceState, NotifyBeforeDriverOkRejected) {
  test::TestRig unused(test::small_machine());
  Host host(test::small_machine(), CostModel{}, fast_manager());
  VpimVm vm(host, {.name = "lifecycle"}, 1);
  // Poke the backend directly, bypassing the frontend's init dance.
  EXPECT_THROW(vm.device(0).backend.handle_transferq(), VpimError);
  // After a proper open, notifications flow.
  ASSERT_TRUE(vm.device(0).frontend.open());
  EXPECT_NO_THROW(vm.device(0).backend.handle_transferq());
}

// ----------------------------------------------------------------- vhost

TEST(Vhost, CutsTransitionCostOnSmallOps) {
  auto run = [&](VpimConfig cfg) {
    Host host(test::small_machine(), CostModel{}, fast_manager());
    VpimVm vm(host, {.name = "vhost"}, 1, cfg);
    Frontend& fe = vm.device(0).frontend;
    EXPECT_TRUE(fe.open());
    auto buf = vm.vmm().memory().alloc(4 * kKiB);
    const SimNs t0 = host.clock.now();
    // Small-op workload: CI status reads are pure round trips.
    for (int i = 0; i < 100; ++i) (void)fe.ci_running_mask();
    driver::TransferMatrix w;
    w.entries.push_back({0, 0, buf.data(), buf.size()});
    fe.write_to_rank(w);
    return host.clock.now() - t0;
  };
  const SimNs classic = run(VpimConfig::full());
  const SimNs vhost = run(VpimConfig::vhost());
  EXPECT_LT(vhost, classic);
  // Round trip drops from ~35 us to ~9 us: better than 2x on this mix.
  EXPECT_GT(static_cast<double>(classic) / static_cast<double>(vhost),
            2.0);
}

TEST(Vhost, ResultsStayCorrect) {
  Host host(test::small_machine(), CostModel{}, fast_manager());
  VpimVm vm(host, {.name = "vhost-app"}, 1, VpimConfig::vhost());
  GuestPlatform platform(vm);
  auto [zeros, expected] = test::run_count_zeros(platform, 8, 4096, 5);
  EXPECT_EQ(zeros, expected);
}

// ------------------------------------------------------- rank migration

TEST(Migration, ContentSurvivesAndOldRankRecycles) {
  Host host(test::small_machine(), CostModel{}, fast_manager());
  VpimVm vm(host, {.name = "migrator"}, 1);
  Frontend& fe = vm.device(0).frontend;
  ASSERT_TRUE(fe.open());
  const std::uint32_t old_rank = vm.device(0).backend.rank_index();

  auto buf = vm.vmm().memory().alloc(64 * kKiB);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::uint8_t>(i * 13);
  }
  driver::TransferMatrix w;
  w.entries.push_back({2, 4096, buf.data(), buf.size()});
  fe.write_to_rank(w);

  const SimNs t0 = host.clock.now();
  ASSERT_TRUE(fe.migrate());
  const std::uint32_t new_rank = vm.device(0).backend.rank_index();
  EXPECT_NE(new_rank, old_rank);
  // Migration pays the manager round trip plus the rank-to-rank copy.
  EXPECT_GT(host.clock.now() - t0, host.cost.manager_alloc_rt_ns);

  // The device still serves the same data, now from the new rank.
  auto out = vm.vmm().memory().alloc(buf.size());
  driver::TransferMatrix r;
  r.direction = driver::XferDirection::kFromRank;
  r.entries.push_back({2, 4096, out.data(), out.size()});
  fe.read_from_rank(r);
  EXPECT_TRUE(std::memcmp(out.data(), buf.data(), buf.size()) == 0);

  // The old rank was released; the observer reclaims and erases it.
  EXPECT_FALSE(host.drv.is_mapped(old_rank));
  host.manager.observe();
  host.manager.observe();
  EXPECT_EQ(host.manager.state(old_rank), RankState::kNaav);
  std::vector<std::uint8_t> probe(16, 1);
  host.machine.rank(old_rank).mram(2).read(4096, probe);
  for (auto b : probe) EXPECT_EQ(b, 0);  // no residual data (R2)
}

TEST(Migration, LoadedProgramSurvives) {
  test::register_count_zeros();
  Host host(test::small_machine(), CostModel{}, fast_manager());
  VpimVm vm(host, {.name = "migrator2"}, 1);
  Frontend& fe = vm.device(0).frontend;
  ASSERT_TRUE(fe.open());

  fe.ci_load("test_count_zeros");
  auto buf = vm.vmm().memory().alloc(16 * kKiB);
  std::memset(buf.data(), 0, buf.size());  // all zeros -> count = n
  driver::TransferMatrix w;
  w.entries.push_back({0, 0, buf.data(), buf.size()});
  fe.write_to_rank(w);
  std::uint32_t ps = 16 * kKiB;
  fe.ci_copy_to_symbol(0, "partition_size", 0, test::bytes_u32(ps));

  ASSERT_TRUE(fe.migrate());

  // Launch *after* migration: binary and symbols must have moved too.
  fe.ci_launch(0b1, 16);
  while (fe.ci_running_mask() != 0) host.clock.advance(100 * kUs);
  std::uint32_t count = 0;
  fe.ci_copy_from_symbol(0, "zero_count", 0, test::bytes_u32(count));
  EXPECT_EQ(count, 16 * kKiB / 4);
}

TEST(Migration, FailsCleanlyWhenMachineFull) {
  Host host(test::small_machine(), CostModel{}, fast_manager());
  VpimVm vm(host, {.name = "full"}, 2);
  ASSERT_TRUE(vm.device(0).frontend.open());
  ASSERT_TRUE(vm.device(1).frontend.open());  // both ranks taken
  const std::uint32_t rank_before = vm.device(0).backend.rank_index();
  EXPECT_FALSE(vm.device(0).frontend.migrate());
  // Still bound to the original rank and fully usable.
  EXPECT_EQ(vm.device(0).backend.rank_index(), rank_before);
  auto buf = vm.vmm().memory().alloc(4096);
  driver::TransferMatrix w;
  w.entries.push_back({0, 0, buf.data(), buf.size()});
  EXPECT_NO_THROW(vm.device(0).frontend.write_to_rank(w));
}

// ----------------------------------------------- control-queue statuses
//
// State errors on the control queue (suspend twice, resume without a
// suspension, operations on an unbound device, unknown opcodes) must
// complete with a typed WireResponse status, never abort the host.

std::int32_t control_status(VupmemDevice& dev, guest::GuestMemory& mem,
                            std::uint32_t ci_op) {
  auto req_buf = mem.alloc(sizeof(WireRequest));
  auto resp_buf = mem.alloc(sizeof(WireResponse));
  WireRequest req;
  req.ci_op = ci_op;
  std::memcpy(req_buf.data(), &req, sizeof(req));
  std::memset(resp_buf.data(), 0xAA, resp_buf.size());
  const virtio::DescBuffer chain[] = {
      {mem.gpa_of(req_buf.data()), sizeof(WireRequest), false},
      {mem.gpa_of(resp_buf.data()), sizeof(WireResponse), true}};
  const std::uint16_t free_before = dev.controlq.free_descriptors();
  dev.controlq.submit(chain);
  dev.backend.handle_controlq();
  EXPECT_TRUE(dev.controlq.poll_used().has_value());
  EXPECT_EQ(dev.controlq.free_descriptors(), free_before);
  WireResponse resp;
  std::memcpy(&resp, resp_buf.data(), sizeof(resp));
  return resp.status;
}

TEST(ControlStatus, SuspendResumeStateErrors) {
  using virtio::PimStatus;
  Host host(test::small_machine(), CostModel{}, fast_manager());
  VpimVm vm(host, {.name = "ctlstate"}, 1);
  VupmemDevice& dev = vm.device(0);
  guest::GuestMemory& mem = vm.vmm().memory();
  ASSERT_TRUE(dev.frontend.open());
  const auto op = [](CiOp o) { return static_cast<std::uint32_t>(o); };

  // Resume with nothing suspended is a state error.
  EXPECT_EQ(control_status(dev, mem, op(CiOp::kResumeRank)),
            static_cast<std::int32_t>(PimStatus::kBadRequest));

  // Suspend succeeds once, then the second attempt is rejected.
  EXPECT_EQ(control_status(dev, mem, op(CiOp::kSuspendRank)),
            static_cast<std::int32_t>(PimStatus::kOk));
  EXPECT_EQ(control_status(dev, mem, op(CiOp::kSuspendRank)),
            static_cast<std::int32_t>(PimStatus::kBadRequest));

  // Resume restores the binding; the device works again.
  EXPECT_EQ(control_status(dev, mem, op(CiOp::kResumeRank)),
            static_cast<std::int32_t>(PimStatus::kOk));
  auto buf = mem.alloc(4096);
  driver::TransferMatrix w;
  w.entries.push_back({0, 0, buf.data(), buf.size()});
  EXPECT_NO_THROW(dev.frontend.write_to_rank(w));

  // Unknown control opcode.
  EXPECT_EQ(control_status(dev, mem, 1234),
            static_cast<std::int32_t>(PimStatus::kUnsupported));

  // After a release, suspend and migrate report the unbound state.
  EXPECT_EQ(control_status(dev, mem, op(CiOp::kReleaseRank)),
            static_cast<std::int32_t>(PimStatus::kOk));
  EXPECT_EQ(control_status(dev, mem, op(CiOp::kSuspendRank)),
            static_cast<std::int32_t>(PimStatus::kUnbound));
  EXPECT_EQ(control_status(dev, mem, op(CiOp::kMigrateRank)),
            static_cast<std::int32_t>(PimStatus::kUnbound));
}

TEST(ControlStatus, BindReportsNoCapacityWhenMachineFull) {
  using virtio::PimStatus;
  Host host(test::small_machine(), CostModel{}, fast_manager());
  VpimVm vm(host, {.name = "ctlfull"}, 2);
  ASSERT_TRUE(vm.device(0).frontend.open());
  ASSERT_TRUE(vm.device(1).frontend.open());  // both ranks taken
  guest::GuestMemory& mem = vm.vmm().memory();
  // A raw migrate request on a full machine completes with kNoCapacity —
  // the same status the frontend folds into migrate()'s false return.
  EXPECT_EQ(control_status(
                vm.device(0), mem,
                static_cast<std::uint32_t>(CiOp::kMigrateRank)),
            static_cast<std::int32_t>(PimStatus::kNoCapacity));
}

TEST(ControlStatus, FrontendSurfacesTypedErrors) {
  Host host(test::small_machine(), CostModel{}, fast_manager());
  VpimVm vm(host, {.name = "typed"}, 1);
  Frontend& fe = vm.device(0).frontend;
  ASSERT_TRUE(fe.open());
  try {
    fe.ci_load("no_such_kernel_registered");
    FAIL() << "expected VpimStatusError";
  } catch (const VpimStatusError& e) {
    EXPECT_EQ(e.status(),
              static_cast<std::int32_t>(virtio::PimStatus::kBadRequest));
  }
}

}  // namespace
}  // namespace vpim::core
