#include <gtest/gtest.h>

#include "common/breakdown.h"
#include "common/cost_model.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "common/stats.h"

namespace vpim {
namespace {

TEST(SimClock, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.advance(5);
  clock.advance(7);
  EXPECT_EQ(clock.now(), 12u);
}

TEST(SimClock, ParallelTakesMax) {
  SimClock clock;
  clock.advance(100);
  std::vector<std::function<void()>> branches = {
      [&] { clock.advance(30); },
      [&] { clock.advance(80); },
      [&] { clock.advance(10); },
  };
  auto durations = clock.run_parallel(branches);
  EXPECT_EQ(clock.now(), 180u);
  ASSERT_EQ(durations.size(), 3u);
  EXPECT_EQ(durations[0], 30u);
  EXPECT_EQ(durations[1], 80u);
  EXPECT_EQ(durations[2], 10u);
}

TEST(SimClock, NestedParallelComposes) {
  SimClock clock;
  std::vector<std::function<void()>> inner = {
      [&] { clock.advance(5); },
      [&] { clock.advance(9); },
  };
  std::vector<std::function<void()>> outer = {
      [&] { clock.run_parallel(inner); },  // 9
      [&] { clock.advance(4); },
  };
  clock.run_parallel(outer);
  EXPECT_EQ(clock.now(), 9u);
}

TEST(SimClock, ScopedTimerAccumulates) {
  SimClock clock;
  SimNs acc = 0;
  {
    ScopedTimer t(clock, acc);
    clock.advance(42);
  }
  {
    ScopedTimer t(clock, acc);
    clock.advance(8);
  }
  EXPECT_EQ(acc, 50u);
}

TEST(CostModel, BytesTime) {
  // 1 GiB at 1 GB/s should be ~1.07 virtual seconds.
  EXPECT_EQ(CostModel::bytes_time(1'000'000'000, 1.0), 1'000'000'000u);
  EXPECT_EQ(CostModel::bytes_time(500, 0.5), 1000u);
}

TEST(CostModel, DpuCyclesTime) {
  CostModel cost;
  cost.dpu_hz = 350e6;
  // 350 cycles at 350 MHz = 1 us.
  EXPECT_EQ(cost.dpu_cycles_time(350), 1000u);
}

TEST(Breakdown, SegmentsAccumulate) {
  SimClock clock;
  TimeBreakdown bd;
  {
    SegmentScope s(clock, bd, Segment::kCpuDpu);
    clock.advance(10);
  }
  {
    SegmentScope s(clock, bd, Segment::kDpu);
    clock.advance(20);
  }
  EXPECT_EQ(bd[Segment::kCpuDpu], 10u);
  EXPECT_EQ(bd[Segment::kDpu], 20u);
  EXPECT_EQ(bd.total(), 30u);
}

TEST(Breakdown, OpBreakdownCounts) {
  OpBreakdown ops;
  ops.add(RankOp::kCi, 100);
  ops.add(RankOp::kCi, 50);
  ops.add(RankOp::kWriteToRank, 500);
  EXPECT_EQ(ops.count(RankOp::kCi), 2u);
  EXPECT_EQ(ops.time(RankOp::kCi), 150u);
  EXPECT_EQ(ops.count(RankOp::kReadFromRank), 0u);
}

TEST(Stats, MeanStddevPercentile) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_NEAR(stddev(xs), 1.5811, 1e-3);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
}

TEST(Stats, Geomean) {
  std::vector<double> xs = {1.0, 4.0};
  EXPECT_DOUBLE_EQ(geomean(xs), 2.0);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, FillBytesCoversBuffer) {
  Rng rng(7);
  std::vector<std::uint8_t> buf(1001, 0);
  rng.fill_bytes(buf.data(), buf.size());
  int nonzero = 0;
  for (auto b : buf) nonzero += (b != 0);
  EXPECT_GT(nonzero, 900);  // overwhelmingly likely for random bytes
}

TEST(Rng, ZipfSkewsLow) {
  Rng rng(3);
  int low = 0;
  for (int i = 0; i < 1000; ++i) {
    if (rng.zipf(1000, 1.0) < 10) ++low;
  }
  // Zipf(s=1) puts a large share of mass on the first few ranks.
  EXPECT_GT(low, 200);
}

}  // namespace
}  // namespace vpim
