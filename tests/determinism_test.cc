// Host-parallelism determinism suite: the hard requirement of the
// thread-pooled execution engine is that VPIM_THREADS must be invisible to
// everything except wall-clock time. These tests run real workloads through
// the full vPIM path (guest SDK -> frontend -> virtio -> backend -> rank)
// at pool sizes 1 / 4 / hardware_concurrency and require byte-identical
// results, identical virtual-time breakdowns, and identical trace logs.
// Also pins the interleave dispatch (AVX2 vs portable) to bit-exactness.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <random>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/obs/trace.h"
#include "common/thread_pool.h"
#include "prim/app.h"
#include "prim/micro.h"
#include "tests/testutil.h"
#include "upmem/interleave.h"
#include "vpim/guest_platform.h"
#include "vpim/host.h"
#include "vpim/vpim_vm.h"

namespace vpim {
namespace {

core::ManagerConfig fast_manager() {
  core::ManagerConfig cfg;
  cfg.retry_wait_ns = 1 * kMs;
  cfg.max_attempts = 2;
  return cfg;
}

std::vector<unsigned> thread_sweep() {
  std::vector<unsigned> sweep = {1, 4};
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  if (hw != 1 && hw != 4) sweep.push_back(hw);
  return sweep;
}

// Everything observable about a run except wall-clock time.
struct Capture {
  bool correct = false;
  std::array<SimNs, 4> segments{};        // TimeBreakdown
  std::array<SimNs, 3> op_time{};         // DeviceStats.ops
  std::array<std::uint64_t, 3> op_count{};
  std::array<SimNs, 5> step_time{};       // DeviceStats.wsteps
  SimNs clock_end = 0;
  std::string trace_csv;      // full span stream, in completion order
  std::string span_digest;    // one-line-per-span digest (ids, causality)
  std::string metrics_text;   // full Prometheus snapshot
};

void expect_identical(const Capture& base, const Capture& got,
                      unsigned threads) {
  EXPECT_EQ(base.correct, got.correct) << "threads=" << threads;
  EXPECT_EQ(base.segments, got.segments) << "threads=" << threads;
  EXPECT_EQ(base.op_time, got.op_time) << "threads=" << threads;
  EXPECT_EQ(base.op_count, got.op_count) << "threads=" << threads;
  EXPECT_EQ(base.step_time, got.step_time) << "threads=" << threads;
  EXPECT_EQ(base.clock_end, got.clock_end) << "threads=" << threads;
  EXPECT_EQ(base.trace_csv, got.trace_csv) << "threads=" << threads;
  EXPECT_EQ(base.span_digest, got.span_digest) << "threads=" << threads;
  EXPECT_EQ(base.metrics_text, got.metrics_text) << "threads=" << threads;
}

class DeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override { original_ = ThreadPool::instance().size(); }
  void TearDown() override { ThreadPool::instance().resize(original_); }
  unsigned original_ = 1;
};

Capture run_prim_app(const std::string& app, unsigned threads) {
  ThreadPool::instance().resize(threads);
  core::Host host(test::small_machine(), CostModel{}, fast_manager());
  core::VpimVm vm(host, {.name = "det-vm"}, 1);
  core::GuestPlatform platform(vm);
  obs::Tracer tracer;
  host.attach_tracer(&tracer);

  prim::AppParams prm;
  prm.nr_dpus = 8;
  prm.scale = 0.02;
  const prim::AppResult res = prim::make_app(app)->run(platform, prm);

  Capture cap;
  cap.correct = res.correct;
  cap.segments = res.breakdown.segment;
  const core::DeviceStats& stats = vm.device(0).stats;
  cap.op_time = stats.ops.op_time;
  cap.op_count = stats.ops.op_count;
  cap.step_time = stats.wsteps.step_time;
  cap.clock_end = host.clock.now();
  std::ostringstream csv;
  tracer.dump_csv(csv);
  cap.trace_csv = csv.str();
  cap.span_digest = tracer.digest();
  cap.metrics_text = host.obs.metrics.prometheus_text();
  return cap;
}

Capture run_checksum_app(unsigned threads) {
  ThreadPool::instance().resize(threads);
  core::Host host(test::small_machine(), CostModel{}, fast_manager());
  core::VpimVm vm(host, {.name = "det-cs"}, 1);
  core::GuestPlatform platform(vm);
  obs::Tracer tracer;
  host.attach_tracer(&tracer);

  prim::ChecksumParams prm;
  prm.nr_dpus = 8;
  prm.file_bytes = 512 * kKiB;
  const prim::ChecksumResult res = prim::run_checksum(platform, prm);

  Capture cap;
  cap.correct = res.correct;
  cap.segments = {res.total, 0, 0, 0};
  const core::DeviceStats& stats = vm.device(0).stats;
  cap.op_time = stats.ops.op_time;
  cap.op_count = stats.ops.op_count;
  cap.step_time = stats.wsteps.step_time;
  cap.clock_end = host.clock.now();
  std::ostringstream csv;
  tracer.dump_csv(csv);
  cap.trace_csv = csv.str();
  cap.span_digest = tracer.digest();
  cap.metrics_text = host.obs.metrics.prometheus_text();
  return cap;
}

TEST_F(DeterminismTest, ChecksumIsThreadCountInvariant) {
  const Capture base = run_checksum_app(1);
  EXPECT_TRUE(base.correct);
  EXPECT_GT(base.trace_csv.size(), 0u);
  EXPECT_GT(base.span_digest.size(), 0u);
  EXPECT_GT(base.metrics_text.size(), 0u);
  for (unsigned t : thread_sweep()) {
    if (t == 1) continue;
    expect_identical(base, run_checksum_app(t), t);
  }
}

class PrimDeterminism : public DeterminismTest,
                        public ::testing::WithParamInterface<std::string> {};

TEST_P(PrimDeterminism, FullVpimPathIsThreadCountInvariant) {
  const Capture base = run_prim_app(GetParam(), 1);
  EXPECT_TRUE(base.correct);
  for (unsigned t : thread_sweep()) {
    if (t == 1) continue;
    expect_identical(base, run_prim_app(GetParam(), t), t);
  }
}

// NW is the transfer-bound app (boundary exchanges stress the parallel
// data path); RED reduces across DPUs (stresses the launch fan-out).
INSTANTIATE_TEST_SUITE_P(Apps, PrimDeterminism,
                         ::testing::Values("NW", "RED"));

// ---- async SQ/CQ pipeline (ISSUE 7) -------------------------------------

// A write pass and a read pass of small matrices through the frontend's
// async API: the whole pipeline — staging, doorbell coalescing, batched
// backend drain, completion reaping — must be bit-identical at any
// VPIM_THREADS for every queue depth.
Capture run_async_pipeline(unsigned threads, std::uint32_t depth) {
  ThreadPool::instance().resize(threads);
  core::Host host(test::small_machine(), CostModel{}, fast_manager());
  core::VpimConfig config = core::VpimConfig::full();
  config.queue_depth = depth;
  core::VpimVm vm(host, {.name = "det-sqcq"}, 1, config);
  obs::Tracer tracer;
  host.attach_tracer(&tracer);

  core::Frontend& fe = vm.device(0).frontend;
  Capture cap;
  cap.correct = fe.open();
  if (cap.correct) {
    constexpr std::uint32_t kRequests = 48;
    constexpr std::uint32_t kEntries = 2;
    constexpr std::uint64_t kBytes = 256;
    const std::uint32_t nr_dpus = fe.nr_dpus();
    std::vector<std::span<std::uint8_t>> wbufs(kRequests);
    std::vector<std::span<std::uint8_t>> rbufs(kRequests);
    auto matrix_for = [&](std::uint32_t r, std::span<std::uint8_t> buf,
                          driver::XferDirection dir) {
      driver::TransferMatrix m;
      m.direction = dir;
      for (std::uint32_t e = 0; e < kEntries; ++e) {
        const std::uint32_t linear = r * kEntries + e;
        m.entries.push_back({linear % nr_dpus,
                             (linear / nr_dpus) * kBytes,
                             buf.data() + std::uint64_t{e} * kBytes,
                             kBytes});
      }
      return m;
    };
    for (std::uint32_t r = 0; r < kRequests; ++r) {
      wbufs[r] = vm.vmm().memory().alloc(kEntries * kBytes);
      rbufs[r] = vm.vmm().memory().alloc(kEntries * kBytes);
      for (std::uint64_t i = 0; i < kEntries * kBytes; ++i) {
        wbufs[r][i] = static_cast<std::uint8_t>(r * 37 + i * 11);
      }
      fe.submit_write(matrix_for(r, wbufs[r],
                                 driver::XferDirection::kToRank));
    }
    std::size_t reaped = 0;
    while (reaped < kRequests) {
      const auto batch = fe.poll_completions();
      if (batch.empty()) break;
      reaped += batch.size();
    }
    cap.correct = reaped == kRequests;
    for (std::uint32_t r = 0; r < kRequests; ++r) {
      fe.submit_read(matrix_for(r, rbufs[r],
                                driver::XferDirection::kFromRank));
    }
    reaped = 0;
    while (reaped < kRequests) {
      const auto batch = fe.poll_completions();
      if (batch.empty()) break;
      for (const core::Frontend::Completion& c : batch) {
        cap.correct = cap.correct && c.status == 0;
      }
      reaped += batch.size();
    }
    cap.correct = cap.correct && reaped == kRequests;
    for (std::uint32_t r = 0; cap.correct && r < kRequests; ++r) {
      cap.correct = std::equal(rbufs[r].begin(), rbufs[r].end(),
                               wbufs[r].begin());
    }
    fe.close();
  }

  const core::DeviceStats& stats = vm.device(0).stats;
  cap.op_time = stats.ops.op_time;
  cap.op_count = stats.ops.op_count;
  cap.step_time = stats.wsteps.step_time;
  cap.clock_end = host.clock.now();
  std::ostringstream csv;
  tracer.dump_csv(csv);
  cap.trace_csv = csv.str();
  cap.span_digest = tracer.digest();
  cap.metrics_text = host.obs.metrics.prometheus_text();
  return cap;
}

class PipelineDeterminism : public DeterminismTest,
                            public ::testing::WithParamInterface<int> {};

TEST_P(PipelineDeterminism, AsyncPipelineIsThreadCountInvariant) {
  const auto depth = static_cast<std::uint32_t>(GetParam());
  const Capture base = run_async_pipeline(1, depth);
  EXPECT_TRUE(base.correct);
  EXPECT_GT(base.span_digest.size(), 0u);
  for (unsigned t : thread_sweep()) {
    if (t == 1) continue;
    expect_identical(base, run_async_pipeline(t, depth), t);
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, PipelineDeterminism,
                         ::testing::Values(1, 2, 8));

// ---- interleave dispatch ------------------------------------------------

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

TEST(InterleaveDispatch, WideMatchesScalarAndNaive) {
  // Whatever interleave_wide dispatched to (AVX2 on capable hosts, the
  // portable transpose otherwise) must be bit-exact against both the
  // scalar wide path and the naive reference, including ragged tails.
  for (std::size_t n : {8u, 64u, 256u, 2048u, 2048u + 64u, 2048u + 8u,
                        64u * 1024u}) {
    const auto src = random_bytes(n, 0xC0FFEE ^ n);
    std::vector<std::uint8_t> naive(n), scalar(n), wide(n);
    upmem::interleave_naive(src, naive);
    upmem::interleave_wide_scalar(src, scalar);
    upmem::interleave_wide(src, wide);
    EXPECT_EQ(naive, scalar) << "n=" << n;
    EXPECT_EQ(naive, wide) << "n=" << n << " kernel="
                           << upmem::wide_kernel_name();

    std::vector<std::uint8_t> back(n);
    upmem::deinterleave_wide(wide, back);
    EXPECT_EQ(back, src) << "n=" << n;
    upmem::deinterleave_wide_scalar(scalar, back);
    EXPECT_EQ(back, src) << "n=" << n;
  }
}

TEST(InterleaveDispatch, ReportsAKnownKernel) {
  const auto name = upmem::wide_kernel_name();
  EXPECT_TRUE(name == "avx512" || name == "avx2" || name == "scalar")
      << name;
}

}  // namespace
}  // namespace vpim
