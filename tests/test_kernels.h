// DPU kernels shared by test suites.
#pragma once

#include <cstring>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "sdk/dpu_set.h"
#include "upmem/kernel.h"

namespace vpim::test {

// Fig 2-style kernel: counts zero 32-bit words in the DPU's partition.
// Streams MRAM through a 2 KiB WRAM block like a real DPU program.
inline void register_count_zeros() {
  using upmem::DpuCtx;
  auto& registry = upmem::KernelRegistry::instance();
  if (registry.contains("test_count_zeros")) return;
  upmem::DpuKernel k;
  k.name = "test_count_zeros";
  k.symbols = {{"zero_count", 4}, {"partition_size", 4}};
  k.stages.push_back([](DpuCtx& ctx) {
    if (ctx.me() == 0) ctx.var<std::uint32_t>("zero_count") = 0;
  });
  k.stages.push_back([](DpuCtx& ctx) {
    const std::uint32_t bytes = ctx.var<std::uint32_t>("partition_size");
    const std::uint32_t n = bytes / 4;
    const std::uint32_t per = (n + ctx.nr_tasklets() - 1) / ctx.nr_tasklets();
    const std::uint32_t begin = ctx.me() * per;
    const std::uint32_t end = std::min(n, begin + per);
    if (begin >= end) return;
    constexpr std::uint32_t kBlockWords = 512;
    auto buf = ctx.mem_alloc(kBlockWords * 4);
    std::uint32_t zeros = 0;
    for (std::uint32_t w = begin; w < end; w += kBlockWords) {
      const std::uint32_t blk = std::min(kBlockWords, end - w);
      ctx.mram_read(w * 4, buf.first(blk * 4));
      for (std::uint32_t i = 0; i < blk; ++i) {
        std::int32_t v;
        std::memcpy(&v, buf.data() + i * 4, 4);
        if (v == 0) ++zeros;
      }
    }
    ctx.exec(end - begin);
    ctx.var<std::uint32_t>("zero_count") += zeros;
  });
  registry.add(std::move(k));
}

// Byte view of a u32 lvalue, for symbol copies in tests.
inline std::span<std::uint8_t> bytes_u32(std::uint32_t& v) {
  return {reinterpret_cast<std::uint8_t*>(&v), 4};
}

// Runs the count-zeros application end-to-end on any platform (native or
// guest); returns {computed, expected}. This is the Fig 2 workflow:
// alloc -> load -> distribute -> launch -> collect -> free.
inline std::pair<std::uint32_t, std::uint32_t> run_count_zeros(
    sdk::Platform& platform, std::uint32_t nr_dpus,
    std::uint32_t words_per_dpu, std::uint64_t seed) {
  register_count_zeros();
  auto set = sdk::DpuSet::allocate(platform, nr_dpus);
  set.load("test_count_zeros");

  Rng rng(seed);
  auto data = platform.alloc(
      static_cast<std::size_t>(nr_dpus) * words_per_dpu * 4);
  std::uint32_t expected = 0;
  for (std::uint64_t i = 0; i < std::uint64_t{nr_dpus} * words_per_dpu;
       ++i) {
    std::int32_t v =
        (i % 5 == 0) ? 0 : static_cast<std::int32_t>(rng.uniform(1, 1 << 30));
    std::memcpy(data.data() + i * 4, &v, 4);
    if (v == 0) ++expected;
  }

  const std::uint32_t partition_bytes = words_per_dpu * 4;
  for (std::uint32_t d = 0; d < nr_dpus; ++d) {
    set.prepare_xfer(d, data.data() + std::uint64_t{d} * partition_bytes);
  }
  set.push_xfer(driver::XferDirection::kToRank, sdk::Target::mram(0),
                partition_bytes);
  std::vector<std::uint32_t> sizes(nr_dpus, partition_bytes);
  for (std::uint32_t d = 0; d < nr_dpus; ++d) {
    set.prepare_xfer(d, reinterpret_cast<std::uint8_t*>(&sizes[d]));
  }
  set.push_xfer(driver::XferDirection::kToRank,
                sdk::Target::symbol("partition_size"), 4);

  set.launch(16);

  std::uint32_t total = 0;
  for (std::uint32_t d = 0; d < nr_dpus; ++d) {
    std::uint32_t v = 0;
    set.copy_from(d, sdk::Target::symbol("zero_count"),
                  {reinterpret_cast<std::uint8_t*>(&v), 4});
    total += v;
  }
  set.free();
  return {total, expected};
}

}  // namespace vpim::test
