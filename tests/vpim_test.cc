#include <gtest/gtest.h>

#include <cstring>

#include "tests/test_kernels.h"
#include "tests/testutil.h"
#include "vpim/guest_platform.h"
#include "vpim/host.h"
#include "vpim/vpim_vm.h"

namespace vpim::core {
namespace {

ManagerConfig fast_manager() {
  ManagerConfig cfg;
  cfg.retry_wait_ns = 1 * kMs;
  cfg.max_attempts = 2;
  return cfg;
}

struct VmRig {
  explicit VmRig(std::uint32_t nr_devices = 1,
                 VpimConfig config = VpimConfig::full(),
                 upmem::MachineConfig machine = test::small_machine())
      : host(machine, CostModel{}, fast_manager()),
        vm(host, {.name = "vm0"}, nr_devices, config),
        platform(vm) {}

  Host host;
  VpimVm vm;
  GuestPlatform platform;
};

TEST(VpimVm, BootAddsTwoMillisPerDevice) {
  Host host(test::small_machine(), CostModel{}, fast_manager());
  VpimVm plain(host, {.name = "plain"}, 0);
  VpimVm with_dev(host, {.name = "dev"}, 2);
  EXPECT_EQ(with_dev.boot_duration() - plain.boot_duration(),
            2 * host.cost.vupmem_boot_ns);  // +2 ms each
}

TEST(VpimVm, OpenBindsRankThroughManager) {
  VmRig rig;
  Frontend& fe = rig.vm.device(0).frontend;
  EXPECT_FALSE(fe.is_open());
  ASSERT_TRUE(fe.open());
  EXPECT_TRUE(fe.is_open());
  EXPECT_EQ(fe.nr_dpus(), 8u);  // small machine: 8 DPUs per rank

  const auto cfg = fe.config_space();
  EXPECT_EQ(cfg.dpu_freq_mhz, 350u);
  EXPECT_EQ(cfg.mram_bytes_per_dpu, 64 * kMiB);

  const auto rank = rig.vm.device(0).backend.rank_index();
  EXPECT_TRUE(rig.host.drv.sysfs().read(rank).in_use);
  EXPECT_EQ(rig.host.manager.state(rank), RankState::kAllo);

  fe.close();
  EXPECT_FALSE(rig.host.drv.sysfs().read(rank).in_use);
}

TEST(VpimVm, UnlinkedDeviceRejectsOperations) {
  VmRig rig;
  Frontend& fe = rig.vm.device(0).frontend;
  driver::TransferMatrix m;
  EXPECT_THROW(fe.write_to_rank(m), VpimError);
  EXPECT_THROW(fe.ci_running_mask(), VpimError);
  EXPECT_THROW((void)fe.nr_dpus(), VpimError);
}

TEST(VpimVm, CountZerosMatchesNativeExactly) {
  VmRig rig;
  auto [virt, virt_expected] =
      test::run_count_zeros(rig.platform, 8, 8192, 99);
  EXPECT_EQ(virt, virt_expected);

  test::TestRig native_rig(test::small_machine());
  auto [nat, nat_expected] =
      test::run_count_zeros(native_rig.native, 8, 8192, 99);
  EXPECT_EQ(nat, nat_expected);
  EXPECT_EQ(virt, nat);  // same seed, same partitioning, same answer
}

TEST(VpimVm, VirtualizationCostsMoreThanNative) {
  VmRig rig;
  const SimNs v0 = rig.host.clock.now();
  test::run_count_zeros(rig.platform, 8, 65536, 7);
  const SimNs virt_time = rig.host.clock.now() - v0;

  test::TestRig native_rig(test::small_machine());
  const SimNs n0 = native_rig.clock.now();
  test::run_count_zeros(native_rig.native, 8, 65536, 7);
  const SimNs native_time = native_rig.clock.now() - n0;

  EXPECT_GT(virt_time, native_time);
  // With all optimizations the overhead stays moderate (paper: 1.01-2.9x
  // on real workloads; count-zeros is launch-dominated so allow slack, but
  // it must not be catastrophic).
  EXPECT_LT(static_cast<double>(virt_time),
            5.0 * static_cast<double>(native_time) +
                static_cast<double>(rig.host.cost.manager_alloc_rt_ns));
}

TEST(VpimVm, PrefetchCacheServesSmallReads) {
  VmRig rig;
  Frontend& fe = rig.vm.device(0).frontend;
  ASSERT_TRUE(fe.open());

  // Seed DPU 0's MRAM with a pattern (through the frontend).
  auto buf = rig.vm.vmm().memory().alloc(256 * kKiB);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::uint8_t>(i * 7);
  }
  driver::TransferMatrix write;
  write.entries.push_back({0, 0, buf.data(), buf.size()});
  fe.write_to_rank(write);

  auto out = rig.vm.vmm().memory().alloc(4 * kKiB);
  auto read_at = [&](std::uint64_t offset, std::uint64_t size) {
    driver::TransferMatrix read;
    read.direction = driver::XferDirection::kFromRank;
    read.entries.push_back({0, offset, out.data(), size});
    fe.read_from_rank(read);
  };

  // First small read: miss + fill.
  read_at(0, 512);
  EXPECT_EQ(fe.stats().cache_misses, 1u);
  EXPECT_EQ(fe.stats().cache_fills, 1u);
  EXPECT_TRUE(std::memcmp(out.data(), buf.data(), 512) == 0);

  // Sequential small reads within the 64 KiB cached segment: hits, and no
  // further messages.
  const std::uint64_t notifies_before = fe.stats().notifies;
  for (std::uint64_t off = 512; off < 16 * kKiB; off += 512) {
    read_at(off, 512);
    EXPECT_TRUE(std::memcmp(out.data(), buf.data() + off, 512) == 0);
  }
  EXPECT_EQ(fe.stats().notifies, notifies_before);
  EXPECT_GT(fe.stats().cache_hits, 20u);

  // A read past the cached segment misses again.
  read_at(128 * kKiB, 512);
  EXPECT_EQ(fe.stats().cache_fills, 2u);
  EXPECT_TRUE(std::memcmp(out.data(), buf.data() + 128 * kKiB, 512) == 0);
}

TEST(VpimVm, CacheInvalidatedByWriteAndLaunch) {
  VmRig rig;
  Frontend& fe = rig.vm.device(0).frontend;
  ASSERT_TRUE(fe.open());
  test::register_count_zeros();

  auto buf = rig.vm.vmm().memory().alloc(64 * kKiB);
  std::memset(buf.data(), 0xAB, buf.size());
  driver::TransferMatrix write;
  write.entries.push_back({0, 0, buf.data(), buf.size()});
  fe.write_to_rank(write);

  auto out = rig.vm.vmm().memory().alloc(4 * kKiB);
  driver::TransferMatrix read;
  read.direction = driver::XferDirection::kFromRank;
  read.entries.push_back({0, 0, out.data(), 256});
  fe.read_from_rank(read);
  ASSERT_EQ(fe.stats().cache_fills, 1u);

  // Overwrite through the frontend: the cache must not serve stale bytes.
  std::memset(buf.data(), 0xCD, buf.size());
  fe.write_to_rank(write);
  fe.read_from_rank(read);
  EXPECT_EQ(fe.stats().cache_fills, 2u);  // refilled after invalidation
  EXPECT_EQ(out[0], 0xCD);

  // A DPU launch also invalidates.
  fe.ci_load("test_count_zeros");
  std::uint32_t ps = 0;
  fe.ci_copy_to_symbol(0, "partition_size", 0,
                       {reinterpret_cast<std::uint8_t*>(&ps), 4});
  fe.ci_launch(0b1, std::nullopt);
  while (fe.ci_running_mask() != 0) {
    rig.host.clock.advance(100 * kUs);
  }
  fe.read_from_rank(read);
  EXPECT_EQ(fe.stats().cache_fills, 3u);
}

TEST(VpimVm, BatchingAbsorbsSmallWritesUntilFlush) {
  VmRig rig;
  Frontend& fe = rig.vm.device(0).frontend;
  ASSERT_TRUE(fe.open());

  auto buf = rig.vm.vmm().memory().alloc(1 * kMiB);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::uint8_t>(i);
  }

  const std::uint64_t notifies_before = fe.stats().notifies;
  // 200 small writes of 160 B (the NW pattern) to DPU 0.
  for (int i = 0; i < 200; ++i) {
    driver::TransferMatrix w;
    w.entries.push_back({0, static_cast<std::uint64_t>(i) * 160,
                         buf.data() + i * 160, 160});
    fe.write_to_rank(w);
  }
  EXPECT_EQ(fe.stats().batched_writes, 200u);
  EXPECT_EQ(fe.stats().notifies, notifies_before);  // zero messages so far

  // A read forces the flush and must see every batched byte.
  auto out = rig.vm.vmm().memory().alloc(200 * 160);
  driver::TransferMatrix read;
  read.direction = driver::XferDirection::kFromRank;
  read.entries.push_back({0, 0, out.data(), 200 * 160});
  fe.read_from_rank(read);
  EXPECT_EQ(fe.stats().batch_flushes, 1u);
  EXPECT_TRUE(std::memcmp(out.data(), buf.data(), 200 * 160) == 0);
}

TEST(VpimVm, BatchFlushesWhenBufferFills) {
  VmRig rig;
  Frontend& fe = rig.vm.device(0).frontend;
  ASSERT_TRUE(fe.open());

  auto buf = rig.vm.vmm().memory().alloc(4 * kKiB);
  // Write far more than the 256 KiB per-DPU batch buffer in 4 KiB pieces:
  // flushes must happen along the way without any read.
  for (int i = 0; i < 100; ++i) {
    driver::TransferMatrix w;
    w.entries.push_back({0, static_cast<std::uint64_t>(i) * 4096,
                         buf.data(), 4096});
    fe.write_to_rank(w);
  }
  EXPECT_GT(fe.stats().batch_flushes, 0u);
}

TEST(VpimVm, LargeWritesBypassBatching) {
  VmRig rig;
  Frontend& fe = rig.vm.device(0).frontend;
  ASSERT_TRUE(fe.open());
  auto buf = rig.vm.vmm().memory().alloc(1 * kMiB);
  driver::TransferMatrix w;
  w.entries.push_back({0, 0, buf.data(), buf.size()});
  const std::uint64_t notifies_before = fe.stats().notifies;
  fe.write_to_rank(w);
  EXPECT_EQ(fe.stats().batched_writes, 0u);
  EXPECT_EQ(fe.stats().notifies, notifies_before + 1);
}

TEST(VpimVm, ParallelHandlingOverlapsRankOperations) {
  auto run = [&](VpimConfig cfg) {
    VmRig rig(/*nr_devices=*/2, cfg);
    Frontend& fe0 = rig.vm.device(0).frontend;
    Frontend& fe1 = rig.vm.device(1).frontend;
    EXPECT_TRUE(fe0.open());
    EXPECT_TRUE(fe1.open());
    auto buf = rig.vm.vmm().memory().alloc(8 * kMiB);

    auto write_rank = [&](Frontend& fe) {
      driver::TransferMatrix w;
      for (std::uint32_t d = 0; d < 8; ++d) {
        w.entries.push_back({d, 0, buf.data() + d * kMiB, kMiB});
      }
      fe.write_to_rank(w);
    };
    const SimNs t0 = rig.host.clock.now();
    std::vector<std::function<void()>> branches = {
        [&] { write_rank(fe0); }, [&] { write_rank(fe1); }};
    rig.host.clock.run_parallel(branches);
    return rig.host.clock.now() - t0;
  };

  const SimNs seq = run(VpimConfig::sequential());
  const SimNs par = run(VpimConfig::full());
  EXPECT_LT(par, seq);
  // Sequential handling serializes the two 8 MiB copies in the VMM; the
  // parallel version overlaps them almost fully.
  EXPECT_GT(static_cast<double>(seq) / static_cast<double>(par), 1.5);
}

TEST(VpimVm, RankExhaustionFailsCleanly) {
  // 2-rank machine: a VM with 3 devices cannot bind them all.
  VmRig rig(/*nr_devices=*/3);
  EXPECT_TRUE(rig.vm.device(0).frontend.open());
  EXPECT_TRUE(rig.vm.device(1).frontend.open());
  EXPECT_FALSE(rig.vm.device(2).frontend.open());
  EXPECT_EQ(rig.host.manager.stats().failed_requests, 1u);
}

TEST(VpimVm, RanksRecycleBetweenVms) {
  Host host(test::small_machine(), CostModel{}, fast_manager());
  {
    VpimVm vm1(host, {.name = "vm1"}, 2);
    GuestPlatform p1(vm1);
    auto [zeros, expected] = test::run_count_zeros(p1, 16, 1024, 3);
    EXPECT_EQ(zeros, expected);
    // DpuSet::free() released both devices (ranks show free in sysfs).
  }
  // The observer never witnessed vm1's mappings live, so release needs two
  // consecutive polls (the manager's grace against reclaiming ranks that
  // are allocated but not yet mapped).
  host.manager.observe();
  host.manager.observe();
  EXPECT_EQ(host.manager.stats().resets, 2u);

  VpimVm vm2(host, {.name = "vm2"}, 2);
  GuestPlatform p2(vm2);
  auto [zeros2, expected2] = test::run_count_zeros(p2, 16, 1024, 4);
  EXPECT_EQ(zeros2, expected2);
}

TEST(VpimVm, WriteStepsBreakdownRecorded) {
  VmRig rig;
  Frontend& fe = rig.vm.device(0).frontend;
  ASSERT_TRUE(fe.open());
  auto buf = rig.vm.vmm().memory().alloc(8 * kMiB);
  driver::TransferMatrix w;
  for (std::uint32_t d = 0; d < 8; ++d) {
    w.entries.push_back({d, 0, buf.data() + d * kMiB, kMiB});
  }
  fe.write_to_rank(w);

  const StepBreakdown& steps = fe.stats().wsteps;
  for (std::size_t s = 0; s < kWrankStepNames.size(); ++s) {
    EXPECT_GT(steps.step_time[s], 0u) << kWrankStepNames[s];
  }
  // T-data dominates bulk writes (Fig 13: 69-98% depending on data path).
  EXPECT_GT(static_cast<double>(steps.time(WrankStep::kTransferData)),
            0.5 * static_cast<double>(steps.total()));
}

TEST(VpimVm, MemoryOverheadIsBounded) {
  VmRig rig;
  Frontend& fe = rig.vm.device(0).frontend;
  EXPECT_EQ(fe.memory_overhead_bytes(), 0u);  // nothing before open
  ASSERT_TRUE(fe.open());
  const double per_dpu =
      static_cast<double>(fe.memory_overhead_bytes()) / 64.0;
  // Page lists (128 KiB) + cache (64 KiB) + batch (256 KiB) per DPU, plus
  // fixed staging: well under the paper's 1.37 MB/DPU bound.
  EXPECT_GT(per_dpu, 400.0 * 1024);
  EXPECT_LT(per_dpu, 1.37 * 1024 * 1024);
}

TEST(VpimVm, RustConfigSlowerThanC) {
  auto run = [&](VpimConfig cfg) {
    VmRig rig(1, cfg);
    Frontend& fe = rig.vm.device(0).frontend;
    EXPECT_TRUE(fe.open());
    auto buf = rig.vm.vmm().memory().alloc(8 * kMiB);
    driver::TransferMatrix w;
    w.entries.push_back({0, 0, buf.data(), buf.size()});
    const SimNs t0 = rig.host.clock.now();
    fe.write_to_rank(w);
    return rig.host.clock.now() - t0;
  };
  const SimNs rust = run(VpimConfig::rust());
  const SimNs c = run(VpimConfig::c_only());
  // 1.4 vs 5 GB/s data path: C is several times faster on bulk writes.
  EXPECT_GT(static_cast<double>(rust) / static_cast<double>(c), 2.0);
}

}  // namespace
}  // namespace vpim::core
