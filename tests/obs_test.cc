// Unit tests for the observability subsystem (src/common/obs/): span
// nesting and id derivation, fan-out merge ordering, histogram bucket
// edges, label-cardinality limits, and exporter golden output.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/obs/chrome_trace.h"
#include "common/obs/metrics.h"
#include "common/obs/obs.h"
#include "common/obs/trace.h"
#include "common/sim_clock.h"

namespace vpim::obs {
namespace {

TEST(Span, KindTablesAreConsistent) {
  for (std::size_t i = 0; i < kSpanKindNames.size(); ++i) {
    const auto kind = static_cast<SpanKind>(i);
    EXPECT_EQ(kind_name(kind), kSpanKindNames[i]);
    // Every kind maps to some layer and some category.
    EXPECT_LT(static_cast<std::size_t>(layer_of(kind)), kLayerNames.size());
    EXPECT_LT(static_cast<std::size_t>(category_of(kind)),
              kCategoryNames.size());
  }
  EXPECT_EQ(category_of(SpanKind::kRead), Category::kRead);
  EXPECT_EQ(category_of(SpanKind::kReadCached), Category::kRead);
  // The old prefix-matching bug: "read.fill" must NOT be a read-category
  // root; it is an internal fill message nested inside a read.
  EXPECT_EQ(category_of(SpanKind::kReadFill), Category::kInternal);
  EXPECT_EQ(layer_of(SpanKind::kDpuCompute), Layer::kRank);
  EXPECT_EQ(layer_of(SpanKind::kSerialize), Layer::kWire);
}

TEST(Tracer, IdsDeriveFromRequestSequence) {
  Tracer t;
  EXPECT_EQ(t.begin_request(), 1u);
  const SpanId a = t.begin_span(SpanKind::kWrite, 10);
  const SpanId b = t.begin_span(SpanKind::kVirtioRoundtrip, 20);
  t.end_span(30);
  t.end_span(40);
  EXPECT_EQ(a, (1u << kRequestShift) | 1u);
  EXPECT_EQ(b, (1u << kRequestShift) | 2u);

  EXPECT_EQ(t.begin_request(), 2u);
  const SpanId c = t.begin_span(SpanKind::kRead, 50);
  t.end_span(60);
  EXPECT_EQ(c, (2u << kRequestShift) | 1u);
}

TEST(Tracer, NestingRecordsParentChildAndCompletionOrder) {
  Tracer t;
  t.begin_request();
  const SpanId root = t.begin_span(SpanKind::kWrite, 0);
  const SpanId child = t.begin_span(SpanKind::kVirtioRoundtrip, 5);
  t.end_span(15);  // child completes first
  t.end_span(20);
  ASSERT_EQ(t.spans().size(), 2u);
  EXPECT_EQ(t.spans()[0].id, child);
  EXPECT_EQ(t.spans()[0].parent, root);
  EXPECT_EQ(t.spans()[0].duration, 10u);
  EXPECT_EQ(t.spans()[1].id, root);
  EXPECT_EQ(t.spans()[1].parent, 0u);  // root
  EXPECT_EQ(t.spans()[1].duration, 20u);
}

TEST(Tracer, EndSpanClampsClockRewind) {
  Tracer t;
  t.begin_request();
  t.begin_span(SpanKind::kBackendRequest, 100);
  const Span& s = t.end_span(40);  // parallel replay rewound the clock
  EXPECT_EQ(s.duration, 0u);
}

TEST(Tracer, FanoutScopeMergesInIndexOrderUnderOpenParent) {
  Tracer t;
  t.begin_request();
  const SpanId launch = t.begin_span(SpanKind::kRankLaunch, 0);
  {
    Tracer::FanoutScope fan(&t, 4);
    // Record out of index order, skipping one slot, as pool workers would.
    fan.record(2, SpanKind::kDpuCompute, 0, 30, 0, 1, 7);
    fan.record(0, SpanKind::kDpuCompute, 0, 10, 0, 1, 7);
    fan.record(3, SpanKind::kDpuCompute, 0, 40, 0, 1, 7);
  }
  t.end_span(40);
  ASSERT_EQ(t.spans().size(), 4u);
  // Children replay in index order (0, 2, 3), all parented to the launch.
  EXPECT_EQ(t.spans()[0].duration, 10u);
  EXPECT_EQ(t.spans()[1].duration, 30u);
  EXPECT_EQ(t.spans()[2].duration, 40u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(t.spans()[i].parent, launch);
    EXPECT_EQ(t.spans()[i].rank, 7u);
  }
  EXPECT_EQ(t.spans()[3].id, launch);
}

TEST(Tracer, NullTracerFastPathRecordsNothing) {
  // Every RAII helper must be a no-op against a null tracer — this is the
  // "no sink attached" production configuration.
  SimClock clock;
  {
    ScopedSpan s(nullptr, clock, SpanKind::kWrite);
    s.set_bytes(123);
    s.set_kind(SpanKind::kRead);
    s.close();
  }
  {
    RequestSpan r(nullptr, clock, SpanKind::kCiLaunch, 3);
    r.set_entries(9);
  }
  Tracer::FanoutScope fan(nullptr, 64);
  EXPECT_FALSE(fan.active());
  fan.record(0, SpanKind::kDpuCompute, 0, 1);
  fan.merge();
  // Nothing to assert against — the test passes by not crashing and by
  // the helpers never touching a tracer. Guard with a real tracer that
  // stays empty:
  Tracer t;
  EXPECT_TRUE(t.spans().empty());
  EXPECT_EQ(t.current_request(), 0u);
}

TEST(Tracer, CategoryTotalsCountOnlyRoots) {
  Tracer t;
  t.begin_request();
  t.begin_span(SpanKind::kRead, 0);
  t.record(SpanKind::kReadFill, 2, 5);  // nested internal fill
  t.end_span(10);
  EXPECT_EQ(t.total_for(Category::kRead), 10u);
  EXPECT_EQ(t.count_for(Category::kRead), 1u);
  EXPECT_EQ(t.total_for(SpanKind::kReadFill), 5u);
  // A root fill would be a bug; the category math must not see one.
  EXPECT_EQ(t.total_for(Category::kInternal), 0u);
}

TEST(Tracer, CsvGolden) {
  Tracer t;
  t.begin_request();
  t.begin_span(SpanKind::kWrite, 1500);
  t.top().tenant = t.intern("vm0/vupmem0");
  t.top().bytes = 4096;
  t.top().entries = 2;
  t.record(SpanKind::kSerialize, 1500, 250, 4096, 2);
  t.end_span(4000);
  std::ostringstream os;
  t.dump_csv(os);
  EXPECT_EQ(os.str(),
            "start_us,duration_us,kind,bytes,entries,id,parent,request,"
            "layer,rank,tenant\n"
            "1.500,0.250,wire.serialize,4096,2,65538,65537,1,wire,,\n"
            "1.500,2.500,write,4096,2,65537,0,1,frontend,,vm0/vupmem0\n");
}

TEST(Tracer, DigestIsStableAndComplete) {
  Tracer t;
  t.begin_request();
  t.begin_span(SpanKind::kCiLaunch, 0);
  t.end_span(100);
  const std::string d = t.digest();
  EXPECT_NE(d.find("ci.launch"), std::string::npos);
  EXPECT_EQ(d, t.digest());  // pure function of the stream
}

TEST(ChromeTrace, EmitsValidLanesAndEvents) {
  Tracer t;
  t.begin_request();
  t.begin_span(SpanKind::kCiLaunch, 0);
  t.begin_span(SpanKind::kRankLaunch, 10);
  t.top().rank = 3;
  t.end_span(500);
  t.end_span(600);
  std::ostringstream os;
  export_chrome_trace(t, os);
  const std::string json = os.str();
  // Chrome trace_event skeleton.
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  // Layer lane metadata and the rank lane for rank 3 (tid 103).
  EXPECT_NE(json.find("\"args\":{\"name\":\"frontend\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"tid\":103,\"name\":\"thread_name\",\"args\":"
                      "{\"name\":\"rank 3\"}"),
            std::string::npos);
  // The launch span lands in the rank lane as a complete event.
  EXPECT_NE(json.find("\"ph\":\"X\",\"pid\":1,\"tid\":103,\"name\":"
                      "\"rank.launch\""),
            std::string::npos);
  // Balanced braces/brackets — cheap structural validity check.
  std::ptrdiff_t braces = 0, brackets = 0;
  for (char c : json) {
    braces += c == '{' ? 1 : (c == '}' ? -1 : 0);
    brackets += c == '[' ? 1 : (c == ']' ? -1 : 0);
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Histogram, BucketEdges) {
  Histogram h;
  // bit_width buckets: 0 -> bucket 0; 1 -> 1; 2,3 -> 2; 4..7 -> 3; ...
  h.observe(0);
  h.observe(1);
  h.observe(2);
  h.observe(3);
  h.observe(4);
  h.observe(7);
  h.observe(8);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(3), 2u);
  EXPECT_EQ(h.bucket_count(4), 1u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 25u);
  EXPECT_EQ(Histogram::upper_bound(0), 0u);
  EXPECT_EQ(Histogram::upper_bound(1), 1u);
  EXPECT_EQ(Histogram::upper_bound(2), 3u);
  EXPECT_EQ(Histogram::upper_bound(3), 7u);
  // A value beyond the largest finite bucket lands in +Inf.
  Histogram big;
  big.observe(~std::uint64_t{0});
  EXPECT_EQ(big.bucket_count(Histogram::kBuckets), 1u);
}

TEST(Metrics, SeriesAreStableAndKeyedByLabels) {
  MetricsRegistry reg;
  Counter& a = reg.counter("vpim_test_total", {{"op", "W"}});
  Counter& b = reg.counter("vpim_test_total", {{"op", "R"}});
  a.inc(2);
  b.inc(5);
  // Same (name, labels) returns the same instrument.
  EXPECT_EQ(&reg.counter("vpim_test_total", {{"op", "W"}}), &a);
  EXPECT_EQ(a.value(), 2u);
  EXPECT_EQ(b.value(), 5u);
  EXPECT_EQ(reg.family_count(), 1u);
}

TEST(Metrics, LabelCardinalityFoldsIntoOverflowSeries) {
  MetricsRegistry reg;
  for (std::size_t i = 0; i < MetricsRegistry::kMaxSeriesPerFamily; ++i) {
    reg.counter("vpim_card_total", {{"i", std::to_string(i)}}).inc();
  }
  // Beyond the cap, every new label set shares one overflow series.
  Counter& o1 = reg.counter("vpim_card_total", {{"i", "extra-1"}});
  Counter& o2 = reg.counter("vpim_card_total", {{"i", "extra-2"}});
  EXPECT_EQ(&o1, &o2);
  o1.inc(3);
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("vpim_card_total{overflow=\"true\"} 3"),
            std::string::npos);
  // Existing series still resolve exactly.
  EXPECT_EQ(reg.counter("vpim_card_total", {{"i", "0"}}).value(), 1u);
}

TEST(Metrics, PrometheusTextGolden) {
  MetricsRegistry reg;
  reg.counter("vpim_requests_total", {{"device", "d0"}}).inc(3);
  reg.gauge("vpim_bound_ranks").set(-2);
  Histogram& h = reg.histogram("vpim_lat_ns");
  h.observe(0);
  h.observe(5);
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# TYPE vpim_requests_total counter\n"
                      "vpim_requests_total{device=\"d0\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE vpim_bound_ranks gauge\nvpim_bound_ranks -2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE vpim_lat_ns histogram\n"), std::string::npos);
  // Cumulative buckets: le="0" sees the 0 sample, le="7" both, +Inf both.
  EXPECT_NE(text.find("vpim_lat_ns_bucket{le=\"0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("vpim_lat_ns_bucket{le=\"7\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("vpim_lat_ns_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("vpim_lat_ns_sum 5\n"), std::string::npos);
  EXPECT_NE(text.find("vpim_lat_ns_count 2\n"), std::string::npos);
}

TEST(Metrics, JsonSnapshotIsBalanced) {
  MetricsRegistry reg;
  reg.counter("vpim_a_total").inc();
  reg.histogram("vpim_b_ns", {{"op", "CI"}}).observe(42);
  const std::string json = reg.json_snapshot();
  EXPECT_EQ(json.find("{\"metrics\":["), 0u);
  EXPECT_NE(json.find("\"name\":\"vpim_a_total\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos);
  std::ptrdiff_t braces = 0;
  for (char c : json) braces += c == '{' ? 1 : (c == '}' ? -1 : 0);
  EXPECT_EQ(braces, 0);
}

TEST(Metrics, CollectorsRunAtExportAndUnregister) {
  MetricsRegistry reg;
  int runs = 0;
  {
    auto handle = reg.add_collector([&](Collection& out) {
      ++runs;
      out.counter("vpim_live_total", {{"src", "stats"}}, 7);
      out.gauge("vpim_live_gauge", {}, -1);
    });
    const std::string text = reg.prometheus_text();
    EXPECT_EQ(runs, 1);
    EXPECT_NE(text.find("# TYPE vpim_live_total counter\n"
                        "vpim_live_total{src=\"stats\"} 7\n"),
              std::string::npos);
    EXPECT_NE(text.find("vpim_live_gauge -1\n"), std::string::npos);
  }
  // Handle destroyed: the collector no longer contributes.
  const std::string text = reg.prometheus_text();
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(text.find("vpim_live_total"), std::string::npos);
}

TEST(Metrics, PrometheusLabelValuesAreEscaped) {
  // Hostile label values (tenant names flow into labels): quotes,
  // backslashes, and newlines must not break the exposition format.
  MetricsRegistry reg;
  reg.counter("vpim_esc_total", {{"vm", "a\"b\\c\nd\re"}}).inc();
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("vpim_esc_total{vm=\"a\\\"b\\\\c\\nd\\re\"} 1\n"),
            std::string::npos);
  // The physical line count stays fixed: no raw newline leaked through.
  std::size_t lines = 0;
  for (char c : text) lines += c == '\n';
  EXPECT_EQ(lines, 2u);  // "# TYPE" line + one sample line
}

TEST(Metrics, JsonLabelValuesAreEscaped) {
  MetricsRegistry reg;
  reg.gauge("vpim_esc_gauge", {{"vm", "q\"b\\s\nn\tt\x01z"}}).set(4);
  const std::string json = reg.json_snapshot();
  EXPECT_NE(json.find("\"vm\":\"q\\\"b\\\\s\\nn\\tt\\u0001z\""),
            std::string::npos);
  // Raw control bytes must never reach the output.
  for (char c : json) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
  std::ptrdiff_t braces = 0;
  for (char c : json) braces += c == '{' ? 1 : (c == '}' ? -1 : 0);
  EXPECT_EQ(braces, 0);
}

TEST(Metrics, HistogramSnapshotAtExactFoldBoundary) {
  // Fill a histogram family to exactly kMaxSeriesPerFamily, then one
  // more: the boundary series must keep its own buckets while the
  // 65th folds into the overflow series — in both exporters.
  MetricsRegistry reg;
  for (std::size_t i = 0; i < MetricsRegistry::kMaxSeriesPerFamily; ++i) {
    reg.histogram("vpim_fold_ns", {{"i", std::to_string(i)}}).observe(i);
  }
  Histogram& over =
      reg.histogram("vpim_fold_ns", {{"i", "one-past-the-cap"}});
  over.observe(100);
  over.observe(200);
  // The folded series is shared by every subsequent new label set.
  EXPECT_EQ(&reg.histogram("vpim_fold_ns", {{"i", "two-past-the-cap"}}),
            &over);
  // The last in-cap series (i=63) is intact and individually addressable.
  const std::string last =
      std::to_string(MetricsRegistry::kMaxSeriesPerFamily - 1);
  EXPECT_EQ(reg.histogram("vpim_fold_ns", {{"i", last}}).count(), 1u);

  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("vpim_fold_ns_count{i=\"" + last + "\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("vpim_fold_ns_count{overflow=\"true\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("vpim_fold_ns_sum{overflow=\"true\"} 300\n"),
            std::string::npos);
  // No series for the folded label value leaks out under its own name.
  EXPECT_EQ(text.find("one-past-the-cap"), std::string::npos);

  const std::string json = reg.json_snapshot();
  EXPECT_NE(json.find("\"overflow\":\"true\""), std::string::npos);
  EXPECT_EQ(json.find("one-past-the-cap"), std::string::npos);
  std::ptrdiff_t braces = 0;
  for (char c : json) braces += c == '{' ? 1 : (c == '}' ? -1 : 0);
  EXPECT_EQ(braces, 0);
}

}  // namespace
}  // namespace vpim::obs
