#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "sdk/dpu_set.h"
#include "tests/testutil.h"
#include "upmem/kernel.h"

namespace vpim::sdk {
namespace {

using driver::XferDirection;
using upmem::DpuCtx;
using upmem::DpuKernel;
using upmem::KernelRegistry;

// Fig 2-style kernel: counts zero words in the DPU's partition.
void register_count_zeros() {
  if (KernelRegistry::instance().contains("sdk_count_zeros")) return;
  DpuKernel k;
  k.name = "sdk_count_zeros";
  k.symbols = {{"zero_count", 4}, {"partition_size", 4}};
  k.stages.push_back([](DpuCtx& ctx) {
    if (ctx.me() == 0) ctx.var<std::uint32_t>("zero_count") = 0;
  });
  k.stages.push_back([](DpuCtx& ctx) {
    const std::uint32_t bytes = ctx.var<std::uint32_t>("partition_size");
    const std::uint32_t n = bytes / 4;
    const std::uint32_t per = (n + ctx.nr_tasklets() - 1) / ctx.nr_tasklets();
    const std::uint32_t begin = ctx.me() * per;
    const std::uint32_t end = std::min(n, begin + per);
    if (begin >= end) return;
    constexpr std::uint32_t kBlockWords = 512;  // 2 KiB WRAM block
    auto buf = ctx.mem_alloc(kBlockWords * 4);
    std::uint32_t zeros = 0;
    for (std::uint32_t w = begin; w < end; w += kBlockWords) {
      const std::uint32_t blk = std::min(kBlockWords, end - w);
      ctx.mram_read(w * 4, buf.first(blk * 4));
      for (std::uint32_t i = 0; i < blk; ++i) {
        std::int32_t v;
        std::memcpy(&v, buf.data() + i * 4, 4);
        if (v == 0) ++zeros;
      }
    }
    ctx.exec(end - begin);
    ctx.var<std::uint32_t>("zero_count") += zeros;
  });
  KernelRegistry::instance().add(std::move(k));
}

TEST(DpuSet, AllocationIsRankGranular) {
  test::TestRig rig(test::small_machine());  // 2 ranks x 8 DPUs
  auto set = DpuSet::allocate(rig.native, 3);
  EXPECT_EQ(set.nr_dpus(), 3u);
  EXPECT_EQ(set.nr_ranks(), 1u);  // rounds up to one whole rank
  EXPECT_TRUE(rig.drv.is_mapped(0));
  EXPECT_FALSE(rig.drv.is_mapped(1));

  auto set2 = DpuSet::allocate(rig.native, 8);
  EXPECT_EQ(set2.nr_ranks(), 1u);
  EXPECT_TRUE(rig.drv.is_mapped(1));

  // Machine exhausted now.
  EXPECT_THROW(DpuSet::allocate(rig.native, 1), VpimError);

  set.free();
  auto set3 = DpuSet::allocate(rig.native, 1);  // reuses rank 0
  EXPECT_EQ(set3.nr_ranks(), 1u);
}

TEST(DpuSet, MultiRankSpansRanks) {
  test::TestRig rig(test::small_machine());
  auto set = DpuSet::allocate(rig.native, 12);  // 8 + 4
  EXPECT_EQ(set.nr_ranks(), 2u);
}

TEST(DpuSet, CountZerosEndToEnd) {
  register_count_zeros();
  test::TestRig rig(test::small_machine());

  constexpr std::uint32_t kDpus = 8;
  constexpr std::uint32_t kWordsPerDpu = 4096;
  auto set = DpuSet::allocate(rig.native, kDpus);
  set.load("sdk_count_zeros");

  // Build input: every 7th word is zero.
  Rng rng(11);
  auto data = rig.native.alloc(kDpus * kWordsPerDpu * 4);
  std::uint32_t expected_zeros = 0;
  for (std::uint32_t i = 0; i < kDpus * kWordsPerDpu; ++i) {
    std::int32_t v = (i % 7 == 0) ? 0 : static_cast<std::int32_t>(
                                            rng.uniform(1, 1 << 30));
    std::memcpy(data.data() + i * 4, &v, 4);
    if (v == 0) ++expected_zeros;
  }

  // Distribute partitions (CPU->DPU).
  const std::uint32_t partition_bytes = kWordsPerDpu * 4;
  for (std::uint32_t d = 0; d < kDpus; ++d) {
    set.prepare_xfer(d, data.data() + d * partition_bytes);
  }
  set.push_xfer(XferDirection::kToRank, Target::mram(0), partition_bytes);
  auto size_buf = partition_bytes;
  for (std::uint32_t d = 0; d < kDpus; ++d) {
    set.prepare_xfer(d, reinterpret_cast<std::uint8_t*>(&size_buf));
  }
  set.push_xfer(XferDirection::kToRank, Target::symbol("partition_size"), 4);

  set.launch(16);

  // Collect (DPU->CPU).
  std::uint32_t total = 0;
  for (std::uint32_t d = 0; d < kDpus; ++d) {
    std::uint32_t v = 0;
    set.copy_from(d, Target::symbol("zero_count"),
                  {reinterpret_cast<std::uint8_t*>(&v), 4});
    total += v;
  }
  EXPECT_EQ(total, expected_zeros);
  EXPECT_GT(rig.clock.now(), 0u);
}

TEST(DpuSet, VariableSizeTransfer) {
  register_count_zeros();
  test::TestRig rig(test::small_machine());
  auto set = DpuSet::allocate(rig.native, 4);
  set.load("sdk_count_zeros");

  std::vector<std::uint64_t> sizes = {4096, 0, 8192, 1024};
  auto data = rig.native.alloc(16384);
  std::memset(data.data(), 1, data.size());
  std::uint64_t off = 0;
  for (std::uint32_t d = 0; d < 4; ++d) {
    set.prepare_xfer(d, data.data() + off);
    off += sizes[d];
  }
  set.push_xfer(XferDirection::kToRank, Target::mram(64), sizes);

  // Verify that only the sized regions were written.
  auto& rank = rig.machine.rank(0);
  std::vector<std::uint8_t> probe(8);
  rank.mram(0).read(64, probe);
  EXPECT_EQ(probe[0], 1);
  rank.mram(1).read(64, probe);
  EXPECT_EQ(probe[0], 0);  // size 0: untouched
  rank.mram(2).read(64, probe);
  EXPECT_EQ(probe[0], 1);
}

TEST(DpuSet, BroadcastReachesAllDpus) {
  register_count_zeros();
  test::TestRig rig(test::small_machine());
  auto set = DpuSet::allocate(rig.native, 8);
  set.load("sdk_count_zeros");

  std::vector<std::uint8_t> payload(64 * kKiB);
  Rng rng(3);
  rng.fill_bytes(payload.data(), payload.size());
  set.broadcast(Target::mram(0), payload);

  auto& rank = rig.machine.rank(0);
  std::vector<std::uint8_t> out(payload.size());
  for (std::uint32_t d = 0; d < 8; ++d) {
    rank.mram(d).read(0, out);
    EXPECT_EQ(out, payload);
  }
}

TEST(DpuSet, LaunchPollsAtPollPeriod) {
  register_count_zeros();
  test::TestRig rig(test::small_machine());
  auto set = DpuSet::allocate(rig.native, 8);
  set.load("sdk_count_zeros");

  // Seed a decent amount of work so the DPU run is much longer than one
  // poll period.
  const std::uint32_t partition_bytes = 1 * kMiB;
  auto data = rig.native.alloc(partition_bytes);
  for (std::uint32_t d = 0; d < 8; ++d) set.prepare_xfer(d, data.data());
  set.push_xfer(XferDirection::kToRank, Target::mram(0), partition_bytes);
  std::uint32_t ps = partition_bytes;
  for (std::uint32_t d = 0; d < 8; ++d) {
    set.prepare_xfer(d, reinterpret_cast<std::uint8_t*>(&ps));
  }
  set.push_xfer(XferDirection::kToRank, Target::symbol("partition_size"), 4);

  const SimNs before = rig.clock.now();
  set.launch(16);
  const SimNs launch_time = rig.clock.now() - before;
  // The DPU streams 1 MiB from MRAM at ~1 GB/s, so the run takes ~1 ms of
  // virtual time and the poll loop must have iterated several times.
  EXPECT_GT(launch_time, 900 * kUs);
}

TEST(DpuSet, MultiRankTransfersOverlap) {
  register_count_zeros();
  test::TestRig rig(test::small_machine());
  auto set = DpuSet::allocate(rig.native, 16);  // both ranks
  set.load("sdk_count_zeros");

  const std::uint32_t bytes = 8 * kMiB;
  auto data = rig.native.alloc(bytes);
  for (std::uint32_t d = 0; d < 16; ++d) set.prepare_xfer(d, data.data());

  const SimNs t0 = rig.clock.now();
  set.push_xfer(XferDirection::kToRank, Target::mram(0), bytes);
  const SimNs two_ranks = rig.clock.now() - t0;

  // One rank moving the same per-rank volume takes about the same time:
  // per-rank transfers run in parallel.
  test::TestRig rig2(test::small_machine());
  auto set2 = DpuSet::allocate(rig2.native, 8);
  set2.load("sdk_count_zeros");
  auto data2 = rig2.native.alloc(bytes);
  for (std::uint32_t d = 0; d < 8; ++d) set2.prepare_xfer(d, data2.data());
  const SimNs t1 = rig2.clock.now();
  set2.push_xfer(XferDirection::kToRank, Target::mram(0), bytes);
  const SimNs one_rank = rig2.clock.now() - t1;

  EXPECT_EQ(two_ranks, one_rank);
}

TEST(DpuSet, PushWithoutPrepareThrows) {
  register_count_zeros();
  test::TestRig rig(test::small_machine());
  auto set = DpuSet::allocate(rig.native, 2);
  set.load("sdk_count_zeros");
  EXPECT_THROW(
      set.push_xfer(XferDirection::kToRank, Target::mram(0), 64),
      VpimError);
}

}  // namespace
}  // namespace vpim::sdk
