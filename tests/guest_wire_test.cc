#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "guest/guest_memory.h"
#include "virtio/virtqueue.h"
#include "vpim/wire.h"

namespace vpim::core {
namespace {

using guest::GuestMemory;
using guest::kGuestPageSize;

TEST(GuestMemory, AllocAndTranslate) {
  GuestMemory mem(16 * kMiB);
  auto buf = mem.alloc(10000);
  EXPECT_EQ(buf.size(), 10000u);
  const std::uint64_t gpa = mem.gpa_of(buf.data());
  EXPECT_EQ(mem.hva_of(gpa), buf.data());
  EXPECT_EQ(mem.gpa_of(buf.data() + 5000), gpa + 5000);
}

TEST(GuestMemory, AllocationsArePageAlignedAndDisjoint) {
  GuestMemory mem(16 * kMiB);
  auto a = mem.alloc(1);
  auto b = mem.alloc(kGuestPageSize + 1);
  auto c = mem.alloc(17);
  EXPECT_EQ(mem.gpa_of(a.data()) % kGuestPageSize, 0u);
  EXPECT_EQ(mem.gpa_of(b.data()) % kGuestPageSize, 0u);
  EXPECT_EQ(mem.gpa_of(b.data()), mem.gpa_of(a.data()) + kGuestPageSize);
  EXPECT_EQ(mem.gpa_of(c.data()),
            mem.gpa_of(b.data()) + 2 * kGuestPageSize);
}

TEST(GuestMemory, ExhaustionAndBadTranslationsThrow) {
  GuestMemory mem(64 * kKiB);
  EXPECT_THROW(mem.alloc(128 * kKiB), VpimError);
  EXPECT_THROW(mem.hva_of(mem.size()), VpimError);
  std::uint8_t outside = 0;
  EXPECT_THROW(mem.gpa_of(&outside), VpimError);
}

// ------------------------------------------------------------------ wire

struct WireRig {
  GuestMemory mem{64 * kMiB};
  WireArena arena;

  WireRig() {
    arena.request = mem.alloc(sizeof(WireRequest));
    arena.matrix_meta = mem.alloc(sizeof(WireMatrixMeta));
    arena.entry_meta = mem.alloc(64 * sizeof(WireEntryMeta));
    arena.page_lists = mem.alloc(64 * 16384 * 8);
    arena.payload = mem.alloc(8 * kKiB);
    arena.response = mem.alloc(sizeof(WireResponse));
  }
};

TEST(Wire, SerializeDeserializeRoundTrip) {
  WireRig rig;
  Rng rng(1);

  // A matrix with mixed sizes and unaligned buffers.
  auto big = rig.mem.alloc(1 * kMiB);
  auto small = rig.mem.alloc(8 * kKiB);
  rng.fill_bytes(big.data(), big.size());

  driver::TransferMatrix matrix;
  matrix.direction = driver::XferDirection::kToRank;
  matrix.entries.push_back({0, 4096, big.data(), big.size()});
  matrix.entries.push_back({5, 64, small.data() + 123, 1000});  // unaligned
  matrix.entries.push_back({63, 0, small.data() + 5000, 1});

  auto ser = serialize_matrix(
      matrix, rig.mem, rig.arena,
      static_cast<std::uint32_t>(virtio::PimRequestType::kWriteToRank));
  // Chain shape: request + meta + 2 per entry.
  EXPECT_EQ(ser.chain.size(), 2 + 2 * 3u);
  // 1 MiB = 256 pages; 123+1000 straddles page 0 only; 1 byte = 1 page.
  EXPECT_EQ(ser.nr_pages, 256u + 1u + 1u);

  virtio::Virtqueue q(512);
  const std::uint16_t head = q.submit(ser.chain);
  auto chain = q.pop_avail();
  ASSERT_TRUE(chain);

  auto de = deserialize_matrix(*chain, rig.mem);
  EXPECT_EQ(de.direction, driver::XferDirection::kToRank);
  ASSERT_EQ(de.entries.size(), 3u);
  EXPECT_EQ(de.total_bytes, matrix.total_bytes());
  EXPECT_EQ(de.nr_pages, ser.nr_pages);

  // Segments must cover exactly the original buffers, in order.
  for (std::size_t k = 0; k < 3; ++k) {
    const auto& entry = de.entries[k];
    EXPECT_EQ(entry.dpu, matrix.entries[k].dpu);
    EXPECT_EQ(entry.mram_offset, matrix.entries[k].mram_offset);
    EXPECT_EQ(entry.size, matrix.entries[k].size);
    std::uint64_t covered = 0;
    const std::uint8_t* expect = matrix.entries[k].host;
    for (const auto& [ptr, len] : entry.segments) {
      EXPECT_EQ(ptr, expect + covered);
      covered += len;
    }
    EXPECT_EQ(covered, entry.size);
  }
  q.push_used(head, 0);
}

TEST(Wire, ZeroCopySharing) {
  // Deserialized segments must point into the *original* guest buffer:
  // mutating them mutates the app's data.
  WireRig rig;
  auto buf = rig.mem.alloc(16 * kKiB);
  std::memset(buf.data(), 0x11, buf.size());

  driver::TransferMatrix matrix;
  matrix.direction = driver::XferDirection::kFromRank;
  matrix.entries.push_back({2, 0, buf.data(), buf.size()});
  auto ser = serialize_matrix(
      matrix, rig.mem, rig.arena,
      static_cast<std::uint32_t>(virtio::PimRequestType::kReadFromRank));

  virtio::Virtqueue q(512);
  q.submit(ser.chain);
  auto chain = q.pop_avail();
  auto de = deserialize_matrix(*chain, rig.mem);
  de.entries[0].segments[0].first[0] = 0x77;
  EXPECT_EQ(buf[0], 0x77);
}

TEST(Wire, RejectsMalformedMatrices) {
  WireRig rig;
  auto buf = rig.mem.alloc(4096);

  // More entries than DPUs in a rank.
  driver::TransferMatrix too_many;
  for (int i = 0; i < 65; ++i) {
    too_many.entries.push_back({static_cast<std::uint32_t>(i), 0,
                                buf.data(), 16});
  }
  EXPECT_THROW(serialize_matrix(too_many, rig.mem, rig.arena, 3), VpimError);

  // Zero-size entry.
  driver::TransferMatrix zero;
  zero.entries.push_back({0, 0, buf.data(), 0});
  EXPECT_THROW(serialize_matrix(zero, rig.mem, rig.arena, 3), VpimError);

  // Buffer outside guest RAM.
  std::uint8_t local = 0;
  driver::TransferMatrix outside;
  outside.entries.push_back({0, 0, &local, 1});
  EXPECT_THROW(serialize_matrix(outside, rig.mem, rig.arena, 3), VpimError);
}

class WireSizeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireSizeSweep, PageCountFormula) {
  WireRig rig;
  const std::uint64_t size = GetParam();
  auto buf = rig.mem.alloc(size + kGuestPageSize);

  for (std::uint64_t shift : {std::uint64_t{0}, std::uint64_t{1},
                              std::uint64_t{4095}}) {
    driver::TransferMatrix m;
    m.entries.push_back({0, 0, buf.data() + shift, size});
    auto ser = serialize_matrix(m, rig.mem, rig.arena, 3);
    const std::uint64_t expected =
        (shift % kGuestPageSize + size + kGuestPageSize - 1) /
        kGuestPageSize;
    EXPECT_EQ(ser.nr_pages, expected) << "size " << size << " shift "
                                      << shift;

    virtio::Virtqueue q(512);
    q.submit(ser.chain);
    auto de = deserialize_matrix(*q.pop_avail(), rig.mem);
    EXPECT_EQ(de.nr_pages, expected);
    EXPECT_EQ(de.entries[0].size, size);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, WireSizeSweep,
                         ::testing::Values(1, 100, 4096, 4097, 65536,
                                           1000000));

}  // namespace
}  // namespace vpim::core
