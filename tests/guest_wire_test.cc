#include <gtest/gtest.h>

#include <cstring>

#include "common/error.h"
#include "common/rng.h"
#include "guest/guest_memory.h"
#include "upmem/layout.h"
#include "virtio/virtqueue.h"
#include "vpim/wire.h"

namespace vpim::core {
namespace {

using guest::GuestMemory;
using guest::kGuestPageSize;

TEST(GuestMemory, AllocAndTranslate) {
  GuestMemory mem(16 * kMiB);
  auto buf = mem.alloc(10000);
  EXPECT_EQ(buf.size(), 10000u);
  const std::uint64_t gpa = mem.gpa_of(buf.data());
  EXPECT_EQ(mem.hva_of(gpa), buf.data());
  EXPECT_EQ(mem.gpa_of(buf.data() + 5000), gpa + 5000);
}

TEST(GuestMemory, AllocationsArePageAlignedAndDisjoint) {
  GuestMemory mem(16 * kMiB);
  auto a = mem.alloc(1);
  auto b = mem.alloc(kGuestPageSize + 1);
  auto c = mem.alloc(17);
  EXPECT_EQ(mem.gpa_of(a.data()) % kGuestPageSize, 0u);
  EXPECT_EQ(mem.gpa_of(b.data()) % kGuestPageSize, 0u);
  EXPECT_EQ(mem.gpa_of(b.data()), mem.gpa_of(a.data()) + kGuestPageSize);
  EXPECT_EQ(mem.gpa_of(c.data()),
            mem.gpa_of(b.data()) + 2 * kGuestPageSize);
}

TEST(GuestMemory, ExhaustionAndBadTranslationsThrow) {
  GuestMemory mem(64 * kKiB);
  EXPECT_THROW(mem.alloc(128 * kKiB), VpimError);
  EXPECT_THROW(mem.hva_of(mem.size()), VpimError);
  std::uint8_t outside = 0;
  EXPECT_THROW(mem.gpa_of(&outside), VpimError);
}

TEST(GuestMemory, RangeTranslationIsBoundsAndOverflowChecked) {
  GuestMemory mem(64 * kKiB);
  // Whole-range translation succeeds only if every byte is in RAM.
  EXPECT_EQ(mem.hva_range(0, mem.size()), mem.hva_of(0));
  EXPECT_EQ(mem.hva_range(mem.size() - 16, 16),
            mem.hva_of(mem.size() - 16));
  // hva_of would accept the first byte of these; the *range* must throw.
  EXPECT_THROW(mem.hva_range(mem.size() - 16, 17), VpimError);
  EXPECT_THROW(mem.hva_range(mem.size(), 1), VpimError);
  // gpa + len wrapping around 2^64 must not sneak past the check.
  EXPECT_THROW(mem.hva_range(16, ~std::uint64_t{0}), VpimError);
  EXPECT_THROW(mem.hva_range(~std::uint64_t{0}, 2), VpimError);
}

// ------------------------------------------------------------------ wire

struct WireRig {
  GuestMemory mem{64 * kMiB};
  WireArena arena;

  WireRig() {
    arena.request = mem.alloc(sizeof(WireRequest));
    arena.matrix_meta = mem.alloc(sizeof(WireMatrixMeta));
    arena.entry_meta = mem.alloc(64 * sizeof(WireEntryMeta));
    arena.page_lists = mem.alloc(64 * 16384 * 8);
    arena.payload = mem.alloc(8 * kKiB);
    arena.response = mem.alloc(sizeof(WireResponse));
  }
};

TEST(Wire, SerializeDeserializeRoundTrip) {
  WireRig rig;
  Rng rng(1);

  // A matrix with mixed sizes and unaligned buffers.
  auto big = rig.mem.alloc(1 * kMiB);
  auto small = rig.mem.alloc(8 * kKiB);
  rng.fill_bytes(big.data(), big.size());

  driver::TransferMatrix matrix;
  matrix.direction = driver::XferDirection::kToRank;
  matrix.entries.push_back({0, 4096, big.data(), big.size()});
  matrix.entries.push_back({5, 64, small.data() + 123, 1000});  // unaligned
  matrix.entries.push_back({63, 0, small.data() + 5000, 1});

  auto ser = serialize_matrix(
      matrix, rig.mem, rig.arena,
      static_cast<std::uint32_t>(virtio::PimRequestType::kWriteToRank));
  // Chain shape: request + meta + 2 per entry + response block.
  EXPECT_EQ(ser.chain.size(), 2 + 2 * 3u + 1u);
  // 1 MiB = 256 pages; 123+1000 straddles page 0 only; 1 byte = 1 page.
  EXPECT_EQ(ser.nr_pages, 256u + 1u + 1u);

  virtio::Virtqueue q(512);
  const std::uint16_t head = q.submit(ser.chain);
  auto chain = q.pop_avail();
  ASSERT_TRUE(chain);

  auto de = deserialize_matrix(*chain, rig.mem);
  EXPECT_EQ(de.direction, driver::XferDirection::kToRank);
  ASSERT_EQ(de.entries.size(), 3u);
  EXPECT_EQ(de.total_bytes, matrix.total_bytes());
  EXPECT_EQ(de.nr_pages, ser.nr_pages);

  // Segments must cover exactly the original buffers, in order.
  for (std::size_t k = 0; k < 3; ++k) {
    const auto& entry = de.entries[k];
    EXPECT_EQ(entry.dpu, matrix.entries[k].dpu);
    EXPECT_EQ(entry.mram_offset, matrix.entries[k].mram_offset);
    EXPECT_EQ(entry.size, matrix.entries[k].size);
    std::uint64_t covered = 0;
    const std::uint8_t* expect = matrix.entries[k].host;
    for (const auto& [ptr, len] : entry.segments) {
      EXPECT_EQ(ptr, expect + covered);
      covered += len;
    }
    EXPECT_EQ(covered, entry.size);
  }
  q.push_used(head, 0);
}

TEST(Wire, ZeroCopySharing) {
  // Deserialized segments must point into the *original* guest buffer:
  // mutating them mutates the app's data.
  WireRig rig;
  auto buf = rig.mem.alloc(16 * kKiB);
  std::memset(buf.data(), 0x11, buf.size());

  driver::TransferMatrix matrix;
  matrix.direction = driver::XferDirection::kFromRank;
  matrix.entries.push_back({2, 0, buf.data(), buf.size()});
  auto ser = serialize_matrix(
      matrix, rig.mem, rig.arena,
      static_cast<std::uint32_t>(virtio::PimRequestType::kReadFromRank));

  virtio::Virtqueue q(512);
  q.submit(ser.chain);
  auto chain = q.pop_avail();
  auto de = deserialize_matrix(*chain, rig.mem);
  de.entries[0].segments[0].first[0] = 0x77;
  EXPECT_EQ(buf[0], 0x77);
}

TEST(Wire, RejectsMalformedMatrices) {
  WireRig rig;
  auto buf = rig.mem.alloc(4096);

  // More entries than DPUs in a rank.
  driver::TransferMatrix too_many;
  for (int i = 0; i < 65; ++i) {
    too_many.entries.push_back({static_cast<std::uint32_t>(i), 0,
                                buf.data(), 16});
  }
  EXPECT_THROW(serialize_matrix(too_many, rig.mem, rig.arena, 3), VpimError);

  // Zero-size entry.
  driver::TransferMatrix zero;
  zero.entries.push_back({0, 0, buf.data(), 0});
  EXPECT_THROW(serialize_matrix(zero, rig.mem, rig.arena, 3), VpimError);

  // Buffer outside guest RAM.
  std::uint8_t local = 0;
  driver::TransferMatrix outside;
  outside.entries.push_back({0, 0, &local, 1});
  EXPECT_THROW(serialize_matrix(outside, rig.mem, rig.arena, 3), VpimError);
}

// The backend cannot trust that a chain came from our serializer: the
// guest driver may be buggy or hostile. deserialize_matrix must reject
// tampered chains with a typed kBadRequest, never crash or over-read.
TEST(Wire, DeserializeRejectsTamperedChains) {
  WireRig rig;
  auto buf = rig.mem.alloc(16 * kKiB);
  driver::TransferMatrix matrix;
  matrix.entries.push_back({0, 0, buf.data(), buf.size()});

  const auto expect_bad_request = [&](std::vector<virtio::DescBuffer> chain) {
    virtio::Virtqueue q(512);
    q.submit(chain);
    auto popped = q.pop_avail();
    ASSERT_TRUE(popped.has_value());
    try {
      deserialize_matrix(*popped, rig.mem);
      FAIL() << "tampered chain accepted";
    } catch (const VpimStatusError& e) {
      EXPECT_EQ(e.status(),
                static_cast<std::int32_t>(virtio::PimStatus::kBadRequest));
    }
  };

  const auto fresh = [&] {
    return serialize_matrix(matrix, rig.mem, rig.arena, 3).chain;
  };

  // Dropped response block: even descriptor count.
  auto chain = fresh();
  chain.pop_back();
  expect_bad_request(chain);

  // Truncated to request + response only.
  chain = fresh();
  chain.erase(chain.begin() + 1, chain.end() - 1);
  expect_bad_request(chain);

  // Page-list descriptor shorter than the entry metadata promises.
  chain = fresh();
  chain[3].len = 8;
  expect_bad_request(chain);

  // Metadata descriptor too small to hold WireMatrixMeta.
  chain = fresh();
  chain[1].len = 4;
  expect_bad_request(chain);

  // Unaligned page GPA in the page list.
  chain = fresh();
  {
    auto* pages = reinterpret_cast<std::uint64_t*>(
        rig.mem.hva_of(chain[3].gpa));
    pages[0] += 7;
    expect_bad_request(chain);
  }

  // Entry metadata claiming more bytes than kMaxXferBytes.
  chain = fresh();
  {
    auto* em = reinterpret_cast<WireEntryMeta*>(
        rig.mem.hva_of(chain[2].gpa));
    em->size = upmem::kMaxXferBytes + 1;
    expect_bad_request(chain);
  }

  // Matrix metadata disagreeing with the chain shape.
  chain = fresh();
  {
    auto* meta = reinterpret_cast<WireMatrixMeta*>(
        rig.mem.hva_of(chain[1].gpa));
    meta->nr_entries = 7;
    expect_bad_request(chain);
  }

  // An untampered chain still deserializes after all of the above.
  chain = fresh();
  virtio::Virtqueue q(512);
  q.submit(chain);
  auto de = deserialize_matrix(*q.pop_avail(), rig.mem);
  EXPECT_EQ(de.entries.size(), 1u);
  EXPECT_EQ(de.total_bytes, buf.size());
}

class WireSizeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireSizeSweep, PageCountFormula) {
  WireRig rig;
  const std::uint64_t size = GetParam();
  auto buf = rig.mem.alloc(size + kGuestPageSize);

  for (std::uint64_t shift : {std::uint64_t{0}, std::uint64_t{1},
                              std::uint64_t{4095}}) {
    driver::TransferMatrix m;
    m.entries.push_back({0, 0, buf.data() + shift, size});
    auto ser = serialize_matrix(m, rig.mem, rig.arena, 3);
    const std::uint64_t expected =
        (shift % kGuestPageSize + size + kGuestPageSize - 1) /
        kGuestPageSize;
    EXPECT_EQ(ser.nr_pages, expected) << "size " << size << " shift "
                                      << shift;

    virtio::Virtqueue q(512);
    q.submit(ser.chain);
    auto de = deserialize_matrix(*q.pop_avail(), rig.mem);
    EXPECT_EQ(de.nr_pages, expected);
    EXPECT_EQ(de.entries[0].size, size);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, WireSizeSweep,
                         ::testing::Values(1, 100, 4096, 4097, 65536,
                                           1000000));

}  // namespace
}  // namespace vpim::core
