#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "tests/testutil.h"
#include "upmem/interleave.h"
#include "upmem/kernel.h"
#include "upmem/mram.h"

namespace vpim::upmem {
namespace {

// ------------------------------------------------------------------ MRAM

TEST(Mram, ReadsZeroWhenUntouched) {
  MramBank bank;
  std::vector<std::uint8_t> buf(64, 0xFF);
  bank.read(1 * kMiB, buf);
  for (auto b : buf) EXPECT_EQ(b, 0);
  EXPECT_EQ(bank.resident_pages(), 0u);
}

TEST(Mram, RoundTripAcrossPageBoundary) {
  MramBank bank;
  Rng rng(1);
  std::vector<std::uint8_t> in(10000);
  rng.fill_bytes(in.data(), in.size());
  const std::uint64_t offset = kMramPageSize - 123;  // straddles pages
  bank.write(offset, in);
  std::vector<std::uint8_t> out(in.size());
  bank.read(offset, out);
  EXPECT_EQ(in, out);
}

TEST(Mram, OutOfBoundsThrows) {
  MramBank bank;
  std::vector<std::uint8_t> buf(16);
  EXPECT_THROW(bank.write(kMramSize - 8, buf), VpimError);
  EXPECT_THROW(bank.read(kMramSize, {buf.data(), 1}), VpimError);
}

TEST(Mram, SharedPagesAreCopyOnWrite) {
  MramBank a, b;
  std::vector<std::uint8_t> data(2 * kMramPageSize, 0xAB);
  auto pages = MramBank::build_pages(data);
  a.adopt_pages(0, pages);
  b.adopt_pages(0, pages);

  // Mutating bank a must not leak into bank b.
  std::vector<std::uint8_t> patch = {1, 2, 3};
  a.write(10, patch);
  std::vector<std::uint8_t> out(3);
  b.read(10, out);
  EXPECT_EQ(out, std::vector<std::uint8_t>({0xAB, 0xAB, 0xAB}));
  a.read(10, out);
  EXPECT_EQ(out, patch);
}

TEST(Mram, ClearDropsPages) {
  MramBank bank;
  std::vector<std::uint8_t> data(kMramPageSize, 1);
  bank.write(0, data);
  EXPECT_GT(bank.resident_pages(), 0u);
  bank.clear();
  EXPECT_EQ(bank.resident_pages(), 0u);
  std::vector<std::uint8_t> out(8);
  bank.read(0, out);
  for (auto b : out) EXPECT_EQ(b, 0);
}

// ------------------------------------------------------------ interleave

class InterleaveSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(InterleaveSweep, WideMatchesNaive) {
  const std::size_t n = GetParam();
  Rng rng(n);
  std::vector<std::uint8_t> src(n), a(n), b(n);
  rng.fill_bytes(src.data(), src.size());
  interleave_naive(src, a);
  interleave_wide(src, b);
  EXPECT_EQ(a, b) << "size " << n;
}

TEST_P(InterleaveSweep, RoundTripIdentity) {
  const std::size_t n = GetParam();
  Rng rng(n + 1);
  std::vector<std::uint8_t> src(n), wire(n), back(n);
  rng.fill_bytes(src.data(), src.size());

  interleave_wide(src, wire);
  deinterleave_wide(wire, back);
  EXPECT_EQ(src, back);

  interleave_naive(src, wire);
  deinterleave_naive(wire, back);
  EXPECT_EQ(src, back);

  // Cross pairing: naive interleave, wide deinterleave.
  interleave_naive(src, wire);
  deinterleave_wide(wire, back);
  EXPECT_EQ(src, back);
}

INSTANTIATE_TEST_SUITE_P(Sizes, InterleaveSweep,
                         ::testing::Values(8, 16, 64, 72, 128, 1000, 4096,
                                           65536, 100000));

TEST(Interleave, KnownStripePattern) {
  // 16 bytes = 2 words; byte j of word w lands at chip j, position w.
  std::vector<std::uint8_t> src(16);
  std::iota(src.begin(), src.end(), 0);
  std::vector<std::uint8_t> dst(16);
  interleave_naive(src, dst);
  // per_chip = 2; dst[c*2 + w] = src[w*8 + c]
  EXPECT_EQ(dst[0], 0);   // chip 0, word 0
  EXPECT_EQ(dst[1], 8);   // chip 0, word 1
  EXPECT_EQ(dst[2], 1);   // chip 1, word 0
  EXPECT_EQ(dst[15], 15); // chip 7, word 1
}

TEST(Interleave, RejectsMisalignedSizes) {
  std::vector<std::uint8_t> a(7), b(7);
  EXPECT_THROW(interleave_naive(a, b), VpimError);
  std::vector<std::uint8_t> c(8), d(16);
  EXPECT_THROW(interleave_wide(c, d), VpimError);
}

// ------------------------------------------------------------ DPU kernels

DpuKernel make_sum_kernel() {
  DpuKernel k;
  k.name = "test_sum";
  k.symbols = {{"result", 8}, {"n_words", 4}};
  k.stages.push_back([](DpuCtx& ctx) {
    if (ctx.me() != 0) return;
    ctx.var<std::uint64_t>("result") = 0;
  });
  k.stages.push_back([](DpuCtx& ctx) {
    const std::uint32_t n_words = ctx.var<std::uint32_t>("n_words");
    const std::uint32_t per =
        (n_words + ctx.nr_tasklets() - 1) / ctx.nr_tasklets();
    const std::uint32_t begin = ctx.me() * per;
    const std::uint32_t end = std::min(n_words, begin + per);
    if (begin >= end) return;
    // Stream the partition through a 2 KiB WRAM block, as real DPU
    // kernels do (WRAM is only 64 KiB).
    constexpr std::uint32_t kBlockWords = 256;
    auto buf = ctx.mem_alloc(kBlockWords * 8);
    std::uint64_t local = 0;
    for (std::uint32_t w = begin; w < end; w += kBlockWords) {
      const std::uint32_t n = std::min(kBlockWords, end - w);
      ctx.mram_read(w * 8, buf.first(n * 8));
      for (std::uint32_t i = 0; i < n; ++i) {
        std::uint64_t v;
        std::memcpy(&v, buf.data() + i * 8, 8);
        local += v;
      }
    }
    ctx.exec(end - begin);
    // Stage-sequential tasklets make this accumulation race-free, the
    // same way UPMEM kernels guard it with a mutex or handshake.
    ctx.var<std::uint64_t>("result") += local;
  });
  return k;
}

TEST(DpuKernel, RegistryRejectsBadKernels) {
  DpuKernel empty;
  empty.name = "no_stages";
  EXPECT_THROW(KernelRegistry::instance().add(empty), VpimError);

  DpuKernel big = make_sum_kernel();
  big.name = "too_big";
  big.iram_bytes = kIramSize + 1;
  EXPECT_THROW(KernelRegistry::instance().add(big), VpimError);
}

TEST(DpuKernel, SumKernelComputesAndTakesTime) {
  KernelRegistry::instance().add(make_sum_kernel());
  test::TestRig rig(test::small_machine());
  auto& rank = rig.machine.rank(0);
  rank.ci_load("test_sum");

  // Fill DPU 0's MRAM with 1000 words of value 3.
  std::vector<std::uint8_t> data(8000);
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t v = 3;
    std::memcpy(data.data() + i * 8, &v, 8);
  }
  rank.mram(0).write(0, data);
  std::uint32_t n_words = 1000;
  rank.ci_copy_to_symbol(0, "n_words", 0,
                         {reinterpret_cast<std::uint8_t*>(&n_words), 4});

  rank.ci_launch(0b1, 16);
  EXPECT_TRUE(rank.ci_any_running());
  EXPECT_THROW((void)rank.mram(0), VpimError);  // busy DPU is off limits

  rig.clock.set(rank.busy_until());
  EXPECT_FALSE(rank.ci_any_running());

  std::uint64_t result = 0;
  rank.ci_copy_from_symbol(0, "result", 0,
                           {reinterpret_cast<std::uint8_t*>(&result), 8});
  EXPECT_EQ(result, 3000u);
  EXPECT_GT(rank.busy_until(), 0u);
}

TEST(DpuKernel, PipelineModelPenalizesFewTasklets) {
  KernelRegistry::instance().add(make_sum_kernel());
  test::TestRig rig(test::small_machine());
  auto& rank0 = rig.machine.rank(0);
  auto& rank1 = rig.machine.rank(1);

  std::vector<std::uint8_t> data(80000, 1);
  rank0.mram(0).write(0, data);
  rank1.mram(0).write(0, data);
  std::uint32_t n_words = 10000;

  rank0.ci_load("test_sum");
  rank0.ci_copy_to_symbol(0, "n_words", 0,
                          {reinterpret_cast<std::uint8_t*>(&n_words), 4});
  rank0.ci_launch(0b1, 1);  // single tasklet: pipeline underutilized
  const SimNs t1 = rank0.busy_until();

  rank1.ci_load("test_sum");
  rank1.ci_copy_to_symbol(0, "n_words", 0,
                          {reinterpret_cast<std::uint8_t*>(&n_words), 4});
  rank1.ci_launch(0b1, 16);  // >= 11 tasklets: full pipeline
  const SimNs t16 = rank1.busy_until();

  // The 11-cycle issue constraint makes the single-tasklet run several
  // times slower.
  EXPECT_GT(t1, 5 * t16);
}

TEST(DpuKernel, WramHeapExhaustionThrows) {
  DpuKernel k;
  k.name = "test_hog";
  k.stages.push_back([](DpuCtx& ctx) {
    if (ctx.me() == 0) ctx.mem_alloc(kWramSize + 1);
  });
  KernelRegistry::instance().add(k);

  test::TestRig rig(test::small_machine());
  auto& rank = rig.machine.rank(0);
  rank.ci_load("test_hog");
  EXPECT_THROW(rank.ci_launch(0b1, 1), VpimError);
}

// ------------------------------------------------------------------ rank

TEST(Rank, MaskValidation) {
  test::TestRig rig(test::small_machine());  // 8 DPUs per rank
  auto& rank = rig.machine.rank(0);
  KernelRegistry::instance().add(make_sum_kernel());
  rank.ci_load("test_sum");
  EXPECT_THROW(rank.ci_launch(1ULL << 8), VpimError);  // beyond DPU count
}

TEST(Rank, ResetClearsEverything) {
  test::TestRig rig(test::small_machine());
  auto& rank = rig.machine.rank(0);
  std::vector<std::uint8_t> data(64, 9);
  rank.mram(0).write(0, data);
  rank.reset_memory();
  std::vector<std::uint8_t> out(64, 1);
  rank.mram(0).read(0, out);
  for (auto b : out) EXPECT_EQ(b, 0);
}

TEST(Machine, PaperGeometry) {
  test::TestRig rig;  // defaults: 8 ranks x 60 DPUs
  EXPECT_EQ(rig.machine.nr_ranks(), 8u);
  EXPECT_EQ(rig.machine.total_dpus(), 480u);
}

}  // namespace
}  // namespace vpim::upmem
