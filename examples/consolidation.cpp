// Consolidation walkthrough (§7 future work): suspend/resume and
// oversubscription working together. A batch tenant gets suspended to
// make room for an interactive tenant, then resumes with its state
// intact; a third tenant arrives on a full machine and runs on an
// emulated rank until capacity frees up and it migrates onto silicon.
//
// Build & run:  ./build/examples/consolidation
#include <cstdio>
#include <cstring>

#include "vpim/guest_platform.h"
#include "vpim/host.h"
#include "vpim/vpim_vm.h"

using namespace vpim;

namespace {

// Writes a recognizable pattern through the device and verifies it later.
void seed_pattern(core::Frontend& fe, vmm::Vmm& vm, std::uint8_t tag) {
  auto buf = vm.memory().alloc(256 * kKiB);
  std::memset(buf.data(), tag, buf.size());
  driver::TransferMatrix w;
  w.entries.push_back({0, 0, buf.data(), buf.size()});
  fe.write_to_rank(w);
}

bool check_pattern(core::Frontend& fe, vmm::Vmm& vm, std::uint8_t tag) {
  auto out = vm.memory().alloc(256 * kKiB);
  driver::TransferMatrix r;
  r.direction = driver::XferDirection::kFromRank;
  r.entries.push_back({0, 0, out.data(), out.size()});
  fe.read_from_rank(r);
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i] != tag) return false;
  }
  return true;
}

}  // namespace

int main() {
  // A small host: 2 ranks, so contention appears quickly.
  core::Host host(upmem::MachineConfig{.nr_ranks = 2,
                                       .functional_dpus_per_rank = 60});
  core::VpimConfig elastic = core::VpimConfig::full();
  elastic.oversubscribe = true;

  // Tenant A (batch) and tenant B (interactive) take the two ranks.
  core::VpimVm batch(host, {.name = "batch"}, 1);
  core::VpimVm inter(host, {.name = "interactive"}, 1);
  core::Frontend& fe_a = batch.device(0).frontend;
  core::Frontend& fe_b = inter.device(0).frontend;
  if (!fe_a.open() || !fe_b.open()) return 1;
  seed_pattern(fe_a, batch.vmm(), 0xA1);
  seed_pattern(fe_b, inter.vmm(), 0xB2);
  std::printf("batch on rank %u, interactive on rank %u\n",
              batch.device(0).backend.rank_index(),
              inter.device(0).backend.rank_index());

  // Tenant C arrives; the machine is full. With oversubscription it gets
  // an emulated rank instead of a failed allocation.
  core::VpimVm newcomer(host, {.name = "newcomer"}, 1, elastic);
  core::Frontend& fe_c = newcomer.device(0).frontend;
  if (!fe_c.open()) return 1;
  std::printf("newcomer bound: %s (DPUs at %u MHz)\n",
              newcomer.device(0).backend.emulated() ? "EMULATED"
                                                    : "physical",
              fe_c.config_space().dpu_freq_mhz);
  seed_pattern(fe_c, newcomer.vmm(), 0xC3);

  // The batch tenant is preempted: suspend parks its state host-side and
  // frees its rank for others.
  fe_a.suspend();
  host.manager.observe();
  host.manager.observe();
  std::printf("batch suspended; its rank is %s\n",
              host.drv.sysfs().read(0).in_use ? "still busy"
                                              : "free again");

  // The newcomer upgrades from emulation onto the freed silicon, keeping
  // its data.
  if (fe_c.migrate()) {
    std::printf("newcomer migrated to physical rank %u; pattern %s\n",
                newcomer.device(0).backend.rank_index(),
                check_pattern(fe_c, newcomer.vmm(), 0xC3) ? "intact"
                                                          : "LOST");
  }

  // Later the interactive tenant leaves; the batch tenant resumes — on
  // whatever rank is free — with its 0xA1 pattern restored.
  fe_b.close();
  host.manager.observe();
  host.manager.observe();
  if (!fe_a.resume()) return 1;
  std::printf("batch resumed; pattern %s\n",
              check_pattern(fe_a, batch.vmm(), 0xA1) ? "intact" : "LOST");

  // --- Manager-level slot consolidation (§3.5, ISSUE 9) -----------------
  // Below whole-rank suspend/resume, the manager oversubscribes ranks at
  // wrank-slot granularity. Churn leaves slots scattered; a consolidation
  // pass live-migrates them onto fewer ranks so whole ranks free up.
  {
    core::Host packed(upmem::MachineConfig{.nr_ranks = 4,
                                           .functional_dpus_per_rank = 60});
    packed.manager.set_placement_policy(
        core::PlacementPolicyKind::kConsolidating);
    std::uint64_t ids[8];
    for (int i = 0; i < 8; ++i) {
      ids[i] = packed.manager
                   .allocate_wrank("spread-" + std::to_string(i % 4), 2)
                   .wrank;
    }
    // Release every other wrank: four ranks now each host a single
    // 2-slot tenant — half the machine is held by fragmentation.
    for (int i = 0; i < 8; i += 2) packed.manager.release_wrank(ids[i]);
    const std::uint32_t before = packed.manager.fragmentation_permille();
    const std::uint32_t moves = packed.manager.consolidate();
    std::printf(
        "slot consolidation: fragmentation %u -> %u permille after %u "
        "live migrations (%lu consolidation passes)\n",
        before, packed.manager.fragmentation_permille(), moves,
        static_cast<unsigned long>(
            packed.manager.stats().consolidation_passes));
  }

  std::printf("simulated time: %.1f ms\n", ns_to_ms(host.clock.now()));
  return 0;
}
