// Multi-tenancy walkthrough (§3.5): two VMs and a native host application
// share the machine's 8 ranks through the vPIM manager. Shows the rank
// life cycle (NAAV -> ALLO -> NANA -> NAAV), the previous-owner fast path
// that skips the reset, and the isolation guarantee (a new tenant never
// sees residual data).
//
// Build & run:  ./build/examples/multi_tenant
#include <chrono>
#include <cstdio>

#include "prim/app.h"
#include "sdk/native.h"
#include "vpim/guest_platform.h"
#include "vpim/host.h"
#include "vpim/manager_service.h"
#include "vpim/vpim_vm.h"

using namespace vpim;

namespace {

const char* state_name(core::RankState s) {
  switch (s) {
    case core::RankState::kNaav:
      return "NAAV";
    case core::RankState::kAllo:
      return "ALLO";
    case core::RankState::kNana:
      return "NANA";
    case core::RankState::kFail:
      return "FAIL";
  }
  return "?";
}

void print_ranks(core::Host& host, const char* when) {
  std::printf("%-34s ranks:", when);
  for (std::uint32_t r = 0; r < host.machine.nr_ranks(); ++r) {
    std::printf(" %s", state_name(host.manager.state(r)));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  core::Host host;
  print_ranks(host, "boot");

  // A native application grabs a rank directly (no manager involved); the
  // observer notices it via sysfs and fences it off from VMs.
  auto native_mapping = host.drv.map_rank(0, "native-analytics");
  host.manager.observe();
  print_ranks(host, "native app mapped rank 0");

  // Two tenants, three vUPMEM devices each.
  core::VpimVm vm_a(host, {.name = "tenant-a"}, 3);
  core::VpimVm vm_b(host, {.name = "tenant-b"}, 3);
  core::GuestPlatform guest_a(vm_a);
  core::GuestPlatform guest_b(vm_b);

  // Tenant A runs a PrIM workload on 2 ranks; tenant B on 1 rank.
  prim::AppParams prm_a{.nr_dpus = 120, .scale = 0.05};
  prim::AppParams prm_b{.nr_dpus = 60, .scale = 0.05};
  auto res_a = prim::make_app("VA")->run(guest_a, prm_a);
  print_ranks(host, "tenant-a ran VA on 120 DPUs");
  auto res_b = prim::make_app("RED")->run(guest_b, prm_b);
  print_ranks(host, "tenant-b ran RED on 60 DPUs");
  std::printf("  VA correct: %s, RED correct: %s\n",
              res_a.correct ? "yes" : "NO", res_b.correct ? "yes" : "NO");

  // DpuSet::free released the ranks; the observer reclaims them. The
  // first pass flags the silent releases (-> NANA), the second erases.
  host.manager.observe(/*do_resets=*/false);
  host.manager.observe(/*do_resets=*/false);
  print_ranks(host, "observer saw the releases");

  // Tenant A asks again before the erase: the manager hands back one of
  // its own NANA ranks without paying the ~597 ms reset.
  auto again = prim::make_app("VA")->run(guest_a, prm_b);
  std::printf("  tenant-a reallocation reuse hits so far: %lu\n",
              static_cast<unsigned long>(host.manager.stats().reuse_hits));
  print_ranks(host, "tenant-a re-ran on a reused rank");
  (void)again;

  // Everything released again; now let the observer erase.
  host.manager.observe(/*do_resets=*/false);
  host.manager.observe(/*do_resets=*/true);
  print_ranks(host, "observer erased released ranks");

  // The native app exits too; its rank goes through the same recycling.
  native_mapping.unmap();
  host.manager.observe(/*do_resets=*/false);
  host.manager.observe(/*do_resets=*/true);
  print_ranks(host, "native app exited");

  // --- The manager as a concurrent allocation service (§3.5, ISSUE 9) ---
  // Typed request vocabulary over sub-rank "wrank slots": priorities pick
  // the drain order, per-tenant quotas bound footprint, and stop() resolves
  // anything still queued with a typed kShutdown instead of dropping it.
  host.manager.set_tenant_quota("tenant-d", 2);
  core::ManagerService service(
      host.manager,
      {.threads = 1, .observe_period = std::chrono::milliseconds(1),
       .start_paused = true});
  // Queued while paused: the priority-5 request is served first even
  // though it was submitted last (lower wrank id = served earlier).
  auto low = service.allocate("tenant-c", 1, /*priority=*/0);
  auto high = service.allocate("tenant-c", 2, /*priority=*/5);
  auto d_ok = service.allocate("tenant-d", 2);
  auto d_over = service.allocate("tenant-d", 1);  // quota is 2: rejected
  service.start();
  const auto r_low = low.get();
  const auto r_high = high.get();
  std::printf(
      "\nservice: prio5 -> wrank %lu (%s), prio0 -> wrank %lu (%s)\n",
      static_cast<unsigned long>(r_high.wrank), core::to_string(r_high.status),
      static_cast<unsigned long>(r_low.wrank), core::to_string(r_low.status));
  std::printf("  tenant-d: first alloc %s, over-quota alloc %s\n",
              core::to_string(d_ok.get().status),
              core::to_string(d_over.get().status));
  std::printf("  resize prio5 wrank to 3 slots: %s\n",
              core::to_string(service.resize(r_high.wrank, 3).get().status));
  std::printf("  occupancy: tenant-c %u slots, tenant-d %u slots, "
              "fragmentation %u permille\n",
              host.manager.tenant_slots("tenant-c"),
              host.manager.tenant_slots("tenant-d"),
              host.manager.fragmentation_permille());
  service.stop();  // queued work would resolve kShutdown here, never hang
  std::printf("  post-stop allocate: %s\n",
              core::to_string(service.allocate("tenant-c", 1).get().status));

  const auto stats = host.manager.stats();
  std::printf(
      "\nmanager summary: %lu allocations, %lu reuse hits, %lu resets, "
      "%lu releases observed, %lu failed requests\n",
      static_cast<unsigned long>(stats.allocations),
      static_cast<unsigned long>(stats.reuse_hits),
      static_cast<unsigned long>(stats.resets),
      static_cast<unsigned long>(stats.releases_observed),
      static_cast<unsigned long>(stats.failed_requests));
  std::printf("simulated time elapsed: %.1f ms\n", ns_to_ms(host.clock.now()));
  return res_a.correct && res_b.correct ? 0 : 1;
}
