// KV service walkthrough (ISSUE 10): a partitioned key-value store on a
// vUPMEM device, driven with batched GET/PUT/DELETE/SCAN through the
// SQ/CQ pipeline, then hammered with a Zipfian hot-key trace so the
// skew-mitigation tier (hot-key cache + partition rebalancer + Manager
// wrank resizes) has something to do.
//
// Build & run:  ./build/examples/kv_service
#include <cstdio>

#include "kv/kv_service.h"
#include "kv/loadgen.h"
#include "vpim/host.h"
#include "vpim/vpim_vm.h"

using namespace vpim;

int main() {
  core::Host host;
  core::VpimVm vm(host, {.name = "kv-demo"}, 1);
  core::Frontend& fe = vm.device(0).frontend;

  kv::KvConfig cfg;
  cfg.partitions = 32;
  cfg.nr_dpus = 8;
  kv::KvService svc(fe, vm.vmm().memory(), host.clock, host.cost, host.obs,
                    cfg);
  // Mirror the service footprint into the Manager's wrank ledger.
  svc.attach_manager(&host.manager, "kv-demo");
  if (!svc.open()) {
    std::printf("no rank available\n");
    return 1;
  }
  std::printf("kv service open: %u partitions over %u DPUs\n",
              cfg.partitions, cfg.nr_dpus);

  // ---- 1. batched point ops --------------------------------------------
  std::vector<kv::KvOp> batch;
  for (std::uint64_t k = 0; k < 64; ++k) {
    batch.push_back({kv::KvOpKind::kPut, k, 1000 + k, 0});
  }
  auto results = svc.execute(batch);
  std::printf("put %zu keys, first status=%s\n", results.size(),
              kv::to_string(results[0].status));

  batch.clear();
  batch.push_back({kv::KvOpKind::kGet, 7, 0, 0});
  batch.push_back({kv::KvOpKind::kDelete, 8, 0, 0});
  batch.push_back({kv::KvOpKind::kGet, 8, 0, 0});
  batch.push_back({kv::KvOpKind::kScan, 0, 0, 16});
  results = svc.execute(batch);
  std::printf("get(7)  -> %s value=%llu\n", kv::to_string(results[0].status),
              static_cast<unsigned long long>(results[0].value));
  std::printf("del(8)  -> %s\n", kv::to_string(results[1].status));
  std::printf("get(8)  -> %s (deleted)\n", kv::to_string(results[2].status));
  std::printf("scan[0,16) -> %u rows\n", results[3].nresults);

  // ---- 2. a skewed trace to trigger the mitigation tier ----------------
  kv::LoadgenConfig lg;
  lg.seed = 42;
  lg.nr_ops = 6000;
  lg.key_space = 4096;
  lg.zipf_theta_permille = 990;  // YCSB theta=0.99
  const auto trace = kv::generate_trace(lg);

  std::vector<kv::KvOp> window;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    window.push_back(trace[i].op);
    if (window.size() == 64 || i + 1 == trace.size()) {
      svc.execute(window);
      window.clear();
    }
  }

  const kv::KvStats& st = svc.stats();
  std::printf("\nafter %llu skewed ops:\n",
              static_cast<unsigned long long>(st.gets + st.puts +
                                              st.deletes + st.scans));
  std::printf("  cache hits      %llu (%.1f%% of gets)\n",
              static_cast<unsigned long long>(st.cache_hits),
              st.gets > 0 ? 100.0 * static_cast<double>(st.cache_hits) /
                                static_cast<double>(st.gets)
                          : 0.0);
  std::printf("  rebalances      %llu (%llu records moved)\n",
              static_cast<unsigned long long>(st.rebalances),
              static_cast<unsigned long long>(st.migrated_records));
  std::printf("  wrank resizes   %llu\n",
              static_cast<unsigned long long>(st.wrank_resizes));
  std::printf("  device cycles   %llu for %llu batches\n",
              static_cast<unsigned long long>(st.cycles),
              static_cast<unsigned long long>(st.batches));
  const core::ManagerStats ms = host.manager.stats();
  std::printf("  manager: %llu wrank allocs, %llu resizes\n",
              static_cast<unsigned long long>(ms.wrank_allocs),
              static_cast<unsigned long long>(ms.wrank_resizes));
  std::printf("  virtual time    %.3f ms\n",
              static_cast<double>(host.clock.now()) / 1e6);

  svc.close();
  std::printf("done\n");
  return 0;
}
