// Checksum in the cloud: runs the UPMEM checksum demo natively, then
// unmodified inside a Firecracker microVM with a vUPMEM device, and
// reports the virtualization overhead and what the vPIM optimizations did
// (messages saved by batching, prefetch hit rate, etc.).
//
// Build & run:  ./build/examples/checksum_cloud
#include <cstdio>

#include "prim/micro.h"
#include "sdk/native.h"
#include "vpim/guest_platform.h"
#include "vpim/host.h"
#include "vpim/vpim_vm.h"

using namespace vpim;

int main() {
  prim::ChecksumParams params;
  params.nr_dpus = 60;
  params.file_bytes = 20 * kMiB;

  // --- native run -------------------------------------------------------
  core::Host native_host;
  sdk::NativePlatform native(native_host.drv, "checksum-native");
  const auto native_res = prim::run_checksum(native, params);
  std::printf("native : %8.1f ms  (correct: %s; ops: %lu W / %lu R / %lu "
              "CI)\n",
              ns_to_ms(native_res.total),
              native_res.correct ? "yes" : "NO",
              static_cast<unsigned long>(native_res.write_ops),
              static_cast<unsigned long>(native_res.read_ops),
              static_cast<unsigned long>(native_res.ci_ops));

  // --- the same application, unmodified, inside a VM ---------------------
  core::Host host;
  core::VpimVm vm(host, {.name = "checksum-vm", .vcpus = 16}, 1);
  std::printf("booted %s in %.1f ms (vUPMEM device adds ~2 ms)\n",
              vm.vmm().name().c_str(), ns_to_ms(vm.boot_duration()));

  core::GuestPlatform guest(vm);
  const auto vpim_res = prim::run_checksum(guest, params);
  std::printf("vPIM   : %8.1f ms  (correct: %s)\n",
              ns_to_ms(vpim_res.total), vpim_res.correct ? "yes" : "NO");
  std::printf("overhead: %.2fx (paper: 1.29x-2.33x depending on size)\n",
              static_cast<double>(vpim_res.total) /
                  static_cast<double>(native_res.total));

  const auto& stats = vm.device(0).stats;
  std::printf("\nvirtualization internals:\n");
  std::printf("  guest->VMM messages (VMEXITs): %lu\n",
              static_cast<unsigned long>(stats.notifies));
  std::printf("  writes absorbed by batching : %lu (%lu flushes)\n",
              static_cast<unsigned long>(stats.batched_writes),
              static_cast<unsigned long>(stats.batch_flushes));
  std::printf("  prefetch cache               : %lu hits / %lu misses\n",
              static_cast<unsigned long>(stats.cache_hits),
              static_cast<unsigned long>(stats.cache_misses));
  std::printf("  write-to-rank step times     : Page %.2f ms, Ser %.2f "
              "ms, Int %.2f ms, Deser %.2f ms, T-data %.2f ms\n",
              ns_to_ms(stats.wsteps.time(WrankStep::kPageMgmt)),
              ns_to_ms(stats.wsteps.time(WrankStep::kSerialize)),
              ns_to_ms(stats.wsteps.time(WrankStep::kInterrupt)),
              ns_to_ms(stats.wsteps.time(WrankStep::kDeserialize)),
              ns_to_ms(stats.wsteps.time(WrankStep::kTransferData)));
  return native_res.correct && vpim_res.correct ? 0 : 1;
}
