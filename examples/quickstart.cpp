// Quickstart: the paper's Fig 2 walkthrough — count the zeros in an array
// with UPMEM DPUs — on the simulated native platform.
//
//   1. register a DPU kernel (stands in for the compiled DPU binary)
//   2. allocate DPUs, load the kernel
//   3. distribute data (CPU->DPU), launch, collect results (DPU->CPU)
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <cstring>

#include "common/rng.h"
#include "driver/driver.h"
#include "sdk/dpu_set.h"
#include "sdk/native.h"
#include "upmem/kernel.h"
#include "upmem/machine.h"

using namespace vpim;

namespace {

constexpr std::uint32_t kNrDpus = 60;        // one rank
constexpr std::uint32_t kWordsPerDpu = 1 << 18;  // 1 MiB per DPU

// DPU-side program (Fig 2b): each tasklet streams its slice of the
// partition through WRAM and counts zero words.
void register_dpu_binary() {
  upmem::DpuKernel k;
  k.name = "count_zeros";
  k.symbols = {{"zero_count", 4}, {"partition_size", 4}};
  k.stages.push_back([](upmem::DpuCtx& ctx) {
    if (ctx.me() == 0) ctx.var<std::uint32_t>("zero_count") = 0;
  });
  k.stages.push_back([](upmem::DpuCtx& ctx) {
    const std::uint32_t n = ctx.var<std::uint32_t>("partition_size") / 4;
    const std::uint32_t per = (n + ctx.nr_tasklets() - 1) / ctx.nr_tasklets();
    const std::uint32_t begin = ctx.me() * per;
    const std::uint32_t end = std::min(n, begin + per);
    if (begin >= end) return;
    constexpr std::uint32_t kBlock = 512;
    auto buf = ctx.mem_alloc(kBlock * 4);
    std::uint32_t zeros = 0;
    for (std::uint32_t w = begin; w < end; w += kBlock) {
      const std::uint32_t blk = std::min(kBlock, end - w);
      ctx.mram_read(w * 4, buf.first(blk * 4));
      for (std::uint32_t i = 0; i < blk; ++i) {
        std::int32_t v;
        std::memcpy(&v, buf.data() + i * 4, 4);
        if (v == 0) ++zeros;
      }
    }
    ctx.exec(end - begin);
    ctx.var<std::uint32_t>("zero_count") += zeros;
  });
  upmem::KernelRegistry::instance().add(std::move(k));
}

}  // namespace

int main() {
  register_dpu_binary();

  // A simulated UPMEM host: 8 ranks x 60 DPUs at 350 MHz (the paper's
  // testbed), with its kernel driver.
  SimClock clock;
  CostModel cost;
  upmem::PimMachine machine({}, clock, cost);
  driver::UpmemDriver drv(machine);
  sdk::NativePlatform platform(drv, "quickstart");

  std::printf("machine: %u ranks, %u DPUs total\n", machine.nr_ranks(),
              machine.total_dpus());

  // Host-side program (Fig 2a).
  auto set = sdk::DpuSet::allocate(platform, kNrDpus);
  set.load("count_zeros");
  std::printf("allocated %u DPUs across %u rank(s)\n", set.nr_dpus(),
              set.nr_ranks());

  // Build the input and compute the expected answer on the CPU.
  Rng rng(2024);
  auto data = platform.alloc(std::uint64_t{kNrDpus} * kWordsPerDpu * 4);
  std::uint32_t expected = 0;
  for (std::uint64_t i = 0; i < std::uint64_t{kNrDpus} * kWordsPerDpu;
       ++i) {
    std::int32_t v = (i % 9 == 0) ? 0
                                  : static_cast<std::int32_t>(
                                        rng.uniform(1, 1 << 30));
    std::memcpy(data.data() + i * 4, &v, 4);
    if (v == 0) ++expected;
  }

  // CPU->DPU: one parallel push distributes the partitions.
  const std::uint32_t partition_bytes = kWordsPerDpu * 4;
  for (std::uint32_t d = 0; d < kNrDpus; ++d) {
    set.prepare_xfer(d, data.data() + std::uint64_t{d} * partition_bytes);
  }
  set.push_xfer(driver::XferDirection::kToRank, sdk::Target::mram(0),
                partition_bytes);
  set.broadcast(sdk::Target::symbol("partition_size"),
                {reinterpret_cast<const std::uint8_t*>(&partition_bytes),
                 4});

  // Launch all DPUs (16 tasklets each) and wait.
  set.launch(16);

  // DPU->CPU: collect per-DPU counters.
  std::uint32_t total = 0;
  for (std::uint32_t d = 0; d < kNrDpus; ++d) {
    std::uint32_t v = 0;
    set.copy_from(d, sdk::Target::symbol("zero_count"),
                  {reinterpret_cast<std::uint8_t*>(&v), 4});
    total += v;
  }
  set.free();

  std::printf("DPUs counted %u zero words (expected %u) -> %s\n", total,
              expected, total == expected ? "OK" : "MISMATCH");
  std::printf("simulated execution time: %.2f ms\n",
              ns_to_ms(clock.now()));
  return total == expected ? 0 : 1;
}
