// Wikipedia Index Search in a VM (§5.3.2): builds an inverted index over
// a synthetic document corpus, distributes it across virtualized DPUs, and
// answers query batches — comparing against the same run on bare metal.
//
// Build & run:  ./build/examples/wiki_search
#include <cstdio>

#include "prim/micro.h"
#include "sdk/native.h"
#include "vpim/guest_platform.h"
#include "vpim/host.h"
#include "vpim/vpim_vm.h"

using namespace vpim;

int main() {
  // The paper's benchmark configuration: a ~63 MB index over 4305
  // documents, 445 queries in batches of 128 (§5.3.2).
  prim::IndexSearchParams params;
  params.nr_dpus = 60;

  core::Host native_host;
  sdk::NativePlatform native(native_host.drv, "wiki-native");
  const auto native_res = prim::run_index_search(native, params);
  std::printf("native : %8.1f ms, index %.1f MB, %lu matches (%s)\n",
              ns_to_ms(native_res.total),
              static_cast<double>(native_res.index_bytes) / (1 << 20),
              static_cast<unsigned long>(native_res.matches),
              native_res.correct ? "correct" : "WRONG");

  core::Host host;
  core::VpimVm vm(host, {.name = "wiki-vm"}, 1);
  core::GuestPlatform guest(vm);
  const auto vpim_res = prim::run_index_search(guest, params);
  std::printf("vPIM   : %8.1f ms, %lu matches (%s)\n",
              ns_to_ms(vpim_res.total),
              static_cast<unsigned long>(vpim_res.matches),
              vpim_res.correct ? "correct" : "WRONG");
  std::printf("overhead: %.2fx (paper: 1.3x-2.1x depending on #DPUs)\n",
              static_cast<double>(vpim_res.total) /
                  static_cast<double>(native_res.total));
  return native_res.correct && vpim_res.correct &&
                 native_res.matches == vpim_res.matches
             ? 0
             : 1;
}
