# Empty compiler generated dependencies file for vpim_internals_test.
# This may be replaced when dependencies are built.
