file(REMOVE_RECURSE
  "CMakeFiles/vpim_internals_test.dir/vpim_internals_test.cc.o"
  "CMakeFiles/vpim_internals_test.dir/vpim_internals_test.cc.o.d"
  "vpim_internals_test"
  "vpim_internals_test.pdb"
  "vpim_internals_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpim_internals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
