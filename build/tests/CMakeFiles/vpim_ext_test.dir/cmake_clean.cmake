file(REMOVE_RECURSE
  "CMakeFiles/vpim_ext_test.dir/vpim_ext_test.cc.o"
  "CMakeFiles/vpim_ext_test.dir/vpim_ext_test.cc.o.d"
  "vpim_ext_test"
  "vpim_ext_test.pdb"
  "vpim_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpim_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
