file(REMOVE_RECURSE
  "CMakeFiles/vpim_test.dir/vpim_test.cc.o"
  "CMakeFiles/vpim_test.dir/vpim_test.cc.o.d"
  "vpim_test"
  "vpim_test.pdb"
  "vpim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
