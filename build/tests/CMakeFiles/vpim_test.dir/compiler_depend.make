# Empty compiler generated dependencies file for vpim_test.
# This may be replaced when dependencies are built.
