file(REMOVE_RECURSE
  "CMakeFiles/upmem_test.dir/upmem_test.cc.o"
  "CMakeFiles/upmem_test.dir/upmem_test.cc.o.d"
  "upmem_test"
  "upmem_test.pdb"
  "upmem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upmem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
