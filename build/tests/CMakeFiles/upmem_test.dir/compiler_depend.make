# Empty compiler generated dependencies file for upmem_test.
# This may be replaced when dependencies are built.
