# Empty dependencies file for sdk_test.
# This may be replaced when dependencies are built.
