
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/prim_test.cc" "tests/CMakeFiles/prim_test.dir/prim_test.cc.o" "gcc" "tests/CMakeFiles/prim_test.dir/prim_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/prim/CMakeFiles/vpim_prim.dir/DependInfo.cmake"
  "/root/repo/build/src/vpim/CMakeFiles/vpim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sdk/CMakeFiles/vpim_sdk.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/vpim_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/upmem/CMakeFiles/vpim_upmem.dir/DependInfo.cmake"
  "/root/repo/build/src/virtio/CMakeFiles/vpim_virtio.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/vpim_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vpim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
