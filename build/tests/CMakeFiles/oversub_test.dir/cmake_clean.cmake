file(REMOVE_RECURSE
  "CMakeFiles/oversub_test.dir/oversub_test.cc.o"
  "CMakeFiles/oversub_test.dir/oversub_test.cc.o.d"
  "oversub_test"
  "oversub_test.pdb"
  "oversub_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oversub_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
