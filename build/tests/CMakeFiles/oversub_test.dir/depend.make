# Empty dependencies file for oversub_test.
# This may be replaced when dependencies are built.
