file(REMOVE_RECURSE
  "CMakeFiles/guest_wire_test.dir/guest_wire_test.cc.o"
  "CMakeFiles/guest_wire_test.dir/guest_wire_test.cc.o.d"
  "guest_wire_test"
  "guest_wire_test.pdb"
  "guest_wire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guest_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
