# Empty dependencies file for guest_wire_test.
# This may be replaced when dependencies are built.
