# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/upmem_test[1]_include.cmake")
include("/root/repo/build/tests/driver_test[1]_include.cmake")
include("/root/repo/build/tests/sdk_test[1]_include.cmake")
include("/root/repo/build/tests/virtio_test[1]_include.cmake")
include("/root/repo/build/tests/guest_wire_test[1]_include.cmake")
include("/root/repo/build/tests/manager_test[1]_include.cmake")
include("/root/repo/build/tests/vpim_test[1]_include.cmake")
include("/root/repo/build/tests/prim_test[1]_include.cmake")
include("/root/repo/build/tests/vpim_ext_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/event_loop_test[1]_include.cmake")
include("/root/repo/build/tests/vpim_internals_test[1]_include.cmake")
include("/root/repo/build/tests/oversub_test[1]_include.cmake")
include("/root/repo/build/tests/snapshot_test[1]_include.cmake")
include("/root/repo/build/tests/soak_test[1]_include.cmake")
