file(REMOVE_RECURSE
  "libvpim_upmem.a"
)
