# Empty compiler generated dependencies file for vpim_upmem.
# This may be replaced when dependencies are built.
