file(REMOVE_RECURSE
  "CMakeFiles/vpim_upmem.dir/dpu.cc.o"
  "CMakeFiles/vpim_upmem.dir/dpu.cc.o.d"
  "CMakeFiles/vpim_upmem.dir/interleave.cc.o"
  "CMakeFiles/vpim_upmem.dir/interleave.cc.o.d"
  "CMakeFiles/vpim_upmem.dir/kernel.cc.o"
  "CMakeFiles/vpim_upmem.dir/kernel.cc.o.d"
  "CMakeFiles/vpim_upmem.dir/machine.cc.o"
  "CMakeFiles/vpim_upmem.dir/machine.cc.o.d"
  "CMakeFiles/vpim_upmem.dir/mram.cc.o"
  "CMakeFiles/vpim_upmem.dir/mram.cc.o.d"
  "CMakeFiles/vpim_upmem.dir/rank.cc.o"
  "CMakeFiles/vpim_upmem.dir/rank.cc.o.d"
  "libvpim_upmem.a"
  "libvpim_upmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpim_upmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
