
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/upmem/dpu.cc" "src/upmem/CMakeFiles/vpim_upmem.dir/dpu.cc.o" "gcc" "src/upmem/CMakeFiles/vpim_upmem.dir/dpu.cc.o.d"
  "/root/repo/src/upmem/interleave.cc" "src/upmem/CMakeFiles/vpim_upmem.dir/interleave.cc.o" "gcc" "src/upmem/CMakeFiles/vpim_upmem.dir/interleave.cc.o.d"
  "/root/repo/src/upmem/kernel.cc" "src/upmem/CMakeFiles/vpim_upmem.dir/kernel.cc.o" "gcc" "src/upmem/CMakeFiles/vpim_upmem.dir/kernel.cc.o.d"
  "/root/repo/src/upmem/machine.cc" "src/upmem/CMakeFiles/vpim_upmem.dir/machine.cc.o" "gcc" "src/upmem/CMakeFiles/vpim_upmem.dir/machine.cc.o.d"
  "/root/repo/src/upmem/mram.cc" "src/upmem/CMakeFiles/vpim_upmem.dir/mram.cc.o" "gcc" "src/upmem/CMakeFiles/vpim_upmem.dir/mram.cc.o.d"
  "/root/repo/src/upmem/rank.cc" "src/upmem/CMakeFiles/vpim_upmem.dir/rank.cc.o" "gcc" "src/upmem/CMakeFiles/vpim_upmem.dir/rank.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vpim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
