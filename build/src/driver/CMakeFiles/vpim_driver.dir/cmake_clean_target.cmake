file(REMOVE_RECURSE
  "libvpim_driver.a"
)
