
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/driver/driver.cc" "src/driver/CMakeFiles/vpim_driver.dir/driver.cc.o" "gcc" "src/driver/CMakeFiles/vpim_driver.dir/driver.cc.o.d"
  "/root/repo/src/driver/sysfs.cc" "src/driver/CMakeFiles/vpim_driver.dir/sysfs.cc.o" "gcc" "src/driver/CMakeFiles/vpim_driver.dir/sysfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/upmem/CMakeFiles/vpim_upmem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vpim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
