# Empty compiler generated dependencies file for vpim_driver.
# This may be replaced when dependencies are built.
