file(REMOVE_RECURSE
  "CMakeFiles/vpim_driver.dir/driver.cc.o"
  "CMakeFiles/vpim_driver.dir/driver.cc.o.d"
  "CMakeFiles/vpim_driver.dir/sysfs.cc.o"
  "CMakeFiles/vpim_driver.dir/sysfs.cc.o.d"
  "libvpim_driver.a"
  "libvpim_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpim_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
