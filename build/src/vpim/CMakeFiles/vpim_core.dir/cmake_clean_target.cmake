file(REMOVE_RECURSE
  "libvpim_core.a"
)
