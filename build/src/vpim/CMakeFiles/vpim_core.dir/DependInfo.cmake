
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vpim/backend.cc" "src/vpim/CMakeFiles/vpim_core.dir/backend.cc.o" "gcc" "src/vpim/CMakeFiles/vpim_core.dir/backend.cc.o.d"
  "/root/repo/src/vpim/frontend.cc" "src/vpim/CMakeFiles/vpim_core.dir/frontend.cc.o" "gcc" "src/vpim/CMakeFiles/vpim_core.dir/frontend.cc.o.d"
  "/root/repo/src/vpim/guest_platform.cc" "src/vpim/CMakeFiles/vpim_core.dir/guest_platform.cc.o" "gcc" "src/vpim/CMakeFiles/vpim_core.dir/guest_platform.cc.o.d"
  "/root/repo/src/vpim/manager.cc" "src/vpim/CMakeFiles/vpim_core.dir/manager.cc.o" "gcc" "src/vpim/CMakeFiles/vpim_core.dir/manager.cc.o.d"
  "/root/repo/src/vpim/manager_service.cc" "src/vpim/CMakeFiles/vpim_core.dir/manager_service.cc.o" "gcc" "src/vpim/CMakeFiles/vpim_core.dir/manager_service.cc.o.d"
  "/root/repo/src/vpim/wire.cc" "src/vpim/CMakeFiles/vpim_core.dir/wire.cc.o" "gcc" "src/vpim/CMakeFiles/vpim_core.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sdk/CMakeFiles/vpim_sdk.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/vpim_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/upmem/CMakeFiles/vpim_upmem.dir/DependInfo.cmake"
  "/root/repo/build/src/virtio/CMakeFiles/vpim_virtio.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/vpim_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vpim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
