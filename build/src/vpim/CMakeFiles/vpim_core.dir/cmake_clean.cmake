file(REMOVE_RECURSE
  "CMakeFiles/vpim_core.dir/backend.cc.o"
  "CMakeFiles/vpim_core.dir/backend.cc.o.d"
  "CMakeFiles/vpim_core.dir/frontend.cc.o"
  "CMakeFiles/vpim_core.dir/frontend.cc.o.d"
  "CMakeFiles/vpim_core.dir/guest_platform.cc.o"
  "CMakeFiles/vpim_core.dir/guest_platform.cc.o.d"
  "CMakeFiles/vpim_core.dir/manager.cc.o"
  "CMakeFiles/vpim_core.dir/manager.cc.o.d"
  "CMakeFiles/vpim_core.dir/manager_service.cc.o"
  "CMakeFiles/vpim_core.dir/manager_service.cc.o.d"
  "CMakeFiles/vpim_core.dir/wire.cc.o"
  "CMakeFiles/vpim_core.dir/wire.cc.o.d"
  "libvpim_core.a"
  "libvpim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
