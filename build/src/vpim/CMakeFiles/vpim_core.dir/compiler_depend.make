# Empty compiler generated dependencies file for vpim_core.
# This may be replaced when dependencies are built.
