# CMake generated Testfile for 
# Source directory: /root/repo/src/vpim
# Build directory: /root/repo/build/src/vpim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
