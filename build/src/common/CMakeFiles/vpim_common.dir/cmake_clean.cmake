file(REMOVE_RECURSE
  "CMakeFiles/vpim_common.dir/log.cc.o"
  "CMakeFiles/vpim_common.dir/log.cc.o.d"
  "libvpim_common.a"
  "libvpim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
