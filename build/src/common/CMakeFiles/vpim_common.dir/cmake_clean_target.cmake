file(REMOVE_RECURSE
  "libvpim_common.a"
)
