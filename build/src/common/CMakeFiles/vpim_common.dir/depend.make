# Empty dependencies file for vpim_common.
# This may be replaced when dependencies are built.
