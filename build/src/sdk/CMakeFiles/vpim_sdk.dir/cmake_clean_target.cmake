file(REMOVE_RECURSE
  "libvpim_sdk.a"
)
