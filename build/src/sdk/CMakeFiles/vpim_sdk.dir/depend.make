# Empty dependencies file for vpim_sdk.
# This may be replaced when dependencies are built.
