file(REMOVE_RECURSE
  "CMakeFiles/vpim_sdk.dir/dpu_set.cc.o"
  "CMakeFiles/vpim_sdk.dir/dpu_set.cc.o.d"
  "CMakeFiles/vpim_sdk.dir/native.cc.o"
  "CMakeFiles/vpim_sdk.dir/native.cc.o.d"
  "libvpim_sdk.a"
  "libvpim_sdk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpim_sdk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
