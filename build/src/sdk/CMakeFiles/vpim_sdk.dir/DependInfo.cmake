
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sdk/dpu_set.cc" "src/sdk/CMakeFiles/vpim_sdk.dir/dpu_set.cc.o" "gcc" "src/sdk/CMakeFiles/vpim_sdk.dir/dpu_set.cc.o.d"
  "/root/repo/src/sdk/native.cc" "src/sdk/CMakeFiles/vpim_sdk.dir/native.cc.o" "gcc" "src/sdk/CMakeFiles/vpim_sdk.dir/native.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/vpim_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/upmem/CMakeFiles/vpim_upmem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vpim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
