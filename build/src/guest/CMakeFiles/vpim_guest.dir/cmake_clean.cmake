file(REMOVE_RECURSE
  "CMakeFiles/vpim_guest.dir/guest_memory.cc.o"
  "CMakeFiles/vpim_guest.dir/guest_memory.cc.o.d"
  "libvpim_guest.a"
  "libvpim_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpim_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
