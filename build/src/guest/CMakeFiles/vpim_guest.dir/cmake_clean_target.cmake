file(REMOVE_RECURSE
  "libvpim_guest.a"
)
