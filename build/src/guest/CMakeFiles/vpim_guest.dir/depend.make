# Empty dependencies file for vpim_guest.
# This may be replaced when dependencies are built.
