file(REMOVE_RECURSE
  "libvpim_virtio.a"
)
