# Empty dependencies file for vpim_virtio.
# This may be replaced when dependencies are built.
