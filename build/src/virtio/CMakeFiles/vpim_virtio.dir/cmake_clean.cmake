file(REMOVE_RECURSE
  "CMakeFiles/vpim_virtio.dir/virtqueue.cc.o"
  "CMakeFiles/vpim_virtio.dir/virtqueue.cc.o.d"
  "libvpim_virtio.a"
  "libvpim_virtio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpim_virtio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
