# Empty compiler generated dependencies file for vpim_prim.
# This may be replaced when dependencies are built.
