file(REMOVE_RECURSE
  "CMakeFiles/vpim_prim.dir/app.cc.o"
  "CMakeFiles/vpim_prim.dir/app.cc.o.d"
  "CMakeFiles/vpim_prim.dir/db.cc.o"
  "CMakeFiles/vpim_prim.dir/db.cc.o.d"
  "CMakeFiles/vpim_prim.dir/dense.cc.o"
  "CMakeFiles/vpim_prim.dir/dense.cc.o.d"
  "CMakeFiles/vpim_prim.dir/heavy.cc.o"
  "CMakeFiles/vpim_prim.dir/heavy.cc.o.d"
  "CMakeFiles/vpim_prim.dir/hist.cc.o"
  "CMakeFiles/vpim_prim.dir/hist.cc.o.d"
  "CMakeFiles/vpim_prim.dir/micro.cc.o"
  "CMakeFiles/vpim_prim.dir/micro.cc.o.d"
  "CMakeFiles/vpim_prim.dir/reduce_scan.cc.o"
  "CMakeFiles/vpim_prim.dir/reduce_scan.cc.o.d"
  "CMakeFiles/vpim_prim.dir/sparse_graph.cc.o"
  "CMakeFiles/vpim_prim.dir/sparse_graph.cc.o.d"
  "libvpim_prim.a"
  "libvpim_prim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpim_prim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
