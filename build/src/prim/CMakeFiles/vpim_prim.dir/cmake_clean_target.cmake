file(REMOVE_RECURSE
  "libvpim_prim.a"
)
