
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prim/app.cc" "src/prim/CMakeFiles/vpim_prim.dir/app.cc.o" "gcc" "src/prim/CMakeFiles/vpim_prim.dir/app.cc.o.d"
  "/root/repo/src/prim/db.cc" "src/prim/CMakeFiles/vpim_prim.dir/db.cc.o" "gcc" "src/prim/CMakeFiles/vpim_prim.dir/db.cc.o.d"
  "/root/repo/src/prim/dense.cc" "src/prim/CMakeFiles/vpim_prim.dir/dense.cc.o" "gcc" "src/prim/CMakeFiles/vpim_prim.dir/dense.cc.o.d"
  "/root/repo/src/prim/heavy.cc" "src/prim/CMakeFiles/vpim_prim.dir/heavy.cc.o" "gcc" "src/prim/CMakeFiles/vpim_prim.dir/heavy.cc.o.d"
  "/root/repo/src/prim/hist.cc" "src/prim/CMakeFiles/vpim_prim.dir/hist.cc.o" "gcc" "src/prim/CMakeFiles/vpim_prim.dir/hist.cc.o.d"
  "/root/repo/src/prim/micro.cc" "src/prim/CMakeFiles/vpim_prim.dir/micro.cc.o" "gcc" "src/prim/CMakeFiles/vpim_prim.dir/micro.cc.o.d"
  "/root/repo/src/prim/reduce_scan.cc" "src/prim/CMakeFiles/vpim_prim.dir/reduce_scan.cc.o" "gcc" "src/prim/CMakeFiles/vpim_prim.dir/reduce_scan.cc.o.d"
  "/root/repo/src/prim/sparse_graph.cc" "src/prim/CMakeFiles/vpim_prim.dir/sparse_graph.cc.o" "gcc" "src/prim/CMakeFiles/vpim_prim.dir/sparse_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sdk/CMakeFiles/vpim_sdk.dir/DependInfo.cmake"
  "/root/repo/build/src/upmem/CMakeFiles/vpim_upmem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vpim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/vpim_driver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
