# Empty dependencies file for fig10_index_search.
# This may be replaced when dependencies are built.
