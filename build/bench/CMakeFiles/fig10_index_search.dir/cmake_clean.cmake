file(REMOVE_RECURSE
  "CMakeFiles/fig10_index_search.dir/fig10_index_search.cc.o"
  "CMakeFiles/fig10_index_search.dir/fig10_index_search.cc.o.d"
  "fig10_index_search"
  "fig10_index_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_index_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
