# Empty dependencies file for fig15_parallel_ranks.
# This may be replaced when dependencies are built.
