file(REMOVE_RECURSE
  "CMakeFiles/fig15_parallel_ranks.dir/fig15_parallel_ranks.cc.o"
  "CMakeFiles/fig15_parallel_ranks.dir/fig15_parallel_ranks.cc.o.d"
  "fig15_parallel_ranks"
  "fig15_parallel_ranks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_parallel_ranks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
