# Empty compiler generated dependencies file for fig13_wrank_breakdown.
# This may be replaced when dependencies are built.
