# Empty dependencies file for fig16_rank_timeline.
# This may be replaced when dependencies are built.
