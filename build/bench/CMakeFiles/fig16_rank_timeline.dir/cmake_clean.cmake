file(REMOVE_RECURSE
  "CMakeFiles/fig16_rank_timeline.dir/fig16_rank_timeline.cc.o"
  "CMakeFiles/fig16_rank_timeline.dir/fig16_rank_timeline.cc.o.d"
  "fig16_rank_timeline"
  "fig16_rank_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_rank_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
