file(REMOVE_RECURSE
  "CMakeFiles/fig11_c_enhancement.dir/fig11_c_enhancement.cc.o"
  "CMakeFiles/fig11_c_enhancement.dir/fig11_c_enhancement.cc.o.d"
  "fig11_c_enhancement"
  "fig11_c_enhancement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_c_enhancement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
