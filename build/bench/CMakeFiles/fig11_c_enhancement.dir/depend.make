# Empty dependencies file for fig11_c_enhancement.
# This may be replaced when dependencies are built.
