file(REMOVE_RECURSE
  "CMakeFiles/oversub_consolidation.dir/oversub_consolidation.cc.o"
  "CMakeFiles/oversub_consolidation.dir/oversub_consolidation.cc.o.d"
  "oversub_consolidation"
  "oversub_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oversub_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
