# Empty dependencies file for oversub_consolidation.
# This may be replaced when dependencies are built.
