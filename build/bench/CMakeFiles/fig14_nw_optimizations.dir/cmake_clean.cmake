file(REMOVE_RECURSE
  "CMakeFiles/fig14_nw_optimizations.dir/fig14_nw_optimizations.cc.o"
  "CMakeFiles/fig14_nw_optimizations.dir/fig14_nw_optimizations.cc.o.d"
  "fig14_nw_optimizations"
  "fig14_nw_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_nw_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
