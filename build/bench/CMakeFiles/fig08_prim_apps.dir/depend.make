# Empty dependencies file for fig08_prim_apps.
# This may be replaced when dependencies are built.
