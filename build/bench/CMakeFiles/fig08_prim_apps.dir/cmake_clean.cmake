file(REMOVE_RECURSE
  "CMakeFiles/fig08_prim_apps.dir/fig08_prim_apps.cc.o"
  "CMakeFiles/fig08_prim_apps.dir/fig08_prim_apps.cc.o.d"
  "fig08_prim_apps"
  "fig08_prim_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_prim_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
