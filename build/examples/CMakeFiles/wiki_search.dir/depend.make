# Empty dependencies file for wiki_search.
# This may be replaced when dependencies are built.
