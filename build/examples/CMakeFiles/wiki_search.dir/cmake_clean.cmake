file(REMOVE_RECURSE
  "CMakeFiles/wiki_search.dir/wiki_search.cpp.o"
  "CMakeFiles/wiki_search.dir/wiki_search.cpp.o.d"
  "wiki_search"
  "wiki_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wiki_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
