file(REMOVE_RECURSE
  "CMakeFiles/checksum_cloud.dir/checksum_cloud.cpp.o"
  "CMakeFiles/checksum_cloud.dir/checksum_cloud.cpp.o.d"
  "checksum_cloud"
  "checksum_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checksum_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
