# Empty dependencies file for checksum_cloud.
# This may be replaced when dependencies are built.
