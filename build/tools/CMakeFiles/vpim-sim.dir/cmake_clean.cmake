file(REMOVE_RECURSE
  "CMakeFiles/vpim-sim.dir/vpim_sim.cc.o"
  "CMakeFiles/vpim-sim.dir/vpim_sim.cc.o.d"
  "vpim-sim"
  "vpim-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpim-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
