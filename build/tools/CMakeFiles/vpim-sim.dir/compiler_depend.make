# Empty compiler generated dependencies file for vpim-sim.
# This may be replaced when dependencies are built.
