// Firecracker-like VMM shell: one Vmm instance per microVM, owning the
// guest memory, the vCPU configuration, and the virtio event loop (§3.2).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/cost_model.h"
#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "guest/guest_memory.h"
#include "vmm/event_loop.h"

namespace vpim::vmm {

struct VmmParams {
  std::string name = "vm";
  std::uint32_t vcpus = 16;
  // Real backing for guest RAM; sized for the workload rather than the
  // paper's nominal 128 GB VMs.
  std::uint64_t guest_ram_bytes = 512 * kMiB;
  // vPIM's parallel operation handling (Table 2 column 4).
  bool parallel_handling = false;
};

class Vmm {
 public:
  Vmm(const VmmParams& params, SimClock& clock, const CostModel& cost)
      : params_(params),
        clock_(clock),
        cost_(cost),
        memory_(params.guest_ram_bytes),
        loop_(clock, cost, params.parallel_handling) {}

  const std::string& name() const { return params_.name; }
  std::uint32_t vcpus() const { return params_.vcpus; }
  guest::GuestMemory& memory() { return memory_; }
  EventLoop& loop() { return loop_; }
  SimClock& clock() { return clock_; }
  const CostModel& cost() const { return cost_; }
  // Host thread pool the device models fan leaf work out on. Distinct
  // from `parallel_handling`, which models virtual-time dispatch: the
  // pool changes wall-clock only, never simulated time.
  ThreadPool& pool() { return pool_; }

  // Boots the microVM with `nr_virtio_devices` attached vUPMEM devices;
  // returns the boot duration (base microVM boot + ~2 ms per device, §3.2).
  SimNs boot(std::uint32_t nr_virtio_devices) {
    const SimNs start = clock_.now();
    clock_.advance(cost_.vm_boot_base_ns);
    clock_.advance(nr_virtio_devices * cost_.vupmem_boot_ns);
    booted_ = true;
    return clock_.now() - start;
  }

  bool booted() const { return booted_; }

 private:
  VmmParams params_;
  SimClock& clock_;
  const CostModel& cost_;
  guest::GuestMemory memory_;
  EventLoop loop_;
  ThreadPool& pool_ = ThreadPool::instance();
  bool booted_ = false;
};

}  // namespace vpim::vmm
