// Firecracker's virtio event handling, in virtual time.
//
// Stock Firecracker runs a single loop that pops device events and handles
// them to completion one at a time — so concurrent requests from different
// ranks serialize in the VMM (Fig 16, red). vPIM's parallel-handling
// optimization (§4.2) has the loop only *dispatch* each event to a
// dedicated thread and move on, so per-rank operations overlap (blue).
//
// *Virtual-time* concurrency is simulated by replaying parallel branches
// from the same virtual start time (SimClock::run_parallel), so the loop
// models its occupancy as a set of busy *intervals* rather than a single
// cursor. *Host* concurrency is separate: a dispatched handler's leaf work
// (DPU kernel execution, per-bank copies, GPA->HVA translation) fans out
// over Vmm::pool(), so parallel handling now shortens wall-clock too, not
// just the modeled timeline:
//  - sequential mode: a request occupies the loop for its whole handling,
//    FIFO behind every previously recorded interval;
//  - parallel mode: a request only occupies the loop for the fixed
//    thread-dispatch slot, gap-fitted between already-recorded slots, and
//    the handling itself proceeds off-loop.
#pragma once

#include <functional>
#include <map>

#include "common/cost_model.h"
#include "common/sim_clock.h"

namespace vpim::vmm {

class EventLoop {
 public:
  EventLoop(SimClock& clock, const CostModel& cost, bool parallel_handling)
      : clock_(clock), cost_(cost), parallel_(parallel_handling) {}

  bool parallel_handling() const { return parallel_; }
  void set_parallel_handling(bool on) { parallel_ = on; }

  // Dispatches a request arriving at the current virtual time. `handler`
  // performs the device work (advancing the clock). On return the clock
  // sits at the request's completion time.
  void dispatch(const std::function<void()>& handler) {
    prune();
    const SimNs arrival = clock_.now();
    if (parallel_) {
      // Find the first dispatch-slot-sized gap at or after arrival.
      const SimNs slot = cost_.thread_dispatch_ns;
      SimNs start = arrival;
      auto it = busy_.begin();
      // Skip intervals that end before the candidate start.
      while (it != busy_.end() && it->second <= start) ++it;
      while (it != busy_.end() && it->first < start + slot) {
        start = std::max(start, it->second);
        ++it;
      }
      busy_.emplace(start, start + slot);
      clock_.set(start + slot);
      handler();
    } else {
      // FIFO behind everything the loop has already committed to.
      SimNs start = arrival;
      if (!busy_.empty()) {
        start = std::max(start, std::prev(busy_.end())->second);
      }
      clock_.set(start);
      handler();
      busy_.emplace(start, clock_.now());
    }
  }

  // Virtual time at which all recorded work drains.
  SimNs busy_until() const {
    return busy_.empty() ? 0 : std::prev(busy_.end())->second;
  }

 private:
  void prune() {
    // Intervals ending before the clock's floor can never affect a future
    // arrival (branches never rewind below it).
    const SimNs floor = clock_.floor();
    for (auto it = busy_.begin();
         it != busy_.end() && it->second <= floor;) {
      it = busy_.erase(it);
    }
  }

  SimClock& clock_;
  const CostModel& cost_;
  bool parallel_;
  std::multimap<SimNs, SimNs> busy_;  // start -> end
};

}  // namespace vpim::vmm
