#include "upmem/interleave.h"

#include <cstring>

#include "common/error.h"

namespace vpim::upmem {

namespace {

constexpr std::uint32_t kChips = 8;

void check_args(std::span<const std::uint8_t> src,
                std::span<std::uint8_t> dst) {
  VPIM_CHECK(src.size() == dst.size(), "interleave buffers must match");
  VPIM_CHECK(src.size() % kChips == 0,
             "interleave size must be a multiple of 8");
}

// Transposes an 8x8 byte matrix held as 8 little-endian 64-bit rows
// (row i byte j <-> bits [8j, 8j+8) of x[i]) in place, using delta swaps.
inline void transpose8x8(std::uint64_t x[8]) {
  std::uint64_t t;
  for (int i = 0; i < 8; i += 2) {
    t = ((x[i] >> 8) ^ x[i + 1]) & 0x00FF00FF00FF00FFULL;
    x[i + 1] ^= t;
    x[i] ^= t << 8;
  }
  for (int i = 0; i < 8; i += 4) {
    for (int j = 0; j < 2; ++j) {
      t = ((x[i + j] >> 16) ^ x[i + j + 2]) & 0x0000FFFF0000FFFFULL;
      x[i + j + 2] ^= t;
      x[i + j] ^= t << 16;
    }
  }
  for (int j = 0; j < 4; ++j) {
    t = ((x[j] >> 32) ^ x[j + 4]) & 0x00000000FFFFFFFFULL;
    x[j + 4] ^= t;
    x[j] ^= t << 32;
  }
}

inline std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline void store_u64(std::uint8_t* p, std::uint64_t v) {
  std::memcpy(p, &v, 8);
}

}  // namespace

void interleave_naive(std::span<const std::uint8_t> src,
                      std::span<std::uint8_t> dst) {
  check_args(src, dst);
  const std::size_t per_chip = src.size() / kChips;
  for (std::size_t w = 0; w < per_chip; ++w) {
    for (std::size_t c = 0; c < kChips; ++c) {
      dst[c * per_chip + w] = src[w * kChips + c];
    }
  }
}

void deinterleave_naive(std::span<const std::uint8_t> src,
                        std::span<std::uint8_t> dst) {
  check_args(src, dst);
  const std::size_t per_chip = src.size() / kChips;
  for (std::size_t w = 0; w < per_chip; ++w) {
    for (std::size_t c = 0; c < kChips; ++c) {
      dst[w * kChips + c] = src[c * per_chip + w];
    }
  }
}

void interleave_wide(std::span<const std::uint8_t> src,
                     std::span<std::uint8_t> dst) {
  check_args(src, dst);
  const std::size_t per_chip = src.size() / kChips;
  const std::size_t blocks = per_chip / 8;  // 64-byte main-loop blocks
  for (std::size_t b = 0; b < blocks; ++b) {
    std::uint64_t x[8];
    for (std::size_t i = 0; i < 8; ++i) {
      x[i] = load_u64(src.data() + (b * 8 + i) * 8);
    }
    transpose8x8(x);
    for (std::size_t c = 0; c < kChips; ++c) {
      store_u64(dst.data() + c * per_chip + b * 8, x[c]);
    }
  }
  // Tail (< 64 bytes): fall back to the scalar mapping.
  for (std::size_t w = blocks * 8; w < per_chip; ++w) {
    for (std::size_t c = 0; c < kChips; ++c) {
      dst[c * per_chip + w] = src[w * kChips + c];
    }
  }
}

void deinterleave_wide(std::span<const std::uint8_t> src,
                       std::span<std::uint8_t> dst) {
  check_args(src, dst);
  const std::size_t per_chip = src.size() / kChips;
  const std::size_t blocks = per_chip / 8;
  for (std::size_t b = 0; b < blocks; ++b) {
    std::uint64_t x[8];
    for (std::size_t c = 0; c < kChips; ++c) {
      x[c] = load_u64(src.data() + c * per_chip + b * 8);
    }
    transpose8x8(x);
    for (std::size_t i = 0; i < 8; ++i) {
      store_u64(dst.data() + (b * 8 + i) * 8, x[i]);
    }
  }
  for (std::size_t w = blocks * 8; w < per_chip; ++w) {
    for (std::size_t c = 0; c < kChips; ++c) {
      dst[w * kChips + c] = src[c * per_chip + w];
    }
  }
}

}  // namespace vpim::upmem
