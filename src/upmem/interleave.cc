#include "upmem/interleave.h"

#include <cstdlib>
#include <cstring>

#include "common/error.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define VPIM_INTERLEAVE_AVX2 1
#include <immintrin.h>
#endif

namespace vpim::upmem {

namespace {

constexpr std::uint32_t kChips = 8;

void check_args(std::span<const std::uint8_t> src,
                std::span<std::uint8_t> dst) {
  VPIM_CHECK(src.size() == dst.size(), "interleave buffers must match");
  VPIM_CHECK(src.size() % kChips == 0,
             "interleave size must be a multiple of 8");
}

// Transposes an 8x8 byte matrix held as 8 little-endian 64-bit rows
// (row i byte j <-> bits [8j, 8j+8) of x[i]) in place, using delta swaps.
inline void transpose8x8(std::uint64_t x[8]) {
  std::uint64_t t;
  for (int i = 0; i < 8; i += 2) {
    t = ((x[i] >> 8) ^ x[i + 1]) & 0x00FF00FF00FF00FFULL;
    x[i + 1] ^= t;
    x[i] ^= t << 8;
  }
  for (int i = 0; i < 8; i += 4) {
    for (int j = 0; j < 2; ++j) {
      t = ((x[i + j] >> 16) ^ x[i + j + 2]) & 0x0000FFFF0000FFFFULL;
      x[i + j + 2] ^= t;
      x[i + j] ^= t << 16;
    }
  }
  for (int j = 0; j < 4; ++j) {
    t = ((x[j] >> 32) ^ x[j + 4]) & 0x00000000FFFFFFFFULL;
    x[j + 4] ^= t;
    x[j] ^= t << 32;
  }
}

inline std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline void store_u64(std::uint8_t* p, std::uint64_t v) {
  std::memcpy(p, &v, 8);
}

// Shared scalar tail for the last (< main-loop granule) words.
inline void interleave_tail(std::span<const std::uint8_t> src,
                            std::span<std::uint8_t> dst,
                            std::size_t per_chip, std::size_t first_word) {
  for (std::size_t w = first_word; w < per_chip; ++w) {
    for (std::size_t c = 0; c < kChips; ++c) {
      dst[c * per_chip + w] = src[w * kChips + c];
    }
  }
}

inline void deinterleave_tail(std::span<const std::uint8_t> src,
                              std::span<std::uint8_t> dst,
                              std::size_t per_chip,
                              std::size_t first_word) {
  for (std::size_t w = first_word; w < per_chip; ++w) {
    for (std::size_t c = 0; c < kChips; ++c) {
      dst[w * kChips + c] = src[c * per_chip + w];
    }
  }
}

#ifdef VPIM_INTERLEAVE_AVX2

// AVX2 path: four independent 8x8 blocks per iteration, one block per
// 64-bit lane, so the delta swaps of transpose8x8 run 4-wide unchanged.
// Per-chip outputs of four consecutive blocks are contiguous, which makes
// the store (interleave) / load (deinterleave) side a single 32-byte op.

__attribute__((target("avx2"))) inline __m256i gather4_u64(
    const std::uint8_t* base, std::size_t stride) {
  return _mm256_set_epi64x(
      static_cast<long long>(load_u64(base + 3 * stride)),
      static_cast<long long>(load_u64(base + 2 * stride)),
      static_cast<long long>(load_u64(base + stride)),
      static_cast<long long>(load_u64(base)));
}

__attribute__((target("avx2"))) inline void scatter4_u64(
    std::uint8_t* base, std::size_t stride, __m256i v) {
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  store_u64(base, lanes[0]);
  store_u64(base + stride, lanes[1]);
  store_u64(base + 2 * stride, lanes[2]);
  store_u64(base + 3 * stride, lanes[3]);
}

__attribute__((target("avx2"))) inline void transpose8x8x4(__m256i x[8]) {
  const __m256i m8 = _mm256_set1_epi64x(0x00FF00FF00FF00FFLL);
  const __m256i m16 = _mm256_set1_epi64x(0x0000FFFF0000FFFFLL);
  const __m256i m32 = _mm256_set1_epi64x(0x00000000FFFFFFFFLL);
  __m256i t;
  for (int i = 0; i < 8; i += 2) {
    t = _mm256_and_si256(
        _mm256_xor_si256(_mm256_srli_epi64(x[i], 8), x[i + 1]), m8);
    x[i + 1] = _mm256_xor_si256(x[i + 1], t);
    x[i] = _mm256_xor_si256(x[i], _mm256_slli_epi64(t, 8));
  }
  for (int i = 0; i < 8; i += 4) {
    for (int j = 0; j < 2; ++j) {
      t = _mm256_and_si256(
          _mm256_xor_si256(_mm256_srli_epi64(x[i + j], 16), x[i + j + 2]),
          m16);
      x[i + j + 2] = _mm256_xor_si256(x[i + j + 2], t);
      x[i + j] = _mm256_xor_si256(x[i + j], _mm256_slli_epi64(t, 16));
    }
  }
  for (int j = 0; j < 4; ++j) {
    t = _mm256_and_si256(
        _mm256_xor_si256(_mm256_srli_epi64(x[j], 32), x[j + 4]), m32);
    x[j + 4] = _mm256_xor_si256(x[j + 4], t);
    x[j] = _mm256_xor_si256(x[j], _mm256_slli_epi64(t, 32));
  }
}

__attribute__((target("avx2"))) void interleave_wide_avx2(
    std::span<const std::uint8_t> src, std::span<std::uint8_t> dst) {
  check_args(src, dst);
  const std::size_t per_chip = src.size() / kChips;
  const std::size_t groups = per_chip / 32;  // 4 blocks = 256 bytes each
  for (std::size_t g = 0; g < groups; ++g) {
    const std::uint8_t* base = src.data() + g * 256;
    __m256i x[8];
    for (std::size_t i = 0; i < 8; ++i) {
      x[i] = gather4_u64(base + i * 8, 64);
    }
    transpose8x8x4(x);
    for (std::size_t c = 0; c < kChips; ++c) {
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(dst.data() + c * per_chip + g * 32),
          x[c]);
    }
  }
  interleave_tail(src, dst, per_chip, groups * 32);
}

__attribute__((target("avx2"))) void deinterleave_wide_avx2(
    std::span<const std::uint8_t> src, std::span<std::uint8_t> dst) {
  check_args(src, dst);
  const std::size_t per_chip = src.size() / kChips;
  const std::size_t groups = per_chip / 32;
  for (std::size_t g = 0; g < groups; ++g) {
    __m256i x[8];
    for (std::size_t c = 0; c < kChips; ++c) {
      x[c] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
          src.data() + c * per_chip + g * 32));
    }
    transpose8x8x4(x);
    std::uint8_t* base = dst.data() + g * 256;
    for (std::size_t i = 0; i < 8; ++i) {
      scatter4_u64(base + i * 8, 64, x[i]);
    }
  }
  deinterleave_tail(src, dst, per_chip, groups * 32);
}

#endif  // VPIM_INTERLEAVE_AVX2

using WideKernel = void (*)(std::span<const std::uint8_t>,
                            std::span<std::uint8_t>);

struct WideDispatch {
  WideKernel inter;
  WideKernel deinter;
  std::string_view name;
};

const WideDispatch& wide_dispatch() {
  static const WideDispatch d = [] {
#ifdef VPIM_INTERLEAVE_AVX2
    const char* off = std::getenv("VPIM_NO_AVX2");
    const bool disabled = off != nullptr && off[0] != '\0' && off[0] != '0';
    if (!disabled && __builtin_cpu_supports("avx2")) {
      return WideDispatch{interleave_wide_avx2, deinterleave_wide_avx2,
                          "avx2"};
    }
#endif
    return WideDispatch{interleave_wide_scalar, deinterleave_wide_scalar,
                        "scalar"};
  }();
  return d;
}

}  // namespace

void interleave_naive(std::span<const std::uint8_t> src,
                      std::span<std::uint8_t> dst) {
  check_args(src, dst);
  const std::size_t per_chip = src.size() / kChips;
  for (std::size_t w = 0; w < per_chip; ++w) {
    for (std::size_t c = 0; c < kChips; ++c) {
      dst[c * per_chip + w] = src[w * kChips + c];
    }
  }
}

void deinterleave_naive(std::span<const std::uint8_t> src,
                        std::span<std::uint8_t> dst) {
  check_args(src, dst);
  const std::size_t per_chip = src.size() / kChips;
  for (std::size_t w = 0; w < per_chip; ++w) {
    for (std::size_t c = 0; c < kChips; ++c) {
      dst[w * kChips + c] = src[c * per_chip + w];
    }
  }
}

void interleave_wide_scalar(std::span<const std::uint8_t> src,
                            std::span<std::uint8_t> dst) {
  check_args(src, dst);
  const std::size_t per_chip = src.size() / kChips;
  const std::size_t blocks = per_chip / 8;  // 64-byte main-loop blocks
  for (std::size_t b = 0; b < blocks; ++b) {
    std::uint64_t x[8];
    for (std::size_t i = 0; i < 8; ++i) {
      x[i] = load_u64(src.data() + (b * 8 + i) * 8);
    }
    transpose8x8(x);
    for (std::size_t c = 0; c < kChips; ++c) {
      store_u64(dst.data() + c * per_chip + b * 8, x[c]);
    }
  }
  interleave_tail(src, dst, per_chip, blocks * 8);
}

void deinterleave_wide_scalar(std::span<const std::uint8_t> src,
                              std::span<std::uint8_t> dst) {
  check_args(src, dst);
  const std::size_t per_chip = src.size() / kChips;
  const std::size_t blocks = per_chip / 8;
  for (std::size_t b = 0; b < blocks; ++b) {
    std::uint64_t x[8];
    for (std::size_t c = 0; c < kChips; ++c) {
      x[c] = load_u64(src.data() + c * per_chip + b * 8);
    }
    transpose8x8(x);
    for (std::size_t i = 0; i < 8; ++i) {
      store_u64(dst.data() + (b * 8 + i) * 8, x[i]);
    }
  }
  deinterleave_tail(src, dst, per_chip, blocks * 8);
}

void interleave_wide(std::span<const std::uint8_t> src,
                     std::span<std::uint8_t> dst) {
  wide_dispatch().inter(src, dst);
}

void deinterleave_wide(std::span<const std::uint8_t> src,
                       std::span<std::uint8_t> dst) {
  wide_dispatch().deinter(src, dst);
}

std::string_view wide_kernel_name() { return wide_dispatch().name; }

}  // namespace vpim::upmem
