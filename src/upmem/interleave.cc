#include "upmem/interleave.h"

#include <cstdlib>
#include <cstring>

#include "common/error.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define VPIM_INTERLEAVE_AVX2 1
#define VPIM_INTERLEAVE_AVX512 1
#include <immintrin.h>
#endif

namespace vpim::upmem {

namespace {

constexpr std::uint32_t kChips = 8;

void check_args(std::span<const std::uint8_t> src,
                std::span<std::uint8_t> dst) {
  VPIM_CHECK(src.size() == dst.size(), "interleave buffers must match");
  VPIM_CHECK(src.size() % kChips == 0,
             "interleave size must be a multiple of 8");
}

// Transposes an 8x8 byte matrix held as 8 little-endian 64-bit rows
// (row i byte j <-> bits [8j, 8j+8) of x[i]) in place, using delta swaps.
inline void transpose8x8(std::uint64_t x[8]) {
  std::uint64_t t;
  for (int i = 0; i < 8; i += 2) {
    t = ((x[i] >> 8) ^ x[i + 1]) & 0x00FF00FF00FF00FFULL;
    x[i + 1] ^= t;
    x[i] ^= t << 8;
  }
  for (int i = 0; i < 8; i += 4) {
    for (int j = 0; j < 2; ++j) {
      t = ((x[i + j] >> 16) ^ x[i + j + 2]) & 0x0000FFFF0000FFFFULL;
      x[i + j + 2] ^= t;
      x[i + j] ^= t << 16;
    }
  }
  for (int j = 0; j < 4; ++j) {
    t = ((x[j] >> 32) ^ x[j + 4]) & 0x00000000FFFFFFFFULL;
    x[j + 4] ^= t;
    x[j] ^= t << 32;
  }
}

inline std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline void store_u64(std::uint8_t* p, std::uint64_t v) {
  std::memcpy(p, &v, 8);
}

// Shared scalar tail for the last (< main-loop granule) words.
inline void interleave_tail(std::span<const std::uint8_t> src,
                            std::span<std::uint8_t> dst,
                            std::size_t per_chip, std::size_t first_word) {
  for (std::size_t w = first_word; w < per_chip; ++w) {
    for (std::size_t c = 0; c < kChips; ++c) {
      dst[c * per_chip + w] = src[w * kChips + c];
    }
  }
}

inline void deinterleave_tail(std::span<const std::uint8_t> src,
                              std::span<std::uint8_t> dst,
                              std::size_t per_chip,
                              std::size_t first_word) {
  for (std::size_t w = first_word; w < per_chip; ++w) {
    for (std::size_t c = 0; c < kChips; ++c) {
      dst[w * kChips + c] = src[c * per_chip + w];
    }
  }
}

#ifdef VPIM_INTERLEAVE_AVX2

// AVX2 path: four independent 8x8 blocks per iteration, one block per
// 64-bit lane, so the delta swaps of transpose8x8 run 4-wide unchanged.
// Per-chip outputs of four consecutive blocks are contiguous, which makes
// the store (interleave) / load (deinterleave) side a single 32-byte op.

__attribute__((target("avx2"))) inline __m256i gather4_u64(
    const std::uint8_t* base, std::size_t stride) {
  return _mm256_set_epi64x(
      static_cast<long long>(load_u64(base + 3 * stride)),
      static_cast<long long>(load_u64(base + 2 * stride)),
      static_cast<long long>(load_u64(base + stride)),
      static_cast<long long>(load_u64(base)));
}

__attribute__((target("avx2"))) inline void scatter4_u64(
    std::uint8_t* base, std::size_t stride, __m256i v) {
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  store_u64(base, lanes[0]);
  store_u64(base + stride, lanes[1]);
  store_u64(base + 2 * stride, lanes[2]);
  store_u64(base + 3 * stride, lanes[3]);
}

__attribute__((target("avx2"))) inline void transpose8x8x4(__m256i x[8]) {
  const __m256i m8 = _mm256_set1_epi64x(0x00FF00FF00FF00FFLL);
  const __m256i m16 = _mm256_set1_epi64x(0x0000FFFF0000FFFFLL);
  const __m256i m32 = _mm256_set1_epi64x(0x00000000FFFFFFFFLL);
  __m256i t;
  for (int i = 0; i < 8; i += 2) {
    t = _mm256_and_si256(
        _mm256_xor_si256(_mm256_srli_epi64(x[i], 8), x[i + 1]), m8);
    x[i + 1] = _mm256_xor_si256(x[i + 1], t);
    x[i] = _mm256_xor_si256(x[i], _mm256_slli_epi64(t, 8));
  }
  for (int i = 0; i < 8; i += 4) {
    for (int j = 0; j < 2; ++j) {
      t = _mm256_and_si256(
          _mm256_xor_si256(_mm256_srli_epi64(x[i + j], 16), x[i + j + 2]),
          m16);
      x[i + j + 2] = _mm256_xor_si256(x[i + j + 2], t);
      x[i + j] = _mm256_xor_si256(x[i + j], _mm256_slli_epi64(t, 16));
    }
  }
  for (int j = 0; j < 4; ++j) {
    t = _mm256_and_si256(
        _mm256_xor_si256(_mm256_srli_epi64(x[j], 32), x[j + 4]), m32);
    x[j + 4] = _mm256_xor_si256(x[j + 4], t);
    x[j] = _mm256_xor_si256(x[j], _mm256_slli_epi64(t, 32));
  }
}

__attribute__((target("avx2"))) void interleave_wide_avx2(
    std::span<const std::uint8_t> src, std::span<std::uint8_t> dst) {
  check_args(src, dst);
  const std::size_t per_chip = src.size() / kChips;
  const std::size_t groups = per_chip / 32;  // 4 blocks = 256 bytes each
  for (std::size_t g = 0; g < groups; ++g) {
    const std::uint8_t* base = src.data() + g * 256;
    __m256i x[8];
    for (std::size_t i = 0; i < 8; ++i) {
      x[i] = gather4_u64(base + i * 8, 64);
    }
    transpose8x8x4(x);
    for (std::size_t c = 0; c < kChips; ++c) {
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(dst.data() + c * per_chip + g * 32),
          x[c]);
    }
  }
  interleave_tail(src, dst, per_chip, groups * 32);
}

__attribute__((target("avx2"))) void deinterleave_wide_avx2(
    std::span<const std::uint8_t> src, std::span<std::uint8_t> dst) {
  check_args(src, dst);
  const std::size_t per_chip = src.size() / kChips;
  const std::size_t groups = per_chip / 32;
  for (std::size_t g = 0; g < groups; ++g) {
    __m256i x[8];
    for (std::size_t c = 0; c < kChips; ++c) {
      x[c] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
          src.data() + c * per_chip + g * 32));
    }
    transpose8x8x4(x);
    std::uint8_t* base = dst.data() + g * 256;
    for (std::size_t i = 0; i < 8; ++i) {
      scatter4_u64(base + i * 8, 64, x[i]);
    }
  }
  deinterleave_tail(src, dst, per_chip, groups * 32);
}

#endif  // VPIM_INTERLEAVE_AVX2

#ifdef VPIM_INTERLEAVE_AVX512

// AVX-512 path: eight independent 8x8 blocks per iteration, one block per
// 64-bit lane, the same delta-swap transpose running 8-wide. Per-chip
// outputs of eight consecutive blocks are contiguous, so each chip's
// store (interleave) / load (deinterleave) is one full 64-byte zmm op —
// exactly one cache line per chip per group.

__attribute__((target("avx512f"))) inline __m512i gather8_u64(
    const std::uint8_t* base, std::size_t stride) {
  return _mm512_set_epi64(
      static_cast<long long>(load_u64(base + 7 * stride)),
      static_cast<long long>(load_u64(base + 6 * stride)),
      static_cast<long long>(load_u64(base + 5 * stride)),
      static_cast<long long>(load_u64(base + 4 * stride)),
      static_cast<long long>(load_u64(base + 3 * stride)),
      static_cast<long long>(load_u64(base + 2 * stride)),
      static_cast<long long>(load_u64(base + stride)),
      static_cast<long long>(load_u64(base)));
}

__attribute__((target("avx512f"))) inline void scatter8_u64(
    std::uint8_t* base, std::size_t stride, __m512i v) {
  alignas(64) std::uint64_t lanes[8];
  _mm512_store_si512(lanes, v);
  for (std::size_t i = 0; i < 8; ++i) {
    store_u64(base + i * stride, lanes[i]);
  }
}

__attribute__((target("avx512f"))) inline void transpose8x8x8(__m512i x[8]) {
  const __m512i m8 = _mm512_set1_epi64(0x00FF00FF00FF00FFLL);
  const __m512i m16 = _mm512_set1_epi64(0x0000FFFF0000FFFFLL);
  const __m512i m32 = _mm512_set1_epi64(0x00000000FFFFFFFFLL);
  __m512i t;
  for (int i = 0; i < 8; i += 2) {
    t = _mm512_and_si512(
        _mm512_xor_si512(_mm512_srli_epi64(x[i], 8), x[i + 1]), m8);
    x[i + 1] = _mm512_xor_si512(x[i + 1], t);
    x[i] = _mm512_xor_si512(x[i], _mm512_slli_epi64(t, 8));
  }
  for (int i = 0; i < 8; i += 4) {
    for (int j = 0; j < 2; ++j) {
      t = _mm512_and_si512(
          _mm512_xor_si512(_mm512_srli_epi64(x[i + j], 16), x[i + j + 2]),
          m16);
      x[i + j + 2] = _mm512_xor_si512(x[i + j + 2], t);
      x[i + j] = _mm512_xor_si512(x[i + j], _mm512_slli_epi64(t, 16));
    }
  }
  for (int j = 0; j < 4; ++j) {
    t = _mm512_and_si512(
        _mm512_xor_si512(_mm512_srli_epi64(x[j], 32), x[j + 4]), m32);
    x[j + 4] = _mm512_xor_si512(x[j + 4], t);
    x[j] = _mm512_xor_si512(x[j], _mm512_slli_epi64(t, 32));
  }
}

__attribute__((target("avx512f"))) void interleave_wide_avx512(
    std::span<const std::uint8_t> src, std::span<std::uint8_t> dst) {
  check_args(src, dst);
  const std::size_t per_chip = src.size() / kChips;
  const std::size_t groups = per_chip / 64;  // 8 blocks = 512 bytes each
  for (std::size_t g = 0; g < groups; ++g) {
    const std::uint8_t* base = src.data() + g * 512;
    __m512i x[8];
    for (std::size_t i = 0; i < 8; ++i) {
      x[i] = gather8_u64(base + i * 8, 64);
    }
    transpose8x8x8(x);
    for (std::size_t c = 0; c < kChips; ++c) {
      _mm512_storeu_si512(dst.data() + c * per_chip + g * 64, x[c]);
    }
  }
  interleave_tail(src, dst, per_chip, groups * 64);
}

__attribute__((target("avx512f"))) void deinterleave_wide_avx512(
    std::span<const std::uint8_t> src, std::span<std::uint8_t> dst) {
  check_args(src, dst);
  const std::size_t per_chip = src.size() / kChips;
  const std::size_t groups = per_chip / 64;
  for (std::size_t g = 0; g < groups; ++g) {
    __m512i x[8];
    for (std::size_t c = 0; c < kChips; ++c) {
      x[c] = _mm512_loadu_si512(src.data() + c * per_chip + g * 64);
    }
    transpose8x8x8(x);
    std::uint8_t* base = dst.data() + g * 512;
    for (std::size_t i = 0; i < 8; ++i) {
      scatter8_u64(base + i * 8, 64, x[i]);
    }
  }
  deinterleave_tail(src, dst, per_chip, groups * 64);
}

#endif  // VPIM_INTERLEAVE_AVX512

struct WideDispatch {
  InterleaveKernel inter;
  InterleaveKernel deinter;
  std::string_view name;
};

bool env_set(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

const WideDispatch& wide_dispatch() {
  // Tier priority: AVX-512 > AVX2 > portable scalar. VPIM_NO_AVX512=1
  // drops only the 512-bit tier (A/B testing the paper's C/AVX512 claim);
  // VPIM_NO_AVX2=1 forces the scalar path outright.
  static const WideDispatch d = [] {
#if defined(VPIM_INTERLEAVE_AVX2) || defined(VPIM_INTERLEAVE_AVX512)
    const bool no_vector = env_set("VPIM_NO_AVX2");
#endif
#ifdef VPIM_INTERLEAVE_AVX512
    if (!no_vector && !env_set("VPIM_NO_AVX512") &&
        __builtin_cpu_supports("avx512f")) {
      return WideDispatch{interleave_wide_avx512, deinterleave_wide_avx512,
                          "avx512"};
    }
#endif
#ifdef VPIM_INTERLEAVE_AVX2
    if (!no_vector && __builtin_cpu_supports("avx2")) {
      return WideDispatch{interleave_wide_avx2, deinterleave_wide_avx2,
                          "avx2"};
    }
#endif
    return WideDispatch{interleave_wide_scalar, deinterleave_wide_scalar,
                        "scalar"};
  }();
  return d;
}

}  // namespace

void interleave_naive(std::span<const std::uint8_t> src,
                      std::span<std::uint8_t> dst) {
  check_args(src, dst);
  const std::size_t per_chip = src.size() / kChips;
  for (std::size_t w = 0; w < per_chip; ++w) {
    for (std::size_t c = 0; c < kChips; ++c) {
      dst[c * per_chip + w] = src[w * kChips + c];
    }
  }
}

void deinterleave_naive(std::span<const std::uint8_t> src,
                        std::span<std::uint8_t> dst) {
  check_args(src, dst);
  const std::size_t per_chip = src.size() / kChips;
  for (std::size_t w = 0; w < per_chip; ++w) {
    for (std::size_t c = 0; c < kChips; ++c) {
      dst[w * kChips + c] = src[c * per_chip + w];
    }
  }
}

void interleave_wide_scalar(std::span<const std::uint8_t> src,
                            std::span<std::uint8_t> dst) {
  check_args(src, dst);
  const std::size_t per_chip = src.size() / kChips;
  const std::size_t blocks = per_chip / 8;  // 64-byte main-loop blocks
  for (std::size_t b = 0; b < blocks; ++b) {
    std::uint64_t x[8];
    for (std::size_t i = 0; i < 8; ++i) {
      x[i] = load_u64(src.data() + (b * 8 + i) * 8);
    }
    transpose8x8(x);
    for (std::size_t c = 0; c < kChips; ++c) {
      store_u64(dst.data() + c * per_chip + b * 8, x[c]);
    }
  }
  interleave_tail(src, dst, per_chip, blocks * 8);
}

void deinterleave_wide_scalar(std::span<const std::uint8_t> src,
                              std::span<std::uint8_t> dst) {
  check_args(src, dst);
  const std::size_t per_chip = src.size() / kChips;
  const std::size_t blocks = per_chip / 8;
  for (std::size_t b = 0; b < blocks; ++b) {
    std::uint64_t x[8];
    for (std::size_t c = 0; c < kChips; ++c) {
      x[c] = load_u64(src.data() + c * per_chip + b * 8);
    }
    transpose8x8(x);
    for (std::size_t i = 0; i < 8; ++i) {
      store_u64(dst.data() + (b * 8 + i) * 8, x[i]);
    }
  }
  deinterleave_tail(src, dst, per_chip, blocks * 8);
}

void interleave_wide(std::span<const std::uint8_t> src,
                     std::span<std::uint8_t> dst) {
  wide_dispatch().inter(src, dst);
}

void deinterleave_wide(std::span<const std::uint8_t> src,
                       std::span<std::uint8_t> dst) {
  wide_dispatch().deinter(src, dst);
}

std::string_view wide_kernel_name() { return wide_dispatch().name; }

InterleaveKernel interleave_avx512_kernel() {
#ifdef VPIM_INTERLEAVE_AVX512
  if (__builtin_cpu_supports("avx512f")) return interleave_wide_avx512;
#endif
  return nullptr;
}

InterleaveKernel deinterleave_avx512_kernel() {
#ifdef VPIM_INTERLEAVE_AVX512
  if (__builtin_cpu_supports("avx512f")) return deinterleave_wide_avx512;
#endif
  return nullptr;
}

InterleaveKernel interleave_avx2_kernel() {
#ifdef VPIM_INTERLEAVE_AVX2
  if (__builtin_cpu_supports("avx2")) return interleave_wide_avx2;
#endif
  return nullptr;
}

InterleaveKernel deinterleave_avx2_kernel() {
#ifdef VPIM_INTERLEAVE_AVX2
  if (__builtin_cpu_supports("avx2")) return deinterleave_wide_avx2;
#endif
  return nullptr;
}

}  // namespace vpim::upmem
