// Byte-interleave kernels for the rank DDR data path.
//
// On real UPMEM hardware each 8-byte word of DPU-linear data is striped one
// byte per chip across the 8 chips of a rank, so host-side transfers must
// (de)interleave every buffer. The paper found the implementation of this
// transform to be performance-critical and rewrote it from Rust/AVX2 to
// C/AVX512 (§4.2, up to 343% faster). We keep both shapes:
//
//   - *_naive: byte-at-a-time loop (the slow-path stand-in);
//   - *_wide : 8x8 byte matrix transpose on 64-bit words (the fast path).
//
// Both are bit-exact inverses of each other and are property-tested against
// each other; the cost model charges their calibrated bandwidths.
#pragma once

#include <cstdint>
#include <span>

namespace vpim::upmem {

// dst[chip * (n/8) + word] = src[word * 8 + chip]; n must be a multiple of
// 64 for the wide kernel's main loop, arbitrary sizes fall back to the tail
// loop. dst and src must not alias and must both hold n bytes.
void interleave_naive(std::span<const std::uint8_t> src,
                      std::span<std::uint8_t> dst);
void deinterleave_naive(std::span<const std::uint8_t> src,
                        std::span<std::uint8_t> dst);

void interleave_wide(std::span<const std::uint8_t> src,
                     std::span<std::uint8_t> dst);
void deinterleave_wide(std::span<const std::uint8_t> src,
                       std::span<std::uint8_t> dst);

}  // namespace vpim::upmem
