// Byte-interleave kernels for the rank DDR data path.
//
// On real UPMEM hardware each 8-byte word of DPU-linear data is striped one
// byte per chip across the 8 chips of a rank, so host-side transfers must
// (de)interleave every buffer. The paper found the implementation of this
// transform to be performance-critical and rewrote it from Rust/AVX2 to
// C/AVX512 (§4.2, up to 343% faster). We keep both shapes:
//
//   - *_naive: byte-at-a-time loop (the slow-path stand-in, kept intact
//     for the Fig 11/12 ablations);
//   - *_wide : the fast path, dispatched at runtime across three tiers:
//     AVX-512 (eight 8x8 blocks per iteration, delta swaps on zmm
//     registers, one full 64-byte cache line per chip per group), then
//     AVX2 (four 8x8 blocks on ymm registers), then the portable
//     transpose8x8 64-bit-word path. VPIM_NO_AVX512=1 drops only the
//     512-bit tier; VPIM_NO_AVX2=1 forces the portable path. Both are
//     read once at first dispatch, for A/B testing.
//
// All variants are bit-exact inverses of each other and are property-tested
// against each other; the cost model charges their calibrated bandwidths.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace vpim::upmem {

// dst[chip * (n/8) + word] = src[word * 8 + chip]; n must be a multiple of
// 64 for the wide kernel's main loop, arbitrary sizes fall back to the tail
// loop. dst and src must not alias and must both hold n bytes.
void interleave_naive(std::span<const std::uint8_t> src,
                      std::span<std::uint8_t> dst);
void deinterleave_naive(std::span<const std::uint8_t> src,
                        std::span<std::uint8_t> dst);

// Runtime-dispatched fast path (AVX-512 > AVX2 > scalar).
void interleave_wide(std::span<const std::uint8_t> src,
                     std::span<std::uint8_t> dst);
void deinterleave_wide(std::span<const std::uint8_t> src,
                       std::span<std::uint8_t> dst);

// Signature shared by every (de)interleave kernel.
using InterleaveKernel = void (*)(std::span<const std::uint8_t>,
                                  std::span<std::uint8_t>);

// Direct handles to the vector tiers, bypassing the env-var dispatch, so
// property tests can pin a specific implementation against the oracle.
// Return nullptr when the binary or the CPU lacks the instruction set
// (callers GTEST_SKIP cleanly on such hosts).
InterleaveKernel interleave_avx512_kernel();
InterleaveKernel deinterleave_avx512_kernel();
InterleaveKernel interleave_avx2_kernel();
InterleaveKernel deinterleave_avx2_kernel();

// The portable transpose8x8 implementation, callable directly so tests can
// compare it against whatever interleave_wide dispatched to.
void interleave_wide_scalar(std::span<const std::uint8_t> src,
                            std::span<std::uint8_t> dst);
void deinterleave_wide_scalar(std::span<const std::uint8_t> src,
                              std::span<std::uint8_t> dst);

// "avx512", "avx2", or "scalar": which tier interleave_wide dispatches to.
std::string_view wide_kernel_name();

}  // namespace vpim::upmem
