// Byte-interleave kernels for the rank DDR data path.
//
// On real UPMEM hardware each 8-byte word of DPU-linear data is striped one
// byte per chip across the 8 chips of a rank, so host-side transfers must
// (de)interleave every buffer. The paper found the implementation of this
// transform to be performance-critical and rewrote it from Rust/AVX2 to
// C/AVX512 (§4.2, up to 343% faster). We keep both shapes:
//
//   - *_naive: byte-at-a-time loop (the slow-path stand-in, kept intact
//     for the Fig 11/12 ablations);
//   - *_wide : the fast path, dispatched at runtime to an AVX2
//     implementation (four 8x8 blocks per iteration, delta swaps on ymm
//     registers) when the CPU supports it, with the portable transpose8x8
//     64-bit-word path as the fallback. VPIM_NO_AVX2=1 forces the
//     portable path for A/B testing.
//
// All variants are bit-exact inverses of each other and are property-tested
// against each other; the cost model charges their calibrated bandwidths.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace vpim::upmem {

// dst[chip * (n/8) + word] = src[word * 8 + chip]; n must be a multiple of
// 64 for the wide kernel's main loop, arbitrary sizes fall back to the tail
// loop. dst and src must not alias and must both hold n bytes.
void interleave_naive(std::span<const std::uint8_t> src,
                      std::span<std::uint8_t> dst);
void deinterleave_naive(std::span<const std::uint8_t> src,
                        std::span<std::uint8_t> dst);

// Runtime-dispatched fast path (AVX2 when available, scalar otherwise).
void interleave_wide(std::span<const std::uint8_t> src,
                     std::span<std::uint8_t> dst);
void deinterleave_wide(std::span<const std::uint8_t> src,
                       std::span<std::uint8_t> dst);

// The portable transpose8x8 implementation, callable directly so tests can
// compare it against whatever interleave_wide dispatched to.
void interleave_wide_scalar(std::span<const std::uint8_t> src,
                            std::span<std::uint8_t> dst);
void deinterleave_wide_scalar(std::span<const std::uint8_t> src,
                              std::span<std::uint8_t> dst);

// "avx2" or "scalar": which implementation interleave_wide dispatches to.
std::string_view wide_kernel_name();

}  // namespace vpim::upmem
