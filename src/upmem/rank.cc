#include "upmem/rank.h"

#include "common/error.h"
#include "common/thread_pool.h"

namespace vpim::upmem {

Rank::Rank(std::uint32_t index, std::uint32_t functional_dpus,
           const SimClock& clock, const CostModel& cost)
    : index_(index),
      clock_(clock),
      cost_(cost),
      dpus_(functional_dpus),
      finish_time_(functional_dpus, 0) {
  VPIM_CHECK(functional_dpus >= 1 && functional_dpus <= kDpuSlotsPerRank,
             "rank DPU count out of range");
}

Dpu& Rank::dpu(std::uint32_t i) {
  VPIM_CHECK(i < dpus_.size(), "DPU index out of range");
  return dpus_[i];
}

const Dpu& Rank::dpu(std::uint32_t i) const {
  VPIM_CHECK(i < dpus_.size(), "DPU index out of range");
  return dpus_[i];
}

void Rank::check_alive() const {
  if (failed_) {
    throw FaultError({FaultKind::kRankDeath, index_, 0, clock_.now()});
  }
}

void Rank::ci_load(std::string_view kernel_name) {
  check_alive();
  VPIM_CHECK(!ci_any_running(), "loading a binary while DPUs are running");
  const DpuKernel& kernel = KernelRegistry::instance().get(kernel_name);
  for (Dpu& dpu : dpus_) dpu.load(kernel);
}

void Rank::ci_launch(std::uint64_t dpu_mask,
                     std::optional<std::uint32_t> nr_tasklets) {
  check_alive();
  VPIM_CHECK(!ci_any_running(), "launch while DPUs are still running");
  VPIM_CHECK((dpu_mask & ~all_dpus_mask()) == 0,
             "launch mask targets defective/absent DPUs");
  if (fault_plan_ != nullptr) {
    if (auto fault = fault_plan_->on_launch(index_, clock_.now())) {
      if (fault->kind == FaultKind::kRankDeath) failed_ = true;
      throw FaultError(*fault);
    }
  }
  const SimNs start = clock_.now();
  const std::uint32_t tasklets = nr_tasklets.value_or(16);
  // Each masked DPU runs its kernel against its own MRAM bank / WRAM
  // symbols, so the launches are independent and fan out over the host
  // pool. Durations land in a per-DPU slot and are merged serially in
  // index order below, so finish times and busy_until_ are bit-identical
  // to a serial walk at any VPIM_THREADS.
  std::vector<SimNs> durations(dpus_.size(), 0);
  // Pool bodies must not touch the tracer directly; per-DPU spans land in
  // per-index FanoutScope slots and merge in index order on this thread,
  // nested under one rank.launch span whose duration is the slowest DPU.
  obs::Tracer* tracer = obs_ != nullptr ? obs_->trace() : nullptr;
  if (tracer != nullptr) {
    tracer->begin_span(obs::SpanKind::kRankLaunch, start);
  }
  obs::Tracer::FanoutScope fan(tracer, dpus_.size());
  ThreadPool::instance().parallel_for(dpus_.size(), [&](std::size_t i) {
    if ((dpu_mask >> i) & 1) {
      durations[i] = dpus_[i].run(tasklets, cost_);
      fan.record(i, obs::SpanKind::kDpuCompute, start, durations[i],
                 /*bytes=*/0, /*entries=*/1, index_);
    }
  });
  SimNs slowest = 0;
  std::uint32_t launched = 0;
  for (std::uint32_t i = 0; i < dpus_.size(); ++i) {
    if ((dpu_mask >> i) & 1) {
      finish_time_[i] = start + durations[i];
      busy_until_ = std::max(busy_until_, finish_time_[i]);
      slowest = std::max(slowest, durations[i]);
      ++launched;
    }
  }
  fan.merge();
  if (tracer != nullptr) {
    obs::Span& launch = tracer->top();
    launch.entries = launched;
    launch.rank = index_;
    tracer->end_span(start + slowest);
  }
}

std::uint64_t Rank::ci_running_mask() const {
  std::uint64_t mask = 0;
  const SimNs now = clock_.now();
  for (std::uint32_t i = 0; i < dpus_.size(); ++i) {
    if (finish_time_[i] > now) mask |= (1ULL << i);
  }
  return mask;
}

void Rank::ci_copy_to_symbol(std::uint32_t dpu, std::string_view symbol,
                             std::uint32_t offset,
                             std::span<const std::uint8_t> data) {
  check_not_running(dpu);
  auto bytes = this->dpu(dpu).symbol_bytes(symbol);
  VPIM_CHECK(offset + data.size() <= bytes.size(),
             "symbol write out of bounds");
  std::copy(data.begin(), data.end(), bytes.begin() + offset);
}

void Rank::ci_copy_from_symbol(std::uint32_t dpu, std::string_view symbol,
                               std::uint32_t offset,
                               std::span<std::uint8_t> out) {
  check_not_running(dpu);
  auto bytes = this->dpu(dpu).symbol_bytes(symbol);
  VPIM_CHECK(offset + out.size() <= bytes.size(),
             "symbol read out of bounds");
  std::copy(bytes.begin() + offset, bytes.begin() + offset + out.size(),
            out.begin());
}

MramBank& Rank::mram(std::uint32_t dpu) {
  check_not_running(dpu);
  return this->dpu(dpu).mram();
}

void Rank::clone_state_from(const Rank& other) {
  VPIM_CHECK(!ci_any_running(), "migration target is running");
  VPIM_CHECK(other.ci_running_mask() == 0, "migration source is running");
  VPIM_CHECK(other.nr_dpus() <= nr_dpus(),
             "migration target has fewer DPUs than the source");
  for (std::uint32_t i = 0; i < other.nr_dpus(); ++i) {
    dpus_[i].clone_from(other.dpus_[i]);
  }
}

Rank::Snapshot Rank::save_snapshot() const {
  VPIM_CHECK(!ci_any_running(), "snapshot of a running rank");
  Snapshot snap;
  snap.dpus.reserve(dpus_.size());
  for (const Dpu& dpu : dpus_) {
    Snapshot::DpuImage image;
    image.kernel = std::string(dpu.loaded_kernel_name());
    for (const auto& [name, bytes] : dpu.symbols()) {
      image.symbols.emplace(name, bytes);
    }
    image.pages = dpu.mram().export_pages();
    snap.dpus.push_back(std::move(image));
  }
  return snap;
}

void Rank::load_snapshot(const Snapshot& snapshot) {
  VPIM_CHECK(!ci_any_running(), "restore into a running rank");
  VPIM_CHECK(snapshot.dpus.size() <= dpus_.size(),
             "snapshot has more DPUs than the target rank");
  for (std::uint32_t i = 0; i < snapshot.dpus.size(); ++i) {
    const Snapshot::DpuImage& image = snapshot.dpus[i];
    Dpu& dpu = dpus_[i];
    dpu.reset();
    if (!image.kernel.empty()) {
      dpu.load(KernelRegistry::instance().get(image.kernel));
      // Restore the symbol *values* over the freshly laid-out storage.
      std::map<std::string, std::vector<std::uint8_t>> symbols(
          image.symbols.begin(), image.symbols.end());
      dpu.restore_symbols(std::move(symbols));
    }
    dpu.mram().import_pages(image.pages);
  }
}

void Rank::reset_memory() {
  check_alive();
  VPIM_CHECK(!ci_any_running(), "reset while DPUs are running");
  for (Dpu& dpu : dpus_) dpu.reset();
}

void Rank::check_not_running(std::uint32_t dpu) const {
  check_alive();
  VPIM_CHECK(dpu < dpus_.size(), "DPU index out of range");
  VPIM_CHECK(finish_time_[dpu] <= clock_.now(),
             "host access to a running DPU");
}

}  // namespace vpim::upmem
