// One UPMEM rank: up to 64 DPUs behind a control interface (§2). The
// paper's testbed exposes 60 functional DPUs per rank (defective DPUs are
// fused off), which we reproduce.
//
// Control-interface (CI) calls model the hardware registers: they mutate
// device state but charge no time themselves — each *access path* (native
// perf-mode mmap, safe-mode ioctl, or the vPIM virtio round trip) charges
// its own calibrated cost, which is exactly the asymmetry the paper
// measures.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/cost_model.h"
#include "common/fault.h"
#include "common/obs/obs.h"
#include "common/sim_clock.h"
#include "upmem/dpu.h"

namespace vpim::upmem {

class Rank {
 public:
  Rank(std::uint32_t index, std::uint32_t functional_dpus,
       const SimClock& clock, const CostModel& cost);

  std::uint32_t index() const { return index_; }
  std::uint32_t nr_dpus() const {
    return static_cast<std::uint32_t>(dpus_.size());
  }
  std::uint64_t all_dpus_mask() const {
    return nr_dpus() == 64 ? ~0ULL : ((1ULL << nr_dpus()) - 1);
  }

  Dpu& dpu(std::uint32_t i);
  const Dpu& dpu(std::uint32_t i) const;

  // --- Control interface ------------------------------------------------
  // Loads a registered kernel into every functional DPU.
  void ci_load(std::string_view kernel_name);
  // Starts the loaded kernel on the masked DPUs; `nr_tasklets` overrides
  // the kernel's default when set.
  void ci_launch(std::uint64_t dpu_mask,
                 std::optional<std::uint32_t> nr_tasklets = std::nullopt);
  // DPUs still running at the current virtual time.
  std::uint64_t ci_running_mask() const;
  bool ci_any_running() const { return ci_running_mask() != 0; }
  // Virtual time at which the last launch fully drains.
  SimNs busy_until() const { return busy_until_; }

  // Host access to per-DPU WRAM symbols (CI path). Rejected while the DPU
  // is running, like touching live hardware would be.
  void ci_copy_to_symbol(std::uint32_t dpu, std::string_view symbol,
                         std::uint32_t offset,
                         std::span<const std::uint8_t> data);
  void ci_copy_from_symbol(std::uint32_t dpu, std::string_view symbol,
                           std::uint32_t offset, std::span<std::uint8_t> out);

  // MRAM access used by the driver mappings; rejected mid-launch.
  MramBank& mram(std::uint32_t dpu);

  // Adopts another rank's full state (migration target). Both ranks must
  // be idle; the source keeps its content (pages are shared CoW).
  void clone_state_from(const Rank& other);

  // Snapshot of one rank's full software-visible state: per-DPU MRAM
  // pages (shared copy-on-write, so a snapshot is nearly free in real
  // memory), the loaded binary, and WRAM symbol values. The basis of the
  // §7 pause/resume + consolidation direction.
  struct Snapshot {
    struct DpuImage {
      std::string kernel;  // empty = no binary loaded
      std::map<std::string, std::vector<std::uint8_t>> symbols;
      std::vector<std::pair<std::uint32_t, MramPageRef>> pages;
    };
    std::vector<DpuImage> dpus;
    // Bytes of resident MRAM content (what a physical save/restore moves).
    std::uint64_t resident_bytes() const {
      std::uint64_t n = 0;
      for (const auto& d : dpus) n += d.pages.size() * kMramPageSize;
      return n;
    }
  };
  Snapshot save_snapshot() const;
  void load_snapshot(const Snapshot& snapshot);

  // Clears all DPU state (manager reset path; time charged by the caller).
  void reset_memory();

  // --- Fault injection ---------------------------------------------------
  // Installed by PimMachine; consulted only at the serial entry of
  // ci_launch, so injected faults are thread-count invariant.
  void set_fault_plan(FaultPlan* plan) { fault_plan_ = plan; }

  // Observability hub (installed by PimMachine, may stay null in unit
  // tests). ci_launch records a rank.launch span plus one dpu.compute span
  // per masked DPU when a tracer is attached.
  void set_obs(obs::Hub* hub) { obs_ = hub; }

  // Permanent rank death: the control interface and DMA windows stop
  // responding. MRAM content stays recoverable via clone_state_from (the
  // chips hold data; only the rank-level pipeline is gone).
  void fail() { failed_ = true; }
  bool failed() const { return failed_; }
  // Throws FaultError(kRankDeath) if the rank has died.
  void check_alive() const;

 private:
  void check_not_running(std::uint32_t dpu) const;

  std::uint32_t index_;
  const SimClock& clock_;
  const CostModel& cost_;
  std::vector<Dpu> dpus_;
  std::vector<SimNs> finish_time_;
  SimNs busy_until_ = 0;
  FaultPlan* fault_plan_ = nullptr;
  obs::Hub* obs_ = nullptr;
  bool failed_ = false;
};

}  // namespace vpim::upmem
