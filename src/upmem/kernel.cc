#include "upmem/kernel.h"

#include <algorithm>

#include "upmem/dpu.h"

namespace vpim::upmem {

namespace {
// Fixed setup cost of one MRAM DMA transfer, in DPU cycles. Real hardware
// pays a roughly constant engine-programming cost per transfer on top of
// the streaming time.
constexpr std::uint64_t kDmaFixedCycles = 64;
}  // namespace

DpuCtx::DpuCtx(Dpu& dpu, std::uint32_t nr_tasklets, const CostModel& cost)
    : dpu_(dpu), nr_tasklets_(nr_tasklets), cost_(cost), instr_(nr_tasklets) {
  VPIM_CHECK(nr_tasklets >= 1 && nr_tasklets <= kMaxTasklets,
             "tasklet count out of range");
}

std::span<std::uint8_t> DpuCtx::mem_alloc(std::uint32_t bytes) {
  VPIM_CHECK(heap_used_ + bytes <= dpu_.wram_heap_size(),
             "WRAM heap exhausted");
  heap_used_ += bytes;
  allocations_.emplace_back(bytes, 0);
  return {allocations_.back().data(), allocations_.back().size()};
}

void DpuCtx::mram_read(std::uint64_t mram_addr,
                       std::span<std::uint8_t> wram_buf) {
  VPIM_CHECK(wram_buf.size() <= kWramSize, "DMA larger than WRAM");
  dpu_.mram().read(mram_addr, wram_buf);
  const double cycles_per_byte = cost_.dpu_hz / (cost_.mram_dma_gbps * 1e9);
  instr_[tasklet_] +=
      kDmaFixedCycles +
      static_cast<std::uint64_t>(cycles_per_byte *
                                 static_cast<double>(wram_buf.size()));
}

void DpuCtx::mram_write(std::span<const std::uint8_t> wram_buf,
                        std::uint64_t mram_addr) {
  VPIM_CHECK(wram_buf.size() <= kWramSize, "DMA larger than WRAM");
  dpu_.mram().write(mram_addr, wram_buf);
  const double cycles_per_byte = cost_.dpu_hz / (cost_.mram_dma_gbps * 1e9);
  instr_[tasklet_] +=
      kDmaFixedCycles +
      static_cast<std::uint64_t>(cycles_per_byte *
                                 static_cast<double>(wram_buf.size()));
}

std::span<std::uint8_t> DpuCtx::symbol_bytes(std::string_view name) {
  return dpu_.symbol_bytes(name);
}

void DpuCtx::begin_stage() {
  std::fill(instr_.begin(), instr_.end(), 0);
  // Stage-local WRAM buffers are released at the barrier: kernels declare
  // them as per-stage statics on real hardware. Cross-stage communication
  // goes through symbols or MRAM.
  heap_used_ = 0;
  allocations_.clear();
}

std::uint64_t DpuCtx::stage_cycles() const {
  std::uint64_t sum = 0;
  std::uint64_t mx = 0;
  for (std::uint64_t c : instr_) {
    sum += c;
    mx = std::max(mx, c);
  }
  // One instruction retires per cycle when the pipeline is full; with fewer
  // than kPipelineDepth busy tasklets, each tasklet's instructions are
  // spaced kPipelineDepth cycles apart and the slowest tasklet bounds the
  // stage (§2 hardware constraint).
  return std::max(sum, kPipelineDepth * mx);
}

KernelRegistry& KernelRegistry::instance() {
  static KernelRegistry registry;
  return registry;
}

void KernelRegistry::add(DpuKernel kernel) {
  VPIM_CHECK(!kernel.name.empty(), "kernel needs a name");
  VPIM_CHECK(kernel.iram_bytes <= kIramSize, "kernel does not fit in IRAM");
  VPIM_CHECK(!kernel.stages.empty(), "kernel needs at least one stage");
  kernels_.insert_or_assign(kernel.name, std::move(kernel));
}

const DpuKernel& KernelRegistry::get(std::string_view name) const {
  auto it = kernels_.find(name);
  VPIM_CHECK(it != kernels_.end(),
             "unknown DPU binary: " + std::string(name));
  return it->second;
}

bool KernelRegistry::contains(std::string_view name) const {
  return kernels_.contains(name);
}

}  // namespace vpim::upmem
