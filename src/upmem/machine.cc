#include "upmem/machine.h"

#include "common/error.h"

namespace vpim::upmem {

PimMachine::PimMachine(const MachineConfig& config, SimClock& clock,
                       const CostModel& cost)
    : clock_(clock), cost_(cost) {
  VPIM_CHECK(config.nr_ranks >= 1, "machine needs at least one rank");
  ranks_.reserve(config.nr_ranks);
  for (std::uint32_t i = 0; i < config.nr_ranks; ++i) {
    ranks_.push_back(std::make_unique<Rank>(
        i, config.functional_dpus_per_rank, clock, cost));
  }
}

Rank& PimMachine::rank(std::uint32_t i) {
  VPIM_CHECK(i < ranks_.size(), "rank index out of range");
  return *ranks_[i];
}

void PimMachine::set_fault_plan(FaultPlan* plan) {
  fault_plan_ = plan;
  for (auto& rank : ranks_) rank->set_fault_plan(plan);
}

void PimMachine::set_obs(obs::Hub* hub) {
  obs_ = hub;
  for (auto& rank : ranks_) rank->set_obs(hub);
}

std::uint32_t PimMachine::total_dpus() const {
  std::uint32_t total = 0;
  for (const auto& rank : ranks_) total += rank->nr_dpus();
  return total;
}

}  // namespace vpim::upmem
