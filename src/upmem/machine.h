// A host machine with UPMEM DIMMs. The default configuration mirrors the
// paper's testbed (§5.1): 8 ranks, 60 functional DPUs each = 480 DPUs at
// 350 MHz.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/cost_model.h"
#include "common/sim_clock.h"
#include "upmem/rank.h"

namespace vpim::upmem {

struct MachineConfig {
  std::uint32_t nr_ranks = 8;
  std::uint32_t functional_dpus_per_rank = 60;
};

class PimMachine {
 public:
  PimMachine(const MachineConfig& config, SimClock& clock,
             const CostModel& cost);

  std::uint32_t nr_ranks() const {
    return static_cast<std::uint32_t>(ranks_.size());
  }
  Rank& rank(std::uint32_t i);
  std::uint32_t total_dpus() const;

  SimClock& clock() { return clock_; }
  const CostModel& cost() const { return cost_; }

  // Installs (or clears, with nullptr) a fault plan on the machine and all
  // its ranks. The plan must outlive the machine's use of it.
  void set_fault_plan(FaultPlan* plan);
  FaultPlan* fault_plan() const { return fault_plan_; }

  // Installs the observability hub on the machine and all its ranks
  // (same lifetime contract as the fault plan).
  void set_obs(obs::Hub* hub);
  obs::Hub* obs() const { return obs_; }

 private:
  SimClock& clock_;
  const CostModel& cost_;
  std::vector<std::unique_ptr<Rank>> ranks_;
  FaultPlan* fault_plan_ = nullptr;
  obs::Hub* obs_ = nullptr;
};

}  // namespace vpim::upmem
