// DPU-side programming model.
//
// Real UPMEM DPU programs are separate binaries compiled for the DPU ISA and
// loaded into IRAM. In this simulator a "binary" is a named DpuKernel: a
// sequence of *stages*, each executed by every tasklet (SPMD). A stage
// boundary is an implicit barrier, which is how UPMEM kernels use
// barrier_wait in practice (init stage / compute stage / reduce stage).
//
// Kernels do real computation against real MRAM/WRAM contents and charge
// DPU cycles through DpuCtx, so both results and DPU-segment timing are
// meaningful. The cycle model follows the §2 pipeline constraint: one
// instruction issued per cycle overall, and consecutive instructions of one
// tasklet at least kPipelineDepth cycles apart.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/cost_model.h"
#include "common/error.h"
#include "upmem/layout.h"

namespace vpim::upmem {

class Dpu;

// Where a host-visible symbol lives. WRAM symbols are small variables
// accessed through the control interface; the MRAM heap is the bulk data
// region targeted by rank read/write operations.
enum class SymbolLocation : std::uint8_t { kWram, kMram };

struct SymbolDecl {
  std::string name;
  std::uint32_t size = 0;  // bytes (WRAM symbols only)
};

// Name of the implicit MRAM heap symbol, mirroring the SDK's
// DPU_MRAM_HEAP_POINTER_NAME.
inline constexpr std::string_view kMramHeapSymbol = "__sys_used_mram_end";

// Execution context handed to each tasklet.
class DpuCtx {
 public:
  DpuCtx(Dpu& dpu, std::uint32_t nr_tasklets, const CostModel& cost);

  std::uint32_t me() const { return tasklet_; }
  std::uint32_t nr_tasklets() const { return nr_tasklets_; }

  // Bump allocation from the shared 64 KiB WRAM heap (mem_alloc in the
  // SDK). Reset between launches. Throws if WRAM is exhausted.
  std::span<std::uint8_t> mem_alloc(std::uint32_t bytes);

  // MRAM <-> WRAM DMA; charges DMA cycles to the calling tasklet.
  void mram_read(std::uint64_t mram_addr, std::span<std::uint8_t> wram_buf);
  void mram_write(std::span<const std::uint8_t> wram_buf,
                  std::uint64_t mram_addr);

  // Typed access to a host-visible WRAM symbol. Tasklets of one DPU share
  // symbol storage, like UPMEM __host variables.
  template <typename T>
  T& var(std::string_view name, std::uint32_t index = 0) {
    auto bytes = symbol_bytes(name);
    VPIM_CHECK((index + 1) * sizeof(T) <= bytes.size(),
               "symbol access out of bounds");
    return *reinterpret_cast<T*>(bytes.data() + index * sizeof(T));
  }

  std::span<std::uint8_t> symbol_bytes(std::string_view name);

  // Charges `instructions` pipeline instructions to the calling tasklet.
  // Kernels call this alongside their real C++ computation so the DPU
  // segment time scales with the work done.
  void exec(std::uint64_t instructions) { instr_[tasklet_] += instructions; }

  // --- used by Dpu::run ----------------------------------------------
  void begin_stage();
  void set_tasklet(std::uint32_t t) { tasklet_ = t; }
  // Stage duration in cycles under the pipeline model.
  std::uint64_t stage_cycles() const;

 private:
  Dpu& dpu_;
  std::uint32_t nr_tasklets_;
  const CostModel& cost_;
  std::uint32_t tasklet_ = 0;
  std::uint32_t heap_used_ = 0;
  std::vector<std::uint64_t> instr_;  // per-tasklet issued instructions
  std::vector<std::vector<std::uint8_t>> allocations_;
};

using StageFn = std::function<void(DpuCtx&)>;

struct DpuKernel {
  std::string name;
  std::vector<SymbolDecl> symbols;   // WRAM symbols
  std::vector<StageFn> stages;       // implicit barrier between stages
  std::uint32_t iram_bytes = 4096;   // modeled binary size (must fit IRAM)
};

// Global registry standing in for on-disk DPU binaries: dpu_load() resolves
// the binary path to a registered kernel by name.
class KernelRegistry {
 public:
  static KernelRegistry& instance();

  void add(DpuKernel kernel);
  const DpuKernel& get(std::string_view name) const;
  bool contains(std::string_view name) const;

 private:
  std::map<std::string, DpuKernel, std::less<>> kernels_;
};

}  // namespace vpim::upmem
