#include "upmem/dpu.h"

#include "common/error.h"

namespace vpim::upmem {

void Dpu::load(const DpuKernel& kernel) {
  VPIM_CHECK(kernel.iram_bytes <= kIramSize, "binary does not fit in IRAM");
  kernel_ = &kernel;
  symbols_.clear();
  std::uint32_t symbol_bytes = 0;
  for (const SymbolDecl& decl : kernel.symbols) {
    VPIM_CHECK(decl.size > 0, "zero-sized symbol: " + decl.name);
    symbols_.emplace(decl.name, std::vector<std::uint8_t>(decl.size, 0));
    symbol_bytes += decl.size;
  }
  VPIM_CHECK(symbol_bytes <= kWramSize, "symbols exceed WRAM");
  wram_heap_size_ = kWramSize - symbol_bytes;
}

std::string_view Dpu::loaded_kernel_name() const {
  return kernel_ ? std::string_view(kernel_->name) : std::string_view{};
}

SimNs Dpu::run(std::uint32_t nr_tasklets, const CostModel& cost) {
  VPIM_CHECK(kernel_ != nullptr, "launch without a loaded binary");
  DpuCtx ctx(*this, nr_tasklets, cost);
  std::uint64_t total_cycles = 0;
  for (const StageFn& stage : kernel_->stages) {
    ctx.begin_stage();
    for (std::uint32_t t = 0; t < nr_tasklets; ++t) {
      ctx.set_tasklet(t);
      stage(ctx);
    }
    total_cycles += ctx.stage_cycles();
  }
  return cost.dpu_cycles_time(total_cycles);
}

std::span<std::uint8_t> Dpu::symbol_bytes(std::string_view name) {
  auto it = symbols_.find(name);
  VPIM_CHECK(it != symbols_.end(), "unknown symbol: " + std::string(name));
  return {it->second.data(), it->second.size()};
}

void Dpu::clone_from(const Dpu& other) {
  mram_.copy_from(other.mram_);
  kernel_ = other.kernel_;
  symbols_ = other.symbols_;
  wram_heap_size_ = other.wram_heap_size_;
}

void Dpu::restore_symbols(
    std::map<std::string, std::vector<std::uint8_t>> symbols) {
  symbols_.clear();
  for (auto& [name, bytes] : symbols) {
    symbols_.emplace(name, std::move(bytes));
  }
}

void Dpu::reset() {
  mram_.clear();
  kernel_ = nullptr;
  symbols_.clear();
  wram_heap_size_ = kWramSize;
}

}  // namespace vpim::upmem
