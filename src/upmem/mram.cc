#include "upmem/mram.h"

#include <cstring>

#include "common/error.h"

namespace vpim::upmem {

namespace {
void check_range(std::uint64_t offset, std::uint64_t size) {
  VPIM_CHECK(offset <= kMramSize && size <= kMramSize - offset,
             "MRAM access out of bounds");
}
}  // namespace

void MramBank::read(std::uint64_t offset, std::span<std::uint8_t> out) const {
  check_range(offset, out.size());
  std::uint64_t remaining = out.size();
  std::uint64_t src = offset;
  std::uint8_t* dst = out.data();
  while (remaining > 0) {
    const std::uint64_t page = src / kMramPageSize;
    const std::uint64_t in_page = src % kMramPageSize;
    const std::uint64_t n = std::min(remaining, kMramPageSize - in_page);
    if (page < pages_.size() && pages_[page]) {
      std::memcpy(dst, pages_[page]->bytes.data() + in_page, n);
    } else {
      std::memset(dst, 0, n);
    }
    src += n;
    dst += n;
    remaining -= n;
  }
}

void MramBank::write(std::uint64_t offset, std::span<const std::uint8_t> in) {
  check_range(offset, in.size());
  std::uint64_t remaining = in.size();
  std::uint64_t dst = offset;
  const std::uint8_t* src = in.data();
  while (remaining > 0) {
    const std::uint64_t page = dst / kMramPageSize;
    const std::uint64_t in_page = dst % kMramPageSize;
    const std::uint64_t n = std::min(remaining, kMramPageSize - in_page);
    std::memcpy(page_for_write(page).bytes.data() + in_page, src, n);
    dst += n;
    src += n;
    remaining -= n;
  }
}

void MramBank::adopt_pages(std::uint64_t offset,
                           std::span<const MramPageRef> pages) {
  VPIM_CHECK(offset % kMramPageSize == 0,
             "shared-page adoption requires page alignment");
  const std::uint64_t first = offset / kMramPageSize;
  VPIM_CHECK(first + pages.size() <= kMramPages,
             "shared-page adoption out of bounds");
  ensure_table();
  for (std::size_t i = 0; i < pages.size(); ++i) {
    pages_[first + i] = pages[i];
  }
}

std::vector<MramPageRef> MramBank::build_pages(
    std::span<const std::uint8_t> data) {
  std::vector<MramPageRef> pages;
  pages.reserve((data.size() + kMramPageSize - 1) / kMramPageSize);
  for (std::size_t off = 0; off < data.size(); off += kMramPageSize) {
    auto page = std::make_shared<MramPage>();
    const std::size_t n = std::min<std::size_t>(kMramPageSize,
                                                data.size() - off);
    std::memcpy(page->bytes.data(), data.data() + off, n);
    if (n < kMramPageSize) {
      std::memset(page->bytes.data() + n, 0, kMramPageSize - n);
    }
    pages.push_back(std::move(page));
  }
  return pages;
}

void MramBank::clear() {
  for (auto& page : pages_) page.reset();
}

std::vector<std::pair<std::uint32_t, MramPageRef>> MramBank::export_pages()
    const {
  std::vector<std::pair<std::uint32_t, MramPageRef>> out;
  for (std::uint32_t i = 0; i < pages_.size(); ++i) {
    if (pages_[i]) out.emplace_back(i, pages_[i]);
  }
  return out;
}

void MramBank::import_pages(
    const std::vector<std::pair<std::uint32_t, MramPageRef>>& pages) {
  clear();
  if (!pages.empty()) ensure_table();
  for (const auto& [index, page] : pages) {
    VPIM_CHECK(index < kMramPages, "imported page out of bounds");
    pages_[index] = page;
  }
}

std::size_t MramBank::resident_pages() const {
  std::size_t n = 0;
  for (const auto& page : pages_) {
    if (page) ++n;
  }
  return n;
}

void MramBank::ensure_table() {
  if (pages_.empty()) pages_.resize(kMramPages);
}

MramPage& MramBank::page_for_write(std::uint64_t page_index) {
  ensure_table();
  MramPageRef& ref = pages_[page_index];
  if (!ref) {
    ref = std::make_shared<MramPage>();
    std::memset(ref->bytes.data(), 0, kMramPageSize);
  } else if (ref.use_count() > 1) {
    // Copy-on-write: this page is shared with another bank (broadcast).
    ref = std::make_shared<MramPage>(*ref);
  }
  return *ref;
}

}  // namespace vpim::upmem
