// One DRAM Processing Unit: 64 MiB MRAM bank, 64 KiB WRAM, 24 KiB IRAM,
// up to 24 tasklets (§2, Fig 1).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/cost_model.h"
#include "common/units.h"
#include "upmem/kernel.h"
#include "upmem/layout.h"
#include "upmem/mram.h"

namespace vpim::upmem {

class Dpu {
 public:
  MramBank& mram() { return mram_; }
  const MramBank& mram() const { return mram_; }

  // Loads a registered kernel ("binary") into IRAM and lays out its
  // host-visible WRAM symbols.
  void load(const DpuKernel& kernel);
  bool loaded() const { return kernel_ != nullptr; }
  std::string_view loaded_kernel_name() const;

  // Runs the loaded kernel with `nr_tasklets` tasklets and returns the
  // modeled execution duration. The computation happens eagerly; callers
  // model asynchrony by deferring visibility until the finish time.
  SimNs run(std::uint32_t nr_tasklets, const CostModel& cost);

  // Host access to a WRAM symbol (control-interface path).
  std::span<std::uint8_t> symbol_bytes(std::string_view name);

  // WRAM left for the tasklet heap after symbol storage.
  std::uint32_t wram_heap_size() const { return wram_heap_size_; }

  // Adopts another DPU's full state: MRAM content (copy-on-write), the
  // loaded binary, and WRAM symbol values. Used by rank migration.
  void clone_from(const Dpu& other);

  // Snapshot plumbing (Rank::save_snapshot / load_snapshot).
  const std::map<std::string, std::vector<std::uint8_t>, std::less<>>&
  symbols() const {
    return symbols_;
  }
  void restore_symbols(
      std::map<std::string, std::vector<std::uint8_t>> symbols);

  // Fully clears DPU state (rank reset).
  void reset();

 private:
  MramBank mram_;
  const DpuKernel* kernel_ = nullptr;
  std::map<std::string, std::vector<std::uint8_t>, std::less<>> symbols_;
  std::uint32_t wram_heap_size_ = kWramSize;
};

}  // namespace vpim::upmem
