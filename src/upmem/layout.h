// Fixed UPMEM hardware geometry (paper §2, Fig 1).
#pragma once

#include <cstdint>

#include "common/units.h"

namespace vpim::upmem {

inline constexpr std::uint64_t kMramSize = 64 * kMiB;  // per-DPU MRAM bank
inline constexpr std::uint64_t kWramSize = 64 * kKiB;  // per-DPU working RAM
inline constexpr std::uint64_t kIramSize = 24 * kKiB;  // per-DPU instr. RAM

inline constexpr std::uint32_t kDpusPerChip = 8;
inline constexpr std::uint32_t kChipsPerRank = 8;
inline constexpr std::uint32_t kDpuSlotsPerRank = kDpusPerChip * kChipsPerRank;

inline constexpr std::uint32_t kMaxTasklets = 24;
// Hardware pipeline constraint: two consecutive instructions of one thread
// must be >= 11 cycles apart, so >= 11 tasklets are needed to keep the
// pipeline fully utilized (§2).
inline constexpr std::uint32_t kPipelineDepth = 11;

// Rank operations move at most 4 GiB per operation (§3.1).
inline constexpr std::uint64_t kMaxXferBytes = 4 * kGiB;

inline constexpr std::uint64_t kMramPageSize = 4 * kKiB;
inline constexpr std::uint64_t kMramPages = kMramSize / kMramPageSize;

}  // namespace vpim::upmem
