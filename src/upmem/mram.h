// Sparse, copy-on-write model of one DPU's 64 MiB MRAM bank.
//
// A full PIM machine would need 8 ranks x 64 DPUs x 64 MiB = 32 GiB of
// backing store if MRAM were allocated eagerly; instead pages materialize on
// first write and broadcast transfers (same host buffer pushed to every DPU,
// e.g. the UPMEM checksum demo) share immutable pages across banks.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "upmem/layout.h"

namespace vpim::upmem {

struct MramPage {
  std::array<std::uint8_t, kMramPageSize> bytes;
};
using MramPageRef = std::shared_ptr<MramPage>;

class MramBank {
 public:
  // The page table itself is lazy too: a fresh bank holds an empty vector
  // and grows it to kMramPages on the first write/adopt/import. Machines
  // construct 8 ranks x 64 banks up front, and a 16384-slot table per bank
  // is real memory and construction time for banks most workloads never
  // touch.
  MramBank() = default;

  // Reads `out.size()` bytes starting at `offset`; absent pages read as 0.
  void read(std::uint64_t offset, std::span<std::uint8_t> out) const;

  // Writes `in.size()` bytes starting at `offset` (copy-on-write).
  void write(std::uint64_t offset, std::span<const std::uint8_t> in);

  // Shares pre-built immutable pages starting at page-aligned `offset`.
  // Used by broadcast transfers: N banks end up referencing one page set.
  void adopt_pages(std::uint64_t offset, std::span<const MramPageRef> pages);

  // Builds shareable pages from a host buffer (zero-padded tail).
  static std::vector<MramPageRef> build_pages(
      std::span<const std::uint8_t> data);

  // Adopts the full content of another bank by sharing its pages
  // (copy-on-write). Used by rank migration: the physical copy is modeled
  // in virtual time by the caller.
  void copy_from(const MramBank& other) { pages_ = other.pages_; }

  // Drops every page (rank reset; content reads back as zero).
  void clear();

  // Number of materialized (non-shared-null) pages, for memory accounting.
  std::size_t resident_pages() const;

  // Enumerates resident pages as (page index, shared ref) pairs.
  std::vector<std::pair<std::uint32_t, MramPageRef>> export_pages() const;
  // Replaces the whole bank content with the given page set.
  void import_pages(
      const std::vector<std::pair<std::uint32_t, MramPageRef>>& pages);

 private:
  MramPage& page_for_write(std::uint64_t page_index);
  void ensure_table();

  std::vector<MramPageRef> pages_;  // empty until the first write
};

}  // namespace vpim::upmem
