// vPIM optimization switches, matching Table 2 of the paper. Each named
// preset is one row; benches use them to isolate the effect of every
// optimization (§5.4).
#pragma once

#include <string>

#include "common/units.h"

namespace vpim::core {

struct VpimConfig {
  // §4.2 "AVX512 and C enhancements": wide-word interleave/matrix code
  // instead of the naive per-byte path.
  bool c_enhancement = true;
  // §4.1 prefetch cache: 16 pages per DPU serving small reads.
  bool prefetch_cache = true;
  // §4.1 request batching: 64 pages per DPU accumulating small writes.
  bool request_batching = true;
  // §4.2 parallel operation handling across ranks.
  bool parallel_handling = true;
  // §7 future work: vhost-style transitions. Requests are handled by a
  // per-device kernel worker thread instead of trapping out to the
  // userspace VMM, cutting the guest->host transition cost and taking the
  // shared event loop out of the picture entirely.
  bool vhost_transitions = false;
  // §7 future work: when the manager cannot provide a physical rank, bind
  // the device to a host-emulated rank at reduced performance instead of
  // failing the allocation.
  bool oversubscribe = false;

  std::string label = "vPIM";

  // ISSUE 7: submission/completion queue depth — how many WireRequests the
  // frontend keeps in flight before ringing the doorbell (each slot owns a
  // full wire arena, so guest RAM pays ~8 MiB per extra slot). 0 means
  // "auto": take VPIM_DEPTH from the environment, else 1. Depth 1 is the
  // classic blocking path and is bit-identical to the pre-SQ/CQ device in
  // every observable (stats, spans, metrics, virtual time, GPA layout).
  std::uint32_t queue_depth = 0;

  // Sizing of the §4.1 frontend buffers (defaults from the prototype).
  std::uint32_t prefetch_cache_pages = 16;  // per DPU
  std::uint32_t batch_buffer_pages = 64;    // per DPU
  // Only writes up to this size are absorbed by the batch buffer; larger
  // transfers go straight to the backend (batching bulk data would just
  // add a copy).
  std::uint32_t batch_entry_max_pages = 16;  // 64 KiB

  // Fault handling (robustness, ISSUE 3). The frontend abandons a request
  // whose completion never arrives after poll_deadline_ns of virtual time
  // (typed TIMEOUT error), re-polling every poll_interval_ns; the backend
  // retries a transiently faulted rank operation up to fault_max_retries
  // times with exponential backoff (CostModel::fault_retry_backoff_ns).
  SimNs poll_deadline_ns = 100 * kMs;
  SimNs poll_interval_ns = 100 * kUs;
  std::uint32_t fault_max_retries = 4;

  // Overload protection (ISSUE 8). default_deadline_ns, when non-zero, is
  // a *relative* deadline the frontend stamps on every staged rank op
  // (absolute = now + default_deadline_ns); try_submit_* may also pass an
  // explicit absolute deadline per request. cq_capacity bounds unreaped
  // completions on the async path: once cq backlog + staged requests reach
  // it, try_submit_* returns a typed OVERLOADED would-block instead of
  // growing memory. 0 = unbounded (the pre-ISSUE-8 behaviour).
  SimNs default_deadline_ns = 0;
  std::uint32_t cq_capacity = 0;

  static VpimConfig rust() {
    return {false, false, false, false, false, false, "vPIM-rust"};
  }
  static VpimConfig c_only() {
    return {true, false, false, false, false, false, "vPIM-C"};
  }
  static VpimConfig with_prefetch() {
    return {true, true, false, false, false, false, "vPIM+P"};
  }
  static VpimConfig with_batching() {
    return {true, false, true, false, false, false, "vPIM+B"};
  }
  static VpimConfig with_prefetch_batching() {
    return {true, true, true, false, false, false, "vPIM+PB"};
  }
  static VpimConfig sequential() {
    return {true, true, true, false, false, false, "vPIM-Seq"};
  }
  static VpimConfig full() {
    return {true, true, true, true, false, false, "vPIM"};
  }
  // §7 future work prototype: full() plus vhost-style transitions.
  static VpimConfig vhost() {
    return {true, true, true, true, true, false, "vPIM+vhost"};
  }
};

}  // namespace vpim::core
