// Everything that exists once per physical host: the UPMEM machine, its
// kernel driver, and the vPIM manager. Benches and examples build one Host
// and boot VMs against it.
#pragma once

#include <memory>
#include <vector>

#include "common/cost_model.h"
#include "common/fault.h"
#include "common/obs/obs.h"
#include "common/sim_clock.h"
#include "driver/driver.h"
#include "upmem/machine.h"
#include "vpim/admission.h"
#include "vpim/manager.h"

namespace vpim::core {

struct Host {
  explicit Host(upmem::MachineConfig machine_config = {},
                CostModel cost_model = {},
                ManagerConfig manager_config = {})
      : cost(cost_model),
        machine(machine_config, clock, cost),
        drv(machine),
        manager(drv, manager_config) {
    machine.set_obs(&obs);
    manager.attach_histograms(
        &obs.metrics.histogram("vpim_manager_alloc_ns", {}),
        &obs.metrics.histogram("vpim_manager_frag_permille", {}));
    manager_collector = obs.metrics.add_collector(
        [this](obs::Collection& out) { collect_manager_metrics(out); });
  }

  // Installs a fault schedule on the machine (see common/fault.h). With no
  // plan installed the fault paths are dead code and the simulation is
  // byte-identical to a fault-free build.
  void install_fault_plan(std::vector<FaultEvent> events) {
    fault_plan = std::make_unique<FaultPlan>(std::move(events));
    machine.set_fault_plan(fault_plan.get());
  }

  // Installs overload protection (ISSUE 8): per-tenant token buckets, the
  // global in-flight budget and the WRR rank-grant fairness policy. With
  // no controller installed every admission hook is a null-pointer test
  // and the stack behaves bit-for-bit like the pre-admission build.
  void install_admission(AdmissionConfig config = {}) {
    admission = std::make_unique<AdmissionController>(config);
    admission->attach_histograms(
        &obs.metrics.histogram("vpim_admission_queued_ns", {}),
        &obs.metrics.histogram("vpim_admission_shed_lateness_ns", {}));
    manager.set_admission(admission.get());
    admission_collector = obs.metrics.add_collector(
        [this](obs::Collection& out) { collect_admission_metrics(out); });
  }

  // Attaches (or detaches, with nullptr) a span sink for the whole stack:
  // frontend request roots through wire/virtio/backend/driver down to
  // per-DPU compute segments all record into it. With no tracer attached
  // every span site is a single pointer test.
  void attach_tracer(obs::Tracer* tracer) { obs.tracer = tracer; }

  SimClock clock;
  CostModel cost;
  obs::Hub obs;
  upmem::PimMachine machine;
  driver::UpmemDriver drv;
  Manager manager;
  std::unique_ptr<FaultPlan> fault_plan;
  std::unique_ptr<AdmissionController> admission;
  obs::MetricsRegistry::CollectorHandle manager_collector;
  obs::MetricsRegistry::CollectorHandle admission_collector;

 private:
  void collect_admission_metrics(obs::Collection& out) {
    if (admission == nullptr) return;
    const AdmissionStats as = admission->stats();
    out.counter("vpim_admission_admitted_total", {}, as.admitted);
    out.counter("vpim_admission_shed_tenant_total", {}, as.shed_tenant);
    out.counter("vpim_admission_shed_global_total", {}, as.shed_global);
    out.counter("vpim_admission_completed_total", {}, as.completed);
    out.counter("vpim_admission_fairness_deferrals_total", {},
                as.fairness_deferrals);
    out.counter("vpim_admission_sessions_total", {}, as.sessions);
    out.gauge("vpim_admission_inflight", {},
              static_cast<std::int64_t>(as.inflight));
  }

  void collect_manager_metrics(obs::Collection& out) {
    const ManagerStats& ms = manager.stats();
    out.counter("vpim_manager_allocations_total", {}, ms.allocations);
    out.counter("vpim_manager_reuse_hits_total", {}, ms.reuse_hits);
    out.counter("vpim_manager_resets_total", {}, ms.resets);
    out.counter("vpim_manager_failed_requests_total", {},
                ms.failed_requests);
    out.counter("vpim_manager_releases_observed_total", {},
                ms.releases_observed);
    out.counter("vpim_manager_quarantined_total", {}, ms.quarantined);
    out.counter("vpim_manager_quarantine_probes_total", {},
                ms.quarantine_probes);
    out.counter("vpim_manager_recoveries_total", {}, ms.recoveries);
    out.counter("vpim_manager_seizures_observed_total", {},
                ms.seizures_observed);
    out.counter("vpim_manager_wrank_migrations_total", {},
                ms.wrank_migrations);
    out.counter("vpim_manager_fault_records_drained_total", {},
                ms.fault_records_drained);
    out.counter("vpim_manager_status_parse_errors_total", {},
                ms.status_parse_errors);
    out.counter("vpim_manager_wrank_allocs_total", {}, ms.wrank_allocs);
    out.counter("vpim_manager_wrank_releases_total", {},
                ms.wrank_releases);
    out.counter("vpim_manager_wrank_resizes_total", {}, ms.wrank_resizes);
    out.counter("vpim_manager_quota_rejections_total", {},
                ms.quota_rejections);
    out.counter("vpim_manager_consolidation_passes_total", {},
                ms.consolidation_passes);
    out.counter("vpim_manager_consolidation_migrations_total", {},
                ms.consolidation_migrations);
    out.counter("vpim_manager_wranks_displaced_total", {},
                ms.wranks_displaced);
    out.gauge("vpim_manager_frag_permille", {},
              static_cast<std::int64_t>(manager.fragmentation_permille()));
  }
};

}  // namespace vpim::core
