// Everything that exists once per physical host: the UPMEM machine, its
// kernel driver, and the vPIM manager. Benches and examples build one Host
// and boot VMs against it.
#pragma once

#include "common/cost_model.h"
#include "common/sim_clock.h"
#include "driver/driver.h"
#include "upmem/machine.h"
#include "vpim/manager.h"

namespace vpim::core {

struct Host {
  explicit Host(upmem::MachineConfig machine_config = {},
                CostModel cost_model = {},
                ManagerConfig manager_config = {})
      : cost(cost_model),
        machine(machine_config, clock, cost),
        drv(machine),
        manager(drv, manager_config) {}

  SimClock clock;
  CostModel cost;
  upmem::PimMachine machine;
  driver::UpmemDriver drv;
  Manager manager;
};

}  // namespace vpim::core
