// Everything that exists once per physical host: the UPMEM machine, its
// kernel driver, and the vPIM manager. Benches and examples build one Host
// and boot VMs against it.
#pragma once

#include <memory>
#include <vector>

#include "common/cost_model.h"
#include "common/fault.h"
#include "common/sim_clock.h"
#include "driver/driver.h"
#include "upmem/machine.h"
#include "vpim/manager.h"

namespace vpim::core {

struct Host {
  explicit Host(upmem::MachineConfig machine_config = {},
                CostModel cost_model = {},
                ManagerConfig manager_config = {})
      : cost(cost_model),
        machine(machine_config, clock, cost),
        drv(machine),
        manager(drv, manager_config) {}

  // Installs a fault schedule on the machine (see common/fault.h). With no
  // plan installed the fault paths are dead code and the simulation is
  // byte-identical to a fault-free build.
  void install_fault_plan(std::vector<FaultEvent> events) {
    fault_plan = std::make_unique<FaultPlan>(std::move(events));
    machine.set_fault_plan(fault_plan.get());
  }

  SimClock clock;
  CostModel cost;
  upmem::PimMachine machine;
  driver::UpmemDriver drv;
  Manager manager;
  std::unique_ptr<FaultPlan> fault_plan;
};

}  // namespace vpim::core
