// vUPMEM backend: the device model inside Firecracker (§4.2).
//
// Decodes requests popped from the virtqueues, performs them on the
// physical rank through a performance-mode mapping, and completes them via
// the used ring. Implements the paper's backend optimizations:
//   - zero-copy request handling: payload pages are reached through
//     GPA->HVA translation (spread across translation worker threads),
//     never copied through the ring;
//   - contiguous guest pages merge into one segment during translation,
//     plus broadcast detection, so bulk copies stream at full bandwidth
//     (and broadcast storage stays copy-on-write);
//   - the wide-word ("C/AVX512") or naive ("Rust") data path per the
//     active VpimConfig;
//   - per-chip operation workers (8 DPUs at a time).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/obs/obs.h"
#include "driver/driver.h"
#include "virtio/device_state.h"
#include "virtio/pim_spec.h"
#include "virtio/virtqueue.h"
#include "vmm/vmm.h"
#include "vpim/config.h"
#include "vpim/device_stats.h"
#include "vpim/manager.h"
#include "vpim/wire.h"

namespace vpim::core {

// Non-owning callable reference. run_with_recovery's ops are short-lived
// stack lambdas invoked before the call returns, so no ownership is
// needed — and unlike std::function, binding one never heap-allocates,
// which matters on the per-request hot path.
class OpRef {
 public:
  template <typename F>
  OpRef(F&& f)  // NOLINT(google-explicit-constructor)
      : ctx_(const_cast<void*>(static_cast<const void*>(&f))),
        fn_([](void* c) {
          (*static_cast<std::remove_reference_t<F>*>(c))();
        }) {}
  void operator()() const { fn_(ctx_); }

 private:
  void* ctx_;
  void (*fn_)(void*);
};

class Backend {
 public:
  Backend(vmm::Vmm& vmm, driver::UpmemDriver& drv, Manager& manager,
          const VpimConfig& config, virtio::Virtqueue& transferq,
          virtio::Virtqueue& controlq, virtio::DeviceState& state,
          DeviceStats& stats, std::string device_tag, obs::Hub& obs);

  // Event-loop entry points: drain all pending requests on the queue.
  void handle_transferq();
  void handle_controlq();

  bool bound() const { return mapping_.has_value() || emulated_ != nullptr; }
  // Oversubscription (§7): true when this device runs on a host-emulated
  // rank rather than physical UPMEM.
  bool emulated() const { return emulated_ != nullptr; }
  std::uint32_t rank_index() const;  // physical bindings only
  virtio::PimConfigSpace config_space() const;
  const std::string& tag() const { return tag_; }
  // The manager's admission controller, when one is installed (ISSUE 8);
  // the frontend consults it on the try_submit path.
  AdmissionController* admission() const { return manager_.admission(); }

 private:
  // Per-request dispatch. Guest-controlled input is validated with
  // VPIM_REQUEST_CHECK; a violation (or any VpimError a deeper layer
  // raises about guest data) completes the offending chain with a
  // virtio::PimStatus instead of unwinding out of the device model — a
  // hostile tenant must never abort or wedge the host (§3, §7).
  void handle_one(const virtio::DescChain& chain);
  void handle_rank_op(const virtio::DescChain& chain,
                      const WireRequest& req);
  void apply_batched_writes(const DeserializeResult& matrix);
  void handle_ci(const virtio::DescChain& chain, const WireRequest& req);
  void handle_config(const virtio::DescChain& chain);
  void handle_control(const virtio::DescChain& chain,
                      const WireRequest& req);
  // Reads + validates the WireRequest block at the head of a chain.
  WireRequest read_request(const virtio::DescChain& chain);
  void write_response(const virtio::DescChain& chain,
                      const WireResponse& resp);
  // Error completion: best-effort response write, then push_used so the
  // guest reclaims the descriptors instead of spinning forever.
  void complete_with_status(virtio::Virtqueue& queue,
                            const virtio::DescChain& chain,
                            std::int32_t status);
  driver::DataPath data_path() const;

  // --- rank binding (physical mapping or emulated rank) ----------------
  struct EmulatedRank {
    EmulatedRank(const CostModel& base, const SimClock& clock,
                 std::uint32_t nr_dpus)
        : cost(slowed(base)), rank(0xEE, nr_dpus, clock, cost) {}
    static CostModel slowed(CostModel c) {
      c.dpu_hz /= c.emulation_slowdown;
      return c;
    }
    CostModel cost;  // must outlive `rank`
    upmem::Rank rank;
  };
  upmem::Rank& bound_rank();
  // Binds via the manager; falls back to emulation when allowed. Returns
  // false if neither succeeded.
  bool try_bind();
  void unbind() {
    mapping_.reset();
    emulated_.reset();
  }
  // Data movement over the active binding (cost + storage).
  void data_transfer(const driver::TransferMatrix& matrix);
  void data_broadcast(std::uint64_t mram_offset,
                      std::span<const std::uint8_t> data);
  double batch_gbps() const;
  // Deferred-copy sink for the pipelined transferq drain (ISSUE 7):
  // non-null only on the physical-mapping path with no fault plan
  // installed (fault injection needs copies to fire inside the faulting
  // request so retries see an unchanged bank). The backlog is replayed
  // before any non-deferred bank access and at the end of every drain.
  driver::CopyBacklog* defer_sink();

  // --- fault recovery (ISSUE 3) -----------------------------------------
  // Runs `op`, absorbing injected faults: transient faults retry with
  // exponential backoff up to VpimConfig::fault_max_retries; permanent
  // rank death triggers a transparent wrank migration and a fresh retry.
  // Exhausted/unrecoverable faults rethrow as a DEVICE_FAULT status.
  void run_with_recovery(OpRef op);
  // Moves this device's wrank off its (dead) physical rank onto a freshly
  // allocated one, rescuing MRAM content. False when out of capacity.
  bool recover_rank_death();
  // Injected kLostCompletion check at the per-request dispatch point.
  std::optional<FaultRecord> lost_completion();
  // Deadline boundary check (ISSUE 8): throws a typed kTimeout when the
  // request's wire deadline has already passed, so doomed work is shed
  // before it executes. Called at queue drain and again before data
  // movement (deserialization may consume the remaining budget).
  void check_deadline(const WireRequest& req);

  obs::Tracer* tracer() const { return obs_.tracer; }

  vmm::Vmm& vmm_;
  driver::UpmemDriver& drv_;
  Manager& manager_;
  VpimConfig config_;
  virtio::Virtqueue& transferq_;
  virtio::Virtqueue& controlq_;
  virtio::DeviceState& state_;
  DeviceStats& stats_;
  std::string tag_;
  obs::Hub& obs_;
  std::optional<driver::RankMapping> mapping_;
  std::unique_ptr<EmulatedRank> emulated_;
  // Pooled request-path working set: deserialize output/scratch and the
  // driver transfer matrix are reused across requests, so the steady-state
  // hot path performs no heap allocation once high-water marks are reached.
  DeserializeResult deser_result_;
  DeserializeScratch deser_scratch_;
  driver::TransferMatrix xfer_scratch_;
  virtio::DescChain chain_scratch_;
  driver::CopyBacklog backlog_;
  // Parked state between kSuspendRank and kResumeRank (§7 pause/resume).
  std::optional<upmem::Rank::Snapshot> suspended_;
};

}  // namespace vpim::core
