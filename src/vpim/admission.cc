#include "vpim/admission.h"

#include <algorithm>

#include "common/obs/metrics.h"

namespace vpim::core {

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {
  if (config_.bucket_burst == 0) config_.bucket_burst = 1;
  if (config_.global_inflight_budget == 0) config_.global_inflight_budget = 1;
}

AdmissionController::Session& AdmissionController::session_locked(
    const std::string& tenant) {
  for (Session& s : sessions_) {
    if (s.tenant == tenant) return s;
  }
  Session s;
  s.tenant = tenant;
  s.tokens = config_.bucket_burst * kNanoToken;  // start with a full bucket
  // A late-arriving session starts its WRR share at the *minimum* share of
  // the existing sessions, not at zero: otherwise a newcomer would starve
  // everyone else until it caught up on grants it never contended for.
  std::uint64_t min_vt = 0;
  bool any = false;
  for (const Session& o : sessions_) {
    if (!any || o.rank_vtime < min_vt) min_vt = o.rank_vtime;
    any = true;
  }
  s.rank_vtime = min_vt;
  sessions_.push_back(std::move(s));
  ++stats_.sessions;
  return sessions_.back();
}

void AdmissionController::refill_locked(Session& s, SimNs now) {
  if (now <= s.last_refill) return;
  const std::uint64_t elapsed =
      static_cast<std::uint64_t>(now - s.last_refill);
  // elapsed ns * tokens/sec = nano-tokens, exactly.
  const std::uint64_t cap = config_.bucket_burst * kNanoToken;
  const std::uint64_t earned = elapsed * config_.tokens_per_sec;
  s.tokens = std::min(cap, s.tokens + earned);
  s.last_refill = now;
}

virtio::PimStatus AdmissionController::try_admit(const std::string& tenant,
                                                SimNs now) {
  std::lock_guard lock(mu_);
  Session& s = session_locked(tenant);
  refill_locked(s, now);
  if (stats_.inflight >= config_.global_inflight_budget) {
    ++stats_.shed_global;
    return virtio::PimStatus::kOverloaded;
  }
  if (s.tokens < kNanoToken) {
    ++stats_.shed_tenant;
    return virtio::PimStatus::kAdmissionReject;
  }
  s.tokens -= kNanoToken;
  ++stats_.inflight;
  ++stats_.admitted;
  return virtio::PimStatus::kOk;
}

void AdmissionController::complete(SimNs /*now*/, SimNs queued_ns) {
  std::lock_guard lock(mu_);
  if (stats_.inflight > 0) --stats_.inflight;
  ++stats_.completed;
  if (queued_hist_ != nullptr) {
    queued_hist_->observe(static_cast<std::uint64_t>(
        queued_ns < 0 ? 0 : queued_ns));
  }
}

bool AdmissionController::allow_rank_grant(const std::string& tenant,
                                           SimNs now) {
  std::lock_guard lock(mu_);
  Session& s = session_locked(tenant);
  s.last_contend = now;
  // Deny only if a *contending* session holds a strictly smaller weighted
  // share: the next free rank belongs to it. Sessions that stopped asking
  // (outside the fairness window) no longer hold anyone back.
  for (const Session& o : sessions_) {
    if (&o == &s || o.last_contend < 0) continue;
    if (o.last_contend + config_.fairness_window_ns < now) continue;
    if (o.rank_vtime < s.rank_vtime) {
      ++stats_.fairness_deferrals;
      return false;
    }
  }
  return true;
}

void AdmissionController::on_rank_granted(const std::string& tenant) {
  on_rank_granted(tenant, 1);
}

void AdmissionController::on_rank_granted(const std::string& tenant,
                                          std::uint32_t slots) {
  std::lock_guard lock(mu_);
  Session& s = session_locked(tenant);
  s.rank_vtime += std::max<std::uint32_t>(1, slots) * (kVtScale / s.weight);
}

void AdmissionController::note_shed_lateness(SimNs lateness_ns) {
  std::lock_guard lock(mu_);
  if (shed_hist_ != nullptr) {
    shed_hist_->observe(static_cast<std::uint64_t>(
        lateness_ns < 0 ? 0 : lateness_ns));
  }
}

void AdmissionController::set_tenant_weight(const std::string& tenant,
                                            std::uint32_t weight) {
  std::lock_guard lock(mu_);
  session_locked(tenant).weight = std::max<std::uint32_t>(1, weight);
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void AdmissionController::attach_histograms(obs::Histogram* queued_ns,
                                            obs::Histogram* shed_lateness_ns) {
  std::lock_guard lock(mu_);
  queued_hist_ = queued_ns;
  shed_hist_ = shed_lateness_ns;
}

}  // namespace vpim::core
