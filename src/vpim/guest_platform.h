// SDK platform for code running *inside* a VM. Rank devices bind to vUPMEM
// frontends (safe mode) and application buffers come from guest RAM, so
// unmodified SDK applications run virtualized (requirement R3).
#pragma once

#include <memory>
#include <vector>

#include "sdk/platform.h"
#include "vpim/vpim_vm.h"

namespace vpim::core {

class GuestPlatform : public sdk::Platform {
 public:
  explicit GuestPlatform(VpimVm& vm) : vm_(vm) {}

  std::vector<std::unique_ptr<sdk::RankDevice>> alloc_ranks(
      std::uint32_t nr_ranks) override;
  std::span<std::uint8_t> alloc(std::size_t bytes) override {
    return vm_.vmm().memory().alloc(bytes);
  }
  SimClock& clock() override { return vm_.vmm().clock(); }
  const CostModel& cost() const override { return vm_.vmm().cost(); }

  VpimVm& vm() { return vm_; }

 private:
  VpimVm& vm_;
};

}  // namespace vpim::core
