#include "vpim/frontend.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/error.h"
#include "upmem/layout.h"

namespace vpim::core {

namespace {
constexpr std::uint64_t kBatchRecordOverhead = sizeof(BatchRecordHeader);

void copy_name(char (&dst)[64], std::string_view name) {
  VPIM_CHECK(name.size() < sizeof(dst), "name too long for the wire format");
  std::memset(dst, 0, sizeof(dst));
  std::memcpy(dst, name.data(), name.size());
}

// Rethrows a non-OK device completion as a typed error the guest SDK can
// catch and inspect; the device itself never crashes on a bad request.
void throw_if_rejected(const WireResponse& resp, const char* what) {
  if (resp.status == 0) return;
  throw VpimStatusError(resp.status,
                        std::string("device rejected ") + what + ": " +
                            virtio::status_name(resp.status));
}
}  // namespace

Frontend::Frontend(vmm::Vmm& vmm, Backend& backend,
                   virtio::Virtqueue& transferq, virtio::Virtqueue& controlq,
                   virtio::DeviceState& state, const VpimConfig& config,
                   DeviceStats& stats, std::string tag, obs::Hub& obs)
    : vmm_(vmm),
      backend_(backend),
      transferq_(transferq),
      controlq_(controlq),
      state_(state),
      config_(config),
      stats_(stats),
      tag_(std::move(tag)),
      obs_(obs) {
  // Per-device op-latency distributions (the registry hands back stable
  // references, so the hot path is one array index + one observe()).
  for (std::size_t i = 0; i < kNumRankOps; ++i) {
    op_hist_[i] = &obs_.metrics.histogram(
        "vpim_op_ns",
        {{"device", tag_}, {"op", std::string(kRankOpNames[i])}});
  }
  if (config_.vhost_transitions) {
    // A dedicated kernel worker handles this device's queues; requests
    // from different devices never share a serializing loop.
    vhost_worker_.emplace(vmm_.clock(), vmm_.cost(),
                          /*parallel_handling=*/true);
  }
  // SQ/CQ depth: explicit config wins, then VPIM_DEPTH, then the classic
  // blocking depth of 1.
  depth_ = config_.queue_depth;
  if (depth_ == 0) {
    if (const char* env = std::getenv("VPIM_DEPTH")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) depth_ = static_cast<std::uint32_t>(v);
    }
    if (depth_ == 0) depth_ = 1;
  }
  depth_ = std::min(depth_, kMaxQueueDepth);
  config_.queue_depth = depth_;  // expose the resolved depth via config()
  inflight_hist_ =
      &obs_.metrics.histogram("vpim_inflight_depth", {{"device", tag_}});
  doorbells_metric_ =
      &obs_.metrics.counter("vpim_doorbells_total", {{"device", tag_}});
  requests_metric_ =
      &obs_.metrics.counter("vpim_requests_total", {{"device", tag_}});
}

void Frontend::alloc_arena(WireArena& arena, guest::GuestMemory& mem) {
  constexpr std::uint32_t kDpus = upmem::kDpuSlotsPerRank;
  arena.request = mem.alloc(sizeof(WireRequest));
  arena.matrix_meta = mem.alloc(sizeof(WireMatrixMeta));
  arena.entry_meta = mem.alloc(kDpus * sizeof(WireEntryMeta));
  arena.page_lists = mem.alloc(static_cast<std::uint64_t>(kDpus) *
                               upmem::kMramPages * 8);
  arena.payload = mem.alloc(kCiPayloadBytes);
  arena.response = mem.alloc(sizeof(WireResponse));
}

void Frontend::ensure_arenas() {
  if (arenas_ready_) return;
  guest::GuestMemory& mem = vmm_.memory();
  constexpr std::uint32_t kDpus = upmem::kDpuSlotsPerRank;

  slots_.resize(depth_);
  alloc_arena(slots_[0].arena, mem);

  caches_.resize(kDpus);
  batches_.resize(kDpus);
  filling_.resize(kDpus);
  for (std::uint32_t d = 0; d < kDpus; ++d) {
    if (config_.prefetch_cache) caches_[d].buf = mem.alloc(cache_bytes());
    if (config_.request_batching) batches_[d].buf = mem.alloc(batch_bytes());
  }
  // Extra submission slots allocate after the classic regions, so the
  // depth-1 guest GPA layout — and with it every serialized page list —
  // stays byte-identical to the pre-SQ/CQ device.
  for (std::uint32_t i = 1; i < depth_; ++i) {
    alloc_arena(slots_[i].arena, mem);
  }
  arenas_ready_ = true;
}

bool Frontend::open() {
  if (open_) return true;
  obs::RequestSpan span(tracer(), vmm_.clock(), obs::SpanKind::kControl,
                        tenant_id());
  vmm_.clock().advance(vmm_.cost().ioctl_ns);
  // Virtio initialization dance (Appendix A.1 / virtio 1.x 3.1): status
  // walk and feature negotiation (the PIM device offers no features).
  if (!state_.driver_ok()) {
    state_.write_status(virtio::kStatusAcknowledge);
    state_.write_status(virtio::kStatusAcknowledge |
                        virtio::kStatusDriver);
    state_.write_driver_features(0);
    state_.write_status(virtio::kStatusAcknowledge | virtio::kStatusDriver |
                        virtio::kStatusFeaturesOk);
    state_.write_status(virtio::kStatusAcknowledge | virtio::kStatusDriver |
                        virtio::kStatusFeaturesOk |
                        virtio::kStatusDriverOk);
  }
  ensure_arenas();

  WireArena& arena = slots_[0].arena;
  WireRequest req;
  req.ci_op = static_cast<std::uint32_t>(CiOp::kBindRank);
  req.request_id = wire_request_id();
  std::memcpy(arena.request.data(), &req, sizeof(req));
  const virtio::DescBuffer chain[] = {
      {vmm_.memory().gpa_of(arena.request.data()), sizeof(WireRequest),
       false},
      {vmm_.memory().gpa_of(arena.response.data()), sizeof(WireResponse),
       true},
  };
  control_roundtrip(chain);

  WireResponse resp;
  std::memcpy(&resp, arena.response.data(), sizeof(resp));
  if (resp.status ==
      static_cast<std::int32_t>(virtio::PimStatus::kNoCapacity)) {
    return false;  // manager abandoned the allocation
  }
  throw_if_rejected(resp, "the bind request");
  config_space_ = resp.config;
  open_ = true;
  return true;
}

void Frontend::close() {
  if (!open_) return;
  obs::RequestSpan span(tracer(), vmm_.clock(), obs::SpanKind::kControl,
                        tenant_id());
  vmm_.clock().advance(vmm_.cost().ioctl_ns);
  // Teardown must never wedge: if the device died (DEVICE_FAULT, UNBOUND,
  // TIMEOUT), pending batched writes are lost with it, but the guest still
  // releases its device file and moves on. The pipeline drains first so
  // slot 0's arena is free for the control request and async completions
  // land in the CQ before the device goes away.
  try {
    flush_batch();
    kick();
    raise_flush_error();
  } catch (const VpimStatusError&) {
    for (auto& batch : batches_) batch.cursor = 0;
    batch_pending_ = 0;
    batch_locked_ = false;
  }
  invalidate_cache();

  WireArena& arena = slots_[0].arena;
  WireRequest req;
  req.ci_op = static_cast<std::uint32_t>(CiOp::kReleaseRank);
  req.request_id = wire_request_id();
  std::memcpy(arena.request.data(), &req, sizeof(req));
  const virtio::DescBuffer chain[] = {
      {vmm_.memory().gpa_of(arena.request.data()), sizeof(WireRequest),
       false},
      {vmm_.memory().gpa_of(arena.response.data()), sizeof(WireResponse),
       true},
  };
  try {
    control_roundtrip(chain);
    WireResponse resp;
    std::memcpy(&resp, arena.response.data(), sizeof(resp));
    throw_if_rejected(resp, "the release request");
  } catch (const VpimStatusError&) {
    // Releasing an already-unbound or wedged device: local teardown still
    // completes; the manager's observer reclaims the rank either way.
  }
  open_ = false;
}

bool Frontend::migrate() {
  VPIM_CHECK(open_, "migration on an unlinked device");
  obs::RequestSpan span(tracer(), vmm_.clock(), obs::SpanKind::kControl,
                        tenant_id());
  vmm_.clock().advance(vmm_.cost().ioctl_ns);
  flush_batch();
  kick();  // drain in-flight work before the rank moves
  raise_flush_error();
  invalidate_cache();  // cached segments refer to the old rank

  WireArena& arena = slots_[0].arena;
  WireRequest req;
  req.ci_op = static_cast<std::uint32_t>(CiOp::kMigrateRank);
  req.request_id = wire_request_id();
  std::memcpy(arena.request.data(), &req, sizeof(req));
  const virtio::DescBuffer chain[] = {
      {vmm_.memory().gpa_of(arena.request.data()), sizeof(WireRequest),
       false},
      {vmm_.memory().gpa_of(arena.response.data()), sizeof(WireResponse),
       true},
  };
  control_roundtrip(chain);

  WireResponse resp;
  std::memcpy(&resp, arena.response.data(), sizeof(resp));
  if (resp.status ==
      static_cast<std::int32_t>(virtio::PimStatus::kNoCapacity)) {
    return false;  // no free rank; still bound to the original one
  }
  throw_if_rejected(resp, "the migration request");
  config_space_ = resp.config;
  return true;
}

void Frontend::suspend() {
  VPIM_CHECK(open_, "suspend on an unlinked device");
  obs::RequestSpan span(tracer(), vmm_.clock(), obs::SpanKind::kControl,
                        tenant_id());
  vmm_.clock().advance(vmm_.cost().ioctl_ns);
  flush_batch();
  kick();  // everything in flight must land before the state is parked
  raise_flush_error();
  invalidate_cache();
  WireArena& arena = slots_[0].arena;
  WireRequest req;
  req.ci_op = static_cast<std::uint32_t>(CiOp::kSuspendRank);
  req.request_id = wire_request_id();
  std::memcpy(arena.request.data(), &req, sizeof(req));
  const virtio::DescBuffer chain[] = {
      {vmm_.memory().gpa_of(arena.request.data()), sizeof(WireRequest),
       false},
      {vmm_.memory().gpa_of(arena.response.data()), sizeof(WireResponse),
       true},
  };
  control_roundtrip(chain);
  WireResponse resp;
  std::memcpy(&resp, arena.response.data(), sizeof(resp));
  throw_if_rejected(resp, "the suspend request");
  open_ = false;
}

bool Frontend::resume() {
  VPIM_CHECK(!open_, "resume on a device that is already linked");
  obs::RequestSpan span(tracer(), vmm_.clock(), obs::SpanKind::kControl,
                        tenant_id());
  vmm_.clock().advance(vmm_.cost().ioctl_ns);
  WireArena& arena = slots_[0].arena;
  WireRequest req;
  req.ci_op = static_cast<std::uint32_t>(CiOp::kResumeRank);
  req.request_id = wire_request_id();
  std::memcpy(arena.request.data(), &req, sizeof(req));
  const virtio::DescBuffer chain[] = {
      {vmm_.memory().gpa_of(arena.request.data()), sizeof(WireRequest),
       false},
      {vmm_.memory().gpa_of(arena.response.data()), sizeof(WireResponse),
       true},
  };
  control_roundtrip(chain);
  WireResponse resp;
  std::memcpy(&resp, arena.response.data(), sizeof(resp));
  if (resp.status ==
      static_cast<std::int32_t>(virtio::PimStatus::kNoCapacity)) {
    return false;  // stays parked host-side until capacity frees up
  }
  throw_if_rejected(resp, "the resume request");
  config_space_ = resp.config;
  open_ = true;
  return true;
}

std::uint32_t Frontend::nr_dpus() const {
  VPIM_CHECK(open_, "device not linked to a rank");
  return config_space_.nr_dpus;
}

virtio::PimConfigSpace Frontend::config_space() const {
  VPIM_CHECK(open_, "device not linked to a rank");
  return config_space_;
}

// ------------------------------------------------------------- rank ops

void Frontend::write_to_rank(const driver::TransferMatrix& matrix) {
  VPIM_CHECK(open_, "write-to-rank on an unlinked device");
  VPIM_CHECK(matrix.direction == driver::XferDirection::kToRank,
             "write_to_rank called with a read matrix");
  check_dpus(matrix);
  SimClock& clock = vmm_.clock();
  const SimNs t0 = clock.now();
  obs::RequestSpan span(tracer(), clock, obs::SpanKind::kWrite, tenant_id());
  span.set_bytes(matrix.total_bytes());
  span.set_entries(static_cast<std::uint32_t>(matrix.entries.size()));
  clock.advance(vmm_.cost().ioctl_ns);
  // Any write makes cached MRAM contents stale.
  invalidate_cache();
  if (config_.request_batching && try_batch(matrix)) {
    stats_.ops.add(RankOp::kWriteToRank, clock.now() - t0);
    observe_op(RankOp::kWriteToRank, clock.now() - t0);
    span.set_kind(obs::SpanKind::kWriteBatched);
    return;
  }
  flush_batch();
  send_rank_op(matrix, /*is_write=*/true, /*flags=*/0);
  stats_.ops.add(RankOp::kWriteToRank, clock.now() - t0);
  observe_op(RankOp::kWriteToRank, clock.now() - t0);
}

void Frontend::read_from_rank(const driver::TransferMatrix& matrix) {
  VPIM_CHECK(open_, "read-from-rank on an unlinked device");
  VPIM_CHECK(matrix.direction == driver::XferDirection::kFromRank,
             "read_from_rank called with a write matrix");
  check_dpus(matrix);
  SimClock& clock = vmm_.clock();
  const CostModel& cost = vmm_.cost();
  const SimNs t0 = clock.now();
  obs::RequestSpan span(tracer(), clock, obs::SpanKind::kRead, tenant_id());
  span.set_bytes(matrix.total_bytes());
  span.set_entries(static_cast<std::uint32_t>(matrix.entries.size()));
  clock.advance(cost.ioctl_ns);
  flush_batch();  // non-write request; also required for coherence

  const bool cacheable =
      config_.prefetch_cache &&
      std::all_of(matrix.entries.begin(), matrix.entries.end(),
                  [&](const driver::XferEntry& e) {
                    return e.size <= cache_bytes();
                  });
  if (!cacheable) {
    send_rank_op(matrix, /*is_write=*/false, /*flags=*/0);
    stats_.ops.add(RankOp::kReadFromRank, clock.now() - t0);
    observe_op(RankOp::kReadFromRank, clock.now() - t0);
    return;
  }

  // Classify each entry against its DPU's cache segment.
  auto in_cache = [&](const driver::XferEntry& e) {
    const DpuCache& c = caches_[e.dpu];
    return c.valid && e.mram_offset >= c.base &&
           e.mram_offset + e.size <= c.base + c.len;
  };
  driver::TransferMatrix& fill = fill_scratch_;
  fill.direction = driver::XferDirection::kFromRank;
  fill.entries.clear();
  std::fill(filling_.begin(), filling_.end(), std::uint8_t{0});
  for (const driver::XferEntry& e : matrix.entries) {
    if (in_cache(e)) {
      ++stats_.cache_hits;
      continue;
    }
    ++stats_.cache_misses;
    if (filling_[e.dpu]) continue;  // one fill per DPU per request
    filling_[e.dpu] = 1;
    DpuCache& c = caches_[e.dpu];
    const std::uint64_t len =
        std::min<std::uint64_t>(cache_bytes(),
                                upmem::kMramSize - e.mram_offset);
    fill.entries.push_back({e.dpu, e.mram_offset, c.buf.data(), len});
  }
  if (!fill.entries.empty()) {
    obs::ScopedSpan fill_span(tracer(), clock, obs::SpanKind::kReadFill);
    fill_span.set_bytes(fill.total_bytes());
    fill_span.set_entries(static_cast<std::uint32_t>(fill.entries.size()));
    send_rank_op(fill, /*is_write=*/false, /*flags=*/0);
    ++stats_.cache_fills;
    for (const driver::XferEntry& f : fill.entries) {
      caches_[f.dpu].valid = true;
      caches_[f.dpu].base = f.mram_offset;
      caches_[f.dpu].len = f.size;
    }
  }
  // Serve every entry from the cache. Ranges that still miss (e.g. two
  // disjoint ranges on one DPU in one call) are collected into a single
  // direct read, so the residue costs one doorbell instead of one
  // notify/IRQ round trip per entry.
  driver::TransferMatrix& direct = direct_scratch_;
  direct.direction = driver::XferDirection::kFromRank;
  direct.entries.clear();
  for (const driver::XferEntry& e : matrix.entries) {
    if (!in_cache(e)) {
      direct.entries.push_back(e);
      continue;
    }
    const DpuCache& c = caches_[e.dpu];
    std::memcpy(e.host, c.buf.data() + (e.mram_offset - c.base), e.size);
    clock.advance(cost.cache_hit_fixed_ns +
                  CostModel::bytes_time(e.size, cost.guest_memcpy_gbps));
  }
  if (!direct.entries.empty()) {
    send_rank_op(direct, /*is_write=*/false, /*flags=*/0);
  }
  stats_.ops.add(RankOp::kReadFromRank, clock.now() - t0);
  observe_op(RankOp::kReadFromRank, clock.now() - t0);
  span.set_kind(obs::SpanKind::kReadCached);
}

void Frontend::check_dpus(const driver::TransferMatrix& matrix) const {
  // Reject out-of-range DPU indices at the device-file boundary, like the
  // native driver's ioctl would. Catching this early keeps a bad entry
  // from being absorbed into the batch buffer, where the rejection would
  // otherwise surface later — attributed to an unrelated flush — and
  // discard the other DPUs' batched writes with it.
  for (const driver::XferEntry& e : matrix.entries) {
    VPIM_CHECK(e.dpu < config_space_.nr_dpus,
               "transfer entry targets a DPU beyond the bound rank");
  }
}

bool Frontend::try_batch(const driver::TransferMatrix& matrix) {
  // A posted flush owns the batch buffers until its completion arrives;
  // appending would hand the device a torn buffer.
  if (batch_locked_) return false;
  // Batch only small writes that fit their DPU buffer's remaining space.
  const std::uint64_t small_max =
      std::uint64_t{config_.batch_entry_max_pages} * guest::kGuestPageSize;
  for (const driver::XferEntry& e : matrix.entries) {
    VPIM_CHECK(e.dpu < batches_.size(), "DPU index out of range");
    const DpuBatch& b = batches_[e.dpu];
    if (e.size > small_max ||
        b.cursor + e.size + kBatchRecordOverhead > batch_bytes()) {
      return false;
    }
  }
  SimClock& clock = vmm_.clock();
  const CostModel& cost = vmm_.cost();
  for (const driver::XferEntry& e : matrix.entries) {
    DpuBatch& b = batches_[e.dpu];
    BatchRecordHeader hdr{e.mram_offset, e.size};
    std::memcpy(b.buf.data() + b.cursor, &hdr, sizeof(hdr));
    std::memcpy(b.buf.data() + b.cursor + sizeof(hdr), e.host, e.size);
    b.cursor += sizeof(hdr) + e.size;
    clock.advance(CostModel::bytes_time(e.size, cost.guest_memcpy_gbps) +
                  cost.cache_hit_fixed_ns);
    ++stats_.batched_writes;
    ++batch_pending_;
  }
  // Flush proactively once any buffer is nearly full.
  for (const driver::XferEntry& e : matrix.entries) {
    if (batches_[e.dpu].cursor + 4 * kKiB > batch_bytes()) {
      flush_batch();
      break;
    }
  }
  return true;
}

void Frontend::flush_batch() {
  if (batch_pending_ == 0 || batch_locked_) return;
  obs::ScopedSpan span(tracer(), vmm_.clock(), obs::SpanKind::kWriteFlush);
  driver::TransferMatrix& matrix = flush_scratch_;
  matrix.direction = driver::XferDirection::kToRank;
  matrix.entries.clear();
  for (std::uint32_t d = 0; d < batches_.size(); ++d) {
    if (batches_[d].cursor == 0) continue;
    matrix.entries.push_back(
        {d, 0, batches_[d].buf.data(), batches_[d].cursor});
  }
  span.set_bytes(matrix.total_bytes());
  span.set_entries(static_cast<std::uint32_t>(matrix.entries.size()));
  const std::uint32_t idx =
      stage_rank_op(matrix, /*is_write=*/true, kWireFlagBatched,
                    /*async=*/false, /*ticket=*/0, /*is_flush=*/true);
  batch_locked_ = true;
  // Depth 1 keeps the classic blocking flush; deeper queues post it and
  // let the next kick complete it (kick() resets the cursors and counts
  // the flush once the device accepts it, or parks the failure for
  // raise_flush_error()).
  if (depth_ == 1) kick();
  if (slots_[idx].completed || slots_[idx].timed_out) raise_flush_error();
}

void Frontend::invalidate_cache() {
  for (auto& c : caches_) c.valid = false;
}

void Frontend::record_lost_writes(std::int32_t status) {
  // Walk every DPU's batch buffer and convert the absorbed-but-unflushed
  // records into typed LostWrite entries, then retire the buffers: the
  // writes are declared lost exactly once, and a later flush can never
  // silently re-send them against a device that may have applied some of
  // the failed flush already.
  for (std::uint32_t d = 0; d < batches_.size(); ++d) {
    DpuBatch& b = batches_[d];
    std::uint64_t off = 0;
    while (off + kBatchRecordOverhead <= b.cursor) {
      BatchRecordHeader hdr;
      std::memcpy(&hdr, b.buf.data() + off, sizeof(hdr));
      lost_writes_.push_back({d, hdr.mram_offset, hdr.size, status});
      ++stats_.lost_batched_writes;
      off += kBatchRecordOverhead + hdr.size;
    }
    b.cursor = 0;
  }
  batch_pending_ = 0;
}

void Frontend::send_rank_op(const driver::TransferMatrix& matrix,
                            bool is_write, std::uint32_t flags) {
  const std::uint32_t idx =
      stage_rank_op(matrix, is_write, flags, /*async=*/false, /*ticket=*/0,
                    /*is_flush=*/false);
  finish_sync(idx, is_write ? "a write-to-rank operation"
                            : "a read-from-rank operation");
}

void Frontend::reserve_slot() {
  if (staged_.size() >= depth_) kick();
}

void Frontend::reserve_ring(std::size_t descs) {
  // The descriptor table recycles only on poll_used, so a deep queue of
  // wide matrices can exhaust it before the depth does; kick early rather
  // than let submit() throw.
  if (transferq_.free_descriptors() < descs) kick();
}

std::uint32_t Frontend::stage_rank_op(const driver::TransferMatrix& matrix,
                                      bool is_write, std::uint32_t flags,
                                      bool async, Ticket ticket,
                                      bool is_flush, SimNs deadline_ns) {
  reserve_slot();
  reserve_ring(2 * matrix.entries.size() + 3);
  SimClock& clock = vmm_.clock();
  const CostModel& cost = vmm_.cost();
  const std::uint32_t idx = static_cast<std::uint32_t>(staged_.size());
  SqSlot& slot = slots_[idx];
  slot.t0 = clock.now();

  // -- Page management: user pages -> kernel page lists (Fig 13 "Page").
  const SimNs page_start = clock.now();
  std::uint64_t pages = 0;
  for (const driver::XferEntry& e : matrix.entries) {
    const std::uint64_t first_off =
        vmm_.memory().gpa_of(e.host) % guest::kGuestPageSize;
    pages += (first_off + e.size + guest::kGuestPageSize - 1) /
             guest::kGuestPageSize;
  }
  clock.advance(cost.page_mgmt_ns_per_page * pages);
  if (is_write) {
    stats_.wsteps.add(WrankStep::kPageMgmt, clock.now() - page_start);
  }
  if (obs::Tracer* t = tracer()) {
    t->record(obs::SpanKind::kPageMgmt, page_start,
              clock.now() - page_start, 0,
              static_cast<std::uint32_t>(pages));
  }

  // -- Serialization (Fig 13 "Ser") into this slot's arena.
  const SimNs ser_start = clock.now();
  serialize_matrix(matrix, vmm_.memory(), slot.arena,
                   static_cast<std::uint32_t>(
                       is_write ? virtio::PimRequestType::kWriteToRank
                                : virtio::PimRequestType::kReadFromRank),
                   slot.ser);
  // Patch the flags + causal request id + wire deadline into the
  // serialized request block.
  {
    WireRequest req;
    std::memcpy(&req, slot.arena.request.data(), sizeof(req));
    req.flags = flags;
    req.request_id = wire_request_id();
    req.deadline_ns = static_cast<std::uint64_t>(deadline_ns);
    std::memcpy(slot.arena.request.data(), &req, sizeof(req));
  }
  clock.advance(cost.frontend_request_fixed_ns +
                cost.serialize_ns_per_page * slot.ser.nr_pages +
                cost.per_dpu_metadata_ns * matrix.entries.size());
  if (is_write) {
    stats_.wsteps.add(WrankStep::kSerialize, clock.now() - ser_start);
  }
  if (obs::Tracer* t = tracer()) {
    t->record(obs::SpanKind::kSerialize, ser_start, clock.now() - ser_start,
              matrix.total_bytes(),
              static_cast<std::uint32_t>(matrix.entries.size()));
  }

  // Publish on the available ring; the doorbell waits for kick().
  slot.head = transferq_.submit(slot.ser.chain);
  slot.is_write = is_write;
  slot.async = async;
  slot.is_flush = is_flush;
  slot.completed = false;
  slot.timed_out = false;
  slot.cancelled = false;
  slot.admitted = false;
  slot.ticket = ticket;
  slot.deadline = deadline_ns;
  slot.admit_t0 = 0;
  requests_metric_->inc();
  staged_.push_back(idx);
  return idx;
}

void Frontend::kick() {
  if (staged_.empty()) return;
  SimClock& clock = vmm_.clock();
  const CostModel& cost = vmm_.cost();
  const std::size_t batch = staged_.size();

  ++stats_.doorbells;
  stats_.coalesced_notifies += batch - 1;
  doorbells_metric_->inc();
  inflight_hist_->observe(batch);

  // One span for the whole transport round trip: notify transition,
  // backend batch drain (which nests its own spans), completion IRQ, and
  // any completion polling.
  obs::ScopedSpan span(tracer(), clock, obs::SpanKind::kVirtioRoundtrip);
  if (depth_ > 1) span.set_entries(static_cast<std::uint32_t>(batch));

  // Guest -> host transition, device handling, completion back into the
  // guest (Fig 13 "Int" is the transition cost). With vhost transitions
  // (§7 future work) the kick lands in a per-device kernel worker instead
  // of trapping out to the userspace VMM. The whole batch shares one
  // transition pair — that is the coalescing win.
  const bool vhost = vhost_worker_.has_value();
  const SimNs notify_cost =
      vhost ? cost.vhost_notify_ns : cost.vmexit_notify_ns;
  const SimNs complete_cost =
      vhost ? cost.vhost_complete_ns : cost.irq_inject_ns;
  clock.advance(notify_cost);
  ++stats_.notifies;
  vmm::EventLoop& loop = vhost ? *vhost_worker_ : vmm_.loop();
  loop.dispatch([&] { backend_.handle_transferq(); });
  clock.advance(complete_cost);
  ++stats_.irqs;
  ++stats_.completion_irqs;
  bool any_write = false;
  for (std::uint32_t idx : staged_) any_write |= slots_[idx].is_write;
  if (any_write) {
    stats_.wsteps.add(WrankStep::kInterrupt, notify_cost + complete_cost);
  }

  // Bounded completion wait: the first polls are free (the dispatch above
  // is synchronous, so a healthy device has already completed the whole
  // batch). If a completion never arrives — injected lost completion,
  // wedged device — the guest re-polls every poll_interval_ns of virtual
  // time and abandons the stragglers with a typed TIMEOUT once
  // poll_deadline_ns has elapsed.
  std::size_t got = 0;
  while (got < batch) {
    auto used = transferq_.poll_used();
    if (!used.has_value()) {
      SimNs wait_until = clock.now() + config_.poll_deadline_ns;
      // Completion-reap deadline boundary (ISSUE 8): when every
      // outstanding request carries a wire deadline, there is no point
      // polling past the latest of them — the device itself sheds expired
      // work, so waiting longer can only ever reap kTimeout. Any slot
      // without a deadline keeps the classic full poll budget.
      bool all_deadlined = true;
      SimNs latest = 0;
      for (std::uint32_t idx : staged_) {
        const SqSlot& slot = slots_[idx];
        if (slot.completed) continue;
        if (slot.deadline == 0) {
          all_deadlined = false;
          break;
        }
        latest = std::max(latest, slot.deadline);
      }
      if (all_deadlined && latest > 0) {
        wait_until = std::min(wait_until, latest);
      }
      while (!used.has_value() && clock.now() < wait_until) {
        clock.advance(config_.poll_interval_ns);
        used = transferq_.poll_used();
      }
    }
    if (!used.has_value()) break;
    for (std::uint32_t idx : staged_) {
      SqSlot& slot = slots_[idx];
      if (!slot.completed && slot.head == used->id) {
        std::memcpy(&slot.resp, slot.arena.response.data(),
                    sizeof(WireResponse));
        slot.completed = true;
        break;
      }
    }
    ++got;
  }
  span.close();

  // Resolve every staged slot in submission order: timeouts get a typed
  // status, posted flushes retire the batch buffers, async requests land
  // in the CQ. kick() itself never throws — blocking callers surface
  // their slot's status via finish_sync.
  const SimNs done = clock.now();
  obs::Tracer* t = tracer();
  AdmissionController* adm = backend_.admission();
  for (std::uint32_t idx : staged_) {
    SqSlot& slot = slots_[idx];
    if (!slot.completed) {
      slot.timed_out = true;
      slot.resp = WireResponse{};
      slot.resp.status =
          static_cast<std::int32_t>(virtio::PimStatus::kTimeout);
      ++stats_.poll_timeouts;
    }
    if (depth_ > 1 && t != nullptr) {
      t->record(obs::SpanKind::kSqSlot, slot.t0, done - slot.t0,
                slot.resp.value, idx);
    }
    if (slot.is_flush) {
      if (slot.resp.status == 0) {
        for (auto& b : batches_) b.cursor = 0;
        batch_pending_ = 0;
        ++stats_.batch_flushes;
      } else {
        // The lossy-timeout edge (ISSUE 8): a failed posted flush loses
        // every write the batch buffers absorbed. Surface a typed per-slot
        // record for each before retiring the buffers, so the guest can
        // enumerate exactly what was lost instead of silently re-flushing
        // or dropping them.
        record_lost_writes(slot.resp.status);
        if (pending_flush_status_ == 0) {
          pending_flush_status_ = slot.resp.status;
        }
      }
      batch_locked_ = false;
    }
    if (slot.async) {
      // Release the admission budget on the reap, whatever the status —
      // success, timeout, cancel and deadline-shed all return the unit.
      if (slot.admitted && adm != nullptr) {
        adm->complete(done, done - slot.admit_t0);
      }
      cq_.push_back(
          {slot.ticket, slot.resp.status, slot.resp.value, slot.is_write});
    }
  }
  staged_.clear();
}

void Frontend::raise_flush_error() {
  if (pending_flush_status_ == 0) return;
  const std::int32_t status = pending_flush_status_;
  pending_flush_status_ = 0;
  if (status == static_cast<std::int32_t>(virtio::PimStatus::kTimeout)) {
    throw VpimStatusError(virtio::PimStatus::kTimeout,
                          "device did not complete the request within the "
                          "poll deadline");
  }
  WireResponse resp;
  resp.status = status;
  throw_if_rejected(resp, "a write-to-rank operation");
}

WireResponse Frontend::finish_sync(std::uint32_t idx, const char* what) {
  SqSlot& slot = slots_[idx];
  if (!slot.completed && !slot.timed_out) kick();
  raise_flush_error();
  if (slot.timed_out) {
    throw VpimStatusError(virtio::PimStatus::kTimeout,
                          "device did not complete the request within the "
                          "poll deadline");
  }
  throw_if_rejected(slot.resp, what);
  return slot.resp;
}

void Frontend::control_roundtrip(std::span<const virtio::DescBuffer> chain) {
  SimClock& clock = vmm_.clock();
  const CostModel& cost = vmm_.cost();
  controlq_.submit(chain);

  // Control requests stay strictly synchronous: one request, one
  // doorbell, one completion interrupt.
  ++stats_.doorbells;
  ++stats_.completion_irqs;
  doorbells_metric_->inc();
  requests_metric_->inc();
  obs::ScopedSpan span(tracer(), clock, obs::SpanKind::kVirtioRoundtrip);
  const bool vhost = vhost_worker_.has_value();
  const SimNs notify_cost =
      vhost ? cost.vhost_notify_ns : cost.vmexit_notify_ns;
  const SimNs complete_cost =
      vhost ? cost.vhost_complete_ns : cost.irq_inject_ns;
  clock.advance(notify_cost);
  ++stats_.notifies;
  vmm::EventLoop& loop = vhost ? *vhost_worker_ : vmm_.loop();
  loop.dispatch([&] { backend_.handle_controlq(); });
  clock.advance(complete_cost);
  ++stats_.irqs;

  auto used = controlq_.poll_used();
  if (!used.has_value()) {
    const SimNs deadline = clock.now() + config_.poll_deadline_ns;
    while (!used.has_value() && clock.now() < deadline) {
      clock.advance(config_.poll_interval_ns);
      used = controlq_.poll_used();
    }
  }
  if (!used.has_value()) {
    ++stats_.poll_timeouts;
    throw VpimStatusError(virtio::PimStatus::kTimeout,
                          "device did not complete the request within the "
                          "poll deadline");
  }
}

// --------------------------------------------------------------- CI ops

std::span<std::uint8_t> Frontend::ci_payload() {
  // Reserve now so the slot index cannot move between a caller staging
  // payload bytes and stage_ci serializing into the same slot.
  reserve_slot();
  reserve_ring(3);
  return slots_[staged_.size()].arena.payload;
}

std::uint32_t Frontend::stage_ci(const WireRequest& req,
                                 std::span<std::uint8_t> payload,
                                 bool payload_writable) {
  reserve_slot();
  reserve_ring(3);
  const std::uint32_t idx = static_cast<std::uint32_t>(staged_.size());
  SqSlot& slot = slots_[idx];
  slot.t0 = vmm_.clock().now();
  WireRequest stamped = req;
  stamped.request_id = wire_request_id();
  std::memcpy(slot.arena.request.data(), &stamped, sizeof(stamped));
  // A CI chain is at most [request, payload, response]; build it in a
  // fixed array instead of a heap vector.
  std::array<virtio::DescBuffer, 3> chain;
  std::size_t n = 0;
  chain[n++] = {vmm_.memory().gpa_of(slot.arena.request.data()),
                sizeof(WireRequest), false};
  if (!payload.empty()) {
    chain[n++] = {vmm_.memory().gpa_of(payload.data()),
                  static_cast<std::uint32_t>(payload.size()),
                  payload_writable};
  }
  chain[n++] = {vmm_.memory().gpa_of(slot.arena.response.data()),
                sizeof(WireResponse), true};
  slot.head = transferq_.submit(std::span(chain.data(), n));
  slot.is_write = false;
  slot.async = false;
  slot.is_flush = false;
  slot.completed = false;
  slot.timed_out = false;
  slot.cancelled = false;
  slot.admitted = false;
  slot.ticket = 0;
  slot.deadline = 0;
  slot.admit_t0 = 0;
  requests_metric_->inc();
  staged_.push_back(idx);
  return idx;
}

WireResponse Frontend::ci_roundtrip(const WireRequest& req,
                                    std::span<std::uint8_t> payload,
                                    bool payload_writable) {
  const std::uint32_t idx = stage_ci(req, payload, payload_writable);
  return finish_sync(idx, "the CI operation");
}

void Frontend::ci_load(std::string_view kernel_name) {
  VPIM_CHECK(open_, "CI operation on an unlinked device");
  SimClock& clock = vmm_.clock();
  const SimNs t0 = clock.now();
  obs::RequestSpan span(tracer(), clock, obs::SpanKind::kCiLoad,
                        tenant_id());
  clock.advance(vmm_.cost().ioctl_ns);
  flush_batch();
  WireRequest req;
  req.type = static_cast<std::uint32_t>(virtio::PimRequestType::kCiWrite);
  req.ci_op = static_cast<std::uint32_t>(CiOp::kLoad);
  copy_name(req.name, kernel_name);
  ci_roundtrip(req, {}, false);
  stats_.ops.add(RankOp::kCi, clock.now() - t0);
  observe_op(RankOp::kCi, clock.now() - t0);
}

void Frontend::ci_launch(std::uint64_t dpu_mask,
                         std::optional<std::uint32_t> nr_tasklets) {
  VPIM_CHECK(open_, "CI operation on an unlinked device");
  SimClock& clock = vmm_.clock();
  const SimNs t0 = clock.now();
  obs::RequestSpan span(tracer(), clock, obs::SpanKind::kCiLaunch,
                        tenant_id());
  clock.advance(vmm_.cost().ioctl_ns);
  flush_batch();
  invalidate_cache();  // DPU programs may rewrite MRAM
  WireRequest req;
  req.type = static_cast<std::uint32_t>(virtio::PimRequestType::kCiWrite);
  req.ci_op = static_cast<std::uint32_t>(CiOp::kLaunch);
  req.arg0 = dpu_mask;
  req.arg1 = nr_tasklets ? *nr_tasklets + 1 : 0;
  ci_roundtrip(req, {}, false);
  stats_.ops.add(RankOp::kCi, clock.now() - t0);
  observe_op(RankOp::kCi, clock.now() - t0);
}

std::uint64_t Frontend::ci_running_mask() {
  VPIM_CHECK(open_, "CI operation on an unlinked device");
  SimClock& clock = vmm_.clock();
  const SimNs t0 = clock.now();
  obs::RequestSpan span(tracer(), clock, obs::SpanKind::kCiStatus,
                        tenant_id());
  clock.advance(vmm_.cost().ioctl_ns);
  flush_batch();
  WireRequest req;
  req.type = static_cast<std::uint32_t>(virtio::PimRequestType::kCiRead);
  req.ci_op = static_cast<std::uint32_t>(CiOp::kReadStatus);
  const WireResponse resp = ci_roundtrip(req, {}, false);
  stats_.ops.add(RankOp::kCi, clock.now() - t0);
  observe_op(RankOp::kCi, clock.now() - t0);
  return resp.value;
}

void Frontend::ci_copy_to_symbol(std::uint32_t dpu, std::string_view symbol,
                                 std::uint32_t offset,
                                 std::span<const std::uint8_t> data) {
  VPIM_CHECK(open_, "CI operation on an unlinked device");
  VPIM_CHECK(data.size() <= kCiPayloadBytes,
             "symbol payload exceeds the staging buffer");
  SimClock& clock = vmm_.clock();
  const SimNs t0 = clock.now();
  obs::RequestSpan span(tracer(), clock, obs::SpanKind::kCiSymbol,
                        tenant_id());
  span.set_bytes(data.size());
  clock.advance(vmm_.cost().ioctl_ns);
  flush_batch();
  std::span<std::uint8_t> payload = ci_payload();
  std::memcpy(payload.data(), data.data(), data.size());
  WireRequest req;
  req.type = static_cast<std::uint32_t>(virtio::PimRequestType::kCiWrite);
  req.ci_op = static_cast<std::uint32_t>(CiOp::kCopyToSymbol);
  req.dpu = dpu;
  req.symbol_offset = offset;
  copy_name(req.name, symbol);
  ci_roundtrip(req, payload.first(data.size()), false);
  stats_.ops.add(RankOp::kCi, clock.now() - t0);
  observe_op(RankOp::kCi, clock.now() - t0);
}

void Frontend::ci_copy_from_symbol(std::uint32_t dpu,
                                   std::string_view symbol,
                                   std::uint32_t offset,
                                   std::span<std::uint8_t> out) {
  VPIM_CHECK(open_, "CI operation on an unlinked device");
  VPIM_CHECK(out.size() <= kCiPayloadBytes,
             "symbol payload exceeds the staging buffer");
  SimClock& clock = vmm_.clock();
  const SimNs t0 = clock.now();
  obs::RequestSpan span(tracer(), clock, obs::SpanKind::kCiSymbol,
                        tenant_id());
  span.set_bytes(out.size());
  clock.advance(vmm_.cost().ioctl_ns);
  flush_batch();
  std::span<std::uint8_t> payload = ci_payload();
  WireRequest req;
  req.type = static_cast<std::uint32_t>(virtio::PimRequestType::kCiRead);
  req.ci_op = static_cast<std::uint32_t>(CiOp::kCopyFromSymbol);
  req.dpu = dpu;
  req.symbol_offset = offset;
  copy_name(req.name, symbol);
  ci_roundtrip(req, payload.first(out.size()), true);
  std::memcpy(out.data(), payload.data(), out.size());
  stats_.ops.add(RankOp::kCi, clock.now() - t0);
  observe_op(RankOp::kCi, clock.now() - t0);
}

void Frontend::ci_push_symbols(driver::XferDirection dir,
                               std::string_view symbol,
                               std::uint32_t offset,
                               std::span<std::uint8_t> packed,
                               std::uint32_t bytes_per_dpu) {
  VPIM_CHECK(open_, "CI operation on an unlinked device");
  VPIM_CHECK(bytes_per_dpu > 0 && packed.size() % bytes_per_dpu == 0,
             "packed symbol buffer must hold whole per-DPU values");
  SimClock& clock = vmm_.clock();
  const SimNs t0 = clock.now();
  obs::RequestSpan span(tracer(), clock, obs::SpanKind::kCiSymbol,
                        tenant_id());
  span.set_bytes(packed.size());
  span.set_entries(static_cast<std::uint32_t>(packed.size() / bytes_per_dpu));
  clock.advance(vmm_.cost().ioctl_ns);
  flush_batch();
  WireRequest req;
  req.type = static_cast<std::uint32_t>(
      dir == driver::XferDirection::kToRank
          ? virtio::PimRequestType::kCiWrite
          : virtio::PimRequestType::kCiRead);
  req.ci_op = static_cast<std::uint32_t>(
      dir == driver::XferDirection::kToRank ? CiOp::kCopyToSymbolAll
                                            : CiOp::kCopyFromSymbolAll);
  req.nr_entries =
      static_cast<std::uint32_t>(packed.size() / bytes_per_dpu);
  req.symbol_offset = offset;
  req.arg0 = bytes_per_dpu;
  copy_name(req.name, symbol);
  ci_roundtrip(req, packed,
               dir == driver::XferDirection::kFromRank);
  stats_.ops.add(RankOp::kCi, clock.now() - t0);
  observe_op(RankOp::kCi, clock.now() - t0);
}

// ------------------------------------------------------- async SQ/CQ API

Frontend::Ticket Frontend::submit_async(const driver::TransferMatrix& matrix,
                                        bool is_write, SimNs deadline_ns,
                                        bool admitted, SimNs admit_t0) {
  VPIM_CHECK(open_, is_write ? "write-to-rank on an unlinked device"
                             : "read-from-rank on an unlinked device");
  if (is_write) {
    VPIM_CHECK(matrix.direction == driver::XferDirection::kToRank,
               "submit_write called with a read matrix");
  } else {
    VPIM_CHECK(matrix.direction == driver::XferDirection::kFromRank,
               "submit_read called with a write matrix");
  }
  check_dpus(matrix);
  SimClock& clock = vmm_.clock();
  const SimNs t0 = clock.now();
  obs::RequestSpan span(tracer(), clock,
                        is_write ? obs::SpanKind::kWrite
                                 : obs::SpanKind::kRead,
                        tenant_id());
  span.set_bytes(matrix.total_bytes());
  span.set_entries(static_cast<std::uint32_t>(matrix.entries.size()));
  clock.advance(vmm_.cost().ioctl_ns);
  // Any write makes cached MRAM contents stale; batched writes must not
  // land after this one (write -> read ordering on the read path).
  if (is_write) invalidate_cache();
  flush_batch();
  // An absolute wire deadline: the explicit one wins, otherwise the
  // configured relative default (0 = no deadline, the classic behavior).
  SimNs deadline = deadline_ns;
  if (deadline == 0 && config_.default_deadline_ns > 0) {
    deadline = clock.now() + config_.default_deadline_ns;
  }
  const Ticket ticket = ++next_ticket_;
  const std::uint32_t idx =
      stage_rank_op(matrix, is_write, /*flags=*/0, /*async=*/true, ticket,
                    /*is_flush=*/false, deadline);
  slots_[idx].admitted = admitted;
  slots_[idx].admit_t0 = admit_t0;
  if (staged_.size() >= depth_) kick();
  const RankOp op = is_write ? RankOp::kWriteToRank : RankOp::kReadFromRank;
  stats_.ops.add(op, clock.now() - t0);
  observe_op(op, clock.now() - t0);
  return ticket;
}

Frontend::Ticket Frontend::submit_write(const driver::TransferMatrix& matrix) {
  return submit_async(matrix, /*is_write=*/true, /*deadline_ns=*/0,
                      /*admitted=*/false, /*admit_t0=*/0);
}

Frontend::Ticket Frontend::submit_read(const driver::TransferMatrix& matrix) {
  return submit_async(matrix, /*is_write=*/false, /*deadline_ns=*/0,
                      /*admitted=*/false, /*admit_t0=*/0);
}

Frontend::SubmitResult Frontend::try_submit(
    const driver::TransferMatrix& matrix, bool is_write, SimNs deadline_ns) {
  VPIM_CHECK(open_, "try_submit on an unlinked device");
  SimClock& clock = vmm_.clock();
  // The admission decision is real work on the submit path: charge it and
  // make it visible on its own trace lane, shed or not.
  bool admitted = false;
  {
    obs::ScopedSpan aspan(tracer(), clock, obs::SpanKind::kAdmission);
    clock.advance(vmm_.cost().admission_check_ns);
    // CQ backpressure first: when reaped-but-unfetched completions plus
    // staged work reach the configured capacity, admitting more would grow
    // guest memory without bound. Typed would-block, nothing staged.
    if (config_.cq_capacity > 0 &&
        cq_.size() + staged_.size() >= config_.cq_capacity) {
      ++stats_.would_blocks;
      return {static_cast<std::int32_t>(virtio::PimStatus::kOverloaded), 0};
    }
    if (AdmissionController* adm = backend_.admission()) {
      const virtio::PimStatus verdict = adm->try_admit(tag_, clock.now());
      if (verdict != virtio::PimStatus::kOk) {
        if (verdict == virtio::PimStatus::kAdmissionReject) {
          ++stats_.admission_rejects;
        } else {
          ++stats_.would_blocks;
        }
        return {static_cast<std::int32_t>(verdict), 0};
      }
      admitted = true;  // holds one inflight unit until the reap releases it
    }
  }
  return {0, submit_async(matrix, is_write, deadline_ns, admitted,
                          admitted ? clock.now() : 0)};
}

Frontend::SubmitResult Frontend::try_submit_write(
    const driver::TransferMatrix& matrix, SimNs deadline_ns) {
  return try_submit(matrix, /*is_write=*/true, deadline_ns);
}

Frontend::SubmitResult Frontend::try_submit_read(
    const driver::TransferMatrix& matrix, SimNs deadline_ns) {
  return try_submit(matrix, /*is_write=*/false, deadline_ns);
}

bool Frontend::cancel(Ticket ticket) {
  VPIM_CHECK(open_, "cancel on an unlinked device");
  SimClock& clock = vmm_.clock();
  clock.advance(vmm_.cost().ioctl_ns);
  // Cancellation only wins while the request is still staged (pre-
  // doorbell): the cancel flag is patched into the request block the
  // device has not read yet, and the backend completes it kCancelled
  // without executing. Past the doorbell the race is lost — the ticket
  // reaps its real completion, like io_uring's async-cancel.
  for (std::uint32_t idx : staged_) {
    SqSlot& slot = slots_[idx];
    if (!slot.async || slot.cancelled || slot.completed ||
        slot.ticket != ticket) {
      continue;
    }
    WireRequest req;
    std::memcpy(&req, slot.arena.request.data(), sizeof(req));
    req.flags |= kWireFlagCancelled;
    std::memcpy(slot.arena.request.data(), &req, sizeof(req));
    slot.cancelled = true;
    return true;
  }
  return false;
}

std::span<const Frontend::Completion> Frontend::poll_completions() {
  SimClock& clock = vmm_.clock();
  obs::RequestSpan span(tracer(), clock, obs::SpanKind::kCqDrain,
                        tenant_id());
  clock.advance(vmm_.cost().ioctl_ns);
  kick();
  cq_out_.swap(cq_);
  cq_.clear();
  span.set_entries(static_cast<std::uint32_t>(cq_out_.size()));
  return cq_out_;
}

std::uint64_t Frontend::memory_overhead_bytes() const {
  if (!arenas_ready_) return 0;
  std::uint64_t total = 0;
  for (const SqSlot& slot : slots_) {
    total += slot.arena.request.size() + slot.arena.matrix_meta.size() +
             slot.arena.entry_meta.size() + slot.arena.page_lists.size() +
             slot.arena.payload.size() + slot.arena.response.size();
  }
  for (const auto& c : caches_) total += c.buf.size();
  for (const auto& b : batches_) total += b.buf.size();
  return total;
}

}  // namespace vpim::core
