#include "vpim/frontend.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "upmem/layout.h"

namespace vpim::core {

namespace {
constexpr std::uint64_t kBatchRecordOverhead = sizeof(BatchRecordHeader);

void copy_name(char (&dst)[64], std::string_view name) {
  VPIM_CHECK(name.size() < sizeof(dst), "name too long for the wire format");
  std::memset(dst, 0, sizeof(dst));
  std::memcpy(dst, name.data(), name.size());
}

// Rethrows a non-OK device completion as a typed error the guest SDK can
// catch and inspect; the device itself never crashes on a bad request.
void throw_if_rejected(const WireResponse& resp, const char* what) {
  if (resp.status == 0) return;
  throw VpimStatusError(resp.status,
                        std::string("device rejected ") + what + ": " +
                            virtio::status_name(resp.status));
}
}  // namespace

Frontend::Frontend(vmm::Vmm& vmm, Backend& backend,
                   virtio::Virtqueue& transferq, virtio::Virtqueue& controlq,
                   virtio::DeviceState& state, const VpimConfig& config,
                   DeviceStats& stats, std::string tag, obs::Hub& obs)
    : vmm_(vmm),
      backend_(backend),
      transferq_(transferq),
      controlq_(controlq),
      state_(state),
      config_(config),
      stats_(stats),
      tag_(std::move(tag)),
      obs_(obs) {
  // Per-device op-latency distributions (the registry hands back stable
  // references, so the hot path is one array index + one observe()).
  for (std::size_t i = 0; i < kNumRankOps; ++i) {
    op_hist_[i] = &obs_.metrics.histogram(
        "vpim_op_ns",
        {{"device", tag_}, {"op", std::string(kRankOpNames[i])}});
  }
  if (config_.vhost_transitions) {
    // A dedicated kernel worker handles this device's queues; requests
    // from different devices never share a serializing loop.
    vhost_worker_.emplace(vmm_.clock(), vmm_.cost(),
                          /*parallel_handling=*/true);
  }
}

void Frontend::ensure_arenas() {
  if (arenas_ready_) return;
  guest::GuestMemory& mem = vmm_.memory();
  constexpr std::uint32_t kDpus = upmem::kDpuSlotsPerRank;

  arena_.request = mem.alloc(sizeof(WireRequest));
  arena_.matrix_meta = mem.alloc(sizeof(WireMatrixMeta));
  arena_.entry_meta = mem.alloc(kDpus * sizeof(WireEntryMeta));
  arena_.page_lists = mem.alloc(static_cast<std::uint64_t>(kDpus) *
                                upmem::kMramPages * 8);
  arena_.payload = mem.alloc(8 * kKiB);
  arena_.response = mem.alloc(sizeof(WireResponse));

  caches_.resize(kDpus);
  batches_.resize(kDpus);
  filling_.resize(kDpus);
  for (std::uint32_t d = 0; d < kDpus; ++d) {
    if (config_.prefetch_cache) caches_[d].buf = mem.alloc(cache_bytes());
    if (config_.request_batching) batches_[d].buf = mem.alloc(batch_bytes());
  }
  arenas_ready_ = true;
}

bool Frontend::open() {
  if (open_) return true;
  obs::RequestSpan span(tracer(), vmm_.clock(), obs::SpanKind::kControl,
                        tenant_id());
  vmm_.clock().advance(vmm_.cost().ioctl_ns);
  // Virtio initialization dance (Appendix A.1 / virtio 1.x 3.1): status
  // walk and feature negotiation (the PIM device offers no features).
  if (!state_.driver_ok()) {
    state_.write_status(virtio::kStatusAcknowledge);
    state_.write_status(virtio::kStatusAcknowledge |
                        virtio::kStatusDriver);
    state_.write_driver_features(0);
    state_.write_status(virtio::kStatusAcknowledge | virtio::kStatusDriver |
                        virtio::kStatusFeaturesOk);
    state_.write_status(virtio::kStatusAcknowledge | virtio::kStatusDriver |
                        virtio::kStatusFeaturesOk |
                        virtio::kStatusDriverOk);
  }
  ensure_arenas();

  WireRequest req;
  req.ci_op = static_cast<std::uint32_t>(CiOp::kBindRank);
  req.request_id = wire_request_id();
  std::memcpy(arena_.request.data(), &req, sizeof(req));
  const virtio::DescBuffer chain[] = {
      {vmm_.memory().gpa_of(arena_.request.data()), sizeof(WireRequest),
       false},
      {vmm_.memory().gpa_of(arena_.response.data()), sizeof(WireResponse),
       true},
  };
  roundtrip(controlq_, chain, /*record_wsteps=*/false);

  WireResponse resp;
  std::memcpy(&resp, arena_.response.data(), sizeof(resp));
  if (resp.status ==
      static_cast<std::int32_t>(virtio::PimStatus::kNoCapacity)) {
    return false;  // manager abandoned the allocation
  }
  throw_if_rejected(resp, "the bind request");
  config_space_ = resp.config;
  open_ = true;
  return true;
}

void Frontend::close() {
  if (!open_) return;
  obs::RequestSpan span(tracer(), vmm_.clock(), obs::SpanKind::kControl,
                        tenant_id());
  vmm_.clock().advance(vmm_.cost().ioctl_ns);
  // Teardown must never wedge: if the device died (DEVICE_FAULT, UNBOUND,
  // TIMEOUT), pending batched writes are lost with it, but the guest still
  // releases its device file and moves on.
  try {
    flush_batch();
  } catch (const VpimStatusError&) {
    for (auto& batch : batches_) batch.cursor = 0;
    batch_pending_ = 0;
  }
  invalidate_cache();

  WireRequest req;
  req.ci_op = static_cast<std::uint32_t>(CiOp::kReleaseRank);
  req.request_id = wire_request_id();
  std::memcpy(arena_.request.data(), &req, sizeof(req));
  const virtio::DescBuffer chain[] = {
      {vmm_.memory().gpa_of(arena_.request.data()), sizeof(WireRequest),
       false},
      {vmm_.memory().gpa_of(arena_.response.data()), sizeof(WireResponse),
       true},
  };
  try {
    roundtrip(controlq_, chain, /*record_wsteps=*/false);
    WireResponse resp;
    std::memcpy(&resp, arena_.response.data(), sizeof(resp));
    throw_if_rejected(resp, "the release request");
  } catch (const VpimStatusError&) {
    // Releasing an already-unbound or wedged device: local teardown still
    // completes; the manager's observer reclaims the rank either way.
  }
  open_ = false;
}

bool Frontend::migrate() {
  VPIM_CHECK(open_, "migration on an unlinked device");
  obs::RequestSpan span(tracer(), vmm_.clock(), obs::SpanKind::kControl,
                        tenant_id());
  vmm_.clock().advance(vmm_.cost().ioctl_ns);
  flush_batch();
  invalidate_cache();  // cached segments refer to the old rank

  WireRequest req;
  req.ci_op = static_cast<std::uint32_t>(CiOp::kMigrateRank);
  req.request_id = wire_request_id();
  std::memcpy(arena_.request.data(), &req, sizeof(req));
  const virtio::DescBuffer chain[] = {
      {vmm_.memory().gpa_of(arena_.request.data()), sizeof(WireRequest),
       false},
      {vmm_.memory().gpa_of(arena_.response.data()), sizeof(WireResponse),
       true},
  };
  roundtrip(controlq_, chain, /*record_wsteps=*/false);

  WireResponse resp;
  std::memcpy(&resp, arena_.response.data(), sizeof(resp));
  if (resp.status ==
      static_cast<std::int32_t>(virtio::PimStatus::kNoCapacity)) {
    return false;  // no free rank; still bound to the original one
  }
  throw_if_rejected(resp, "the migration request");
  config_space_ = resp.config;
  return true;
}

void Frontend::suspend() {
  VPIM_CHECK(open_, "suspend on an unlinked device");
  obs::RequestSpan span(tracer(), vmm_.clock(), obs::SpanKind::kControl,
                        tenant_id());
  vmm_.clock().advance(vmm_.cost().ioctl_ns);
  flush_batch();
  invalidate_cache();
  WireRequest req;
  req.ci_op = static_cast<std::uint32_t>(CiOp::kSuspendRank);
  req.request_id = wire_request_id();
  std::memcpy(arena_.request.data(), &req, sizeof(req));
  const virtio::DescBuffer chain[] = {
      {vmm_.memory().gpa_of(arena_.request.data()), sizeof(WireRequest),
       false},
      {vmm_.memory().gpa_of(arena_.response.data()), sizeof(WireResponse),
       true},
  };
  roundtrip(controlq_, chain, /*record_wsteps=*/false);
  WireResponse resp;
  std::memcpy(&resp, arena_.response.data(), sizeof(resp));
  throw_if_rejected(resp, "the suspend request");
  open_ = false;
}

bool Frontend::resume() {
  VPIM_CHECK(!open_, "resume on a device that is already linked");
  obs::RequestSpan span(tracer(), vmm_.clock(), obs::SpanKind::kControl,
                        tenant_id());
  vmm_.clock().advance(vmm_.cost().ioctl_ns);
  WireRequest req;
  req.ci_op = static_cast<std::uint32_t>(CiOp::kResumeRank);
  req.request_id = wire_request_id();
  std::memcpy(arena_.request.data(), &req, sizeof(req));
  const virtio::DescBuffer chain[] = {
      {vmm_.memory().gpa_of(arena_.request.data()), sizeof(WireRequest),
       false},
      {vmm_.memory().gpa_of(arena_.response.data()), sizeof(WireResponse),
       true},
  };
  roundtrip(controlq_, chain, /*record_wsteps=*/false);
  WireResponse resp;
  std::memcpy(&resp, arena_.response.data(), sizeof(resp));
  if (resp.status ==
      static_cast<std::int32_t>(virtio::PimStatus::kNoCapacity)) {
    return false;  // stays parked host-side until capacity frees up
  }
  throw_if_rejected(resp, "the resume request");
  config_space_ = resp.config;
  open_ = true;
  return true;
}

std::uint32_t Frontend::nr_dpus() const {
  VPIM_CHECK(open_, "device not linked to a rank");
  return config_space_.nr_dpus;
}

virtio::PimConfigSpace Frontend::config_space() const {
  VPIM_CHECK(open_, "device not linked to a rank");
  return config_space_;
}

// ------------------------------------------------------------- rank ops

void Frontend::write_to_rank(const driver::TransferMatrix& matrix) {
  VPIM_CHECK(open_, "write-to-rank on an unlinked device");
  VPIM_CHECK(matrix.direction == driver::XferDirection::kToRank,
             "write_to_rank called with a read matrix");
  check_dpus(matrix);
  SimClock& clock = vmm_.clock();
  const SimNs t0 = clock.now();
  obs::RequestSpan span(tracer(), clock, obs::SpanKind::kWrite, tenant_id());
  span.set_bytes(matrix.total_bytes());
  span.set_entries(static_cast<std::uint32_t>(matrix.entries.size()));
  clock.advance(vmm_.cost().ioctl_ns);
  // Any write makes cached MRAM contents stale.
  invalidate_cache();
  if (config_.request_batching && try_batch(matrix)) {
    stats_.ops.add(RankOp::kWriteToRank, clock.now() - t0);
    observe_op(RankOp::kWriteToRank, clock.now() - t0);
    span.set_kind(obs::SpanKind::kWriteBatched);
    return;
  }
  flush_batch();
  send_rank_op(matrix, /*is_write=*/true, /*flags=*/0);
  stats_.ops.add(RankOp::kWriteToRank, clock.now() - t0);
  observe_op(RankOp::kWriteToRank, clock.now() - t0);
}

void Frontend::read_from_rank(const driver::TransferMatrix& matrix) {
  VPIM_CHECK(open_, "read-from-rank on an unlinked device");
  VPIM_CHECK(matrix.direction == driver::XferDirection::kFromRank,
             "read_from_rank called with a write matrix");
  check_dpus(matrix);
  SimClock& clock = vmm_.clock();
  const CostModel& cost = vmm_.cost();
  const SimNs t0 = clock.now();
  obs::RequestSpan span(tracer(), clock, obs::SpanKind::kRead, tenant_id());
  span.set_bytes(matrix.total_bytes());
  span.set_entries(static_cast<std::uint32_t>(matrix.entries.size()));
  clock.advance(cost.ioctl_ns);
  flush_batch();  // non-write request; also required for coherence

  const bool cacheable =
      config_.prefetch_cache &&
      std::all_of(matrix.entries.begin(), matrix.entries.end(),
                  [&](const driver::XferEntry& e) {
                    return e.size <= cache_bytes();
                  });
  if (!cacheable) {
    send_rank_op(matrix, /*is_write=*/false, /*flags=*/0);
    stats_.ops.add(RankOp::kReadFromRank, clock.now() - t0);
    observe_op(RankOp::kReadFromRank, clock.now() - t0);
    return;
  }

  // Classify each entry against its DPU's cache segment.
  auto in_cache = [&](const driver::XferEntry& e) {
    const DpuCache& c = caches_[e.dpu];
    return c.valid && e.mram_offset >= c.base &&
           e.mram_offset + e.size <= c.base + c.len;
  };
  driver::TransferMatrix& fill = fill_scratch_;
  fill.direction = driver::XferDirection::kFromRank;
  fill.entries.clear();
  std::fill(filling_.begin(), filling_.end(), std::uint8_t{0});
  for (const driver::XferEntry& e : matrix.entries) {
    if (in_cache(e)) {
      ++stats_.cache_hits;
      continue;
    }
    ++stats_.cache_misses;
    if (filling_[e.dpu]) continue;  // one fill per DPU per request
    filling_[e.dpu] = 1;
    DpuCache& c = caches_[e.dpu];
    const std::uint64_t len =
        std::min<std::uint64_t>(cache_bytes(),
                                upmem::kMramSize - e.mram_offset);
    fill.entries.push_back({e.dpu, e.mram_offset, c.buf.data(), len});
  }
  if (!fill.entries.empty()) {
    obs::ScopedSpan fill_span(tracer(), clock, obs::SpanKind::kReadFill);
    fill_span.set_bytes(fill.total_bytes());
    fill_span.set_entries(static_cast<std::uint32_t>(fill.entries.size()));
    send_rank_op(fill, /*is_write=*/false, /*flags=*/0);
    ++stats_.cache_fills;
    for (const driver::XferEntry& f : fill.entries) {
      caches_[f.dpu].valid = true;
      caches_[f.dpu].base = f.mram_offset;
      caches_[f.dpu].len = f.size;
    }
  }
  // Serve every entry from the cache. Ranges that still miss (e.g. two
  // disjoint ranges on one DPU in one call) are collected into a single
  // direct read, so the residue costs one doorbell instead of one
  // notify/IRQ round trip per entry.
  driver::TransferMatrix& direct = direct_scratch_;
  direct.direction = driver::XferDirection::kFromRank;
  direct.entries.clear();
  for (const driver::XferEntry& e : matrix.entries) {
    if (!in_cache(e)) {
      direct.entries.push_back(e);
      continue;
    }
    const DpuCache& c = caches_[e.dpu];
    std::memcpy(e.host, c.buf.data() + (e.mram_offset - c.base), e.size);
    clock.advance(cost.cache_hit_fixed_ns +
                  CostModel::bytes_time(e.size, cost.guest_memcpy_gbps));
  }
  if (!direct.entries.empty()) {
    send_rank_op(direct, /*is_write=*/false, /*flags=*/0);
  }
  stats_.ops.add(RankOp::kReadFromRank, clock.now() - t0);
  observe_op(RankOp::kReadFromRank, clock.now() - t0);
  span.set_kind(obs::SpanKind::kReadCached);
}

void Frontend::check_dpus(const driver::TransferMatrix& matrix) const {
  // Reject out-of-range DPU indices at the device-file boundary, like the
  // native driver's ioctl would. Catching this early keeps a bad entry
  // from being absorbed into the batch buffer, where the rejection would
  // otherwise surface later — attributed to an unrelated flush — and
  // discard the other DPUs' batched writes with it.
  for (const driver::XferEntry& e : matrix.entries) {
    VPIM_CHECK(e.dpu < config_space_.nr_dpus,
               "transfer entry targets a DPU beyond the bound rank");
  }
}

bool Frontend::try_batch(const driver::TransferMatrix& matrix) {
  // Batch only small writes that fit their DPU buffer's remaining space.
  const std::uint64_t small_max =
      std::uint64_t{config_.batch_entry_max_pages} * guest::kGuestPageSize;
  for (const driver::XferEntry& e : matrix.entries) {
    VPIM_CHECK(e.dpu < batches_.size(), "DPU index out of range");
    const DpuBatch& b = batches_[e.dpu];
    if (e.size > small_max ||
        b.cursor + e.size + kBatchRecordOverhead > batch_bytes()) {
      return false;
    }
  }
  SimClock& clock = vmm_.clock();
  const CostModel& cost = vmm_.cost();
  for (const driver::XferEntry& e : matrix.entries) {
    DpuBatch& b = batches_[e.dpu];
    BatchRecordHeader hdr{e.mram_offset, e.size};
    std::memcpy(b.buf.data() + b.cursor, &hdr, sizeof(hdr));
    std::memcpy(b.buf.data() + b.cursor + sizeof(hdr), e.host, e.size);
    b.cursor += sizeof(hdr) + e.size;
    clock.advance(CostModel::bytes_time(e.size, cost.guest_memcpy_gbps) +
                  cost.cache_hit_fixed_ns);
    ++stats_.batched_writes;
    ++batch_pending_;
  }
  // Flush proactively once any buffer is nearly full.
  for (const driver::XferEntry& e : matrix.entries) {
    if (batches_[e.dpu].cursor + 4 * kKiB > batch_bytes()) {
      flush_batch();
      break;
    }
  }
  return true;
}

void Frontend::flush_batch() {
  if (batch_pending_ == 0) return;
  obs::ScopedSpan span(tracer(), vmm_.clock(), obs::SpanKind::kWriteFlush);
  driver::TransferMatrix& matrix = flush_scratch_;
  matrix.direction = driver::XferDirection::kToRank;
  matrix.entries.clear();
  for (std::uint32_t d = 0; d < batches_.size(); ++d) {
    if (batches_[d].cursor == 0) continue;
    matrix.entries.push_back(
        {d, 0, batches_[d].buf.data(), batches_[d].cursor});
  }
  span.set_bytes(matrix.total_bytes());
  span.set_entries(static_cast<std::uint32_t>(matrix.entries.size()));
  send_rank_op(matrix, /*is_write=*/true, kWireFlagBatched);
  for (auto& b : batches_) b.cursor = 0;
  batch_pending_ = 0;
  ++stats_.batch_flushes;
}

void Frontend::invalidate_cache() {
  for (auto& c : caches_) c.valid = false;
}

void Frontend::send_rank_op(const driver::TransferMatrix& matrix,
                            bool is_write, std::uint32_t flags) {
  SimClock& clock = vmm_.clock();
  const CostModel& cost = vmm_.cost();

  // -- Page management: user pages -> kernel page lists (Fig 13 "Page").
  const SimNs page_start = clock.now();
  std::uint64_t pages = 0;
  for (const driver::XferEntry& e : matrix.entries) {
    const std::uint64_t first_off =
        vmm_.memory().gpa_of(e.host) % guest::kGuestPageSize;
    pages += (first_off + e.size + guest::kGuestPageSize - 1) /
             guest::kGuestPageSize;
  }
  clock.advance(cost.page_mgmt_ns_per_page * pages);
  if (is_write) {
    stats_.wsteps.add(WrankStep::kPageMgmt, clock.now() - page_start);
  }
  if (obs::Tracer* t = tracer()) {
    t->record(obs::SpanKind::kPageMgmt, page_start,
              clock.now() - page_start, 0,
              static_cast<std::uint32_t>(pages));
  }

  // -- Serialization (Fig 13 "Ser").
  const SimNs ser_start = clock.now();
  serialize_matrix(matrix, vmm_.memory(), arena_,
                   static_cast<std::uint32_t>(
                       is_write ? virtio::PimRequestType::kWriteToRank
                                : virtio::PimRequestType::kReadFromRank),
                   ser_scratch_);
  const SerializeResult& serialized = ser_scratch_;
  // Patch the flags + causal request id into the serialized request block.
  {
    WireRequest req;
    std::memcpy(&req, arena_.request.data(), sizeof(req));
    req.flags = flags;
    req.request_id = wire_request_id();
    std::memcpy(arena_.request.data(), &req, sizeof(req));
  }
  clock.advance(cost.frontend_request_fixed_ns +
                cost.serialize_ns_per_page * serialized.nr_pages +
                cost.per_dpu_metadata_ns * matrix.entries.size());
  if (is_write) {
    stats_.wsteps.add(WrankStep::kSerialize, clock.now() - ser_start);
  }
  if (obs::Tracer* t = tracer()) {
    t->record(obs::SpanKind::kSerialize, ser_start, clock.now() - ser_start,
              matrix.total_bytes(),
              static_cast<std::uint32_t>(matrix.entries.size()));
  }

  roundtrip(transferq_, serialized.chain, is_write);

  WireResponse resp;
  std::memcpy(&resp, arena_.response.data(), sizeof(resp));
  throw_if_rejected(resp, is_write ? "a write-to-rank operation"
                                   : "a read-from-rank operation");
}

void Frontend::roundtrip(virtio::Virtqueue& queue,
                         std::span<const virtio::DescBuffer> chain,
                         bool record_wsteps) {
  SimClock& clock = vmm_.clock();
  const CostModel& cost = vmm_.cost();
  queue.submit(chain);

  // One span for the whole transport round trip: notify transition,
  // backend handling (which nests its own spans), completion IRQ, and any
  // completion polling. RAII also closes it if the poll deadline throws.
  obs::ScopedSpan span(tracer(), clock, obs::SpanKind::kVirtioRoundtrip);

  // Guest -> host transition, device handling, completion back into the
  // guest (Fig 13 "Int" is the transition cost). With vhost transitions
  // (§7 future work) the kick lands in a per-device kernel worker instead
  // of trapping out to the userspace VMM.
  const bool vhost = vhost_worker_.has_value();
  const SimNs notify_cost =
      vhost ? cost.vhost_notify_ns : cost.vmexit_notify_ns;
  const SimNs complete_cost =
      vhost ? cost.vhost_complete_ns : cost.irq_inject_ns;
  clock.advance(notify_cost);
  ++stats_.notifies;
  const bool is_transferq = &queue == &transferq_;
  vmm::EventLoop& loop = vhost ? *vhost_worker_ : vmm_.loop();
  loop.dispatch([&] {
    if (is_transferq) {
      backend_.handle_transferq();
    } else {
      backend_.handle_controlq();
    }
  });
  clock.advance(complete_cost);
  ++stats_.irqs;
  if (record_wsteps) {
    stats_.wsteps.add(WrankStep::kInterrupt, notify_cost + complete_cost);
  }

  // Bounded completion wait: the first poll is free (the dispatch above
  // is synchronous, so a healthy device has already completed). If the
  // completion never arrives — injected lost completion, wedged device —
  // the guest re-polls every poll_interval_ns of virtual time and abandons
  // the request with a typed TIMEOUT once poll_deadline_ns has elapsed.
  auto used = queue.poll_used();
  if (!used.has_value()) {
    const SimNs deadline = clock.now() + config_.poll_deadline_ns;
    while (!used.has_value() && clock.now() < deadline) {
      clock.advance(config_.poll_interval_ns);
      used = queue.poll_used();
    }
  }
  if (!used.has_value()) {
    ++stats_.poll_timeouts;
    throw VpimStatusError(virtio::PimStatus::kTimeout,
                          "device did not complete the request within the "
                          "poll deadline");
  }
}

// --------------------------------------------------------------- CI ops

WireResponse Frontend::ci_roundtrip(const WireRequest& req,
                                    std::span<std::uint8_t> payload,
                                    bool payload_writable) {
  WireRequest stamped = req;
  stamped.request_id = wire_request_id();
  std::memcpy(arena_.request.data(), &stamped, sizeof(stamped));
  // A CI chain is at most [request, payload, response]; build it in a
  // fixed array instead of a heap vector.
  std::array<virtio::DescBuffer, 3> chain;
  std::size_t n = 0;
  chain[n++] = {vmm_.memory().gpa_of(arena_.request.data()),
                sizeof(WireRequest), false};
  if (!payload.empty()) {
    chain[n++] = {vmm_.memory().gpa_of(payload.data()),
                  static_cast<std::uint32_t>(payload.size()),
                  payload_writable};
  }
  chain[n++] = {vmm_.memory().gpa_of(arena_.response.data()),
                sizeof(WireResponse), true};
  roundtrip(transferq_, std::span(chain.data(), n),
            /*record_wsteps=*/false);

  WireResponse resp;
  std::memcpy(&resp, arena_.response.data(), sizeof(resp));
  throw_if_rejected(resp, "the CI operation");
  return resp;
}

void Frontend::ci_load(std::string_view kernel_name) {
  VPIM_CHECK(open_, "CI operation on an unlinked device");
  SimClock& clock = vmm_.clock();
  const SimNs t0 = clock.now();
  obs::RequestSpan span(tracer(), clock, obs::SpanKind::kCiLoad,
                        tenant_id());
  clock.advance(vmm_.cost().ioctl_ns);
  flush_batch();
  WireRequest req;
  req.type = static_cast<std::uint32_t>(virtio::PimRequestType::kCiWrite);
  req.ci_op = static_cast<std::uint32_t>(CiOp::kLoad);
  copy_name(req.name, kernel_name);
  ci_roundtrip(req, {}, false);
  stats_.ops.add(RankOp::kCi, clock.now() - t0);
  observe_op(RankOp::kCi, clock.now() - t0);
}

void Frontend::ci_launch(std::uint64_t dpu_mask,
                         std::optional<std::uint32_t> nr_tasklets) {
  VPIM_CHECK(open_, "CI operation on an unlinked device");
  SimClock& clock = vmm_.clock();
  const SimNs t0 = clock.now();
  obs::RequestSpan span(tracer(), clock, obs::SpanKind::kCiLaunch,
                        tenant_id());
  clock.advance(vmm_.cost().ioctl_ns);
  flush_batch();
  invalidate_cache();  // DPU programs may rewrite MRAM
  WireRequest req;
  req.type = static_cast<std::uint32_t>(virtio::PimRequestType::kCiWrite);
  req.ci_op = static_cast<std::uint32_t>(CiOp::kLaunch);
  req.arg0 = dpu_mask;
  req.arg1 = nr_tasklets ? *nr_tasklets + 1 : 0;
  ci_roundtrip(req, {}, false);
  stats_.ops.add(RankOp::kCi, clock.now() - t0);
  observe_op(RankOp::kCi, clock.now() - t0);
}

std::uint64_t Frontend::ci_running_mask() {
  VPIM_CHECK(open_, "CI operation on an unlinked device");
  SimClock& clock = vmm_.clock();
  const SimNs t0 = clock.now();
  obs::RequestSpan span(tracer(), clock, obs::SpanKind::kCiStatus,
                        tenant_id());
  clock.advance(vmm_.cost().ioctl_ns);
  flush_batch();
  WireRequest req;
  req.type = static_cast<std::uint32_t>(virtio::PimRequestType::kCiRead);
  req.ci_op = static_cast<std::uint32_t>(CiOp::kReadStatus);
  const WireResponse resp = ci_roundtrip(req, {}, false);
  stats_.ops.add(RankOp::kCi, clock.now() - t0);
  observe_op(RankOp::kCi, clock.now() - t0);
  return resp.value;
}

void Frontend::ci_copy_to_symbol(std::uint32_t dpu, std::string_view symbol,
                                 std::uint32_t offset,
                                 std::span<const std::uint8_t> data) {
  VPIM_CHECK(open_, "CI operation on an unlinked device");
  VPIM_CHECK(data.size() <= arena_.payload.size(),
             "symbol payload exceeds the staging buffer");
  SimClock& clock = vmm_.clock();
  const SimNs t0 = clock.now();
  obs::RequestSpan span(tracer(), clock, obs::SpanKind::kCiSymbol,
                        tenant_id());
  span.set_bytes(data.size());
  clock.advance(vmm_.cost().ioctl_ns);
  flush_batch();
  std::memcpy(arena_.payload.data(), data.data(), data.size());
  WireRequest req;
  req.type = static_cast<std::uint32_t>(virtio::PimRequestType::kCiWrite);
  req.ci_op = static_cast<std::uint32_t>(CiOp::kCopyToSymbol);
  req.dpu = dpu;
  req.symbol_offset = offset;
  copy_name(req.name, symbol);
  ci_roundtrip(req, arena_.payload.first(data.size()), false);
  stats_.ops.add(RankOp::kCi, clock.now() - t0);
  observe_op(RankOp::kCi, clock.now() - t0);
}

void Frontend::ci_copy_from_symbol(std::uint32_t dpu,
                                   std::string_view symbol,
                                   std::uint32_t offset,
                                   std::span<std::uint8_t> out) {
  VPIM_CHECK(open_, "CI operation on an unlinked device");
  VPIM_CHECK(out.size() <= arena_.payload.size(),
             "symbol payload exceeds the staging buffer");
  SimClock& clock = vmm_.clock();
  const SimNs t0 = clock.now();
  obs::RequestSpan span(tracer(), clock, obs::SpanKind::kCiSymbol,
                        tenant_id());
  span.set_bytes(out.size());
  clock.advance(vmm_.cost().ioctl_ns);
  flush_batch();
  WireRequest req;
  req.type = static_cast<std::uint32_t>(virtio::PimRequestType::kCiRead);
  req.ci_op = static_cast<std::uint32_t>(CiOp::kCopyFromSymbol);
  req.dpu = dpu;
  req.symbol_offset = offset;
  copy_name(req.name, symbol);
  ci_roundtrip(req, arena_.payload.first(out.size()), true);
  std::memcpy(out.data(), arena_.payload.data(), out.size());
  stats_.ops.add(RankOp::kCi, clock.now() - t0);
  observe_op(RankOp::kCi, clock.now() - t0);
}

void Frontend::ci_push_symbols(driver::XferDirection dir,
                               std::string_view symbol,
                               std::uint32_t offset,
                               std::span<std::uint8_t> packed,
                               std::uint32_t bytes_per_dpu) {
  VPIM_CHECK(open_, "CI operation on an unlinked device");
  VPIM_CHECK(bytes_per_dpu > 0 && packed.size() % bytes_per_dpu == 0,
             "packed symbol buffer must hold whole per-DPU values");
  SimClock& clock = vmm_.clock();
  const SimNs t0 = clock.now();
  obs::RequestSpan span(tracer(), clock, obs::SpanKind::kCiSymbol,
                        tenant_id());
  span.set_bytes(packed.size());
  span.set_entries(static_cast<std::uint32_t>(packed.size() / bytes_per_dpu));
  clock.advance(vmm_.cost().ioctl_ns);
  flush_batch();
  WireRequest req;
  req.type = static_cast<std::uint32_t>(
      dir == driver::XferDirection::kToRank
          ? virtio::PimRequestType::kCiWrite
          : virtio::PimRequestType::kCiRead);
  req.ci_op = static_cast<std::uint32_t>(
      dir == driver::XferDirection::kToRank ? CiOp::kCopyToSymbolAll
                                            : CiOp::kCopyFromSymbolAll);
  req.nr_entries =
      static_cast<std::uint32_t>(packed.size() / bytes_per_dpu);
  req.symbol_offset = offset;
  req.arg0 = bytes_per_dpu;
  copy_name(req.name, symbol);
  ci_roundtrip(req, packed,
               dir == driver::XferDirection::kFromRank);
  stats_.ops.add(RankOp::kCi, clock.now() - t0);
  observe_op(RankOp::kCi, clock.now() - t0);
}

std::uint64_t Frontend::memory_overhead_bytes() const {
  if (!arenas_ready_) return 0;
  std::uint64_t total = arena_.request.size() + arena_.matrix_meta.size() +
                        arena_.entry_meta.size() + arena_.page_lists.size() +
                        arena_.payload.size() + arena_.response.size();
  for (const auto& c : caches_) total += c.buf.size();
  for (const auto& b : batches_) total += b.buf.size();
  return total;
}

}  // namespace vpim::core
