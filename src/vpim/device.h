// One vUPMEM device: the virtqueue pair shared by the guest driver
// (frontend) and the Firecracker device model (backend), plus shared
// instrumentation.
#pragma once

#include <string>

#include "virtio/device_state.h"
#include "virtio/pim_spec.h"
#include "virtio/virtqueue.h"
#include "vpim/backend.h"
#include "vpim/frontend.h"

namespace vpim::core {

struct VupmemDevice {
  VupmemDevice(vmm::Vmm& vmm, driver::UpmemDriver& drv, Manager& manager,
               const VpimConfig& config, std::string tag)
      : transferq(virtio::kTransferQueueSize),
        controlq(virtio::kControlQueueSize),
        backend(vmm, drv, manager, config, transferq, controlq, state,
                stats, tag),
        frontend(vmm, backend, transferq, controlq, state, config, stats,
                 tag) {}

  virtio::Virtqueue transferq;
  virtio::Virtqueue controlq;
  // Status register + feature negotiation; the PIM device offers no
  // feature bits (Appendix A.1).
  virtio::DeviceState state{0};
  DeviceStats stats;
  Backend backend;
  Frontend frontend;
};

}  // namespace vpim::core
