// One vUPMEM device: the virtqueue pair shared by the guest driver
// (frontend) and the Firecracker device model (backend), plus shared
// instrumentation.
#pragma once

#include <string>

#include "common/obs/obs.h"
#include "virtio/device_state.h"
#include "virtio/pim_spec.h"
#include "virtio/virtqueue.h"
#include "vpim/backend.h"
#include "vpim/frontend.h"

namespace vpim::core {

struct VupmemDevice {
  VupmemDevice(vmm::Vmm& vmm, driver::UpmemDriver& drv, Manager& manager,
               const VpimConfig& config, std::string tag, obs::Hub& obs)
      : transferq(virtio::kTransferQueueSize),
        controlq(virtio::kControlQueueSize),
        backend(vmm, drv, manager, config, transferq, controlq, state,
                stats, tag, obs),
        frontend(vmm, backend, transferq, controlq, state, config, stats,
                 tag, obs),
        stats_collector(obs.metrics.add_collector(
            [this, tag](obs::Collection& out) { collect(out, tag); })) {}

  virtio::Virtqueue transferq;
  virtio::Virtqueue controlq;
  // Status register + feature negotiation; the PIM device offers no
  // feature bits (Appendix A.1).
  virtio::DeviceState state{0};
  DeviceStats stats;
  Backend backend;
  Frontend frontend;
  // Publishes the live DeviceStats into the metrics registry on every
  // export; unregisters itself when the device is destroyed.
  obs::MetricsRegistry::CollectorHandle stats_collector;

 private:
  void collect(obs::Collection& out, const std::string& tag) const {
    const obs::Labels dev = {{"device", tag}};
    out.counter("vpim_device_notifies_total", dev, stats.notifies);
    out.counter("vpim_device_irqs_total", dev, stats.irqs);
    out.counter("vpim_device_doorbells_total", dev, stats.doorbells);
    out.counter("vpim_device_completion_irqs_total", dev,
                stats.completion_irqs);
    out.counter("vpim_device_coalesced_notifies_total", dev,
                stats.coalesced_notifies);
    out.counter("vpim_device_cache_hits_total", dev, stats.cache_hits);
    out.counter("vpim_device_cache_misses_total", dev, stats.cache_misses);
    out.counter("vpim_device_cache_fills_total", dev, stats.cache_fills);
    out.counter("vpim_device_batched_writes_total", dev,
                stats.batched_writes);
    out.counter("vpim_device_batch_flushes_total", dev,
                stats.batch_flushes);
    out.counter("vpim_device_emulated_binds_total", dev,
                stats.emulated_binds);
    out.counter("vpim_device_request_errors_total", dev,
                stats.request_errors);
    out.counter("vpim_device_fault_retries_total", dev,
                stats.fault_retries);
    out.counter("vpim_device_fault_migrations_total", dev,
                stats.fault_migrations);
    out.counter("vpim_device_fault_failures_total", dev,
                stats.fault_failures);
    out.counter("vpim_device_dropped_completions_total", dev,
                stats.dropped_completions);
    out.counter("vpim_device_poll_timeouts_total", dev,
                stats.poll_timeouts);
    out.counter("vpim_device_admission_rejects_total", dev,
                stats.admission_rejects);
    out.counter("vpim_device_would_blocks_total", dev, stats.would_blocks);
    out.counter("vpim_device_cancelled_total", dev, stats.cancelled);
    out.counter("vpim_device_deadline_shed_total", dev, stats.deadline_shed);
    out.counter("vpim_device_lost_batched_writes_total", dev,
                stats.lost_batched_writes);
    for (std::size_t i = 0; i < kNumRankOps; ++i) {
      const auto op = static_cast<RankOp>(i);
      obs::Labels labels = dev;
      labels.emplace_back("op", std::string(kRankOpNames[i]));
      out.counter("vpim_device_op_time_ns_total", labels, stats.ops.time(op));
      out.counter("vpim_device_ops_total", labels, stats.ops.count(op));
    }
  }
};

}  // namespace vpim::core
