// vUPMEM frontend: the virtio driver in the guest kernel (§4.1).
//
// Exposes the safe-mode device file the guest SDK talks to, and implements
// the two frontend optimizations that dominate vPIM's performance story:
//
//  - Prefetch cache: 16 pages per DPU. Small reads are served from the
//    cache; a miss fetches a cache-sized segment from the backend in one
//    message. Invalidated by write-to-rank, DPU launches, and rank release.
//  - Request batching: a 64-page-per-DPU buffer absorbs small writes as
//    {offset,size,data} records; the batch is flushed as a single message
//    when a buffer fills or any non-write request arrives.
//
// Every public operation charges the guest syscall cost; messages to the
// backend pay the VMEXIT/IRQ transition costs that the paper identifies as
// the primary virtualization overhead.
//
// Error semantics: every request completes with a WireResponse status
// (virtio::PimStatus). Capacity failures (bind/migrate/resume) surface as
// `false` returns; any other non-OK completion is rethrown as
// VpimStatusError carrying the device's status code.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/obs/obs.h"
#include "driver/xfer.h"
#include "virtio/device_state.h"
#include "virtio/pim_spec.h"
#include "virtio/virtqueue.h"
#include "vmm/vmm.h"
#include "vpim/backend.h"
#include "vpim/config.h"
#include "vpim/device_stats.h"
#include "vpim/wire.h"

namespace vpim::core {

class Frontend {
 public:
  Frontend(vmm::Vmm& vmm, Backend& backend, virtio::Virtqueue& transferq,
           virtio::Virtqueue& controlq, virtio::DeviceState& state,
           const VpimConfig& config, DeviceStats& stats, std::string tag,
           obs::Hub& obs);

  // Links the device to a physical rank through the manager (controlq).
  // Returns false if the manager abandoned the request.
  bool open();
  // Flushes, invalidates, and releases the rank.
  void close();
  // Dynamic rank reallocation (§3.3): asks the backend to move the
  // device's entire state to a freshly allocated rank. Transparent to the
  // application; returns false if no rank was available.
  bool migrate();
  // §7 pause/resume: parks the device's state host-side and releases the
  // rank (suspend), then later re-binds and restores it (resume). The
  // application sees identical device contents across the gap.
  void suspend();
  bool resume();
  bool is_open() const { return open_; }

  std::uint32_t nr_dpus() const;
  virtio::PimConfigSpace config_space() const;

  // ---- safe-mode device-file API (called by the guest SDK) -------------
  void write_to_rank(const driver::TransferMatrix& matrix);
  void read_from_rank(const driver::TransferMatrix& matrix);
  void ci_load(std::string_view kernel_name);
  void ci_launch(std::uint64_t dpu_mask,
                 std::optional<std::uint32_t> nr_tasklets);
  std::uint64_t ci_running_mask();
  void ci_copy_to_symbol(std::uint32_t dpu, std::string_view symbol,
                         std::uint32_t offset,
                         std::span<const std::uint8_t> data);
  void ci_copy_from_symbol(std::uint32_t dpu, std::string_view symbol,
                           std::uint32_t offset,
                           std::span<std::uint8_t> out);
  // Parallel per-DPU symbol transfer: one message covers the whole rank.
  // `packed` (nr_dpus x bytes_per_dpu, in guest RAM) is referenced by the
  // request zero-copy.
  void ci_push_symbols(driver::XferDirection dir, std::string_view symbol,
                       std::uint32_t offset, std::span<std::uint8_t> packed,
                       std::uint32_t bytes_per_dpu);

  // Frontend memory footprint (§4.1 "Memory Overhead").
  std::uint64_t memory_overhead_bytes() const;

  const DeviceStats& stats() const { return stats_; }
  const VpimConfig& config() const { return config_; }

  // Spans record into the Host-level hub (Host::attach_tracer); every
  // device-file operation opens a request-scoped root span, and internal
  // messages (batch flushes, prefetch fills) nest under it.

 private:
  struct DpuCache {
    bool valid = false;
    std::uint64_t base = 0;  // MRAM offset of the cached segment
    std::uint64_t len = 0;
    std::span<std::uint8_t> buf;
  };
  struct DpuBatch {
    std::uint64_t cursor = 0;  // bytes used
    std::span<std::uint8_t> buf;
  };

  void ensure_arenas();
  void check_dpus(const driver::TransferMatrix& matrix) const;
  void send_rank_op(const driver::TransferMatrix& matrix, bool is_write,
                    std::uint32_t flags);
  void roundtrip(virtio::Virtqueue& queue,
                 std::span<const virtio::DescBuffer> chain,
                 bool record_wsteps);
  WireResponse ci_roundtrip(const WireRequest& req,
                            std::span<std::uint8_t> payload,
                            bool payload_writable);
  bool try_batch(const driver::TransferMatrix& matrix);
  void flush_batch();
  void invalidate_cache();
  std::uint64_t cache_bytes() const {
    return static_cast<std::uint64_t>(config_.prefetch_cache_pages) *
           guest::kGuestPageSize;
  }
  std::uint64_t batch_bytes() const {
    return static_cast<std::uint64_t>(config_.batch_buffer_pages) *
           guest::kGuestPageSize;
  }

  obs::Tracer* tracer() const { return obs_.tracer; }
  // Interned tenant tag for span attribution; re-interned when the
  // attached tracer changes (indices are per-tracer).
  std::uint32_t tenant_id() {
    obs::Tracer* t = obs_.tracer;
    if (t == nullptr) return obs::kNoTenant;
    if (t != tenant_tracer_) {
      tenant_ = t->intern(tag_);
      tenant_tracer_ = t;
    }
    return tenant_;
  }
  // Causal id stamped into outgoing WireRequests (0 when untraced).
  std::uint32_t wire_request_id() const {
    return obs_.tracer != nullptr
               ? static_cast<std::uint32_t>(obs_.tracer->current_request())
               : 0;
  }
  void observe_op(RankOp op, SimNs duration) {
    op_hist_[static_cast<std::size_t>(op)]->observe(duration);
  }

  vmm::Vmm& vmm_;
  Backend& backend_;
  virtio::Virtqueue& transferq_;
  virtio::Virtqueue& controlq_;
  virtio::DeviceState& state_;
  VpimConfig config_;
  DeviceStats& stats_;
  std::string tag_;
  obs::Hub& obs_;
  obs::Tracer* tenant_tracer_ = nullptr;
  std::uint32_t tenant_ = obs::kNoTenant;
  // Per-category op-latency histograms (virtual time, log2 buckets),
  // registered once per device; indexed by RankOp.
  std::array<obs::Histogram*, kNumRankOps> op_hist_{};

  // vhost mode: per-device kernel worker standing in for the VMM loop.
  std::optional<vmm::EventLoop> vhost_worker_;

  bool open_ = false;
  bool arenas_ready_ = false;
  virtio::PimConfigSpace config_space_{};
  WireArena arena_;
  std::vector<DpuCache> caches_;
  std::vector<DpuBatch> batches_;
  std::uint64_t batch_pending_ = 0;  // total records pending
  // Pooled request-path working set, reused across device-file calls so
  // the steady-state hot path performs no heap allocation: serialization
  // output and the transfer matrices assembled for prefetch fills,
  // residual direct reads, and batch flushes.
  SerializeResult ser_scratch_;
  driver::TransferMatrix fill_scratch_;
  driver::TransferMatrix direct_scratch_;
  driver::TransferMatrix flush_scratch_;
  std::vector<std::uint8_t> filling_;  // per-DPU "fill queued" flags
};

}  // namespace vpim::core
