// vUPMEM frontend: the virtio driver in the guest kernel (§4.1).
//
// Exposes the safe-mode device file the guest SDK talks to, and implements
// the two frontend optimizations that dominate vPIM's performance story:
//
//  - Prefetch cache: 16 pages per DPU. Small reads are served from the
//    cache; a miss fetches a cache-sized segment from the backend in one
//    message. Invalidated by write-to-rank, DPU launches, and rank release.
//  - Request batching: a 64-page-per-DPU buffer absorbs small writes as
//    {offset,size,data} records; the batch is flushed as a single message
//    when a buffer fills or any non-write request arrives.
//
// Every public operation charges the guest syscall cost; messages to the
// backend pay the VMEXIT/IRQ transition costs that the paper identifies as
// the primary virtualization overhead.
//
// ISSUE 7 layers an io_uring-style submission/completion queue over the
// transferq: up to VpimConfig::queue_depth requests are staged (each in
// its own wire-arena slot) before one doorbell kicks the backend, which
// drains the whole batch behind a single completion interrupt. The
// blocking device-file API is submit()+wait() at any depth; the async API
// (submit_write/submit_read/poll_completions) exposes the pipeline. At
// depth 1 every observable — stats, spans, metrics, virtual time, guest
// GPA layout — is bit-identical to the classic synchronous device.
//
// Error semantics: every request completes with a WireResponse status
// (virtio::PimStatus). Capacity failures (bind/migrate/resume) surface as
// `false` returns; any other non-OK completion is rethrown as
// VpimStatusError carrying the device's status code.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/obs/obs.h"
#include "driver/xfer.h"
#include "virtio/device_state.h"
#include "virtio/pim_spec.h"
#include "virtio/virtqueue.h"
#include "vmm/vmm.h"
#include "vpim/backend.h"
#include "vpim/config.h"
#include "vpim/device_stats.h"
#include "vpim/wire.h"

namespace vpim::core {

class Frontend {
 public:
  Frontend(vmm::Vmm& vmm, Backend& backend, virtio::Virtqueue& transferq,
           virtio::Virtqueue& controlq, virtio::DeviceState& state,
           const VpimConfig& config, DeviceStats& stats, std::string tag,
           obs::Hub& obs);

  // Links the device to a physical rank through the manager (controlq).
  // Returns false if the manager abandoned the request.
  bool open();
  // Flushes, invalidates, and releases the rank.
  void close();
  // Dynamic rank reallocation (§3.3): asks the backend to move the
  // device's entire state to a freshly allocated rank. Transparent to the
  // application; returns false if no rank was available.
  bool migrate();
  // §7 pause/resume: parks the device's state host-side and releases the
  // rank (suspend), then later re-binds and restores it (resume). The
  // application sees identical device contents across the gap.
  void suspend();
  bool resume();
  bool is_open() const { return open_; }

  std::uint32_t nr_dpus() const;
  virtio::PimConfigSpace config_space() const;

  // ---- safe-mode device-file API (called by the guest SDK) -------------
  void write_to_rank(const driver::TransferMatrix& matrix);
  void read_from_rank(const driver::TransferMatrix& matrix);
  void ci_load(std::string_view kernel_name);
  void ci_launch(std::uint64_t dpu_mask,
                 std::optional<std::uint32_t> nr_tasklets);
  std::uint64_t ci_running_mask();
  void ci_copy_to_symbol(std::uint32_t dpu, std::string_view symbol,
                         std::uint32_t offset,
                         std::span<const std::uint8_t> data);
  void ci_copy_from_symbol(std::uint32_t dpu, std::string_view symbol,
                           std::uint32_t offset,
                           std::span<std::uint8_t> out);
  // Parallel per-DPU symbol transfer: one message covers the whole rank.
  // `packed` (nr_dpus x bytes_per_dpu, in guest RAM) is referenced by the
  // request zero-copy.
  void ci_push_symbols(driver::XferDirection dir, std::string_view symbol,
                       std::uint32_t offset, std::span<std::uint8_t> packed,
                       std::uint32_t bytes_per_dpu);

  // ---- async SQ/CQ API (ISSUE 7) ---------------------------------------
  // Buffer-stability contract (io_uring semantics): the guest buffers a
  // submitted matrix references stay untouched and do not overlap any
  // other in-flight request's buffers until the completion is reaped.
  // Async reads bypass the prefetch cache; async writes still invalidate
  // it and flush the batch buffer, so sync and async ops interleave
  // coherently.
  using Ticket = std::uint64_t;
  struct Completion {
    Ticket ticket = 0;
    std::int32_t status = 0;  // virtio::PimStatus; 0 = OK
    std::uint64_t bytes = 0;  // bytes moved, on success
    bool is_write = false;
  };
  // Stages the request; the doorbell rings when queue_depth requests are
  // pending, a blocking op arrives, or poll_completions() is called.
  Ticket submit_write(const driver::TransferMatrix& matrix);
  Ticket submit_read(const driver::TransferMatrix& matrix);
  // Kicks anything staged and drains the completion queue. Per-request
  // failures surface as typed Completion::status values, never throws.
  // The returned span is valid until the next poll_completions() call.
  std::span<const Completion> poll_completions();
  std::uint32_t queue_depth() const { return depth_; }

  // ---- overload protection (ISSUE 8) -----------------------------------
  // Would-block submission: consults the manager's AdmissionController
  // (when one is installed) and the configured CQ capacity *before*
  // staging anything. On kOk the ticket is live; on kAdmissionReject /
  // kOverloaded no work was queued and no memory grew — the caller
  // retries later (open-loop load generators just count the shed).
  // `deadline_ns` is an absolute virtual-time deadline stamped into the
  // WireRequest (0 = use VpimConfig::default_deadline_ns, or none).
  struct SubmitResult {
    std::int32_t status = 0;  // virtio::PimStatus; 0 = admitted
    Ticket ticket = 0;        // valid only when status == 0
    bool ok() const { return status == 0; }
  };
  SubmitResult try_submit_write(const driver::TransferMatrix& matrix,
                                SimNs deadline_ns = 0);
  SubmitResult try_submit_read(const driver::TransferMatrix& matrix,
                               SimNs deadline_ns = 0);
  // Cancel-by-Ticket: patches the cancel flag into the still-staged
  // request block, so the backend completes it kCancelled without
  // executing it; the completion reaps through the CQ like any other.
  // Returns false once the request is past the doorbell (or unknown).
  bool cancel(Ticket ticket);
  // Batched writes declared lost when a posted flush failed (the lossy-
  // timeout edge): one typed record per absorbed write. Accumulates until
  // cleared.
  struct LostWrite {
    std::uint32_t dpu = 0;
    std::uint64_t mram_offset = 0;
    std::uint64_t size = 0;
    std::int32_t status = 0;  // virtio::PimStatus of the failed flush
  };
  std::span<const LostWrite> lost_writes() const { return lost_writes_; }
  void clear_lost_writes() { lost_writes_.clear(); }

  // Frontend memory footprint (§4.1 "Memory Overhead").
  std::uint64_t memory_overhead_bytes() const;

  const DeviceStats& stats() const { return stats_; }
  const VpimConfig& config() const { return config_; }

  // Spans record into the Host-level hub (Host::attach_tracer); every
  // device-file operation opens a request-scoped root span, and internal
  // messages (batch flushes, prefetch fills) nest under it.

 private:
  struct DpuCache {
    bool valid = false;
    std::uint64_t base = 0;  // MRAM offset of the cached segment
    std::uint64_t len = 0;
    std::span<std::uint8_t> buf;
  };
  struct DpuBatch {
    std::uint64_t cursor = 0;  // bytes used
    std::span<std::uint8_t> buf;
  };
  // One submission slot: a full wire arena plus the bookkeeping to match
  // its completion back out of the used ring. Slots recycle per batch
  // (index = position in staged_), so depth slots bound the pipeline.
  struct SqSlot {
    WireArena arena;
    SerializeResult ser;
    std::uint16_t head = 0;  // chain head, the used-ring match key
    bool is_write = false;
    bool async = false;
    bool is_flush = false;
    bool completed = false;
    bool timed_out = false;
    bool cancelled = false;  // cancel(Ticket) hit this slot while staged
    bool admitted = false;   // holds one unit of the admission budget
    Ticket ticket = 0;
    SimNs t0 = 0;  // staging time, for the per-slot lane span
    SimNs deadline = 0;  // absolute wire deadline; 0 = none
    SimNs admit_t0 = 0;  // admission time, for the queued-time histogram
    WireResponse resp{};
  };
  static constexpr std::uint32_t kMaxQueueDepth = 64;
  static constexpr std::uint64_t kCiPayloadBytes = 8 * kKiB;

  void ensure_arenas();
  void alloc_arena(WireArena& arena, guest::GuestMemory& mem);
  void check_dpus(const driver::TransferMatrix& matrix) const;
  void send_rank_op(const driver::TransferMatrix& matrix, bool is_write,
                    std::uint32_t flags);
  // Serializes into the next free slot and publishes the chain on the
  // available ring (no doorbell); returns the slot index.
  std::uint32_t stage_rank_op(const driver::TransferMatrix& matrix,
                              bool is_write, std::uint32_t flags, bool async,
                              Ticket ticket, bool is_flush,
                              SimNs deadline_ns = 0);
  // Shared body of submit_*/try_submit_*: admission bookkeeping rides in
  // `admitted`/`admit_t0`; the plain submit_* path passes none.
  Ticket submit_async(const driver::TransferMatrix& matrix, bool is_write,
                      SimNs deadline_ns, bool admitted, SimNs admit_t0);
  SubmitResult try_submit(const driver::TransferMatrix& matrix,
                          bool is_write, SimNs deadline_ns);
  // Parses the batch buffers into typed LostWrite records and retires
  // them; called when a flush completes with a non-OK status.
  void record_lost_writes(std::int32_t status);
  std::uint32_t stage_ci(const WireRequest& req,
                         std::span<std::uint8_t> payload,
                         bool payload_writable);
  // Rings the doorbell for everything staged: one notify, one backend
  // drain, one completion interrupt for the whole batch. Never throws —
  // failures land in the slots as typed statuses.
  void kick();
  // Kicks early when the slot ring or descriptor table cannot take one
  // more staged request.
  void reserve_slot();
  void reserve_ring(std::size_t descs);
  // Blocking-path completion: kicks if the slot is still in flight, then
  // surfaces any posted-flush failure and the slot's own status.
  WireResponse finish_sync(std::uint32_t idx, const char* what);
  void raise_flush_error();
  // Payload staging buffer of the slot the next stage_ci will use.
  std::span<std::uint8_t> ci_payload();
  void control_roundtrip(std::span<const virtio::DescBuffer> chain);
  WireResponse ci_roundtrip(const WireRequest& req,
                            std::span<std::uint8_t> payload,
                            bool payload_writable);
  bool try_batch(const driver::TransferMatrix& matrix);
  void flush_batch();
  void invalidate_cache();
  std::uint64_t cache_bytes() const {
    return static_cast<std::uint64_t>(config_.prefetch_cache_pages) *
           guest::kGuestPageSize;
  }
  std::uint64_t batch_bytes() const {
    return static_cast<std::uint64_t>(config_.batch_buffer_pages) *
           guest::kGuestPageSize;
  }

  obs::Tracer* tracer() const { return obs_.tracer; }
  // Interned tenant tag for span attribution; re-interned when the
  // attached tracer changes (indices are per-tracer).
  std::uint32_t tenant_id() {
    obs::Tracer* t = obs_.tracer;
    if (t == nullptr) return obs::kNoTenant;
    if (t != tenant_tracer_) {
      tenant_ = t->intern(tag_);
      tenant_tracer_ = t;
    }
    return tenant_;
  }
  // Causal id stamped into outgoing WireRequests (0 when untraced).
  std::uint32_t wire_request_id() const {
    return obs_.tracer != nullptr
               ? static_cast<std::uint32_t>(obs_.tracer->current_request())
               : 0;
  }
  void observe_op(RankOp op, SimNs duration) {
    op_hist_[static_cast<std::size_t>(op)]->observe(duration);
  }

  vmm::Vmm& vmm_;
  Backend& backend_;
  virtio::Virtqueue& transferq_;
  virtio::Virtqueue& controlq_;
  virtio::DeviceState& state_;
  VpimConfig config_;
  DeviceStats& stats_;
  std::string tag_;
  obs::Hub& obs_;
  obs::Tracer* tenant_tracer_ = nullptr;
  std::uint32_t tenant_ = obs::kNoTenant;
  // Per-category op-latency histograms (virtual time, log2 buckets),
  // registered once per device; indexed by RankOp.
  std::array<obs::Histogram*, kNumRankOps> op_hist_{};

  // vhost mode: per-device kernel worker standing in for the VMM loop.
  std::optional<vmm::EventLoop> vhost_worker_;

  bool open_ = false;
  bool arenas_ready_ = false;
  virtio::PimConfigSpace config_space_{};
  std::vector<DpuCache> caches_;
  std::vector<DpuBatch> batches_;
  std::uint64_t batch_pending_ = 0;  // total records pending
  // Pooled request-path working set, reused across device-file calls so
  // the steady-state hot path performs no heap allocation: the transfer
  // matrices assembled for prefetch fills, residual direct reads, and
  // batch flushes. (Serialization scratch lives in the SQ slots.)
  driver::TransferMatrix fill_scratch_;
  driver::TransferMatrix direct_scratch_;
  driver::TransferMatrix flush_scratch_;
  std::vector<std::uint8_t> filling_;  // per-DPU "fill queued" flags

  // ---- SQ/CQ state (ISSUE 7) -------------------------------------------
  std::uint32_t depth_ = 1;  // resolved queue depth
  std::vector<SqSlot> slots_;
  std::vector<std::uint32_t> staged_;  // slot indices since the last kick
  // A posted (depth > 1) batch flush keeps the batch buffers locked until
  // its completion arrives; a failed flush parks its status here and the
  // next blocking op rethrows it, so no write is silently dropped.
  bool batch_locked_ = false;
  std::int32_t pending_flush_status_ = 0;
  Ticket next_ticket_ = 0;
  std::vector<Completion> cq_;      // reaped, not yet handed out
  std::vector<Completion> cq_out_;  // last poll_completions result
  std::vector<LostWrite> lost_writes_;  // ISSUE 8: failed-flush records
  obs::Histogram* inflight_hist_ = nullptr;
  obs::Counter* doorbells_metric_ = nullptr;
  obs::Counter* requests_metric_ = nullptr;
};

}  // namespace vpim::core
