#include "vpim/manager_service.h"

namespace vpim::core {

ManagerService::ManagerService(Manager& manager, std::uint32_t threads,
                               std::chrono::milliseconds observe_period)
    : manager_(manager), observe_period_(observe_period) {
  workers_.reserve(threads);
  for (std::uint32_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  observer_ = std::thread([this] { observer_loop(); });
}

ManagerService::~ManagerService() { stop(); }

void ManagerService::stop() {
  {
    std::lock_guard lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  observer_.join();
}

std::future<std::optional<std::uint32_t>> ManagerService::request_rank(
    std::string owner) {
  std::packaged_task<std::optional<std::uint32_t>()> task(
      [this, owner = std::move(owner)] {
        return manager_.request_rank(owner);
      });
  auto fut = task.get_future();
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void ManagerService::worker_loop() {
  while (true) {
    std::packaged_task<std::optional<std::uint32_t>()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ManagerService::observer_loop() {
  while (true) {
    {
      std::unique_lock lock(mu_);
      if (cv_.wait_for(lock, observe_period_,
                       [this] { return stopping_; })) {
        return;
      }
    }
    manager_.observe();
  }
}

}  // namespace vpim::core
