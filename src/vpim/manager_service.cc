#include "vpim/manager_service.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace vpim::core {

ManagerService::ManagerService(Manager& manager, ManagerServiceConfig config)
    : manager_(manager), config_(config), paused_(config.start_paused) {
  workers_.reserve(config_.threads);
  for (std::uint32_t i = 0; i < config_.threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  observer_ = std::thread([this] { observer_loop(); });
}

ManagerService::ManagerService(Manager& manager, std::uint32_t threads,
                               std::chrono::milliseconds observe_period)
    : ManagerService(manager, ManagerServiceConfig{threads, observe_period,
                                                   /*start_paused=*/false}) {}

ManagerService::~ManagerService() { stop(); }

void ManagerService::start() {
  {
    std::lock_guard lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void ManagerService::stop() {
  std::deque<Pending> orphans;
  {
    std::lock_guard lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    paused_ = false;
    // Satellite bugfix: the old packaged_task queue was discarded here,
    // leaving every queued caller blocked on a future that would never
    // resolve. Drain instead and reject each entry with a typed
    // kShutdown outside the lock.
    orphans.swap(queue_);
    shutdown_rejections_ += orphans.size();
  }
  cv_.notify_all();
  observer_cv_.notify_all();
  for (auto& w : workers_) w.join();
  observer_.join();
  for (Pending& p : orphans) p.reject();
}

std::uint64_t ManagerService::shutdown_rejections() const {
  std::lock_guard lock(mu_);
  return shutdown_rejections_;
}

void ManagerService::enqueue(std::int32_t priority, std::function<void()> run,
                             std::function<void()> reject) {
  bool rejected = false;
  {
    std::lock_guard lock(mu_);
    if (stopping_) {
      ++shutdown_rejections_;
      rejected = true;
    } else {
      Pending p{priority, next_seq_++, std::move(run), std::move(reject)};
      // Insertion sort keeps the deque ordered (priority desc, seq asc);
      // queues are short relative to service time, so O(n) is fine.
      const auto it = std::find_if(
          queue_.begin(), queue_.end(),
          [&p](const Pending& q) { return q.priority < p.priority; });
      queue_.insert(it, std::move(p));
    }
  }
  if (rejected) {
    reject();  // resolve immediately: no worker will ever see this entry
    return;
  }
  cv_.notify_one();
}

bool ManagerService::pop(Pending& out) {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [this] {
    return stopping_ || (!paused_ && !queue_.empty());
  });
  if (stopping_) return false;  // stop() drains the queue itself
  out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

void ManagerService::worker_loop() {
  Pending p;
  while (pop(p)) p.run();
}

void ManagerService::observer_loop() {
  while (true) {
    {
      std::unique_lock lock(mu_);
      if (observer_cv_.wait_for(lock, config_.observe_period,
                                [this] { return stopping_; })) {
        return;
      }
    }
    manager_.observe();
    // Background consolidation rides the observer tick when the active
    // placement policy asks for it (the `consolidating` ablation arm).
    if (manager_.policy_wants_consolidation()) manager_.consolidate();
  }
}

std::future<ServiceResponse> ManagerService::allocate(std::string tenant,
                                                      std::uint32_t slots,
                                                      std::int32_t priority) {
  auto promise = std::make_shared<std::promise<ServiceResponse>>();
  auto fut = promise->get_future();
  enqueue(
      priority,
      [this, promise, tenant = std::move(tenant), slots] {
        const AllocResult r = manager_.allocate_wrank(tenant, slots);
        promise->set_value({r.status, r.wrank, r.rank});
      },
      [promise] { promise->set_value({}); });
  return fut;
}

std::future<ServiceResponse> ManagerService::release(std::uint64_t wrank,
                                                     std::int32_t priority) {
  auto promise = std::make_shared<std::promise<ServiceResponse>>();
  auto fut = promise->get_future();
  enqueue(
      priority,
      [this, promise, wrank] {
        const AllocStatus s = manager_.release_wrank(wrank);
        promise->set_value({s, wrank, Manager::kNoRank});
      },
      [promise, wrank] {
        promise->set_value({AllocStatus::kShutdown, wrank,
                            Manager::kNoRank});
      });
  return fut;
}

std::future<ServiceResponse> ManagerService::resize(std::uint64_t wrank,
                                                    std::uint32_t new_slots,
                                                    std::int32_t priority) {
  auto promise = std::make_shared<std::promise<ServiceResponse>>();
  auto fut = promise->get_future();
  enqueue(
      priority,
      [this, promise, wrank, new_slots] {
        const AllocResult r = manager_.resize_wrank(wrank, new_slots);
        promise->set_value({r.status, r.wrank, r.rank});
      },
      [promise, wrank] {
        promise->set_value({AllocStatus::kShutdown, wrank,
                            Manager::kNoRank});
      });
  return fut;
}

std::future<std::optional<std::uint32_t>> ManagerService::request_rank(
    std::string owner, std::int32_t priority) {
  auto promise =
      std::make_shared<std::promise<std::optional<std::uint32_t>>>();
  auto fut = promise->get_future();
  enqueue(
      priority,
      [this, promise, owner = std::move(owner)] {
        promise->set_value(manager_.request_rank(owner));
      },
      // Typed rejection for the legacy shape is "no rank": the optional
      // stays empty, but crucially the future resolves.
      [promise] { promise->set_value(std::nullopt); });
  return fut;
}

}  // namespace vpim::core
