// Pluggable rank-placement policies for the Manager's wrank allocator
// (ISSUE 9). The paper's §3.5 Manager hands out whole ranks round-robin;
// under oversubscription a rank hosts several wrank slots and *where* a
// new wrank lands decides how fragmented the machine gets — and therefore
// how long the tail of allocation latency grows once multi-slot requests
// have to wait for a whole-rank-sized hole ("UPMEM Unleashed" shows the
// same capacity-management tricks dominating real deployments).
//
// A policy is a pure function from a snapshot of the rank table to a
// placement decision: no internal state, no clock reads, no randomness.
// That keeps every decision bit-reproducible at any VPIM_THREADS setting
// (the determinism contract all Manager paths follow) and lets the
// fig_manager_policies bench ablate policies against an identical trace.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>

namespace vpim::core {

enum class PlacementPolicyKind : std::uint8_t {
  kFirstFit,       // lowest-index rank with room
  kBestFit,        // tightest fit: least leftover room after placement
  kConsolidating,  // best-fit placement + background consolidation passes
};

const char* to_string(PlacementPolicyKind kind);
std::optional<PlacementPolicyKind> parse_placement_policy(
    std::string_view name);

// One rank as the policies see it: a point-in-time view the Manager builds
// under its lock. Policies never see owner strings or driver handles.
struct RankView {
  std::uint32_t rank = 0;
  // Eligible to receive wranks at all. Quarantined (FAIL) ranks and ranks
  // held exclusively by a VM or native application are not usable; the
  // Manager filters them out of consolidation targets through this flag
  // too, so a policy cannot be tricked into migrating onto a dead rank.
  bool usable = false;
  // Already hosts at least one wrank: placing here needs no fresh bind
  // and no reset.
  bool hosting = false;
  // NANA: taking this rank pays the full content erase (~597 ms) first.
  bool needs_reset = false;
  std::uint32_t free_slots = 0;
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual const char* name() const = 0;
  // Picks the rank to host `slots` co-located wrank slots, or nullopt when
  // no usable rank has room. `ranks` is ordered by rank index.
  virtual std::optional<std::uint32_t> place(
      std::span<const RankView> ranks, std::uint32_t slots) const = 0;
  // True when the background consolidation pass should run for this
  // policy (placement alone is shared between best-fit and consolidating).
  virtual bool wants_consolidation() const { return false; }
};

std::unique_ptr<PlacementPolicy> make_placement_policy(
    PlacementPolicyKind kind);

// Fragmentation in permille of the machine: how many ranks the current
// wrank population occupies beyond the minimum it could be packed into,
// normalized by machine size. 0 = perfectly packed; a machine whose every
// hosting rank is half-empty scores high. Computed from the same RankView
// snapshot the policies consume, so tests can cross-check it.
std::uint32_t fragmentation_permille(std::span<const RankView> ranks,
                                     std::uint32_t slots_per_rank);

}  // namespace vpim::core
