// Threaded front of the Manager: a UNIX-domain-socket server in the real
// system, modeled here as a request queue drained by a pool of worker
// threads (8 in the paper's prototype) plus the observer thread polling
// sysfs. Used by concurrency tests and the multi-tenant example; virtual
// time is not charged on these preemptive threads (the Manager core is
// constructed with charge_time = false).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <optional>
#include <thread>
#include <vector>

#include "vpim/manager.h"

namespace vpim::core {

class ManagerService {
 public:
  ManagerService(Manager& manager, std::uint32_t threads,
                 std::chrono::milliseconds observe_period);
  ~ManagerService();

  ManagerService(const ManagerService&) = delete;
  ManagerService& operator=(const ManagerService&) = delete;

  // Enqueues an allocation request; resolved by a pool worker (FIFO).
  std::future<std::optional<std::uint32_t>> request_rank(std::string owner);

  void stop();

 private:
  void worker_loop();
  void observer_loop();

  Manager& manager_;
  std::chrono::milliseconds observe_period_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<std::optional<std::uint32_t>()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
  std::thread observer_;
};

}  // namespace vpim::core
