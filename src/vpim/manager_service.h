// Threaded front of the Manager: a UNIX-domain-socket server in the real
// system, modeled here as a request queue drained by a pool of worker
// threads (8 in the paper's prototype) plus the observer thread polling
// sysfs. Used by concurrency tests and the multi-tenant example; virtual
// time is not charged on these preemptive threads (the Manager core is
// constructed with charge_time = false).
//
// ISSUE 9 promotes the queue from a FIFO of opaque packaged_tasks to a
// typed request vocabulary (allocate / release / resize wrank, plus the
// legacy whole-rank request), with:
//   - priorities: higher priority dequeues first; FIFO within a priority
//     level (submission sequence breaks ties), so ordering is total;
//   - typed shutdown: stop() drains the queue and resolves every pending
//     future with AllocStatus::kShutdown instead of abandoning it — the
//     old packaged_task queue dropped entries on stop() and left callers
//     blocked on futures forever (satellite bugfix);
//   - a background consolidation hook: when the Manager's placement
//     policy wants consolidation, the observer thread runs a pass after
//     each observe() tick.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "vpim/manager.h"

namespace vpim::core {

// Resolution of one typed service request. For the legacy whole-rank op,
// `rank` doubles as the grant; for wrank ops see AllocResult semantics.
struct ServiceResponse {
  AllocStatus status = AllocStatus::kShutdown;
  std::uint64_t wrank = 0;
  std::uint32_t rank = Manager::kNoRank;
};

struct ManagerServiceConfig {
  std::uint32_t threads = 8;  // paper prototype: 8 socket workers
  std::chrono::milliseconds observe_period{10};
  // When true, workers idle until start() — lets tests enqueue a batch at
  // mixed priorities and observe a deterministic drain order.
  bool start_paused = false;
};

class ManagerService {
 public:
  ManagerService(Manager& manager, ManagerServiceConfig config);
  // Legacy shape kept for existing tests/examples.
  ManagerService(Manager& manager, std::uint32_t threads,
                 std::chrono::milliseconds observe_period);
  ~ManagerService();

  ManagerService(const ManagerService&) = delete;
  ManagerService& operator=(const ManagerService&) = delete;

  // Typed vocabulary. Every call returns a future that is ALWAYS
  // resolved: by a worker, by stop()'s shutdown drain, or immediately
  // (kShutdown) when submitted after stop(). Higher priority wins;
  // equal-priority requests resolve in submission order.
  std::future<ServiceResponse> allocate(std::string tenant,
                                        std::uint32_t slots,
                                        std::int32_t priority = 0);
  std::future<ServiceResponse> release(std::uint64_t wrank,
                                       std::int32_t priority = 0);
  std::future<ServiceResponse> resize(std::uint64_t wrank,
                                      std::uint32_t new_slots,
                                      std::int32_t priority = 0);

  // Legacy whole-rank allocation (PR-5 vocabulary), now priority-aware.
  std::future<std::optional<std::uint32_t>> request_rank(
      std::string owner, std::int32_t priority = 0);

  // Releases a start_paused service's workers. Idempotent.
  void start();

  void stop();

  // Requests resolved with kShutdown by the stop() drain (regression
  // observability for the satellite bugfix).
  std::uint64_t shutdown_rejections() const;

 private:
  struct Pending {
    std::int32_t priority = 0;
    std::uint64_t seq = 0;
    std::function<void()> run;     // executes + resolves the promise
    std::function<void()> reject;  // resolves the promise with kShutdown
  };

  void enqueue(std::int32_t priority, std::function<void()> run,
               std::function<void()> reject);
  bool pop(Pending& out);
  void worker_loop();
  void observer_loop();

  Manager& manager_;
  ManagerServiceConfig config_;
  mutable std::mutex mu_;
  std::condition_variable cv_;           // workers: queue + start/stop
  std::condition_variable observer_cv_;  // observer tick; never shared with
                                         // cv_, so a worker wakeup cannot be
                                         // swallowed by the observer
  std::deque<Pending> queue_;  // kept sorted: priority desc, seq asc
  std::uint64_t next_seq_ = 0;
  std::uint64_t shutdown_rejections_ = 0;
  bool paused_ = false;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
  std::thread observer_;
};

}  // namespace vpim::core
