#include "vpim/wire.h"

#include <cstring>

#include "common/error.h"
#include "common/thread_pool.h"
#include "upmem/layout.h"

namespace vpim::core {

namespace {
constexpr std::uint64_t kPage = guest::kGuestPageSize;

template <typename T>
void write_pod(std::span<std::uint8_t> dst, const T& value,
               std::uint64_t offset = 0) {
  VPIM_CHECK(offset + sizeof(T) <= dst.size(), "arena overflow");
  std::memcpy(dst.data() + offset, &value, sizeof(T));
}

template <typename T>
T read_pod(const std::uint8_t* src) {
  T value;
  std::memcpy(&value, src, sizeof(T));
  return value;
}
}  // namespace

void serialize_matrix(const driver::TransferMatrix& matrix,
                      guest::GuestMemory& mem, WireArena& arena,
                      std::uint32_t request_type, SerializeResult& result) {
  VPIM_CHECK(matrix.entries.size() <= upmem::kDpuSlotsPerRank,
             "matrix has more entries than DPUs in a rank");
  VPIM_CHECK(matrix.total_bytes() <= upmem::kMaxXferBytes,
             "rank operations move at most 4 GiB");

  result.chain.clear();
  result.nr_pages = 0;
  // [req][meta] + 2 per entry + [response].
  result.chain.reserve(3 + 2 * matrix.entries.size());

  WireRequest req;
  req.type = request_type;
  req.direction = static_cast<std::uint32_t>(matrix.direction);
  req.nr_entries = static_cast<std::uint32_t>(matrix.entries.size());
  write_pod(arena.request, req);
  result.chain.push_back({mem.gpa_of(arena.request.data()),
                          sizeof(WireRequest), false});

  WireMatrixMeta meta{matrix.entries.size(), matrix.total_bytes()};
  write_pod(arena.matrix_meta, meta);
  result.chain.push_back({mem.gpa_of(arena.matrix_meta.data()),
                          sizeof(WireMatrixMeta), false});

  const bool device_writes =
      matrix.direction == driver::XferDirection::kFromRank;

  std::uint64_t page_list_cursor = 0;  // bytes into arena.page_lists
  for (std::size_t k = 0; k < matrix.entries.size(); ++k) {
    const driver::XferEntry& e = matrix.entries[k];
    VPIM_CHECK(e.size > 0, "zero-sized matrix entry");
    VPIM_CHECK(mem.contains(e.host), "transfer buffer outside guest RAM");

    const std::uint64_t gpa = mem.gpa_of(e.host);
    const std::uint64_t first_off = gpa % kPage;
    const std::uint64_t nr_pages =
        (first_off + e.size + kPage - 1) / kPage;

    WireEntryMeta em;
    em.dpu = e.dpu;
    em.mram_offset = e.mram_offset;
    em.size = e.size;
    em.first_page_offset = first_off;
    em.nr_pages = nr_pages;
    const std::uint64_t meta_off = k * sizeof(WireEntryMeta);
    write_pod(arena.entry_meta, em, meta_off);
    result.chain.push_back(
        {mem.gpa_of(arena.entry_meta.data() + meta_off),
         sizeof(WireEntryMeta), false});

    // Page buffer: one u64 guest-physical page address per covered page.
    VPIM_CHECK(page_list_cursor + nr_pages * 8 <= arena.page_lists.size(),
               "page-list arena exhausted");
    std::uint8_t* list = arena.page_lists.data() + page_list_cursor;
    for (std::uint64_t p = 0; p < nr_pages; ++p) {
      const std::uint64_t page_gpa = (gpa - first_off) + p * kPage;
      std::memcpy(list + p * 8, &page_gpa, 8);
    }
    result.chain.push_back({mem.gpa_of(list),
                            static_cast<std::uint32_t>(nr_pages * 8),
                            false});
    // The data pages themselves are not chained: the device reaches them
    // through the GPAs in the page buffer (zero-copy). Whether the device
    // may write them is implied by the request direction.
    (void)device_writes;
    page_list_cursor += nr_pages * 8;
    result.nr_pages += nr_pages;
  }

  // Device-writable response block: carries the completion status back.
  result.chain.push_back({mem.gpa_of(arena.response.data()),
                          sizeof(WireResponse), true});

  VPIM_CHECK(result.chain.size() <= virtio::kMaxMatrixBuffers,
             "serialized matrix exceeds 131 buffers");
}

SerializeResult serialize_matrix(const driver::TransferMatrix& matrix,
                                 guest::GuestMemory& mem, WireArena& arena,
                                 std::uint32_t request_type) {
  SerializeResult result;
  serialize_matrix(matrix, mem, arena, request_type, result);
  return result;
}

void deserialize_matrix(const virtio::DescChain& chain,
                        guest::GuestMemory& mem, DeserializeResult& result,
                        DeserializeScratch& scratch) {
  using virtio::PimStatus;
  // [req][meta][2 per entry...][response] => odd count, at least 3.
  VPIM_REQUEST_CHECK(chain.descs.size() >= 3 && chain.descs.size() % 2 == 1,
                     PimStatus::kBadRequest,
                     "truncated or malformed rank-operation chain");
  VPIM_REQUEST_CHECK(chain.descs[0].len >= sizeof(WireRequest),
                     PimStatus::kBadRequest, "request descriptor too small");
  const auto req = read_pod<WireRequest>(
      mem.hva_range(chain.descs[0].addr, sizeof(WireRequest)));
  VPIM_REQUEST_CHECK(chain.descs[1].len >= sizeof(WireMatrixMeta),
                     PimStatus::kBadRequest, "metadata descriptor too small");
  const auto meta = read_pod<WireMatrixMeta>(
      mem.hva_range(chain.descs[1].addr, sizeof(WireMatrixMeta)));
  VPIM_REQUEST_CHECK(
      req.direction <=
          static_cast<std::uint32_t>(driver::XferDirection::kFromRank),
      PimStatus::kBadRequest, "unknown transfer direction");
  VPIM_REQUEST_CHECK(meta.nr_entries == (chain.descs.size() - 3) / 2,
                     PimStatus::kBadRequest,
                     "matrix metadata disagrees with chain length");
  VPIM_REQUEST_CHECK(meta.nr_entries <= upmem::kDpuSlotsPerRank,
                     PimStatus::kBadRequest,
                     "matrix has more entries than DPUs in a rank");
  VPIM_REQUEST_CHECK(meta.total_bytes <= upmem::kMaxXferBytes,
                     PimStatus::kBadRequest,
                     "rank operations move at most 4 GiB");

  result.direction = static_cast<driver::XferDirection>(req.direction);
  result.entries.clear();
  result.segment_pool.clear();
  result.nr_pages = 0;
  result.total_bytes = 0;
  result.entries.reserve(meta.nr_entries);

  // Pass 1 (serial, in entry order): validate every guest-controlled
  // metadata field and build the entry skeletons.
  std::vector<WireEntryMeta>& entry_metas = scratch.entry_metas;
  std::vector<const std::uint8_t*>& page_lists = scratch.page_lists;
  std::vector<std::uint64_t>& seg_base = scratch.seg_base;
  std::vector<std::uint32_t>& seg_count = scratch.seg_count;
  entry_metas.clear();
  page_lists.clear();
  seg_base.clear();
  entry_metas.reserve(meta.nr_entries);
  page_lists.reserve(meta.nr_entries);
  seg_base.reserve(meta.nr_entries);
  for (std::uint64_t k = 0; k < meta.nr_entries; ++k) {
    const virtio::VirtqDesc& meta_desc = chain.descs[2 + 2 * k];
    VPIM_REQUEST_CHECK(meta_desc.len >= sizeof(WireEntryMeta),
                       PimStatus::kBadRequest,
                       "entry metadata descriptor too small");
    const auto em = read_pod<WireEntryMeta>(
        mem.hva_range(meta_desc.addr, sizeof(WireEntryMeta)));
    // Bound size before any arithmetic so the page-count formula cannot
    // overflow; then nr_pages is forced to match the size exactly, which
    // caps the page-list length check well below u64 wraparound.
    VPIM_REQUEST_CHECK(em.size > 0 && em.size <= upmem::kMaxXferBytes,
                       PimStatus::kBadRequest, "bad entry size");
    VPIM_REQUEST_CHECK(em.first_page_offset < kPage,
                       PimStatus::kBadRequest, "bad first-page offset");
    const std::uint64_t expected_pages =
        (em.first_page_offset + em.size + kPage - 1) / kPage;
    VPIM_REQUEST_CHECK(em.nr_pages == expected_pages,
                       PimStatus::kBadRequest,
                       "page count disagrees with entry size");
    const virtio::VirtqDesc& pages_desc = chain.descs[3 + 2 * k];
    VPIM_REQUEST_CHECK(pages_desc.len == em.nr_pages * 8,
                       PimStatus::kBadRequest,
                       "page buffer length disagrees with entry metadata");
    page_lists.push_back(mem.hva_range(pages_desc.addr, pages_desc.len));
    entry_metas.push_back(em);
    seg_base.push_back(result.nr_pages);  // worst case: one seg per page

    DeserializedEntry entry;
    entry.dpu = static_cast<std::uint32_t>(em.dpu);
    entry.mram_offset = em.mram_offset;
    entry.size = em.size;
    result.nr_pages += em.nr_pages;
    result.total_bytes += em.size;
    result.entries.push_back(std::move(entry));
  }
  // Carve disjoint per-entry extents out of the flat pool so the parallel
  // pass below writes without coordination; merged runs leave tail gaps.
  result.segment_pool.resize(result.nr_pages);
  seg_count.assign(meta.nr_entries, 0);

  // Pass 2: GPA -> HVA translation — the step vPIM spreads over worker
  // threads (translate_threads in the cost model); here the entries fan
  // out over the host pool for real. Each entry fills only its own
  // extent of the segment pool; a hostile page address throws and the pool
  // rethrows the lowest failing entry's error, exactly what a serial walk
  // reports. Runs of guest-contiguous pages collapse into one segment as
  // they are translated (guest RAM is flat, so GPA-contiguous means
  // HVA-contiguous): bulk copies downstream stream over whole runs and no
  // post-hoc coalescing pass is needed.
  // The fan-out body reaches its inputs through one stack context so the
  // lambda capture is a single pointer: small enough for std::function's
  // inline storage, keeping this per-request call allocation-free.
  struct TranslateCtx {
    const std::vector<WireEntryMeta>& entry_metas;
    const std::vector<const std::uint8_t*>& page_lists;
    const std::vector<std::uint64_t>& seg_base;
    std::vector<std::uint32_t>& seg_count;
    DeserializeResult& result;
    guest::GuestMemory& mem;
  } ctx{entry_metas, page_lists, seg_base, seg_count, result, mem};
  const auto translate_entry = [&ctx](std::size_t k) {
    guest::GuestMemory& mem = ctx.mem;
    const WireEntryMeta& em = ctx.entry_metas[k];
    const std::uint8_t* list = ctx.page_lists[k];
    HvaSegment* out = ctx.result.segment_pool.data() + ctx.seg_base[k];
    std::uint32_t nseg = 0;
    // Current run of contiguous pages: [run_gpa, run_gpa + run_pages *
    // kPage) covering run_len data bytes starting run_off into it.
    std::uint64_t run_gpa = 0, run_pages = 0, run_off = 0, run_len = 0;
    const auto flush_run = [&] {
      if (run_pages == 0) return;
      // Whole-page range check over the run: a page straddling the end
      // of guest RAM must not hand out a pointer past the backing
      // allocation (same granularity as a per-page hva_range walk).
      out[nseg++] = {mem.hva_range(run_gpa, run_pages * kPage) + run_off,
                     run_len};
    };
    std::uint64_t remaining = em.size;
    for (std::uint64_t p = 0; p < em.nr_pages; ++p) {
      const auto page_gpa = read_pod<std::uint64_t>(list + p * 8);
      VPIM_REQUEST_CHECK(page_gpa % kPage == 0, PimStatus::kBadRequest,
                         "page address not page-aligned");
      const std::uint64_t off = (p == 0) ? em.first_page_offset : 0;
      const std::uint64_t len = std::min(remaining, kPage - off);
      if (run_pages > 0 && page_gpa == run_gpa + run_pages * kPage &&
          run_off + run_len == run_pages * kPage) {
        ++run_pages;
        run_len += len;
      } else {
        flush_run();
        run_gpa = page_gpa;
        run_pages = 1;
        run_off = off;
        run_len = len;
      }
      remaining -= len;
    }
    flush_run();
    VPIM_REQUEST_CHECK(remaining == 0, PimStatus::kBadRequest,
                       "pages do not cover the entry");
    ctx.seg_count[k] = nseg;
  };
  // Translating one entry is sub-microsecond work, far below a worker
  // wakeup, so narrow matrices translate inline; wide ones amortize the
  // fan-out. Either path visits indices in the same order with the same
  // per-index output, so results are identical (the determinism tests pin
  // this down across thread counts).
  constexpr std::size_t kTranslateFanoutMin = 8;
  if (result.entries.size() < kTranslateFanoutMin) {
    for (std::size_t k = 0; k < result.entries.size(); ++k) {
      translate_entry(k);
    }
  } else {
    ThreadPool::instance().parallel_for(result.entries.size(),
                                        translate_entry);
  }
  for (std::uint64_t k = 0; k < meta.nr_entries; ++k) {
    result.entries[k].segments = {result.segment_pool.data() + seg_base[k],
                                  seg_count[k]};
  }
  VPIM_REQUEST_CHECK(result.total_bytes == meta.total_bytes,
                     PimStatus::kBadRequest,
                     "matrix metadata disagrees with entry sizes");
}

DeserializeResult deserialize_matrix(const virtio::DescChain& chain,
                                     guest::GuestMemory& mem) {
  DeserializeResult result;
  DeserializeScratch scratch;
  deserialize_matrix(chain, mem, result, scratch);
  return result;
}

}  // namespace vpim::core
