// Wire format of vUPMEM virtio requests: the serialized transfer matrix of
// Fig 6/7 plus the fixed request-info block. All structures live in guest
// memory and are referenced through virtqueue descriptors; payload data is
// never copied into the ring (zero-copy, §4.2).
//
// Chain layout for rank operations (Fig 7):
//   [0] request info            (WireRequest)
//   [1] matrix metadata         (WireMatrixMeta)
//   [2k+2] per-DPU metadata     (WireEntryMeta)
//   [2k+3] per-DPU page buffer  (u64 GPA array)
//   [last] response block       (WireResponse, device-writable)
// = at most 2 + 2*64 + 1 = 131 buffers, always within the 512-slot
// transferq. Every request completes with a WireResponse carrying a
// virtio::PimStatus, so the guest can distinguish success from a
// per-request rejection without the host ever dropping a chain.
//
// CI operations use [0] plus an optional small payload buffer and a
// device-writable response buffer.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "driver/xfer.h"
#include "guest/guest_memory.h"
#include "virtio/pim_spec.h"
#include "virtio/virtqueue.h"

namespace vpim::core {

// Control-interface opcodes carried in WireRequest::ci_op.
enum class CiOp : std::uint32_t {
  kLoad = 0,
  kLaunch = 1,
  kReadStatus = 2,
  kCopyToSymbol = 3,
  kCopyFromSymbol = 4,
  kBindRank = 5,     // controlq: ask the backend to acquire a rank
  kReleaseRank = 6,  // controlq: drop the rank binding
  kCopyToSymbolAll = 7,    // parallel per-DPU symbol write (packed payload)
  kCopyFromSymbolAll = 8,  // parallel per-DPU symbol read
  kMigrateRank = 9,  // controlq: move the device's state to a fresh rank
  kSuspendRank = 10,  // controlq: snapshot state and release the rank
  kResumeRank = 11,   // controlq: re-bind and restore the snapshot
};

// WireRequest::flags bits.
inline constexpr std::uint32_t kWireFlagBatched = 1;  // batch-buffer flush
// Guest cancelled this request after staging it but before the doorbell;
// the backend completes the chain with kCancelled without executing it
// (ISSUE 8). Patched into the staged request block in guest memory, so
// cancellation travels through the wire like any other request field.
inline constexpr std::uint32_t kWireFlagCancelled = 2;

struct WireRequest {
  std::uint32_t type = 0;       // virtio::PimRequestType
  std::uint32_t direction = 0;  // driver::XferDirection for rank ops
  std::uint32_t nr_entries = 0;
  std::uint32_t dpu = 0;  // target DPU for per-DPU CI ops
  std::uint32_t ci_op = 0;
  std::uint32_t symbol_offset = 0;
  std::uint32_t flags = 0;
  // Causal request id (obs spans): the frontend stamps the id of the
  // device-file operation that produced this message, so host-side spans
  // can be joined to the guest-side root across the queue. 0 = untraced.
  std::uint32_t request_id = 0;
  std::uint64_t arg0 = 0;  // launch mask / payload size
  std::uint64_t arg1 = 0;  // nr_tasklets (+1, 0 = default)
  // Absolute virtual-time deadline (ISSUE 8 spec bump): 0 = none. Checked
  // at every layer boundary (backend drain, before data movement, and the
  // frontend's completion reap) so work that can no longer meet its
  // deadline is shed with kTimeout instead of executed.
  std::uint64_t deadline_ns = 0;
  char name[64] = {};      // kernel or symbol name
};

// Record header inside a batch-buffer flush payload: each absorbed write
// is stored as {mram_offset, size} followed by `size` data bytes.
struct BatchRecordHeader {
  std::uint64_t mram_offset = 0;
  std::uint64_t size = 0;
};

// Device-writable response block for CI/config/control requests.
struct WireResponse {
  std::int32_t status = 0;  // 0 = OK
  std::uint32_t rank_index = 0;
  std::uint64_t value = 0;  // e.g. running mask
  virtio::PimConfigSpace config{};
};

struct WireMatrixMeta {
  std::uint64_t nr_entries = 0;
  std::uint64_t total_bytes = 0;
};

struct WireEntryMeta {
  std::uint64_t dpu = 0;
  std::uint64_t mram_offset = 0;
  std::uint64_t size = 0;
  std::uint64_t first_page_offset = 0;  // offset into the first page
  std::uint64_t nr_pages = 0;
};

// Guest-kernel staging areas the frontend serializes into. Allocated once
// per device at initialization; their size is the frontend's per-DPU
// memory overhead (§4.1).
struct WireArena {
  std::span<std::uint8_t> request;      // sizeof(WireRequest)
  std::span<std::uint8_t> matrix_meta;  // sizeof(WireMatrixMeta)
  std::span<std::uint8_t> entry_meta;   // 64 * sizeof(WireEntryMeta)
  std::span<std::uint8_t> page_lists;   // nr_dpus * 16384 * 8 bytes
  std::span<std::uint8_t> payload;      // small CI payloads (symbols)
  std::span<std::uint8_t> response;     // device-writable scratch
};

struct SerializeResult {
  std::vector<virtio::DescBuffer> chain;
  std::uint64_t nr_pages = 0;  // page-list entries written (for costing)
};

// Serializes `matrix` (host pointers must be inside `mem`) into `arena`,
// producing the descriptor chain. Throws on malformed matrices (too many
// entries, oversized transfer, buffers outside guest RAM).
//
// The out-parameter form reuses `out`'s chain storage across requests
// (clear, not free) so a long-lived caller pays no per-request allocation
// once the high-water mark is reached; the value form allocates fresh.
// Both produce byte-identical chains (property-tested in tests/prop/).
void serialize_matrix(const driver::TransferMatrix& matrix,
                      guest::GuestMemory& mem, WireArena& arena,
                      std::uint32_t request_type, SerializeResult& out);
SerializeResult serialize_matrix(const driver::TransferMatrix& matrix,
                                 guest::GuestMemory& mem, WireArena& arena,
                                 std::uint32_t request_type);

// One contiguous host-virtual piece of a translated entry.
using HvaSegment = std::pair<std::uint8_t*, std::uint64_t>;

struct DeserializedEntry {
  std::uint32_t dpu = 0;
  std::uint64_t mram_offset = 0;
  std::uint64_t size = 0;
  // Host-virtual scatter segments after GPA->HVA translation. Contiguous
  // guest pages are merged during translation, so these are maximally
  // coalesced already — views into DeserializeResult::segment_pool, valid
  // for the lifetime (and moves, but not copies) of the owning result.
  std::span<const HvaSegment> segments;
};

struct DeserializeResult {
  driver::XferDirection direction = driver::XferDirection::kToRank;
  std::vector<DeserializedEntry> entries;
  std::uint64_t nr_pages = 0;
  std::uint64_t total_bytes = 0;
  // Backing store for every entry's segment span (flat, per-entry extents
  // carved out before the parallel translation pass).
  std::vector<HvaSegment> segment_pool;
};

// Reusable working set for deserialize_matrix: per-entry metadata and
// page-list views captured by the validation pass. Owned by the caller so
// the backend's steady state performs no allocation per request.
struct DeserializeScratch {
  std::vector<WireEntryMeta> entry_metas;
  std::vector<const std::uint8_t*> page_lists;
  std::vector<std::uint64_t> seg_base;    // per-entry offset into the pool
  std::vector<std::uint32_t> seg_count;   // per-entry segments written
};

// Backend-side parse + GPA->HVA translation of a rank-operation chain.
// Every guest-controlled field is re-validated here (entry counts, the
// 4 GiB transfer cap, page-list lengths, page alignment, RAM bounds) —
// the serialize-side checks protect well-behaved guests, not the host.
// Throws VpimStatusError (kBadRequest) on hostile or malformed chains;
// the backend completes the request with that status.
//
// The out-parameter form reuses `out`/`scratch` storage across requests;
// the value form allocates fresh. Identical results either way.
void deserialize_matrix(const virtio::DescChain& chain,
                        guest::GuestMemory& mem, DeserializeResult& out,
                        DeserializeScratch& scratch);
DeserializeResult deserialize_matrix(const virtio::DescChain& chain,
                                     guest::GuestMemory& mem);

}  // namespace vpim::core
