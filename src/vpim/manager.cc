#include "vpim/manager.h"

#include "common/error.h"
#include "common/log.h"
#include "upmem/layout.h"

namespace vpim::core {

Manager::Manager(driver::UpmemDriver& drv, ManagerConfig config)
    : drv_(drv), config_(config), table_(drv.machine().nr_ranks()) {}

std::optional<std::uint32_t> Manager::request_rank(const std::string& owner) {
  VPIM_CHECK(!owner.empty(), "rank request without an owner tag");
  if (config_.charge_time) {
    // UNIX-socket round trip + table bookkeeping: ~36 ms in the paper.
    drv_.machine().clock().advance(
        drv_.machine().cost().manager_alloc_rt_ns);
  }
  for (std::uint32_t attempt = 0; attempt < config_.max_attempts; ++attempt) {
    {
      std::lock_guard lock(mu_);
      if (auto rank = try_allocate_locked(owner)) {
        ++stats_.allocations;
        return rank;
      }
    }
    // Nothing available: wait for a rank to free up, then retry.
    if (config_.charge_time) {
      drv_.machine().clock().advance(config_.retry_wait_ns);
    }
    observe(/*do_resets=*/true);
  }
  std::lock_guard lock(mu_);
  ++stats_.failed_requests;
  VPIM_WARN("manager", "abandoning rank request from %s after %u attempts",
            owner.c_str(), config_.max_attempts);
  return std::nullopt;
}

std::optional<std::uint32_t> Manager::try_allocate_locked(
    const std::string& owner) {
  // 1. A NANA rank previously used by this owner can be re-assigned
  //    without a reset: its residual content belongs to the requester.
  for (std::uint32_t r = 0; r < table_.size(); ++r) {
    if (table_[r].state == RankState::kNana &&
        table_[r].last_owner == owner) {
      table_[r].state = RankState::kAllo;
      table_[r].owner = owner;
      table_[r].activated = false;
      table_[r].missed = 0;
      ++stats_.reuse_hits;
      return r;
    }
  }
  // 2. Round-robin over NAAV ranks.
  for (std::uint32_t k = 0; k < table_.size(); ++k) {
    const std::uint32_t r =
        (rr_cursor_ + k) % static_cast<std::uint32_t>(table_.size());
    if (table_[r].state == RankState::kNaav && !drv_.is_mapped(r)) {
      rr_cursor_ = (r + 1) % static_cast<std::uint32_t>(table_.size());
      table_[r].state = RankState::kAllo;
      table_[r].owner = owner;
      table_[r].activated = false;
      table_[r].missed = 0;
      return r;
    }
  }
  // 3. Reset-and-take any NANA rank (the requester effectively waits for
  //    the erase to finish).
  for (std::uint32_t r = 0; r < table_.size(); ++r) {
    if (table_[r].state == RankState::kNana) {
      reset_rank_locked(r);
      table_[r].state = RankState::kAllo;
      table_[r].owner = owner;
      table_[r].activated = false;
      table_[r].missed = 0;
      return r;
    }
  }
  return std::nullopt;
}

void Manager::reset_rank_locked(std::uint32_t rank) {
  if (config_.charge_time) {
    drv_.reset_rank(rank);
  } else {
    drv_.machine().rank(rank).reset_memory();
  }
  table_[rank].last_owner.clear();
  ++stats_.resets;
}

void Manager::observe(bool do_resets) {
  std::lock_guard lock(mu_);
  for (std::uint32_t r = 0; r < table_.size(); ++r) {
    Entry& e = table_[r];
    const bool in_use = drv_.sysfs().read(r).in_use;
    switch (e.state) {
      case RankState::kAllo:
        if (in_use) {
          e.activated = true;
          e.missed = 0;
        } else if (e.activated || ++e.missed >= 2) {
          // The holder released the rank without telling us (by design,
          // §3.5): its mapping vanished from sysfs.
          e.state = RankState::kNana;
          e.last_owner = e.owner;
          e.owner.clear();
          e.activated = false;
          e.missed = 0;
          ++stats_.releases_observed;
        }
        break;
      case RankState::kNaav:
        if (in_use) {
          // A native host application grabbed the rank directly; track it
          // so it is not handed to a VM.
          e.state = RankState::kAllo;
          e.owner = drv_.sysfs().read(r).owner;
          e.activated = true;
        }
        break;
      case RankState::kNana:
        break;
    }
  }
  if (do_resets) {
    for (std::uint32_t r = 0; r < table_.size(); ++r) {
      if (table_[r].state == RankState::kNana && !drv_.is_mapped(r)) {
        reset_rank_locked(r);
        table_[r].state = RankState::kNaav;
      }
    }
  }
}

RankState Manager::state(std::uint32_t rank) const {
  std::lock_guard lock(mu_);
  VPIM_CHECK(rank < table_.size(), "rank index out of range");
  return table_[rank].state;
}

ManagerStats Manager::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void Manager::note_external_use(std::uint32_t rank,
                                const std::string& owner) {
  std::lock_guard lock(mu_);
  VPIM_CHECK(rank < table_.size(), "rank index out of range");
  table_[rank].state = RankState::kAllo;
  table_[rank].owner = owner;
  table_[rank].last_owner = owner;
}

}  // namespace vpim::core
