#include "vpim/manager.h"

#include <algorithm>

#include "common/error.h"
#include "common/log.h"
#include "upmem/layout.h"

namespace vpim::core {

Manager::Manager(driver::UpmemDriver& drv, ManagerConfig config)
    : drv_(drv), config_(config), table_(drv.machine().nr_ranks()) {}

void Manager::set_admission(AdmissionController* admission) {
  std::lock_guard lock(mu_);
  admission_ = admission;
}

std::optional<std::uint32_t> Manager::request_rank(const std::string& owner) {
  VPIM_CHECK(!owner.empty(), "rank request without an owner tag");
  if (config_.charge_time) {
    // UNIX-socket round trip + table bookkeeping: ~36 ms in the paper.
    drv_.machine().clock().advance(
        drv_.machine().cost().manager_alloc_rt_ns);
  }
  for (std::uint32_t attempt = 0; attempt < config_.max_attempts; ++attempt) {
    {
      std::lock_guard lock(mu_);
      if (auto rank = try_allocate_locked(owner)) {
        ++stats_.allocations;
        return rank;
      }
    }
    // Nothing available: wait for a rank to free up, then retry.
    if (config_.charge_time) {
      drv_.machine().clock().advance(config_.retry_wait_ns);
    }
    observe(/*do_resets=*/true);
  }
  std::lock_guard lock(mu_);
  ++stats_.failed_requests;
  VPIM_WARN("manager", "abandoning rank request from %s after %u attempts",
            owner.c_str(), config_.max_attempts);
  return std::nullopt;
}

std::optional<std::uint32_t> Manager::try_allocate_locked(
    const std::string& owner) {
  // Fairness gate (ISSUE 8): under contention the weighted round-robin
  // policy may defer this attempt to a tenant holding a smaller share of
  // rank grants. A deferral is indistinguishable from "nothing available"
  // to the caller, so it flows through the normal retry-with-timeout path
  // — never blocking, never aborting.
  if (admission_ != nullptr &&
      !admission_->allow_rank_grant(owner,
                                    drv_.machine().clock().now())) {
    return std::nullopt;
  }
  const auto granted = [&](std::uint32_t r) {
    if (admission_ != nullptr) admission_->on_rank_granted(owner);
    return r;
  };
  // 1. A NANA rank previously used by this owner can be re-assigned
  //    without a reset: its residual content belongs to the requester.
  for (std::uint32_t r = 0; r < table_.size(); ++r) {
    if (table_[r].state == RankState::kNana &&
        table_[r].last_owner == owner && !drv_.is_mapped(r)) {
      table_[r].state = RankState::kAllo;
      table_[r].owner = owner;
      table_[r].activated = false;
      table_[r].alloc_map_gen = drv_.map_generation(r);
      table_[r].miss_pending = false;
      ++stats_.reuse_hits;
      return granted(r);
    }
  }
  // 2. Round-robin over NAAV ranks.
  for (std::uint32_t k = 0; k < table_.size(); ++k) {
    const std::uint32_t r =
        (rr_cursor_ + k) % static_cast<std::uint32_t>(table_.size());
    if (table_[r].state == RankState::kNaav && !drv_.is_mapped(r)) {
      rr_cursor_ = (r + 1) % static_cast<std::uint32_t>(table_.size());
      table_[r].state = RankState::kAllo;
      table_[r].owner = owner;
      table_[r].activated = false;
      table_[r].alloc_map_gen = drv_.map_generation(r);
      table_[r].miss_pending = false;
      return granted(r);
    }
  }
  // 3. Reset-and-take any NANA rank (the requester effectively waits for
  //    the erase to finish).
  for (std::uint32_t r = 0; r < table_.size(); ++r) {
    if (table_[r].state == RankState::kNana && !drv_.is_mapped(r)) {
      reset_rank_locked(r);
      table_[r].state = RankState::kAllo;
      table_[r].owner = owner;
      table_[r].activated = false;
      table_[r].alloc_map_gen = drv_.map_generation(r);
      table_[r].miss_pending = false;
      return granted(r);
    }
  }
  return std::nullopt;
}

void Manager::reset_rank_locked(std::uint32_t rank) {
  if (config_.charge_time) {
    drv_.reset_rank(rank);
  } else {
    drv_.machine().rank(rank).reset_memory();
  }
  table_[rank].last_owner.clear();
  ++stats_.resets;
}

void Manager::observe(bool do_resets) {
  std::lock_guard lock(mu_);
  // Fire any due injected seizures and pull typed fault records out of the
  // driver mailbox before reading status, so this pass already sees their
  // sysfs consequences.
  drv_.apply_fault_plan();
  stats_.fault_records_drained += drv_.drain_fault_records().size();
  const SimNs now = drv_.machine().clock().now();
  for (std::uint32_t r = 0; r < table_.size(); ++r) {
    Entry& e = table_[r];
    // The observer reads the textual status file, exactly as it would on a
    // real host; a line it cannot parse means the rank's state is unknown,
    // so it conservatively leaves the entry untouched.
    const auto status = driver::Sysfs::parse(drv_.rank_status_line(r));
    if (!status) {
      ++stats_.status_parse_errors;
      VPIM_WARN("manager", "unparseable sysfs status for rank %u; skipping",
                r);
      continue;
    }
    const bool in_use = status->in_use;
    if (status->health == driver::RankHealth::kFailed &&
        e.state != RankState::kFail) {
      // The driver reported a permanent fault (rank death).
      quarantine_locked(r, now);
    }
    switch (e.state) {
      case RankState::kAllo:
        if (in_use && !e.owner.empty() && status->owner != e.owner) {
          // Hot seizure: sysfs names a different holder than our table.
          // Track the squatter; once it lets go the rank's content cannot
          // be trusted, so it goes through reset-verify.
          ++stats_.seizures_observed;
          e.owner = status->owner;
          e.activated = true;
          e.miss_pending = false;
          e.quarantine_on_release = true;
        } else if (in_use) {
          e.activated = true;
          e.miss_pending = false;
        } else if (e.activated ||
                   drv_.map_generation(r) != e.alloc_map_gen ||
                   (e.miss_pending &&
                    std::chrono::steady_clock::now() - e.unmapped_since >=
                        config_.unactivated_release_grace)) {
          // The holder released the rank without telling us (by design,
          // §3.5): its mapping vanished from sysfs.
          ++stats_.releases_observed;
          if (e.quarantine_on_release) {
            quarantine_locked(r, now);
          } else {
            e.state = RankState::kNana;
            e.last_owner = e.owner;
            e.owner.clear();
            e.activated = false;
            e.miss_pending = false;
          }
        } else if (!e.miss_pending) {
          // First unmapped observation of a never-mapped allocation: arm
          // the real-time grace instead of reclaiming outright.
          e.miss_pending = true;
          e.unmapped_since = std::chrono::steady_clock::now();
        }
        break;
      case RankState::kNaav:
        if (in_use) {
          // A native host application grabbed the rank directly; track it
          // so it is not handed to a VM.
          e.state = RankState::kAllo;
          e.owner = status->owner;
          e.activated = true;
        }
        break;
      case RankState::kNana:
        if (in_use) {
          // Someone grabbed a rank still holding residual tenant data:
          // track the holder and force reset-verify once it lets go.
          ++stats_.seizures_observed;
          e.state = RankState::kAllo;
          e.owner = status->owner;
          e.last_owner.clear();
          e.activated = true;
          e.miss_pending = false;
          e.quarantine_on_release = true;
        }
        break;
      case RankState::kFail:
        if (!in_use && now >= e.next_probe) {
          ++stats_.quarantine_probes;
          if (drv_.try_recover_rank(r, config_.charge_time)) {
            e = Entry{};  // back to a fresh kNaav
            ++stats_.recoveries;
          } else {
            e.next_probe =
                drv_.machine().clock().now() + e.probe_backoff;
            e.probe_backoff = std::min(e.probe_backoff * 2,
                                       config_.quarantine_backoff_max_ns);
          }
        }
        break;
    }
  }
  if (do_resets) {
    for (std::uint32_t r = 0; r < table_.size(); ++r) {
      if (table_[r].state == RankState::kNana && !drv_.is_mapped(r)) {
        reset_rank_locked(r);
        table_[r].state = RankState::kNaav;
      }
    }
  }
}

RankState Manager::state(std::uint32_t rank) const {
  std::lock_guard lock(mu_);
  VPIM_CHECK(rank < table_.size(), "rank index out of range");
  return table_[rank].state;
}

ManagerStats Manager::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void Manager::quarantine_locked(std::uint32_t rank, SimNs now) {
  Entry& e = table_[rank];
  e.state = RankState::kFail;
  e.owner.clear();
  e.last_owner.clear();
  e.activated = false;
  e.miss_pending = false;
  e.quarantine_on_release = false;
  e.probe_backoff = config_.quarantine_backoff_ns;
  e.next_probe = now;  // first probe as soon as the rank is unmapped
  ++stats_.quarantined;
  VPIM_WARN("manager", "rank %u quarantined (FAIL)", rank);
}

void Manager::note_seized(std::uint32_t rank) {
  std::lock_guard lock(mu_);
  VPIM_CHECK(rank < table_.size(), "rank index out of range");
  Entry& e = table_[rank];
  ++stats_.seizures_observed;
  e.state = RankState::kAllo;
  e.owner = drv_.sysfs().read(rank).owner;
  e.last_owner.clear();
  e.activated = true;
  e.miss_pending = false;
  e.quarantine_on_release = true;
}

void Manager::note_wrank_migration() {
  std::lock_guard lock(mu_);
  ++stats_.wrank_migrations;
}

void Manager::note_external_use(std::uint32_t rank,
                                const std::string& owner) {
  std::lock_guard lock(mu_);
  VPIM_CHECK(rank < table_.size(), "rank index out of range");
  table_[rank].state = RankState::kAllo;
  table_[rank].owner = owner;
  table_[rank].last_owner = owner;
}

}  // namespace vpim::core
