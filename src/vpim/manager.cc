#include "vpim/manager.h"

#include <algorithm>

#include "common/error.h"
#include "common/log.h"
#include "common/obs/metrics.h"
#include "upmem/layout.h"

namespace vpim::core {

namespace {
// Sysfs owner tag for ranks the manager maps in its own name while they
// host wranks.
const char* const kHostingOwner = "vpim-manager";
}  // namespace

const char* to_string(AllocStatus status) {
  switch (status) {
    case AllocStatus::kOk:
      return "OK";
    case AllocStatus::kNoCapacity:
      return "NO_CAPACITY";
    case AllocStatus::kQuotaExceeded:
      return "QUOTA_EXCEEDED";
    case AllocStatus::kNotFound:
      return "NOT_FOUND";
    case AllocStatus::kBadRequest:
      return "BAD_REQUEST";
    case AllocStatus::kShutdown:
      return "SHUTDOWN";
  }
  return "?";
}

Manager::Manager(driver::UpmemDriver& drv, ManagerConfig config)
    : drv_(drv),
      config_(config),
      table_(drv.machine().nr_ranks()),
      policy_(make_placement_policy(config.placement)) {}

void Manager::set_admission(AdmissionController* admission) {
  std::lock_guard lock(mu_);
  admission_ = admission;
}

std::optional<std::uint32_t> Manager::request_rank(const std::string& owner) {
  VPIM_CHECK(!owner.empty(), "rank request without an owner tag");
  if (config_.charge_time) {
    // UNIX-socket round trip + table bookkeeping: ~36 ms in the paper.
    drv_.machine().clock().advance(
        drv_.machine().cost().manager_alloc_rt_ns);
  }
  for (std::uint32_t attempt = 0; attempt < config_.max_attempts; ++attempt) {
    {
      std::lock_guard lock(mu_);
      if (auto rank = try_allocate_locked(owner)) {
        ++stats_.allocations;
        return rank;
      }
    }
    // Nothing available: wait for a rank to free up, then retry.
    if (config_.charge_time) {
      drv_.machine().clock().advance(config_.retry_wait_ns);
    }
    observe(/*do_resets=*/true);
  }
  std::lock_guard lock(mu_);
  ++stats_.failed_requests;
  VPIM_WARN("manager", "abandoning rank request from %s after %u attempts",
            owner.c_str(), config_.max_attempts);
  return std::nullopt;
}

std::optional<std::uint32_t> Manager::try_allocate_locked(
    const std::string& owner) {
  // Fairness gate (ISSUE 8): under contention the weighted round-robin
  // policy may defer this attempt to a tenant holding a smaller share of
  // rank grants. A deferral is indistinguishable from "nothing available"
  // to the caller, so it flows through the normal retry-with-timeout path
  // — never blocking, never aborting.
  if (admission_ != nullptr &&
      !admission_->allow_rank_grant(owner,
                                    drv_.machine().clock().now())) {
    return std::nullopt;
  }
  const auto granted = [&](std::uint32_t r) {
    if (admission_ != nullptr) admission_->on_rank_granted(owner);
    return r;
  };
  // 1. A NANA rank previously used by this owner can be re-assigned
  //    without a reset: its residual content belongs to the requester.
  for (std::uint32_t r = 0; r < table_.size(); ++r) {
    if (table_[r].state == RankState::kNana &&
        table_[r].last_owner == owner && !drv_.is_mapped(r)) {
      table_[r].state = RankState::kAllo;
      table_[r].owner = owner;
      table_[r].activated = false;
      table_[r].alloc_map_gen = drv_.map_generation(r);
      table_[r].miss_pending = false;
      ++stats_.reuse_hits;
      return granted(r);
    }
  }
  // 2. Round-robin over NAAV ranks.
  for (std::uint32_t k = 0; k < table_.size(); ++k) {
    const std::uint32_t r =
        (rr_cursor_ + k) % static_cast<std::uint32_t>(table_.size());
    if (table_[r].state == RankState::kNaav && !drv_.is_mapped(r)) {
      rr_cursor_ = (r + 1) % static_cast<std::uint32_t>(table_.size());
      table_[r].state = RankState::kAllo;
      table_[r].owner = owner;
      table_[r].activated = false;
      table_[r].alloc_map_gen = drv_.map_generation(r);
      table_[r].miss_pending = false;
      return granted(r);
    }
  }
  // 3. Reset-and-take any NANA rank (the requester effectively waits for
  //    the erase to finish).
  for (std::uint32_t r = 0; r < table_.size(); ++r) {
    if (table_[r].state == RankState::kNana && !drv_.is_mapped(r)) {
      reset_rank_locked(r);
      table_[r].state = RankState::kAllo;
      table_[r].owner = owner;
      table_[r].activated = false;
      table_[r].alloc_map_gen = drv_.map_generation(r);
      table_[r].miss_pending = false;
      return granted(r);
    }
  }
  return std::nullopt;
}

void Manager::reset_rank_locked(std::uint32_t rank) {
  if (config_.charge_time) {
    drv_.reset_rank(rank);
  } else {
    drv_.machine().rank(rank).reset_memory();
  }
  table_[rank].last_owner.clear();
  ++stats_.resets;
}

void Manager::observe(bool do_resets) {
  std::lock_guard lock(mu_);
  // Fire any due injected seizures and pull typed fault records out of the
  // driver mailbox before reading status, so this pass already sees their
  // sysfs consequences.
  drv_.apply_fault_plan();
  stats_.fault_records_drained += drv_.drain_fault_records().size();
  const SimNs now = drv_.machine().clock().now();
  for (std::uint32_t r = 0; r < table_.size(); ++r) {
    Entry& e = table_[r];
    // The observer reads the textual status file, exactly as it would on a
    // real host; a line it cannot parse means the rank's state is unknown,
    // so it conservatively leaves the entry untouched.
    const auto status = driver::Sysfs::parse(drv_.rank_status_line(r));
    if (!status) {
      ++stats_.status_parse_errors;
      VPIM_WARN("manager", "unparseable sysfs status for rank %u; skipping",
                r);
      continue;
    }
    const bool in_use = status->in_use;
    if (status->health == driver::RankHealth::kFailed &&
        e.state != RankState::kFail) {
      // The driver reported a permanent fault (rank death).
      quarantine_locked(r, now);
    }
    switch (e.state) {
      case RankState::kAllo:
        if (in_use && !e.owner.empty() && status->owner != e.owner) {
          // Hot seizure: sysfs names a different holder than our table.
          // Track the squatter; once it lets go the rank's content cannot
          // be trusted, so it goes through reset-verify.
          ++stats_.seizures_observed;
          e.owner = status->owner;
          e.activated = true;
          e.miss_pending = false;
          e.quarantine_on_release = true;
        } else if (in_use) {
          e.activated = true;
          e.miss_pending = false;
        } else if (e.activated ||
                   drv_.map_generation(r) != e.alloc_map_gen ||
                   (e.miss_pending &&
                    std::chrono::steady_clock::now() - e.unmapped_since >=
                        config_.unactivated_release_grace)) {
          // The holder released the rank without telling us (by design,
          // §3.5): its mapping vanished from sysfs.
          ++stats_.releases_observed;
          if (e.quarantine_on_release) {
            quarantine_locked(r, now);
          } else {
            e.state = RankState::kNana;
            e.last_owner = e.owner;
            e.owner.clear();
            e.activated = false;
            e.miss_pending = false;
          }
        } else if (!e.miss_pending) {
          // First unmapped observation of a never-mapped allocation: arm
          // the real-time grace instead of reclaiming outright.
          e.miss_pending = true;
          e.unmapped_since = std::chrono::steady_clock::now();
        }
        break;
      case RankState::kNaav:
        if (in_use) {
          // A native host application grabbed the rank directly; track it
          // so it is not handed to a VM.
          e.state = RankState::kAllo;
          e.owner = status->owner;
          e.activated = true;
        }
        break;
      case RankState::kNana:
        if (in_use) {
          // Someone grabbed a rank still holding residual tenant data:
          // track the holder and force reset-verify once it lets go.
          ++stats_.seizures_observed;
          e.state = RankState::kAllo;
          e.owner = status->owner;
          e.last_owner.clear();
          e.activated = true;
          e.miss_pending = false;
          e.quarantine_on_release = true;
        }
        break;
      case RankState::kFail:
        if (!in_use && now >= e.next_probe) {
          ++stats_.quarantine_probes;
          if (drv_.try_recover_rank(r, config_.charge_time)) {
            e = Entry{};  // back to a fresh kNaav
            ++stats_.recoveries;
          } else {
            e.next_probe =
                drv_.machine().clock().now() + e.probe_backoff;
            e.probe_backoff = std::min(e.probe_backoff * 2,
                                       config_.quarantine_backoff_max_ns);
          }
        }
        break;
    }
  }
  if (do_resets) {
    for (std::uint32_t r = 0; r < table_.size(); ++r) {
      if (table_[r].state == RankState::kNana && !drv_.is_mapped(r)) {
        reset_rank_locked(r);
        table_[r].state = RankState::kNaav;
      }
    }
  }
  // Re-home wranks displaced by a quarantine (runs after the table sweep
  // so rescue placements see this pass's state transitions).
  rescue_displaced_locked();
}

RankState Manager::state(std::uint32_t rank) const {
  std::lock_guard lock(mu_);
  VPIM_CHECK(rank < table_.size(), "rank index out of range");
  return table_[rank].state;
}

ManagerStats Manager::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void Manager::quarantine_locked(std::uint32_t rank, SimNs now) {
  Entry& e = table_[rank];
  if (e.host_mapping.has_value()) {
    // The dying rank hosted wranks: drop the manager's mapping so recovery
    // probes can run, and displace every resident wrank. Displaced wranks
    // (rank == kNoRank) are re-homed by rescue_displaced_locked() on the
    // next observe/consolidation pass — never back onto a FAIL rank,
    // because quarantined ranks are filtered out of every RankView.
    e.host_mapping.reset();
    for (Wrank& w : wranks_) {
      if (w.rank == rank) {
        w.rank = kNoRank;
        ++stats_.wranks_displaced;
      }
    }
    e.wrank_used = 0;
  }
  e.state = RankState::kFail;
  e.owner.clear();
  e.last_owner.clear();
  e.activated = false;
  e.miss_pending = false;
  e.quarantine_on_release = false;
  e.probe_backoff = config_.quarantine_backoff_ns;
  e.next_probe = now;  // first probe as soon as the rank is unmapped
  ++stats_.quarantined;
  VPIM_WARN("manager", "rank %u quarantined (FAIL)", rank);
}

void Manager::note_seized(std::uint32_t rank) {
  std::lock_guard lock(mu_);
  VPIM_CHECK(rank < table_.size(), "rank index out of range");
  Entry& e = table_[rank];
  ++stats_.seizures_observed;
  e.state = RankState::kAllo;
  e.owner = drv_.sysfs().read(rank).owner;
  e.last_owner.clear();
  e.activated = true;
  e.miss_pending = false;
  e.quarantine_on_release = true;
}

void Manager::note_wrank_migration() {
  std::lock_guard lock(mu_);
  ++stats_.wrank_migrations;
}

void Manager::note_external_use(std::uint32_t rank,
                                const std::string& owner) {
  std::lock_guard lock(mu_);
  VPIM_CHECK(rank < table_.size(), "rank index out of range");
  table_[rank].state = RankState::kAllo;
  table_[rank].owner = owner;
  table_[rank].last_owner = owner;
}

// --- wrank allocation service (ISSUE 9) ----------------------------------

void Manager::charge(SimNs ns) {
  if (config_.charge_time && ns > 0) drv_.machine().clock().advance(ns);
}

SimNs Manager::reset_cost_ns() const {
  const std::uint64_t region =
      static_cast<std::uint64_t>(upmem::kDpuSlotsPerRank) * upmem::kMramSize;
  return CostModel::bytes_time(region, drv_.machine().cost().memset_gbps);
}

SimNs Manager::wrank_move_cost(std::uint32_t slots, double gbps) const {
  // A wrank of k slots owns k/slots_per_rank of the rank's resident image
  // (the same 2 x nr_dpus x MRAM formula the backend's PR-3 rescue uses).
  const std::uint64_t rank_bytes =
      2ULL * drv_.machine().rank(0).nr_dpus() * upmem::kMramSize;
  return CostModel::bytes_time(
      rank_bytes * slots / std::max(1u, config_.wrank_slots_per_rank), gbps);
}

std::uint32_t Manager::quota_for_locked(const std::string& tenant) const {
  const auto it = tenant_quotas_.find(tenant);
  return it != tenant_quotas_.end() ? it->second : config_.tenant_quota_slots;
}

std::vector<RankView> Manager::rank_views_locked() const {
  std::vector<RankView> views;
  views.reserve(table_.size());
  for (std::uint32_t r = 0; r < table_.size(); ++r) {
    const Entry& e = table_[r];
    RankView v;
    v.rank = r;
    if (e.host_mapping.has_value()) {
      v.usable = e.state != RankState::kFail;
      v.hosting = true;
      v.free_slots = config_.wrank_slots_per_rank - e.wrank_used;
    } else if (e.state == RankState::kNaav && !drv_.is_mapped(r)) {
      v.usable = true;
      v.free_slots = config_.wrank_slots_per_rank;
    } else if (e.state == RankState::kNana && !drv_.is_mapped(r)) {
      v.usable = true;
      v.needs_reset = true;
      v.free_slots = config_.wrank_slots_per_rank;
    }
    views.push_back(v);
  }
  return views;
}

SimNs Manager::host_bind_locked(std::uint32_t rank) {
  Entry& e = table_[rank];
  if (e.host_mapping.has_value()) return 0;
  SimNs modeled = 0;
  if (e.state == RankState::kNana) {
    // Residual tenant content: pay the full erase before hosting.
    modeled += reset_cost_ns();
    reset_rank_locked(rank);
  }
  e.host_mapping = drv_.map_rank(rank, kHostingOwner);
  e.state = RankState::kAllo;
  e.owner = kHostingOwner;
  e.last_owner.clear();
  e.activated = true;
  e.miss_pending = false;
  e.alloc_map_gen = drv_.map_generation(rank);
  e.wrank_used = 0;
  return modeled;
}

void Manager::host_unbind_locked(std::uint32_t rank) {
  Entry& e = table_[rank];
  e.host_mapping.reset();
  // Hosted several tenants' slots: residual content belongs to nobody in
  // particular, so the rank must go through the erase before reuse.
  e.state = RankState::kNana;
  e.owner.clear();
  e.last_owner.clear();
  e.activated = false;
  e.miss_pending = false;
  e.wrank_used = 0;
}

void Manager::place_wrank_locked(Wrank& w, std::uint32_t rank) {
  w.rank = rank;
  table_[rank].wrank_used += w.slots;
  VPIM_CHECK(table_[rank].wrank_used <= config_.wrank_slots_per_rank,
             "wrank placement overflows the rank's slot capacity");
}

void Manager::observe_frag_locked() {
  if (frag_hist_ == nullptr) return;
  const auto views = rank_views_locked();
  frag_hist_->observe(
      core::fragmentation_permille(views, config_.wrank_slots_per_rank));
}

AllocResult Manager::allocate_wrank(const std::string& tenant,
                                    std::uint32_t slots) {
  VPIM_CHECK(!tenant.empty(), "wrank request without a tenant tag");
  if (slots == 0 || slots > config_.wrank_slots_per_rank) {
    return {AllocStatus::kBadRequest, 0, kNoRank};
  }
  // UNIX-socket round trip + table bookkeeping, as for request_rank.
  SimNs modeled = drv_.machine().cost().manager_alloc_rt_ns;
  charge(modeled);
  {
    std::lock_guard lock(mu_);
    const std::uint32_t quota = quota_for_locked(tenant);
    if (quota != 0 && tenant_slots_[tenant] + slots > quota) {
      ++stats_.quota_rejections;
      if (alloc_hist_ != nullptr) alloc_hist_->observe(modeled);
      return {AllocStatus::kQuotaExceeded, 0, kNoRank};
    }
  }
  for (std::uint32_t attempt = 0; attempt < config_.max_attempts; ++attempt) {
    {
      std::lock_guard lock(mu_);
      // The WRR fairness gate composes with every placement policy: a
      // deferred attempt is indistinguishable from "nothing placeable"
      // and takes the same retry path (ISSUE 8 contract).
      const bool deferred =
          admission_ != nullptr &&
          !admission_->allow_rank_grant(tenant,
                                        drv_.machine().clock().now());
      if (!deferred) {
        const auto views = rank_views_locked();
        if (const auto rank = policy_->place(views, slots)) {
          modeled += host_bind_locked(*rank);
          Wrank w{next_wrank_id_++, tenant, kNoRank, slots};
          place_wrank_locked(w, *rank);
          tenant_slots_[tenant] += slots;
          wranks_.push_back(std::move(w));
          ++stats_.wrank_allocs;
          if (admission_ != nullptr) {
            admission_->on_rank_granted(tenant, slots);
          }
          if (alloc_hist_ != nullptr) alloc_hist_->observe(modeled);
          observe_frag_locked();
          return {AllocStatus::kOk, wranks_.back().id, *rank};
        }
      }
    }
    charge(config_.retry_wait_ns);
    modeled += config_.retry_wait_ns;
    observe(/*do_resets=*/true);
  }
  std::lock_guard lock(mu_);
  ++stats_.failed_requests;
  if (alloc_hist_ != nullptr) alloc_hist_->observe(modeled);
  VPIM_WARN("manager", "abandoning %u-slot wrank request from %s after %u "
            "attempts", slots, tenant.c_str(), config_.max_attempts);
  return {AllocStatus::kNoCapacity, 0, kNoRank};
}

AllocStatus Manager::release_wrank(std::uint64_t wrank_id) {
  charge(drv_.machine().cost().manager_alloc_rt_ns);
  std::lock_guard lock(mu_);
  const auto it = std::find_if(
      wranks_.begin(), wranks_.end(),
      [wrank_id](const Wrank& w) { return w.id == wrank_id; });
  if (it == wranks_.end()) return AllocStatus::kNotFound;
  const auto slot_it = tenant_slots_.find(it->tenant);
  if (slot_it != tenant_slots_.end()) {
    slot_it->second -= std::min(slot_it->second, it->slots);
    if (slot_it->second == 0) tenant_slots_.erase(slot_it);
  }
  if (it->rank != kNoRank) {
    Entry& e = table_[it->rank];
    e.wrank_used -= std::min(e.wrank_used, it->slots);
    if (e.wrank_used == 0 && e.host_mapping.has_value()) {
      host_unbind_locked(it->rank);
    }
  }
  wranks_.erase(it);
  ++stats_.wrank_releases;
  observe_frag_locked();
  return AllocStatus::kOk;
}

AllocResult Manager::resize_wrank(std::uint64_t wrank_id,
                                  std::uint32_t new_slots) {
  if (new_slots == 0 || new_slots > config_.wrank_slots_per_rank) {
    return {AllocStatus::kBadRequest, wrank_id, kNoRank};
  }
  charge(drv_.machine().cost().manager_alloc_rt_ns);
  {
    std::lock_guard lock(mu_);
    const auto it = std::find_if(
        wranks_.begin(), wranks_.end(),
        [wrank_id](const Wrank& w) { return w.id == wrank_id; });
    if (it == wranks_.end()) {
      return {AllocStatus::kNotFound, wrank_id, kNoRank};
    }
    Wrank& w = *it;
    if (new_slots == w.slots) {
      return {AllocStatus::kOk, w.id, w.rank};
    }
    if (new_slots < w.slots) {
      const std::uint32_t delta = w.slots - new_slots;
      if (w.rank != kNoRank) table_[w.rank].wrank_used -= delta;
      tenant_slots_[w.tenant] -= std::min(tenant_slots_[w.tenant], delta);
      w.slots = new_slots;
      ++stats_.wrank_resizes;
      observe_frag_locked();
      return {AllocStatus::kOk, w.id, w.rank};
    }
    const std::uint32_t delta = new_slots - w.slots;
    const std::uint32_t quota = quota_for_locked(w.tenant);
    if (quota != 0 && tenant_slots_[w.tenant] + delta > quota) {
      ++stats_.quota_rejections;
      return {AllocStatus::kQuotaExceeded, w.id, w.rank};
    }
  }
  // Growth may need capacity: same retry-with-timeout shape as allocate.
  for (std::uint32_t attempt = 0; attempt < config_.max_attempts; ++attempt) {
    {
      std::lock_guard lock(mu_);
      const auto it = std::find_if(
          wranks_.begin(), wranks_.end(),
          [wrank_id](const Wrank& w) { return w.id == wrank_id; });
      if (it == wranks_.end()) {
        // Racing release (service mode): nothing left to grow.
        return {AllocStatus::kNotFound, wrank_id, kNoRank};
      }
      Wrank& w = *it;
      const std::uint32_t delta = new_slots - w.slots;
      const bool deferred =
          admission_ != nullptr &&
          !admission_->allow_rank_grant(w.tenant,
                                        drv_.machine().clock().now());
      if (!deferred) {
        if (w.rank != kNoRank &&
            table_[w.rank].wrank_used + delta <=
                config_.wrank_slots_per_rank) {
          // In-place growth.
          table_[w.rank].wrank_used += delta;
          tenant_slots_[w.tenant] += delta;
          w.slots = new_slots;
          ++stats_.wrank_resizes;
          if (admission_ != nullptr) {
            admission_->on_rank_granted(w.tenant, delta);
          }
          observe_frag_locked();
          return {AllocStatus::kOk, w.id, w.rank};
        }
        // Live-migrate to a rank with room for the grown wrank. The
        // current rank cannot fit it even net of the wrank's own slots,
        // so mark it unusable for this placement.
        auto views = rank_views_locked();
        if (w.rank != kNoRank) views[w.rank].usable = false;
        if (const auto target = policy_->place(views, new_slots)) {
          charge(host_bind_locked(*target));
          if (w.rank != kNoRank) {
            Entry& src = table_[w.rank];
            src.wrank_used -= std::min(src.wrank_used, w.slots);
            charge(wrank_move_cost(w.slots,
                                   drv_.machine().cost()
                                       .interleave_wide_gbps));
            ++stats_.wrank_migrations;
            if (src.wrank_used == 0 && src.host_mapping.has_value()) {
              host_unbind_locked(w.rank);
            }
          }
          w.rank = kNoRank;
          w.slots = new_slots;
          place_wrank_locked(w, *target);
          tenant_slots_[w.tenant] += delta;
          ++stats_.wrank_resizes;
          if (admission_ != nullptr) {
            admission_->on_rank_granted(w.tenant, delta);
          }
          observe_frag_locked();
          return {AllocStatus::kOk, w.id, *target};
        }
      }
    }
    charge(config_.retry_wait_ns);
    observe(/*do_resets=*/true);
  }
  std::lock_guard lock(mu_);
  ++stats_.failed_requests;
  return {AllocStatus::kNoCapacity, wrank_id, kNoRank};
}

std::uint32_t Manager::rescue_displaced_locked() {
  std::uint32_t moves = 0;
  for (Wrank& w : wranks_) {
    if (w.rank != kNoRank) continue;
    const auto views = rank_views_locked();
    const auto rank = policy_->place(views, w.slots);
    if (!rank.has_value()) continue;  // retried on the next pass
    charge(host_bind_locked(*rank));
    place_wrank_locked(w, *rank);
    // The hosting rank died under this wrank: its image streams out of
    // the dying silicon at the degraded rescue bandwidth (PR 3).
    charge(wrank_move_cost(w.slots, drv_.machine().cost().rank_rescue_gbps));
    ++stats_.wrank_migrations;
    ++moves;
    VPIM_WARN("manager", "wrank %llu (%s) rescued onto rank %u",
              static_cast<unsigned long long>(w.id), w.tenant.c_str(),
              *rank);
  }
  return moves;
}

std::uint32_t Manager::consolidate() {
  std::lock_guard lock(mu_);
  std::uint32_t moves = rescue_displaced_locked();
  // Packing pass: drain the least-occupied hosting rank onto fuller ones,
  // but only when *every* wrank on it can move — a partial drain pays
  // migration cost without freeing the rank. Repeats until no hosting
  // rank is fully drainable.
  while (true) {
    // Candidate sources, least-occupied first (ties: higher index first,
    // so low-index ranks act as accumulation targets like the fitting
    // policies prefer them).
    std::vector<std::uint32_t> sources;
    for (std::uint32_t r = 0; r < table_.size(); ++r) {
      if (table_[r].host_mapping.has_value() && table_[r].wrank_used > 0) {
        sources.push_back(r);
      }
    }
    std::sort(sources.begin(), sources.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                if (table_[a].wrank_used != table_[b].wrank_used) {
                  return table_[a].wrank_used < table_[b].wrank_used;
                }
                return a > b;
              });
    bool drained = false;
    for (const std::uint32_t src : sources) {
      // Plan: place each of src's wranks (id order) on another hosting,
      // non-quarantined rank, best-fit against simulated free counts.
      std::map<std::uint32_t, std::uint32_t> free;
      for (std::uint32_t r = 0; r < table_.size(); ++r) {
        const Entry& e = table_[r];
        if (r != src && e.host_mapping.has_value() &&
            e.state != RankState::kFail) {
          free[r] = config_.wrank_slots_per_rank - e.wrank_used;
        }
      }
      std::vector<std::pair<Wrank*, std::uint32_t>> plan;
      bool feasible = true;
      for (Wrank& w : wranks_) {
        if (w.rank != src) continue;
        std::optional<std::uint32_t> best;
        for (const auto& [r, f] : free) {
          if (f < w.slots) continue;
          if (!best.has_value() || f < free[*best]) best = r;
        }
        if (!best.has_value()) {
          feasible = false;
          break;
        }
        free[*best] -= w.slots;
        plan.emplace_back(&w, *best);
      }
      if (!feasible || plan.empty()) continue;
      for (auto& [w, target] : plan) {
        table_[src].wrank_used -= std::min(table_[src].wrank_used,
                                           w->slots);
        w->rank = kNoRank;
        place_wrank_locked(*w, target);
        charge(wrank_move_cost(
            w->slots, drv_.machine().cost().interleave_wide_gbps));
        ++stats_.consolidation_migrations;
        ++stats_.wrank_migrations;
        ++moves;
      }
      host_unbind_locked(src);
      drained = true;
      break;  // recompute sources against the new occupancy
    }
    if (!drained) break;
  }
  ++stats_.consolidation_passes;
  observe_frag_locked();
  return moves;
}

std::uint32_t Manager::fragmentation_permille() const {
  std::lock_guard lock(mu_);
  return core::fragmentation_permille(rank_views_locked(),
                                      config_.wrank_slots_per_rank);
}

void Manager::set_placement_policy(PlacementPolicyKind kind) {
  std::lock_guard lock(mu_);
  config_.placement = kind;
  policy_ = make_placement_policy(kind);
}

PlacementPolicyKind Manager::placement_policy() const {
  std::lock_guard lock(mu_);
  return config_.placement;
}

bool Manager::policy_wants_consolidation() const {
  std::lock_guard lock(mu_);
  return policy_->wants_consolidation();
}

void Manager::set_tenant_quota(const std::string& tenant,
                               std::uint32_t slots) {
  std::lock_guard lock(mu_);
  tenant_quotas_[tenant] = slots;
}

std::uint32_t Manager::tenant_slots(const std::string& tenant) const {
  std::lock_guard lock(mu_);
  const auto it = tenant_slots_.find(tenant);
  return it != tenant_slots_.end() ? it->second : 0;
}

std::vector<WrankInfo> Manager::wranks() const {
  std::lock_guard lock(mu_);
  std::vector<WrankInfo> out;
  out.reserve(wranks_.size());
  for (const Wrank& w : wranks_) {
    out.push_back({w.id, w.tenant, w.rank, w.slots});
  }
  return out;
}

void Manager::attach_histograms(obs::Histogram* alloc_ns,
                                obs::Histogram* frag) {
  std::lock_guard lock(mu_);
  alloc_hist_ = alloc_ns;
  frag_hist_ = frag;
}

}  // namespace vpim::core
