// The vPIM manager (§3.5): one per host, arbitrating physical ranks among
// VMs (and coexisting native applications).
//
// Rank life cycle (Fig 5, extended with quarantine):
//   NAAV --alloc--> ALLO --release--> NANA --reset--> NAAV
//                    ^---- realloc (same previous owner, no reset) ----'
//   any --permanent fault / seized release--> FAIL --reset-verify--> NAAV
//
// FAIL ranks are quarantined: the observer probes them with the driver's
// reset-verify pass under exponential backoff and only returns them to
// NAAV once the probe passes (see DESIGN.md fault model).
//
// Releases are *not* announced by VMs: a dedicated observer watches the
// driver's sysfs rank-status files and reacts, so native host applications
// and unmodified guests coexist (requirement R3).
//
// The Manager core is synchronous and thread-safe; ManagerService (below)
// adds the paper's 8-thread request pool and observer thread for real
// concurrent use, while deterministic benches drive the core directly and
// charge virtual time.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/cost_model.h"
#include "common/sim_clock.h"
#include "driver/driver.h"
#include "vpim/admission.h"
#include "vpim/placement.h"

namespace vpim::obs {
class Histogram;
}  // namespace vpim::obs

namespace vpim::core {

enum class RankState : std::uint8_t {
  kNaav,  // not allocated, available
  kAllo,  // allocated (to a VM device or a native application)
  kNana,  // not allocated, not available (awaiting content reset)
  kFail,  // quarantined after a fault; reset-verify before reuse
};

struct ManagerConfig {
  // Thread pool size for asynchronous request processing (§3.5).
  std::uint32_t threads = 8;
  // Wait between allocation retries when no rank is available.
  SimNs retry_wait_ns = 50 * kMs;
  std::uint32_t max_attempts = 5;
  // Charge virtual time for socket round trips, waits, and resets.
  // Disabled by the real-thread ManagerService (virtual clocks are not
  // meaningful across preemptive threads).
  bool charge_time = true;
  // Quarantine probing: first reset-verify retry waits this long after a
  // failed probe, doubling per failure up to the cap.
  SimNs quarantine_backoff_ns = 100 * kMs;
  SimNs quarantine_backoff_max_ns = 1600 * kMs;
  // An ALLO rank whose mapping was never witnessed in sysfs is declared
  // released only after staying unmapped for this long in *real* time.
  // Pass counting alone is racy: concurrent requesters spin observe(), so
  // two "unmapped" observations can land microseconds after allocation,
  // recycling a rank whose holder is still on its way to map_rank.
  std::chrono::nanoseconds unactivated_release_grace =
      std::chrono::milliseconds(50);
  // Wrank hosting (ISSUE 9): how many wrank slots one physical rank holds
  // under oversubscription. The Manager maps a rank in its own name while
  // it hosts wranks; an emptied rank goes back through the NANA reset.
  std::uint32_t wrank_slots_per_rank = 4;
  // Per-tenant slot quota for allocate/resize (0 = unlimited). Individual
  // tenants can be overridden with set_tenant_quota().
  std::uint32_t tenant_quota_slots = 0;
  // Placement policy the wrank allocator starts with (see placement.h).
  PlacementPolicyKind placement = PlacementPolicyKind::kFirstFit;
};

// Typed results of the wrank allocation vocabulary. ManagerService maps
// these 1:1 onto its wire responses (plus kShutdown, which only the
// service can produce).
enum class AllocStatus : std::uint8_t {
  kOk,
  kNoCapacity,     // retries exhausted, nothing placeable
  kQuotaExceeded,  // tenant over its slot quota — not retried
  kNotFound,       // release/resize of an unknown wrank id
  kBadRequest,     // zero or rank-exceeding slot count
  kShutdown,       // service draining its queue at stop()
};
const char* to_string(AllocStatus status);

struct AllocResult {
  AllocStatus status = AllocStatus::kNoCapacity;
  std::uint64_t wrank = 0;  // valid when status == kOk
  std::uint32_t rank = 0xFFFFFFFFu;
};

// Snapshot row for tests / benches / the consolidation pass.
struct WrankInfo {
  std::uint64_t id = 0;
  std::string tenant;
  std::uint32_t rank = 0xFFFFFFFFu;  // kNoRank when displaced by a fault
  std::uint32_t slots = 0;
};

struct ManagerStats {
  std::uint64_t allocations = 0;
  std::uint64_t reuse_hits = 0;  // NANA rank re-assigned to previous owner
  std::uint64_t resets = 0;
  std::uint64_t failed_requests = 0;
  std::uint64_t releases_observed = 0;
  // Fault handling (ISSUE 3).
  std::uint64_t quarantined = 0;         // transitions into kFail
  std::uint64_t quarantine_probes = 0;   // reset-verify attempts on kFail
  std::uint64_t recoveries = 0;          // kFail -> kNaav probe successes
  std::uint64_t seizures_observed = 0;   // ranks grabbed out from under us
  // Live wrank moves: backend fault migrations (PR 3) plus the manager's
  // own consolidation / rescue / resize moves (ISSUE 9).
  std::uint64_t wrank_migrations = 0;
  std::uint64_t fault_records_drained = 0;
  std::uint64_t status_parse_errors = 0;  // hostile/corrupt sysfs lines
  // Wrank allocation service (ISSUE 9).
  std::uint64_t wrank_allocs = 0;
  std::uint64_t wrank_releases = 0;
  std::uint64_t wrank_resizes = 0;
  std::uint64_t quota_rejections = 0;
  std::uint64_t consolidation_passes = 0;
  std::uint64_t consolidation_migrations = 0;  // packing moves only
  std::uint64_t wranks_displaced = 0;  // hosting rank quarantined under them
};

class Manager {
 public:
  // Sentinel rank index for displaced wranks (hosting rank quarantined;
  // re-placement pending).
  static constexpr std::uint32_t kNoRank = 0xFFFFFFFFu;

  Manager(driver::UpmemDriver& drv, ManagerConfig config = {});

  // Handles one allocation request from `owner` (a VM device tag).
  // Implements the §3.5 policy: previous-owner NANA rank first, then
  // round-robin over NAAV ranks, then reset-and-take a NANA rank, then
  // retry with timeout, finally abandon (nullopt).
  std::optional<std::uint32_t> request_rank(const std::string& owner);

  // --- wrank allocation vocabulary (ISSUE 9) ---------------------------
  // Oversubscribed slot allocation: a wrank of `slots` co-located slots is
  // placed on one physical rank by the active placement policy. The
  // Manager maps hosting ranks in its own name, so the sysfs observer sees
  // them busy like any other holder. Same retry-with-timeout shape as
  // request_rank; quota violations are rejected without retrying. All
  // decisions read only table state and virtual time — bit-identical at
  // any VPIM_THREADS.
  AllocResult allocate_wrank(const std::string& tenant, std::uint32_t slots);
  AllocStatus release_wrank(std::uint64_t wrank_id);
  // Grows or shrinks a wrank in place when its rank has room, otherwise
  // live-migrates it to a rank the policy picks (charging the move).
  AllocResult resize_wrank(std::uint64_t wrank_id, std::uint32_t new_slots);

  // One background consolidation pass: re-places wranks displaced off
  // quarantined ranks, then drains underfull hosting ranks onto fuller
  // ones (never onto a quarantined rank) so whole ranks free up for
  // multi-slot and exclusive requests. Returns the number of wrank moves.
  std::uint32_t consolidate();

  // Current fragmentation of the wrank population (see placement.h).
  std::uint32_t fragmentation_permille() const;

  void set_placement_policy(PlacementPolicyKind kind);
  PlacementPolicyKind placement_policy() const;
  bool policy_wants_consolidation() const;
  // Per-tenant quota override (slots; 0 = unlimited).
  void set_tenant_quota(const std::string& tenant, std::uint32_t slots);
  std::uint32_t tenant_slots(const std::string& tenant) const;
  std::vector<WrankInfo> wranks() const;

  // Observability sinks (wired by the Host): modeled allocation latency
  // per allocate/resize call, and the fragmentation level sampled after
  // every mutating wrank operation.
  void attach_histograms(obs::Histogram* alloc_ns, obs::Histogram* frag);

  // Observer pass: detects releases via sysfs (ALLO ranks whose mapping
  // disappeared -> NANA) and, when `do_resets`, erases NANA ranks
  // (-> NAAV). The real observer runs this on a polling thread.
  void observe(bool do_resets = true);

  RankState state(std::uint32_t rank) const;
  ManagerStats stats() const;
  const ManagerConfig& config() const { return config_; }

  // Marks a rank the manager should not hand out (e.g. a native app took
  // it before the manager existed). Normally discovered via observe().
  void note_external_use(std::uint32_t rank, const std::string& owner);

  // The backend lost the race to map a just-allocated rank (a native app
  // seized it): track the squatter and quarantine the rank on release.
  void note_seized(std::uint32_t rank);

  // The backend migrated a wrank off a dead rank (stats only).
  void note_wrank_migration();

  // Overload protection (ISSUE 8): attaches an AdmissionController. When
  // set, rank allocation under scarcity goes through its weighted
  // round-robin gate (a deferred attempt behaves exactly like "no rank
  // available" and takes the normal retry path), and the frontends consult
  // it for per-request admission. Null (the default) keeps the pre-ISSUE-8
  // behaviour bit-for-bit.
  void set_admission(AdmissionController* admission);
  AdmissionController* admission() const { return admission_; }

 private:
  struct Entry {
    RankState state = RankState::kNaav;
    std::string owner;       // current holder (ALLO)
    std::string last_owner;  // for NANA-affinity reuse
    // Release detection: `activated` is set once the observer has seen the
    // holder's mapping in sysfs; a release is then the mapping vanishing.
    // If the mapping appeared and disappeared entirely between polls, the
    // driver's map-generation counter (recorded at allocation) still
    // advances, so the release is detected on the next pass. A rank that
    // was *never* mapped since allocation is reclaimed only after staying
    // unmapped past the real-time unactivated_release_grace — its holder
    // may still be on its way to map_rank.
    bool activated = false;
    std::uint64_t alloc_map_gen = 0;
    bool miss_pending = false;
    std::chrono::steady_clock::time_point unmapped_since{};
    // Fault bookkeeping: a seized rank must be reset-verified (not merely
    // reset) once its squatter lets go; kFail ranks are probed with
    // exponential backoff.
    bool quarantine_on_release = false;
    SimNs probe_backoff = 0;
    SimNs next_probe = 0;
    // Wrank hosting (ISSUE 9): while the manager hosts wranks on this
    // rank it holds the driver mapping itself, so sysfs keeps the rank
    // busy and the observer treats it like any other active holder.
    std::uint32_t wrank_used = 0;
    std::optional<driver::RankMapping> host_mapping;
  };

  struct Wrank {
    std::uint64_t id = 0;
    std::string tenant;
    std::uint32_t rank = kNoRank;
    std::uint32_t slots = 0;
  };

  std::optional<std::uint32_t> try_allocate_locked(const std::string& owner);
  void reset_rank_locked(std::uint32_t rank);
  void quarantine_locked(std::uint32_t rank, SimNs now);

  // --- wrank internals (all require mu_) --------------------------------
  std::vector<RankView> rank_views_locked() const;
  // Binds `rank` for wrank hosting (reset if NANA, then map); returns the
  // modeled cost of doing so.
  SimNs host_bind_locked(std::uint32_t rank);
  // Drops the hosting mapping of an emptied rank (-> NANA, reset later).
  void host_unbind_locked(std::uint32_t rank);
  void place_wrank_locked(Wrank& w, std::uint32_t rank);
  // Re-places wranks whose hosting rank was quarantined under them.
  std::uint32_t rescue_displaced_locked();
  std::uint32_t quota_for_locked(const std::string& tenant) const;
  SimNs wrank_move_cost(std::uint32_t slots, double gbps) const;
  SimNs reset_cost_ns() const;
  void charge(SimNs ns);
  void observe_frag_locked();

  driver::UpmemDriver& drv_;
  ManagerConfig config_;
  AdmissionController* admission_ = nullptr;
  mutable std::mutex mu_;
  std::vector<Entry> table_;
  std::uint32_t rr_cursor_ = 0;  // round-robin start position
  ManagerStats stats_;
  // Wrank allocation service state (ISSUE 9).
  std::unique_ptr<PlacementPolicy> policy_;
  std::vector<Wrank> wranks_;  // ordered by id
  std::uint64_t next_wrank_id_ = 1;
  std::map<std::string, std::uint32_t> tenant_slots_;
  std::map<std::string, std::uint32_t> tenant_quotas_;
  obs::Histogram* alloc_hist_ = nullptr;
  obs::Histogram* frag_hist_ = nullptr;
};

}  // namespace vpim::core
