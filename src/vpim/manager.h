// The vPIM manager (§3.5): one per host, arbitrating physical ranks among
// VMs (and coexisting native applications).
//
// Rank life cycle (Fig 5, extended with quarantine):
//   NAAV --alloc--> ALLO --release--> NANA --reset--> NAAV
//                    ^---- realloc (same previous owner, no reset) ----'
//   any --permanent fault / seized release--> FAIL --reset-verify--> NAAV
//
// FAIL ranks are quarantined: the observer probes them with the driver's
// reset-verify pass under exponential backoff and only returns them to
// NAAV once the probe passes (see DESIGN.md fault model).
//
// Releases are *not* announced by VMs: a dedicated observer watches the
// driver's sysfs rank-status files and reacts, so native host applications
// and unmodified guests coexist (requirement R3).
//
// The Manager core is synchronous and thread-safe; ManagerService (below)
// adds the paper's 8-thread request pool and observer thread for real
// concurrent use, while deterministic benches drive the core directly and
// charge virtual time.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/cost_model.h"
#include "common/sim_clock.h"
#include "driver/driver.h"
#include "vpim/admission.h"

namespace vpim::core {

enum class RankState : std::uint8_t {
  kNaav,  // not allocated, available
  kAllo,  // allocated (to a VM device or a native application)
  kNana,  // not allocated, not available (awaiting content reset)
  kFail,  // quarantined after a fault; reset-verify before reuse
};

struct ManagerConfig {
  // Thread pool size for asynchronous request processing (§3.5).
  std::uint32_t threads = 8;
  // Wait between allocation retries when no rank is available.
  SimNs retry_wait_ns = 50 * kMs;
  std::uint32_t max_attempts = 5;
  // Charge virtual time for socket round trips, waits, and resets.
  // Disabled by the real-thread ManagerService (virtual clocks are not
  // meaningful across preemptive threads).
  bool charge_time = true;
  // Quarantine probing: first reset-verify retry waits this long after a
  // failed probe, doubling per failure up to the cap.
  SimNs quarantine_backoff_ns = 100 * kMs;
  SimNs quarantine_backoff_max_ns = 1600 * kMs;
  // An ALLO rank whose mapping was never witnessed in sysfs is declared
  // released only after staying unmapped for this long in *real* time.
  // Pass counting alone is racy: concurrent requesters spin observe(), so
  // two "unmapped" observations can land microseconds after allocation,
  // recycling a rank whose holder is still on its way to map_rank.
  std::chrono::nanoseconds unactivated_release_grace =
      std::chrono::milliseconds(50);
};

struct ManagerStats {
  std::uint64_t allocations = 0;
  std::uint64_t reuse_hits = 0;  // NANA rank re-assigned to previous owner
  std::uint64_t resets = 0;
  std::uint64_t failed_requests = 0;
  std::uint64_t releases_observed = 0;
  // Fault handling (ISSUE 3).
  std::uint64_t quarantined = 0;         // transitions into kFail
  std::uint64_t quarantine_probes = 0;   // reset-verify attempts on kFail
  std::uint64_t recoveries = 0;          // kFail -> kNaav probe successes
  std::uint64_t seizures_observed = 0;   // ranks grabbed out from under us
  std::uint64_t wrank_migrations = 0;  // backend moved wrank off dead rank
  std::uint64_t fault_records_drained = 0;
  std::uint64_t status_parse_errors = 0;  // hostile/corrupt sysfs lines
};

class Manager {
 public:
  Manager(driver::UpmemDriver& drv, ManagerConfig config = {});

  // Handles one allocation request from `owner` (a VM device tag).
  // Implements the §3.5 policy: previous-owner NANA rank first, then
  // round-robin over NAAV ranks, then reset-and-take a NANA rank, then
  // retry with timeout, finally abandon (nullopt).
  std::optional<std::uint32_t> request_rank(const std::string& owner);

  // Observer pass: detects releases via sysfs (ALLO ranks whose mapping
  // disappeared -> NANA) and, when `do_resets`, erases NANA ranks
  // (-> NAAV). The real observer runs this on a polling thread.
  void observe(bool do_resets = true);

  RankState state(std::uint32_t rank) const;
  ManagerStats stats() const;

  // Marks a rank the manager should not hand out (e.g. a native app took
  // it before the manager existed). Normally discovered via observe().
  void note_external_use(std::uint32_t rank, const std::string& owner);

  // The backend lost the race to map a just-allocated rank (a native app
  // seized it): track the squatter and quarantine the rank on release.
  void note_seized(std::uint32_t rank);

  // The backend migrated a wrank off a dead rank (stats only).
  void note_wrank_migration();

  // Overload protection (ISSUE 8): attaches an AdmissionController. When
  // set, rank allocation under scarcity goes through its weighted
  // round-robin gate (a deferred attempt behaves exactly like "no rank
  // available" and takes the normal retry path), and the frontends consult
  // it for per-request admission. Null (the default) keeps the pre-ISSUE-8
  // behaviour bit-for-bit.
  void set_admission(AdmissionController* admission);
  AdmissionController* admission() const { return admission_; }

 private:
  struct Entry {
    RankState state = RankState::kNaav;
    std::string owner;       // current holder (ALLO)
    std::string last_owner;  // for NANA-affinity reuse
    // Release detection: `activated` is set once the observer has seen the
    // holder's mapping in sysfs; a release is then the mapping vanishing.
    // If the mapping appeared and disappeared entirely between polls, the
    // driver's map-generation counter (recorded at allocation) still
    // advances, so the release is detected on the next pass. A rank that
    // was *never* mapped since allocation is reclaimed only after staying
    // unmapped past the real-time unactivated_release_grace — its holder
    // may still be on its way to map_rank.
    bool activated = false;
    std::uint64_t alloc_map_gen = 0;
    bool miss_pending = false;
    std::chrono::steady_clock::time_point unmapped_since{};
    // Fault bookkeeping: a seized rank must be reset-verified (not merely
    // reset) once its squatter lets go; kFail ranks are probed with
    // exponential backoff.
    bool quarantine_on_release = false;
    SimNs probe_backoff = 0;
    SimNs next_probe = 0;
  };

  std::optional<std::uint32_t> try_allocate_locked(const std::string& owner);
  void reset_rank_locked(std::uint32_t rank);
  void quarantine_locked(std::uint32_t rank, SimNs now);

  driver::UpmemDriver& drv_;
  ManagerConfig config_;
  AdmissionController* admission_ = nullptr;
  mutable std::mutex mu_;
  std::vector<Entry> table_;
  std::uint32_t rr_cursor_ = 0;  // round-robin start position
  ManagerStats stats_;
};

}  // namespace vpim::core
