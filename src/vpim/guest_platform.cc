#include "vpim/guest_platform.h"

#include "common/error.h"

namespace vpim::core {

namespace {

class VirtRankDevice : public sdk::RankDevice {
 public:
  explicit VirtRankDevice(Frontend& frontend) : frontend_(frontend) {}
  ~VirtRankDevice() override { frontend_.close(); }

  std::uint32_t nr_dpus() override { return frontend_.nr_dpus(); }

  void load(std::string_view kernel_name) override {
    frontend_.ci_load(kernel_name);
  }
  void launch(std::uint64_t dpu_mask,
              std::optional<std::uint32_t> nr_tasklets) override {
    frontend_.ci_launch(dpu_mask, nr_tasklets);
  }
  std::uint64_t running_mask() override {
    return frontend_.ci_running_mask();
  }
  void transfer(const driver::TransferMatrix& matrix) override {
    if (matrix.direction == driver::XferDirection::kToRank) {
      frontend_.write_to_rank(matrix);
    } else {
      frontend_.read_from_rank(matrix);
    }
  }
  void broadcast(std::uint64_t mram_offset,
                 std::span<const std::uint8_t> data) override {
    // The SDK's broadcast becomes one write matrix whose entries all
    // reference the same guest pages; the backend detects the pattern.
    driver::TransferMatrix matrix;
    matrix.direction = driver::XferDirection::kToRank;
    auto* host = const_cast<std::uint8_t*>(data.data());
    for (std::uint32_t d = 0; d < frontend_.nr_dpus(); ++d) {
      matrix.entries.push_back({d, mram_offset, host, data.size()});
    }
    frontend_.write_to_rank(matrix);
  }
  void copy_to_symbol(std::uint32_t dpu, std::string_view symbol,
                      std::uint32_t offset,
                      std::span<const std::uint8_t> data) override {
    frontend_.ci_copy_to_symbol(dpu, symbol, offset, data);
  }
  void copy_from_symbol(std::uint32_t dpu, std::string_view symbol,
                        std::uint32_t offset,
                        std::span<std::uint8_t> out) override {
    frontend_.ci_copy_from_symbol(dpu, symbol, offset, out);
  }
  void push_symbols(driver::XferDirection dir, std::string_view symbol,
                    std::uint32_t offset, std::span<std::uint8_t> packed,
                    std::uint32_t bytes_per_dpu) override {
    frontend_.ci_push_symbols(dir, symbol, offset, packed, bytes_per_dpu);
  }

 private:
  Frontend& frontend_;
};

}  // namespace

std::vector<std::unique_ptr<sdk::RankDevice>> GuestPlatform::alloc_ranks(
    std::uint32_t nr_ranks) {
  std::vector<std::unique_ptr<sdk::RankDevice>> out;
  for (std::uint32_t i = 0; i < vm_.nr_devices() && out.size() < nr_ranks;
       ++i) {
    Frontend& frontend = vm_.device(i).frontend;
    if (frontend.is_open()) continue;  // already handed out
    VPIM_CHECK(frontend.open(),
               "manager could not provide a rank for " +
                   vm_.vmm().name());
    out.push_back(std::make_unique<VirtRankDevice>(frontend));
  }
  VPIM_CHECK(out.size() == nr_ranks,
             "VM does not have enough unbound vUPMEM devices");
  return out;
}

}  // namespace vpim::core
