// A booted microVM with vUPMEM devices attached — the unit cloud users get
// (§3.2/§3.3: resources, including the number of vUPMEM devices, are
// declared to the Firecracker API server at VM-create time).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "vmm/vmm.h"
#include "vpim/config.h"
#include "vpim/device.h"
#include "vpim/host.h"

namespace vpim::core {

class VpimVm {
 public:
  VpimVm(Host& host, vmm::VmmParams params, std::uint32_t nr_vupmem_devices,
         const VpimConfig& config = VpimConfig::full())
      : config_(config) {
    params.parallel_handling = config.parallel_handling;
    vmm_ = std::make_unique<vmm::Vmm>(params, host.clock, host.cost);
    boot_duration_ = vmm_->boot(nr_vupmem_devices);
    devices_.reserve(nr_vupmem_devices);
    for (std::uint32_t i = 0; i < nr_vupmem_devices; ++i) {
      devices_.push_back(std::make_unique<VupmemDevice>(
          *vmm_, host.drv, host.manager, config,
          params.name + "/vupmem" + std::to_string(i), host.obs));
    }
  }

  vmm::Vmm& vmm() { return *vmm_; }
  std::uint32_t nr_devices() const {
    return static_cast<std::uint32_t>(devices_.size());
  }
  VupmemDevice& device(std::uint32_t i) {
    VPIM_CHECK(i < devices_.size(), "device index out of range");
    return *devices_[i];
  }
  SimNs boot_duration() const { return boot_duration_; }
  const VpimConfig& config() const { return config_; }

 private:
  VpimConfig config_;
  std::unique_ptr<vmm::Vmm> vmm_;
  std::vector<std::unique_ptr<VupmemDevice>> devices_;
  SimNs boot_duration_ = 0;
};

}  // namespace vpim::core
