// Admission control for multi-tenant overload protection (ISSUE 8).
//
// The paper's §3.5 manager assumes a polite tenant population; under heavy
// traffic a single greedy tenant can queue unbounded work and drag every
// other VM's tail latency. The AdmissionController sits next to the
// Manager and makes three kinds of *typed, non-blocking* decisions:
//
//   - per-tenant token buckets (rate + burst) -> kAdmissionReject when a
//     tenant submits faster than its contracted rate;
//   - a global in-flight budget -> kOverloaded (would-block) when the host
//     as a whole has too much admitted-but-uncompleted work;
//   - weighted round-robin fairness over *rank grants*: under
//     oversubscription, a tenant whose share of rank allocations is ahead
//     of its weight defers to contending tenants with a smaller share.
//
// Determinism: every decision reads only virtual time (SimNs passed by the
// caller) and counters mutated on the serial request path. Nothing here
// reads the wall clock, thread identity, or any other source that could
// differ across VPIM_THREADS settings, so admission decisions are
// bit-identical across host thread counts (see DESIGN.md §5f).
//
// Thread safety: all entry points take an internal mutex, same discipline
// as FaultPlan — callable from concurrent serial sections, but decisions
// that should be deterministic must be made from serial code.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "virtio/pim_spec.h"

namespace vpim::obs {
class Histogram;
}  // namespace vpim::obs

namespace vpim::core {

struct AdmissionConfig {
  // Per-tenant token bucket: sustained rate (requests per virtual second)
  // and burst capacity. A fresh session starts with a full bucket.
  std::uint64_t tokens_per_sec = 1000;
  std::uint64_t bucket_burst = 32;
  // Global in-flight budget: admitted requests that have not completed.
  std::uint32_t global_inflight_budget = 64;
  // Fairness: a session counts as *contending* for ranks if it asked for
  // one within this much virtual time; only contenders can defer a grant.
  SimNs fairness_window_ns = 500 * kMs;
};

// Mutex-guarded snapshot, mirroring ManagerStats.
struct AdmissionStats {
  std::uint64_t admitted = 0;
  std::uint64_t shed_tenant = 0;    // token bucket empty -> ADMISSION_REJECT
  std::uint64_t shed_global = 0;    // in-flight budget full -> OVERLOADED
  std::uint64_t completed = 0;      // admitted requests released
  std::uint64_t fairness_deferrals = 0;  // rank grants deferred by WRR
  std::uint64_t inflight = 0;       // current admitted-but-uncompleted
  std::uint64_t sessions = 0;       // tenant sessions ever seen
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config = {});

  // Per-request admission at submit time. Returns virtio::PimStatus::kOk,
  // kAdmissionReject (tenant over rate) or kOverloaded (global budget
  // full). Never blocks, never throws. On kOk the request counts against
  // the global in-flight budget until complete() is called.
  virtio::PimStatus try_admit(const std::string& tenant, SimNs now);

  // Releases one admitted request and records its queued time (admit ->
  // completion reap) in the queued-time histogram when one is attached.
  void complete(SimNs now, SimNs queued_ns);

  // Weighted round-robin gate for rank allocation under oversubscription:
  // true if `tenant` currently holds the smallest weighted share of rank
  // grants among contending sessions (ties allowed), false to defer this
  // attempt to a needier tenant. Callers treat false like "no rank
  // available right now" and go through their normal retry path.
  bool allow_rank_grant(const std::string& tenant, SimNs now);
  // Charges a granted rank to the tenant's WRR share. The slot-counted
  // overload is for the oversubscribed wrank path (ISSUE 9): a 4-slot
  // co-located grant consumes 4x the share of a 1-slot one, so quota-rich
  // tenants cannot dodge fairness by asking for fat wranks.
  void on_rank_granted(const std::string& tenant);
  void on_rank_granted(const std::string& tenant, std::uint32_t slots);

  // Deadline-shed accounting (backend boundary checks): how far past its
  // deadline a request was when the device shed it.
  void note_shed_lateness(SimNs lateness_ns);

  // Tenant weights for the WRR policy (default 1; 0 is clamped to 1).
  void set_tenant_weight(const std::string& tenant, std::uint32_t weight);

  AdmissionStats stats() const;
  const AdmissionConfig& config() const { return config_; }

  // Optional observability sinks (registered by the Host on the metrics
  // registry; histograms cannot be published through collectors).
  void attach_histograms(obs::Histogram* queued_ns,
                         obs::Histogram* shed_lateness_ns);

 private:
  // Token-bucket state is kept in nano-tokens (1 token = 1e9 units) so the
  // refill `elapsed_ns * tokens_per_sec` is exact integer arithmetic —
  // no float drift across platforms, which the determinism contract needs.
  static constexpr std::uint64_t kNanoToken = 1'000'000'000ull;
  // WRR virtual-time scale: each grant advances a session's share by
  // kVtScale / weight, so comparisons stay in exact integer math.
  static constexpr std::uint64_t kVtScale = 720720;  // lcm(1..13)ish

  struct Session {
    std::string tenant;
    std::uint32_t weight = 1;
    std::uint64_t tokens = 0;        // nano-tokens
    SimNs last_refill = 0;
    std::uint64_t rank_vtime = 0;    // WRR weighted share of rank grants
    SimNs last_contend = -1;         // last allow_rank_grant call, -1 never
  };

  Session& session_locked(const std::string& tenant);
  void refill_locked(Session& s, SimNs now);

  AdmissionConfig config_;
  mutable std::mutex mu_;
  std::vector<Session> sessions_;
  AdmissionStats stats_;
  obs::Histogram* queued_hist_ = nullptr;
  obs::Histogram* shed_hist_ = nullptr;
};

}  // namespace vpim::core
