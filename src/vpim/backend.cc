#include "vpim/backend.h"

#include <array>
#include <cstring>

#include "common/error.h"
#include "common/log.h"
#include "common/thread_pool.h"
#include "upmem/layout.h"

namespace vpim::core {

namespace {
template <typename T>
T read_pod(const std::uint8_t* src) {
  T value;
  std::memcpy(&value, src, sizeof(T));
  return value;
}
}  // namespace

Backend::Backend(vmm::Vmm& vmm, driver::UpmemDriver& drv, Manager& manager,
                 const VpimConfig& config, virtio::Virtqueue& transferq,
                 virtio::Virtqueue& controlq, virtio::DeviceState& state,
                 DeviceStats& stats, std::string device_tag, obs::Hub& obs)
    : vmm_(vmm),
      drv_(drv),
      manager_(manager),
      config_(config),
      transferq_(transferq),
      controlq_(controlq),
      state_(state),
      stats_(stats),
      tag_(std::move(device_tag)),
      obs_(obs) {}

std::uint32_t Backend::rank_index() const {
  VPIM_CHECK(mapping_.has_value(),
             "device is not linked to a physical rank");
  return mapping_->rank_index();
}

upmem::Rank& Backend::bound_rank() {
  if (mapping_.has_value()) {
    return drv_.machine().rank(mapping_->rank_index());
  }
  VPIM_CHECK(emulated_ != nullptr, "device is not linked to a rank");
  return emulated_->rank;
}

virtio::PimConfigSpace Backend::config_space() const {
  VPIM_CHECK(bound(), "device is not linked to a rank");
  virtio::PimConfigSpace cfg;
  if (mapping_.has_value()) {
    cfg.nr_dpus = drv_.machine().rank(mapping_->rank_index()).nr_dpus();
    cfg.dpu_freq_mhz =
        static_cast<std::uint32_t>(drv_.machine().cost().dpu_hz / 1e6);
  } else {
    cfg.nr_dpus = emulated_->rank.nr_dpus();
    cfg.dpu_freq_mhz =
        static_cast<std::uint32_t>(emulated_->cost.dpu_hz / 1e6);
  }
  cfg.clock_division = 2;
  cfg.nr_control_interfaces = upmem::kChipsPerRank;
  cfg.mram_bytes_per_dpu = upmem::kMramSize;
  cfg.power_state = 0;
  return cfg;
}

driver::DataPath Backend::data_path() const {
  driver::DataPath path;
  path.naive = !config_.c_enhancement;
  if (config_.c_enhancement) {
    // Wide kernels, but gathering from scattered guest pages.
    path.gbps_override = drv_.machine().cost().scattered_copy_gbps;
  }
  return path;
}

bool Backend::try_bind() {
  if (bound()) return true;
  for (int attempt = 0; attempt < 2; ++attempt) {
    const auto rank = manager_.request_rank(tag_);
    if (!rank.has_value()) break;
    try {
      mapping_ = drv_.map_rank(*rank, tag_);
    } catch (const VpimError&) {
      // Lost the race: a native app seized the rank between allocation and
      // mapping. Tell the manager and ask again.
      manager_.note_seized(*rank);
      continue;
    }
    mapping_->set_data_path(data_path());
    return true;
  }
  if (!config_.oversubscribe) return false;
  // Oversubscription (§7): fall back to a host-emulated rank running at
  // reduced performance. Mirrors the geometry of a physical rank.
  emulated_ = std::make_unique<EmulatedRank>(
      vmm_.cost(), vmm_.clock(),
      drv_.machine().rank(0).nr_dpus());
  // The emulated rank is constructed outside the machine, so it must be
  // wired into the observability hub explicitly to emit launch spans.
  emulated_->rank.set_obs(drv_.machine().obs());
  ++stats_.emulated_binds;
  return true;
}

double Backend::batch_gbps() const {
  if (emulated_ != nullptr) return vmm_.cost().emulated_copy_gbps;
  return config_.c_enhancement ? vmm_.cost().scattered_copy_gbps
                               : vmm_.cost().interleave_naive_gbps;
}

driver::CopyBacklog* Backend::defer_sink() {
  if (!mapping_.has_value()) return nullptr;
  if (drv_.machine().fault_plan() != nullptr) return nullptr;
  return &backlog_;
}

void Backend::data_transfer(const driver::TransferMatrix& matrix) {
  if (mapping_.has_value()) {
    mapping_->transfer(matrix, defer_sink());
    return;
  }
  // Emulated rank: plain host-memory copies, no interleave transform.
  const CostModel& cost = vmm_.cost();
  const std::uint64_t bytes = matrix.total_bytes();
  VPIM_CHECK(bytes <= upmem::kMaxXferBytes,
             "rank operations move at most 4 GiB");
  vmm_.clock().advance(cost.native_xfer_fixed_ns +
                       CostModel::bytes_time(bytes,
                                             cost.emulated_copy_gbps));
  upmem::Rank& rank = emulated_->rank;
  // Same per-bank fan-out as the physical path (RankMapping::transfer):
  // entries for one DPU replay in order, distinct banks run host-parallel.
  std::array<int, upmem::kDpuSlotsPerRank> slot;
  slot.fill(-1);
  std::vector<std::vector<const driver::XferEntry*>> groups;
  for (const driver::XferEntry& e : matrix.entries) {
    if (e.size == 0) continue;
    VPIM_CHECK(e.dpu < upmem::kDpuSlotsPerRank,
               "transfer entry targets an invalid DPU slot");
    int& g = slot[e.dpu];
    if (g < 0) {
      g = static_cast<int>(groups.size());
      groups.emplace_back();
    }
    groups[g].push_back(&e);
  }
  const bool to_rank = matrix.direction == driver::XferDirection::kToRank;
  vmm_.pool().parallel_for(groups.size(), [&](std::size_t gi) {
    for (const driver::XferEntry* e : groups[gi]) {
      if (to_rank) {
        rank.mram(e->dpu).write(e->mram_offset, {e->host, e->size});
      } else {
        rank.mram(e->dpu).read(e->mram_offset, {e->host, e->size});
      }
    }
  });
}

void Backend::data_broadcast(std::uint64_t mram_offset,
                             std::span<const std::uint8_t> data) {
  if (mapping_.has_value()) {
    mapping_->broadcast(mram_offset, data);
    return;
  }
  const CostModel& cost = vmm_.cost();
  upmem::Rank& rank = emulated_->rank;
  vmm_.clock().advance(
      cost.native_xfer_fixed_ns +
      CostModel::bytes_time(data.size() * rank.nr_dpus(),
                            cost.emulated_copy_gbps));
  // Same copy-on-write page sharing as the physical broadcast path; banks
  // are independent, so the per-DPU loop fans out over the pool.
  const bool aligned = (mram_offset % upmem::kMramPageSize) == 0;
  const std::size_t full_pages = data.size() / upmem::kMramPageSize;
  if (aligned && full_pages > 0) {
    const std::size_t shared = full_pages * upmem::kMramPageSize;
    auto pages = upmem::MramBank::build_pages(data.first(shared));
    vmm_.pool().parallel_for(rank.nr_dpus(), [&](std::size_t d) {
      const auto dpu = static_cast<std::uint32_t>(d);
      rank.mram(dpu).adopt_pages(mram_offset, pages);
      if (shared < data.size()) {
        rank.mram(dpu).write(mram_offset + shared, data.subspan(shared));
      }
    });
  } else {
    vmm_.pool().parallel_for(rank.nr_dpus(), [&](std::size_t d) {
      rank.mram(static_cast<std::uint32_t>(d)).write(mram_offset, data);
    });
  }
}

void Backend::check_deadline(const WireRequest& req) {
  if (req.deadline_ns == 0) return;
  const SimNs now = vmm_.clock().now();
  const auto deadline = static_cast<SimNs>(req.deadline_ns);
  if (now <= deadline) return;
  ++stats_.deadline_shed;
  if (AdmissionController* adm = manager_.admission()) {
    adm->note_shed_lateness(now - deadline);
  }
  throw VpimStatusError(virtio::PimStatus::kTimeout,
                        "request deadline expired; work shed");
}

std::optional<FaultRecord> Backend::lost_completion() {
  FaultPlan* plan = drv_.machine().fault_plan();
  if (plan == nullptr || !mapping_.has_value()) return std::nullopt;
  return plan->on_request(mapping_->rank_index(), vmm_.clock().now());
}

void Backend::run_with_recovery(OpRef op) {
  std::uint32_t attempt = 0;
  for (;;) {
    try {
      op();
      return;
    } catch (const FaultError& e) {
      drv_.log_fault(e.record());
      if (e.transient()) {
        if (attempt < config_.fault_max_retries) {
          // Exponential backoff before touching the rank again.
          vmm_.clock().advance(vmm_.cost().fault_retry_backoff_ns
                               << attempt);
          ++attempt;
          ++stats_.fault_retries;
          continue;
        }
        ++stats_.fault_failures;
        throw VpimStatusError(
            virtio::PimStatus::kDeviceFault,
            std::string("transient fault persisted: ") + e.what());
      }
      if (e.record().kind == FaultKind::kRankDeath &&
          mapping_.has_value() && recover_rank_death()) {
        attempt = 0;  // fresh rank, fresh retry budget
        continue;
      }
      // Unrecoverable: drop a dead binding so later requests complete
      // UNBOUND instead of re-faulting, then fail this one typed.
      if (mapping_.has_value() &&
          e.record().kind == FaultKind::kRankDeath) {
        unbind();
      }
      ++stats_.fault_failures;
      throw VpimStatusError(
          virtio::PimStatus::kDeviceFault,
          std::string("unrecoverable device fault: ") + e.what());
    }
  }
}

bool Backend::recover_rank_death() {
  const std::uint32_t dead = mapping_->rank_index();
  upmem::Rank& src = drv_.machine().rank(dead);
  if (src.ci_any_running()) return false;  // in-flight kernels are lost
  // Keep the dead mapping held while asking for a replacement so the
  // manager cannot hand the dead rank straight back.
  const auto replacement = manager_.request_rank(tag_);
  if (!replacement.has_value()) return false;
  std::optional<driver::RankMapping> new_mapping;
  try {
    new_mapping = drv_.map_rank(*replacement, tag_);
  } catch (const VpimError&) {
    manager_.note_seized(*replacement);
    return false;
  }
  new_mapping->set_data_path(data_path());
  upmem::Rank& dst = drv_.machine().rank(*replacement);
  // Rescue stream: every bank read off the dying rank at degraded
  // bandwidth, then written into the replacement.
  const std::uint64_t bytes = 2ULL * src.nr_dpus() * upmem::kMramSize;
  vmm_.clock().advance(
      CostModel::bytes_time(bytes, vmm_.cost().rank_rescue_gbps));
  dst.clone_state_from(src);
  mapping_.reset();  // free the dead rank; its sysfs health stays failed
  mapping_ = std::move(new_mapping);
  ++stats_.fault_migrations;
  manager_.note_wrank_migration();
  VPIM_WARN("backend", "%s: wrank migrated off dead rank %u onto rank %u",
            tag_.c_str(), dead, *replacement);
  return true;
}

void Backend::handle_transferq() {
  VPIM_CHECK(state_.driver_ok(),
             "queue notification before DRIVER_OK (virtio 1.x 3.1)");
  while (transferq_.pop_avail_into(chain_scratch_)) {
    handle_one(chain_scratch_);
  }
  // Replay the whole drain's deferred copies in one fan-out before the
  // completion interrupt: every response already pushed becomes physically
  // true here, before the guest can observe it.
  backlog_.flush();
}

void Backend::handle_controlq() {
  VPIM_CHECK(state_.driver_ok(),
             "queue notification before DRIVER_OK (virtio 1.x 3.1)");
  // Defensive: control ops (migrate/suspend snapshots) read bank contents,
  // so any copies still parked from a transfer drain must land first. The
  // frontend always drains its SQ before a control round trip, so this is
  // normally a no-op.
  backlog_.flush();
  while (controlq_.pop_avail_into(chain_scratch_)) {
    const virtio::DescChain& chain = chain_scratch_;
    obs::ScopedSpan span(tracer(), vmm_.clock(),
                         obs::SpanKind::kBackendRequest);
    try {
      const WireRequest req = read_request(chain);
      span.set_request(req.request_id);
      handle_control(chain, req);
    } catch (const VpimStatusError& e) {
      complete_with_status(controlq_, chain, e.status());
    } catch (const FaultError& e) {
      // Control-path faults (e.g. kMigrateRank touching a dead rank) have
      // no retry wrapper; surface them typed instead of as BAD_REQUEST.
      drv_.log_fault(e.record());
      ++stats_.fault_failures;
      complete_with_status(
          controlq_, chain,
          static_cast<std::int32_t>(virtio::PimStatus::kDeviceFault));
    } catch (const VpimError&) {
      complete_with_status(
          controlq_, chain,
          static_cast<std::int32_t>(virtio::PimStatus::kBadRequest));
    }
  }
}

WireRequest Backend::read_request(const virtio::DescChain& chain) {
  VPIM_REQUEST_CHECK(!chain.descs.empty() &&
                         chain.descs[0].len >= sizeof(WireRequest),
                     virtio::PimStatus::kBadRequest,
                     "first descriptor too small for a request block");
  return read_pod<WireRequest>(
      vmm_.memory().hva_range(chain.descs[0].addr, sizeof(WireRequest)));
}

void Backend::complete_with_status(virtio::Virtqueue& queue,
                                   const virtio::DescChain& chain,
                                   std::int32_t status) {
  WireResponse resp;
  resp.status = status;
  std::uint32_t written = 0;
  try {
    write_response(chain, resp);
    written = sizeof(WireResponse);
  } catch (const VpimError&) {
    // No usable response buffer in the chain. Complete with zero length
    // anyway: the guest can at least reclaim its descriptors.
  }
  queue.push_used(chain.head, written);
  ++stats_.request_errors;
}

void Backend::handle_one(const virtio::DescChain& chain) {
  if (auto lost = lost_completion()) {
    // Injected lost completion: the device wedges on this request. No
    // response, no push_used — the chain's descriptors stay outstanding
    // and the frontend's poll deadline is what recovers the guest.
    drv_.log_fault(*lost);
    ++stats_.dropped_completions;
    return;
  }
  obs::ScopedSpan span(tracer(), vmm_.clock(),
                       obs::SpanKind::kBackendRequest);
  try {
    const WireRequest req = read_request(chain);
    span.set_request(req.request_id);
    if (mapping_.has_value()) span.set_rank(mapping_->rank_index());
    if ((req.flags & kWireFlagCancelled) != 0) {
      // The guest cancelled this request after staging it: complete the
      // chain typed without executing any of the work.
      ++stats_.cancelled;
      throw VpimStatusError(virtio::PimStatus::kCancelled,
                            "request cancelled by the guest");
    }
    check_deadline(req);
    switch (static_cast<virtio::PimRequestType>(req.type)) {
      case virtio::PimRequestType::kWriteToRank:
      case virtio::PimRequestType::kReadFromRank:
        handle_rank_op(chain, req);
        return;
      case virtio::PimRequestType::kCiWrite:
      case virtio::PimRequestType::kCiRead:
        handle_ci(chain, req);
        return;
      case virtio::PimRequestType::kConfig:
        handle_config(chain);
        return;
    }
    // No default in the switch so -Wswitch keeps the known cases in sync;
    // an unrecognized type must still complete, or the guest's poll_used
    // spins forever while the descriptors leak.
    throw VpimStatusError(virtio::PimStatus::kBadRequest,
                          "unknown request type " + std::to_string(req.type));
  } catch (const VpimStatusError& e) {
    complete_with_status(transferq_, chain, e.status());
  } catch (const FaultError& e) {
    // Safety net for injected faults raised outside run_with_recovery
    // (e.g. a dead rank hit by a path that does not retry).
    drv_.log_fault(e.record());
    ++stats_.fault_failures;
    complete_with_status(
        transferq_, chain,
        static_cast<std::int32_t>(virtio::PimStatus::kDeviceFault));
  } catch (const VpimError&) {
    // A deeper layer rejected guest-controlled input (GPA outside RAM,
    // MRAM bounds, unknown symbol, busy DPU, ...): per-request failure,
    // never fatal to the device model.
    complete_with_status(
        transferq_, chain,
        static_cast<std::int32_t>(virtio::PimStatus::kBadRequest));
  }
}

void Backend::handle_rank_op(const virtio::DescChain& chain,
                             const WireRequest& req) {
  VPIM_REQUEST_CHECK(bound(), virtio::PimStatus::kUnbound,
                     "rank operation on a device not linked to a rank");
  SimClock& clock = vmm_.clock();
  const CostModel& cost = vmm_.cost();
  const bool is_write =
      req.type == static_cast<std::uint32_t>(
                      virtio::PimRequestType::kWriteToRank);
  VPIM_REQUEST_CHECK(
      req.direction == static_cast<std::uint32_t>(
                           is_write ? driver::XferDirection::kToRank
                                    : driver::XferDirection::kFromRank),
      virtio::PimStatus::kBadRequest,
      "request type disagrees with transfer direction");

  // -- Deserialization + GPA->HVA translation (Fig 13 "Deser") ----------
  const SimNs deser_start = clock.now();
  obs::ScopedSpan deser_span(tracer(), clock, obs::SpanKind::kDeserialize);
  deserialize_matrix(chain, vmm_.memory(), deser_result_, deser_scratch_);
  const DeserializeResult& matrix = deser_result_;
  // Entries must fit the bound rank before anything touches MRAM.
  upmem::Rank& rank = bound_rank();
  for (const DeserializedEntry& e : matrix.entries) {
    VPIM_REQUEST_CHECK(e.dpu < rank.nr_dpus(),
                       virtio::PimStatus::kBadRequest,
                       "entry targets a DPU beyond the bound rank");
    VPIM_REQUEST_CHECK(e.mram_offset <= upmem::kMramSize &&
                           e.size <= upmem::kMramSize - e.mram_offset,
                       virtio::PimStatus::kBadRequest,
                       "entry falls outside the MRAM bank");
  }
  clock.advance(cost.deserialize_ns_per_page * matrix.nr_pages +
                cost.per_dpu_metadata_ns * matrix.entries.size());
  clock.advance(cost.gpa_translate_ns_per_page * matrix.nr_pages /
                std::max<std::uint32_t>(1, cost.translate_threads));
  if (is_write) {
    stats_.wsteps.add(WrankStep::kDeserialize, clock.now() - deser_start);
  }
  deser_span.set_bytes(matrix.total_bytes);
  deser_span.set_entries(static_cast<std::uint32_t>(matrix.entries.size()));
  deser_span.close();

  // Deserialization may have consumed the remaining deadline budget; shed
  // before the (much more expensive) data movement starts.
  check_deadline(req);

  // -- Data movement (Fig 13 "T-data") -----------------------------------
  const SimNs data_start = clock.now();
  // Covers scheduling, the movement itself, and any fault retries; the
  // kind is refined to batch/broadcast once the shape is known. Driver
  // xfer spans nest underneath.
  obs::ScopedSpan data_span(tracer(), clock, obs::SpanKind::kTransferData);
  data_span.set_bytes(matrix.total_bytes);
  data_span.set_entries(static_cast<std::uint32_t>(matrix.entries.size()));
  // Per-chip operation workers walk the matrix 8 DPUs at a time.
  const auto entry_batches =
      (matrix.entries.size() + cost.backend_op_threads - 1) /
      std::max<std::uint32_t>(1, cost.backend_op_threads);
  clock.advance(entry_batches * cost.backend_per_entry_ns);

  // Faults fire at the serial RankMapping entry points inside; recovery
  // re-runs the whole movement block so a migrated binding is re-resolved.
  run_with_recovery([&] {
    if ((req.flags & kWireFlagBatched) != 0) {
      data_span.set_kind(obs::SpanKind::kBatchApply);
      backlog_.flush();  // batch records write banks outside the backlog
      apply_batched_writes(matrix);
      return;
    }
    // Detect broadcast: every entry targets the same offset/size through
    // the same guest segment. Translation already merged contiguous pages,
    // so a broadcast shows up as one identical single-segment entry per
    // DPU — straight span comparisons, no per-request scratch.
    bool broadcast = matrix.direction == driver::XferDirection::kToRank &&
                     matrix.entries.size() == bound_rank().nr_dpus() &&
                     matrix.entries.size() > 1 &&
                     matrix.entries[0].segments.size() == 1;
    if (broadcast) {
      const DeserializedEntry& head = matrix.entries[0];
      for (const auto& e : matrix.entries) {
        if (e.mram_offset != head.mram_offset || e.size != head.size ||
            e.segments.size() != 1 || e.segments[0] != head.segments[0]) {
          broadcast = false;
          break;
        }
      }
    }
    if (broadcast) {
      data_span.set_kind(obs::SpanKind::kBroadcast);
      backlog_.flush();  // broadcasts write banks outside the backlog
      const HvaSegment& seg = matrix.entries[0].segments[0];
      data_broadcast(matrix.entries[0].mram_offset, {seg.first, seg.second});
    } else {
      driver::TransferMatrix& xfer = xfer_scratch_;
      xfer.entries.clear();
      xfer.direction = matrix.direction;
      for (const auto& e : matrix.entries) {
        std::uint64_t mram = e.mram_offset;
        for (const auto& [ptr, len] : e.segments) {
          xfer.entries.push_back({e.dpu, mram, ptr, len});
          mram += len;
        }
      }
      data_transfer(xfer);
    }
  });
  if (is_write) {
    stats_.wsteps.add(WrankStep::kTransferData, clock.now() - data_start);
  }
  data_span.close();

  WireResponse resp;
  resp.rank_index =
      mapping_.has_value() ? mapping_->rank_index() : 0xFFFFFFFFu;
  resp.value = matrix.total_bytes;
  write_response(chain, resp);
  transferq_.push_used(chain.head, sizeof(WireResponse));
}

void Backend::apply_batched_writes(const DeserializeResult& matrix) {
  VPIM_REQUEST_CHECK(matrix.direction == driver::XferDirection::kToRank,
                     virtio::PimStatus::kBadRequest,
                     "batched flush must be a write");
  const CostModel& cost = vmm_.cost();
  // Stream cost for the whole batch payload.
  vmm_.clock().advance(
      cost.native_xfer_fixed_ns +
      CostModel::bytes_time(matrix.total_bytes, batch_gbps()));

  upmem::Rank& rank = bound_rank();
  // One batch region per target DPU; group entries by DPU (replayed in
  // order within a group) and fan the groups out over the pool with a
  // group-local reassembly scratch.
  std::array<int, upmem::kDpuSlotsPerRank> slot;
  slot.fill(-1);
  std::vector<std::vector<const DeserializedEntry*>> groups;
  for (const auto& e : matrix.entries) {
    VPIM_REQUEST_CHECK(e.dpu < upmem::kDpuSlotsPerRank,
                       virtio::PimStatus::kBadRequest,
                       "batch entry targets an invalid DPU slot");
    int& g = slot[e.dpu];
    if (g < 0) {
      g = static_cast<int>(groups.size());
      groups.emplace_back();
    }
    groups[g].push_back(&e);
  }
  vmm_.pool().parallel_for(groups.size(), [&](std::size_t gi) {
    std::vector<std::uint8_t> scratch;
    for (const DeserializedEntry* e : groups[gi]) {
      // Reassemble this DPU's batch region, then replay its records.
      scratch.clear();
      scratch.reserve(e->size);
      for (const auto& [ptr, len] : e->segments) {
        scratch.insert(scratch.end(), ptr, ptr + len);
      }
      std::uint64_t off = 0;
      while (off < scratch.size()) {
        VPIM_REQUEST_CHECK(off + sizeof(BatchRecordHeader) <= scratch.size(),
                           virtio::PimStatus::kBadRequest,
                           "truncated batch record header");
        const auto hdr = read_pod<BatchRecordHeader>(scratch.data() + off);
        off += sizeof(BatchRecordHeader);
        // hdr.size is guest-controlled: the remaining-bytes bound must not
        // wrap, and the record must land inside the MRAM bank.
        VPIM_REQUEST_CHECK(hdr.size <= scratch.size() - off,
                           virtio::PimStatus::kBadRequest,
                           "truncated batch record payload");
        VPIM_REQUEST_CHECK(hdr.mram_offset <= upmem::kMramSize &&
                               hdr.size <= upmem::kMramSize - hdr.mram_offset,
                           virtio::PimStatus::kBadRequest,
                           "batch record falls outside the MRAM bank");
        rank.mram(e->dpu).write(hdr.mram_offset,
                                {scratch.data() + off, hdr.size});
        off += hdr.size;
      }
    }
  });
}

void Backend::handle_ci(const virtio::DescChain& chain,
                        const WireRequest& req) {
  using virtio::PimStatus;
  VPIM_REQUEST_CHECK(bound(), PimStatus::kUnbound,
                     "CI operation on a device not linked to a rank");
  // CI ops (launches, symbol reads) observe bank contents directly; any
  // copies deferred by earlier requests in this drain must land first.
  backlog_.flush();
  SimClock& clock = vmm_.clock();
  const CostModel& cost = vmm_.cost();
  clock.advance(cost.ci_op_backend_ns);
  // Physical control interfaces are reached through the perf-mode mmap;
  // the emulated rank is plain memory.
  clock.advance(cost.ci_op_native_ns);

  WireResponse resp;
  const std::string name(req.name,
                         strnlen(req.name, sizeof(req.name)));
  // Payload = descs[1] when the chain carries one besides the response.
  const auto payload_desc = [&]() -> const virtio::VirtqDesc& {
    VPIM_REQUEST_CHECK(chain.descs.size() >= 3, PimStatus::kBadRequest,
                       "symbol transfer without a payload buffer");
    return chain.descs[1];
  };
  // The rank reference is resolved inside the recovery wrapper so a retry
  // after wrank migration lands on the replacement rank. Typed request
  // rejections (VpimStatusError) pass straight through the wrapper.
  run_with_recovery([&] {
    upmem::Rank& rank = bound_rank();
    switch (static_cast<CiOp>(req.ci_op)) {
      case CiOp::kLoad:
        rank.ci_load(name);
        break;
      case CiOp::kLaunch: {
        std::optional<std::uint32_t> tasklets;
        if (req.arg1 > 0) {
          tasklets = static_cast<std::uint32_t>(req.arg1 - 1);
        }
        rank.ci_launch(req.arg0, tasklets);
        break;
      }
      case CiOp::kReadStatus:
        resp.value = rank.ci_running_mask();
        break;
      case CiOp::kCopyToSymbol: {
        const virtio::VirtqDesc& payload = payload_desc();
        VPIM_REQUEST_CHECK(req.dpu < rank.nr_dpus(), PimStatus::kBadRequest,
                           "symbol write targets a DPU beyond the rank");
        rank.ci_copy_to_symbol(
            req.dpu, name, req.symbol_offset,
            {vmm_.memory().hva_range(payload.addr, payload.len),
             payload.len});
        break;
      }
      case CiOp::kCopyFromSymbol: {
        const virtio::VirtqDesc& payload = payload_desc();
        VPIM_REQUEST_CHECK(req.dpu < rank.nr_dpus(), PimStatus::kBadRequest,
                           "symbol read targets a DPU beyond the rank");
        VPIM_REQUEST_CHECK((payload.flags & virtio::kDescFlagWrite) != 0,
                           PimStatus::kBadRequest,
                           "symbol read into a read-only buffer");
        rank.ci_copy_from_symbol(
            req.dpu, name, req.symbol_offset,
            {vmm_.memory().hva_range(payload.addr, payload.len),
             payload.len});
        break;
      }
      case CiOp::kCopyToSymbolAll:
      case CiOp::kCopyFromSymbolAll: {
        const virtio::VirtqDesc& payload = payload_desc();
        const bool to_rank =
            static_cast<CiOp>(req.ci_op) == CiOp::kCopyToSymbolAll;
        // Every field here is guest-controlled: bound the entry count by
        // the rank geometry and compute the payload-length check in 64
        // bits so nr_entries * bytes_per_dpu cannot wrap to a small value.
        VPIM_REQUEST_CHECK(req.nr_entries <= rank.nr_dpus(),
                           PimStatus::kBadRequest,
                           "packed transfer has more entries than DPUs");
        VPIM_REQUEST_CHECK(req.arg0 > 0 && req.arg0 <= 0xFFFFFFFFu,
                           PimStatus::kBadRequest,
                           "bad packed per-DPU value size");
        const auto bytes_per_dpu = static_cast<std::uint32_t>(req.arg0);
        VPIM_REQUEST_CHECK(
            payload.len == std::uint64_t{req.nr_entries} * bytes_per_dpu,
            PimStatus::kBadRequest, "packed symbol payload length mismatch");
        VPIM_REQUEST_CHECK(to_rank ||
                               (payload.flags & virtio::kDescFlagWrite) != 0,
                           PimStatus::kBadRequest,
                           "packed symbol read into a read-only buffer");
        std::uint8_t* base =
            vmm_.memory().hva_range(payload.addr, payload.len);
        // Perf mode touches each DPU's CI slot.
        clock.advance(std::uint64_t{req.nr_entries} * cost.ci_op_native_ns);
        for (std::uint32_t d = 0; d < req.nr_entries; ++d) {
          std::span<std::uint8_t> value(base + std::uint64_t{d} *
                                                   bytes_per_dpu,
                                        bytes_per_dpu);
          if (to_rank) {
            rank.ci_copy_to_symbol(d, name, req.symbol_offset, value);
          } else {
            rank.ci_copy_from_symbol(d, name, req.symbol_offset, value);
          }
        }
        break;
      }
      case CiOp::kBindRank:
      case CiOp::kReleaseRank:
      case CiOp::kMigrateRank:
      case CiOp::kSuspendRank:
      case CiOp::kResumeRank:
        throw VpimStatusError(
            PimStatus::kUnsupported,
            "control operations belong on the control queue");
      default:
        throw VpimStatusError(PimStatus::kUnsupported,
                              "unknown CI opcode " +
                                  std::to_string(req.ci_op));
    }
  });
  // After recovery: a migrated device reports its replacement rank.
  resp.rank_index =
      mapping_.has_value() ? mapping_->rank_index() : 0xFFFFFFFFu;
  write_response(chain, resp);
  transferq_.push_used(chain.head, sizeof(WireResponse));
}

void Backend::handle_config(const virtio::DescChain& chain) {
  WireResponse resp;
  if (bound()) {
    resp.rank_index =
        mapping_.has_value() ? mapping_->rank_index() : 0xFFFFFFFFu;
    resp.config = config_space();
  } else {
    resp.status = static_cast<std::int32_t>(virtio::PimStatus::kUnbound);
  }
  write_response(chain, resp);
  transferq_.push_used(chain.head, sizeof(WireResponse));
}

void Backend::handle_control(const virtio::DescChain& chain,
                             const WireRequest& req) {
  using virtio::PimStatus;
  WireResponse resp;
  switch (static_cast<CiOp>(req.ci_op)) {
    case CiOp::kBindRank: {
      if (!try_bind()) {
        resp.status = static_cast<std::int32_t>(PimStatus::kNoCapacity);
        break;
      }
      resp.rank_index =
          mapping_.has_value() ? mapping_->rank_index() : 0xFFFFFFFFu;
      resp.value = emulated() ? 1 : 0;
      resp.config = config_space();
      break;
    }
    case CiOp::kReleaseRank:
      // Dropping the mapping frees the rank in sysfs; the manager's
      // observer notices the release (§3.5) — no explicit notification.
      unbind();
      break;
    case CiOp::kMigrateRank: {
      // Dynamic rank reallocation (§3.3): move this device's state to a
      // freshly allocated physical rank, then drop the old binding. Also
      // upgrades an emulated (oversubscribed) device to real hardware
      // once capacity frees up.
      VPIM_REQUEST_CHECK(bound(), PimStatus::kUnbound,
                         "migration without a bound rank");
      const auto new_rank = manager_.request_rank(tag_);
      if (!new_rank.has_value()) {
        resp.status = static_cast<std::int32_t>(PimStatus::kNoCapacity);
        break;
      }
      upmem::Rank& src = bound_rank();
      auto new_mapping = drv_.map_rank(*new_rank, tag_);
      new_mapping.set_data_path(data_path());
      // Host streams every bank out of the old rank and into the new one.
      const std::uint64_t bytes =
          2ULL * src.nr_dpus() * upmem::kMramSize;
      vmm_.clock().advance(CostModel::bytes_time(
          bytes, vmm_.cost().interleave_wide_gbps));
      drv_.machine().rank(*new_rank).clone_state_from(src);
      unbind();
      mapping_ = std::move(new_mapping);
      resp.rank_index = *new_rank;
      resp.config = config_space();
      break;
    }
    case CiOp::kSuspendRank: {
      // §7 pause/resume: park the device's state host-side and release
      // the rank so another tenant can use it.
      VPIM_REQUEST_CHECK(!suspended_.has_value(), PimStatus::kBadRequest,
                         "device already suspended");
      VPIM_REQUEST_CHECK(bound(), PimStatus::kUnbound,
                         "suspend without a bound rank");
      suspended_ = bound_rank().save_snapshot();
      vmm_.clock().advance(CostModel::bytes_time(
          suspended_->resident_bytes(),
          vmm_.cost().interleave_wide_gbps));
      unbind();
      resp.value = suspended_->resident_bytes();
      break;
    }
    case CiOp::kResumeRank: {
      VPIM_REQUEST_CHECK(suspended_.has_value(), PimStatus::kBadRequest,
                         "resume without a suspension");
      if (!try_bind()) {
        resp.status = static_cast<std::int32_t>(PimStatus::kNoCapacity);
        break;
      }
      bound_rank().load_snapshot(*suspended_);
      vmm_.clock().advance(CostModel::bytes_time(
          suspended_->resident_bytes(),
          vmm_.cost().interleave_wide_gbps));
      suspended_.reset();
      resp.rank_index =
          mapping_.has_value() ? mapping_->rank_index() : 0xFFFFFFFFu;
      resp.value = emulated() ? 1 : 0;
      resp.config = config_space();
      break;
    }
    default:
      throw VpimStatusError(PimStatus::kUnsupported,
                            "unexpected operation on the control queue");
  }
  write_response(chain, resp);
  controlq_.push_used(chain.head, sizeof(WireResponse));
}

void Backend::write_response(const virtio::DescChain& chain,
                             const WireResponse& resp) {
  // Response buffer = last device-writable descriptor of the chain.
  for (auto it = chain.descs.rbegin(); it != chain.descs.rend(); ++it) {
    if ((it->flags & virtio::kDescFlagWrite) != 0) {
      VPIM_REQUEST_CHECK(it->len >= sizeof(WireResponse),
                         virtio::PimStatus::kBadRequest,
                         "response buffer too small");
      std::memcpy(vmm_.memory().hva_range(it->addr, sizeof(WireResponse)),
                  &resp, sizeof(resp));
      return;
    }
  }
  throw VpimStatusError(virtio::PimStatus::kBadRequest,
                        "request chain has no response buffer");
}

}  // namespace vpim::core
