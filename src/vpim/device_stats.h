// Per-vUPMEM-device instrumentation shared by the frontend and backend.
// Feeds the paper's driver-centric breakdowns (Fig 12/13) and the message-
// count claims in §5.4.2.
#pragma once

#include <cstdint>

#include "common/breakdown.h"

namespace vpim::core {

struct DeviceStats {
  OpBreakdown ops;       // CI / read-from-rank / write-to-rank time+count
  StepBreakdown wsteps;  // write-to-rank step breakdown (Fig 13)

  std::uint64_t notifies = 0;       // guest->VMM transitions (VMEXITs)
  std::uint64_t irqs = 0;           // VMM->guest completions
  std::uint64_t cache_hits = 0;     // prefetch cache
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_fills = 0;    // backend fill messages
  std::uint64_t batched_writes = 0; // writes absorbed by the batch buffer
  std::uint64_t batch_flushes = 0;  // flush messages sent
  std::uint64_t emulated_binds = 0; // oversubscribed (emulated) bindings
  std::uint64_t request_errors = 0; // requests completed with a non-OK status

  // SQ/CQ pipelining (ISSUE 7). A doorbell is one guest->device kick
  // covering every request staged since the last one; coalesced_notifies
  // counts the notifies that staging saved (batch size - 1 per kick), so
  // notifies == doorbells always and doorbells == requests only at depth 1.
  std::uint64_t doorbells = 0;          // kicks actually rung
  std::uint64_t completion_irqs = 0;    // one per drained batch
  std::uint64_t coalesced_notifies = 0; // notifies avoided by batching

  // Fault handling (ISSUE 3).
  std::uint64_t fault_retries = 0;        // transient faults retried
  std::uint64_t fault_migrations = 0;     // wranks moved off a dead rank
  std::uint64_t fault_failures = 0;       // requests completed DEVICE_FAULT
  std::uint64_t dropped_completions = 0;  // injected lost completions
  std::uint64_t poll_timeouts = 0;        // frontend poll deadline expiries

  // Overload protection (ISSUE 8).
  std::uint64_t admission_rejects = 0;   // try_submit shed: tenant over rate
  std::uint64_t would_blocks = 0;        // try_submit shed: budget / CQ full
  std::uint64_t cancelled = 0;           // requests shed via cancel(Ticket)
  std::uint64_t deadline_shed = 0;       // backend shed on an expired deadline
  std::uint64_t lost_batched_writes = 0; // batch records lost to a failed flush

  void reset() { *this = DeviceStats{}; }
};

}  // namespace vpim::core
