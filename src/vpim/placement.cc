#include "vpim/placement.h"

#include <string>

namespace vpim::core {
namespace {

bool fits(const RankView& v, std::uint32_t slots) {
  return v.usable && v.free_slots >= slots;
}

// Preference order shared by both fitting policies when scores tie:
// an already-hosting rank beats a fresh one (no bind), a fresh NAAV rank
// beats a NANA one (no ~597 ms erase), and the lowest index breaks the
// final tie so decisions are total and deterministic.
std::uint32_t tier(const RankView& v) {
  if (v.hosting) return 0;
  if (!v.needs_reset) return 1;
  return 2;
}

class FirstFit final : public PlacementPolicy {
 public:
  const char* name() const override { return "first_fit"; }
  std::optional<std::uint32_t> place(std::span<const RankView> ranks,
                                     std::uint32_t slots) const override {
    for (const RankView& v : ranks) {
      if (fits(v, slots)) return v.rank;
    }
    return std::nullopt;
  }
};

class BestFit : public PlacementPolicy {
 public:
  const char* name() const override { return "best_fit"; }
  std::optional<std::uint32_t> place(std::span<const RankView> ranks,
                                     std::uint32_t slots) const override {
    const RankView* best = nullptr;
    for (const RankView& v : ranks) {
      if (!fits(v, slots)) continue;
      if (best == nullptr || v.free_slots < best->free_slots ||
          (v.free_slots == best->free_slots && tier(v) < tier(*best))) {
        best = &v;
      }
    }
    if (best == nullptr) return std::nullopt;
    return best->rank;
  }
};

class Consolidating final : public BestFit {
 public:
  const char* name() const override { return "consolidating"; }
  bool wants_consolidation() const override { return true; }
};

}  // namespace

const char* to_string(PlacementPolicyKind kind) {
  switch (kind) {
    case PlacementPolicyKind::kFirstFit:
      return "first_fit";
    case PlacementPolicyKind::kBestFit:
      return "best_fit";
    case PlacementPolicyKind::kConsolidating:
      return "consolidating";
  }
  return "?";
}

std::optional<PlacementPolicyKind> parse_placement_policy(
    std::string_view name) {
  if (name == "first_fit") return PlacementPolicyKind::kFirstFit;
  if (name == "best_fit") return PlacementPolicyKind::kBestFit;
  if (name == "consolidating") return PlacementPolicyKind::kConsolidating;
  return std::nullopt;
}

std::unique_ptr<PlacementPolicy> make_placement_policy(
    PlacementPolicyKind kind) {
  switch (kind) {
    case PlacementPolicyKind::kFirstFit:
      return std::make_unique<FirstFit>();
    case PlacementPolicyKind::kBestFit:
      return std::make_unique<BestFit>();
    case PlacementPolicyKind::kConsolidating:
      return std::make_unique<Consolidating>();
  }
  return std::make_unique<FirstFit>();
}

std::uint32_t fragmentation_permille(std::span<const RankView> ranks,
                                     std::uint32_t slots_per_rank) {
  if (ranks.empty() || slots_per_rank == 0) return 0;
  std::uint32_t hosting = 0;
  std::uint64_t used_slots = 0;
  for (const RankView& v : ranks) {
    if (!v.hosting) continue;
    ++hosting;
    used_slots += slots_per_rank - v.free_slots;
  }
  const std::uint64_t min_needed =
      (used_slots + slots_per_rank - 1) / slots_per_rank;
  if (hosting <= min_needed) return 0;
  return static_cast<std::uint32_t>(1000ull * (hosting - min_needed) /
                                    ranks.size());
}

}  // namespace vpim::core
