// Shared helpers for PrIM host programs and DPU kernels.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "sdk/dpu_set.h"

namespace vpim::prim {

// [begin, end) of partition `i` when `total` items are split over `parts`.
inline std::pair<std::uint64_t, std::uint64_t> partition(
    std::uint64_t total, std::uint32_t parts, std::uint32_t i) {
  const std::uint64_t base = total / parts;
  const std::uint64_t extra = total % parts;
  const std::uint64_t begin = i * base + std::min<std::uint64_t>(i, extra);
  const std::uint64_t len = base + (i < extra ? 1 : 0);
  return {begin, begin + len};
}

inline std::uint64_t round_up8(std::uint64_t x) { return (x + 7) / 8 * 8; }

template <typename T>
std::span<T> as(std::span<std::uint8_t> bytes) {
  return {reinterpret_cast<T*>(bytes.data()), bytes.size() / sizeof(T)};
}

template <typename T>
std::span<const std::uint8_t> bytes_of(const T& v) {
  return {reinterpret_cast<const std::uint8_t*>(&v), sizeof(T)};
}
template <typename T>
std::span<std::uint8_t> bytes_of(T& v) {
  return {reinterpret_cast<std::uint8_t*>(&v), sizeof(T)};
}

// Pushes one per-DPU value into a WRAM symbol (parallel push of a small
// variable, like DPU_XFER_TO_DPU on a host variable).
template <typename T>
void push_symbol(sdk::DpuSet& set, const std::string& symbol,
                 std::vector<T>& per_dpu) {
  VPIM_CHECK(per_dpu.size() == set.nr_dpus(), "one value per DPU required");
  for (std::uint32_t d = 0; d < set.nr_dpus(); ++d) {
    set.prepare_xfer(d, reinterpret_cast<std::uint8_t*>(&per_dpu[d]));
  }
  set.push_xfer(driver::XferDirection::kToRank,
                sdk::Target::symbol(symbol), sizeof(T));
}

// Same value to every DPU.
template <typename T>
void broadcast_symbol(sdk::DpuSet& set, const std::string& symbol,
                      const T& value) {
  set.broadcast(sdk::Target::symbol(symbol), bytes_of(value));
}

}  // namespace vpim::prim
