// Parallel primitives: RED (reduction), SCAN-SSA (scan-scan-add), and
// SCAN-RSS (reduce-scan-scan). Their Inter-DPU steps are tiny MRAM reads/
// writes of per-DPU partials — exactly the pattern that trips the prefetch
// cache in the paper (§5.2, third observation).
#include <cstring>
#include <numeric>

#include "common/rng.h"
#include "prim/apps.h"
#include "prim/util.h"
#include "upmem/kernel.h"

namespace vpim::prim {
namespace {

using driver::XferDirection;
using sdk::DpuSet;
using sdk::Target;
using upmem::DpuCtx;
using upmem::DpuKernel;
using upmem::KernelRegistry;

struct ScanArgs {
  std::uint64_t n = 0;
  std::uint64_t in_off = 0;
  std::uint64_t out_off = 0;
  std::uint64_t result_off = 0;  // per-DPU total (8 bytes in MRAM)
  std::int64_t base = 0;         // added to every output (RSS second pass)
  std::uint32_t scan = 0;        // 0 = reduce only, 1 = scan
};

constexpr std::uint32_t kBlockElems = 256;  // 2 KiB of i64 per WRAM block

void reduce_stage1(DpuCtx& ctx) {
  const auto args = ctx.var<ScanArgs>("scan_args");
  const auto [begin, end] = partition(args.n, ctx.nr_tasklets(), ctx.me());
  std::int64_t local = 0;
  if (begin < end) {
    auto buf = ctx.mem_alloc(kBlockElems * 8);
    for (std::uint64_t e = begin; e < end; e += kBlockElems) {
      const auto n = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(kBlockElems, end - e));
      ctx.mram_read(args.in_off + e * 8, buf.first(n * 8));
      auto vals = as<std::int64_t>(buf);
      for (std::uint32_t i = 0; i < n; ++i) local += vals[i];
      ctx.exec(n);
    }
  }
  ctx.var<std::int64_t>("t_sums", ctx.me()) = local;
}

void reduce_stage2(DpuCtx& ctx) {
  if (ctx.me() != 0) return;
  const auto args = ctx.var<ScanArgs>("scan_args");
  // Exclusive prefix over tasklet sums -> per-tasklet bases + DPU total.
  std::int64_t running = 0;
  for (std::uint32_t t = 0; t < ctx.nr_tasklets(); ++t) {
    const std::int64_t s = ctx.var<std::int64_t>("t_sums", t);
    ctx.var<std::int64_t>("t_bases", t) = running;
    running += s;
  }
  ctx.exec(ctx.nr_tasklets());
  std::int64_t total = running;
  ctx.mram_write(bytes_of(total), args.result_off);
}

void scan_stage3(DpuCtx& ctx) {
  const auto args = ctx.var<ScanArgs>("scan_args");
  if (!args.scan) return;
  const auto [begin, end] = partition(args.n, ctx.nr_tasklets(), ctx.me());
  if (begin >= end) return;
  auto buf = ctx.mem_alloc(kBlockElems * 8);
  std::int64_t running = args.base + ctx.var<std::int64_t>("t_bases",
                                                           ctx.me());
  for (std::uint64_t e = begin; e < end; e += kBlockElems) {
    const auto n = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kBlockElems, end - e));
    ctx.mram_read(args.in_off + e * 8, buf.first(n * 8));
    auto vals = as<std::int64_t>(buf);
    for (std::uint32_t i = 0; i < n; ++i) {
      running += vals[i];
      vals[i] = running;  // inclusive scan
    }
    ctx.exec(2 * n);
    ctx.mram_write(buf.first(n * 8), args.out_off + e * 8);
  }
}

// SSA second kernel: add a per-DPU base to every output element.
void scan_add_stage(DpuCtx& ctx) {
  const auto args = ctx.var<ScanArgs>("scan_args");
  const auto [begin, end] = partition(args.n, ctx.nr_tasklets(), ctx.me());
  if (begin >= end || args.base == 0) return;
  auto buf = ctx.mem_alloc(kBlockElems * 8);
  for (std::uint64_t e = begin; e < end; e += kBlockElems) {
    const auto n = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kBlockElems, end - e));
    ctx.mram_read(args.out_off + e * 8, buf.first(n * 8));
    auto vals = as<std::int64_t>(buf);
    for (std::uint32_t i = 0; i < n; ++i) vals[i] += args.base;
    ctx.exec(n);
    ctx.mram_write(buf.first(n * 8), args.out_off + e * 8);
  }
}

// Shared host-side scaffolding for the three apps.
struct ScanRig {
  std::uint64_t total = 0;
  std::uint64_t cap = 0;         // per-DPU input capacity (bytes)
  std::uint64_t result_off = 0;  // per-DPU total slot
  std::span<std::int64_t> in;
  std::span<std::int64_t> out;
  std::span<std::int64_t> totals;    // per-DPU partials (guest-visible)
  std::vector<std::uint64_t> sizes;  // per-DPU input bytes

  ScanRig(sdk::Platform& p, const AppParams& prm, std::uint64_t base_elems,
          bool with_out) {
    total = detail::scaled_elems(base_elems, prm.scale, prm.nr_dpus, 2);
    std::uint64_t max_per = 0;
    sizes.resize(prm.nr_dpus);
    for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
      auto [b, e] = partition(total, prm.nr_dpus, d);
      sizes[d] = (e - b) * 8;
      max_per = std::max(max_per, e - b);
    }
    cap = round_up8(max_per * 8);
    result_off = with_out ? 2 * cap : cap;
    in = as<std::int64_t>(p.alloc(total * 8));
    if (with_out) out = as<std::int64_t>(p.alloc(total * 8));
    totals = as<std::int64_t>(p.alloc(std::uint64_t{prm.nr_dpus} * 8));
    Rng rng(prm.seed);
    for (auto& v : in) v = rng.uniform(-1000, 1000);
  }

  void push_input(DpuSet& set, std::uint32_t nr_dpus) {
    for (std::uint32_t d = 0; d < nr_dpus; ++d) {
      auto [b, e] = partition(total, nr_dpus, d);
      set.prepare_xfer(d, reinterpret_cast<std::uint8_t*>(&in[b]));
    }
    set.push_xfer(XferDirection::kToRank, Target::mram(0), sizes);
  }

  // The paper's RED Inter-DPU step: one small read-from-rank collecting
  // the per-DPU partials.
  std::span<const std::int64_t> read_totals(DpuSet& set,
                                            std::uint32_t nr_dpus) {
    for (std::uint32_t d = 0; d < nr_dpus; ++d) {
      set.prepare_xfer(d, reinterpret_cast<std::uint8_t*>(&totals[d]));
    }
    set.push_xfer(XferDirection::kFromRank, Target::mram(result_off), 8);
    return totals.first(nr_dpus);
  }

  void read_output(DpuSet& set, std::uint32_t nr_dpus) {
    for (std::uint32_t d = 0; d < nr_dpus; ++d) {
      auto [b, e] = partition(total, nr_dpus, d);
      set.prepare_xfer(d, reinterpret_cast<std::uint8_t*>(&out[b]));
    }
    set.push_xfer(XferDirection::kFromRank, Target::mram(cap), sizes);
  }

  std::vector<ScanArgs> make_args(std::uint32_t nr_dpus, bool scan,
                                  std::span<const std::int64_t> bases) {
    std::vector<ScanArgs> args(nr_dpus);
    for (std::uint32_t d = 0; d < nr_dpus; ++d) {
      auto [b, e] = partition(total, nr_dpus, d);
      args[d] = {e - b, 0,   cap, result_off,
                 bases.empty() ? 0 : bases[d], scan ? 1u : 0u};
    }
    return args;
  }
};

class RedApp final : public PrimApp {
 public:
  std::string_view name() const override { return "RED"; }

  AppResult run(sdk::Platform& p, const AppParams& prm) override {
    register_reduce_scan_kernels();
    AppResult res;
    res.app = "RED";
    ScanRig rig(p, prm, 16'000'000, /*with_out=*/false);

    auto set = DpuSet::allocate(p, prm.nr_dpus);
    set.load("prim_scan");
    {
      SegmentScope s(p.clock(), res.breakdown, Segment::kCpuDpu);
      rig.push_input(set, prm.nr_dpus);
      auto args = rig.make_args(prm.nr_dpus, false, {});
      push_symbol(set, "scan_args", args);
    }
    {
      SegmentScope s(p.clock(), res.breakdown, Segment::kDpu);
      set.launch(prm.nr_tasklets);
    }
    std::int64_t sum = 0;
    {
      SegmentScope s(p.clock(), res.breakdown, Segment::kInterDpu);
      auto totals = rig.read_totals(set, prm.nr_dpus);
      sum = std::accumulate(totals.begin(), totals.end(),
                            std::int64_t{0});
    }
    set.free();

    const std::int64_t ref =
        std::accumulate(rig.in.begin(), rig.in.end(), std::int64_t{0});
    res.correct = (sum == ref);
    return res;
  }
};

class ScanApp final : public PrimApp {
 public:
  explicit ScanApp(bool rss) : rss_(rss) {}
  std::string_view name() const override {
    return rss_ ? "SCAN-RSS" : "SCAN-SSA";
  }

  AppResult run(sdk::Platform& p, const AppParams& prm) override {
    register_reduce_scan_kernels();
    AppResult res;
    res.app = name();
    ScanRig rig(p, prm, 8'000'000, /*with_out=*/true);

    auto set = DpuSet::allocate(p, prm.nr_dpus);
    set.load("prim_scan");
    {
      SegmentScope s(p.clock(), res.breakdown, Segment::kCpuDpu);
      rig.push_input(set, prm.nr_dpus);
    }

    std::vector<std::int64_t> bases(prm.nr_dpus, 0);
    if (rss_) {
      // Reduce-Scan-Scan: pass 1 reduces, host scans the totals, pass 2
      // does the local scan with the base folded in.
      {
        SegmentScope s(p.clock(), res.breakdown, Segment::kCpuDpu);
        auto args = rig.make_args(prm.nr_dpus, false, {});
        push_symbol(set, "scan_args", args);
      }
      {
        SegmentScope s(p.clock(), res.breakdown, Segment::kDpu);
        set.launch(prm.nr_tasklets);
      }
      {
        SegmentScope s(p.clock(), res.breakdown, Segment::kInterDpu);
        auto totals = rig.read_totals(set, prm.nr_dpus);
        std::int64_t running = 0;
        for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
          bases[d] = running;
          running += totals[d];
        }
        auto args = rig.make_args(prm.nr_dpus, true, bases);
        push_symbol(set, "scan_args", args);
      }
      {
        SegmentScope s(p.clock(), res.breakdown, Segment::kDpu);
        set.launch(prm.nr_tasklets);
      }
    } else {
      // Scan-Scan-Add: pass 1 scans locally, host scans the totals,
      // pass 2 adds each DPU's base to its outputs.
      {
        SegmentScope s(p.clock(), res.breakdown, Segment::kCpuDpu);
        auto args = rig.make_args(prm.nr_dpus, true, {});
        push_symbol(set, "scan_args", args);
      }
      {
        SegmentScope s(p.clock(), res.breakdown, Segment::kDpu);
        set.launch(prm.nr_tasklets);
      }
      {
        SegmentScope s(p.clock(), res.breakdown, Segment::kInterDpu);
        auto totals = rig.read_totals(set, prm.nr_dpus);
        std::int64_t running = 0;
        for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
          bases[d] = running;
          running += totals[d];
        }
        // Load the add kernel *before* pushing its arguments: loading a
        // binary lays out fresh symbol storage.
        set.load("prim_scan_add");
        auto args = rig.make_args(prm.nr_dpus, true, bases);
        push_symbol(set, "scan_args", args);
      }
      {
        SegmentScope s(p.clock(), res.breakdown, Segment::kDpu);
        set.launch(prm.nr_tasklets);
      }
    }
    {
      SegmentScope s(p.clock(), res.breakdown, Segment::kDpuCpu);
      rig.read_output(set, prm.nr_dpus);
    }
    set.free();

    // CPU reference: inclusive prefix sum.
    std::vector<std::int64_t> ref(rig.in.size());
    std::int64_t running = 0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      running += rig.in[i];
      ref[i] = running;
    }
    res.correct = std::equal(ref.begin(), ref.end(), rig.out.begin());
    return res;
  }

 private:
  bool rss_;
};

}  // namespace

void register_reduce_scan_kernels() {
  auto& registry = KernelRegistry::instance();
  if (registry.contains("prim_scan")) return;

  DpuKernel scan;
  scan.name = "prim_scan";
  scan.symbols = {{"scan_args", sizeof(ScanArgs)},
                  {"t_sums", 24 * 8},
                  {"t_bases", 24 * 8}};
  scan.stages = {reduce_stage1, reduce_stage2, scan_stage3};
  registry.add(std::move(scan));

  DpuKernel add;
  add.name = "prim_scan_add";
  add.symbols = {{"scan_args", sizeof(ScanArgs)}};
  add.stages = {scan_add_stage};
  registry.add(std::move(add));
}

std::unique_ptr<PrimApp> make_red() { return std::make_unique<RedApp>(); }
std::unique_ptr<PrimApp> make_scan_ssa() {
  return std::make_unique<ScanApp>(false);
}
std::unique_ptr<PrimApp> make_scan_rss() {
  return std::make_unique<ScanApp>(true);
}

}  // namespace vpim::prim
