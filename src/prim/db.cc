// Database & analytics applications: SEL (select), UNI (unique), BS
// (binary search), TS (time-series motif search). SEL and UNI retrieve
// their results one DPU at a time — the serial DPU-CPU pattern that makes
// them *slower* at 480 DPUs in Fig 8 (both native and vPIM).
#include <cstring>

#include "common/rng.h"
#include "prim/apps.h"
#include "prim/util.h"
#include "upmem/kernel.h"

namespace vpim::prim {
namespace {

using driver::XferDirection;
using sdk::DpuSet;
using sdk::Target;
using upmem::DpuCtx;
using upmem::DpuKernel;
using upmem::KernelRegistry;

// 1 KiB of i64 per WRAM block: the SEL compaction stage holds two blocks
// per tasklet, and 16 tasklets must fit the shared heap.
constexpr std::uint32_t kBlockElems = 128;

// ------------------------------------------------------ SEL / UNI kernel

struct SelArgs {
  std::uint64_t n = 0;
  std::uint64_t in_off = 0;
  std::uint64_t out_off = 0;
  std::uint64_t count_off = 0;  // result count mirrored into MRAM
  std::int64_t threshold = 0;
  std::uint32_t unique = 0;  // 0 = SEL predicate, 1 = UNI dedupe
};

bool sel_keep(const SelArgs& args, std::int64_t v, std::int64_t prev,
              bool has_prev) {
  if (args.unique) return !has_prev || v != prev;
  return v > args.threshold;
}

void sel_stage_count(DpuCtx& ctx) {
  const auto args = ctx.var<SelArgs>("sel_args");
  const auto [begin, end] = partition(args.n, ctx.nr_tasklets(), ctx.me());
  std::uint32_t count = 0;
  if (begin < end) {
    auto buf = ctx.mem_alloc(kBlockElems * 8);
    std::int64_t prev = 0;
    bool has_prev = false;
    if (args.unique && begin > 0) {
      ctx.mram_read(args.in_off + (begin - 1) * 8, bytes_of(prev));
      has_prev = true;
    }
    for (std::uint64_t e = begin; e < end; e += kBlockElems) {
      const auto n = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(kBlockElems, end - e));
      ctx.mram_read(args.in_off + e * 8, buf.first(n * 8));
      auto vals = as<std::int64_t>(buf);
      for (std::uint32_t i = 0; i < n; ++i) {
        if (sel_keep(args, vals[i], prev, has_prev)) ++count;
        prev = vals[i];
        has_prev = true;
      }
      ctx.exec(n);
    }
  }
  ctx.var<std::uint32_t>("t_counts", ctx.me()) = count;
}

void sel_stage_prefix(DpuCtx& ctx) {
  if (ctx.me() != 0) return;
  const auto args = ctx.var<SelArgs>("sel_args");
  std::uint32_t running = 0;
  for (std::uint32_t t = 0; t < ctx.nr_tasklets(); ++t) {
    ctx.var<std::uint32_t>("t_bases", t) = running;
    running += ctx.var<std::uint32_t>("t_counts", t);
  }
  ctx.var<std::uint32_t>("out_count") = running;
  // Mirror the count into MRAM so the host collects every DPU's count
  // with a single parallel read instead of per-DPU CI traffic.
  ctx.mram_write(bytes_of(running), args.count_off);
  ctx.exec(ctx.nr_tasklets());
}

void sel_stage_compact(DpuCtx& ctx) {
  const auto args = ctx.var<SelArgs>("sel_args");
  const auto [begin, end] = partition(args.n, ctx.nr_tasklets(), ctx.me());
  if (begin >= end) return;
  auto in_buf = ctx.mem_alloc(kBlockElems * 8);
  auto out_buf = ctx.mem_alloc(kBlockElems * 8);
  auto out = as<std::int64_t>(out_buf);
  std::uint64_t out_pos = ctx.var<std::uint32_t>("t_bases", ctx.me());
  std::uint32_t buffered = 0;
  auto flush = [&] {
    if (buffered == 0) return;
    ctx.mram_write(out_buf.first(buffered * 8),
                   args.out_off + (out_pos - buffered) * 8);
    buffered = 0;
  };
  std::int64_t prev = 0;
  bool has_prev = false;
  if (args.unique && begin > 0) {
    ctx.mram_read(args.in_off + (begin - 1) * 8, bytes_of(prev));
    has_prev = true;
  }
  for (std::uint64_t e = begin; e < end; e += kBlockElems) {
    const auto n = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kBlockElems, end - e));
    ctx.mram_read(args.in_off + e * 8, in_buf.first(n * 8));
    auto vals = as<std::int64_t>(in_buf);
    for (std::uint32_t i = 0; i < n; ++i) {
      if (sel_keep(args, vals[i], prev, has_prev)) {
        out[buffered++] = vals[i];
        ++out_pos;
        if (buffered == kBlockElems) flush();
      }
      prev = vals[i];
      has_prev = true;
    }
    ctx.exec(2 * n);
  }
  flush();
}

// --------------------------------------------------------------- SEL/UNI

class SelUniApp final : public PrimApp {
 public:
  explicit SelUniApp(bool unique) : unique_(unique) {}
  std::string_view name() const override { return unique_ ? "UNI" : "SEL"; }

  AppResult run(sdk::Platform& p, const AppParams& prm) override {
    register_db_kernels();
    AppResult res;
    res.app = name();
    const std::uint64_t total =
        detail::scaled_elems(32'000'000, prm.scale, prm.nr_dpus, 2);

    Rng rng(prm.seed);
    auto in = as<std::int64_t>(p.alloc(total * 8));
    if (unique_) {
      // Runs of duplicates, so dedupe has work to do.
      std::int64_t v = 0;
      std::uint64_t i = 0;
      while (i < total) {
        v += rng.uniform(1, 10);
        const auto run = static_cast<std::uint64_t>(rng.uniform(1, 6));
        for (std::uint64_t k = 0; k < run && i < total; ++k) in[i++] = v;
      }
    } else {
      for (auto& v : in) v = rng.uniform(-1000000, 1000000);
    }

    std::uint64_t max_per = 0;
    std::vector<std::uint64_t> sizes(prm.nr_dpus);
    for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
      auto [b, e] = partition(total, prm.nr_dpus, d);
      sizes[d] = (e - b) * 8;
      max_per = std::max(max_per, e - b);
    }
    const std::uint64_t out_off = round_up8(max_per * 8);
    const std::uint64_t count_off = 2 * out_off;

    auto set = DpuSet::allocate(p, prm.nr_dpus);
    set.load("prim_sel");
    {
      SegmentScope s(p.clock(), res.breakdown, Segment::kCpuDpu);
      for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
        auto [b, e] = partition(total, prm.nr_dpus, d);
        set.prepare_xfer(d, reinterpret_cast<std::uint8_t*>(&in[b]));
      }
      set.push_xfer(XferDirection::kToRank, Target::mram(0), sizes);
      std::vector<SelArgs> args(prm.nr_dpus);
      for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
        auto [b, e] = partition(total, prm.nr_dpus, d);
        args[d] = {e - b, 0, out_off, count_off, 0, unique_ ? 1u : 0u};
      }
      push_symbol(set, "sel_args", args);
    }
    {
      SegmentScope s(p.clock(), res.breakdown, Segment::kDpu);
      set.launch(prm.nr_tasklets);
    }
    std::vector<std::int64_t> result;
    {
      // Serial retrieval, one DPU at a time (the PrIM implementation
      // detail §5.2 calls out).
      SegmentScope s(p.clock(), res.breakdown, Segment::kDpuCpu);
      auto chunk = p.alloc(max_per * 8);
      auto counts = as<std::uint32_t>(p.alloc(prm.nr_dpus * 4));
      for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
        set.prepare_xfer(d, reinterpret_cast<std::uint8_t*>(&counts[d]));
      }
      set.push_xfer(XferDirection::kFromRank, Target::mram(count_off), 4);
      for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
        const std::uint32_t count = counts[d];
        if (count == 0) continue;
        set.copy_from(d, Target::mram(out_off),
                      chunk.first(std::uint64_t{count} * 8));
        auto vals = as<std::int64_t>(chunk.first(std::uint64_t{count} * 8));
        for (std::uint32_t i = 0; i < count; ++i) {
          // UNI: drop a partition-leading duplicate of the previous
          // partition's tail.
          if (unique_ && i == 0 && !result.empty() &&
              vals[i] == result.back()) {
            continue;
          }
          result.push_back(vals[i]);
        }
      }
    }
    set.free();

    // CPU reference.
    std::vector<std::int64_t> ref;
    std::int64_t prev = 0;
    bool has_prev = false;
    for (std::uint64_t i = 0; i < total; ++i) {
      const bool keep = unique_ ? (!has_prev || in[i] != prev) : (in[i] > 0);
      if (keep) ref.push_back(in[i]);
      prev = in[i];
      has_prev = true;
    }
    res.correct = (result == ref);
    return res;
  }

 private:
  bool unique_;
};

// ------------------------------------------------------------------- BS

struct BsArgs {
  std::uint64_t n_queries = 0;
  std::uint64_t arr_elems = 0;
  std::uint64_t arr_off = 0;
  std::uint64_t q_off = 0;
  std::uint64_t out_off = 0;
};

void bs_stage(DpuCtx& ctx) {
  const auto args = ctx.var<BsArgs>("bs_args");
  const auto [begin, end] =
      partition(args.n_queries, ctx.nr_tasklets(), ctx.me());
  if (begin >= end) return;
  auto q_buf = ctx.mem_alloc(kBlockElems * 8);
  auto out_buf = ctx.mem_alloc(kBlockElems * 4);
  for (std::uint64_t e = begin; e < end; e += kBlockElems) {
    const auto n = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kBlockElems, end - e));
    ctx.mram_read(args.q_off + e * 8, q_buf.first(n * 8));
    auto queries = as<std::int64_t>(q_buf);
    auto out = as<std::uint32_t>(out_buf);
    for (std::uint32_t i = 0; i < n; ++i) {
      // lower_bound over the sorted array in MRAM, one 8-byte probe per
      // step (the DPU pays a DMA per probe, like the PrIM kernel).
      std::uint64_t lo = 0, hi = args.arr_elems;
      while (lo < hi) {
        const std::uint64_t mid = (lo + hi) / 2;
        std::int64_t v;
        ctx.mram_read(args.arr_off + mid * 8, bytes_of(v));
        if (v < queries[i]) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
        ctx.exec(4);
      }
      out[i] = static_cast<std::uint32_t>(lo);
    }
    ctx.mram_write(out_buf.first(n * 4), args.out_off + e * 4);
  }
}

class BsApp final : public PrimApp {
 public:
  std::string_view name() const override { return "BS"; }

  AppResult run(sdk::Platform& p, const AppParams& prm) override {
    register_db_kernels();
    AppResult res;
    res.app = "BS";
    const std::uint64_t arr_elems =
        detail::scaled_elems(1'000'000, prm.scale, prm.nr_dpus, 2);
    const std::uint64_t n_queries =
        detail::scaled_elems(100'000, prm.scale, prm.nr_dpus, 2);

    Rng rng(prm.seed);
    auto arr = as<std::int64_t>(p.alloc(arr_elems * 8));
    std::int64_t v = 0;
    for (auto& a : arr) {
      v += rng.uniform(0, 8);
      a = v;
    }
    auto queries = as<std::int64_t>(p.alloc(n_queries * 8));
    for (auto& q : queries) q = rng.uniform(0, v);
    auto out = as<std::uint32_t>(p.alloc(n_queries * 4));

    const std::uint64_t arr_off = 0;
    const std::uint64_t q_off = round_up8(arr_elems * 8);
    std::uint64_t max_q = 0;
    std::vector<std::uint64_t> q_sizes(prm.nr_dpus), o_sizes(prm.nr_dpus);
    for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
      auto [b, e] = partition(n_queries, prm.nr_dpus, d);
      q_sizes[d] = (e - b) * 8;
      o_sizes[d] = (e - b) * 4;
      max_q = std::max(max_q, e - b);
    }
    const std::uint64_t out_off = q_off + round_up8(max_q * 8);

    auto set = DpuSet::allocate(p, prm.nr_dpus);
    set.load("prim_bs");
    {
      SegmentScope s(p.clock(), res.breakdown, Segment::kCpuDpu);
      // Every DPU searches the whole sorted array: broadcast it.
      set.broadcast(Target::mram(arr_off),
                    {reinterpret_cast<std::uint8_t*>(arr.data()),
                     arr_elems * 8});
      for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
        auto [b, e] = partition(n_queries, prm.nr_dpus, d);
        set.prepare_xfer(d, reinterpret_cast<std::uint8_t*>(&queries[b]));
      }
      set.push_xfer(XferDirection::kToRank, Target::mram(q_off), q_sizes);
      std::vector<BsArgs> args(prm.nr_dpus);
      for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
        auto [b, e] = partition(n_queries, prm.nr_dpus, d);
        args[d] = {e - b, arr_elems, arr_off, q_off, out_off};
      }
      push_symbol(set, "bs_args", args);
    }
    {
      SegmentScope s(p.clock(), res.breakdown, Segment::kDpu);
      set.launch(prm.nr_tasklets);
    }
    {
      SegmentScope s(p.clock(), res.breakdown, Segment::kDpuCpu);
      for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
        auto [b, e] = partition(n_queries, prm.nr_dpus, d);
        set.prepare_xfer(d, reinterpret_cast<std::uint8_t*>(&out[b]));
      }
      set.push_xfer(XferDirection::kFromRank, Target::mram(out_off),
                    o_sizes);
    }
    set.free();

    res.correct = true;
    for (std::uint64_t i = 0; i < n_queries; ++i) {
      const auto it = std::lower_bound(arr.begin(), arr.end(), queries[i]);
      if (out[i] != static_cast<std::uint32_t>(it - arr.begin())) {
        res.correct = false;
        break;
      }
    }
    return res;
  }
};

// ------------------------------------------------------------------- TS

struct TsArgs {
  std::uint64_t n_windows = 0;  // windows this DPU evaluates
  std::uint64_t series_elems = 0;
  std::uint32_t m = 0;  // query length
  std::uint64_t in_off = 0;
  std::uint64_t res_off = 0;
};

struct TsResult {
  std::int64_t min_dist = 0;
  std::uint64_t pos = 0;
};

constexpr std::uint32_t kTsQueryLen = 128;

void ts_stage_scan(DpuCtx& ctx) {
  const auto args = ctx.var<TsArgs>("ts_args");
  const auto [begin, end] =
      partition(args.n_windows, ctx.nr_tasklets(), ctx.me());
  std::int64_t best = INT64_MAX;
  std::uint64_t best_pos = 0;
  if (begin < end) {
    auto query = as<std::int32_t>(ctx.symbol_bytes("ts_query"));
    auto buf = ctx.mem_alloc((kBlockElems + kTsQueryLen) * 4);
    for (std::uint64_t w0 = begin; w0 < end; w0 += kBlockElems) {
      const auto wn = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(kBlockElems, end - w0));
      // Load the series covering windows [w0, w0+wn).
      ctx.mram_read(args.in_off + w0 * 4,
                    buf.first((wn + args.m - 1) * 4));
      auto series = as<std::int32_t>(buf);
      for (std::uint32_t w = 0; w < wn; ++w) {
        std::int64_t dist = 0;
        for (std::uint32_t j = 0; j < args.m; ++j) {
          const std::int64_t d = series[w + j] - query[j];
          dist += d < 0 ? -d : d;
        }
        if (dist < best) {
          best = dist;
          best_pos = w0 + w;
        }
      }
      ctx.exec(std::uint64_t{wn} * args.m);
    }
  }
  ctx.var<std::int64_t>("t_min", ctx.me()) = best;
  ctx.var<std::uint64_t>("t_pos", ctx.me()) = best_pos;
}

void ts_stage_merge(DpuCtx& ctx) {
  if (ctx.me() != 0) return;
  const auto args = ctx.var<TsArgs>("ts_args");
  TsResult r{INT64_MAX, 0};
  for (std::uint32_t t = 0; t < ctx.nr_tasklets(); ++t) {
    const std::int64_t m = ctx.var<std::int64_t>("t_min", t);
    if (m < r.min_dist) {
      r.min_dist = m;
      r.pos = ctx.var<std::uint64_t>("t_pos", t);
    }
  }
  ctx.exec(ctx.nr_tasklets());
  ctx.mram_write(bytes_of(r), args.res_off);
}

class TsApp final : public PrimApp {
 public:
  std::string_view name() const override { return "TS"; }

  AppResult run(sdk::Platform& p, const AppParams& prm) override {
    register_db_kernels();
    AppResult res;
    res.app = "TS";
    const std::uint32_t m = kTsQueryLen;
    const std::uint64_t series_len =
        detail::scaled_elems(1'000'000, prm.scale, prm.nr_dpus, 4) + m;
    const std::uint64_t n_windows = series_len - m + 1;

    Rng rng(prm.seed);
    auto series = as<std::int32_t>(p.alloc(series_len * 4));
    std::int32_t acc = 0;
    for (auto& s : series) {
      acc += static_cast<std::int32_t>(rng.uniform(-5, 5));
      s = acc;
    }
    std::vector<std::int32_t> query(m);
    for (auto& q : query) {
      q = static_cast<std::int32_t>(rng.uniform(-50, 50));
    }

    auto set = DpuSet::allocate(p, prm.nr_dpus);
    set.load("prim_ts");
    std::uint64_t max_span = 0;
    for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
      auto [wb, we] = partition(n_windows, prm.nr_dpus, d);
      max_span = std::max(max_span, (we - wb) + m - 1);
    }
    const std::uint64_t res_off = round_up8(max_span * 4);
    {
      SegmentScope s(p.clock(), res.breakdown, Segment::kCpuDpu);
      std::vector<std::uint64_t> sizes(prm.nr_dpus);
      for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
        auto [wb, we] = partition(n_windows, prm.nr_dpus, d);
        sizes[d] = ((we - wb) + m - 1) * 4;
        set.prepare_xfer(d, reinterpret_cast<std::uint8_t*>(&series[wb]));
      }
      set.push_xfer(XferDirection::kToRank, Target::mram(0), sizes);
      set.broadcast(Target::symbol("ts_query"),
                    {reinterpret_cast<std::uint8_t*>(query.data()),
                     query.size() * 4});
      std::vector<TsArgs> args(prm.nr_dpus);
      for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
        auto [wb, we] = partition(n_windows, prm.nr_dpus, d);
        args[d] = {we - wb, series_len, m, 0, res_off};
      }
      push_symbol(set, "ts_args", args);
    }
    {
      SegmentScope s(p.clock(), res.breakdown, Segment::kDpu);
      set.launch(prm.nr_tasklets);
    }
    TsResult best{INT64_MAX, 0};
    {
      SegmentScope s(p.clock(), res.breakdown, Segment::kDpuCpu);
      auto results =
          as<TsResult>(p.alloc(std::uint64_t{prm.nr_dpus} *
                               sizeof(TsResult)));
      for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
        set.prepare_xfer(d,
                         reinterpret_cast<std::uint8_t*>(&results[d]));
      }
      set.push_xfer(XferDirection::kFromRank, Target::mram(res_off),
                    sizeof(TsResult));
      for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
        auto [wb, we] = partition(n_windows, prm.nr_dpus, d);
        if (results[d].min_dist < best.min_dist) {
          best = results[d];
          best.pos += wb;  // per-DPU window index -> global position
        }
      }
    }
    set.free();

    // CPU reference.
    std::int64_t ref_min = INT64_MAX;
    std::uint64_t ref_pos = 0;
    for (std::uint64_t w = 0; w < n_windows; ++w) {
      std::int64_t dist = 0;
      for (std::uint32_t j = 0; j < m; ++j) {
        const std::int64_t d = series[w + j] - query[j];
        dist += d < 0 ? -d : d;
      }
      if (dist < ref_min) {
        ref_min = dist;
        ref_pos = w;
      }
    }
    res.correct = (best.min_dist == ref_min && best.pos == ref_pos);
    return res;
  }
};

}  // namespace

void register_db_kernels() {
  auto& registry = KernelRegistry::instance();
  if (registry.contains("prim_sel")) return;

  DpuKernel sel;
  sel.name = "prim_sel";
  sel.symbols = {{"sel_args", sizeof(SelArgs)},
                 {"t_counts", 24 * 4},
                 {"t_bases", 24 * 4},
                 {"out_count", 4}};
  sel.stages = {sel_stage_count, sel_stage_prefix, sel_stage_compact};
  registry.add(std::move(sel));

  DpuKernel bs;
  bs.name = "prim_bs";
  bs.symbols = {{"bs_args", sizeof(BsArgs)}};
  bs.stages = {bs_stage};
  registry.add(std::move(bs));

  DpuKernel ts;
  ts.name = "prim_ts";
  ts.symbols = {{"ts_args", sizeof(TsArgs)},
                {"ts_query", kTsQueryLen * 4},
                {"t_min", 24 * 8},
                {"t_pos", 24 * 8}};
  ts.stages = {ts_stage_scan, ts_stage_merge};
  registry.add(std::move(ts));
}

std::unique_ptr<PrimApp> make_sel() {
  return std::make_unique<SelUniApp>(false);
}
std::unique_ptr<PrimApp> make_uni() {
  return std::make_unique<SelUniApp>(true);
}
std::unique_ptr<PrimApp> make_bs() { return std::make_unique<BsApp>(); }
std::unique_ptr<PrimApp> make_ts() { return std::make_unique<TsApp>(); }

}  // namespace vpim::prim
