// The paper's pathological small-transfer workloads.
//
// NW (Needleman-Wunsch): wavefront-blocked dynamic programming where every
// block exchanges ~520-byte boundaries with the host — the workload with
// the paper's headline 53x unoptimized overhead (Fig 14).
//
// TRNS (matrix transposition): tile-by-tile transposition driven by a
// large number of ~1 KiB writes and reads (§5.2 fifth observation).
#include <cstring>

#include "common/rng.h"
#include "prim/apps.h"
#include "prim/util.h"
#include "upmem/kernel.h"

namespace vpim::prim {
namespace {

using driver::XferDirection;
using sdk::DpuSet;
using sdk::Target;
using upmem::DpuCtx;
using upmem::DpuKernel;
using upmem::KernelRegistry;

// ------------------------------------------------------------------- NW

constexpr std::uint32_t kNwBlock = 128;  // DP block edge (cells)

struct NwArgs {
  std::uint64_t a_off = 0;
  std::uint64_t b_off = 0;
  std::uint64_t in_off = 0;
  std::uint64_t out_off = 0;
  // The per-wavefront slot count is NOT a WRAM symbol: the host writes it
  // into MRAM alongside the boundary data so it rides the batched small
  // writes instead of costing a CI round trip per DPU per wavefront.
  std::uint64_t nblocks_off = 0;
};

// ~524-byte input boundary per block; ~516-byte output.
struct NwSlotIn {
  std::uint32_t a_base = 0;  // row block origin in A
  std::uint32_t b_base = 0;  // col block origin in B
  std::int32_t top[kNwBlock + 1];  // H[row0][col0 .. col0+B]
  std::int32_t left[kNwBlock];     // H[row0+1 .. row0+B][col0]
};
struct NwSlotOut {
  std::int32_t bottom[kNwBlock + 1];  // H[row0+B][col0 .. col0+B]
  std::int32_t right[kNwBlock];       // H[row0+1 .. row0+B][col0+B]
};

constexpr std::int32_t kMatch = 1, kMismatch = -1, kGap = -1;

void nw_load_nblocks(DpuCtx& ctx) {
  if (ctx.me() != 0) return;
  const auto args = ctx.var<NwArgs>("nw_args");
  std::uint32_t n = 0;
  ctx.mram_read(args.nblocks_off, bytes_of(n));
  ctx.var<std::uint32_t>("nw_nblocks") = n;
}

void nw_stage(DpuCtx& ctx) {
  const auto args = ctx.var<NwArgs>("nw_args");
  const std::uint32_t nblocks = ctx.var<std::uint32_t>("nw_nblocks");
  const auto [sb, se] = partition(nblocks, ctx.nr_tasklets(), ctx.me());
  if (sb >= se) return;
  auto in_buf = ctx.mem_alloc(sizeof(NwSlotIn));
  auto out_buf = ctx.mem_alloc(sizeof(NwSlotOut));
  auto a_buf = ctx.mem_alloc(kNwBlock);
  auto b_buf = ctx.mem_alloc(kNwBlock);
  auto h_prev = as<std::int32_t>(ctx.mem_alloc((kNwBlock + 1) * 4));
  auto h_cur = as<std::int32_t>(ctx.mem_alloc((kNwBlock + 1) * 4));

  for (std::uint64_t s = sb; s < se; ++s) {
    ctx.mram_read(args.in_off + s * sizeof(NwSlotIn), in_buf);
    NwSlotIn in;
    std::memcpy(&in, in_buf.data(), sizeof(in));
    ctx.mram_read(args.a_off + in.a_base, a_buf.first(kNwBlock));
    ctx.mram_read(args.b_off + in.b_base, b_buf.first(kNwBlock));

    NwSlotOut out;
    for (std::uint32_t j = 0; j <= kNwBlock; ++j) h_prev[j] = in.top[j];
    for (std::uint32_t i = 0; i < kNwBlock; ++i) {
      h_cur[0] = in.left[i];
      for (std::uint32_t j = 1; j <= kNwBlock; ++j) {
        const std::int32_t sub =
            h_prev[j - 1] +
            (a_buf[i] == b_buf[j - 1] ? kMatch : kMismatch);
        const std::int32_t del = h_prev[j] + kGap;
        const std::int32_t ins = h_cur[j - 1] + kGap;
        h_cur[j] = std::max(sub, std::max(del, ins));
      }
      out.right[i] = h_cur[kNwBlock];
      std::swap_ranges(h_prev.begin(), h_prev.end(), h_cur.begin());
    }
    ctx.exec(std::uint64_t{kNwBlock} * kNwBlock);
    for (std::uint32_t j = 0; j <= kNwBlock; ++j) out.bottom[j] = h_prev[j];
    std::memcpy(out_buf.data(), &out, sizeof(out));
    ctx.mram_write(out_buf, args.out_off + s * sizeof(NwSlotOut));
  }
}

class NwApp final : public PrimApp {
 public:
  std::string_view name() const override { return "NW"; }

  AppResult run(sdk::Platform& p, const AppParams& prm) override {
    register_heavy_kernels();
    AppResult res;
    res.app = "NW";
    const std::uint32_t nb = std::max<std::uint32_t>(
        2, static_cast<std::uint32_t>(
               detail::scaled_elems(16, prm.scale, 1, 1)));
    const std::uint32_t n = nb * kNwBlock;  // sequence length

    Rng rng(prm.seed);
    auto a = p.alloc(n);
    auto b = p.alloc(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      a[i] = static_cast<std::uint8_t>(rng.uniform('A', 'D'));
      b[i] = static_cast<std::uint8_t>(rng.uniform('A', 'D'));
    }

    auto set = DpuSet::allocate(p, prm.nr_dpus);
    set.load("prim_nw");
    const std::uint64_t a_off = 0;
    const std::uint64_t b_off = round_up8(n);
    const std::uint64_t in_off = b_off + round_up8(n);
    const std::uint32_t max_slots =
        (nb + prm.nr_dpus - 1) / prm.nr_dpus;
    const std::uint64_t out_off =
        in_off + round_up8(std::uint64_t{max_slots} * sizeof(NwSlotIn));
    const std::uint64_t nblocks_off =
        out_off + round_up8(std::uint64_t{max_slots} * sizeof(NwSlotOut));

    {
      SegmentScope s(p.clock(), res.breakdown, Segment::kCpuDpu);
      set.broadcast(Target::mram(a_off), a);
      set.broadcast(Target::mram(b_off), b);
      std::vector<NwArgs> args(
          prm.nr_dpus, {a_off, b_off, in_off, out_off, nblocks_off});
      push_symbol(set, "nw_args", args);
    }

    // Host-side boundary store.
    std::vector<std::vector<std::int32_t>> bottom(
        std::uint64_t{nb} * nb), right(std::uint64_t{nb} * nb);
    auto idx = [&](std::uint32_t bi, std::uint32_t bj) {
      return std::uint64_t{bi} * nb + bj;
    };

    auto in_stage = p.alloc(sizeof(NwSlotIn));
    auto out_stage = p.alloc(sizeof(NwSlotOut));
    std::int32_t final_score = 0;

    // PrIM's NW moves boundaries element-wise: >650k operations of ~160
    // bytes at full scale. We transfer each slot in 160-byte chunks to
    // reproduce that op-size distribution.
    const std::uint64_t kChunk = std::max<std::uint64_t>(
        8, static_cast<std::uint64_t>(104 * prm.xfer_grain) / 8 * 8);
    auto chunked_write = [&](std::uint32_t dpu, std::uint64_t off,
                             std::span<const std::uint8_t> data) {
      for (std::uint64_t o = 0; o < data.size(); o += kChunk) {
        const std::uint64_t n = std::min(kChunk, data.size() - o);
        std::memcpy(in_stage.data(), data.data() + o, n);
        set.copy_to(dpu, Target::mram(off + o), in_stage.first(n));
      }
    };
    auto chunked_read = [&](std::uint32_t dpu, std::uint64_t off,
                            std::span<std::uint8_t> out) {
      for (std::uint64_t o = 0; o < out.size(); o += kChunk) {
        const std::uint64_t n = std::min(kChunk, out.size() - o);
        set.copy_from(dpu, Target::mram(off + o), out_stage.first(n));
        std::memcpy(out.data() + o, out_stage.data(), n);
      }
    };

    for (std::uint32_t d = 0; d <= 2 * (nb - 1); ++d) {
      // Blocks on this anti-diagonal, assigned round-robin to DPUs.
      std::vector<std::pair<std::uint32_t, std::uint32_t>> blocks;
      for (std::uint32_t bi = 0; bi < nb; ++bi) {
        if (d < bi || d - bi >= nb) continue;
        blocks.emplace_back(bi, d - bi);
      }
      std::vector<std::uint32_t> slots(prm.nr_dpus, 0);
      std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
          assigned(prm.nr_dpus);
      {
        SegmentScope s(p.clock(), res.breakdown, Segment::kInterDpu);
        for (std::size_t k = 0; k < blocks.size(); ++k) {
          const auto [bi, bj] = blocks[k];
          const auto dpu =
              static_cast<std::uint32_t>(k % prm.nr_dpus);
          const std::uint32_t slot = slots[dpu]++;
          assigned[dpu].push_back(blocks[k]);

          NwSlotIn in;
          in.a_base = bi * kNwBlock;
          in.b_base = bj * kNwBlock;
          for (std::uint32_t j = 0; j <= kNwBlock; ++j) {
            in.top[j] = bi == 0 ? -static_cast<std::int32_t>(
                                      in.b_base + j) * 1
                                : bottom[idx(bi - 1, bj)][j];
          }
          for (std::uint32_t i = 0; i < kNwBlock; ++i) {
            in.left[i] = bj == 0 ? -static_cast<std::int32_t>(
                                       in.a_base + i + 1) * 1
                                 : right[idx(bi, bj - 1)][i];
          }
          // Several small write-to-rank operations per block (~160 B
          // each), like the element-wise PrIM implementation.
          chunked_write(dpu, in_off + slot * sizeof(NwSlotIn),
                        {reinterpret_cast<const std::uint8_t*>(&in),
                         sizeof(in)});
        }
        // Per-DPU slot counts travel as small MRAM writes (batched).
        for (std::uint32_t dpu = 0; dpu < prm.nr_dpus; ++dpu) {
          std::memcpy(in_stage.data(), &slots[dpu], 4);
          set.copy_to(dpu, Target::mram(nblocks_off), in_stage.first(4));
        }
      }
      {
        SegmentScope s(p.clock(), res.breakdown, Segment::kDpu);
        set.launch(prm.nr_tasklets);
      }
      {
        SegmentScope s(p.clock(), res.breakdown, Segment::kDpuCpu);
        for (std::uint32_t dpu = 0; dpu < prm.nr_dpus; ++dpu) {
          for (std::uint32_t slot = 0; slot < slots[dpu]; ++slot) {
            // Several small read-from-rank operations per block.
            NwSlotOut out;
            chunked_read(dpu, out_off + slot * sizeof(NwSlotOut),
                         {reinterpret_cast<std::uint8_t*>(&out),
                          sizeof(out)});
            const auto [bi, bj] = assigned[dpu][slot];
            bottom[idx(bi, bj)].assign(out.bottom,
                                       out.bottom + kNwBlock + 1);
            right[idx(bi, bj)].assign(out.right, out.right + kNwBlock);
            if (bi == nb - 1 && bj == nb - 1) {
              final_score = out.bottom[kNwBlock];
            }
          }
        }
      }
    }
    set.free();

    // CPU reference: full DP over the (n+1)^2 matrix, two rolling rows.
    std::vector<std::int32_t> prev(n + 1), cur(n + 1);
    for (std::uint32_t j = 0; j <= n; ++j) {
      prev[j] = -static_cast<std::int32_t>(j);
    }
    for (std::uint32_t i = 1; i <= n; ++i) {
      cur[0] = -static_cast<std::int32_t>(i);
      for (std::uint32_t j = 1; j <= n; ++j) {
        const std::int32_t sub =
            prev[j - 1] + (a[i - 1] == b[j - 1] ? kMatch : kMismatch);
        cur[j] = std::max(sub, std::max(prev[j] + kGap, cur[j - 1] + kGap));
      }
      std::swap(prev, cur);
    }
    res.correct = (final_score == prev[n]);
    return res;
  }
};

// ------------------------------------------------------------------ TRNS

constexpr std::uint32_t kTile = 16;  // 16x16 i32 tiles (1 KiB)

struct TrnsArgs {
  std::uint32_t ntiles = 0;
  std::uint64_t tiles_off = 0;
};

void trns_stage(DpuCtx& ctx) {
  const auto args = ctx.var<TrnsArgs>("trns_args");
  const auto [tb, te] = partition(args.ntiles, ctx.nr_tasklets(), ctx.me());
  if (tb >= te) return;
  constexpr std::uint32_t kTileBytes = kTile * kTile * 4;
  auto in_buf = ctx.mem_alloc(kTileBytes);
  auto out_buf = ctx.mem_alloc(kTileBytes);
  for (std::uint64_t t = tb; t < te; ++t) {
    ctx.mram_read(args.tiles_off + t * kTileBytes, in_buf);
    auto in = as<std::int32_t>(in_buf);
    auto out = as<std::int32_t>(out_buf);
    for (std::uint32_t r = 0; r < kTile; ++r) {
      for (std::uint32_t c = 0; c < kTile; ++c) {
        out[c * kTile + r] = in[r * kTile + c];
      }
    }
    ctx.exec(kTile * kTile);
    ctx.mram_write(out_buf, args.tiles_off + t * kTileBytes);
  }
}

class TrnsApp final : public PrimApp {
 public:
  std::string_view name() const override { return "TRNS"; }

  AppResult run(sdk::Platform& p, const AppParams& prm) override {
    register_heavy_kernels();
    AppResult res;
    res.app = "TRNS";
    const auto dim = static_cast<std::uint32_t>(detail::scaled_elems(
        2048, std::sqrt(prm.scale), 1, kTile));
    const std::uint32_t tiles_per_side = dim / kTile;
    const std::uint64_t ntiles =
        std::uint64_t{tiles_per_side} * tiles_per_side;
    constexpr std::uint32_t kTileBytes = kTile * kTile * 4;

    Rng rng(prm.seed);
    auto in = as<std::int32_t>(
        p.alloc(std::uint64_t{dim} * dim * 4));
    auto out = as<std::int32_t>(
        p.alloc(std::uint64_t{dim} * dim * 4));
    for (auto& v : in) {
      v = static_cast<std::int32_t>(rng.uniform(-100000, 100000));
    }

    auto set = DpuSet::allocate(p, prm.nr_dpus);
    set.load("prim_trns");

    auto stage = p.alloc(kTileBytes);
    std::vector<std::uint32_t> slots(prm.nr_dpus, 0);
    {
      // One ~1 KiB write-to-rank per tile (the paper's 980k x 512 B
      // pattern at full scale).
      SegmentScope s(p.clock(), res.breakdown, Segment::kCpuDpu);
      for (std::uint64_t t = 0; t < ntiles; ++t) {
        const std::uint32_t ti =
            static_cast<std::uint32_t>(t / tiles_per_side);
        const std::uint32_t tj =
            static_cast<std::uint32_t>(t % tiles_per_side);
        auto tile = as<std::int32_t>(stage);
        for (std::uint32_t r = 0; r < kTile; ++r) {
          std::memcpy(&tile[r * kTile],
                      &in[(std::uint64_t{ti} * kTile + r) * dim +
                          std::uint64_t{tj} * kTile],
                      kTile * 4);
        }
        const auto dpu = static_cast<std::uint32_t>(t % prm.nr_dpus);
        set.copy_to(dpu,
                    Target::mram(std::uint64_t{slots[dpu]} * kTileBytes),
                    stage);
        slots[dpu]++;
      }
      std::vector<TrnsArgs> args(prm.nr_dpus);
      for (std::uint32_t dpu = 0; dpu < prm.nr_dpus; ++dpu) {
        args[dpu] = {slots[dpu], 0};
      }
      push_symbol(set, "trns_args", args);
    }
    {
      SegmentScope s(p.clock(), res.breakdown, Segment::kDpu);
      set.launch(prm.nr_tasklets);
    }
    {
      // One ~1 KiB read-from-rank per tile.
      SegmentScope s(p.clock(), res.breakdown, Segment::kDpuCpu);
      std::fill(slots.begin(), slots.end(), 0);
      for (std::uint64_t t = 0; t < ntiles; ++t) {
        const std::uint32_t ti =
            static_cast<std::uint32_t>(t / tiles_per_side);
        const std::uint32_t tj =
            static_cast<std::uint32_t>(t % tiles_per_side);
        const auto dpu = static_cast<std::uint32_t>(t % prm.nr_dpus);
        set.copy_from(
            dpu, Target::mram(std::uint64_t{slots[dpu]} * kTileBytes),
            stage);
        slots[dpu]++;
        auto tile = as<std::int32_t>(stage);
        for (std::uint32_t r = 0; r < kTile; ++r) {
          std::memcpy(&out[(std::uint64_t{tj} * kTile + r) * dim +
                           std::uint64_t{ti} * kTile],
                      &tile[r * kTile], kTile * 4);
        }
      }
    }
    set.free();

    res.correct = true;
    for (std::uint32_t r = 0; r < dim && res.correct; ++r) {
      for (std::uint32_t c = 0; c < dim; ++c) {
        if (out[std::uint64_t{c} * dim + r] !=
            in[std::uint64_t{r} * dim + c]) {
          res.correct = false;
          break;
        }
      }
    }
    return res;
  }
};

}  // namespace

void register_heavy_kernels() {
  auto& registry = KernelRegistry::instance();
  if (registry.contains("prim_nw")) return;

  DpuKernel nw;
  nw.name = "prim_nw";
  nw.symbols = {{"nw_args", sizeof(NwArgs)}, {"nw_nblocks", 4}};
  nw.stages = {nw_load_nblocks, nw_stage};
  registry.add(std::move(nw));

  DpuKernel trns;
  trns.name = "prim_trns";
  trns.symbols = {{"trns_args", sizeof(TrnsArgs)}};
  trns.stages = {trns_stage};
  registry.add(std::move(trns));
}

std::unique_ptr<PrimApp> make_nw() { return std::make_unique<NwApp>(); }
std::unique_ptr<PrimApp> make_trns() { return std::make_unique<TrnsApp>(); }

}  // namespace vpim::prim
