// PrIM application framework (paper §5, Table 1).
//
// Each application implements the UPMEM offload workflow against the SDK
// (so it runs unmodified on the native platform or inside a VM) and
// reports:
//   - the application-centric time breakdown the paper plots in Fig 8
//     (CPU-DPU / DPU / Inter-DPU / DPU-CPU);
//   - whether the DPU-computed result matches a host CPU reference
//     (the paper's correctness check in §5.2).
//
// Datasets are sized for the strong-scaling configuration: the total
// problem fits one rank and is divided across however many DPUs are used.
// `AppParams::scale` shrinks datasets proportionally for fast tests.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/breakdown.h"
#include "sdk/dpu_set.h"
#include "sdk/platform.h"

namespace vpim::prim {

struct AppParams {
  std::uint32_t nr_dpus = 60;
  std::uint32_t nr_tasklets = 16;
  std::uint64_t seed = 42;
  // Multiplies default dataset sizes (1.0 = bench scale; tests use less).
  double scale = 1.0;
  // Multiplies the size of individual boundary-transfer operations in
  // transfer-bound apps (NW): < 1.0 means finer-grained (more, smaller)
  // operations, like the element-wise PrIM implementations.
  double xfer_grain = 1.0;
};

struct AppResult {
  std::string app;
  TimeBreakdown breakdown;
  bool correct = false;
  SimNs total() const { return breakdown.total(); }
};

class PrimApp {
 public:
  virtual ~PrimApp() = default;
  virtual std::string_view name() const = 0;
  virtual AppResult run(sdk::Platform& platform,
                        const AppParams& params) = 0;
};

// Factory registry for the whole suite.
using AppFactory = std::function<std::unique_ptr<PrimApp>()>;
const std::map<std::string, AppFactory, std::less<>>& app_registry();
std::unique_ptr<PrimApp> make_app(std::string_view name);
std::vector<std::string> app_names();  // PrIM order used in Fig 8

// Registers every PrIM DPU kernel (idempotent).
void register_prim_kernels();

namespace detail {
// Scales a default element count, keeping it a multiple of `align` and at
// least `align * nr_dpus` so every DPU receives work.
std::uint64_t scaled_elems(std::uint64_t base, double scale,
                           std::uint32_t nr_dpus, std::uint64_t align = 1);
}  // namespace detail

}  // namespace vpim::prim
