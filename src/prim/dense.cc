// Dense linear algebra PrIM applications: VA (vector addition), GEMV
// (matrix-vector multiply), and MLP (3-layer perceptron built from GEMV
// launches with host-side redistribution between layers).
#include <cstring>

#include "common/rng.h"
#include "prim/apps.h"
#include "prim/util.h"
#include "upmem/kernel.h"

namespace vpim::prim {
namespace {

using driver::XferDirection;
using sdk::DpuSet;
using sdk::Target;
using upmem::DpuCtx;
using upmem::DpuKernel;
using upmem::KernelRegistry;

struct VaArgs {
  std::uint64_t n = 0;  // elements in this DPU's partition
  std::uint64_t a_off = 0, b_off = 0, c_off = 0;
};

struct GemvArgs {
  std::uint32_t n_rows = 0;  // rows in this DPU's partition
  std::uint32_t n_cols = 0;
  std::uint64_t w_off = 0, x_off = 0, y_off = 0;
  std::uint32_t relu = 0;
};

constexpr std::uint32_t kGemvMaxCols = 1024;  // x fits the WRAM cache

void va_stage(DpuCtx& ctx) {
  const auto args = ctx.var<VaArgs>("va_args");
  const auto [begin, end] =
      partition(args.n, ctx.nr_tasklets(), ctx.me());
  if (begin >= end) return;
  // 1 KiB per buffer so 16 tasklets x 2 buffers fit the WRAM heap.
  constexpr std::uint32_t kBlock = 256;
  auto a_buf = ctx.mem_alloc(kBlock * 4);
  auto b_buf = ctx.mem_alloc(kBlock * 4);
  for (std::uint64_t e = begin; e < end; e += kBlock) {
    const auto n = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kBlock, end - e));
    ctx.mram_read(args.a_off + e * 4, a_buf.first(n * 4));
    ctx.mram_read(args.b_off + e * 4, b_buf.first(n * 4));
    auto a = as<std::int32_t>(a_buf);
    auto b = as<std::int32_t>(b_buf);
    for (std::uint32_t i = 0; i < n; ++i) a[i] += b[i];
    ctx.exec(n);
    ctx.mram_write(a_buf.first(n * 4), args.c_off + e * 4);
  }
}

void gemv_load_x(DpuCtx& ctx) {
  if (ctx.me() != 0) return;
  const auto args = ctx.var<GemvArgs>("gemv_args");
  auto x_cache = ctx.symbol_bytes("x_cache");
  ctx.mram_read(args.x_off, x_cache.first(args.n_cols * 4));
}

void gemv_rows(DpuCtx& ctx) {
  const auto args = ctx.var<GemvArgs>("gemv_args");
  const auto [row_begin, row_end] =
      partition(args.n_rows, ctx.nr_tasklets(), ctx.me());
  if (row_begin >= row_end) return;
  auto x = as<std::int32_t>(ctx.symbol_bytes("x_cache"));
  // Stream each row through a 1 KiB WRAM block (16 tasklets x 1 KiB must
  // fit the shared WRAM heap alongside the per-tasklet y buffers).
  constexpr std::uint32_t kChunkCols = 256;
  auto row_buf = ctx.mem_alloc(kChunkCols * 4);
  auto y_buf =
      ctx.mem_alloc(static_cast<std::uint32_t>(row_end - row_begin) * 4);
  auto y = as<std::int32_t>(y_buf);
  for (std::uint64_t r = row_begin; r < row_end; ++r) {
    std::int64_t acc = 0;
    for (std::uint32_t c0 = 0; c0 < args.n_cols; c0 += kChunkCols) {
      const std::uint32_t n = std::min(kChunkCols, args.n_cols - c0);
      ctx.mram_read(args.w_off + (r * args.n_cols + c0) * 4,
                    row_buf.first(n * 4));
      auto row = as<std::int32_t>(row_buf);
      for (std::uint32_t c = 0; c < n; ++c) {
        acc += static_cast<std::int64_t>(row[c]) * x[c0 + c];
      }
    }
    ctx.exec(args.n_cols);
    auto v = static_cast<std::int32_t>(acc);
    if (args.relu && v < 0) v = 0;
    y[r - row_begin] = v;
  }
  ctx.mram_write(y_buf.first((row_end - row_begin) * 4),
                 args.y_off + row_begin * 4);
}

// ------------------------------------------------------------------- VA

class VaApp final : public PrimApp {
 public:
  std::string_view name() const override { return "VA"; }

  AppResult run(sdk::Platform& p, const AppParams& prm) override {
    register_dense_kernels();
    AppResult res;
    res.app = "VA";
    const std::uint64_t total =
        detail::scaled_elems(16'000'000, prm.scale, prm.nr_dpus, 2);
    std::uint64_t max_per = 0;
    for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
      auto [b, e] = partition(total, prm.nr_dpus, d);
      max_per = std::max(max_per, e - b);
    }
    const std::uint64_t cap = round_up8(max_per * 4);

    Rng rng(prm.seed);
    auto a = as<std::int32_t>(p.alloc(total * 4));
    auto b = as<std::int32_t>(p.alloc(total * 4));
    auto c = as<std::int32_t>(p.alloc(total * 4));
    for (std::uint64_t i = 0; i < total; ++i) {
      a[i] = static_cast<std::int32_t>(rng.uniform(-1000000, 1000000));
      b[i] = static_cast<std::int32_t>(rng.uniform(-1000000, 1000000));
    }

    auto set = DpuSet::allocate(p, prm.nr_dpus);
    set.load("prim_va");

    std::vector<VaArgs> args(prm.nr_dpus);
    std::vector<std::uint64_t> sizes(prm.nr_dpus);
    {
      SegmentScope s(p.clock(), res.breakdown, Segment::kCpuDpu);
      for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
        auto [begin, end] = partition(total, prm.nr_dpus, d);
        args[d] = {end - begin, 0, cap, 2 * cap};
        sizes[d] = (end - begin) * 4;
      }
      for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
        auto [begin, end] = partition(total, prm.nr_dpus, d);
        set.prepare_xfer(d, reinterpret_cast<std::uint8_t*>(&a[begin]));
      }
      set.push_xfer(XferDirection::kToRank, Target::mram(0), sizes);
      for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
        auto [begin, end] = partition(total, prm.nr_dpus, d);
        set.prepare_xfer(d, reinterpret_cast<std::uint8_t*>(&b[begin]));
      }
      set.push_xfer(XferDirection::kToRank, Target::mram(cap), sizes);
      push_symbol(set, "va_args", args);
    }
    {
      SegmentScope s(p.clock(), res.breakdown, Segment::kDpu);
      set.launch(prm.nr_tasklets);
    }
    {
      SegmentScope s(p.clock(), res.breakdown, Segment::kDpuCpu);
      for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
        auto [begin, end] = partition(total, prm.nr_dpus, d);
        set.prepare_xfer(d, reinterpret_cast<std::uint8_t*>(&c[begin]));
      }
      set.push_xfer(XferDirection::kFromRank, Target::mram(2 * cap), sizes);
    }
    set.free();

    res.correct = true;
    for (std::uint64_t i = 0; i < total; ++i) {
      if (c[i] != a[i] + b[i]) {
        res.correct = false;
        break;
      }
    }
    return res;
  }
};

// ----------------------------------------------------------------- GEMV

// Shared by GEMV and MLP: runs y = W.x on `set`, rows split across DPUs.
// W is pre-positioned in MRAM; x is broadcast each call. Returns y.
void gemv_round(DpuSet& set, std::uint32_t rows, std::uint32_t cols,
                std::uint64_t w_off, std::uint64_t x_off,
                std::uint64_t y_off, bool relu,
                std::span<const std::int32_t> x, std::span<std::int32_t> y,
                std::uint32_t nr_tasklets, TimeBreakdown& bd,
                SimClock& clock, Segment in_seg, Segment out_seg) {
  const std::uint32_t nr_dpus = set.nr_dpus();
  std::vector<GemvArgs> args(nr_dpus);
  {
    SegmentScope s(clock, bd, in_seg);
    set.broadcast(Target::mram(x_off),
                  {reinterpret_cast<const std::uint8_t*>(x.data()),
                   x.size() * 4});
    for (std::uint32_t d = 0; d < nr_dpus; ++d) {
      auto [rb, re] = partition(rows, nr_dpus, d);
      args[d] = {static_cast<std::uint32_t>(re - rb), cols, w_off, x_off,
                 y_off, relu ? 1u : 0u};
    }
    push_symbol(set, "gemv_args", args);
  }
  {
    SegmentScope s(clock, bd, Segment::kDpu);
    set.launch(nr_tasklets);
  }
  {
    SegmentScope s(clock, bd, out_seg);
    std::vector<std::uint64_t> sizes(nr_dpus);
    for (std::uint32_t d = 0; d < nr_dpus; ++d) {
      auto [rb, re] = partition(rows, nr_dpus, d);
      sizes[d] = (re - rb) * 4;
      set.prepare_xfer(d, reinterpret_cast<std::uint8_t*>(&y[rb]));
    }
    set.push_xfer(XferDirection::kFromRank, Target::mram(y_off), sizes);
  }
}

// Distributes W's row partitions to the DPUs (CPU-DPU segment).
void place_weights(DpuSet& set, std::span<const std::int32_t> w,
                   std::uint32_t rows, std::uint32_t cols,
                   std::uint64_t w_off, TimeBreakdown& bd, SimClock& clock) {
  SegmentScope s(clock, bd, Segment::kCpuDpu);
  const std::uint32_t nr_dpus = set.nr_dpus();
  std::vector<std::uint64_t> sizes(nr_dpus);
  for (std::uint32_t d = 0; d < nr_dpus; ++d) {
    auto [rb, re] = partition(rows, nr_dpus, d);
    sizes[d] = (re - rb) * cols * 4;
    set.prepare_xfer(
        d, const_cast<std::uint8_t*>(
               reinterpret_cast<const std::uint8_t*>(&w[rb * cols])));
  }
  set.push_xfer(XferDirection::kToRank, Target::mram(w_off), sizes);
}

void cpu_gemv(std::span<const std::int32_t> w,
              std::span<const std::int32_t> x, std::span<std::int32_t> y,
              std::uint32_t rows, std::uint32_t cols, bool relu) {
  for (std::uint32_t r = 0; r < rows; ++r) {
    std::int64_t acc = 0;
    for (std::uint32_t c = 0; c < cols; ++c) {
      acc += static_cast<std::int64_t>(w[r * cols + c]) * x[c];
    }
    auto v = static_cast<std::int32_t>(acc);
    y[r] = (relu && v < 0) ? 0 : v;
  }
}

class GemvApp final : public PrimApp {
 public:
  std::string_view name() const override { return "GEMV"; }

  AppResult run(sdk::Platform& p, const AppParams& prm) override {
    register_dense_kernels();
    AppResult res;
    res.app = "GEMV";
    const std::uint32_t cols = kGemvMaxCols;
    const auto rows = static_cast<std::uint32_t>(
        detail::scaled_elems(16384, prm.scale, prm.nr_dpus, 1));

    Rng rng(prm.seed);
    auto w = as<std::int32_t>(
        p.alloc(std::uint64_t{rows} * cols * 4));
    auto x = as<std::int32_t>(p.alloc(cols * 4));
    auto y = as<std::int32_t>(p.alloc(rows * 4));
    for (auto& v : w) v = static_cast<std::int32_t>(rng.uniform(-100, 100));
    for (auto& v : x) v = static_cast<std::int32_t>(rng.uniform(-100, 100));

    auto set = DpuSet::allocate(p, prm.nr_dpus);
    set.load("prim_gemv");

    // MRAM layout: [W partition][x][y partition].
    std::uint64_t max_rows = 0;
    for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
      auto [rb, re] = partition(rows, prm.nr_dpus, d);
      max_rows = std::max<std::uint64_t>(max_rows, re - rb);
    }
    const std::uint64_t w_cap = round_up8(max_rows * cols * 4);
    const std::uint64_t x_off = w_cap;
    const std::uint64_t y_off = x_off + round_up8(cols * 4);

    place_weights(set, w, rows, cols, 0, res.breakdown, p.clock());
    gemv_round(set, rows, cols, 0, x_off, y_off, false, x, y,
               prm.nr_tasklets, res.breakdown, p.clock(),
               Segment::kCpuDpu, Segment::kDpuCpu);
    set.free();

    std::vector<std::int32_t> ref(rows);
    cpu_gemv(w, x, ref, rows, cols, false);
    res.correct = std::equal(ref.begin(), ref.end(), y.begin());
    return res;
  }
};

// ------------------------------------------------------------------ MLP

class MlpApp final : public PrimApp {
 public:
  std::string_view name() const override { return "MLP"; }

  AppResult run(sdk::Platform& p, const AppParams& prm) override {
    register_dense_kernels();
    AppResult res;
    res.app = "MLP";
    constexpr std::uint32_t kLayers = 3;
    const std::uint32_t dim = kGemvMaxCols;  // square layers
    const auto rows = static_cast<std::uint32_t>(
        detail::scaled_elems(4 * dim, prm.scale, prm.nr_dpus, 1));

    Rng rng(prm.seed);
    std::vector<std::span<std::int32_t>> weights;
    for (std::uint32_t l = 0; l < kLayers; ++l) {
      auto w = as<std::int32_t>(p.alloc(std::uint64_t{rows} * dim * 4));
      for (auto& v : w) v = static_cast<std::int32_t>(rng.uniform(-8, 8));
      weights.push_back(w);
    }
    auto x = as<std::int32_t>(p.alloc(dim * 4));
    for (auto& v : x) v = static_cast<std::int32_t>(rng.uniform(-8, 8));
    auto act = as<std::int32_t>(p.alloc(dim * 4));  // activations buffer
    auto y = as<std::int32_t>(p.alloc(rows * 4));

    auto set = DpuSet::allocate(p, prm.nr_dpus);
    set.load("prim_gemv");

    std::uint64_t max_rows = 0;
    for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
      auto [rb, re] = partition(rows, prm.nr_dpus, d);
      max_rows = std::max<std::uint64_t>(max_rows, re - rb);
    }
    const std::uint64_t w_cap = round_up8(max_rows * dim * 4);
    const std::uint64_t x_off = kLayers * w_cap;
    const std::uint64_t y_off = x_off + round_up8(dim * 4);

    // All layer weights go down once (CPU-DPU).
    for (std::uint32_t l = 0; l < kLayers; ++l) {
      place_weights(set, weights[l], rows, dim, l * w_cap, res.breakdown,
                    p.clock());
    }

    // Layer 0 consumes the input (CPU-DPU / DPU-CPU); later layers are
    // host-mediated redistribution, which PrIM accounts as Inter-DPU.
    std::copy(x.begin(), x.end(), act.begin());
    for (std::uint32_t l = 0; l < kLayers; ++l) {
      const bool relu = l + 1 < kLayers;
      const Segment in = l == 0 ? Segment::kCpuDpu : Segment::kInterDpu;
      const Segment out =
          l + 1 == kLayers ? Segment::kDpuCpu : Segment::kInterDpu;
      gemv_round(set, rows, dim, l * w_cap, x_off, y_off, relu,
                 act.first(dim), y, prm.nr_tasklets, res.breakdown,
                 p.clock(), in, out);
      if (l + 1 < kLayers) {
        // Next layer's input = this layer's output (truncate/extend to
        // `dim`, matching the square-layer setup).
        for (std::uint32_t i = 0; i < dim; ++i) {
          act[i] = i < rows ? y[i] : 0;
        }
      }
    }
    set.free();

    // CPU reference.
    std::vector<std::int32_t> ref_in(x.begin(), x.end());
    std::vector<std::int32_t> ref_out(rows);
    for (std::uint32_t l = 0; l < kLayers; ++l) {
      cpu_gemv(weights[l], ref_in, ref_out, rows, dim, l + 1 < kLayers);
      if (l + 1 < kLayers) {
        ref_in.assign(dim, 0);
        for (std::uint32_t i = 0; i < dim && i < rows; ++i) {
          ref_in[i] = ref_out[i];
        }
      }
    }
    res.correct = std::equal(ref_out.begin(), ref_out.end(), y.begin());
    return res;
  }
};

}  // namespace

void register_dense_kernels() {
  auto& registry = KernelRegistry::instance();
  if (registry.contains("prim_va")) return;
  DpuKernel va;
  va.name = "prim_va";
  va.symbols = {{"va_args", sizeof(VaArgs)}};
  va.stages = {va_stage};
  registry.add(std::move(va));

  DpuKernel gemv;
  gemv.name = "prim_gemv";
  gemv.symbols = {{"gemv_args", sizeof(GemvArgs)},
                  {"x_cache", kGemvMaxCols * 4}};
  gemv.stages = {gemv_load_x, gemv_rows};
  registry.add(std::move(gemv));
}

std::unique_ptr<PrimApp> make_va() { return std::make_unique<VaApp>(); }
std::unique_ptr<PrimApp> make_gemv() { return std::make_unique<GemvApp>(); }
std::unique_ptr<PrimApp> make_mlp() { return std::make_unique<MlpApp>(); }

}  // namespace vpim::prim
