// Internal: per-application factories and kernel registrars.
#pragma once

#include <memory>

#include "prim/app.h"

namespace vpim::prim {

std::unique_ptr<PrimApp> make_va();
std::unique_ptr<PrimApp> make_gemv();
std::unique_ptr<PrimApp> make_mlp();
std::unique_ptr<PrimApp> make_red();
std::unique_ptr<PrimApp> make_scan_ssa();
std::unique_ptr<PrimApp> make_scan_rss();
std::unique_ptr<PrimApp> make_hst_s();
std::unique_ptr<PrimApp> make_hst_l();
std::unique_ptr<PrimApp> make_sel();
std::unique_ptr<PrimApp> make_uni();
std::unique_ptr<PrimApp> make_bs();
std::unique_ptr<PrimApp> make_ts();
std::unique_ptr<PrimApp> make_spmv();
std::unique_ptr<PrimApp> make_bfs();
std::unique_ptr<PrimApp> make_nw();
std::unique_ptr<PrimApp> make_trns();

void register_dense_kernels();       // VA, GEMV(+MLP)
void register_reduce_scan_kernels(); // RED, SCAN-SSA, SCAN-RSS
void register_hist_kernels();        // HST-S, HST-L
void register_db_kernels();          // SEL, UNI, BS, TS
void register_sparse_kernels();      // SpMV, BFS
void register_heavy_kernels();       // NW, TRNS

}  // namespace vpim::prim
