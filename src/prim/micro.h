// UPMEM-provided microbenchmarks (§5.3): the checksum demo and the
// Wikipedia Index Search use case.
#pragma once

#include <cstdint>

#include "common/breakdown.h"
#include "sdk/platform.h"

namespace vpim::prim {

struct ChecksumParams {
  std::uint32_t nr_dpus = 60;
  std::uint32_t nr_tasklets = 16;
  std::uint64_t file_bytes = 60 * kMiB;  // input file size (per DPU)
  std::uint64_t seed = 42;
};

struct ChecksumResult {
  SimNs total = 0;
  bool correct = false;
  std::uint64_t write_ops = 0;  // host-visible op counts, for the paper's
  std::uint64_t read_ops = 0;   // "1 write + 60 reads + 8k-28k CI" claim
  std::uint64_t ci_ops = 0;
};

// The checksum demo: generates a random file, broadcasts it to every DPU
// (all DPUs checksum the *same* data), launches, and reads each DPU's
// result back (one small MRAM read per DPU).
ChecksumResult run_checksum(sdk::Platform& platform,
                            const ChecksumParams& params);

struct IndexSearchParams {
  std::uint32_t nr_dpus = 60;
  std::uint32_t nr_tasklets = 16;
  std::uint32_t nr_documents = 4305;   // Wikipedia subset size
  std::uint32_t nr_queries = 445;      // benchmark configuration
  std::uint32_t batch_size = 128;      // requests per batch (4 batches)
  std::uint32_t avg_doc_words = 1900;  // sized so the index is ~63 MB
  std::uint64_t seed = 42;
};

struct IndexSearchResult {
  SimNs total = 0;
  bool correct = false;
  std::uint64_t index_bytes = 0;
  std::uint64_t matches = 0;
};

// The Index Search use case: builds an inverted index over a synthetic
// Zipfian document corpus, distributes index partitions across DPUs,
// then streams query batches (445 queries in batches of 128).
IndexSearchResult run_index_search(sdk::Platform& platform,
                                   const IndexSearchParams& params);

void register_micro_kernels();

}  // namespace vpim::prim
