#include "prim/app.h"

#include "prim/apps.h"

namespace vpim::prim {

const std::map<std::string, AppFactory, std::less<>>& app_registry() {
  static const std::map<std::string, AppFactory, std::less<>> registry = {
      {"VA", make_va},           {"GEMV", make_gemv},
      {"MLP", make_mlp},         {"RED", make_red},
      {"SCAN-SSA", make_scan_ssa}, {"SCAN-RSS", make_scan_rss},
      {"HST-S", make_hst_s},     {"HST-L", make_hst_l},
      {"SEL", make_sel},         {"UNI", make_uni},
      {"BS", make_bs},           {"TS", make_ts},
      {"SpMV", make_spmv},       {"BFS", make_bfs},
      {"NW", make_nw},           {"TRNS", make_trns},
  };
  return registry;
}

std::unique_ptr<PrimApp> make_app(std::string_view name) {
  const auto& registry = app_registry();
  auto it = registry.find(name);
  VPIM_CHECK(it != registry.end(),
             "unknown PrIM application: " + std::string(name));
  return it->second();
}

std::vector<std::string> app_names() {
  // Fig 8 layout order.
  return {"BS",       "TS",       "MLP",      "VA",  "HST-L", "HST-S",
          "GEMV",     "SCAN-RSS", "SCAN-SSA", "RED", "TRNS",  "NW",
          "SEL",      "UNI",      "SpMV",     "BFS"};
}

void register_prim_kernels() {
  register_dense_kernels();
  register_reduce_scan_kernels();
  register_hist_kernels();
  register_db_kernels();
  register_sparse_kernels();
  register_heavy_kernels();
}

namespace detail {
std::uint64_t scaled_elems(std::uint64_t base, double scale,
                           std::uint32_t nr_dpus, std::uint64_t align) {
  auto n = static_cast<std::uint64_t>(static_cast<double>(base) * scale);
  const std::uint64_t min_n = std::uint64_t{nr_dpus} * align;
  if (n < min_n) n = min_n;
  n = (n + align - 1) / align * align;
  return n;
}
}  // namespace detail

}  // namespace vpim::prim
