// Sparse/irregular applications: SpMV (CSR sparse matrix-vector multiply,
// whose CPU-DPU step is implemented serially per DPU in PrIM — the reason
// it slows down at 480 DPUs) and BFS (level-synchronous breadth-first
// search whose per-level frontier handshakes dominate the Inter-DPU
// segment, §5.2 fourth observation).
#include <cstring>
#include <queue>

#include "common/rng.h"
#include "prim/apps.h"
#include "prim/util.h"
#include "upmem/kernel.h"

namespace vpim::prim {
namespace {

using driver::XferDirection;
using sdk::DpuSet;
using sdk::Target;
using upmem::DpuCtx;
using upmem::DpuKernel;
using upmem::KernelRegistry;

// ----------------------------------------------------------------- SpMV

struct SpmvArgs {
  std::uint32_t n_rows = 0;
  std::uint32_t n_cols = 0;
  std::uint64_t rowptr_off = 0;
  std::uint64_t col_off = 0;
  std::uint64_t val_off = 0;
  std::uint64_t x_off = 0;
  std::uint64_t y_off = 0;
};

void spmv_stage(DpuCtx& ctx) {
  const auto args = ctx.var<SpmvArgs>("spmv_args");
  const auto [row_begin, row_end] =
      partition(args.n_rows, ctx.nr_tasklets(), ctx.me());
  if (row_begin >= row_end) return;
  constexpr std::uint32_t kChunk = 128;
  auto ptr_buf = ctx.mem_alloc((kChunk + 1) * 4);
  auto col_buf = ctx.mem_alloc(kChunk * 4);
  auto val_buf = ctx.mem_alloc(kChunk * 4);
  auto y_buf =
      ctx.mem_alloc(static_cast<std::uint32_t>(row_end - row_begin) * 4);
  auto y = as<std::int32_t>(y_buf);

  for (std::uint64_t r0 = row_begin; r0 < row_end; r0 += kChunk) {
    const auto rn = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kChunk, row_end - r0));
    ctx.mram_read(args.rowptr_off + r0 * 4, ptr_buf.first((rn + 1) * 4));
    auto rowptr = as<std::uint32_t>(ptr_buf);
    for (std::uint32_t r = 0; r < rn; ++r) {
      std::int64_t acc = 0;
      std::uint32_t nz = rowptr[r];
      const std::uint32_t nz_end = rowptr[r + 1];
      while (nz < nz_end) {
        const std::uint32_t n = std::min(kChunk, nz_end - nz);
        ctx.mram_read(args.col_off + std::uint64_t{nz} * 4,
                      col_buf.first(n * 4));
        ctx.mram_read(args.val_off + std::uint64_t{nz} * 4,
                      val_buf.first(n * 4));
        auto cols = as<std::uint32_t>(col_buf);
        auto vals = as<std::int32_t>(val_buf);
        for (std::uint32_t i = 0; i < n; ++i) {
          // Gather x[col] straight from MRAM (per-element DMA, as the
          // irregular access pattern forces on real hardware).
          std::int32_t xv;
          ctx.mram_read(args.x_off + std::uint64_t{cols[i]} * 4,
                        bytes_of(xv));
          acc += static_cast<std::int64_t>(vals[i]) * xv;
        }
        ctx.exec(2 * n);
        nz += n;
      }
      y[(r0 + r) - row_begin] = static_cast<std::int32_t>(acc);
    }
  }
  ctx.mram_write(y_buf.first((row_end - row_begin) * 4),
                 args.y_off + row_begin * 4);
}

struct Csr {
  std::uint32_t rows = 0, cols = 0;
  std::vector<std::uint32_t> rowptr;  // rows+1
  std::vector<std::uint32_t> col;
  std::vector<std::int32_t> val;
};

Csr make_sparse(std::uint32_t rows, std::uint32_t cols, std::uint32_t avg_nnz,
                Rng& rng) {
  Csr m;
  m.rows = rows;
  m.cols = cols;
  m.rowptr.push_back(0);
  for (std::uint32_t r = 0; r < rows; ++r) {
    const auto nnz = static_cast<std::uint32_t>(
        rng.uniform(1, 2 * avg_nnz - 1));
    for (std::uint32_t k = 0; k < nnz; ++k) {
      m.col.push_back(
          static_cast<std::uint32_t>(rng.uniform(0, cols - 1)));
      m.val.push_back(static_cast<std::int32_t>(rng.uniform(-50, 50)));
    }
    m.rowptr.push_back(static_cast<std::uint32_t>(m.col.size()));
  }
  return m;
}

class SpmvApp final : public PrimApp {
 public:
  std::string_view name() const override { return "SpMV"; }

  AppResult run(sdk::Platform& p, const AppParams& prm) override {
    register_sparse_kernels();
    AppResult res;
    res.app = "SpMV";
    const auto rows = static_cast<std::uint32_t>(
        detail::scaled_elems(320'000, prm.scale, prm.nr_dpus, 1));
    const std::uint32_t cols = 16384;
    const std::uint32_t avg_nnz = 12;

    Rng rng(prm.seed);
    Csr m = make_sparse(rows, cols, avg_nnz, rng);
    std::vector<std::int32_t> x(cols);
    for (auto& v : x) v = static_cast<std::int32_t>(rng.uniform(-20, 20));
    std::vector<std::int32_t> y(rows, 0);

    auto set = DpuSet::allocate(p, prm.nr_dpus);
    set.load("prim_spmv");

    // Per-DPU staging buffers (rebased CSR slices live in host memory the
    // platform owns, so the guest path can reach them zero-copy).
    struct Slice {
      std::span<std::uint32_t> rowptr;
      std::span<std::uint32_t> col;
      std::span<std::int32_t> val;
      std::uint32_t n_rows = 0;
      std::uint32_t row_base = 0;
    };
    std::vector<Slice> slices(prm.nr_dpus);
    auto x_host = as<std::int32_t>(p.alloc(cols * 4));
    std::copy(x.begin(), x.end(), x_host.begin());

    std::vector<SpmvArgs> args(prm.nr_dpus);
    {
      // PrIM transfers SpMV inputs serially, one DPU after another.
      SegmentScope s(p.clock(), res.breakdown, Segment::kCpuDpu);
      for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
        auto [rb, re] = partition(rows, prm.nr_dpus, d);
        Slice& sl = slices[d];
        sl.n_rows = static_cast<std::uint32_t>(re - rb);
        sl.row_base = static_cast<std::uint32_t>(rb);
        const std::uint32_t nz_begin = m.rowptr[rb];
        const std::uint32_t nz_end = m.rowptr[re];
        const std::uint32_t nnz = nz_end - nz_begin;
        sl.rowptr = as<std::uint32_t>(p.alloc((sl.n_rows + 1) * 4));
        for (std::uint32_t r = 0; r <= sl.n_rows; ++r) {
          sl.rowptr[r] = m.rowptr[rb + r] - nz_begin;
        }
        sl.col = as<std::uint32_t>(p.alloc(std::uint64_t{nnz} * 4));
        sl.val = as<std::int32_t>(p.alloc(std::uint64_t{nnz} * 4));
        std::copy(m.col.begin() + nz_begin, m.col.begin() + nz_end,
                  sl.col.begin());
        std::copy(m.val.begin() + nz_begin, m.val.begin() + nz_end,
                  sl.val.begin());

        // Uniform layout: the last two regions (x, y) sit at fixed
        // offsets so x can be broadcast and y read back in one parallel
        // operation. 48 MiB leaves ample room for the CSR slice.
        const std::uint64_t rowptr_off = 0;
        const std::uint64_t col_off =
            rowptr_off + round_up8((sl.n_rows + 1) * 4);
        const std::uint64_t val_off = col_off + round_up8(nnz * 4ULL);
        const std::uint64_t x_off = 48 * kMiB;
        const std::uint64_t y_off = x_off + round_up8(cols * 4);
        VPIM_CHECK(val_off + round_up8(nnz * 4ULL) <= x_off,
                   "CSR slice overflows its region");
        args[d] = {sl.n_rows, cols, rowptr_off, col_off,
                   val_off,   x_off, y_off};

        auto put = [&](std::uint64_t off, void* data, std::uint64_t n) {
          set.copy_to(d, Target::mram(off),
                      {static_cast<std::uint8_t*>(data), n});
        };
        put(rowptr_off, sl.rowptr.data(), (sl.n_rows + 1) * 4);
        put(col_off, sl.col.data(), std::uint64_t{nnz} * 4);
        put(val_off, sl.val.data(), std::uint64_t{nnz} * 4);
      }
      // The dense vector is identical everywhere: one broadcast.
      set.broadcast(Target::mram(48 * kMiB),
                    {reinterpret_cast<std::uint8_t*>(x_host.data()),
                     std::uint64_t{cols} * 4});
      push_symbol(set, "spmv_args", args);
    }
    {
      SegmentScope s(p.clock(), res.breakdown, Segment::kDpu);
      set.launch(prm.nr_tasklets);
    }
    {
      SegmentScope s(p.clock(), res.breakdown, Segment::kDpuCpu);
      auto y_host = as<std::int32_t>(p.alloc(std::uint64_t{rows} * 4));
      std::vector<std::uint64_t> sizes(prm.nr_dpus);
      for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
        sizes[d] = std::uint64_t{slices[d].n_rows} * 4;
        set.prepare_xfer(
            d, reinterpret_cast<std::uint8_t*>(
                   &y_host[slices[d].row_base]));
      }
      set.push_xfer(XferDirection::kFromRank,
                    Target::mram(args[0].y_off), sizes);
      std::copy(y_host.begin(), y_host.end(), y.begin());
    }
    set.free();

    res.correct = true;
    for (std::uint32_t r = 0; r < rows && res.correct; ++r) {
      std::int64_t acc = 0;
      for (std::uint32_t nz = m.rowptr[r]; nz < m.rowptr[r + 1]; ++nz) {
        acc += static_cast<std::int64_t>(m.val[nz]) * x[m.col[nz]];
      }
      if (y[r] != static_cast<std::int32_t>(acc)) res.correct = false;
    }
    return res;
  }
};

// ------------------------------------------------------------------ BFS

struct BfsArgs {
  std::uint32_t n_local = 0;    // vertices owned by this DPU
  std::uint32_t vert_base = 0;  // first owned vertex id
  std::uint32_t n_global = 0;   // total vertices
  std::uint64_t rowptr_off = 0;
  std::uint64_t col_off = 0;
  std::uint64_t frontier_off = 0;  // global frontier bitmap (read)
  std::uint64_t next_off = 0;      // local next-frontier bitmap (write)
};

// Both bitmaps live in MRAM (PrIM-scale graphs do not fit WRAM); the
// kernel streams the frontier window for its own vertices and updates the
// next bitmap with per-byte read-modify-write DMA, like the real kernel.
constexpr std::uint32_t kBfsMaxVertices = 1 << 20;

void bfs_stage_clear(DpuCtx& ctx) {
  const auto args = ctx.var<BfsArgs>("bfs_args");
  const std::uint32_t bitmap_bytes = (args.n_global + 7) / 8;
  const auto [bb, be] =
      partition(bitmap_bytes, ctx.nr_tasklets(), ctx.me());
  if (bb >= be) return;
  constexpr std::uint32_t kChunk = 2048;
  auto zeros = ctx.mem_alloc(kChunk);
  for (std::uint64_t o = bb; o < be; o += kChunk) {
    const auto n = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kChunk, be - o));
    ctx.mram_write(zeros.first(n), args.next_off + o);
  }
}

void bfs_stage_expand(DpuCtx& ctx) {
  const auto args = ctx.var<BfsArgs>("bfs_args");
  const auto [vb, ve] = partition(args.n_local, ctx.nr_tasklets(), ctx.me());
  if (vb >= ve) return;
  constexpr std::uint32_t kChunk = 128;
  auto ptr_buf = ctx.mem_alloc((kChunk + 1) * 4);
  auto col_buf = ctx.mem_alloc(kChunk * 4);
  // Frontier window covering this tasklet's own vertices.
  const std::uint64_t win_first = (args.vert_base + vb) / 8;
  const std::uint64_t win_last = (args.vert_base + ve - 1) / 8;
  auto window = ctx.mem_alloc(
      static_cast<std::uint32_t>(win_last - win_first + 1));
  ctx.mram_read(args.frontier_off + win_first, window);

  for (std::uint64_t v0 = vb; v0 < ve; v0 += kChunk) {
    const auto vn = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kChunk, ve - v0));
    ctx.mram_read(args.rowptr_off + v0 * 4, ptr_buf.first((vn + 1) * 4));
    auto rowptr = as<std::uint32_t>(ptr_buf);
    for (std::uint32_t i = 0; i < vn; ++i) {
      const std::uint32_t v_global =
          args.vert_base + static_cast<std::uint32_t>(v0) + i;
      if ((window[v_global / 8 - win_first] >> (v_global % 8) & 1) == 0) {
        continue;
      }
      std::uint32_t nz = rowptr[i];
      const std::uint32_t nz_end = rowptr[i + 1];
      while (nz < nz_end) {
        const std::uint32_t n = std::min(kChunk, nz_end - nz);
        ctx.mram_read(args.col_off + std::uint64_t{nz} * 4,
                      col_buf.first(n * 4));
        auto cols = as<std::uint32_t>(col_buf);
        for (std::uint32_t k = 0; k < n; ++k) {
          // Per-neighbor read-modify-write on the MRAM next bitmap.
          std::uint8_t byte = 0;
          ctx.mram_read(args.next_off + cols[k] / 8, {&byte, 1});
          byte |= (1 << (cols[k] % 8));
          ctx.mram_write({&byte, 1}, args.next_off + cols[k] / 8);
        }
        ctx.exec(2 * n);
        nz += n;
      }
    }
    ctx.exec(vn);
  }
}

class BfsApp final : public PrimApp {
 public:
  std::string_view name() const override { return "BFS"; }

  AppResult run(sdk::Platform& p, const AppParams& prm) override {
    register_sparse_kernels();
    AppResult res;
    res.app = "BFS";
    // 2D grid plus a few shortcuts: meaningful diameter (many BFS levels,
    // i.e. many Inter-DPU handshakes) without a pathological runtime.
    const auto side = static_cast<std::uint32_t>(
        detail::scaled_elems(768, std::sqrt(prm.scale), 1, 1));
    const std::uint32_t n = side * side;
    VPIM_CHECK(n <= kBfsMaxVertices, "BFS graph larger than bitmap");

    Rng rng(prm.seed);
    std::vector<std::vector<std::uint32_t>> adj(n);
    auto id = [&](std::uint32_t r, std::uint32_t c) {
      return r * side + c;
    };
    for (std::uint32_t r = 0; r < side; ++r) {
      for (std::uint32_t c = 0; c < side; ++c) {
        if (r + 1 < side) {
          adj[id(r, c)].push_back(id(r + 1, c));
          adj[id(r + 1, c)].push_back(id(r, c));
        }
        if (c + 1 < side) {
          adj[id(r, c)].push_back(id(r, c + 1));
          adj[id(r, c + 1)].push_back(id(r, c));
        }
      }
    }
    for (std::uint32_t k = 0; k < n / 64; ++k) {
      const auto a = static_cast<std::uint32_t>(rng.uniform(0, n - 1));
      const auto b = static_cast<std::uint32_t>(rng.uniform(0, n - 1));
      if (a != b) {
        adj[a].push_back(b);
        adj[b].push_back(a);
      }
    }

    const std::uint32_t bitmap_bytes = (n + 7) / 8;
    auto frontier = p.alloc(bitmap_bytes);
    auto next_merge = p.alloc(bitmap_bytes);
    auto per_dpu_next = p.alloc(std::uint64_t{prm.nr_dpus} * bitmap_bytes);
    std::vector<std::uint32_t> level(n, UINT32_MAX);

    auto set = DpuSet::allocate(p, prm.nr_dpus);
    set.load("prim_bfs");

    // Uniform per-DPU layout (capacities sized by the largest slice) so
    // the per-level synchronization uses whole-set operations: broadcast
    // the frontier, one parallel read of every DPU's next bitmap.
    std::uint64_t max_rowptr = 0, max_cols = 0;
    for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
      auto [vb, ve] = partition(n, prm.nr_dpus, d);
      std::uint64_t cols_here = 0;
      for (std::uint64_t v = vb; v < ve; ++v) cols_here += adj[v].size();
      max_rowptr = std::max<std::uint64_t>(max_rowptr, (ve - vb) + 1);
      max_cols = std::max<std::uint64_t>(max_cols, cols_here);
    }
    const std::uint64_t rowptr_off = 0;
    const std::uint64_t col_off = round_up8(max_rowptr * 4);
    const std::uint64_t frontier_off =
        col_off + round_up8(std::max<std::uint64_t>(max_cols, 1) * 4);
    const std::uint64_t next_off = frontier_off + round_up8(bitmap_bytes);

    std::vector<BfsArgs> args(prm.nr_dpus);
    {
      // Load each DPU's adjacency slice (serial, like PrIM's BFS loader).
      SegmentScope s(p.clock(), res.breakdown, Segment::kCpuDpu);
      for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
        auto [vb, ve] = partition(n, prm.nr_dpus, d);
        const auto n_local = static_cast<std::uint32_t>(ve - vb);
        auto rowptr = as<std::uint32_t>(p.alloc((n_local + 1) * 4));
        std::vector<std::uint32_t> cols;
        rowptr[0] = 0;
        for (std::uint32_t i = 0; i < n_local; ++i) {
          for (std::uint32_t u : adj[vb + i]) cols.push_back(u);
          rowptr[i + 1] = static_cast<std::uint32_t>(cols.size());
        }
        auto col_host = as<std::uint32_t>(
            p.alloc(std::max<std::size_t>(cols.size(), 1) * 4));
        std::copy(cols.begin(), cols.end(), col_host.begin());

        args[d] = {n_local,
                   static_cast<std::uint32_t>(vb),
                   n,
                   rowptr_off,
                   col_off,
                   frontier_off,
                   next_off};
        set.copy_to(d, Target::mram(rowptr_off),
                    {reinterpret_cast<std::uint8_t*>(rowptr.data()),
                     (n_local + 1) * 4});
        if (!cols.empty()) {
          set.copy_to(d, Target::mram(col_off),
                      {reinterpret_cast<std::uint8_t*>(col_host.data()),
                       cols.size() * 4});
        }
      }
      push_symbol(set, "bfs_args", args);
    }

    // Level-synchronous loop: every level costs one frontier broadcast,
    // one launch, and one next-bitmap read per DPU (Inter-DPU handshake).
    std::memset(frontier.data(), 0, bitmap_bytes);
    frontier[0] |= 1;  // source vertex 0
    level[0] = 0;
    std::uint32_t depth = 0;
    while (true) {
      bool any = false;
      {
        SegmentScope s(p.clock(), res.breakdown, Segment::kInterDpu);
        // Same frontier bitmap to every DPU: one broadcast.
        set.broadcast(Target::mram(frontier_off),
                      frontier.first(bitmap_bytes));
      }
      {
        SegmentScope s(p.clock(), res.breakdown, Segment::kDpu);
        set.launch(prm.nr_tasklets);
      }
      {
        SegmentScope s(p.clock(), res.breakdown, Segment::kInterDpu);
        std::memset(next_merge.data(), 0, bitmap_bytes);
        // Every DPU's next bitmap in one parallel read-from-rank.
        for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
          set.prepare_xfer(d, per_dpu_next.data() +
                                  std::uint64_t{d} * bitmap_bytes);
        }
        set.push_xfer(XferDirection::kFromRank, Target::mram(next_off),
                      bitmap_bytes);
        for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
          auto chunk =
              per_dpu_next.subspan(std::uint64_t{d} * bitmap_bytes,
                                   bitmap_bytes);
          for (std::uint32_t b = 0; b < bitmap_bytes; ++b) {
            next_merge[b] |= chunk[b];
          }
        }
        ++depth;
        std::memset(frontier.data(), 0, bitmap_bytes);
        for (std::uint32_t v = 0; v < n; ++v) {
          if ((next_merge[v / 8] >> (v % 8) & 1) != 0 &&
              level[v] == UINT32_MAX) {
            level[v] = depth;
            frontier[v / 8] |= (1 << (v % 8));
            any = true;
          }
        }
      }
      if (!any) break;
    }
    set.free();

    // CPU reference BFS.
    std::vector<std::uint32_t> ref(n, UINT32_MAX);
    std::queue<std::uint32_t> q;
    ref[0] = 0;
    q.push(0);
    while (!q.empty()) {
      const std::uint32_t v = q.front();
      q.pop();
      for (std::uint32_t u : adj[v]) {
        if (ref[u] == UINT32_MAX) {
          ref[u] = ref[v] + 1;
          q.push(u);
        }
      }
    }
    res.correct = (ref == level);
    return res;
  }
};

}  // namespace

void register_sparse_kernels() {
  auto& registry = KernelRegistry::instance();
  if (registry.contains("prim_spmv")) return;

  DpuKernel spmv;
  spmv.name = "prim_spmv";
  spmv.symbols = {{"spmv_args", sizeof(SpmvArgs)}};
  spmv.stages = {spmv_stage};
  registry.add(std::move(spmv));

  DpuKernel bfs;
  bfs.name = "prim_bfs";
  bfs.symbols = {{"bfs_args", sizeof(BfsArgs)}};
  bfs.stages = {bfs_stage_clear, bfs_stage_expand};
  registry.add(std::move(bfs));
}

std::unique_ptr<PrimApp> make_spmv() { return std::make_unique<SpmvApp>(); }
std::unique_ptr<PrimApp> make_bfs() { return std::make_unique<BfsApp>(); }

}  // namespace vpim::prim
