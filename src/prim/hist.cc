// Image histogram applications. HST-S keeps small per-tasklet private
// histograms in WRAM and merges them; HST-L uses one large shared WRAM
// histogram (the UPMEM version synchronizes with mutexes, which we account
// as extra per-element work). Both write the per-DPU histogram to MRAM,
// where the host collects it with one small read per DPU — the pattern
// whose prefetch behaviour §5.2 calls out for HST-S/HST-L.
#include <cstring>

#include "common/rng.h"
#include "prim/apps.h"
#include "prim/util.h"
#include "upmem/kernel.h"

namespace vpim::prim {
namespace {

using driver::XferDirection;
using sdk::DpuSet;
using sdk::Target;
using upmem::DpuCtx;
using upmem::DpuKernel;
using upmem::KernelRegistry;

constexpr std::uint32_t kSmallBins = 256;
constexpr std::uint32_t kLargeBins = 4096;
constexpr std::uint32_t kValueBits = 20;  // inputs in [0, 2^20)

struct HstArgs {
  std::uint64_t n = 0;
  std::uint64_t in_off = 0;
  std::uint64_t hist_off = 0;
};

constexpr std::uint32_t kBlockElems = 256;  // 1 KiB of u32 per tasklet

void hst_s_stage1(DpuCtx& ctx) {
  const auto args = ctx.var<HstArgs>("hst_args");
  const auto [begin, end] = partition(args.n, ctx.nr_tasklets(), ctx.me());
  auto priv = as<std::uint32_t>(ctx.mem_alloc(kSmallBins * 4));
  if (begin < end) {
    auto buf = ctx.mem_alloc(kBlockElems * 4);
    for (std::uint64_t e = begin; e < end; e += kBlockElems) {
      const auto n = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(kBlockElems, end - e));
      ctx.mram_read(args.in_off + e * 4, buf.first(n * 4));
      auto vals = as<std::uint32_t>(buf);
      for (std::uint32_t i = 0; i < n; ++i) {
        priv[vals[i] >> (kValueBits - 8)]++;
      }
      ctx.exec(n);
    }
  }
  // Publish the private histogram for the merge stage.
  for (std::uint32_t b = 0; b < kSmallBins; ++b) {
    ctx.var<std::uint32_t>("t_hist", ctx.me() * kSmallBins + b) = priv[b];
  }
  ctx.exec(kSmallBins);
}

void hst_s_stage2(DpuCtx& ctx) {
  if (ctx.me() != 0) return;
  const auto args = ctx.var<HstArgs>("hst_args");
  auto merged = as<std::uint32_t>(ctx.mem_alloc(kSmallBins * 4));
  for (std::uint32_t t = 0; t < ctx.nr_tasklets(); ++t) {
    for (std::uint32_t b = 0; b < kSmallBins; ++b) {
      merged[b] += ctx.var<std::uint32_t>("t_hist", t * kSmallBins + b);
    }
  }
  ctx.exec(ctx.nr_tasklets() * kSmallBins);
  ctx.mram_write({reinterpret_cast<std::uint8_t*>(merged.data()),
                  kSmallBins * 4},
                 args.hist_off);
}

void hst_l_stage1(DpuCtx& ctx) {
  const auto args = ctx.var<HstArgs>("hst_args");
  const auto [begin, end] = partition(args.n, ctx.nr_tasklets(), ctx.me());
  if (begin >= end) return;
  auto shared = as<std::uint32_t>(ctx.symbol_bytes("l_hist"));
  auto buf = ctx.mem_alloc(kBlockElems * 4);
  for (std::uint64_t e = begin; e < end; e += kBlockElems) {
    const auto n = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kBlockElems, end - e));
    ctx.mram_read(args.in_off + e * 4, buf.first(n * 4));
    auto vals = as<std::uint32_t>(buf);
    for (std::uint32_t i = 0; i < n; ++i) {
      shared[vals[i] >> (kValueBits - 12)]++;
    }
    // 2x per element: increments on the shared histogram go through the
    // mutex the real HST-L kernel takes.
    ctx.exec(2 * n);
  }
}

void hst_l_stage2(DpuCtx& ctx) {
  if (ctx.me() != 0) return;
  const auto args = ctx.var<HstArgs>("hst_args");
  auto shared = ctx.symbol_bytes("l_hist");
  ctx.mram_write(shared.first(kLargeBins * 4), args.hist_off);
}

class HstApp final : public PrimApp {
 public:
  explicit HstApp(bool large) : large_(large) {}
  std::string_view name() const override {
    return large_ ? "HST-L" : "HST-S";
  }

  AppResult run(sdk::Platform& p, const AppParams& prm) override {
    register_hist_kernels();
    AppResult res;
    res.app = name();
    const std::uint32_t bins = large_ ? kLargeBins : kSmallBins;
    const std::uint32_t shift = large_ ? kValueBits - 12 : kValueBits - 8;
    const std::uint64_t total =
        detail::scaled_elems(16'000'000, prm.scale, prm.nr_dpus, 2);

    Rng rng(prm.seed);
    auto in = as<std::uint32_t>(p.alloc(total * 4));
    for (auto& v : in) {
      v = static_cast<std::uint32_t>(rng.uniform(0, (1 << kValueBits) - 1));
    }

    std::uint64_t max_per = 0;
    std::vector<std::uint64_t> sizes(prm.nr_dpus);
    for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
      auto [b, e] = partition(total, prm.nr_dpus, d);
      sizes[d] = (e - b) * 4;
      max_per = std::max(max_per, e - b);
    }
    const std::uint64_t hist_off = round_up8(max_per * 4);

    auto set = DpuSet::allocate(p, prm.nr_dpus);
    set.load(large_ ? "prim_hst_l" : "prim_hst_s");
    {
      SegmentScope s(p.clock(), res.breakdown, Segment::kCpuDpu);
      for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
        auto [b, e] = partition(total, prm.nr_dpus, d);
        set.prepare_xfer(d, reinterpret_cast<std::uint8_t*>(&in[b]));
      }
      set.push_xfer(XferDirection::kToRank, Target::mram(0), sizes);
      std::vector<HstArgs> args(prm.nr_dpus);
      for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
        auto [b, e] = partition(total, prm.nr_dpus, d);
        args[d] = {e - b, 0, hist_off};
      }
      push_symbol(set, "hst_args", args);
    }
    {
      SegmentScope s(p.clock(), res.breakdown, Segment::kDpu);
      set.launch(prm.nr_tasklets);
    }
    std::vector<std::uint32_t> hist(bins, 0);
    {
      // Small per-DPU result reads (1-16 KiB each).
      SegmentScope s(p.clock(), res.breakdown, Segment::kDpuCpu);
      auto per_dpu = as<std::uint32_t>(
          p.alloc(std::uint64_t{prm.nr_dpus} * bins * 4));
      for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
        set.prepare_xfer(d, reinterpret_cast<std::uint8_t*>(
                                &per_dpu[std::uint64_t{d} * bins]));
      }
      set.push_xfer(XferDirection::kFromRank, Target::mram(hist_off),
                    std::uint64_t{bins} * 4);
      for (std::uint32_t d = 0; d < prm.nr_dpus; ++d) {
        for (std::uint32_t b = 0; b < bins; ++b) {
          hist[b] += per_dpu[std::uint64_t{d} * bins + b];
        }
      }
    }
    set.free();

    std::vector<std::uint32_t> ref(bins, 0);
    for (auto v : in) ref[v >> shift]++;
    res.correct = std::equal(ref.begin(), ref.end(), hist.begin());
    return res;
  }

 private:
  bool large_;
};

}  // namespace

void register_hist_kernels() {
  auto& registry = KernelRegistry::instance();
  if (registry.contains("prim_hst_s")) return;

  DpuKernel s;
  s.name = "prim_hst_s";
  s.symbols = {{"hst_args", sizeof(HstArgs)},
               {"t_hist", 24 * kSmallBins * 4}};
  s.stages = {hst_s_stage1, hst_s_stage2};
  registry.add(std::move(s));

  DpuKernel l;
  l.name = "prim_hst_l";
  l.symbols = {{"hst_args", sizeof(HstArgs)},
               {"l_hist", kLargeBins * 4}};
  l.stages = {hst_l_stage1, hst_l_stage2};
  registry.add(std::move(l));
}

std::unique_ptr<PrimApp> make_hst_s() {
  return std::make_unique<HstApp>(false);
}
std::unique_ptr<PrimApp> make_hst_l() {
  return std::make_unique<HstApp>(true);
}

}  // namespace vpim::prim
