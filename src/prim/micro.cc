#include "prim/micro.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "common/rng.h"
#include "prim/util.h"
#include "upmem/kernel.h"

namespace vpim::prim {
namespace {

using driver::XferDirection;
using sdk::DpuSet;
using sdk::Target;
using upmem::DpuCtx;
using upmem::DpuKernel;
using upmem::KernelRegistry;

// -------------------------------------------------------------- checksum

struct CkArgs {
  std::uint64_t n_bytes = 0;
  std::uint64_t in_off = 0;
  std::uint64_t res_off = 0;
};

void ck_stage_sum(DpuCtx& ctx) {
  const auto args = ctx.var<CkArgs>("ck_args");
  const std::uint64_t words = args.n_bytes / 8;
  const auto [begin, end] = partition(words, ctx.nr_tasklets(), ctx.me());
  std::uint64_t sum = 0;
  if (begin < end) {
    constexpr std::uint32_t kBlockWords = 256;
    auto buf = ctx.mem_alloc(kBlockWords * 8);
    for (std::uint64_t w = begin; w < end; w += kBlockWords) {
      const auto n = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(kBlockWords, end - w));
      ctx.mram_read(args.in_off + w * 8, buf.first(n * 8));
      auto vals = as<std::uint64_t>(buf);
      for (std::uint32_t i = 0; i < n; ++i) sum += vals[i];
      // ~3 cycles per byte: byte-granular checksum arithmetic on a
      // 32-bit in-order core.
      ctx.exec(24 * n);
    }
  }
  ctx.var<std::uint64_t>("ck_sums", ctx.me()) = sum;
}

void ck_stage_merge(DpuCtx& ctx) {
  if (ctx.me() != 0) return;
  const auto args = ctx.var<CkArgs>("ck_args");
  std::uint64_t total = 0;
  for (std::uint32_t t = 0; t < ctx.nr_tasklets(); ++t) {
    total += ctx.var<std::uint64_t>("ck_sums", t);
  }
  ctx.exec(ctx.nr_tasklets());
  ctx.mram_write(bytes_of(total), args.res_off);
}

// ---------------------------------------------------------- index search

struct IsArgs {
  std::uint32_t nterms = 0;
  std::uint32_t reserved = 0;
  std::uint64_t terms_off = 0;
  std::uint64_t postings_off = 0;
  // Query block layout at q_off: u32 count, then count u32 terms. The
  // count rides the (broadcast) query write instead of a CI op per batch.
  std::uint64_t q_off = 0;
  std::uint64_t out_off = 0;
};

struct TermEntry {
  std::uint32_t term = 0;
  std::uint32_t start = 0;  // postings index
  std::uint32_t len = 0;
  std::uint32_t pad = 0;
};

struct QueryHit {
  std::uint32_t count = 0;
  std::uint32_t hash = 0;  // order-independent hash of (doc, pos) matches
};

std::uint32_t posting_hash(std::uint64_t posting) {
  std::uint64_t h = posting * 0x9E3779B97F4A7C15ULL;
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

void is_load_count(DpuCtx& ctx) {
  if (ctx.me() != 0) return;
  const auto args = ctx.var<IsArgs>("is_args");
  std::uint32_t n = 0;
  ctx.mram_read(args.q_off, bytes_of(n));
  ctx.var<std::uint32_t>("is_nqueries") = n;
}

void is_stage(DpuCtx& ctx) {
  const auto args = ctx.var<IsArgs>("is_args");
  const std::uint32_t nqueries = ctx.var<std::uint32_t>("is_nqueries");
  const auto [qb, qe] =
      partition(nqueries, ctx.nr_tasklets(), ctx.me());
  if (qb >= qe) return;
  auto q_buf = ctx.mem_alloc(
      static_cast<std::uint32_t>(qe - qb) * 4);
  ctx.mram_read(args.q_off + 4 + qb * 4, q_buf);
  auto queries = as<std::uint32_t>(q_buf);
  auto out_buf = ctx.mem_alloc(
      static_cast<std::uint32_t>(qe - qb) * sizeof(QueryHit));
  auto out = as<QueryHit>(out_buf);
  constexpr std::uint32_t kChunk = 256;
  auto post_buf = ctx.mem_alloc(kChunk * 8);

  for (std::uint64_t q = qb; q < qe; ++q) {
    const std::uint32_t term = queries[q - qb];
    // Binary search the sorted term table in MRAM.
    std::uint32_t lo = 0, hi = args.nterms;
    TermEntry entry{};
    bool found = false;
    while (lo < hi) {
      const std::uint32_t mid = (lo + hi) / 2;
      TermEntry e;
      ctx.mram_read(args.terms_off + std::uint64_t{mid} * sizeof(TermEntry),
                    bytes_of(e));
      ctx.exec(4);
      if (e.term == term) {
        entry = e;
        found = true;
        break;
      }
      if (e.term < term) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    QueryHit hit{};
    if (found) {
      std::uint32_t pos = entry.start;
      const std::uint32_t pos_end = entry.start + entry.len;
      while (pos < pos_end) {
        const std::uint32_t n = std::min(kChunk, pos_end - pos);
        ctx.mram_read(args.postings_off + std::uint64_t{pos} * 8,
                      post_buf.first(n * 8));
        auto postings = as<std::uint64_t>(post_buf);
        for (std::uint32_t i = 0; i < n; ++i) {
          ++hit.count;
          hit.hash ^= posting_hash(postings[i]);
        }
        ctx.exec(2 * n);
        pos += n;
      }
    }
    out[q - qb] = hit;
  }
  ctx.mram_write(out_buf, args.out_off + qb * sizeof(QueryHit));
}

}  // namespace

void register_micro_kernels() {
  auto& registry = KernelRegistry::instance();
  if (registry.contains("micro_checksum")) return;

  DpuKernel ck;
  ck.name = "micro_checksum";
  ck.symbols = {{"ck_args", sizeof(CkArgs)}, {"ck_sums", 24 * 8}};
  ck.stages = {ck_stage_sum, ck_stage_merge};
  registry.add(std::move(ck));

  DpuKernel is;
  is.name = "micro_search";
  is.symbols = {{"is_args", sizeof(IsArgs)}, {"is_nqueries", 4}};
  is.stages = {is_load_count, is_stage};
  registry.add(std::move(is));
}

ChecksumResult run_checksum(sdk::Platform& platform,
                            const ChecksumParams& params) {
  register_micro_kernels();
  ChecksumResult res;

  Rng rng(params.seed);
  auto file = platform.alloc(params.file_bytes);
  rng.fill_bytes(file.data(), file.size());

  auto set = DpuSet::allocate(platform, params.nr_dpus);
  set.load("micro_checksum");
  // PrIM-style timing: DPU allocation (which inside a VM includes the
  // manager round trip) is excluded from the measured execution time.
  const SimNs t0 = platform.clock().now();

  const std::uint64_t res_off = round_up8(params.file_bytes);
  // One write-to-rank: the whole file to every DPU.
  set.broadcast(Target::mram(0), file);
  std::vector<CkArgs> args(params.nr_dpus,
                           {params.file_bytes, 0, res_off});
  push_symbol(set, "ck_args", args);

  set.launch(params.nr_tasklets);

  // One small read-from-rank per DPU (60 reads in the paper's setup).
  std::uint64_t expected = 0;
  {
    auto words = as<std::uint64_t>(file.first(params.file_bytes / 8 * 8));
    for (auto w : words) expected += w;
  }
  res.correct = true;
  auto out = platform.alloc(8);
  for (std::uint32_t d = 0; d < params.nr_dpus; ++d) {
    set.copy_from(d, Target::mram(res_off), out);
    std::uint64_t sum;
    std::memcpy(&sum, out.data(), 8);
    if (sum != expected) res.correct = false;
  }

  const auto& counters = set.counters();
  res.write_ops = counters.rank_writes;
  res.read_ops = counters.rank_reads;
  res.ci_ops = counters.ci_ops;
  set.free();
  res.total = platform.clock().now() - t0;
  return res;
}

IndexSearchResult run_index_search(sdk::Platform& platform,
                                   const IndexSearchParams& params) {
  register_micro_kernels();
  IndexSearchResult res;
  constexpr std::uint32_t kVocab = 16384;

  // Build the inverted index over a synthetic Zipfian corpus.
  Rng rng(params.seed);
  std::map<std::uint32_t, std::vector<std::uint64_t>> index;
  for (std::uint32_t doc = 0; doc < params.nr_documents; ++doc) {
    const auto words = static_cast<std::uint32_t>(rng.uniform(
        params.avg_doc_words / 2, params.avg_doc_words * 3 / 2));
    for (std::uint32_t w = 0; w < words; ++w) {
      const auto term = static_cast<std::uint32_t>(rng.zipf(kVocab, 1.05));
      index[term].push_back((std::uint64_t{doc} << 32) | w);
    }
  }

  auto set = DpuSet::allocate(platform, params.nr_dpus);
  set.load("micro_search");
  // Allocation excluded from the measured time, as in the PrIM apps.
  const SimNs t0 = platform.clock().now();

  // Serialize the whole index (sorted term table + postings blob); every
  // DPU receives a full copy and answers its share of each query batch,
  // so adding DPUs adds index-transfer work (the paper's Fig 10 trend).
  std::vector<TermEntry> terms;
  std::vector<std::uint64_t> postings;
  for (const auto& [term, plist] : index) {
    terms.push_back({term, static_cast<std::uint32_t>(postings.size()),
                     static_cast<std::uint32_t>(plist.size()), 0});
    postings.insert(postings.end(), plist.begin(), plist.end());
  }
  const std::uint64_t terms_bytes = terms.size() * sizeof(TermEntry);
  const std::uint64_t post_bytes = postings.size() * 8;
  res.index_bytes = terms_bytes + post_bytes;
  auto blob = platform.alloc(round_up8(terms_bytes) + post_bytes);
  std::memcpy(blob.data(), terms.data(), terms_bytes);
  std::memcpy(blob.data() + round_up8(terms_bytes), postings.data(),
              post_bytes);

  const std::uint32_t max_batch = params.batch_size;
  const std::uint64_t q_off = round_up8(blob.size());
  const std::uint64_t q_block = round_up8(4 + std::uint64_t{max_batch} * 4);
  const std::uint64_t out_off = q_off + q_block;
  VPIM_CHECK(out_off + std::uint64_t{max_batch} * sizeof(QueryHit) <=
                 upmem::kMramSize,
             "index + query region exceed MRAM");

  // CPU-DPU: replicate the index (one broadcast per rank).
  set.broadcast(Target::mram(0), blob);
  std::vector<IsArgs> args(
      params.nr_dpus,
      {static_cast<std::uint32_t>(terms.size()), 0, 0,
       round_up8(terms_bytes), q_off, out_off});
  push_symbol(set, "is_args", args);

  // Queries: uniform over the vocabulary, in batches; each DPU answers
  // its slice of the batch.
  std::vector<std::uint32_t> queries(params.nr_queries);
  for (auto& q : queries) {
    q = static_cast<std::uint32_t>(rng.uniform(0, kVocab - 1));
  }
  auto q_stage = platform.alloc(std::uint64_t{params.nr_dpus} * q_block);
  auto hit_stage = platform.alloc(std::uint64_t{max_batch} *
                                  sizeof(QueryHit) * params.nr_dpus);

  std::vector<QueryHit> merged(params.nr_queries);
  for (std::uint32_t b0 = 0; b0 < params.nr_queries; b0 += max_batch) {
    const std::uint32_t bn =
        std::min(max_batch, params.nr_queries - b0);
    // Per-DPU query blocks: {count, terms...}.
    std::vector<std::uint64_t> q_sizes(params.nr_dpus);
    for (std::uint32_t d = 0; d < params.nr_dpus; ++d) {
      auto [qb, qe] = partition(bn, params.nr_dpus, d);
      const auto cnt = static_cast<std::uint32_t>(qe - qb);
      std::uint8_t* block = q_stage.data() + std::uint64_t{d} * q_block;
      std::memcpy(block, &cnt, 4);
      std::memcpy(block + 4, &queries[b0 + qb], std::uint64_t{cnt} * 4);
      q_sizes[d] = 4 + std::uint64_t{cnt} * 4;
      set.prepare_xfer(d, block);
    }
    set.push_xfer(XferDirection::kToRank, Target::mram(q_off), q_sizes);
    set.launch(params.nr_tasklets);
    // Collect every DPU's hit block with one parallel read.
    std::vector<std::uint64_t> o_sizes(params.nr_dpus);
    for (std::uint32_t d = 0; d < params.nr_dpus; ++d) {
      auto [qb, qe] = partition(bn, params.nr_dpus, d);
      o_sizes[d] = (qe - qb) * sizeof(QueryHit);
      set.prepare_xfer(d, hit_stage.data() + std::uint64_t{d} *
                                                 max_batch *
                                                 sizeof(QueryHit));
    }
    set.push_xfer(XferDirection::kFromRank, Target::mram(out_off),
                  o_sizes);
    for (std::uint32_t d = 0; d < params.nr_dpus; ++d) {
      auto [qb, qe] = partition(bn, params.nr_dpus, d);
      auto hits = as<QueryHit>(hit_stage.subspan(
          std::uint64_t{d} * max_batch * sizeof(QueryHit),
          (qe - qb) * sizeof(QueryHit)));
      for (std::uint64_t i = 0; i < qe - qb; ++i) {
        merged[b0 + qb + i] = hits[i];
      }
    }
  }
  res.total = platform.clock().now() - t0;
  set.free();

  // CPU reference straight from the inverted index.
  res.correct = true;
  for (std::uint32_t i = 0; i < params.nr_queries; ++i) {
    QueryHit ref{};
    auto it = index.find(queries[i]);
    if (it != index.end()) {
      for (std::uint64_t p : it->second) {
        ++ref.count;
        ref.hash ^= posting_hash(p);
      }
    }
    res.matches += ref.count;
    if (ref.count != merged[i].count || ref.hash != merged[i].hash) {
      res.correct = false;
    }
  }
  return res;
}

}  // namespace vpim::prim
