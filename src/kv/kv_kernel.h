// Registration hook for the KV partition kernel (see kv_kernel.cc).
#pragma once

namespace vpim::kv {

// Registers "kv_partition" (and its planted-bug teeth variant) in the
// global KernelRegistry. Idempotent; KvService::open() calls it.
void register_kv_kernels();

}  // namespace vpim::kv
