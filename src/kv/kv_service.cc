#include "kv/kv_service.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "driver/xfer.h"
#include "kv/kv_kernel.h"
#include "virtio/pim_spec.h"
#include "vpim/manager.h"

namespace vpim::kv {

namespace {

using core::Frontend;
using driver::TransferMatrix;
using driver::XferDirection;

KvStatus map_transport_status(std::int32_t status) {
  return status == static_cast<std::int32_t>(virtio::PimStatus::kTimeout)
             ? KvStatus::kTimeout
             : KvStatus::kDeviceFault;
}

}  // namespace

const char* to_string(KvStatus status) {
  switch (status) {
    case KvStatus::kOk: return "ok";
    case KvStatus::kNotFound: return "not-found";
    case KvStatus::kNoSpace: return "no-space";
    case KvStatus::kDeviceFault: return "device-fault";
    case KvStatus::kTimeout: return "timeout";
  }
  return "unknown";
}

KvService::KvService(Frontend& fe, guest::GuestMemory& mem, SimClock& clock,
                     const CostModel& cost, obs::Hub& obs, KvConfig config)
    : fe_(fe), mem_(mem), clock_(clock), cost_(cost), obs_(obs),
      config_(config), layout_(KvLayout::of(config)) {
  VPIM_CHECK(config_.nr_dpus >= 1 && config_.nr_dpus <= 64,
             "KV needs 1..64 DPUs");
  VPIM_CHECK(config_.partitions >= 1, "KV needs at least one partition");
  VPIM_CHECK(config_.partitions <=
                 config_.nr_dpus * config_.slots_per_dpu,
             "more partitions than store slots");
  VPIM_CHECK(config_.max_batch_ops >= 1, "KV needs a batch budget");
  VPIM_CHECK(config_.scan_limit >= 1 && config_.scan_limit <= kKvScanLimit,
             "scan_limit out of range");
  batch_hist_ = &obs_.metrics.histogram("vpim_kv_batch_ns", {});
  collector_ = obs_.metrics.add_collector([this](obs::Collection& out) {
    out.counter("vpim_kv_ops_total", {{"op", "get"}}, stats_.gets);
    out.counter("vpim_kv_ops_total", {{"op", "put"}}, stats_.puts);
    out.counter("vpim_kv_ops_total", {{"op", "delete"}}, stats_.deletes);
    out.counter("vpim_kv_ops_total", {{"op", "scan"}}, stats_.scans);
    out.counter("vpim_kv_cache_hits_total", {}, stats_.cache_hits);
    out.counter("vpim_kv_batches_total", {}, stats_.batches);
    out.counter("vpim_kv_cycles_total", {}, stats_.cycles);
    out.counter("vpim_kv_rebalances_total", {}, stats_.rebalances);
    out.counter("vpim_kv_migrated_records_total", {},
                stats_.migrated_records);
    out.counter("vpim_kv_wrank_resizes_total", {}, stats_.wrank_resizes);
    out.counter("vpim_kv_device_errors_total", {}, stats_.device_errors);
    out.gauge("vpim_kv_cache_entries", {},
              static_cast<std::int64_t>(cache_.size()));
  });
}

KvService::~KvService() {
  if (open_) close();
}

void KvService::attach_manager(core::Manager* manager, std::string tenant) {
  VPIM_CHECK(!open_, "attach_manager before open()");
  manager_ = manager;
  tenant_ = std::move(tenant);
}

bool KvService::open() {
  VPIM_CHECK(!open_, "KV service already open");
  register_kv_kernels();
  if (!fe_.open()) return false;
  VPIM_CHECK(config_.nr_dpus <= fe_.nr_dpus(),
             "KV config wants more DPUs than the device has");

  // Initial placement: partitions round-robin over the DPUs, filling the
  // low slots first so every DPU keeps free high slots for migrations.
  placement_.assign(config_.partitions, {});
  free_slots_.assign(config_.nr_dpus, config_.slots_per_dpu);
  for (std::uint32_t p = 0; p < config_.partitions; ++p) {
    placement_[p] = {p % config_.nr_dpus, p / config_.nr_dpus};
    --free_slots_[p % config_.nr_dpus];
  }
  window_load_.assign(config_.partitions, 0);
  window_batches_ = 0;
  cache_.clear();
  cache_tick_ = 0;
  pending_.assign(config_.nr_dpus, {});
  stats_ = {};

  // Guest staging buffers, allocated once: per-DPU inbox/outbox plus one
  // slot-region bounce buffer for migrations.
  inbox_buf_.clear();
  outbox_buf_.clear();
  const std::uint64_t inbox_bytes =
      8 + config_.max_batch_ops * sizeof(KvOpSlot);
  const std::uint64_t outbox_bytes =
      config_.max_batch_ops * sizeof(KvResultSlot);
  for (std::uint32_t d = 0; d < config_.nr_dpus; ++d) {
    inbox_buf_.push_back(mem_.alloc(inbox_bytes));
    outbox_buf_.push_back(mem_.alloc(outbox_bytes));
  }
  migrate_buf_ = mem_.alloc(layout_.region);

  fe_.ci_load(config_.plant_scan_bug ? kKvTeethKernelName : kKvKernelName);
  KvArgs args;
  args.inbox_off = layout_.inbox_off;
  args.outbox_off = layout_.outbox_off;
  args.slot_capacity = config_.slot_capacity;
  args.scan_limit = config_.scan_limit;
  for (std::uint32_t d = 0; d < config_.nr_dpus; ++d) {
    fe_.ci_copy_to_symbol(
        d, kKvArgsSymbol, 0,
        {reinterpret_cast<const std::uint8_t*>(&args), sizeof(args)});
  }

  // Zero every slot header (one blocking write covering all DPUs).
  std::span<std::uint8_t> zeros = mem_.alloc(8);
  std::memset(zeros.data(), 0, zeros.size());
  TransferMatrix m;
  m.direction = XferDirection::kToRank;
  for (std::uint32_t d = 0; d < config_.nr_dpus; ++d) {
    for (std::uint32_t s = 0; s < config_.slots_per_dpu; ++s) {
      m.entries.push_back({d, s * layout_.region, zeros.data(), 8});
    }
  }
  fe_.write_to_rank(m);

  if (manager_ != nullptr) {
    const core::AllocResult r = manager_->allocate_wrank(tenant_, 1);
    wrank_live_ = r.status == core::AllocStatus::kOk;
    wrank_id_ = r.wrank;
    wrank_slots_ = wrank_live_ ? 1 : 0;
  }
  open_ = true;
  return true;
}

void KvService::close() {
  if (!open_) return;
  if (manager_ != nullptr && wrank_live_) {
    manager_->release_wrank(wrank_id_);
    wrank_live_ = false;
  }
  fe_.close();
  open_ = false;
}

std::uint32_t KvService::partition_dpu(std::uint32_t partition) const {
  VPIM_CHECK(partition < config_.partitions, "partition out of range");
  return placement_[partition].dpu;
}

std::vector<std::uint8_t> KvService::partition_image(
    std::uint32_t partition) {
  VPIM_CHECK(open_, "KV service not open");
  VPIM_CHECK(partition < config_.partitions, "partition out of range");
  const Placement pl = placement_[partition];
  TransferMatrix m;
  m.direction = XferDirection::kFromRank;
  m.entries.push_back({pl.dpu, pl.slot * layout_.region,
                       migrate_buf_.data(), layout_.region});
  fe_.read_from_rank(m);
  std::uint64_t count = 0;
  std::memcpy(&count, migrate_buf_.data(), 8);
  VPIM_CHECK(count <= config_.slot_capacity, "corrupt partition header");
  const std::uint64_t bytes = 8 + count * sizeof(KvRecord);
  return {migrate_buf_.begin(),
          migrate_buf_.begin() + static_cast<std::ptrdiff_t>(bytes)};
}

std::vector<KvResult> KvService::execute(std::span<const KvOp> ops) {
  VPIM_CHECK(open_, "KV service not open");
  std::vector<KvResult> results(ops.size());
  if (ops.empty()) return results;

  obs::Tracer* tracer = obs_.tracer;
  const SimNs t0 = clock_.now();
  if (tracer != nullptr) tracer->begin_span(obs::SpanKind::kKvBatch, t0);

  mutated_.clear();
  scan_rows_.assign(ops.size(), {});
  route(ops, results);
  run_cycles(ops, results);
  finish_scans(ops, results);

  ++stats_.batches;
  ++window_batches_;
  maybe_rebalance();

  const SimNs dt = clock_.now() - t0;
  batch_hist_->observe(dt);
  if (tracer != nullptr) {
    obs::Span& s = tracer->end_span(clock_.now());
    s.entries = static_cast<std::uint32_t>(ops.size());
  }
  return results;
}

void KvService::route(std::span<const KvOp> ops,
                      std::vector<KvResult>& results) {
  for (auto& q : pending_) q.clear();
  for (std::uint32_t i = 0; i < ops.size(); ++i) {
    const KvOp& op = ops[i];
    switch (op.kind) {
      case KvOpKind::kGet: {
        ++stats_.gets;
        if (config_.hot_key_cache) {
          auto it = cache_.find(op.key);
          if (it != cache_.end()) {
            clock_.advance(cost_.kv_cache_hit_ns);
            it->second.tick = ++cache_tick_;
            results[i].status = KvStatus::kOk;
            results[i].value = it->second.value;
            results[i].nresults = 1;
            results[i].cache_hit = true;
            ++stats_.cache_hits;
            continue;
          }
        }
        const std::uint32_t p = partition_of(op.key, config_.partitions);
        ++window_load_[p];
        pending_[placement_[p].dpu].push_back({i, p});
        break;
      }
      case KvOpKind::kPut: {
        ++stats_.puts;
        if (config_.hot_key_cache) {
          auto it = cache_.find(op.key);
          if (it != cache_.end()) {
            it->second.value = op.value;
            it->second.tick = ++cache_tick_;
          }
        }
        mutated_.insert(op.key);
        const std::uint32_t p = partition_of(op.key, config_.partitions);
        ++window_load_[p];
        pending_[placement_[p].dpu].push_back({i, p});
        break;
      }
      case KvOpKind::kDelete: {
        ++stats_.deletes;
        cache_.erase(op.key);
        mutated_.insert(op.key);
        const std::uint32_t p = partition_of(op.key, config_.partitions);
        ++window_load_[p];
        pending_[placement_[p].dpu].push_back({i, p});
        break;
      }
      case KvOpKind::kScan: {
        ++stats_.scans;
        // A scan's key range hashes across every partition: fan one unit
        // out per partition and merge the sorted fragments afterwards.
        for (std::uint32_t p = 0; p < config_.partitions; ++p) {
          pending_[placement_[p].dpu].push_back({i, p});
        }
        break;
      }
    }
  }
}

void KvService::run_cycles(std::span<const KvOp> ops,
                           std::vector<KvResult>& results) {
  std::size_t remaining = 0;
  for (const auto& q : pending_) remaining += q.size();
  while (remaining > 0) {
    const std::size_t retired = run_one_cycle(ops, results);
    VPIM_CHECK(retired > 0, "KV cycle made no progress");
    remaining -= retired;
  }
}

bool KvService::drain_tickets(
    const std::vector<Frontend::Ticket>& tickets) {
  std::size_t reaped = 0;
  bool all_ok = true;
  int idle_polls = 0;
  while (reaped < tickets.size() && idle_polls < 3) {
    const auto batch = fe_.poll_completions();
    if (batch.empty()) {
      ++idle_polls;
      continue;
    }
    idle_polls = 0;
    for (const Frontend::Completion& done : batch) {
      for (Frontend::Ticket t : tickets) {
        if (done.ticket == t) {
          ++reaped;
          if (done.status != 0) all_ok = false;
          break;
        }
      }
    }
  }
  return all_ok && reaped == tickets.size();
}

std::size_t KvService::run_one_cycle(std::span<const KvOp> ops,
                                     std::vector<KvResult>& results) {
  // Take up to max_batch_ops units per DPU for this cycle.
  std::vector<std::vector<Unit>> cycle(config_.nr_dpus);
  std::uint64_t active_mask = 0;
  std::size_t retired = 0;
  for (std::uint32_t d = 0; d < config_.nr_dpus; ++d) {
    auto& q = pending_[d];
    const std::size_t take =
        std::min<std::size_t>(q.size(), config_.max_batch_ops);
    if (take == 0) continue;
    cycle[d].assign(q.begin(), q.begin() + static_cast<std::ptrdiff_t>(take));
    q.erase(q.begin(), q.begin() + static_cast<std::ptrdiff_t>(take));
    active_mask |= 1ULL << d;
    retired += take;
  }
  ++stats_.cycles;

  auto fail_dpu = [&](std::uint32_t d, KvStatus status) {
    for (const Unit& u : cycle[d]) {
      fail_unit(ops[u.index], results[u.index], status);
    }
    cycle[d].clear();
    active_mask &= ~(1ULL << d);
  };
  auto fail_all = [&](KvStatus status) {
    for (std::uint32_t d = 0; d < config_.nr_dpus; ++d) {
      if ((active_mask >> d) & 1) fail_dpu(d, status);
    }
  };

  // Stage every inbox through the SQ, one coalesced doorbell for the lot.
  {
    std::vector<Frontend::Ticket> tickets;
    std::vector<std::uint32_t> ticket_dpu;
    for (std::uint32_t d = 0; d < config_.nr_dpus; ++d) {
      if (((active_mask >> d) & 1) == 0) continue;
      std::uint8_t* buf = inbox_buf_[d].data();
      const std::uint64_t n = cycle[d].size();
      std::memcpy(buf, &n, 8);
      for (std::size_t i = 0; i < cycle[d].size(); ++i) {
        const Unit& u = cycle[d][i];
        const KvOp& op = ops[u.index];
        KvOpSlot slot;
        slot.opcode = static_cast<std::uint32_t>(op.kind);
        slot.slot = placement_[u.partition].slot;
        slot.key = op.key;
        slot.aux = op.kind == KvOpKind::kPut ? op.value : op.hi;
        std::memcpy(buf + 8 + i * sizeof(KvOpSlot), &slot, sizeof(slot));
      }
      TransferMatrix m;
      m.direction = XferDirection::kToRank;
      m.entries.push_back(
          {d, layout_.inbox_off, buf,
           8 + cycle[d].size() * sizeof(KvOpSlot)});
      try {
        tickets.push_back(fe_.submit_write(m));
        ticket_dpu.push_back(d);
      } catch (const VpimStatusError& e) {
        fail_dpu(d, map_transport_status(e.status()));
      }
    }
    if (!drain_tickets(tickets)) {
      // A failed inbox leaves the cycle's DPUs in an unknown staging
      // state; resolve every unit of the cycle with a typed status
      // rather than guessing which inbox landed.
      fail_all(KvStatus::kDeviceFault);
    }
  }
  if (active_mask == 0) return retired;

  // Launch the batch and wait for the slowest active DPU.
  try {
    fe_.ci_launch(active_mask, /*nr_tasklets=*/1);
    while ((fe_.ci_running_mask() & active_mask) != 0) {
      clock_.advance(config_.launch_poll_ns);
    }
  } catch (const VpimStatusError& e) {
    fail_all(map_transport_status(e.status()));
    return retired;
  }

  // Read every outbox back through the SQ.
  {
    std::vector<Frontend::Ticket> tickets;
    std::vector<std::uint32_t> ticket_dpu;
    for (std::uint32_t d = 0; d < config_.nr_dpus; ++d) {
      if (((active_mask >> d) & 1) == 0) continue;
      TransferMatrix m;
      m.direction = XferDirection::kFromRank;
      m.entries.push_back({d, layout_.outbox_off, outbox_buf_[d].data(),
                           cycle[d].size() * sizeof(KvResultSlot)});
      try {
        tickets.push_back(fe_.submit_read(m));
        ticket_dpu.push_back(d);
      } catch (const VpimStatusError& e) {
        fail_dpu(d, map_transport_status(e.status()));
      }
    }
    if (!drain_tickets(tickets)) {
      fail_all(KvStatus::kDeviceFault);
      return retired;
    }
  }

  // Parse results back into op order.
  for (std::uint32_t d = 0; d < config_.nr_dpus; ++d) {
    if (((active_mask >> d) & 1) == 0) continue;
    const std::uint8_t* buf = outbox_buf_[d].data();
    for (std::size_t i = 0; i < cycle[d].size(); ++i) {
      const Unit& u = cycle[d][i];
      KvResultSlot slot;
      std::memcpy(&slot, buf + i * sizeof(KvResultSlot), sizeof(slot));
      parse_result(u.index, ops[u.index], slot, results[u.index]);
    }
  }
  return retired;
}

void KvService::fail_unit(const KvOp& op, KvResult& out, KvStatus status) {
  out.status = status;
  out.nresults = 0;
  out.pairs.clear();
  ++stats_.device_errors;
  // The write may or may not have landed: drop any cached copy so the
  // cache never serves a value the device did not acknowledge.
  if (op.kind == KvOpKind::kPut || op.kind == KvOpKind::kDelete) {
    cache_.erase(op.key);
  }
}

void KvService::parse_result(std::uint32_t op_index, const KvOp& op,
                             const KvResultSlot& slot, KvResult& out) {
  // A scan unit that arrives after a sibling unit already failed must not
  // flip the op back to success; device-fault statuses are sticky.
  if (out.status == KvStatus::kDeviceFault ||
      out.status == KvStatus::kTimeout) {
    return;
  }
  if (op.kind == KvOpKind::kScan) {
    auto& rows = scan_rows_[op_index];
    for (std::uint32_t r = 0; r < slot.nresults; ++r) {
      rows.emplace_back(slot.pairs[r].key, slot.pairs[r].value);
    }
    return;
  }
  out.status = static_cast<KvStatus>(slot.status);
  out.value = slot.value;
  out.nresults = slot.nresults;
  if (op.kind == KvOpKind::kGet && config_.hot_key_cache &&
      out.status == KvStatus::kOk && !mutated_.contains(op.key)) {
    cache_insert(op.key, out.value);
  }
}

void KvService::finish_scans(std::span<const KvOp> ops,
                             std::vector<KvResult>& results) {
  for (std::uint32_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind != KvOpKind::kScan) continue;
    KvResult& out = results[i];
    if (out.status == KvStatus::kDeviceFault ||
        out.status == KvStatus::kTimeout) {
      continue;
    }
    auto& rows = scan_rows_[i];
    std::sort(rows.begin(), rows.end());
    if (rows.size() > config_.scan_limit) {
      rows.resize(config_.scan_limit);
    }
    out.status = KvStatus::kOk;
    out.pairs = std::move(rows);
    out.nresults = static_cast<std::uint32_t>(out.pairs.size());
  }
}

void KvService::cache_insert(std::uint64_t key, std::uint64_t value) {
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    it->second = {value, ++cache_tick_};
    return;
  }
  if (cache_.size() >= config_.hot_cache_entries) {
    // Deterministic LRU: ticks are unique, so the minimum is unique and
    // the evicted entry does not depend on hash-map iteration order.
    auto victim = cache_.begin();
    for (auto jt = cache_.begin(); jt != cache_.end(); ++jt) {
      if (jt->second.tick < victim->second.tick) victim = jt;
    }
    cache_.erase(victim);
  }
  cache_.emplace(key, CacheEntry{value, ++cache_tick_});
}

void KvService::maybe_rebalance() {
  if (window_batches_ < config_.rebalance_period) return;
  window_batches_ = 0;
  if (!config_.rebalance) {
    std::fill(window_load_.begin(), window_load_.end(), 0);
    return;
  }

  for (std::uint32_t move = 0; move < config_.rebalance_max_moves;
       ++move) {
    // Per-DPU load this window.
    std::vector<std::uint64_t> dpu_load(config_.nr_dpus, 0);
    std::uint64_t total = 0;
    for (std::uint32_t p = 0; p < config_.partitions; ++p) {
      dpu_load[placement_[p].dpu] += window_load_[p];
      total += window_load_[p];
    }
    if (total == 0) break;
    const std::uint64_t mean =
        std::max<std::uint64_t>(1, total / config_.nr_dpus);
    std::uint32_t hot_dpu = 0;
    std::uint32_t cold_dpu = 0;
    for (std::uint32_t d = 1; d < config_.nr_dpus; ++d) {
      if (dpu_load[d] > dpu_load[hot_dpu]) hot_dpu = d;
      if (dpu_load[d] < dpu_load[cold_dpu]) cold_dpu = d;
    }
    if (dpu_load[hot_dpu] * 1000 <=
        static_cast<std::uint64_t>(config_.rebalance_ratio_permille) *
            mean) {
      break;
    }
    if (free_slots_[cold_dpu] == 0 || cold_dpu == hot_dpu) break;

    // Victim: the partition whose departure best levels the pair, i.e.
    // minimizes max(hot - load, cold + load). Naively moving the hottest
    // partition ping-pongs a whale between DPUs forever (the destination
    // becomes the new hot DPU); this choice instead peels the whale's
    // *siblings* off until it sits alone, then goes quiet because no move
    // improves the shape any further.
    std::uint32_t victim = config_.partitions;
    std::uint64_t best_peak = dpu_load[hot_dpu];
    for (std::uint32_t p = 0; p < config_.partitions; ++p) {
      if (placement_[p].dpu != hot_dpu || window_load_[p] == 0) continue;
      const std::uint64_t peak = std::max(dpu_load[hot_dpu] - window_load_[p],
                                          dpu_load[cold_dpu] + window_load_[p]);
      if (peak < best_peak) {
        best_peak = peak;
        victim = p;
      }
    }
    if (victim == config_.partitions) break;  // no move improves balance
    if (!migrate_partition(victim, cold_dpu)) break;
    // Account the move so the next iteration sees the new shape.
    window_load_[victim] = 0;
  }
  std::fill(window_load_.begin(), window_load_.end(), 0);
  update_wrank_footprint();
}

bool KvService::migrate_partition(std::uint32_t partition,
                                  std::uint32_t to_dpu) {
  const Placement from = placement_[partition];
  // Target slot: lowest free index on the destination DPU.
  std::vector<bool> used(config_.slots_per_dpu, false);
  for (std::uint32_t p = 0; p < config_.partitions; ++p) {
    if (placement_[p].dpu == to_dpu) used[placement_[p].slot] = true;
  }
  std::uint32_t to_slot = config_.slots_per_dpu;
  for (std::uint32_t s = 0; s < config_.slots_per_dpu; ++s) {
    if (!used[s]) {
      to_slot = s;
      break;
    }
  }
  if (to_slot == config_.slots_per_dpu) return false;

  obs::Tracer* tracer = obs_.tracer;
  const SimNs t0 = clock_.now();
  try {
    // Full-region copy (header + every record slot), so stale bytes in a
    // previously used slot can never leak into the destination.
    TransferMatrix rd;
    rd.direction = XferDirection::kFromRank;
    rd.entries.push_back({from.dpu, from.slot * layout_.region,
                          migrate_buf_.data(), layout_.region});
    fe_.read_from_rank(rd);
    TransferMatrix wr;
    wr.direction = XferDirection::kToRank;
    wr.entries.push_back({to_dpu, to_slot * layout_.region,
                          migrate_buf_.data(), layout_.region});
    fe_.write_to_rank(wr);
    // Retire the source last: until this lands the old copy stays
    // authoritative and the map still points at it.
    std::uint64_t zero = 0;
    TransferMatrix hdr;
    hdr.direction = XferDirection::kToRank;
    hdr.entries.push_back({from.dpu, from.slot * layout_.region,
                           reinterpret_cast<std::uint8_t*>(&zero), 8});
    fe_.write_to_rank(hdr);
  } catch (const VpimStatusError&) {
    return false;  // source copy still authoritative; retry next window
  }

  std::uint64_t count = 0;
  std::memcpy(&count, migrate_buf_.data(), 8);
  placement_[partition] = {to_dpu, to_slot};
  ++free_slots_[from.dpu];
  --free_slots_[to_dpu];
  ++stats_.rebalances;
  stats_.migrated_records += count;
  if (tracer != nullptr) {
    tracer->record(obs::SpanKind::kKvRebalance, t0, clock_.now() - t0,
                   layout_.region, 2);
  }
  return true;
}

void KvService::update_wrank_footprint() {
  if (manager_ == nullptr || !wrank_live_) return;
  // Footprint: DPUs currently hosting at least one partition, clamped to
  // the wrank slot range. This mirrors the service's spread into the
  // Manager's oversubscription ledger.
  std::vector<bool> hosts(config_.nr_dpus, false);
  for (std::uint32_t p = 0; p < config_.partitions; ++p) {
    hosts[placement_[p].dpu] = true;
  }
  std::uint32_t n = 0;
  for (std::uint32_t d = 0; d < config_.nr_dpus; ++d) {
    if (hosts[d]) ++n;
  }
  const std::uint32_t want = std::max<std::uint32_t>(
      1, std::min<std::uint32_t>(n, manager_->config().wrank_slots_per_rank));
  if (want == wrank_slots_) return;
  const core::AllocResult r = manager_->resize_wrank(wrank_id_, want);
  if (r.status == core::AllocStatus::kOk) {
    wrank_slots_ = want;
    ++stats_.wrank_resizes;
  }
}

}  // namespace vpim::kv
