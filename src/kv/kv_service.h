// Host half of the partitioned KV/index service (ISSUE 10, tentpole).
//
// A KvService owns the key-space layout on one vUPMEM device: it routes
// client ops to hash partitions, stages per-DPU inbox batches, drives
// them through the PR-7 SQ/CQ pipeline (async inbox writes, one launch
// per cycle, async outbox reads) and merges the typed results back into
// client order. Two mitigation tiers fight skew:
//
//   - a host-side hot-key LRU cache absorbs repeated GETs of the hottest
//     keys before they reach the device (write ops invalidate/update the
//     cached entry at enqueue time, and a GET result observed *after* a
//     same-batch mutation never refills the cache — enqueue-order
//     coherence);
//   - a windowed rebalancer migrates the hottest partitions off
//     overloaded DPUs into free slots elsewhere, optionally mirroring its
//     footprint into the Manager's wrank vocabulary via resize_wrank.
//
// Determinism: every decision (routing, cache eviction, rebalance pick)
// runs on the serial control path and depends only on op order and
// virtual time, so results, metrics and traces are bit-identical at any
// VPIM_THREADS (DESIGN.md §5h).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/obs/obs.h"
#include "common/sim_clock.h"
#include "guest/guest_memory.h"
#include "kv/kv_types.h"
#include "vpim/frontend.h"

namespace vpim::core {
class Manager;
}  // namespace vpim::core

namespace vpim::kv {

struct KvStats {
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t deletes = 0;
  std::uint64_t scans = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t batches = 0;       // execute() calls
  std::uint64_t cycles = 0;        // device round trips
  std::uint64_t rebalances = 0;    // partition migrations
  std::uint64_t migrated_records = 0;
  std::uint64_t wrank_resizes = 0;
  std::uint64_t device_errors = 0;  // ops resolved kDeviceFault/kTimeout
};

class KvService {
 public:
  KvService(core::Frontend& fe, guest::GuestMemory& mem, SimClock& clock,
            const CostModel& cost, obs::Hub& obs, KvConfig config = {});
  ~KvService();

  KvService(const KvService&) = delete;
  KvService& operator=(const KvService&) = delete;

  // Binds the frontend to a rank, loads the kernel, pushes the WRAM
  // argument block and zeroes every store slot. Returns false when no
  // rank was available.
  bool open();
  void close();
  bool is_open() const { return open_; }

  // Mirrors the service footprint into the Manager's wrank tier: one
  // wrank is allocated for `tenant` at open() and resized to track the
  // number of hot DPUs after each rebalance pass. Call before open().
  void attach_manager(core::Manager* manager, std::string tenant);

  // Executes one batch. Results land in op order; every op resolves with
  // a typed KvStatus even when the device faults mid-batch.
  std::vector<KvResult> execute(std::span<const KvOp> ops);

  const KvStats& stats() const { return stats_; }
  const KvConfig& config() const { return config_; }

  // ---- test hooks --------------------------------------------------------
  // Raw device image of one partition: [u64 count | count x KvRecord],
  // read back through the blocking path (prop_kv_test diffs this against
  // the oracle's independently built image).
  std::vector<std::uint8_t> partition_image(std::uint32_t partition);
  std::uint32_t partition_dpu(std::uint32_t partition) const;

 private:
  struct Placement {
    std::uint32_t dpu = 0;
    std::uint32_t slot = 0;
  };
  struct CacheEntry {
    std::uint64_t value = 0;
    std::uint64_t tick = 0;
  };
  // One routed unit of work: op `index` against `partition` (scans fan
  // out to every partition, point ops produce exactly one unit).
  struct Unit {
    std::uint32_t index = 0;
    std::uint32_t partition = 0;
  };

  void route(std::span<const KvOp> ops, std::vector<KvResult>& results);
  void run_cycles(std::span<const KvOp> ops,
                  std::vector<KvResult>& results);
  // One SQ/CQ round trip over every DPU with pending units; returns the
  // number of units retired.
  std::size_t run_one_cycle(std::span<const KvOp> ops,
                            std::vector<KvResult>& results);
  void parse_result(std::uint32_t op_index, const KvOp& op,
                    const KvResultSlot& slot, KvResult& out);
  void fail_unit(const KvOp& op, KvResult& out, KvStatus status);
  void finish_scans(std::span<const KvOp> ops,
                    std::vector<KvResult>& results);
  void maybe_rebalance();
  bool migrate_partition(std::uint32_t partition, std::uint32_t to_dpu);
  void update_wrank_footprint();
  void cache_insert(std::uint64_t key, std::uint64_t value);
  // Reaps completions for `tickets`; returns true when every ticket
  // completed with status 0.
  bool drain_tickets(const std::vector<core::Frontend::Ticket>& tickets);

  core::Frontend& fe_;
  guest::GuestMemory& mem_;
  SimClock& clock_;
  const CostModel& cost_;
  obs::Hub& obs_;
  KvConfig config_;
  KvLayout layout_;
  bool open_ = false;

  std::vector<Placement> placement_;       // partition -> {dpu, slot}
  std::vector<std::uint32_t> free_slots_;  // per DPU
  std::vector<std::uint64_t> window_load_;  // per partition, this window
  std::uint32_t window_batches_ = 0;

  // Hot-key cache (deterministic LRU by insertion tick).
  std::unordered_map<std::uint64_t, CacheEntry> cache_;
  std::uint64_t cache_tick_ = 0;
  // Keys mutated in the batch being executed: GET results that raced a
  // same-batch mutation must not refill the cache.
  std::unordered_set<std::uint64_t> mutated_;

  // Per-DPU staging (guest RAM, allocated once at open).
  std::vector<std::span<std::uint8_t>> inbox_buf_;
  std::vector<std::span<std::uint8_t>> outbox_buf_;
  std::span<std::uint8_t> migrate_buf_;
  std::vector<std::vector<Unit>> pending_;  // per DPU routing queues
  // Scan merge state: per op, rows gathered from every partition.
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
      scan_rows_;

  core::Manager* manager_ = nullptr;
  std::string tenant_;
  std::uint64_t wrank_id_ = 0;
  bool wrank_live_ = false;
  std::uint32_t wrank_slots_ = 0;

  KvStats stats_;
  obs::Histogram* batch_hist_ = nullptr;
  obs::MetricsRegistry::CollectorHandle collector_;
};

}  // namespace vpim::kv
