// Shared vocabulary of the partitioned KV/index service (ISSUE 10).
//
// The key space is hash-partitioned (murmur-style finalizer, spec in
// DESIGN.md §5h) across `partitions` sorted runs; each partition lives in
// one MRAM *slot* of one DPU and the host moves partitions between slots
// to chase load. Everything in this header is wire format shared between
// the host service (kv_service.cc) and the DPU kernel (kv_kernel.cc) —
// the independent correctness oracle (common/proptest/kv_oracle.cc)
// deliberately re-derives the result spec from DESIGN.md instead of
// including this file's logic.
//
// Per-DPU MRAM layout (offsets from MRAM 0, all regions page-aligned):
//
//   [slot 0: u64 count | slot_capacity x KvRecord] ... [slot S-1]
//   inbox:  [u64 nr_ops | nr_ops x KvOpSlot]        (host -> DPU batch)
//   outbox: [nr_ops x KvResultSlot]                 (DPU -> host results)
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.h"
#include "common/units.h"
#include "upmem/layout.h"

namespace vpim::kv {

// ---- result statuses -----------------------------------------------------
// The device side only ever produces kOk/kNotFound/kNoSpace; the host
// service maps transport failures onto kDeviceFault/kTimeout so every
// request resolves with a typed status even under fault storms.
enum class KvStatus : std::uint32_t {
  kOk = 0,
  kNotFound = 1,     // GET/DELETE of an absent key
  kNoSpace = 2,      // PUT into a full partition
  kDeviceFault = 3,  // transport/device failure (typed, per batch cycle)
  kTimeout = 4,      // deadline expired before the cycle completed
};
const char* to_string(KvStatus status);

enum class KvOpKind : std::uint8_t { kGet = 0, kPut = 1, kDelete = 2,
                                     kScan = 3 };

// One client operation. SCAN returns the smallest `scan_limit` keys in
// [key, hi) — `hi` is exclusive (the planted-bug teeth kernel gets exactly
// this bound wrong).
struct KvOp {
  KvOpKind kind = KvOpKind::kGet;
  std::uint64_t key = 0;
  std::uint64_t value = 0;  // PUT payload
  std::uint64_t hi = 0;     // SCAN exclusive upper bound
};

// One client result. PUT: value = previous value (when the key existed,
// nresults = 1). DELETE/GET: value = the stored value. SCAN: pairs holds
// the merged, key-sorted result rows.
struct KvResult {
  KvStatus status = KvStatus::kOk;
  std::uint64_t value = 0;
  std::uint32_t nresults = 0;
  bool cache_hit = false;  // served host-side by the hot-key cache
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs;
};

// ---- device wire format --------------------------------------------------

struct KvRecord {
  std::uint64_t key = 0;
  std::uint64_t value = 0;
};
static_assert(sizeof(KvRecord) == 16);

// Inbox entry: opcode = KvOpKind; slot = the target store slot on this
// DPU; aux = PUT value or SCAN upper bound.
struct KvOpSlot {
  std::uint32_t opcode = 0;
  std::uint32_t slot = 0;
  std::uint64_t key = 0;
  std::uint64_t aux = 0;
};
static_assert(sizeof(KvOpSlot) == 24);

// Most rows one SCAN returns per partition (and, post-merge, per op).
inline constexpr std::uint32_t kKvScanLimit = 8;

// Outbox entry, fixed size so result i lives at i * sizeof(KvResultSlot).
struct KvResultSlot {
  std::uint32_t status = 0;  // KvStatus (device statuses only)
  std::uint32_t nresults = 0;
  std::uint64_t value = 0;
  KvRecord pairs[kKvScanLimit];
};
static_assert(sizeof(KvResultSlot) == 16 + 16 * kKvScanLimit);

// WRAM argument block pushed to every serving DPU at open().
struct KvArgs {
  std::uint64_t inbox_off = 0;
  std::uint64_t outbox_off = 0;
  std::uint32_t slot_capacity = 0;
  std::uint32_t scan_limit = kKvScanLimit;
};
inline constexpr const char* kKvArgsSymbol = "kv_args";

inline constexpr const char* kKvKernelName = "kv_partition";
// Teeth variant with the planted range-scan off-by-one (see TESTING.md).
inline constexpr const char* kKvTeethKernelName = "kv_partition_teeth";

// ---- service configuration ----------------------------------------------

struct KvConfig {
  std::uint32_t partitions = 32;
  std::uint32_t nr_dpus = 8;        // DPUs the partitions spread over
  std::uint32_t slots_per_dpu = 8;  // partition homes per DPU
  std::uint32_t slot_capacity = 2048;  // records per partition
  std::uint32_t max_batch_ops = 64;    // inbox capacity per DPU per cycle
  std::uint32_t scan_limit = kKvScanLimit;  // rows per scan (<= kKvScanLimit)
  // Hot-key mitigation tier.
  bool hot_key_cache = true;
  std::uint32_t hot_cache_entries = 64;
  bool rebalance = true;
  std::uint32_t rebalance_period = 4;  // batches per load window
  // Trigger: hottest DPU's window load > ratio/1000 x mean DPU load.
  std::uint32_t rebalance_ratio_permille = 1500;
  std::uint32_t rebalance_max_moves = 2;  // migrations per pass
  // Virtual time between run-status polls while a launch drains (the
  // serving path polls much tighter than the SDK's 100 us default).
  SimNs launch_poll_ns = 5 * kUs;
  // Teeth hook: load the kernel variant with the scan-bound off-by-one.
  bool plant_scan_bug = false;
};

// MRAM placement derived from a config; see the layout comment above.
struct KvLayout {
  std::uint64_t region = 0;  // bytes of one store slot (header + records)
  std::uint64_t inbox_off = 0;
  std::uint64_t outbox_off = 0;
  std::uint64_t end = 0;

  static KvLayout of(const KvConfig& cfg) {
    auto align_page = [](std::uint64_t off) {
      const std::uint64_t page = upmem::kMramPageSize;
      return (off + page - 1) / page * page;
    };
    KvLayout l;
    l.region = 8 + static_cast<std::uint64_t>(cfg.slot_capacity) * 16;
    l.inbox_off = align_page(cfg.slots_per_dpu * l.region);
    l.outbox_off = align_page(l.inbox_off + 8 +
                              cfg.max_batch_ops * sizeof(KvOpSlot));
    l.end = l.outbox_off + cfg.max_batch_ops * sizeof(KvResultSlot);
    VPIM_CHECK(l.end <= upmem::kMramSize, "KV config does not fit MRAM");
    return l;
  }
};

// Partition routing: 64-bit murmur finalizer mod the partition count
// (DESIGN.md §5h "partition hash spec"). The oracle re-implements this
// from the spec; keep the constants in sync with the doc, not with code.
inline std::uint32_t partition_of(std::uint64_t key,
                                  std::uint32_t partitions) {
  std::uint64_t h = key;
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  h *= 0xC4CEB9FE1A85EC53ULL;
  h ^= h >> 33;
  return static_cast<std::uint32_t>(h % partitions);
}

}  // namespace vpim::kv
