#include "kv/loadgen.h"

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace vpim::kv {

namespace {

constexpr double kPi = 3.14159265358979323846;

double zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

// Rank -> key scramble: splitmix64 finalizer restricted to the key space
// by rejection-free folding. Hot ranks land on unrelated keys, so skew
// exercises the partition hash instead of aliasing with it.
std::uint64_t scramble(std::uint64_t rank, std::uint64_t key_space) {
  std::uint64_t z = rank + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z = z ^ (z >> 31);
  return z % key_space;
}

}  // namespace

ZipfSampler::ZipfSampler(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  VPIM_CHECK(n >= 1, "zipf needs a non-empty universe");
  zetan_ = zeta(n, theta);
  const double zeta2 = zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

std::uint64_t ZipfSampler::sample(double u01) const {
  // Standard YCSB ZipfianGenerator inversion.
  const double uz = u01 * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const std::uint64_t rank = static_cast<std::uint64_t>(
      static_cast<double>(n_) *
      std::pow(eta_ * u01 - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

std::vector<KvTraceOp> generate_trace(const LoadgenConfig& config) {
  VPIM_CHECK(config.key_space >= 1, "empty key space");
  VPIM_CHECK(config.base_rate_ops_per_sec > 0, "rate must be positive");
  VPIM_CHECK(config.put_permille + config.delete_permille +
                     config.scan_permille <=
                 1000,
             "op mix exceeds 1000 permille");
  Rng rng(config.seed);
  const bool zipf = config.zipf_theta_permille > 0;
  ZipfSampler sampler(config.key_space,
                      zipf ? config.zipf_theta_permille / 1000.0 : 0.0);

  std::vector<KvTraceOp> trace;
  trace.reserve(config.nr_ops);
  // Arrival integration in double ns; the diurnal curve modulates the
  // instantaneous rate, never below 10% of base so time always advances.
  double t = 0.0;
  const double base_gap_ns = 1e9 / config.base_rate_ops_per_sec;
  for (std::uint64_t i = 0; i < config.nr_ops; ++i) {
    double gap = base_gap_ns;
    if (config.diurnal_amplitude_permille > 0) {
      const double amp = config.diurnal_amplitude_permille / 1000.0;
      const double phase =
          2.0 * kPi * t /
          static_cast<double>(config.diurnal_period_ns);
      const double rate_scale =
          std::max(0.1, 1.0 + amp * std::sin(phase));
      gap = base_gap_ns / rate_scale;
    }
    t += gap;

    KvTraceOp out;
    out.arrival = static_cast<SimNs>(t);
    out.tenant = config.tenants <= 1
                     ? 0
                     : static_cast<std::uint32_t>(
                           rng.uniform(0, config.tenants - 1));

    const std::uint64_t rank =
        zipf ? sampler.sample(rng.uniform_real(0.0, 1.0))
             : static_cast<std::uint64_t>(rng.uniform(
                   0, static_cast<std::int64_t>(config.key_space) - 1));
    const std::uint64_t key = scramble(rank, config.key_space);

    const std::int64_t dice = rng.uniform(0, 999);
    if (dice < config.put_permille) {
      out.op.kind = KvOpKind::kPut;
      out.op.key = key;
      out.op.value = rng.next_u64();
    } else if (dice < config.put_permille + config.delete_permille) {
      out.op.kind = KvOpKind::kDelete;
      out.op.key = key;
    } else if (dice < config.put_permille + config.delete_permille +
                          config.scan_permille) {
      out.op.kind = KvOpKind::kScan;
      out.op.key = key;
      out.op.hi = key + config.scan_span;
    } else {
      out.op.kind = KvOpKind::kGet;
      out.op.key = key;
    }
    trace.push_back(out);
  }
  return trace;
}

}  // namespace vpim::kv
