// Open-loop trace-replay load generator for the KV service (ISSUE 10).
//
// A LoadgenConfig is a fully seeded description of client traffic: key
// popularity (uniform or Zipfian with a permille-scaled theta), an op mix,
// a diurnal rate curve and a tenant mix. generate() expands it into a
// deterministic trace of arrival-stamped ops in *virtual* time; replaying
// the trace open-loop (arrivals do not wait for completions) is what turns
// the figure benches into a serving-style evaluation with goodput and
// latency percentiles (bench/fig_kv_skew.cc, tests/kv_fault_test.cc).
//
// Zipfian sampling follows the standard YCSB construction (precomputed
// zeta, rank rejection), and ranks are scrambled into the key space with a
// splitmix-style mix so "hot" keys spread across partitions the way real
// skewed workloads do.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "kv/kv_types.h"

namespace vpim::kv {

struct LoadgenConfig {
  std::uint64_t seed = 1;
  std::uint64_t nr_ops = 10000;
  std::uint64_t key_space = 16384;  // distinct keys
  // Popularity skew: Zipf theta in permille (0 = uniform, 990 = the
  // classic theta=0.99 YCSB skew).
  std::uint32_t zipf_theta_permille = 0;
  // Op mix in permille of nr_ops; the remainder becomes GETs.
  std::uint32_t put_permille = 40;
  std::uint32_t delete_permille = 5;
  std::uint32_t scan_permille = 5;
  std::uint64_t scan_span = 1 << 16;  // SCAN range width in key units
  // Open-loop arrival process: base rate with an optional diurnal swing
  // rate(t) = base * (1 + amplitude_permille/1000 * sin(2*pi*t/period)).
  double base_rate_ops_per_sec = 50000.0;
  std::uint32_t diurnal_amplitude_permille = 0;
  SimNs diurnal_period_ns = 100 * kMs;
  std::uint32_t tenants = 1;
};

struct KvTraceOp {
  SimNs arrival = 0;  // virtual arrival time, monotone across the trace
  std::uint32_t tenant = 0;
  KvOp op;
};

// Deterministic trace expansion; same config -> bit-identical trace.
std::vector<KvTraceOp> generate_trace(const LoadgenConfig& config);

// The Zipfian popularity sampler on its own, for tests: returns a rank in
// [0, n) with P(rank) ~ 1/(rank+1)^theta.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double theta);
  std::uint64_t sample(double u01) const;  // u01 in [0,1)

 private:
  std::uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
};

}  // namespace vpim::kv
