// DPU-side half of the KV service: one kernel launch drains the inbox
// batch against this DPU's sorted runs and writes fixed-size results to
// the outbox.
//
// The kernel is deliberately single-tasklet: ops in one batch may touch
// the same slot (the host preserves per-key submission order by routing a
// key to one partition for its whole life), so processing the inbox
// sequentially on tasklet 0 keeps the result stream trivially
// deterministic at any VPIM_THREADS. Parallelism comes from the host
// fanning independent DPUs out through the SQ/CQ pipeline, not from
// tasklets racing within one partition.
//
// Costs: every probe/shift pays real MRAM DMA through DpuCtx (64-cycle
// engine setup + streaming time), and ctx.exec() charges the comparison
// and bookkeeping instructions, so skewed batches make the hot DPU's
// launch measurably longer — the effect fig_kv_skew measures.
#include "kv/kv_kernel.h"

#include <algorithm>
#include <cstring>
#include <span>

#include "kv/kv_types.h"
#include "upmem/kernel.h"

namespace vpim::kv {
namespace {

using upmem::DpuCtx;
using upmem::DpuKernel;
using upmem::KernelRegistry;

// WRAM staging for record shifts: one MRAM page of records per hop.
constexpr std::uint32_t kShiftBytes = 4096;

template <typename T>
std::span<std::uint8_t> bytes_of(T& v) {
  return {reinterpret_cast<std::uint8_t*>(&v), sizeof(T)};
}

KvRecord read_record(DpuCtx& ctx, std::uint64_t base, std::uint64_t idx) {
  KvRecord rec;
  ctx.mram_read(base + 8 + idx * sizeof(KvRecord), bytes_of(rec));
  return rec;
}

void write_record(DpuCtx& ctx, std::uint64_t base, std::uint64_t idx,
                  const KvRecord& rec) {
  KvRecord copy = rec;
  ctx.mram_write(bytes_of(copy), base + 8 + idx * sizeof(KvRecord));
}

// First index in [0, count) whose key >= target.
std::uint64_t lower_bound(DpuCtx& ctx, std::uint64_t base,
                          std::uint64_t count, std::uint64_t target) {
  std::uint64_t lo = 0;
  std::uint64_t hi = count;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    const KvRecord rec = read_record(ctx, base, mid);
    if (rec.key < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
    ctx.exec(12);  // compare + branch + index arithmetic per probe
  }
  return lo;
}

// Moves records [from, from + n) to [to, to + n) within one slot, page
// block at a time through WRAM, ordered so source and destination never
// overlap mid-move.
void shift_records(DpuCtx& ctx, std::span<std::uint8_t> buf,
                   std::uint64_t base, std::uint64_t from, std::uint64_t to,
                   std::uint64_t n) {
  if (n == 0 || from == to) return;
  const std::uint64_t rec = sizeof(KvRecord);
  const std::uint64_t per_block = buf.size() / rec;
  if (to > from) {
    // Shift up: copy from the top down.
    std::uint64_t remaining = n;
    while (remaining > 0) {
      const std::uint64_t chunk = std::min(per_block, remaining);
      const std::uint64_t src = from + remaining - chunk;
      auto block = buf.first(chunk * rec);
      ctx.mram_read(base + 8 + src * rec, block);
      ctx.mram_write(block, base + 8 + (to - from + src) * rec);
      ctx.exec(4 * chunk);
      remaining -= chunk;
    }
  } else {
    // Shift down: copy from the bottom up.
    std::uint64_t done = 0;
    while (done < n) {
      const std::uint64_t chunk = std::min(per_block, n - done);
      auto block = buf.first(chunk * rec);
      ctx.mram_read(base + 8 + (from + done) * rec, block);
      ctx.mram_write(block, base + 8 + (to + done) * rec);
      ctx.exec(4 * chunk);
      done += chunk;
    }
  }
}

// `inclusive_hi` is the teeth knob: the correct kernel stops a scan at
// key >= hi (exclusive bound), the planted-bug variant at key > hi.
void kv_stage(DpuCtx& ctx, bool inclusive_hi) {
  if (ctx.me() != 0) return;
  const KvArgs args = ctx.var<KvArgs>(kKvArgsSymbol);
  std::uint64_t nr_ops = 0;
  ctx.mram_read(args.inbox_off, bytes_of(nr_ops));
  if (nr_ops == 0) return;
  auto shift_buf = ctx.mem_alloc(kShiftBytes);
  const std::uint64_t region =
      8 + static_cast<std::uint64_t>(args.slot_capacity) * 16;

  for (std::uint64_t i = 0; i < nr_ops; ++i) {
    KvOpSlot op;
    ctx.mram_read(args.inbox_off + 8 + i * sizeof(KvOpSlot), bytes_of(op));
    const std::uint64_t base = op.slot * region;
    std::uint64_t count = 0;
    ctx.mram_read(base, bytes_of(count));

    KvResultSlot res{};
    const std::uint64_t pos = lower_bound(ctx, base, count, op.key);
    KvRecord at{};
    bool found = false;
    if (pos < count) {
      at = read_record(ctx, base, pos);
      found = at.key == op.key;
    }
    ctx.exec(8);

    switch (static_cast<KvOpKind>(op.opcode)) {
      case KvOpKind::kGet:
        if (found) {
          res.status = static_cast<std::uint32_t>(KvStatus::kOk);
          res.value = at.value;
          res.nresults = 1;
        } else {
          res.status = static_cast<std::uint32_t>(KvStatus::kNotFound);
        }
        break;
      case KvOpKind::kPut:
        if (found) {
          write_record(ctx, base, pos, {op.key, op.aux});
          res.status = static_cast<std::uint32_t>(KvStatus::kOk);
          res.value = at.value;  // previous value
          res.nresults = 1;
        } else if (count >= args.slot_capacity) {
          res.status = static_cast<std::uint32_t>(KvStatus::kNoSpace);
        } else {
          shift_records(ctx, shift_buf, base, pos, pos + 1, count - pos);
          write_record(ctx, base, pos, {op.key, op.aux});
          ++count;
          std::uint64_t header = count;
          ctx.mram_write(bytes_of(header), base);
          res.status = static_cast<std::uint32_t>(KvStatus::kOk);
        }
        break;
      case KvOpKind::kDelete:
        if (found) {
          shift_records(ctx, shift_buf, base, pos + 1, pos,
                        count - pos - 1);
          --count;
          std::uint64_t header = count;
          ctx.mram_write(bytes_of(header), base);
          res.status = static_cast<std::uint32_t>(KvStatus::kOk);
          res.value = at.value;
          res.nresults = 1;
        } else {
          res.status = static_cast<std::uint32_t>(KvStatus::kNotFound);
        }
        break;
      case KvOpKind::kScan: {
        res.status = static_cast<std::uint32_t>(KvStatus::kOk);
        std::uint64_t j = pos;
        while (j < count && res.nresults < args.scan_limit) {
          const KvRecord rec = read_record(ctx, base, j);
          const bool past =
              inclusive_hi ? rec.key > op.aux : rec.key >= op.aux;
          ctx.exec(10);
          if (past) break;
          res.pairs[res.nresults++] = rec;
          ++j;
        }
        break;
      }
      default:
        res.status = static_cast<std::uint32_t>(KvStatus::kNotFound);
        break;
    }

    ctx.mram_write(bytes_of(res),
                   args.outbox_off + i * sizeof(KvResultSlot));
    ctx.exec(16);  // per-op dispatch + outbox bookkeeping
  }
}

DpuKernel make_kernel(const char* name, bool inclusive_hi) {
  DpuKernel k;
  k.name = name;
  k.symbols = {{kKvArgsSymbol, sizeof(KvArgs)}};
  k.stages = {
      [inclusive_hi](DpuCtx& ctx) { kv_stage(ctx, inclusive_hi); }};
  return k;
}

}  // namespace

void register_kv_kernels() {
  KernelRegistry& reg = KernelRegistry::instance();
  if (reg.contains(kKvKernelName)) return;
  reg.add(make_kernel(kKvKernelName, /*inclusive_hi=*/false));
  reg.add(make_kernel(kKvTeethKernelName, /*inclusive_hi=*/true));
}

}  // namespace vpim::kv
