#include "virtio/virtqueue.h"

namespace vpim::virtio {

Virtqueue::Virtqueue(std::uint16_t size)
    : size_(size),
      desc_(size),
      avail_ring_(size),
      used_ring_(size),
      num_free_(size) {
  VPIM_CHECK(size > 0 && (size & (size - 1)) == 0,
             "virtqueue size must be a power of two");
  // Free list threaded through `next`.
  for (std::uint16_t i = 0; i < size; ++i) {
    desc_[i].next = static_cast<std::uint16_t>(i + 1);
  }
  free_head_ = 0;
}

std::uint16_t Virtqueue::alloc_desc() {
  VPIM_CHECK(num_free_ > 0, "virtqueue descriptor table full");
  const std::uint16_t i = free_head_;
  free_head_ = desc_[i].next;
  --num_free_;
  return i;
}

void Virtqueue::free_chain(std::uint16_t head) {
  std::uint16_t i = head;
  while (true) {
    const bool has_next = (desc_[i].flags & kDescFlagNext) != 0;
    const std::uint16_t next = desc_[i].next;
    desc_[i] = VirtqDesc{};
    desc_[i].next = free_head_;
    free_head_ = i;
    ++num_free_;
    if (!has_next) break;
    i = next;
  }
}

std::uint16_t Virtqueue::submit(std::span<const DescBuffer> buffers) {
  VPIM_CHECK(!buffers.empty(), "empty descriptor chain");
  VPIM_CHECK(buffers.size() <= num_free_,
             "virtqueue cannot hold the chain");
  std::uint16_t head = 0;
  std::uint16_t prev = 0;
  for (std::size_t k = 0; k < buffers.size(); ++k) {
    const std::uint16_t i = alloc_desc();
    desc_[i].addr = buffers[k].gpa;
    desc_[i].len = buffers[k].len;
    desc_[i].flags = buffers[k].device_writable ? kDescFlagWrite : 0;
    if (k == 0) {
      head = i;
    } else {
      desc_[prev].flags |= kDescFlagNext;
      desc_[prev].next = i;
    }
    prev = i;
  }
  avail_ring_[avail_idx_ % size_] = head;
  ++avail_idx_;
  return head;
}

std::optional<DescChain> Virtqueue::pop_avail() {
  DescChain chain;
  if (!pop_avail_into(chain)) return std::nullopt;
  return chain;
}

bool Virtqueue::pop_avail_into(DescChain& out) {
  if (avail_seen_ == avail_idx_) return false;
  const std::uint16_t head = avail_ring_[avail_seen_ % size_];
  ++avail_seen_;
  out.head = head;
  out.descs.clear();
  std::uint16_t i = head;
  while (true) {
    out.descs.push_back(desc_[i]);
    if ((desc_[i].flags & kDescFlagNext) == 0) break;
    i = desc_[i].next;
    VPIM_CHECK(out.descs.size() <= size_, "descriptor chain loop");
  }
  return true;
}

void Virtqueue::push_used(std::uint16_t head, std::uint32_t written) {
  used_ring_[used_idx_ % size_] = {head, written};
  ++used_idx_;
}

std::optional<UsedElem> Virtqueue::poll_used() {
  if (used_seen_ == used_idx_) return std::nullopt;
  const UsedElem elem = used_ring_[used_seen_ % size_];
  ++used_seen_;
  free_chain(static_cast<std::uint16_t>(elem.id));
  return elem;
}

}  // namespace vpim::virtio
