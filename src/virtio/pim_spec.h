// Constants of the paper's virtio PIM device specification (Appendix A.1).
#pragma once

#include <cstdint>

namespace vpim::virtio {

// "The virtio PIM device is assigned ... the virtio device ID 42."
inline constexpr std::uint32_t kVirtioPimDeviceId = 42;

// Two queues: transferq carries data and commands, controlq handles
// manager synchronization.
inline constexpr std::uint16_t kTransferQueue = 0;
inline constexpr std::uint16_t kControlQueue = 1;

// "This queue has 512 slots."
inline constexpr std::uint16_t kTransferQueueSize = 512;
inline constexpr std::uint16_t kControlQueueSize = 64;

// Serialized transfer matrix: request info + matrix metadata + 64 x
// (per-DPU metadata buffer + per-DPU page buffer) = at most 130 buffers
// (Fig 7).
inline constexpr std::size_t kMaxMatrixBuffers = 130;

// "The virtio PIM device supports five operations" (Appendix A.1).
enum class PimRequestType : std::uint32_t {
  kConfig = 0,        // requesting configuration
  kCiWrite = 1,       // sending commands
  kCiRead = 2,        // reading commands / status
  kWriteToRank = 3,   // writing to the PIM device
  kReadFromRank = 4,  // reading from the PIM device
};

// Device configuration layout the driver reads at initialization
// (Appendix A.1: clock division, memory region size, number of control
// interfaces, processing unit frequency, power management).
struct PimConfigSpace {
  std::uint32_t nr_dpus = 0;
  std::uint32_t dpu_freq_mhz = 0;
  std::uint32_t clock_division = 0;
  std::uint32_t nr_control_interfaces = 0;
  std::uint64_t mram_bytes_per_dpu = 0;
  std::uint32_t power_state = 0;
};

}  // namespace vpim::virtio
