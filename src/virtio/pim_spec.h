// Constants of the paper's virtio PIM device specification (Appendix A.1).
#pragma once

#include <cstdint>

namespace vpim::virtio {

// "The virtio PIM device is assigned ... the virtio device ID 42."
inline constexpr std::uint32_t kVirtioPimDeviceId = 42;

// Two queues: transferq carries data and commands, controlq handles
// manager synchronization.
inline constexpr std::uint16_t kTransferQueue = 0;
inline constexpr std::uint16_t kControlQueue = 1;

// "This queue has 512 slots."
inline constexpr std::uint16_t kTransferQueueSize = 512;
inline constexpr std::uint16_t kControlQueueSize = 64;

// Serialized transfer matrix: request info + matrix metadata + 64 x
// (per-DPU metadata buffer + per-DPU page buffer) + the device-writable
// response block = at most 131 buffers (Fig 7).
inline constexpr std::size_t kMaxMatrixBuffers = 131;

// "The virtio PIM device supports five operations" (Appendix A.1).
enum class PimRequestType : std::uint32_t {
  kConfig = 0,        // requesting configuration
  kCiWrite = 1,       // sending commands
  kCiRead = 2,        // reading commands / status
  kWriteToRank = 3,   // writing to the PIM device
  kReadFromRank = 4,  // reading from the PIM device
};

// Completion status carried in WireResponse::status. Every request the
// device pops completes through the used ring with one of these; a
// malformed or hostile request must never abort the device model (it
// serves other tenants) nor be dropped silently (the guest would spin on
// the used ring forever).
enum class PimStatus : std::int32_t {
  kOk = 0,
  kBadRequest = 1,   // malformed chain, fields, bounds, or payload
  kUnbound = 2,      // operation requires a rank binding
  kNoCapacity = 3,   // manager could not provide a rank
  kUnsupported = 4,  // opcode unknown or not valid on this queue
  kTimeout = 5,      // device did not complete before the driver deadline
  kDeviceFault = 6,  // unrecoverable hardware fault behind the device
  // Overload protection (ISSUE 8). These are *flow-control* statuses: the
  // request was refused or abandoned before (or instead of) being executed,
  // never because it was malformed. A well-behaved guest retries later;
  // none of them indicate device damage.
  kAdmissionReject = 7,  // tenant exceeded its token-bucket rate
  kOverloaded = 8,       // global in-flight budget / CQ full (would-block)
  kCancelled = 9,        // guest cancelled the ticket before completion
};

inline const char* status_name(std::int32_t status) {
  switch (static_cast<PimStatus>(status)) {
    case PimStatus::kOk: return "OK";
    case PimStatus::kBadRequest: return "BAD_REQUEST";
    case PimStatus::kUnbound: return "UNBOUND";
    case PimStatus::kNoCapacity: return "NO_CAPACITY";
    case PimStatus::kUnsupported: return "UNSUPPORTED";
    case PimStatus::kTimeout: return "TIMEOUT";
    case PimStatus::kDeviceFault: return "DEVICE_FAULT";
    case PimStatus::kAdmissionReject: return "ADMISSION_REJECT";
    case PimStatus::kOverloaded: return "OVERLOADED";
    case PimStatus::kCancelled: return "CANCELLED";
  }
  return "UNKNOWN_STATUS";
}

// Device configuration layout the driver reads at initialization
// (Appendix A.1: clock division, memory region size, number of control
// interfaces, processing unit frequency, power management).
struct PimConfigSpace {
  std::uint32_t nr_dpus = 0;
  std::uint32_t dpu_freq_mhz = 0;
  std::uint32_t clock_division = 0;
  std::uint32_t nr_control_interfaces = 0;
  std::uint64_t mram_bytes_per_dpu = 0;
  std::uint32_t power_state = 0;
};

}  // namespace vpim::virtio
