// Split virtqueue (descriptor table + available ring + used ring),
// following the virtio 1.x layout the paper's specification builds on
// (Appendix A.1). The vUPMEM transferq has 512 slots so the serialized
// transfer matrix (<= 131 buffers, Fig 7 plus the response block) always
// fits.
//
// Buffer addresses are guest physical addresses; the device side resolves
// them through GuestMemory, never copying payload data through the ring —
// that is the zero-copy property the backend relies on.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/error.h"

namespace vpim::virtio {

inline constexpr std::uint16_t kDescFlagNext = 1;
inline constexpr std::uint16_t kDescFlagWrite = 2;  // device-writable

struct VirtqDesc {
  std::uint64_t addr = 0;  // GPA
  std::uint32_t len = 0;
  std::uint16_t flags = 0;
  std::uint16_t next = 0;
};

// One buffer the driver wants to expose to the device.
struct DescBuffer {
  std::uint64_t gpa = 0;
  std::uint32_t len = 0;
  bool device_writable = false;
};

// A chain the device popped from the available ring.
struct DescChain {
  std::uint16_t head = 0;
  std::vector<VirtqDesc> descs;
};

struct UsedElem {
  std::uint32_t id = 0;   // chain head
  std::uint32_t len = 0;  // bytes the device wrote
};

class Virtqueue {
 public:
  explicit Virtqueue(std::uint16_t size);

  std::uint16_t size() const { return size_; }
  std::uint16_t free_descriptors() const { return num_free_; }

  // --- driver side -------------------------------------------------------
  // Writes a chain into the descriptor table and publishes it on the
  // available ring. Throws if the table cannot hold the chain.
  std::uint16_t submit(std::span<const DescBuffer> buffers);
  // Consumes the next used element, recycling its descriptors.
  std::optional<UsedElem> poll_used();

  // --- device side -------------------------------------------------------
  // Pops the next available chain (walking next pointers).
  std::optional<DescChain> pop_avail();
  // Allocation-reusing form: fills `out` (clearing, not freeing, its
  // descriptor storage) and returns false when the ring is empty. Device
  // drain loops keep one chain as member scratch and pay no per-request
  // vector churn.
  bool pop_avail_into(DescChain& out);
  // Marks a chain as consumed.
  void push_used(std::uint16_t head, std::uint32_t written);

 private:
  std::uint16_t alloc_desc();
  void free_chain(std::uint16_t head);

  std::uint16_t size_;
  std::vector<VirtqDesc> desc_;
  std::vector<std::uint16_t> avail_ring_;
  std::uint16_t avail_idx_ = 0;   // driver publish cursor
  std::uint16_t avail_seen_ = 0;  // device consume cursor
  std::vector<UsedElem> used_ring_;
  std::uint16_t used_idx_ = 0;   // device publish cursor
  std::uint16_t used_seen_ = 0;  // driver consume cursor
  std::uint16_t free_head_ = 0;
  std::uint16_t num_free_ = 0;
};

}  // namespace vpim::virtio
