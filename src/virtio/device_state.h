// Virtio device status lifecycle + feature negotiation (virtio 1.x §2.1,
// referenced by the paper's PIM specification in Appendix A.1).
//
// The guest driver walks ACKNOWLEDGE -> DRIVER -> FEATURES_OK -> DRIVER_OK
// during initialization; the device must reject queue notifications until
// DRIVER_OK is set, and either side can force a reset. The PIM device
// offers no feature bits ("No feature bits are needed", Appendix A.1), so
// negotiation must end with an empty feature set.
#pragma once

#include <cstdint>

#include "common/error.h"

namespace vpim::virtio {

inline constexpr std::uint8_t kStatusAcknowledge = 1;
inline constexpr std::uint8_t kStatusDriver = 2;
inline constexpr std::uint8_t kStatusDriverOk = 4;
inline constexpr std::uint8_t kStatusFeaturesOk = 8;
inline constexpr std::uint8_t kStatusNeedsReset = 64;
inline constexpr std::uint8_t kStatusFailed = 128;

class DeviceState {
 public:
  explicit DeviceState(std::uint64_t device_features = 0)
      : device_features_(device_features) {}

  std::uint8_t status() const { return status_; }
  bool driver_ok() const { return (status_ & kStatusDriverOk) != 0; }

  // Driver writes the status register. Writing 0 resets the device; other
  // writes may only *add* bits, in the prescribed order.
  void write_status(std::uint8_t value) {
    if (value == 0) {
      reset();
      return;
    }
    VPIM_CHECK((status_ & kStatusFailed) == 0,
               "device is FAILED; reset before reuse");
    VPIM_CHECK((value & status_) == status_,
               "status bits can only be added, never removed");
    const std::uint8_t added = value & ~status_;
    if (added & kStatusDriver) {
      VPIM_CHECK(value & kStatusAcknowledge, "DRIVER before ACKNOWLEDGE");
    }
    if (added & kStatusFeaturesOk) {
      VPIM_CHECK(value & kStatusDriver, "FEATURES_OK before DRIVER");
      VPIM_CHECK(features_written_, "FEATURES_OK before feature selection");
      // The device accepts the negotiated features only if they are a
      // subset of what it offered (for PIM: the empty set).
      if ((driver_features_ & ~device_features_) != 0) {
        status_ |= kStatusFailed;
        fail("driver selected features the device does not offer");
      }
    }
    if (added & kStatusDriverOk) {
      VPIM_CHECK(value & kStatusFeaturesOk, "DRIVER_OK before FEATURES_OK");
    }
    status_ = value;
  }

  std::uint64_t device_features() const { return device_features_; }
  void write_driver_features(std::uint64_t features) {
    VPIM_CHECK((status_ & kStatusFeaturesOk) == 0,
               "features locked after FEATURES_OK");
    driver_features_ = features;
    features_written_ = true;
  }
  std::uint64_t negotiated_features() const {
    return driver_features_ & device_features_;
  }

  void mark_needs_reset() { status_ |= kStatusNeedsReset; }

  void reset() {
    status_ = 0;
    driver_features_ = 0;
    features_written_ = false;
  }

 private:
  std::uint64_t device_features_;
  std::uint64_t driver_features_ = 0;
  bool features_written_ = false;
  std::uint8_t status_ = 0;
};

}  // namespace vpim::virtio
