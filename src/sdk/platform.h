// Execution environment an application runs in: the bare host (native
// UPMEM) or a guest VM (vUPMEM). Provides rank allocation, application
// buffer memory (so the virtualized path can resolve buffers to guest
// physical pages), and the virtual clock.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/cost_model.h"
#include "common/sim_clock.h"
#include "sdk/rank_device.h"

namespace vpim::sdk {

class Platform {
 public:
  virtual ~Platform() = default;

  // Allocates `nr_ranks` rank devices. Throws VpimError if the environment
  // cannot satisfy the request (e.g. manager timeout after retries).
  virtual std::vector<std::unique_ptr<RankDevice>> alloc_ranks(
      std::uint32_t nr_ranks) = 0;

  // Application data buffer (host heap natively; guest RAM inside a VM).
  virtual std::span<std::uint8_t> alloc(std::size_t bytes) = 0;

  virtual SimClock& clock() = 0;
  virtual const CostModel& cost() const = 0;

  // How often the SDK polls DPU run status while waiting for a launch.
  // Together with the per-poll CI cost this produces the paper's 8k-28k
  // CI operations per checksum run (§5.3.1).
  SimNs poll_period_ns = 100 * kUs;
};

}  // namespace vpim::sdk
