// Device boundary the SDK drives.
//
// The SDK sees one RankDevice per allocated rank. Native execution binds it
// to a performance-mode RankMapping; inside a VM it binds to a vUPMEM
// frontend device file (safe mode). PrIM applications are written against
// the SDK only, so they run unmodified in both environments — the paper's
// transparency requirement R3.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "common/units.h"
#include "driver/xfer.h"

namespace vpim::sdk {

class RankDevice {
 public:
  virtual ~RankDevice() = default;

  virtual std::uint32_t nr_dpus() = 0;

  // Program management + launch (control-interface class operations).
  virtual void load(std::string_view kernel_name) = 0;
  virtual void launch(std::uint64_t dpu_mask,
                      std::optional<std::uint32_t> nr_tasklets) = 0;
  virtual std::uint64_t running_mask() = 0;

  // Bulk MRAM transfers (rank-operation class).
  virtual void transfer(const driver::TransferMatrix& matrix) = 0;
  virtual void broadcast(std::uint64_t mram_offset,
                         std::span<const std::uint8_t> data) = 0;

  // Small per-DPU WRAM variable access (control-interface class).
  virtual void copy_to_symbol(std::uint32_t dpu, std::string_view symbol,
                              std::uint32_t offset,
                              std::span<const std::uint8_t> data) = 0;
  virtual void copy_from_symbol(std::uint32_t dpu, std::string_view symbol,
                                std::uint32_t offset,
                                std::span<std::uint8_t> out) = 0;
  // Parallel per-DPU WRAM variable transfer: `packed` holds nr_dpus
  // consecutive values of `bytes_per_dpu` each. One SDK call — and one
  // vPIM message — covers the whole rank, like dpu_push_xfer on a host
  // variable.
  virtual void push_symbols(driver::XferDirection dir,
                            std::string_view symbol, std::uint32_t offset,
                            std::span<std::uint8_t> packed,
                            std::uint32_t bytes_per_dpu) = 0;
};

}  // namespace vpim::sdk
