// Native (non-virtualized) execution environment: the SDK binds rank
// devices straight to performance-mode mappings, exactly how the paper runs
// its "native" baseline (§5.1, "the native is run in performance mode").
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "driver/driver.h"
#include "sdk/platform.h"

namespace vpim::sdk {

class NativePlatform : public Platform {
 public:
  NativePlatform(driver::UpmemDriver& drv, std::string app_name);

  std::vector<std::unique_ptr<RankDevice>> alloc_ranks(
      std::uint32_t nr_ranks) override;
  std::span<std::uint8_t> alloc(std::size_t bytes) override;
  SimClock& clock() override { return drv_.machine().clock(); }
  const CostModel& cost() const override { return drv_.machine().cost(); }

  driver::UpmemDriver& drv() { return drv_; }

 private:
  driver::UpmemDriver& drv_;
  std::string app_name_;
  std::deque<std::vector<std::uint8_t>> arena_;
};

}  // namespace vpim::sdk
