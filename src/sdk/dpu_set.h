// UPMEM SDK host API equivalent (paper §2, Fig 2a).
//
// Mirrors the dpu_alloc / dpu_load / dpu_prepare_xfer / dpu_push_xfer /
// dpu_launch / dpu_copy_from workflow. Allocation is at rank granularity
// (§3.3): asking for N DPUs books ceil(N / dpus_per_rank) ranks and uses
// the first N DPUs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/breakdown.h"
#include "sdk/platform.h"

namespace vpim::sdk {

// Transfer target: the bulk MRAM heap (rank operations) or a named WRAM
// variable (control-interface operations), as in the real SDK.
struct Target {
  // MRAM heap at `offset` — equivalent to DPU_MRAM_HEAP_POINTER_NAME.
  static Target mram(std::uint64_t offset) { return {true, {}, offset}; }
  // WRAM symbol `name` at `offset` within the symbol.
  static Target symbol(std::string name, std::uint32_t offset = 0) {
    return {false, std::move(name), offset};
  }

  bool is_mram = true;
  std::string name;
  std::uint64_t offset = 0;
};

// SDK-level operation counters (one count per device call; multi-rank
// calls count once per rank touched).
struct OpCounters {
  std::uint64_t ci_ops = 0;       // loads, launches, status polls, symbols
  std::uint64_t rank_writes = 0;  // write-to-rank operations
  std::uint64_t rank_reads = 0;   // read-from-rank operations
};

class DpuSet {
 public:
  // dpu_alloc(): books enough ranks for `nr_dpus` and distributes the set
  // across them. Throws if the environment cannot provide the ranks.
  static DpuSet allocate(Platform& platform, std::uint32_t nr_dpus);

  std::uint32_t nr_dpus() const { return nr_dpus_; }
  std::uint32_t nr_ranks() const {
    return static_cast<std::uint32_t>(ranks_.size());
  }
  Platform& platform() { return *platform_; }

  // dpu_load(): loads a registered kernel on every rank of the set.
  void load(std::string_view kernel_name);

  // dpu_prepare_xfer(): stages `buffer` for DPU `dpu`.
  void prepare_xfer(std::uint32_t dpu, std::uint8_t* buffer);

  // dpu_push_xfer(): moves `bytes_per_dpu` bytes between each prepared
  // buffer and `target` on the corresponding DPU, as one parallel
  // operation per rank (ranks proceed concurrently).
  void push_xfer(driver::XferDirection dir, const Target& target,
                 std::uint64_t bytes_per_dpu);
  // Variant with a per-DPU size (sparse workloads).
  void push_xfer(driver::XferDirection dir, const Target& target,
                 std::span<const std::uint64_t> bytes_per_dpu);

  // dpu_broadcast_to(): same buffer to every DPU of the set.
  void broadcast(const Target& target, std::span<const std::uint8_t> data);

  // dpu_copy_to / dpu_copy_from: serial single-DPU transfer.
  void copy_to(std::uint32_t dpu, const Target& target,
               std::span<const std::uint8_t> data);
  void copy_from(std::uint32_t dpu, const Target& target,
                 std::span<std::uint8_t> out);

  // dpu_launch(DPU_SYNCHRONOUS): starts the loaded kernel on every DPU of
  // the set and polls run status until completion.
  void launch(std::optional<std::uint32_t> nr_tasklets = std::nullopt);

  // Releases the ranks (dpu_free); also run by the destructor.
  void free();

  const OpCounters& counters() const { return counters_; }

  DpuSet(DpuSet&&) = default;
  DpuSet& operator=(DpuSet&&) = default;

 private:
  DpuSet(Platform& platform, std::uint32_t nr_dpus,
         std::vector<std::unique_ptr<RankDevice>> ranks);

  struct DpuRef {
    std::uint32_t rank;   // index into ranks_
    std::uint32_t local;  // DPU index within the rank
  };
  DpuRef ref(std::uint32_t dpu) const;
  // DPUs of the set living on rank `r`.
  std::uint32_t dpus_on_rank(std::uint32_t r) const;
  // Global index of rank `r`'s first DPU (cumulative-base table built once
  // in the constructor; r == nr_ranks() gives the total capacity).
  std::uint32_t rank_base(std::uint32_t r) const { return rank_base_[r]; }

  void run_per_rank(
      const std::function<void(std::uint32_t rank_index)>& body);

  // Packing scratch for parallel symbol pushes (platform memory, so the
  // virtualized path can reference it zero-copy).
  std::span<std::uint8_t> symbol_scratch(std::uint64_t bytes);

  Platform* platform_;
  std::uint32_t nr_dpus_;
  std::vector<std::unique_ptr<RankDevice>> ranks_;
  std::vector<std::uint32_t> rank_base_;  // prefix sums of ranks' DPU counts
  std::vector<std::uint8_t*> prepared_;
  std::span<std::uint8_t> scratch_;
  OpCounters counters_;
};

}  // namespace vpim::sdk
