#include "sdk/native.h"

#include "common/error.h"

namespace vpim::sdk {

namespace {

class NativeRankDevice : public RankDevice {
 public:
  explicit NativeRankDevice(driver::RankMapping mapping)
      : mapping_(std::move(mapping)) {}

  std::uint32_t nr_dpus() override { return mapping_.nr_dpus(); }

  void load(std::string_view kernel_name) override {
    mapping_.ci_load(kernel_name);
  }
  void launch(std::uint64_t dpu_mask,
              std::optional<std::uint32_t> nr_tasklets) override {
    mapping_.ci_launch(dpu_mask, nr_tasklets);
  }
  std::uint64_t running_mask() override {
    return mapping_.ci_running_mask();
  }
  void transfer(const driver::TransferMatrix& matrix) override {
    mapping_.transfer(matrix);
  }
  void broadcast(std::uint64_t mram_offset,
                 std::span<const std::uint8_t> data) override {
    mapping_.broadcast(mram_offset, data);
  }
  void copy_to_symbol(std::uint32_t dpu, std::string_view symbol,
                      std::uint32_t offset,
                      std::span<const std::uint8_t> data) override {
    mapping_.ci_copy_to_symbol(dpu, symbol, offset, data);
  }
  void copy_from_symbol(std::uint32_t dpu, std::string_view symbol,
                        std::uint32_t offset,
                        std::span<std::uint8_t> out) override {
    mapping_.ci_copy_from_symbol(dpu, symbol, offset, out);
  }
  void push_symbols(driver::XferDirection dir, std::string_view symbol,
                    std::uint32_t offset, std::span<std::uint8_t> packed,
                    std::uint32_t bytes_per_dpu) override {
    // Perf mode writes each DPU's CI slot directly within one SDK call.
    const auto n =
        static_cast<std::uint32_t>(packed.size() / bytes_per_dpu);
    for (std::uint32_t d = 0; d < n; ++d) {
      std::span<std::uint8_t> value(
          packed.data() + std::uint64_t{d} * bytes_per_dpu,
          bytes_per_dpu);
      if (dir == driver::XferDirection::kToRank) {
        mapping_.ci_copy_to_symbol(d, symbol, offset, value);
      } else {
        mapping_.ci_copy_from_symbol(d, symbol, offset, value);
      }
    }
  }

 private:
  driver::RankMapping mapping_;
};

}  // namespace

NativePlatform::NativePlatform(driver::UpmemDriver& drv, std::string app_name)
    : drv_(drv), app_name_(std::move(app_name)) {}

std::vector<std::unique_ptr<RankDevice>> NativePlatform::alloc_ranks(
    std::uint32_t nr_ranks) {
  std::vector<std::unique_ptr<RankDevice>> out;
  for (std::uint32_t r = 0;
       r < drv_.machine().nr_ranks() && out.size() < nr_ranks; ++r) {
    if (drv_.is_mapped(r) || drv_.sysfs().read(r).in_use) continue;
    out.push_back(std::make_unique<NativeRankDevice>(
        drv_.map_rank(r, app_name_)));
  }
  VPIM_CHECK(out.size() == nr_ranks, "not enough free ranks on the host");
  return out;
}

std::span<std::uint8_t> NativePlatform::alloc(std::size_t bytes) {
  arena_.emplace_back(bytes, 0);
  return {arena_.back().data(), arena_.back().size()};
}

}  // namespace vpim::sdk
