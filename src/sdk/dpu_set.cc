#include "sdk/dpu_set.h"

#include <algorithm>
#include <cstring>
#include <functional>

#include "common/error.h"
#include "upmem/layout.h"

namespace vpim::sdk {

DpuSet DpuSet::allocate(Platform& platform, std::uint32_t nr_dpus) {
  VPIM_CHECK(nr_dpus >= 1, "dpu_alloc of zero DPUs");
  std::vector<std::unique_ptr<RankDevice>> ranks;
  std::uint32_t capacity = 0;
  while (capacity < nr_dpus) {
    auto batch = platform.alloc_ranks(1);
    VPIM_CHECK(batch.size() == 1, "platform returned no rank");
    capacity += batch[0]->nr_dpus();
    ranks.push_back(std::move(batch[0]));
  }
  return DpuSet(platform, nr_dpus, std::move(ranks));
}

DpuSet::DpuSet(Platform& platform, std::uint32_t nr_dpus,
               std::vector<std::unique_ptr<RankDevice>> ranks)
    : platform_(&platform),
      nr_dpus_(nr_dpus),
      ranks_(std::move(ranks)),
      prepared_(nr_dpus, nullptr) {
  rank_base_.reserve(ranks_.size() + 1);
  rank_base_.push_back(0);
  for (const auto& rank : ranks_) {
    rank_base_.push_back(rank_base_.back() + rank->nr_dpus());
  }
}

DpuSet::DpuRef DpuSet::ref(std::uint32_t dpu) const {
  VPIM_CHECK(dpu < nr_dpus_, "DPU index outside the set");
  const auto it =
      std::upper_bound(rank_base_.begin(), rank_base_.end(), dpu);
  const auto r = static_cast<std::uint32_t>(it - rank_base_.begin()) - 1;
  return {r, dpu - rank_base_[r]};
}

std::uint32_t DpuSet::dpus_on_rank(std::uint32_t r) const {
  const std::uint32_t base = rank_base_[r];
  if (base >= nr_dpus_) return 0;
  return std::min(ranks_[r]->nr_dpus(), nr_dpus_ - base);
}

void DpuSet::run_per_rank(
    const std::function<void(std::uint32_t)>& body) {
  if (ranks_.size() == 1) {
    body(0);
    return;
  }
  std::vector<std::function<void()>> branches;
  branches.reserve(ranks_.size());
  for (std::uint32_t r = 0; r < ranks_.size(); ++r) {
    if (dpus_on_rank(r) == 0) continue;
    branches.push_back([&body, r] { body(r); });
  }
  platform_->clock().run_parallel(branches);
}

void DpuSet::load(std::string_view kernel_name) {
  run_per_rank([&](std::uint32_t r) {
    ranks_[r]->load(kernel_name);
    ++counters_.ci_ops;
  });
}

void DpuSet::prepare_xfer(std::uint32_t dpu, std::uint8_t* buffer) {
  VPIM_CHECK(dpu < nr_dpus_, "prepare_xfer outside the set");
  prepared_[dpu] = buffer;
}

void DpuSet::push_xfer(driver::XferDirection dir, const Target& target,
                       std::uint64_t bytes_per_dpu) {
  std::vector<std::uint64_t> sizes(nr_dpus_, bytes_per_dpu);
  push_xfer(dir, target, sizes);
}

void DpuSet::push_xfer(driver::XferDirection dir, const Target& target,
                       std::span<const std::uint64_t> bytes_per_dpu) {
  VPIM_CHECK(bytes_per_dpu.size() == nr_dpus_,
             "push_xfer size list must cover the whole set");
  if (target.is_mram) {
    run_per_rank([&](std::uint32_t r) {
      driver::TransferMatrix matrix;
      matrix.direction = dir;
      const std::uint32_t base = rank_base(r);
      const std::uint32_t n = dpus_on_rank(r);
      for (std::uint32_t local = 0; local < n; ++local) {
        const std::uint32_t dpu = base + local;
        if (bytes_per_dpu[dpu] == 0) continue;
        VPIM_CHECK(prepared_[dpu] != nullptr,
                   "push_xfer without prepare_xfer");
        matrix.entries.push_back({local, target.offset, prepared_[dpu],
                                  bytes_per_dpu[dpu]});
      }
      if (!matrix.entries.empty()) {
        ranks_[r]->transfer(matrix);
        if (dir == driver::XferDirection::kToRank) {
          ++counters_.rank_writes;
        } else {
          ++counters_.rank_reads;
        }
      }
    });
  } else {
    // WRAM variable: one parallel per-rank transfer when every DPU moves
    // the same amount (the common dpu_push_xfer-on-a-variable case),
    // otherwise one control-interface copy per DPU.
    const std::uint64_t uniform = bytes_per_dpu[0];
    const bool all_uniform =
        uniform > 0 &&
        std::all_of(bytes_per_dpu.begin(), bytes_per_dpu.end(),
                    [&](std::uint64_t b) { return b == uniform; });
    if (all_uniform) {
      auto packed = symbol_scratch(std::uint64_t{nr_dpus_} * uniform);
      if (dir == driver::XferDirection::kToRank) {
        for (std::uint32_t dpu = 0; dpu < nr_dpus_; ++dpu) {
          VPIM_CHECK(prepared_[dpu] != nullptr,
                     "push_xfer without prepare_xfer");
          std::memcpy(packed.data() + std::uint64_t{dpu} * uniform,
                      prepared_[dpu], uniform);
        }
      }
      run_per_rank([&](std::uint32_t r) {
        const std::uint32_t base = rank_base(r);
        const std::uint32_t n = dpus_on_rank(r);
        ranks_[r]->push_symbols(
            dir, target.name, static_cast<std::uint32_t>(target.offset),
            packed.subspan(std::uint64_t{base} * uniform,
                           std::uint64_t{n} * uniform),
            static_cast<std::uint32_t>(uniform));
        ++counters_.ci_ops;
      });
      if (dir == driver::XferDirection::kFromRank) {
        for (std::uint32_t dpu = 0; dpu < nr_dpus_; ++dpu) {
          VPIM_CHECK(prepared_[dpu] != nullptr,
                     "push_xfer without prepare_xfer");
          std::memcpy(prepared_[dpu],
                      packed.data() + std::uint64_t{dpu} * uniform,
                      uniform);
        }
      }
      return;
    }
    run_per_rank([&](std::uint32_t r) {
      const std::uint32_t base = rank_base(r);
      const std::uint32_t n = dpus_on_rank(r);
      for (std::uint32_t local = 0; local < n; ++local) {
        const std::uint32_t dpu = base + local;
        if (bytes_per_dpu[dpu] == 0) continue;
        VPIM_CHECK(prepared_[dpu] != nullptr,
                   "push_xfer without prepare_xfer");
        const auto offset = static_cast<std::uint32_t>(target.offset);
        if (dir == driver::XferDirection::kToRank) {
          ranks_[r]->copy_to_symbol(
              local, target.name, offset,
              {prepared_[dpu], bytes_per_dpu[dpu]});
        } else {
          ranks_[r]->copy_from_symbol(
              local, target.name, offset,
              {prepared_[dpu], bytes_per_dpu[dpu]});
        }
        ++counters_.ci_ops;
      }
    });
  }
}

std::span<std::uint8_t> DpuSet::symbol_scratch(std::uint64_t bytes) {
  if (scratch_.size() < bytes) scratch_ = platform_->alloc(bytes);
  return scratch_.first(bytes);
}

void DpuSet::broadcast(const Target& target,
                       std::span<const std::uint8_t> data) {
  if (target.is_mram) {
    run_per_rank([&](std::uint32_t r) {
      const std::uint32_t n = dpus_on_rank(r);
      if (n == ranks_[r]->nr_dpus()) {
        ranks_[r]->broadcast(target.offset, data);
      } else {
        // Partial rank: address only the set's DPUs.
        driver::TransferMatrix matrix;
        matrix.direction = driver::XferDirection::kToRank;
        auto* host = const_cast<std::uint8_t*>(data.data());
        for (std::uint32_t local = 0; local < n; ++local) {
          matrix.entries.push_back(
              {local, target.offset, host, data.size()});
        }
        ranks_[r]->transfer(matrix);
      }
      ++counters_.rank_writes;
    });
  } else {
    // Same value to every DPU: pack once, one message per rank.
    auto packed = symbol_scratch(std::uint64_t{nr_dpus_} * data.size());
    for (std::uint32_t dpu = 0; dpu < nr_dpus_; ++dpu) {
      std::memcpy(packed.data() + std::uint64_t{dpu} * data.size(),
                  data.data(), data.size());
    }
    run_per_rank([&](std::uint32_t r) {
      const std::uint32_t base = rank_base(r);
      const std::uint32_t n = dpus_on_rank(r);
      ranks_[r]->push_symbols(
          driver::XferDirection::kToRank, target.name,
          static_cast<std::uint32_t>(target.offset),
          packed.subspan(std::uint64_t{base} * data.size(),
                         std::uint64_t{n} * data.size()),
          static_cast<std::uint32_t>(data.size()));
      ++counters_.ci_ops;
    });
  }
}

void DpuSet::copy_to(std::uint32_t dpu, const Target& target,
                     std::span<const std::uint8_t> data) {
  const DpuRef d = ref(dpu);
  if (target.is_mram) {
    driver::TransferMatrix matrix;
    matrix.direction = driver::XferDirection::kToRank;
    matrix.entries.push_back({d.local, target.offset,
                              const_cast<std::uint8_t*>(data.data()),
                              data.size()});
    ranks_[d.rank]->transfer(matrix);
    ++counters_.rank_writes;
  } else {
    ranks_[d.rank]->copy_to_symbol(
        d.local, target.name, static_cast<std::uint32_t>(target.offset),
        data);
    ++counters_.ci_ops;
  }
}

void DpuSet::copy_from(std::uint32_t dpu, const Target& target,
                       std::span<std::uint8_t> out) {
  const DpuRef d = ref(dpu);
  if (target.is_mram) {
    driver::TransferMatrix matrix;
    matrix.direction = driver::XferDirection::kFromRank;
    matrix.entries.push_back(
        {d.local, target.offset, out.data(), out.size()});
    ranks_[d.rank]->transfer(matrix);
    ++counters_.rank_reads;
  } else {
    ranks_[d.rank]->copy_from_symbol(
        d.local, target.name, static_cast<std::uint32_t>(target.offset),
        out);
    ++counters_.ci_ops;
  }
}

void DpuSet::launch(std::optional<std::uint32_t> nr_tasklets) {
  run_per_rank([&](std::uint32_t r) {
    const std::uint32_t n = dpus_on_rank(r);
    const std::uint64_t mask =
        n == 64 ? ~0ULL : ((1ULL << n) - 1);
    ranks_[r]->launch(mask, nr_tasklets);
    ++counters_.ci_ops;
    // dpu_sync: poll run status until the launch drains.
    while (true) {
      ++counters_.ci_ops;
      if (ranks_[r]->running_mask() == 0) break;
      platform_->clock().advance(platform_->poll_period_ns);
    }
  });
}

void DpuSet::free() { ranks_.clear(); }

}  // namespace vpim::sdk
