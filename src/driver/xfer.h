// Host<->rank transfer descriptions shared by the SDK, the driver, and the
// vPIM frontend/backend. A TransferMatrix is the per-DPU scatter list the
// paper's Fig 6 serializes: one entry per DPU plus whole-transfer metadata.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace vpim::driver {

enum class XferDirection : std::uint8_t { kToRank, kFromRank };

struct XferEntry {
  std::uint32_t dpu = 0;          // DPU index within the rank
  std::uint64_t mram_offset = 0;  // byte offset into that DPU's MRAM
  std::uint8_t* host = nullptr;   // host/guest buffer (read or written)
  std::uint64_t size = 0;         // bytes
};

struct TransferMatrix {
  XferDirection direction = XferDirection::kToRank;
  std::vector<XferEntry> entries;

  std::uint64_t total_bytes() const {
    std::uint64_t n = 0;
    for (const auto& e : entries) n += e.size;
    return n;
  }
};

}  // namespace vpim::driver
